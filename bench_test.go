package ewmac_test

// One benchmark per table and figure of the paper's evaluation
// section, plus ablation benches for the design choices called out in
// DESIGN.md. Each figure bench regenerates the corresponding sweep at
// reduced fidelity (single seed, 120 s simulated) and reports the
// headline number as a custom metric, so `go test -bench=.` doubles as
// a quick reproduction pass. cmd/figures produces the full-fidelity
// tables.

import (
	"testing"
	"time"

	"ewmac"
	"ewmac/internal/acoustic"
	"ewmac/internal/experiment"
	ewmacproto "ewmac/internal/mac/ewmac"
	"ewmac/internal/oracle"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

func benchFigure(b *testing.B, run func(ewmac.FigureOptions) (*ewmac.FigureTable, error), metric string, pick func(*ewmac.FigureTable) float64) {
	b.Helper()
	b.ReportAllocs()
	var last float64
	for i := 0; i < b.N; i++ {
		t, err := run(ewmac.QuickFigureOptions())
		if err != nil {
			b.Fatal(err)
		}
		last = pick(t)
	}
	b.ReportMetric(last, metric)
}

// lastY returns the final data point of protocol p's series.
func lastY(t *ewmac.FigureTable, p ewmac.Protocol) float64 {
	ys := t.Y[p]
	if len(ys) == 0 {
		return 0
	}
	return ys[len(ys)-1]
}

func BenchmarkTable2DefaultScenario(b *testing.B) {
	b.ReportAllocs()
	var thr float64
	for i := 0; i < b.N; i++ {
		cfg := ewmac.DefaultConfig(ewmac.EWMAC)
		cfg.SimTime = 120 * time.Second
		res, err := ewmac.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		thr = res.Summary.ThroughputKbps
	}
	b.ReportMetric(thr, "kbps")
}

func BenchmarkFig6ThroughputVsLoad(b *testing.B) {
	benchFigure(b, ewmac.Figure6, "ewmac_kbps@1.0", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig7ThroughputVsDensity(b *testing.B) {
	benchFigure(b, ewmac.Figure7, "ewmac_kbps@140n", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig8ExecutionTime(b *testing.B) {
	benchFigure(b, ewmac.Figure8, "ewmac_sec@1.0", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig9aPowerVsLoad(b *testing.B) {
	benchFigure(b, ewmac.Figure9a, "ewmac_mW@0.8", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig9bPowerVsDensity(b *testing.B) {
	benchFigure(b, ewmac.Figure9b, "ewmac_mW@120n", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig10aOverheadVsDensity(b *testing.B) {
	benchFigure(b, ewmac.Figure10a, "ewmac_x@140n", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig10bOverheadVsLoad(b *testing.B) {
	benchFigure(b, ewmac.Figure10b, "ewmac_x@0.8", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkFig11Efficiency(b *testing.B) {
	benchFigure(b, ewmac.Figure11, "ewmac_x@1.0", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

func BenchmarkExtPacketSize(b *testing.B) {
	benchFigure(b, ewmac.FigurePacketSize, "ewmac_kbps@4096", func(t *ewmac.FigureTable) float64 {
		return lastY(t, ewmac.EWMAC)
	})
}

// ---- Ablation benches (design choices from DESIGN.md) ----

func runLoaded(b *testing.B, edit func(*ewmac.Config)) float64 {
	b.Helper()
	cfg := ewmac.DefaultConfig(ewmac.EWMAC)
	cfg.OfferedLoadKbps = 0.8
	cfg.SimTime = 150 * time.Second
	if edit != nil {
		edit(&cfg)
	}
	res, err := ewmac.Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return res.Summary.ThroughputKbps
}

// BenchmarkAblationNoGuard disables the neighbor-interference admission
// check before extra transmissions. Unguarded EW-MAC admits more extras
// and may even gain raw throughput — but it starts corrupting
// negotiated exchanges, which is precisely what the paper's §4.2
// forbids. The oracle counts those guard breaches; guarded EW-MAC must
// show zero.
func BenchmarkAblationNoGuard(b *testing.B) {
	b.ReportAllocs()
	run := func(disable bool) (float64, int) {
		cfg := ewmac.DefaultConfig(ewmac.EWMAC)
		cfg.OfferedLoadKbps = 0.8
		cfg.SimTime = 150 * time.Second
		cfg.MobileFraction = 0
		cfg.EW = ewmacproto.Options{DisableNeighborGuard: disable}
		model := acoustic.DefaultModel()
		o := oracle.New(model.BitRate(), model.SINRThresholdDB)
		cfg.Instrument = &experiment.Instrumentation{
			Trace: func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, level float64) {
				o.RecordEmission(sim.At(f.Timestamp), src, dst, f, delay, level)
			},
			LossTap: func(now sim.Time, node packet.NodeID, f *packet.Frame, r phy.LossReason) {
				o.RecordLoss(now, node, f, r)
			},
		}
		res, err := ewmac.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Summary.ThroughputKbps, len(o.VerifyExtraSafety())
	}
	var withThr, withoutThr float64
	var withBreach, withoutBreach int
	for i := 0; i < b.N; i++ {
		withThr, withBreach = run(false)
		withoutThr, withoutBreach = run(true)
	}
	b.ReportMetric(withThr, "kbps_guarded")
	b.ReportMetric(withoutThr, "kbps_unguarded")
	b.ReportMetric(float64(withBreach), "breaches_guarded")
	b.ReportMetric(float64(withoutBreach), "breaches_unguarded")
}

// BenchmarkAblationUniformPriority removes the wait-time boost from the
// RTS random priority. The paper introduces rp "to balance fairness"
// (§3.1), so the interesting metric is Jain's index over per-sender
// service, not throughput.
func BenchmarkAblationUniformPriority(b *testing.B) {
	b.ReportAllocs()
	run := func(uniform bool) (float64, float64) {
		cfg := ewmac.DefaultConfig(ewmac.EWMAC)
		cfg.OfferedLoadKbps = 0.8
		cfg.SimTime = 150 * time.Second
		cfg.EW = ewmacproto.Options{UniformPriority: uniform}
		res, err := ewmac.Run(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return res.Summary.ThroughputKbps, res.Summary.Fairness
	}
	var boostThr, boostFair, uniThr, uniFair float64
	for i := 0; i < b.N; i++ {
		boostThr, boostFair = run(false)
		uniThr, uniFair = run(true)
	}
	b.ReportMetric(boostThr, "kbps_waitboost")
	b.ReportMetric(uniThr, "kbps_uniform")
	b.ReportMetric(boostFair, "jain_waitboost")
	b.ReportMetric(uniFair, "jain_uniform")
}

// BenchmarkAblationMobility contrasts a static deployment with a fully
// drifting one (delay-table staleness, §5 closing discussion).
func BenchmarkAblationMobility(b *testing.B) {
	b.ReportAllocs()
	var static, drifting float64
	for i := 0; i < b.N; i++ {
		static = runLoaded(b, func(c *ewmac.Config) { c.MobileFraction = 0 })
		drifting = runLoaded(b, func(c *ewmac.Config) {
			c.MobileFraction = 1
			c.CurrentMS = 3
		})
	}
	b.ReportMetric(static, "kbps_static")
	b.ReportMetric(drifting, "kbps_drifting")
}

// BenchmarkAblationMultipath contrasts the single-ray channel with the
// two-ray surface-reflection extension: echoes add interference and
// cost some throughput.
func BenchmarkAblationMultipath(b *testing.B) {
	b.ReportAllocs()
	var singleRay, twoRay float64
	for i := 0; i < b.N; i++ {
		singleRay = runLoaded(b, nil)
		twoRay = runLoaded(b, func(c *ewmac.Config) {
			m := acoustic.DefaultModel()
			m.SurfaceReflection = true
			c.Model = m
		})
	}
	b.ReportMetric(singleRay, "kbps_single_ray")
	b.ReportMetric(twoRay, "kbps_two_ray")
}

// BenchmarkAblationCapture contrasts the default threshold receiver
// with a capture-friendly one (6 dB): collisions resolve in favour of
// the stronger frame more often.
func BenchmarkAblationCapture(b *testing.B) {
	b.ReportAllocs()
	var strict, capture float64
	for i := 0; i < b.N; i++ {
		strict = runLoaded(b, nil)
		capture = runLoaded(b, func(c *ewmac.Config) {
			m := acoustic.DefaultModel()
			m.SINRThresholdDB = 6
			c.Model = m
		})
	}
	b.ReportMetric(strict, "kbps_10dB")
	b.ReportMetric(capture, "kbps_6dB")
}
