// Package ewmac is a discrete-event simulation library for underwater
// acoustic sensor network (UASN) MAC protocols, built as a faithful
// reproduction of:
//
//	Hung & Luo, "A Protocol for Efficient Transmissions in UASNs",
//	IEEE ICDCS Workshops 2013 (extended as "Protocol to Exploit
//	Waiting Resources for UASNs", Sensors 16(3):343, 2016).
//
// It implements the paper's EW-MAC protocol — a slotted four-way
// handshake that schedules extra communications inside the propagation
// waiting windows other protocols leave idle — together with the three
// baselines of the paper's evaluation (S-FAMA, ROPA, CS-MAC), a full
// acoustic-channel substrate (Thorp absorption, Wenz ambient noise,
// SINR-based collision resolution, half-duplex modems, mobility), and
// a harness that regenerates every figure of the paper.
//
// Quick start:
//
//	cfg := ewmac.DefaultConfig(ewmac.EWMAC)
//	cfg.OfferedLoadKbps = 0.6
//	res, err := ewmac.Run(cfg)
//	if err != nil { ... }
//	fmt.Printf("throughput: %.3f kbps\n", res.Summary.ThroughputKbps)
//
// The package is a thin facade; the implementation lives under
// internal/ (see DESIGN.md for the system inventory).
package ewmac

import (
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/figures"
	"ewmac/internal/mac"
	"ewmac/internal/metrics"
	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// Protocol selects the MAC protocol under test.
type Protocol = experiment.Protocol

// The four protocols of the paper's evaluation.
const (
	// EWMAC is the paper's contribution.
	EWMAC = experiment.ProtocolEWMAC
	// SFAMA is Slotted FAMA, the conservative baseline.
	SFAMA = experiment.ProtocolSFAMA
	// ROPA is Reverse Opportunistic Packet Appending.
	ROPA = experiment.ProtocolROPA
	// CSMAC is the Channel Stealing MAC.
	CSMAC = experiment.ProtocolCSMAC
	// SALOHA is slotted ALOHA, an extension baseline outside the
	// paper's evaluation.
	SALOHA = experiment.ProtocolSALOHA
)

// Protocols lists all four in the paper's presentation order.
var Protocols = experiment.Protocols

// Config describes one simulation scenario (Table 2 of the paper plus
// protocol options).
type Config = experiment.Config

// Budget bounds a run's execution (wall-clock deadline, event cap,
// livelock watchdog); set Config.Budget to supervise a run.
type Budget = sim.Budget

// Result is one run's outcome: the metric summary plus topology
// characteristics and raw per-node samples.
type Result = experiment.Result

// Observe configures the unified observability layer for a run:
// structured event tracing (trace-v2 JSONL), periodic time-series
// sampling (CSV), and per-run report collection. Set Config.Observe.
type Observe = experiment.Observe

// Instrumentation taps channel- and PHY-level events.
//
// Deprecated: Instrumentation is a compatibility shim fed from the
// observability event bus; new code should use Observe.Recorder.
type Instrumentation = experiment.Instrumentation

// RunReport is the per-run observability summary attached to
// Result.Report when Observe.Report is enabled.
type RunReport = obs.RunReport

// OverloadConfig configures graceful degradation under saturation:
// queue drop policies, two-class priority, admission control, and
// retry budgets. Set Config.Overload; the zero value keeps the
// historical tail-drop behaviour bit-identically.
type OverloadConfig = mac.OverloadConfig

// RetryBudgetConfig is the token-bucket retry budget inside
// OverloadConfig.
type RetryBudgetConfig = mac.RetryBudgetConfig

// DropPolicy selects what a full MAC queue sheds.
type DropPolicy = mac.DropPolicy

// The queue drop policies.
const (
	// DropTail rejects the incoming packet (the historical default).
	DropTail = mac.DropTail
	// DropOldest evicts the oldest queued packet to admit the new one.
	DropOldest = mac.DropOldest
	// DropDeadline lazily expires packets past their TTL deadline.
	DropDeadline = mac.DropDeadline
)

// ParseDropPolicy parses a drop-policy name ("tail", "oldest",
// "deadline") as used by command-line flags.
func ParseDropPolicy(s string) (DropPolicy, error) { return mac.ParseDropPolicy(s) }

// Summary carries the paper's evaluation metrics for one run
// (Equations (2)–(4)).
type Summary = metrics.Summary

// FigureTable is a reproduced figure: X values against one Y series
// per protocol, renderable as ASCII or CSV.
type FigureTable = figures.Table

// FigureOptions control sweep fidelity (seeds, simulated time).
type FigureOptions = figures.Options

// DefaultConfig returns the paper's Table 2 scenario for protocol p:
// 60 sensors plus 4 surface sinks in a 1 km cube, 12 kbps band,
// 1.5 km range, 2048-bit data packets, 300 s simulated.
func DefaultConfig(p Protocol) Config { return experiment.Default(p) }

// Run executes one scenario deterministically (same Config and Seed →
// identical Result).
func Run(cfg Config) (*Result, error) { return experiment.Run(cfg) }

// RunMean executes the scenario once per seed and averages the metric
// summary.
func RunMean(cfg Config, seeds []int64) (Summary, error) {
	return experiment.RunMean(cfg, seeds)
}

// OverheadRatio and EfficiencyIndex compare a run against a same-
// scenario S-FAMA baseline, as in Figures 10 and 11.
func OverheadRatio(s, baseline Summary) float64 { return metrics.OverheadRatio(s, baseline) }

// EfficiencyIndex normalizes Equation (4) to the baseline protocol.
func EfficiencyIndex(s, baseline Summary) float64 { return metrics.EfficiencyIndex(s, baseline) }

// Figure6 … Figure11 regenerate the corresponding paper figures.

// Figure6 sweeps offered load (throughput).
func Figure6(o FigureOptions) (*FigureTable, error) { return figures.Figure6(o) }

// Figure7 sweeps sensor density (throughput).
func Figure7(o FigureOptions) (*FigureTable, error) { return figures.Figure7(o) }

// Figure8 sweeps offered load (execution time).
func Figure8(o FigureOptions) (*FigureTable, error) { return figures.Figure8(o) }

// Figure9a sweeps offered load (power, 80 sensors).
func Figure9a(o FigureOptions) (*FigureTable, error) { return figures.Figure9a(o) }

// Figure9b sweeps sensor count (power, 0.3 kbps).
func Figure9b(o FigureOptions) (*FigureTable, error) { return figures.Figure9b(o) }

// Figure10a sweeps sensor count (overhead ratio, 0.5 kbps).
func Figure10a(o FigureOptions) (*FigureTable, error) { return figures.Figure10a(o) }

// Figure10b sweeps offered load (overhead ratio, 200 sensors).
func Figure10b(o FigureOptions) (*FigureTable, error) { return figures.Figure10b(o) }

// Figure11 sweeps offered load (efficiency index).
func Figure11(o FigureOptions) (*FigureTable, error) { return figures.Figure11(o) }

// FigurePacketSize sweeps the data payload size (extension experiment
// for the paper's large-packet claim).
func FigurePacketSize(o FigureOptions) (*FigureTable, error) { return figures.FigurePacketSize(o) }

// Table2 renders the simulation-parameter table.
func Table2() string { return figures.Table2() }

// QuickFigureOptions returns low-fidelity sweep options (single seed,
// shortened runs) for smoke tests and benchmarks.
func QuickFigureOptions() FigureOptions {
	return FigureOptions{Seeds: []int64{1}, SimTime: 120 * time.Second}
}
