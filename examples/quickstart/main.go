// Quickstart: run the paper's default scenario (Table 2) once with
// EW-MAC and once with the S-FAMA baseline, and compare the headline
// metrics.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"
)

import "ewmac"

func main() {
	log.SetFlags(0)
	for _, p := range []ewmac.Protocol{ewmac.SFAMA, ewmac.EWMAC} {
		cfg := ewmac.DefaultConfig(p)
		cfg.OfferedLoadKbps = 0.6 // moderately loaded network
		cfg.SimTime = 200 * time.Second

		res, err := ewmac.Run(cfg)
		if err != nil {
			log.Fatalf("quickstart: %v", err)
		}
		s := res.Summary
		fmt.Printf("%s\n", p.DisplayName())
		fmt.Printf("  throughput        %.3f kbps (offered %.3f)\n", s.ThroughputKbps, s.OfferedKbps)
		fmt.Printf("  delivery ratio    %.0f%%\n", 100*s.DeliveryRatio)
		fmt.Printf("  mean latency      %.1f s\n", s.ExecutionTime.Seconds())
		fmt.Printf("  mean node power   %.1f mW\n", s.MeanPowerMW)
		fmt.Printf("  extra exchanges   %d attempted, %d completed\n",
			s.MAC.ExtraAttempts, s.MAC.ExtraCompletions)
		fmt.Println()
	}
	fmt.Println("EW-MAC converts the waiting windows of the slotted handshake")
	fmt.Println("into extra communications: higher throughput at lower latency.")
}
