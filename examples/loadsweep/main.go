// Loadsweep: the experiment behind the paper's Figure 6 — throughput
// of all four protocols as offered load grows — rendered as an ASCII
// chart. Reduced fidelity (one seed, 150 s runs) so it finishes in
// seconds; use cmd/figures for the full-fidelity version.
//
//	go run ./examples/loadsweep
package main

import (
	"fmt"
	"log"
	"strings"
	"time"
)

import "ewmac"

func main() {
	log.SetFlags(0)
	loads := []float64{0.2, 0.4, 0.6, 0.8, 1.0}

	results := make(map[ewmac.Protocol][]float64)
	for _, p := range ewmac.Protocols {
		for _, load := range loads {
			cfg := ewmac.DefaultConfig(p)
			cfg.OfferedLoadKbps = load
			cfg.SimTime = 150 * time.Second
			res, err := ewmac.Run(cfg)
			if err != nil {
				log.Fatalf("loadsweep: %v", err)
			}
			results[p] = append(results[p], res.Summary.ThroughputKbps)
		}
	}

	// Scale bars to the best observed throughput.
	max := 0.0
	for _, ys := range results {
		for _, y := range ys {
			if y > max {
				max = y
			}
		}
	}
	fmt.Println("Throughput (kbps) vs offered load — Figure 6 workload")
	for i, load := range loads {
		fmt.Printf("\noffered %.1f kbps\n", load)
		for _, p := range ewmac.Protocols {
			y := results[p][i]
			bar := strings.Repeat("█", int(40*y/max+0.5))
			fmt.Printf("  %-7s %6.3f %s\n", p.DisplayName(), y, bar)
		}
	}
	fmt.Println("\nExpected shape: all curves rise then saturate; EW-MAC keeps")
	fmt.Println("climbing where CS-MAC's unguarded stealing starts colliding.")
}
