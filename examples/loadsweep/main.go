// Loadsweep: the overload soak — a saturation sweep from half of
// capacity to 4× it, comparing a MANAGED configuration (deadline drops
// + admission control + retry budget) against the UNMANAGED historical
// baseline (unbounded tail-drop queue) on every protocol.
//
// The metric is FRESH goodput: delivered bits whose end-to-end latency
// stayed within the TTL. Under saturation the unmanaged queues grow
// without bound and most of what they eventually deliver is stale; the
// managed configuration sheds doomed traffic early and keeps its fresh
// goodput near the peak.
//
//	go run ./examples/loadsweep                     # managed vs unmanaged
//	go run ./examples/loadsweep -policy oldest      # try drop-oldest instead
//	go run ./examples/loadsweep -closed-loop        # throttle at the source
//	go run ./examples/loadsweep -proto ewmac -sim 10m -x4 16  # long soak
//
// Reduced fidelity by default (one seed, 2 min runs) so the whole
// sweep finishes in seconds; raise -sim and -x4 for a real soak.
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"
	"time"
)

import (
	"ewmac"
	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// freshCounter counts deliveries younger than the TTL.
type freshCounter struct {
	ttl       time.Duration
	freshBits uint64
	stale     uint64
}

func (f *freshCounter) Record(_ sim.Time, e obs.Event) {
	if d, ok := e.(*obs.Delivery); ok {
		if d.Latency <= f.ttl {
			f.freshBits += uint64(d.Bits)
		} else {
			f.stale++
		}
	}
}

func main() {
	log.SetFlags(0)
	var (
		proto      = flag.String("proto", "all", "protocol: ewmac, sfama, ropa, csmac, saloha, or all")
		policy     = flag.String("policy", "deadline", "managed drop policy: oldest or deadline")
		closedLoop = flag.Bool("closed-loop", false, "withhold arrivals at the source under backpressure")
		simTime    = flag.Duration("sim", 2*time.Minute, "simulated time per run")
		ttl        = flag.Duration("ttl", 30*time.Second, "freshness bound (and deadline-policy TTL)")
		capacity   = flag.Float64("capacity", 0.5, "estimated saturation load in kbps (the 1× point)")
		x4         = flag.Float64("x4", 4, "top load multiple of capacity")
		nodes      = flag.Int("nodes", 12, "sensing nodes")
		sinks      = flag.Int("sinks", 2, "surface sinks")
	)
	flag.Parse()

	pol, err := ewmac.ParseDropPolicy(*policy)
	if err != nil || pol == ewmac.DropTail {
		log.Fatalf("loadsweep: -policy must be oldest or deadline (tail is the unmanaged baseline)")
	}

	protos := ewmac.Protocols
	if *proto != "all" {
		protos = []ewmac.Protocol{ewmac.Protocol(*proto)}
	}
	loads := []float64{0.5 * *capacity, *capacity, 2 * *capacity, *x4 * *capacity}

	run := func(p ewmac.Protocol, load float64, managed bool) (freshKbps float64, stale uint64, peakDepth int) {
		cfg := ewmac.DefaultConfig(p)
		cfg.Nodes = *nodes
		cfg.Sinks = *sinks
		cfg.OfferedLoadKbps = load
		cfg.SimTime = *simTime
		if managed {
			cfg.Overload = ewmac.OverloadConfig{
				Policy:      pol,
				PacketTTL:   *ttl,
				HighWater:   0.9,
				RetryBudget: ewmac.RetryBudgetConfig{Burst: 8, RatePerSec: 1},
			}
			cfg.ClosedLoop = *closedLoop
		} else {
			cfg.QueueMax = 0 // unbounded tail-drop
		}
		fc := &freshCounter{ttl: *ttl}
		cfg.Observe = &ewmac.Observe{Report: true, Recorder: fc}
		res, err := ewmac.Run(cfg)
		if err != nil {
			log.Fatalf("loadsweep: %s load %g: %v", p, load, err)
		}
		window := (cfg.SimTime - cfg.Warmup).Seconds()
		peak := 0
		if res.Report != nil {
			peak = res.Report.QueuePeakDepth
		}
		return float64(fc.freshBits) / 1000 / window, fc.stale, peak
	}

	mode := "open-loop"
	if *closedLoop {
		mode = "closed-loop"
	}
	fmt.Printf("Fresh goodput (kbps, latency ≤ %v) vs offered load\n", *ttl)
	fmt.Printf("managed: %s policy, admission 0.9, retry budget 8 @ 1/s, %s\n\n", pol, mode)

	for _, p := range protos {
		fmt.Printf("%s\n", p.DisplayName())
		fmt.Printf("  %8s  %-26s %-26s %s\n", "load", "managed", "unmanaged (tail, ∞ queue)", "qpeak m/u  stale m/u")
		type row struct {
			load, m, u float64
			mSt, uSt   uint64
			mPk, uPk   int
		}
		var best float64
		rows := make([]row, 0, len(loads))
		for _, load := range loads {
			m, mSt, mPk := run(p, load, true)
			u, uSt, uPk := run(p, load, false)
			if m > best {
				best = m
			}
			if u > best {
				best = u
			}
			rows = append(rows, row{load, m, u, mSt, uSt, mPk, uPk})
		}
		for _, r := range rows {
			bar := func(v float64) string {
				if best <= 0 {
					return ""
				}
				return strings.Repeat("█", int(16*v/best+0.5))
			}
			fmt.Printf("  %7.2g×  %7.4f %-18s %7.4f %-18s %d/%d  %d/%d\n",
				r.load / *capacity, r.m, bar(r.m), r.u, bar(r.u),
				r.mPk, r.uPk, r.mSt, r.uSt)
		}
		fmt.Println()
	}
	fmt.Println("Expected shape: both configurations match below capacity; past it")
	fmt.Println("the unmanaged queues back up (qpeak grows, stale deliveries appear)")
	fmt.Println("and fresh goodput sags, while the managed runs shed doomed traffic")
	fmt.Println("and hold near their peak.")
}
