// Densitysweep: the experiment behind the paper's Figure 7 — how
// sensor density erodes the waiting resources that EW-MAC, CS-MAC and
// ROPA exploit. Denser deployments put each node's nearest shallower
// next hop closer, shrinking pairwise propagation delays and with them
// the idle windows extra communications are scheduled into; S-FAMA,
// which always reserves the worst-case delay, is indifferent.
//
//	go run ./examples/densitysweep
package main

import (
	"fmt"
	"log"
	"time"
)

import "ewmac"

func main() {
	log.SetFlags(0)
	counts := []int{60, 100, 140}

	fmt.Printf("%-8s", "nodes")
	for _, p := range ewmac.Protocols {
		fmt.Printf("%10s", p.DisplayName())
	}
	fmt.Printf("%12s\n", "max τ(ms)")

	for _, n := range counts {
		fmt.Printf("%-8d", n)
		var maxDelay time.Duration
		for _, p := range ewmac.Protocols {
			cfg := ewmac.DefaultConfig(p)
			cfg.Nodes = n
			cfg.OfferedLoadKbps = 0.8 // saturating load, as in Figure 7
			cfg.SimTime = 150 * time.Second
			res, err := ewmac.Run(cfg)
			if err != nil {
				log.Fatalf("densitysweep: %v", err)
			}
			fmt.Printf("%10.3f", res.Summary.ThroughputKbps)
			maxDelay = res.MaxPairDelay
		}
		fmt.Printf("%12.0f\n", float64(maxDelay.Milliseconds()))
	}
	fmt.Println("\nThis reduced run (one seed, 150 s) is noisy; the full-fidelity")
	fmt.Println("sweep (cmd/figures fig7: 3 seeds, 300 s) shows ROPA and EW-MAC")
	fmt.Println("declining with density as steal/extra admissions are refused")
	fmt.Println("more often, while S-FAMA sits at its reservation-bound floor.")
}
