// Deepwater: the substrate beyond Table 2. A 2.5 km-deep column with
// the canonical Munk sound-speed profile and two-ray surface
// reflection, where packets need several hops to reach the surface
// sinks. Shows the acoustic model, routing, and MAC working together
// outside the paper's shallow 1 km cube, and compares EW-MAC against
// S-FAMA on delivery and latency in that harsher environment.
//
//	go run ./examples/deepwater
package main

import (
	"fmt"
	"log"
	"time"
)

import (
	"ewmac"
	"ewmac/internal/acoustic"
)

func main() {
	log.SetFlags(0)

	model := acoustic.DefaultModel()
	model.Profile = acoustic.CanonicalMunk()
	model.SurfaceReflection = true
	model.WindMS = 10 // rough seas: more ambient noise

	fmt.Println("Deep-water column: 2.5 km deep, Munk profile, surface echoes")
	fmt.Printf("%-8s %10s %8s %10s %10s\n", "protocol", "thr(kbps)", "deliv%", "exec(s)", "max τ(s)")
	for _, p := range []ewmac.Protocol{ewmac.SFAMA, ewmac.EWMAC} {
		cfg := ewmac.DefaultConfig(p)
		cfg.RegionSide = 2500 // deep column: multi-hop to the surface
		cfg.Nodes = 80
		cfg.Sinks = 9
		cfg.OfferedLoadKbps = 0.4
		cfg.SimTime = 240 * time.Second
		cfg.Model = model
		res, err := ewmac.Run(cfg)
		if err != nil {
			log.Fatalf("deepwater: %v", err)
		}
		s := res.Summary
		fmt.Printf("%-8s %10.3f %8.0f %10.1f %10.1f\n",
			p.DisplayName(), s.ThroughputKbps, 100*s.DeliveryRatio,
			s.ExecutionTime.Seconds(), res.MaxPairDelay.Seconds())
	}
	fmt.Println()
	fmt.Println("In deep water the pairwise delays stretch toward the slot's")
	fmt.Println("τmax guard time — exactly the regime where waiting windows")
	fmt.Println("are largest and EW-MAC's extra communications pay off most.")
}
