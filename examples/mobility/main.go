// Mobility: the paper's §5 closing discussion — EW-MAC schedules extra
// transmissions from *maintained* propagation-delay estimates, so the
// extra-communication path depends on those estimates staying accurate
// between the grant and the transmission. This example runs the same
// loaded scenario with increasingly energetic water currents (every
// sensor drifting) and reports, besides throughput, how the extra
// path's admission and completion behave as the learned delay tables
// go stale — the stability caveat the paper concedes for rapidly
// changing topologies.
//
//	go run ./examples/mobility
package main

import (
	"fmt"
	"log"
	"time"
)

import "ewmac"

func main() {
	log.SetFlags(0)
	currents := []float64{0, 1.0, 3.0, 6.0} // m/s drift

	fmt.Printf("%-12s %10s %10s %12s %14s\n",
		"current m/s", "EW kbps", "S-FAMA", "extra tried", "extra done")
	for _, cur := range currents {
		var ewThr, sfThr float64
		var att, done uint64
		for _, p := range []ewmac.Protocol{ewmac.SFAMA, ewmac.EWMAC} {
			cfg := ewmac.DefaultConfig(p)
			cfg.OfferedLoadKbps = 0.8
			cfg.MobileFraction = 1.0
			cfg.CurrentMS = cur
			cfg.SimTime = 200 * time.Second
			res, err := ewmac.Run(cfg)
			if err != nil {
				log.Fatalf("mobility: %v", err)
			}
			switch p {
			case ewmac.EWMAC:
				ewThr = res.Summary.ThroughputKbps
				att = res.Summary.MAC.ExtraAttempts
				done = res.Summary.MAC.ExtraCompletions
			case ewmac.SFAMA:
				sfThr = res.Summary.ThroughputKbps
			}
		}
		fmt.Printf("%-12.1f %10.3f %10.3f %12d %14d\n", cur, ewThr, sfThr, att, done)
	}
	fmt.Println()
	fmt.Println("Every received packet refreshes the one-hop delay tables, so")
	fmt.Println("slow drift costs little. As currents strengthen, the windows")
	fmt.Println("computed from stale delays mispredict arrival times: extra")
	fmt.Println("exchanges are refused or fail more often — §5's caveat that")
	fmt.Println("EW-MAC wants topologies whose pairwise relations are stable.")
}
