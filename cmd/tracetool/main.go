// Command tracetool queries the observability files a run writes:
// the causal-span JSONL (-spans), the trace-v2 event JSONL (-trace),
// and the waiting-resource slot profile (-slotprof).
//
//	tracetool spans -in run.spans -type extra -complete
//	tracetool latency -in run.spans -type handshake
//	tracetool slots -in run.slots
//	tracetool slots -in run.slots -ratio        # bare exploitation ratio
//	tracetool events -in run.jsonl -event mac.deliver -node 3
//	tracetool drops -in run.jsonl -top 5
//	tracetool violations -in run.jsonl -show 3
//	tracetool diff a.spans b.spans
//
// Every subcommand streams its input line by line, so multi-gigabyte
// traces work in constant memory (latency and diff buffer only the
// scalar values they aggregate).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"

	"ewmac/internal/obs/slotprof"
	"ewmac/internal/obs/span"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func usage() int {
	fmt.Fprintln(os.Stderr, `usage: tracetool <command> [flags]

commands:
  spans    list causal spans (filter by -node, -type, -complete)
  latency  latency percentiles and histogram over delivering spans
  slots    waiting-resource slot profile table (-ratio: bare run ratio)
  events   filter the trace-v2 event stream (-event, -node)
  drops    per-reason and per-node drop/shed counts (-top N noisiest nodes)
  violations  conformance-oracle violations by reason and node (-show N details)
  diff     compare two span files' aggregate counts

run "tracetool <command> -h" for the command's flags`)
	return 2
}

func run(args []string) int {
	if len(args) == 0 {
		return usage()
	}
	var err error
	switch args[0] {
	case "spans":
		err = cmdSpans(args[1:])
	case "latency":
		err = cmdLatency(args[1:])
	case "slots":
		err = cmdSlots(args[1:])
	case "events":
		err = cmdEvents(args[1:])
	case "drops":
		err = cmdDrops(args[1:])
	case "violations":
		err = cmdViolations(args[1:])
	case "diff":
		err = cmdDiff(args[1:])
	default:
		fmt.Fprintf(os.Stderr, "tracetool: unknown command %q\n", args[0])
		return usage()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "tracetool: %v\n", err)
		return 1
	}
	return 0
}

// scanLines streams path line by line through fn, with a 16 MB line
// budget so wide JSONL records (dense fan-out spans, big frame dumps)
// never hit bufio.Scanner's 64 KB default. A line fn rejects aborts
// the scan — unless it is the file's last line: a run killed
// mid-write commonly leaves its final line cut mid-object, and the
// complete prefix is still worth querying, so that one line is
// skipped with a warning instead.
func scanLines(path string, fn func(ln int, line []byte) error) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	for ln := 1; sc.Scan(); ln++ {
		if err := fn(ln, sc.Bytes()); err != nil {
			if sc.Scan() {
				// More lines follow: mid-file corruption, not a torn tail.
				return fmt.Errorf("%s:%d: %w", path, ln, err)
			}
			fmt.Fprintf(os.Stderr,
				"tracetool: warning: %s:%d: skipping truncated trailing line (%v)\n", path, ln, err)
			return sc.Err()
		}
	}
	return sc.Err()
}

// forEachSpan streams every span line of path (skipping the meta line)
// through fn, returning the meta line when present.
func forEachSpan(path string, fn func(*span.Span)) (*span.Meta, error) {
	var meta *span.Meta
	err := scanLines(path, func(_ int, line []byte) error {
		var s span.Span
		if err := json.Unmarshal(line, &s); err != nil {
			return err
		}
		if s.Type == "meta" {
			var m span.Meta
			if err := json.Unmarshal(line, &m); err == nil {
				meta = &m
			}
			return nil
		}
		fn(&s)
		return nil
	})
	return meta, err
}

func cmdSpans(args []string) error {
	fs := flag.NewFlagSet("spans", flag.ExitOnError)
	in := fs.String("in", "", "span JSONL file (required)")
	node := fs.Int("node", -1, "only spans whose src or dst is this node")
	typ := fs.String("type", "", "only this span type: handshake, extra, contention, or fault")
	complete := fs.Bool("complete", false, "only complete spans")
	limit := fs.Int("limit", 0, "print at most this many spans (0 = all)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("spans: -in is required")
	}

	shown, matched := 0, 0
	byType := map[string]int{}
	completeN := 0
	meta, err := forEachSpan(*in, func(s *span.Span) {
		if *typ != "" && s.Type != *typ {
			return
		}
		if *node >= 0 && int(s.Src) != *node && int(s.Dst) != *node {
			return
		}
		if *complete && !s.Complete {
			return
		}
		matched++
		byType[s.Type]++
		if s.Complete {
			completeN++
		}
		if *limit > 0 && shown >= *limit {
			return
		}
		shown++
		line := fmt.Sprintf("%10.4f %10.4f  %-10s xid=%-12x %3d->%-3d %-16s legs=%d",
			s.Start, s.End, s.Type, s.XID, s.Src, s.Dst, s.Outcome, len(s.Legs))
		if s.Parent != 0 {
			line += fmt.Sprintf(" parent=%x", s.Parent)
		}
		if s.Bits > 0 {
			line += fmt.Sprintf(" bits=%d latency=%.4fs", s.Bits, s.LatencyS)
		}
		fmt.Println(line)
	})
	if err != nil {
		return err
	}
	if meta != nil {
		fmt.Printf("# run: protocol=%s seed=%d nodes=%d\n", meta.Protocol, meta.Seed, meta.Nodes)
	}
	fmt.Printf("# %d span(s) matched (%d complete)", matched, completeN)
	types := make([]string, 0, len(byType))
	for t := range byType {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		fmt.Printf("  %s=%d", t, byType[t])
	}
	fmt.Println()
	if *limit > 0 && matched > shown {
		fmt.Printf("# (%d more suppressed by -limit)\n", matched-shown)
	}
	return nil
}

func cmdLatency(args []string) error {
	fs := flag.NewFlagSet("latency", flag.ExitOnError)
	in := fs.String("in", "", "span JSONL file (required)")
	typ := fs.String("type", "", "restrict to one span type (default: any delivering span)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("latency: -in is required")
	}

	var lats []float64
	_, err := forEachSpan(*in, func(s *span.Span) {
		if *typ != "" && s.Type != *typ {
			return
		}
		if !s.Complete || s.LatencyS <= 0 {
			return
		}
		lats = append(lats, s.LatencyS)
	})
	if err != nil {
		return err
	}
	if len(lats) == 0 {
		fmt.Println("no delivering spans matched")
		return nil
	}
	sort.Float64s(lats)
	var sum float64
	for _, v := range lats {
		sum += v
	}
	fmt.Printf("n=%d  mean=%.4fs  p50=%.4fs  p95=%.4fs  p99=%.4fs  max=%.4fs\n",
		len(lats), sum/float64(len(lats)),
		percentile(lats, 0.50), percentile(lats, 0.95), percentile(lats, 0.99),
		lats[len(lats)-1])
	histogram(os.Stdout, lats, 10)
	return nil
}

// percentile is nearest-rank over a sorted slice.
func percentile(sorted []float64, q float64) float64 {
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// histogram prints an equal-width ASCII histogram of sorted values.
func histogram(w io.Writer, sorted []float64, buckets int) {
	lo, hi := sorted[0], sorted[len(sorted)-1]
	if hi <= lo {
		fmt.Fprintf(w, "  [%8.4f, %8.4f) %s %d\n", lo, hi, strings.Repeat("#", 40), len(sorted))
		return
	}
	width := (hi - lo) / float64(buckets)
	counts := make([]int, buckets)
	for _, v := range sorted {
		b := int((v - lo) / width)
		if b >= buckets {
			b = buckets - 1
		}
		counts[b]++
	}
	max := 0
	for _, c := range counts {
		if c > max {
			max = c
		}
	}
	for i, c := range counts {
		bar := ""
		if max > 0 {
			bar = strings.Repeat("#", c*40/max)
		}
		fmt.Fprintf(w, "  [%8.4f, %8.4f) %-40s %d\n",
			lo+float64(i)*width, lo+float64(i+1)*width, bar, c)
	}
}

func cmdSlots(args []string) error {
	fs := flag.NewFlagSet("slots", flag.ExitOnError)
	in := fs.String("in", "", "slot-profile JSONL file (required)")
	ratio := fs.Bool("ratio", false, "print only the run's exploitation ratio (for scripts)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("slots: -in is required")
	}

	var nodes []slotprof.NodeRecord
	var sum *slotprof.Summary
	slotLines := 0
	err := scanLines(*in, func(_ int, line []byte) error {
		var rec struct {
			Rec string `json:"rec"`
		}
		if err := json.Unmarshal(line, &rec); err != nil {
			return err
		}
		switch rec.Rec {
		case "slot":
			slotLines++
		case "node":
			var n slotprof.NodeRecord
			if err := json.Unmarshal(line, &n); err != nil {
				return err
			}
			nodes = append(nodes, n)
		case "summary":
			var s slotprof.Summary
			if err := json.Unmarshal(line, &s); err != nil {
				return err
			}
			sum = &s
		}
		return nil
	})
	if err != nil {
		return err
	}
	if sum == nil {
		return fmt.Errorf("%s: no summary record (file truncated?)", *in)
	}
	if *ratio {
		fmt.Printf("%g\n", sum.Exploit)
		return nil
	}

	fmt.Printf("%s: %d slot(s) × %d node(s), slot=%gs (%d active slot lines)\n",
		sum.Protocol, sum.Slots, sum.Nodes, sum.SlotLenS, slotLines)
	fmt.Printf("%6s %10s %10s %10s %10s %10s %9s\n",
		"node", "tx(s)", "rx(s)", "wait(s)", "reclaim(s)", "guard(s)", "exploit")
	for _, n := range nodes {
		fmt.Printf("%6d %10.3f %10.3f %10.3f %10.3f %10.3f %9.4f\n",
			n.Node, n.Tx, n.Rx, n.Wait, n.Reclaimed, n.Guard, n.Exploit)
	}
	fmt.Printf("%6s %10.3f %10.3f %10.3f %10.3f %10.3f %9.4f\n",
		"total", sum.Tx, sum.Rx, sum.Wait, sum.Reclaimed, sum.Guard, sum.Exploit)
	return nil
}

func cmdEvents(args []string) error {
	fs := flag.NewFlagSet("events", flag.ExitOnError)
	in := fs.String("in", "", "trace-v2 JSONL file (required)")
	event := fs.String("event", "", "only lines with this event tag")
	node := fs.Int("node", -1, "only lines whose node, src, or dst is this node")
	limit := fs.Int("limit", 0, "print at most this many lines (0 = all)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("events: -in is required")
	}

	matched, shown := 0, 0
	byTag := map[string]int{}
	err := scanLines(*in, func(_ int, line []byte) error {
		var m map[string]any
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		tag, _ := m["event"].(string)
		if *event != "" && tag != *event {
			return nil
		}
		if *node >= 0 && !lineMentions(m, float64(*node)) {
			return nil
		}
		matched++
		byTag[tag]++
		if *limit > 0 && shown >= *limit {
			return nil
		}
		shown++
		fmt.Println(string(line))
		return nil
	})
	if err != nil {
		return err
	}
	tags := make([]string, 0, len(byTag))
	for t := range byTag {
		tags = append(tags, t)
	}
	sort.Strings(tags)
	fmt.Printf("# %d line(s) matched", matched)
	for _, t := range tags {
		fmt.Printf("  %s=%d", t, byTag[t])
	}
	fmt.Println()
	return nil
}

// cmdDrops reduces the trace-v2 stream's mac.drop events to a
// per-reason table and the noisiest dropping nodes — the quick answer
// to "where is an overloaded run losing traffic".
func cmdDrops(args []string) error {
	fs := flag.NewFlagSet("drops", flag.ExitOnError)
	in := fs.String("in", "", "trace-v2 JSONL file (required)")
	top := fs.Int("top", 10, "show the N nodes with the most drops (0 = all)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("drops: -in is required")
	}

	type nodeAgg struct {
		node     int
		total    int
		byReason map[string]int
	}
	byReason := map[string]int{}
	byNode := map[int]*nodeAgg{}
	total := 0
	err := scanLines(*in, func(_ int, line []byte) error {
		var m struct {
			Event  string `json:"event"`
			Node   int    `json:"node"`
			Reason string `json:"reason"`
		}
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		if m.Event != "mac.drop" {
			return nil
		}
		total++
		byReason[m.Reason]++
		a := byNode[m.Node]
		if a == nil {
			a = &nodeAgg{node: m.Node, byReason: map[string]int{}}
			byNode[m.Node] = a
		}
		a.total++
		a.byReason[m.Reason]++
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Println("no mac.drop events")
		return nil
	}

	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool {
		if byReason[reasons[i]] != byReason[reasons[j]] {
			return byReason[reasons[i]] > byReason[reasons[j]]
		}
		return reasons[i] < reasons[j]
	})
	fmt.Printf("%d drop(s) across %d node(s)\n", total, len(byNode))
	for _, r := range reasons {
		fmt.Printf("  %-18s %6d\n", r, byReason[r])
	}

	nodes := make([]*nodeAgg, 0, len(byNode))
	for _, a := range byNode {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].total != nodes[j].total {
			return nodes[i].total > nodes[j].total
		}
		return nodes[i].node < nodes[j].node
	})
	shown := len(nodes)
	if *top > 0 && shown > *top {
		shown = *top
	}
	fmt.Printf("%6s %7s  breakdown\n", "node", "drops")
	for _, a := range nodes[:shown] {
		parts := make([]string, 0, len(a.byReason))
		for _, r := range reasons {
			if n := a.byReason[r]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", r, n))
			}
		}
		fmt.Printf("%6d %7d  %s\n", a.node, a.total, strings.Join(parts, " "))
	}
	if shown < len(nodes) {
		fmt.Printf("# (%d more node(s) suppressed by -top)\n", len(nodes)-shown)
	}
	return nil
}

// cmdViolations reduces the trace-v2 stream's oracle.violation events
// to per-reason and per-node tables — the triage view over a -verify
// run that failed conformance — and prints the first few violation
// details verbatim.
func cmdViolations(args []string) error {
	fs := flag.NewFlagSet("violations", flag.ExitOnError)
	in := fs.String("in", "", "trace-v2 JSONL file (required)")
	top := fs.Int("top", 10, "show the N nodes with the most violations (0 = all)")
	show := fs.Int("show", 5, "print the first N violation details (0 = none)")
	fs.Parse(args)
	if *in == "" {
		return fmt.Errorf("violations: -in is required")
	}

	type nodeAgg struct {
		node     int
		total    int
		byReason map[string]int
	}
	byReason := map[string]int{}
	byNode := map[int]*nodeAgg{}
	var details []string
	total := 0
	err := scanLines(*in, func(_ int, line []byte) error {
		var m struct {
			At     float64 `json:"at"`
			Event  string  `json:"event"`
			Node   int     `json:"node"`
			Reason string  `json:"reason"`
			Detail string  `json:"detail"`
		}
		if err := json.Unmarshal(line, &m); err != nil {
			return err
		}
		if m.Event != "oracle.violation" {
			return nil
		}
		total++
		byReason[m.Reason]++
		a := byNode[m.Node]
		if a == nil {
			a = &nodeAgg{node: m.Node, byReason: map[string]int{}}
			byNode[m.Node] = a
		}
		a.total++
		a.byReason[m.Reason]++
		if len(details) < *show {
			d := m.Detail
			if d == "" {
				d = m.Reason
			}
			details = append(details, fmt.Sprintf("t=%.3fs node %d [%s] %s", m.At, m.Node, m.Reason, d))
		}
		return nil
	})
	if err != nil {
		return err
	}
	if total == 0 {
		fmt.Println("no oracle.violation events")
		return nil
	}

	reasons := make([]string, 0, len(byReason))
	for r := range byReason {
		reasons = append(reasons, r)
	}
	sort.Slice(reasons, func(i, j int) bool {
		if byReason[reasons[i]] != byReason[reasons[j]] {
			return byReason[reasons[i]] > byReason[reasons[j]]
		}
		return reasons[i] < reasons[j]
	})
	fmt.Printf("%d violation(s) across %d node(s)\n", total, len(byNode))
	for _, r := range reasons {
		fmt.Printf("  %-18s %6d\n", r, byReason[r])
	}

	nodes := make([]*nodeAgg, 0, len(byNode))
	for _, a := range byNode {
		nodes = append(nodes, a)
	}
	sort.Slice(nodes, func(i, j int) bool {
		if nodes[i].total != nodes[j].total {
			return nodes[i].total > nodes[j].total
		}
		return nodes[i].node < nodes[j].node
	})
	shown := len(nodes)
	if *top > 0 && shown > *top {
		shown = *top
	}
	fmt.Printf("%6s %7s  breakdown\n", "node", "violations")
	for _, a := range nodes[:shown] {
		parts := make([]string, 0, len(a.byReason))
		for _, r := range reasons {
			if n := a.byReason[r]; n > 0 {
				parts = append(parts, fmt.Sprintf("%s=%d", r, n))
			}
		}
		fmt.Printf("%6d %7d  %s\n", a.node, a.total, strings.Join(parts, " "))
	}
	if shown < len(nodes) {
		fmt.Printf("# (%d more node(s) suppressed by -top)\n", len(nodes)-shown)
	}
	for i, d := range details {
		if i == 0 {
			fmt.Println("first violations:")
		}
		fmt.Println("  " + d)
	}
	return nil
}

// lineMentions reports whether a trace line involves the node, checking
// the common identity keys at the top level and inside frame objects.
func lineMentions(m map[string]any, node float64) bool {
	for _, k := range []string{"node", "src", "dst", "peer", "origin"} {
		if v, ok := m[k].(float64); ok && v == node {
			return true
		}
	}
	if fr, ok := m["frame"].(map[string]any); ok {
		for _, k := range []string{"src", "dst"} {
			if v, ok := fr[k].(float64); ok && v == node {
				return true
			}
		}
	}
	return false
}

// diffAgg is one span file's aggregate for diffing.
type diffAgg struct {
	meta     *span.Meta
	byType   map[string]int
	complete int
	total    int
	latSum   float64
	latN     int
}

func aggregate(path string) (*diffAgg, error) {
	a := &diffAgg{byType: map[string]int{}}
	meta, err := forEachSpan(path, func(s *span.Span) {
		a.total++
		a.byType[s.Type]++
		if s.Complete {
			a.complete++
		}
		if s.Complete && s.LatencyS > 0 {
			a.latSum += s.LatencyS
			a.latN++
		}
	})
	a.meta = meta
	return a, err
}

func cmdDiff(args []string) error {
	fs := flag.NewFlagSet("diff", flag.ExitOnError)
	fs.Parse(args)
	if fs.NArg() != 2 {
		return fmt.Errorf("diff: want exactly two span files, got %d", fs.NArg())
	}
	pa, pb := fs.Arg(0), fs.Arg(1)
	a, err := aggregate(pa)
	if err != nil {
		return err
	}
	b, err := aggregate(pb)
	if err != nil {
		return err
	}
	name := func(m *span.Meta, path string) string {
		if m == nil {
			return path
		}
		return fmt.Sprintf("%s (%s seed=%d)", path, m.Protocol, m.Seed)
	}
	fmt.Printf("a: %s\nb: %s\n", name(a.meta, pa), name(b.meta, pb))
	fmt.Printf("%-14s %12s %12s %12s\n", "metric", "a", "b", "delta")
	row := func(label string, va, vb int) {
		fmt.Printf("%-14s %12d %12d %+12d\n", label, va, vb, vb-va)
	}
	row("spans", a.total, b.total)
	row("complete", a.complete, b.complete)
	keys := map[string]bool{}
	for t := range a.byType {
		keys[t] = true
	}
	for t := range b.byType {
		keys[t] = true
	}
	types := make([]string, 0, len(keys))
	for t := range keys {
		types = append(types, t)
	}
	sort.Strings(types)
	for _, t := range types {
		row(t, a.byType[t], b.byType[t])
	}
	mean := func(d *diffAgg) float64 {
		if d.latN == 0 {
			return 0
		}
		return d.latSum / float64(d.latN)
	}
	fmt.Printf("%-14s %12.4f %12.4f %+12.4f\n", "mean latency", mean(a), mean(b), mean(b)-mean(a))
	return nil
}
