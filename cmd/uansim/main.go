// Command uansim runs one UASN MAC simulation scenario and prints its
// metric summary.
//
//	uansim -proto ewmac -nodes 60 -load 0.6 -sim 300s -seed 1
//	uansim -proto all -load 0.8              # compare the four protocols
//	uansim -proto ewmac -trace run.jsonl     # trace-v2 event stream
//	uansim -proto ewmac -timeseries ts.csv   # periodic health samples
//	uansim -proto ewmac -report run.json     # per-run report (JSON)
//	uansim -proto ewmac -report run.prom     # same, Prometheus text
//	uansim -proto ewmac -faults chaos.json   # fault-injection scenario
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ewmac"
	"ewmac/internal/experiment"
	"ewmac/internal/fault"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		proto   = flag.String("proto", "ewmac", "protocol: ewmac, sfama, ropa, csmac, or all")
		nodes   = flag.Int("nodes", 60, "number of sensing nodes")
		sinks   = flag.Int("sinks", 4, "number of surface sinks")
		load    = flag.Float64("load", 0.5, "network-wide offered load in kbps")
		bits    = flag.Int("bits", 2048, "data packet payload in bits (1024-4096)")
		side    = flag.Float64("side", 1000, "deployment cube side in meters")
		mobile  = flag.Float64("mobile", 0.5, "fraction of drifting sensors")
		simTime = flag.Duration("sim", 300*time.Second, "simulated time")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print extended counters")

		faults     = flag.String("faults", "", "fault-injection scenario JSON file (see examples/faults/)")
		trace      = flag.String("trace", "", "write the trace-v2 JSONL event stream to this file (single protocol only)")
		timeseries = flag.String("timeseries", "", "write periodic CSV health samples to this file (single protocol only)")
		report     = flag.String("report", "", "write a run report to this file: .json for JSON, otherwise Prometheus text (single protocol only)")
		sample     = flag.Duration("sample", time.Second, "sampling period for -timeseries, in simulated time")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")
	)
	flag.Parse()

	var protos []ewmac.Protocol
	if *proto == "all" {
		protos = ewmac.Protocols
	} else {
		protos = []ewmac.Protocol{ewmac.Protocol(*proto)}
	}

	var scenario *fault.Scenario
	if *faults != "" {
		var err error
		if scenario, err = fault.Load(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
	}

	// Observability outputs are one file per run; with several
	// protocols selected they would silently interleave or clobber each
	// other, so that combination is an error, not a no-op.
	if len(protos) > 1 {
		for _, o := range []struct{ name, val string }{
			{"trace", *trace}, {"timeseries", *timeseries}, {"report", *report},
		} {
			if o.val != "" {
				fmt.Fprintf(os.Stderr,
					"uansim: -%s writes one file per run and needs a single protocol; got %d (-proto %s)\n",
					o.name, len(protos), *proto)
				return 2
			}
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	fmt.Printf("%-8s %10s %8s %10s %9s %12s %9s\n",
		"protocol", "thr(kbps)", "deliv%", "exec(s)", "pow(mW)", "overhead(b)", "colls")
	for _, p := range protos {
		cfg := ewmac.DefaultConfig(p)
		cfg.Nodes = *nodes
		cfg.Sinks = *sinks
		cfg.OfferedLoadKbps = *load
		cfg.DataBits = *bits
		cfg.RegionSide = *side
		cfg.MobileFraction = *mobile
		cfg.SimTime = *simTime
		cfg.Seed = *seed
		cfg.Faults = scenario

		obsCfg, closeObs, err := observeFor(*trace, *timeseries, *report, *sample)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		cfg.Observe = obsCfg

		res, runErr := ewmac.Run(cfg)
		if err := closeObs(); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		if runErr != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", runErr)
			return 1
		}
		if *report != "" {
			if err := writeReport(*report, res.Report); err != nil {
				fmt.Fprintf(os.Stderr, "uansim: report: %v\n", err)
				return 1
			}
		}
		s := res.Summary
		fmt.Printf("%-8s %10.4f %8.1f %10.2f %9.1f %12d %9d\n",
			p.DisplayName(), s.ThroughputKbps, 100*s.DeliveryRatio,
			s.ExecutionTime.Seconds(), s.MeanPowerMW, s.OverheadBits, s.PHY.Collisions)
		if *verbose {
			fmt.Printf("  generated=%d delivered=%d (extra=%d) acked=%d rts=%d cts=%d retrans=%d\n",
				s.MAC.Generated, s.MAC.DeliveredPackets, s.MAC.ExtraDeliveredPackets,
				s.MAC.AckedPackets, s.MAC.RTSSent, s.MAC.CTSSent, s.MAC.Retransmissions)
			fmt.Printf("  extra: attempts=%d grants=%d completions=%d\n",
				s.MAC.ExtraAttempts, s.MAC.ExtraGrants, s.MAC.ExtraCompletions)
			if scenario != nil {
				fmt.Printf("  robustness: dropped=%d probes=%d impossible-rx=%d\n",
					s.MAC.Dropped, s.MAC.Probes, s.MAC.ImpossibleRx)
			}
			fmt.Printf("  topology: mean degree=%.1f max pair delay=%v\n",
				res.MeanDegree, res.MaxPairDelay.Truncate(time.Millisecond))
			fmt.Printf("  fairness (Jain): %.3f\n", s.Fairness)
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
	}
	return 0
}

// observeFor builds the run's Observe section from the output flags.
// The returned close function flushes and closes every opened file; it
// is safe to call when nothing was opened.
func observeFor(trace, timeseries, report string, sample time.Duration) (*experiment.Observe, func() error, error) {
	if trace == "" && timeseries == "" && report == "" {
		return nil, func() error { return nil }, nil
	}
	o := &experiment.Observe{SampleEvery: sample, Report: report != ""}
	var closers []func() error
	closeAll := func() error {
		var first error
		for _, c := range closers {
			if err := c(); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	open := func(path string) (*bufio.Writer, error) {
		f, err := os.Create(path)
		if err != nil {
			return nil, err
		}
		w := bufio.NewWriter(f)
		closers = append(closers, func() error {
			if err := w.Flush(); err != nil {
				f.Close()
				return err
			}
			return f.Close()
		})
		return w, nil
	}
	if trace != "" {
		w, err := open(trace)
		if err != nil {
			return nil, nil, err
		}
		o.Trace = w
	}
	if timeseries != "" {
		w, err := open(timeseries)
		if err != nil {
			closeAll()
			return nil, nil, err
		}
		o.TimeSeries = w
	}
	return o, closeAll, nil
}

// writeReport renders the run report to path, choosing the format by
// extension: .json for indented JSON, anything else Prometheus text.
func writeReport(path string, rep *ewmac.RunReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if strings.HasSuffix(path, ".json") {
		if err := rep.WriteJSON(f); err != nil {
			return err
		}
	} else if err := rep.WriteProm(f); err != nil {
		return err
	}
	return f.Close()
}
