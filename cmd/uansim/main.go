// Command uansim runs one UASN MAC simulation scenario and prints its
// metric summary.
//
//	uansim -proto ewmac -nodes 60 -load 0.6 -sim 300s -seed 1
//	uansim -proto all -load 0.8          # compare the four protocols
//	uansim -proto ewmac -trace run.jsonl # per-frame channel trace
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"ewmac"
	"ewmac/internal/experiment"
	"ewmac/internal/packet"
)

// traceEvent is one frame delivery in the JSONL trace.
type traceEvent struct {
	AtSec    float64 `json:"at"`
	Src      uint16  `json:"src"`
	Dst      uint16  `json:"dst"`
	Kind     string  `json:"kind"`
	Seq      uint32  `json:"seq"`
	Bits     int     `json:"bits"`
	DelaySec float64 `json:"delay"`
	LevelDB  float64 `json:"level_db"`
}

func main() {
	os.Exit(run())
}

func run() int {
	var (
		proto   = flag.String("proto", "ewmac", "protocol: ewmac, sfama, ropa, csmac, or all")
		nodes   = flag.Int("nodes", 60, "number of sensing nodes")
		sinks   = flag.Int("sinks", 4, "number of surface sinks")
		load    = flag.Float64("load", 0.5, "network-wide offered load in kbps")
		bits    = flag.Int("bits", 2048, "data packet payload in bits (1024-4096)")
		side    = flag.Float64("side", 1000, "deployment cube side in meters")
		mobile  = flag.Float64("mobile", 0.5, "fraction of drifting sensors")
		simTime = flag.Duration("sim", 300*time.Second, "simulated time")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print extended counters")
		trace   = flag.String("trace", "", "write a JSONL channel trace to this file (single protocol only)")
	)
	flag.Parse()

	var protos []ewmac.Protocol
	if *proto == "all" {
		protos = ewmac.Protocols
	} else {
		protos = []ewmac.Protocol{ewmac.Protocol(*proto)}
	}

	fmt.Printf("%-8s %10s %8s %10s %9s %12s %9s\n",
		"protocol", "thr(kbps)", "deliv%", "exec(s)", "pow(mW)", "overhead(b)", "colls")
	for _, p := range protos {
		cfg := ewmac.DefaultConfig(p)
		cfg.Nodes = *nodes
		cfg.Sinks = *sinks
		cfg.OfferedLoadKbps = *load
		cfg.DataBits = *bits
		cfg.RegionSide = *side
		cfg.MobileFraction = *mobile
		cfg.SimTime = *simTime
		cfg.Seed = *seed
		var closeTrace func() error
		if *trace != "" && len(protos) == 1 {
			f, err := os.Create(*trace)
			if err != nil {
				fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
				return 1
			}
			w := bufio.NewWriter(f)
			enc := json.NewEncoder(w)
			cfg.Instrument = &experiment.Instrumentation{
				Trace: func(src, dst packet.NodeID, fr *packet.Frame, delay time.Duration, level float64) {
					_ = enc.Encode(traceEvent{
						AtSec:    fr.Timestamp.Seconds(),
						Src:      uint16(src),
						Dst:      uint16(dst),
						Kind:     fr.Kind.String(),
						Seq:      fr.Seq,
						Bits:     fr.Bits(),
						DelaySec: delay.Seconds(),
						LevelDB:  level,
					})
				},
			}
			closeTrace = func() error {
				if err := w.Flush(); err != nil {
					return err
				}
				return f.Close()
			}
		}
		res, err := ewmac.Run(cfg)
		if closeTrace != nil {
			if cerr := closeTrace(); cerr != nil {
				fmt.Fprintf(os.Stderr, "uansim: trace: %v\n", cerr)
				return 1
			}
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		s := res.Summary
		fmt.Printf("%-8s %10.4f %8.1f %10.2f %9.1f %12d %9d\n",
			p.DisplayName(), s.ThroughputKbps, 100*s.DeliveryRatio,
			s.ExecutionTime.Seconds(), s.MeanPowerMW, s.OverheadBits, s.PHY.Collisions)
		if *verbose {
			fmt.Printf("  generated=%d delivered=%d (extra=%d) acked=%d rts=%d cts=%d retrans=%d\n",
				s.MAC.Generated, s.MAC.DeliveredPackets, s.MAC.ExtraDeliveredPackets,
				s.MAC.AckedPackets, s.MAC.RTSSent, s.MAC.CTSSent, s.MAC.Retransmissions)
			fmt.Printf("  extra: attempts=%d grants=%d completions=%d\n",
				s.MAC.ExtraAttempts, s.MAC.ExtraGrants, s.MAC.ExtraCompletions)
			fmt.Printf("  topology: mean degree=%.1f max pair delay=%v\n",
				res.MeanDegree, res.MaxPairDelay.Truncate(time.Millisecond))
			fmt.Printf("  fairness (Jain): %.3f\n", s.Fairness)
		}
	}
	return 0
}
