// Command uansim runs one UASN MAC simulation scenario and prints its
// metric summary.
//
//	uansim -proto ewmac -nodes 60 -load 0.6 -sim 300s -seed 1
//	uansim -proto all -load 0.8              # compare the four protocols
//	uansim -proto ewmac -trace run.jsonl     # trace-v2 event stream
//	uansim -proto ewmac -spans run.spans     # causal-span JSONL
//	uansim -proto ewmac -slotprof run.slots  # waiting-resource profile
//	uansim -proto ewmac -timeseries ts.csv   # periodic health samples
//	uansim -proto ewmac -report run.json     # per-run report (JSON)
//	uansim -proto ewmac -report run.prom     # same, Prometheus text
//	uansim -proto all -verify                # streaming Equation-(1) conformance check
//	uansim -proto ewmac -http :8080          # live /metrics, /progress, pprof
//	uansim -proto ewmac -faults chaos.json   # fault-injection scenario
//	uansim -proto ewmac -load 4 -policy deadline -ttl 30s -admission 0.9 \
//	       -retry-burst 8 -v                  # graceful overload management
//	uansim -proto ewmac -adversary -adv-trials 8 -adv-out repro.json
//	                                         # adversarial fault-scenario search
//	uansim -deadline 5m -max-events 100e6    # budget + livelock watchdog
//	uansim -resume run.manifest -proto all   # skip already-completed runs
//
// Every run executes under supervision: panics are reported with their
// stack instead of crashing, -deadline/-max-events bound the run (with
// -retries re-attempts at a doubled budget), and -resume journals
// completed runs so a re-invocation skips them. Output files (-trace,
// -spans, -slotprof, -timeseries, -report) are published atomically —
// an interrupted run leaves the previous complete file, never a torn
// one, and each retry attempt restages from scratch.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"ewmac"
	"ewmac/internal/experiment"
	"ewmac/internal/fault"
	"ewmac/internal/metrics"
	"ewmac/internal/obs"
	"ewmac/internal/resilience/adversary"
	"ewmac/internal/runner"
	"ewmac/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		proto   = flag.String("proto", "ewmac", "protocol: ewmac, sfama, ropa, csmac, or all")
		nodes   = flag.Int("nodes", 60, "number of sensing nodes")
		sinks   = flag.Int("sinks", 4, "number of surface sinks")
		load    = flag.Float64("load", 0.5, "network-wide offered load in kbps")
		bits    = flag.Int("bits", 2048, "data packet payload in bits (1024-4096)")
		side    = flag.Float64("side", 1000, "deployment cube side in meters")
		mobile  = flag.Float64("mobile", 0.5, "fraction of drifting sensors")
		simTime = flag.Duration("sim", 300*time.Second, "simulated time")
		seed    = flag.Int64("seed", 1, "random seed")
		verbose = flag.Bool("v", false, "print extended counters")

		policy     = flag.String("policy", "", "queue drop policy: tail (default), oldest, or deadline")
		ttl        = flag.Duration("ttl", 0, "per-packet deadline for -policy deadline (0 = none)")
		admission  = flag.Float64("admission", 0, "admission-control high-water mark as a queue fraction in (0,1] (0 = off)")
		retryBurst = flag.Int("retry-burst", 0, "retry-budget token-bucket burst (0 = unbudgeted)")
		retryRate  = flag.Float64("retry-rate", 0, "retry-budget refill rate in tokens/s (0 = default with -retry-burst)")
		closedLoop = flag.Bool("closed-loop", false, "withhold arrivals at the source while the MAC reports backpressure (needs -admission)")
		prioEvery  = flag.Int("priority-every", 0, "mark every Nth generated packet high-priority (0 = never)")

		faults     = flag.String("faults", "", "fault-injection scenario JSON file (see examples/faults/)")
		trace      = flag.String("trace", "", "write the trace-v2 JSONL event stream to this file (single protocol only)")
		spans      = flag.String("spans", "", "write the causal-span JSONL stream to this file (single protocol only)")
		slotprof   = flag.String("slotprof", "", "write the per-slot waiting-resource profile to this file (single protocol only)")
		timeseries = flag.String("timeseries", "", "write periodic CSV health samples to this file (single protocol only)")
		report     = flag.String("report", "", "write a run report to this file: .json for JSON, otherwise Prometheus text (single protocol only)")
		sample     = flag.Duration("sample", time.Second, "sampling period for -timeseries, in simulated time")
		verify     = flag.Bool("verify", false, "verify every reception against the paper's Equation (1) as the run streams; exit nonzero on any violation")
		httpAddr   = flag.String("http", "", "serve live run introspection (/metrics, /progress, /debug/pprof) on this address")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file")

		adversary   = flag.Bool("adversary", false, "run the adversarial fault-scenario search instead of a normal run (single protocol only)")
		advTrials   = flag.Int("adv-trials", 16, "adversarial search: number of random scenarios to try")
		advOut      = flag.String("adv-out", "adversary.json", "adversarial search: write the minimized scenario JSON here")
		advCollapse = flag.Float64("adv-collapse", 0.25, "adversarial search: delivery-collapse threshold as a fraction of the fault-free baseline")

		resume    = flag.String("resume", "", "checkpoint manifest path: journal finished runs and skip them on re-run")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget per run (0 = unbounded)")
		maxEvents = flag.Uint64("max-events", 0, "simulation event budget per run (0 = unbounded)")
		retries   = flag.Int("retries", 0, "retries for budget-exceeded runs, each with a doubled budget")
	)
	flag.Parse()

	var protos []ewmac.Protocol
	if *proto == "all" {
		protos = ewmac.Protocols
	} else {
		protos = []ewmac.Protocol{ewmac.Protocol(*proto)}
	}

	var scenario *fault.Scenario
	if *faults != "" {
		var err error
		if scenario, err = fault.Load(*faults); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
	}

	var overload ewmac.OverloadConfig
	if *policy != "" {
		p, err := ewmac.ParseDropPolicy(*policy)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 2
		}
		overload.Policy = p
	}
	overload.PacketTTL = *ttl
	overload.HighWater = *admission
	overload.RetryBudget = ewmac.RetryBudgetConfig{Burst: *retryBurst, RatePerSec: *retryRate}
	overload.Priority = *prioEvery > 0
	if *closedLoop && *admission <= 0 {
		fmt.Fprintln(os.Stderr, "uansim: -closed-loop needs -admission to produce a backpressure signal")
		return 2
	}

	if *adversary {
		return runAdversary(protos, scenario, *nodes, *sinks, *load, *bits,
			*side, *mobile, *simTime, *seed, *advTrials, *advCollapse, *advOut)
	}

	// Observability outputs are one file per run; with several
	// protocols selected they would silently interleave or clobber each
	// other, so that combination is an error, not a no-op.
	if len(protos) > 1 {
		for _, o := range []struct{ name, val string }{
			{"trace", *trace}, {"spans", *spans}, {"slotprof", *slotprof},
			{"timeseries", *timeseries}, {"report", *report},
		} {
			if o.val != "" {
				fmt.Fprintf(os.Stderr,
					"uansim: -%s writes one file per run and needs a single protocol; got %d (-proto %s)\n",
					o.name, len(protos), *proto)
				return 2
			}
		}
	}

	var live *obs.Live
	if *httpAddr != "" {
		live = obs.NewLive()
		addr, err := live.Serve(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: -http: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "uansim: introspection on http://%s (/metrics, /progress, /debug/pprof)\n", addr)
	}

	var manifest *runner.Manifest
	if *resume != "" {
		// The fingerprint pins every scenario input that determines the
		// result; the protocol is part of each point's key, and budget
		// settings may change freely between interrupted run and resume.
		fp := fmt.Sprintf("uansim/v1|nodes=%d|sinks=%d|load=%g|bits=%d|side=%g|mobile=%g|sim=%s|seed=%d|faults=%s",
			*nodes, *sinks, *load, *bits, *side, *mobile, simTime.String(), *seed, *faults)
		m, err := runner.OpenManifest(*resume, fp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		defer m.Close()
		manifest = m
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}

	var totalViolations uint64
	fmt.Printf("%-8s %10s %8s %10s %9s %12s %9s\n",
		"protocol", "thr(kbps)", "deliv%", "exec(s)", "pow(mW)", "overhead(b)", "colls")
	for _, p := range protos {
		cfg := ewmac.DefaultConfig(p)
		cfg.Nodes = *nodes
		cfg.Sinks = *sinks
		cfg.OfferedLoadKbps = *load
		cfg.DataBits = *bits
		cfg.RegionSide = *side
		cfg.MobileFraction = *mobile
		cfg.SimTime = *simTime
		cfg.Seed = *seed
		cfg.Faults = scenario
		cfg.Overload = overload
		cfg.ClosedLoop = *closedLoop
		cfg.PriorityEvery = *prioEvery

		// The run executes under the supervisor: panics surface as a
		// quarantined record with a stack, budget aborts retry with a
		// doubled budget, and with -resume a journaled completion is
		// served without re-running. Output files are staged inside the
		// attempt, so a retried attempt discards its predecessor's
		// partial writes instead of interleaving with them.
		var (
			res       *ewmac.Result
			commitObs func() error
			abortObs  func()
		)
		pf := func(_ runner.Key, b sim.Budget) (metrics.Summary, error) {
			if abortObs != nil {
				abortObs()
			}
			obsCfg, commit, abort, err := observeFor(*trace, *spans, *slotprof, *timeseries, *report, *sample)
			if err != nil {
				return metrics.Summary{}, err
			}
			commitObs, abortObs = commit, abort
			c := cfg
			c.Observe = obsCfg
			if *verify {
				if c.Observe == nil {
					c.Observe = &experiment.Observe{}
				}
				c.Observe.Verify = true
			}
			if live != nil {
				if c.Observe == nil {
					c.Observe = &experiment.Observe{}
				}
				c.Observe.Recorder = obs.Multi(c.Observe.Recorder, live)
				live.SetRun(p.DisplayName(), c.Seed, c.Nodes)
			}
			c.Budget = b
			r, err := ewmac.Run(c)
			if err != nil {
				return metrics.Summary{}, err
			}
			res = r
			return r.Summary, nil
		}
		rec, supErr := runner.Supervise(
			runner.Key{Sweep: "uansim", Protocol: string(p), X: *load}, pf,
			runner.Options{
				Manifest: manifest,
				Budget:   sim.Budget{Deadline: *deadline, MaxEvents: *maxEvents},
				Retries:  *retries,
				Backoff:  100 * time.Millisecond,
				OnEvent:  func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
			})

		// Publish the observability files only for a freshly-executed
		// run; a resumed or failed run must leave previous outputs
		// intact rather than clobber them with empty files. (A resumed
		// run never entered pf, so the closures may still be nil.)
		if rec.Resumed || rec.Status != runner.StatusDone {
			if abortObs != nil {
				abortObs()
			}
		} else if commitObs != nil {
			if err := commitObs(); err != nil {
				fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
				return 1
			}
		}
		if supErr != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", supErr)
			return 1
		}
		if rec.Status != runner.StatusDone {
			fmt.Fprintf(os.Stderr, "uansim: %s: %s\n", p.DisplayName(), rec.Error)
			if rec.Stack != "" {
				fmt.Fprint(os.Stderr, rec.Stack)
			}
			return 1
		}

		if *report != "" && res != nil {
			if res.Report != nil {
				res.Report.Supervision = &obs.SupervisionStats{
					Attempts:     rec.Attempts,
					Retries:      rec.Retries,
					BudgetAborts: rec.BudgetAborts,
					Resumed:      rec.Resumed,
				}
			}
			if err := writeReport(*report, res.Report); err != nil {
				fmt.Fprintf(os.Stderr, "uansim: report: %v\n", err)
				return 1
			}
		}
		s := *rec.Summary
		fmt.Printf("%-8s %10.4f %8.1f %10.2f %9.1f %12d %9d",
			p.DisplayName(), s.ThroughputKbps, 100*s.DeliveryRatio,
			s.ExecutionTime.Seconds(), s.MeanPowerMW, s.OverheadBits, s.PHY.Collisions)
		if rec.Resumed {
			fmt.Print("  (resumed)")
		}
		fmt.Println()
		if *verify && res != nil && res.Conformance != nil {
			st := res.Conformance
			if st.Violations == 0 {
				fmt.Printf("  conformance: ok (%d receptions, %d losses checked; peak index %d arrivals / %d tx spans)\n",
					st.Receptions, st.Losses, st.PeakArrivals, st.PeakTxSpans)
			} else {
				totalViolations += st.Violations
				fmt.Printf("  conformance: %d VIOLATIONS %v\n", st.Violations, st.ByReason)
			}
		}
		if *verbose {
			fmt.Printf("  generated=%d delivered=%d (extra=%d) acked=%d rts=%d cts=%d retrans=%d\n",
				s.MAC.Generated, s.MAC.DeliveredPackets, s.MAC.ExtraDeliveredPackets,
				s.MAC.AckedPackets, s.MAC.RTSSent, s.MAC.CTSSent, s.MAC.Retransmissions)
			fmt.Printf("  extra: attempts=%d grants=%d completions=%d\n",
				s.MAC.ExtraAttempts, s.MAC.ExtraGrants, s.MAC.ExtraCompletions)
			if scenario != nil || s.MAC.Dropped > 0 || s.MAC.RetryDeferrals > 0 {
				fmt.Printf("  robustness: dropped=%d (retry=%d dead-peer=%d queue-full=%d oldest=%d expired=%d shed=%d) retry-deferrals=%d probes=%d impossible-rx=%d\n",
					s.MAC.Dropped, s.MAC.DroppedRetry, s.MAC.DroppedDeadPeer,
					s.MAC.DroppedQueueFull, s.MAC.DroppedOldest,
					s.MAC.DroppedExpired, s.MAC.DroppedShed,
					s.MAC.RetryDeferrals, s.MAC.Probes, s.MAC.ImpossibleRx)
			}
			if scenario != nil {
				fmt.Printf("  recovery: suspects=%d deads=%d resurrections=%d watchdog-resets=%d\n",
					s.MAC.SuspectMarks, s.MAC.DeadMarks, s.MAC.Resurrections, s.MAC.WatchdogResets)
			}
			if res != nil && res.Resilience != nil {
				r := res.Resilience
				if scenario != nil {
					fmt.Printf("  resilience: episodes=%d recovered=%d meanTTR=%.1fs degraded=%.1fs (delivery ratio %.2f) stranded=%d\n",
						r.Episodes, r.Recovered, r.MeanTimeToRecoverS, r.DegradedS,
						r.DegradedDeliveryRatio, r.StrandedPackets)
				}
				if r.OverloadEpisodes > 0 || r.ShedPackets > 0 || r.RetryDeferrals > 0 {
					fmt.Printf("  overload: episodes=%d shedding=%.1fs shed-packets=%d retry-deferrals=%d\n",
						r.OverloadEpisodes, r.OverloadS, r.ShedPackets, r.RetryDeferrals)
				}
			}
			if res != nil {
				fmt.Printf("  topology: mean degree=%.1f max pair delay=%v\n",
					res.MeanDegree, res.MaxPairDelay.Truncate(time.Millisecond))
			}
			fmt.Printf("  fairness (Jain): %.3f\n", s.Fairness)
			if rec.Retries > 0 || rec.BudgetAborts > 0 {
				fmt.Printf("  supervision: attempts=%d retries=%d budget-aborts=%d\n",
					rec.Attempts, rec.Retries, rec.BudgetAborts)
			}
		}
	}

	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fmt.Fprintf(os.Stderr, "uansim: %v\n", err)
			return 1
		}
	}
	if totalViolations > 0 {
		fmt.Fprintf(os.Stderr, "uansim: conformance verification failed: %d violations\n", totalViolations)
		return 1
	}
	return 0
}

// runAdversary executes the adversarial fault-scenario search on the
// scenario assembled from the normal flags and, when a violation is
// found, writes the minimized reproducer as a -faults-compatible JSON
// file.
func runAdversary(protos []ewmac.Protocol, scenario *fault.Scenario,
	nodes, sinks int, load float64, bits int, side, mobile float64,
	simTime time.Duration, seed int64, trials int, collapse float64, out string) int {
	if len(protos) != 1 {
		fmt.Fprintf(os.Stderr, "uansim: -adversary searches one protocol at a time; got %d\n", len(protos))
		return 2
	}
	if scenario != nil {
		fmt.Fprintln(os.Stderr, "uansim: -adversary generates its own scenarios; drop -faults")
		return 2
	}
	p := protos[0]
	cfg := ewmac.DefaultConfig(p)
	cfg.Nodes = nodes
	cfg.Sinks = sinks
	cfg.OfferedLoadKbps = load
	cfg.DataBits = bits
	cfg.RegionSide = side
	cfg.MobileFraction = mobile
	cfg.SimTime = simTime
	cfg.Seed = seed

	f, err := adversary.Search(adversary.Options{
		Base:             cfg,
		Trials:           trials,
		Seed:             seed,
		CollapseFraction: collapse,
		Log:              func(line string) { fmt.Fprintln(os.Stderr, "  "+line) },
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "uansim: adversary: %v\n", err)
		return 1
	}
	if f == nil {
		fmt.Printf("%s: no invariant violation in %d trials\n", p.DisplayName(), trials)
		return 0
	}
	b, err := json.MarshalIndent(f.Scenario, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "uansim: adversary: %v\n", err)
		return 1
	}
	if err := obs.WriteFileAtomic(out, append(b, '\n')); err != nil {
		fmt.Fprintf(os.Stderr, "uansim: adversary: %v\n", err)
		return 1
	}
	fmt.Printf("%s: %s violated (trial %d, %d shrink steps, %d runs)\n",
		p.DisplayName(), f.Invariant, f.Trial, f.ShrinkSteps, f.Runs)
	fmt.Printf("  %s\n", f.Detail)
	fmt.Printf("  baseline delivery %.3f, violating delivery %.3f (delivered %d of %d)\n",
		f.BaselineRatio, f.Violating.DeliveryRatio,
		f.Violating.MAC.DeliveredPackets, f.Violating.MAC.Generated)
	fmt.Printf("  reproducer: %s\n", out)
	fmt.Printf("  replay: uansim -proto %s -nodes %d -sinks %d -load %g -bits %d -side %g -mobile %g -sim %s -seed %d -faults %s\n",
		string(p), nodes, sinks, load, bits, side, mobile, simTime, seed, out)
	return 0
}

// observeFor builds the run's Observe section from the output flags.
// Output files are staged atomically: commit publishes them (fsync +
// rename), abort discards the staged content and leaves any previous
// files untouched. Both are safe to call when nothing was opened.
func observeFor(trace, spans, slotprof, timeseries, report string, sample time.Duration) (*experiment.Observe, func() error, func(), error) {
	nop := func() error { return nil }
	if trace == "" && spans == "" && slotprof == "" && timeseries == "" && report == "" {
		return nil, nop, func() {}, nil
	}
	o := &experiment.Observe{SampleEvery: sample, Report: report != ""}
	var staged []*obs.AtomicFile
	var flushes []func() error
	commit := func() error {
		for _, fl := range flushes {
			if err := fl(); err != nil {
				return err
			}
		}
		for _, a := range staged {
			if err := a.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	abort := func() {
		for _, a := range staged {
			a.Abort()
		}
	}
	open := func(path string) (*bufio.Writer, error) {
		a, err := obs.CreateAtomic(path)
		if err != nil {
			return nil, err
		}
		staged = append(staged, a)
		w := bufio.NewWriter(a)
		flushes = append(flushes, w.Flush)
		return w, nil
	}
	if trace != "" {
		w, err := open(trace)
		if err != nil {
			return nil, nil, nil, err
		}
		o.Trace = w
	}
	if spans != "" {
		w, err := open(spans)
		if err != nil {
			abort()
			return nil, nil, nil, err
		}
		o.Spans = w
	}
	if slotprof != "" {
		w, err := open(slotprof)
		if err != nil {
			abort()
			return nil, nil, nil, err
		}
		o.SlotProfile = w
	}
	if timeseries != "" {
		w, err := open(timeseries)
		if err != nil {
			abort()
			return nil, nil, nil, err
		}
		o.TimeSeries = w
	}
	return o, commit, abort, nil
}

// writeReport renders the run report and publishes it atomically,
// choosing the format by extension: .json for indented JSON, anything
// else Prometheus text.
func writeReport(path string, rep *ewmac.RunReport) error {
	var buf bytes.Buffer
	if strings.HasSuffix(path, ".json") {
		if err := rep.WriteJSON(&buf); err != nil {
			return err
		}
	} else if err := rep.WriteProm(&buf); err != nil {
		return err
	}
	return obs.WriteFileAtomic(path, buf.Bytes())
}
