// Command benchjson runs the simulator's performance benchmarks and
// writes the results as machine-readable JSON, so observability-layer
// overhead can be tracked across commits.
//
//	benchjson                # writes BENCH_obs.json
//	benchjson -o out.json    # custom path
//	benchjson -benchtime 3s  # longer sampling
//
// Three benchmarks run: the engine schedule/run micro-benchmark
// (mirroring BenchmarkEngineScheduleRun in internal/sim), and a short
// EW-MAC scenario with observability off and fully on — the pair that
// bounds the event bus's cost.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"testing"
	"time"

	"ewmac"
	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// result is one benchmark's measurements.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EventsPerSec is the discrete-event execution rate, where known.
	EventsPerSec float64 `json:"events_per_s,omitempty"`
	Iterations   int     `json:"iterations"`
}

func main() {
	// Register the testing package's flags (test.benchtime below) so
	// testing.Benchmark works outside "go test".
	testing.Init()
	out := flag.String("o", "BENCH_obs.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "target sampling time per benchmark")
	flag.Parse()

	// testing.Benchmark honours this global; there is no public field
	// for it on testing.B.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	results := []result{
		benchEngine(),
		benchScenario("ewmac/obs-off", nil),
		benchScenario("ewmac/obs-on", &ewmac.Observe{
			Recorder: obs.RecorderFunc(func(sim.Time, obs.Event) {}),
			Trace:    io.Discard,
			Report:   true,
		}),
	}

	f, err := os.Create(*out)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(f)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err == nil {
		err = f.Close()
	} else {
		f.Close()
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	for _, r := range results {
		fmt.Printf("%-18s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/s", r.EventsPerSec)
		}
		fmt.Println()
	}
}

// benchEngine mirrors internal/sim's BenchmarkEngineScheduleRun: one op
// schedules and executes a batch of 1024 events.
func benchEngine() result {
	const batch = 1024
	br := testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		r := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				e.ScheduleIn(time.Duration(r.Intn(1000))*time.Microsecond, sim.PriorityMAC, func() {})
			}
			e.Run()
		}
	})
	res := toResult("engine/schedule-run", br)
	if ns := res.NsPerOp; ns > 0 {
		res.EventsPerSec = batch / ns * 1e9
	}
	return res
}

// benchScenario measures a short Table 2 EW-MAC run; observe toggles
// the full observability stack to expose its marginal cost.
func benchScenario(name string, observe *ewmac.Observe) result {
	var lastEPS float64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := ewmac.DefaultConfig(ewmac.EWMAC)
			cfg.SimTime = 60 * time.Second
			cfg.Seed = int64(i + 1)
			cfg.Observe = observe
			res, err := ewmac.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Report != nil {
				lastEPS = res.Report.EngineEventsPerS
			}
		}
	})
	res := toResult(name, br)
	res.EventsPerSec = lastEPS
	return res
}

func toResult(name string, br testing.BenchmarkResult) result {
	return result{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Iterations:  br.N,
	}
}
