// Command benchjson runs the simulator's performance benchmarks and
// writes the results as machine-readable JSON, so hot-path regressions
// can be tracked across commits.
//
//	benchjson                        # writes BENCH_8.json
//	benchjson -o out.json            # custom path
//	benchjson -benchtime 3s          # longer sampling
//	benchjson -quick                 # engine/channel micro-benches only
//	benchjson -compare BENCH_8.json  # print % deltas vs a saved run,
//	                                 # exit nonzero past -threshold
//	benchjson -alloc-threshold 10    # also gate allocs/op regressions
//
// The full suite runs the engine schedule/run micro-benchmark, the
// channel broadcast micro-benchmark at two densities (40 and 200
// nodes), and a short EW-MAC scenario with observability off and
// fully on — the pair that bounds the event bus's cost.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"testing"
	"time"

	"ewmac"
	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

// result is one benchmark's measurements.
type result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	// EventsPerSec is the discrete-event execution rate, where known.
	EventsPerSec float64 `json:"events_per_s,omitempty"`
	Iterations   int     `json:"iterations"`
}

func main() {
	os.Exit(run())
}

func run() int {
	// Register the testing package's flags (test.benchtime below) so
	// testing.Benchmark works outside "go test".
	testing.Init()
	out := flag.String("o", "BENCH_8.json", "output file")
	benchtime := flag.Duration("benchtime", time.Second, "target sampling time per benchmark")
	quick := flag.Bool("quick", false, "run only the engine/channel micro-benchmarks")
	compare := flag.String("compare", "", "baseline JSON to diff against (per-benchmark % deltas)")
	threshold := flag.Float64("threshold", 5, "ns/op regression %% beyond which -compare exits nonzero")
	allocThreshold := flag.Float64("alloc-threshold", 0, "allocs/op regression %% beyond which -compare exits nonzero (0 disables)")
	flag.Parse()

	// testing.Benchmark honours this global; there is no public field
	// for it on testing.B.
	if err := flag.Set("test.benchtime", benchtime.String()); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}

	results := []result{benchEngine()}
	for _, n := range []int{40, 200} {
		chRes, err := benchChannel(n)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		results = append(results, chRes)
	}
	if !*quick {
		results = append(results,
			benchScenario("ewmac/obs-off", nil),
			benchScenario("ewmac/obs-on", &ewmac.Observe{
				Recorder: obs.RecorderFunc(func(sim.Time, obs.Event) {}),
				Trace:    io.Discard,
				Report:   true,
			}),
		)
	}

	if err := writeResults(*out, results); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		return 1
	}
	for _, r := range results {
		fmt.Printf("%-22s %12.0f ns/op %8d allocs/op", r.Name, r.NsPerOp, r.AllocsPerOp)
		if r.EventsPerSec > 0 {
			fmt.Printf(" %12.0f events/s", r.EventsPerSec)
		}
		fmt.Println()
	}

	if *compare != "" {
		regressed, err := compareResults(*compare, results, *threshold, *allocThreshold)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
			return 1
		}
		if regressed {
			return 2
		}
	}
	return 0
}

// writeResults lands the JSON atomically: a crash mid-write must not
// leave a torn baseline for a later -compare to misparse.
func writeResults(path string, results []result) error {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		return err
	}
	return obs.WriteFileAtomic(path, buf.Bytes())
}

// compareResults prints per-benchmark deltas of the current run against
// the baseline file and reports whether any benchmark's ns/op regressed
// beyond threshold percent, or (when allocThreshold > 0) its allocs/op
// regressed beyond allocThreshold percent.
func compareResults(path string, cur []result, threshold, allocThreshold float64) (regressed bool, err error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return false, err
	}
	var old []result
	if err := json.Unmarshal(raw, &old); err != nil {
		return false, fmt.Errorf("parsing %s: %w", path, err)
	}
	base := make(map[string]result, len(old))
	for _, r := range old {
		base[r.Name] = r
	}

	pct := func(oldV, newV float64) string {
		if oldV == 0 {
			return "     n/a"
		}
		return fmt.Sprintf("%+7.1f%%", (newV-oldV)/oldV*100)
	}
	fmt.Printf("\ncompare vs %s (ns/op regression threshold %.1f%%):\n", path, threshold)
	fmt.Printf("%-22s %14s %14s %9s %9s %9s\n", "benchmark", "old ns/op", "new ns/op", "Δns/op", "Δallocs", "ΔB/op")
	for _, r := range cur {
		o, ok := base[r.Name]
		if !ok {
			fmt.Printf("%-22s %14s (no baseline entry)\n", r.Name, "-")
			continue
		}
		fmt.Printf("%-22s %14.0f %14.0f %9s %9s %9s",
			r.Name, o.NsPerOp, r.NsPerOp,
			pct(o.NsPerOp, r.NsPerOp),
			pct(float64(o.AllocsPerOp), float64(r.AllocsPerOp)),
			pct(float64(o.BytesPerOp), float64(r.BytesPerOp)))
		if o.EventsPerSec > 0 && r.EventsPerSec > 0 {
			fmt.Printf("  events/s %s", pct(o.EventsPerSec, r.EventsPerSec))
		}
		if o.NsPerOp > 0 && !math.IsNaN(r.NsPerOp) &&
			(r.NsPerOp-o.NsPerOp)/o.NsPerOp*100 > threshold {
			regressed = true
			fmt.Printf("  REGRESSED")
		}
		if allocThreshold > 0 && o.AllocsPerOp > 0 &&
			float64(r.AllocsPerOp-o.AllocsPerOp)/float64(o.AllocsPerOp)*100 > allocThreshold {
			regressed = true
			fmt.Printf("  ALLOCS-REGRESSED")
		}
		fmt.Println()
	}
	for _, o := range old {
		found := false
		for _, r := range cur {
			if r.Name == o.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Printf("%-22s (baseline entry not in this run)\n", o.Name)
		}
	}
	return regressed, nil
}

// benchEngine mirrors internal/sim's BenchmarkEngineScheduleRun: one op
// schedules and executes a batch of 1024 events.
func benchEngine() result {
	const batch = 1024
	br := testing.Benchmark(func(b *testing.B) {
		e := sim.NewEngine(1)
		r := rand.New(rand.NewSource(1))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for j := 0; j < batch; j++ {
				e.ScheduleIn(time.Duration(r.Intn(1000))*time.Microsecond, sim.PriorityMAC, func() {})
			}
			e.Run()
		}
	})
	res := toResult("engine/schedule-run", br)
	if ns := res.NsPerOp; ns > 0 {
		res.EventsPerSec = batch / ns * 1e9
	}
	return res
}

// benchChannel mirrors internal/channel's BenchmarkChannelBroadcast:
// one op broadcasts a control frame to a static n-node deployment and
// drains the scheduled arrivals — the geometry-cache + copy-on-write
// hot path. The 40-node shape is the historical baseline; 200 nodes
// exercises the same path at a receiver fan-out where per-receiver
// costs dominate setup. Setup failures are reported as errors, not
// panics: a bench harness must exit with a diagnosable status.
func benchChannel(n int) (result, error) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, n)
	for i := range nodes {
		nodes[i] = &topology.Node{
			ID:  packet.NodeID(i + 1),
			Pos: vec.V3{X: float64(i%8) * 300, Y: float64(i/8) * 300, Z: 100},
		}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		return result{}, fmt.Errorf("channel bench topology: %w", err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		return result{}, fmt.Errorf("channel bench: %w", err)
	}
	for i := range nodes {
		m, err := phy.NewModem(phy.Config{
			ID: packet.NodeID(i + 1), Engine: eng, Model: model,
			Medium: ch, Energy: energy.DefaultProfile(),
		})
		if err != nil {
			return result{}, fmt.Errorf("channel bench modem %d: %w", i+1, err)
		}
		if err := ch.Register(m); err != nil {
			return result{}, fmt.Errorf("channel bench: %w", err)
		}
	}
	f := &packet.Frame{
		Kind: packet.KindRTS, Src: 1, Dst: 2,
		Neighbors: []packet.NeighborInfo{{ID: 2, Delay: time.Second}},
	}
	dur := 10 * time.Millisecond
	var benchErr error
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := ch.Broadcast(1, f, dur); err != nil {
				benchErr = err
				b.Fatal(err)
			}
			eng.Run()
		}
	})
	if benchErr != nil {
		return result{}, fmt.Errorf("channel bench broadcast: %w", benchErr)
	}
	return toResult(fmt.Sprintf("channel/broadcast-%d", n), br), nil
}

// benchScenario measures a short Table 2 EW-MAC run; observe toggles
// the full observability stack to expose its marginal cost.
func benchScenario(name string, observe *ewmac.Observe) result {
	var lastEPS float64
	br := testing.Benchmark(func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := ewmac.DefaultConfig(ewmac.EWMAC)
			cfg.SimTime = 60 * time.Second
			cfg.Seed = int64(i + 1)
			cfg.Observe = observe
			res, err := ewmac.Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			if res.Report != nil {
				lastEPS = res.Report.EngineEventsPerS
			}
		}
	})
	res := toResult(name, br)
	res.EventsPerSec = lastEPS
	return res
}

func toResult(name string, br testing.BenchmarkResult) result {
	return result{
		Name:        name,
		NsPerOp:     float64(br.NsPerOp()),
		AllocsPerOp: br.AllocsPerOp(),
		BytesPerOp:  br.AllocedBytesPerOp(),
		Iterations:  br.N,
	}
}
