// Command figures regenerates the paper's evaluation tables and
// figures. With no arguments it runs everything; otherwise pass any of
// table2, fig6, fig7, fig8, fig9a, fig9b, fig10a, fig10b, fig11.
//
//	figures -seeds 3 -sim 300s -csv out/ fig6 fig11
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"ewmac/internal/figures"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds   = flag.Int("seeds", 3, "seeds averaged per data point")
		simTime = flag.Duration("sim", 300*time.Second, "simulated time per run")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		quiet   = flag.Bool("q", false, "suppress progress lines")
	)
	flag.Parse()

	opts := figures.Options{SimTime: *simTime}
	for s := int64(1); s <= int64(*seeds); s++ {
		opts.Seeds = append(opts.Seeds, s)
	}
	if !*quiet {
		opts.Progress = func(line string) { fmt.Fprintln(os.Stderr, "  "+line) }
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	all := len(want) == 0

	if all || want["table2"] {
		fmt.Println(figures.Table2())
	}
	for _, fg := range figures.All() {
		if !all && !want[fg.ID] {
			continue
		}
		start := time.Now()
		t, err := fg.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", fg.ID, err)
			return 1
		}
		fmt.Println(t.Render())
		fmt.Fprintf(os.Stderr, "  (%s took %v)\n", fg.ID, time.Since(start).Truncate(time.Millisecond))
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return 1
			}
			path := filepath.Join(*csvDir, fg.ID+".csv")
			if err := os.WriteFile(path, []byte(t.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return 1
			}
		}
	}
	return 0
}
