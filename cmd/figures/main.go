// Command figures regenerates the paper's evaluation tables and
// figures. With no arguments it runs everything; otherwise pass any of
// table2, fig6, fig7, fig8, fig9a, fig9b, fig10a, fig10b, fig11.
//
//	figures -seeds 3 -sim 300s -workers 8 -csv out/ fig6 fig11
//	figures -resume run.manifest -csv out/      # checkpoint + resume
//	figures -deadline 10m -max-events 200e6 -retries 2
//	figures -faults examples/faults/chaos.json  # every figure under faults
//
// With -resume, every finished sweep point is journaled to the given
// manifest; re-running the same command after an interruption (even
// SIGKILL) skips the completed points and produces bit-identical
// tables. -deadline/-max-events bound each point's run; points that
// exceed the budget are retried up to -retries times with a doubled
// budget, then quarantined as NaN cells instead of aborting the run.
package main

import (
	"flag"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"time"

	"ewmac/internal/fault"
	"ewmac/internal/figures"
	"ewmac/internal/obs"
	"ewmac/internal/runner"
	"ewmac/internal/sim"
)

func main() {
	os.Exit(run())
}

func run() int {
	var (
		seeds   = flag.Int("seeds", 3, "seeds averaged per data point")
		simTime = flag.Duration("sim", 300*time.Second, "simulated time per run")
		faults  = flag.String("faults", "", "fault-injection scenario JSON applied to every sweep point (see examples/faults/)")
		csvDir  = flag.String("csv", "", "directory to write per-figure CSV files (optional)")
		quiet   = flag.Bool("q", false, "suppress progress lines")
		workers = flag.Int("workers", 0, "max concurrent sweep points (0 = GOMAXPROCS, 1 = serial)")

		httpAddr  = flag.String("http", "", "serve live sweep introspection (/metrics, /progress, /debug/pprof) on this address")
		resume    = flag.String("resume", "", "checkpoint manifest path: journal finished points and skip them on re-run")
		deadline  = flag.Duration("deadline", 0, "wall-clock budget per sweep point (0 = unbounded)")
		maxEvents = flag.Uint64("max-events", 0, "simulation event budget per sweep point (0 = unbounded)")
		retries   = flag.Int("retries", 1, "retries for budget-exceeded points, each with a doubled budget")
	)
	flag.Parse()

	opts := figures.Options{
		SimTime: *simTime,
		Workers: *workers,
		Budget:  sim.Budget{Deadline: *deadline, MaxEvents: *maxEvents},
		Retries: *retries,
		Backoff: 100 * time.Millisecond,
	}
	// The scenario content (not the path) becomes part of the resume
	// fingerprint below: pointing the same manifest at an edited
	// scenario file must invalidate it, and renaming the file must not.
	var faultsFP string
	if *faults != "" {
		scenario, err := fault.Load(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			return 1
		}
		opts.Faults = scenario
		raw, err := os.ReadFile(*faults)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			return 1
		}
		h := fnv.New64a()
		h.Write(raw)
		faultsFP = fmt.Sprintf("%016x", h.Sum64())
	}
	for s := int64(1); s <= int64(*seeds); s++ {
		opts.Seeds = append(opts.Seeds, s)
	}
	if *httpAddr != "" {
		live := obs.NewLive()
		addr, err := live.Serve(*httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: -http: %v\n", err)
			return 1
		}
		fmt.Fprintf(os.Stderr, "  introspection on http://%s (/metrics, /progress, /debug/pprof)\n", addr)
		opts.Live = live
	}

	var progressMu sync.Mutex
	if !*quiet {
		opts.Progress = func(line string) {
			progressMu.Lock()
			defer progressMu.Unlock()
			fmt.Fprintln(os.Stderr, "  "+line)
		}
	}

	if *resume != "" {
		// The fingerprint covers exactly the inputs that determine point
		// results; budget/worker/retry settings are free to change between
		// the interrupted run and the resume.
		fp := fmt.Sprintf("figures/v1|seeds=%d|sim=%s|faults=%s", *seeds, simTime.String(), faultsFP)
		m, err := runner.OpenManifest(*resume, fp)
		if err != nil {
			fmt.Fprintf(os.Stderr, "figures: %v\n", err)
			return 1
		}
		defer m.Close()
		if n := m.Loaded(); n > 0 && !*quiet {
			fmt.Fprintf(os.Stderr, "  resuming %s: %d points already done\n", *resume, n)
		}
		opts.Manifest = m
	}

	want := map[string]bool{}
	for _, a := range flag.Args() {
		want[strings.ToLower(a)] = true
	}
	all := len(want) == 0

	if all || want["table2"] {
		fmt.Println(figures.Table2())
	}

	type figJob struct {
		id  string
		run func(figures.Options) (*figures.Table, error)
	}
	var selected []figJob
	for _, fg := range figures.All() {
		if all || want[fg.ID] {
			selected = append(selected, figJob{fg.ID, fg.Run})
		}
	}

	// Figures run concurrently too; the per-point worker pool inside each
	// sweep and the global run gate in the experiment package keep total
	// CPU use bounded regardless of how many figures are in flight.
	// Output stays in selection order: each figure's results print as
	// soon as it and all its predecessors are done.
	type figRes struct {
		t    *figures.Table
		err  error
		took time.Duration
	}
	figPar := *workers
	if figPar <= 0 {
		figPar = runtime.GOMAXPROCS(0)
	}
	sem := make(chan struct{}, figPar)
	results := make([]figRes, len(selected))
	done := make([]chan struct{}, len(selected))
	for i := range selected {
		done[i] = make(chan struct{})
		go func(i int) {
			defer close(done[i])
			sem <- struct{}{}
			defer func() { <-sem }()
			start := time.Now()
			t, err := selected[i].run(opts)
			results[i] = figRes{t: t, err: err, took: time.Since(start)}
		}(i)
	}

	quarantined := 0
	for i, fg := range selected {
		<-done[i]
		r := results[i]
		if r.err != nil {
			fmt.Fprintf(os.Stderr, "figures: %s: %v\n", fg.id, r.err)
			return 1
		}
		fmt.Println(r.t.Render())
		fmt.Fprintf(os.Stderr, "  (%s took %v)\n", fg.id, r.took.Truncate(time.Millisecond))
		if st := r.t.Stats; st.Resumed > 0 || st.Retries > 0 || st.Quarantined > 0 {
			fmt.Fprintf(os.Stderr, "  (%s supervision: %d/%d done, %d resumed, %d retries, %d quarantined)\n",
				fg.id, st.Completed, st.Points, st.Resumed, st.Retries, st.Quarantined)
		}
		if r.t.Failed != nil {
			quarantined += r.t.Stats.Quarantined
			for _, p := range r.t.Protocols {
				for _, msg := range r.t.Failed[p] {
					fmt.Fprintf(os.Stderr, "  WARNING %s %s: %s\n", fg.id, p.DisplayName(), msg)
				}
			}
		}
		if *csvDir != "" {
			if err := os.MkdirAll(*csvDir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return 1
			}
			path := filepath.Join(*csvDir, fg.id+".csv")
			if err := obs.WriteFileAtomic(path, []byte(r.t.CSV())); err != nil {
				fmt.Fprintf(os.Stderr, "figures: %v\n", err)
				return 1
			}
		}
	}
	if quarantined > 0 {
		fmt.Fprintf(os.Stderr, "figures: %d point(s) quarantined; their cells are NaN\n", quarantined)
		return 3
	}
	return 0
}
