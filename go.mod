module ewmac

go 1.22
