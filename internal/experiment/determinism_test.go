package experiment

import (
	"encoding/binary"
	"hash/fnv"
	"math"
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// traceHash runs cfg once and folds every scheduled frame delivery
// (source, destination, kind, sequence, timestamp, propagation delay,
// received level, wire size) plus the final metric summary into one
// FNV-64a digest. Two runs producing the same hash executed the same
// transmissions at the same instants with the same outcomes — the
// bit-identical-trace oracle every hot-path optimization is held to.
func traceHash(t *testing.T, cfg Config) uint64 {
	t.Helper()
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		binary.LittleEndian.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:])
	}
	cfg.Instrument = &Instrumentation{
		Trace: func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
			w64(uint64(src)<<32 | uint64(dst)<<16 | uint64(f.Kind))
			w64(uint64(f.Seq))
			w64(uint64(f.Timestamp))
			w64(uint64(delay))
			w64(math.Float64bits(levelDB))
			w64(uint64(f.Bits()))
		},
		RxTap: func(now sim.Time, node packet.NodeID, f *packet.Frame) {
			w64(uint64(now))
			w64(uint64(node)<<16 | uint64(f.Kind))
		},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("traceHash run: %v", err)
	}
	s := res.Summary
	w64(math.Float64bits(s.ThroughputKbps))
	w64(math.Float64bits(s.DeliveryRatio))
	w64(math.Float64bits(s.MeanPowerMW))
	w64(uint64(s.ExecutionTime))
	w64(s.OverheadBits)
	w64(s.MAC.DeliveredPackets)
	w64(s.PHY.Collisions)
	return h.Sum64()
}

// goldenStaticConfig is the fixed no-fault static-topology scenario
// whose trace hash is pinned across commits.
func goldenStaticConfig(p Protocol) Config {
	cfg := Default(p)
	cfg.Nodes = 24
	cfg.Sinks = 2
	cfg.MobileFraction = 0
	cfg.SimTime = 60 * time.Second
	cfg.Seed = 7
	return cfg
}

// goldenMobileConfig exercises the mobility path (geometry cache
// invalidation every step) in the same pinned way.
func goldenMobileConfig() Config {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 20
	cfg.Sinks = 2
	cfg.SimTime = 45 * time.Second
	cfg.MobileFraction = 0.5
	cfg.CurrentMS = 1.5
	cfg.Seed = 11
	return cfg
}

// goldenStaticHashes pins the exact event trace of the no-fault
// static-topology scenario per protocol, captured before the hot-path
// overhaul (pooled scheduler, geometry cache, copy-on-write frames).
// A mismatch means an "optimization" changed simulation behaviour.
var goldenStaticHashes = map[Protocol]uint64{
	ProtocolSFAMA: 0xc55ae16771c274d3,
	ProtocolROPA:  0x8d7f2372bd7587a5,
	ProtocolCSMAC: 0xb1dc385203bfdff1,
	ProtocolEWMAC: 0x2c20421d03385755,
}

// goldenMobileHash pins the mobile-topology trace the same way; it
// exercises the geometry-cache invalidation path every mobility step.
const goldenMobileHash = 0xd6efd49bfc39cf47

// TestGoldenTraceHash holds every optimized run to the trace recorded
// by the reference implementation.
func TestGoldenTraceHash(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range Protocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			if got, want := traceHash(t, goldenStaticConfig(p)), goldenStaticHashes[p]; got != want {
				t.Errorf("static %s trace hash = %#016x, want pinned %#016x", p, got, want)
			}
		})
	}
	t.Run("mobile-ewmac", func(t *testing.T) {
		t.Parallel()
		if got := traceHash(t, goldenMobileConfig()); got != uint64(goldenMobileHash) {
			t.Errorf("mobile trace hash = %#016x, want pinned %#016x", got, uint64(goldenMobileHash))
		}
	})
}

// TestTraceHashReproducible: the same seed must replay bit-identically.
func TestTraceHashReproducible(t *testing.T) {
	cfg := goldenStaticConfig(ProtocolEWMAC)
	cfg.SimTime = 30 * time.Second
	if a, b := traceHash(t, cfg), traceHash(t, cfg); a != b {
		t.Errorf("two runs of one seed diverged: %#016x vs %#016x", a, b)
	}
}

// TestGeometryCacheBitIdentical: force-disabling the geometry cache
// must not change a single event, static or mobile.
func TestGeometryCacheBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	static := goldenStaticConfig(ProtocolEWMAC)
	static.SimTime = 40 * time.Second
	mobile := goldenMobileConfig()
	mobile.SimTime = 30 * time.Second
	for name, cfg := range map[string]Config{"static": static, "mobile": mobile} {
		on := cfg
		off := cfg
		off.DisableGeometryCache = true
		if a, b := traceHash(t, on), traceHash(t, off); a != b {
			t.Errorf("%s: cache-on hash %#016x != cache-off hash %#016x", name, a, b)
		}
	}
}

// TestGoldenHashPrint logs the current hashes; used to (re)pin the
// golden constants when scenarios legitimately change.
func TestGoldenHashPrint(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, p := range Protocols {
		t.Logf("static %-6s %#016x", p, traceHash(t, goldenStaticConfig(p)))
	}
	t.Logf("mobile ewmac  %#016x", traceHash(t, goldenMobileConfig()))
}
