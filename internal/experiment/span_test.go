package experiment

import (
	"bytes"
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// spanRun executes one small pinned scenario for p with span and slot
// profiling on, capturing every Delivery event off the bus.
func spanRun(t *testing.T, p Protocol) (spans, slots bytes.Buffer, deliveries []obs.Delivery) {
	t.Helper()
	cfg := Default(p)
	cfg.Nodes = 16
	cfg.Sinks = 3
	cfg.OfferedLoadKbps = 0.8
	cfg.SimTime = 60 * time.Second
	cfg.Seed = 1
	cfg.Observe = &Observe{
		Spans:       &spans,
		SlotProfile: &slots,
		Recorder: obs.RecorderFunc(func(_ sim.Time, e obs.Event) {
			if d, ok := e.(*obs.Delivery); ok {
				// Pooled record: copy before the bus reclaims it.
				deliveries = append(deliveries, *d)
			}
		}),
	}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("%s: %v", p, err)
	}
	return
}

type spanLine struct {
	Type     string  `json:"span"`
	XID      uint64  `json:"xid"`
	Parent   uint64  `json:"parent"`
	Complete bool    `json:"complete"`
	Outcome  string  `json:"outcome"`
	Bits     int     `json:"bits"`
	Start    float64 `json:"start"`
	End      float64 `json:"end"`
}

func parseSpans(t *testing.T, buf *bytes.Buffer) []spanLine {
	t.Helper()
	var out []spanLine
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var s spanLine
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if s.Type == "meta" {
			continue
		}
		out = append(out, s)
	}
	return out
}

var allProtocols = []Protocol{
	ProtocolEWMAC, ProtocolSFAMA, ProtocolROPA, ProtocolCSMAC, ProtocolSALOHA,
}

// TestSpanCausalCoverage is the golden-seed causal-coverage check: for
// every protocol, every Delivery event the run emits must carry a
// lineage ID covered by exactly one complete handshake or extra span —
// 100% causal coverage of the delivered traffic. The span stream is
// also compared against a golden file (regenerate with UPDATE_SPANS=1)
// so any change to span assembly is a conscious decision.
func TestSpanCausalCoverage(t *testing.T) {
	for _, p := range allProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			spans, slots, deliveries := spanRun(t, p)
			lines := parseSpans(t, &spans)

			if len(deliveries) == 0 {
				t.Fatal("scenario delivered nothing; coverage check is vacuous")
			}
			complete := map[uint64]int{}
			for _, s := range lines {
				if (s.Type == "handshake" || s.Type == "extra") && s.Complete {
					complete[s.XID]++
				}
			}
			for _, d := range deliveries {
				if d.XID == 0 {
					t.Errorf("delivery origin=%d seq=%d has no lineage ID", d.Origin, d.Seq)
					continue
				}
				if n := complete[d.XID]; n != 1 {
					t.Errorf("delivery xid=%x covered by %d complete spans, want exactly 1", d.XID, n)
				}
			}

			// Every slot line partitions its slot exactly.
			assertSlotPartition(t, &slots)

			golden(t, "spans_"+string(p)+".jsonl", spans.Bytes())
		})
	}
}

// assertSlotPartition checks every per-slot record's periods sum to the
// slot length within 1e-6 s, and that the file carries a summary.
func assertSlotPartition(t *testing.T, buf *bytes.Buffer) {
	t.Helper()
	var slotLen float64
	var checked int
	type rec struct {
		Rec       string  `json:"rec"`
		SlotLenS  float64 `json:"slot_len"`
		Tx        float64 `json:"tx"`
		Rx        float64 `json:"rx"`
		Wait      float64 `json:"wait"`
		Reclaimed float64 `json:"reclaimed"`
		Guard     float64 `json:"guard"`
		Exploit   float64 `json:"exploit"`
		Slots     int64   `json:"slots"`
		Nodes     int     `json:"nodes"`
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	var sum *rec
	for _, line := range lines {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatalf("bad slotprof line %q: %v", line, err)
		}
		if r.Rec == "summary" {
			sum = &r
			slotLen = r.SlotLenS
		}
	}
	if sum == nil {
		t.Fatal("slot profile has no summary record")
	}
	if sum.Slots == 0 || sum.Nodes == 0 {
		t.Fatalf("slot profile empty: %+v", sum)
	}
	for _, line := range lines {
		var r rec
		if err := json.Unmarshal([]byte(line), &r); err != nil {
			t.Fatal(err)
		}
		if r.Rec != "slot" {
			continue
		}
		checked++
		got := r.Tx + r.Rx + r.Wait + r.Reclaimed + r.Guard
		if math.Abs(got-slotLen) > 1e-6 {
			t.Errorf("slot periods sum to %.9f, want %.9f: %+v", got, slotLen, r)
		}
	}
	if checked == 0 {
		t.Error("no per-slot records to check")
	}
	// Whole-run totals partition the window too: nodes × slots × len.
	total := sum.Tx + sum.Rx + sum.Wait + sum.Reclaimed + sum.Guard
	want := float64(sum.Nodes) * float64(sum.Slots) * slotLen
	if math.Abs(total-want) > 1e-3 {
		t.Errorf("summary periods sum to %.6f, want %.6f", total, want)
	}
}

// golden compares got against testdata/name, regenerating when
// UPDATE_SPANS=1.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if os.Getenv("UPDATE_SPANS") == "1" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (regenerate with UPDATE_SPANS=1): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("span stream differs from %s (%d vs %d bytes); regenerate with UPDATE_SPANS=1 if intended",
			path, len(got), len(want))
	}
}

// TestSpanExploitationOrdering pins the paper's core qualitative claim
// at the profiler level: EW-MAC converts waiting windows into extra
// transfer, S-FAMA never does.
func TestSpanExploitationOrdering(t *testing.T) {
	ratio := func(p Protocol) float64 {
		_, slots, _ := spanRun(t, p)
		var sum struct {
			Rec     string  `json:"rec"`
			Exploit float64 `json:"exploit"`
		}
		found := false
		for _, line := range strings.Split(strings.TrimSpace(slots.String()), "\n") {
			if err := json.Unmarshal([]byte(line), &sum); err != nil {
				t.Fatal(err)
			}
			if sum.Rec == "summary" {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("%s: no summary", p)
		}
		return sum.Exploit
	}
	ew := ratio(ProtocolEWMAC)
	sf := ratio(ProtocolSFAMA)
	if sf != 0 {
		t.Errorf("S-FAMA exploitation ratio = %g, want exactly 0 (no extra path)", sf)
	}
	if ew <= sf {
		t.Errorf("EW-MAC exploitation ratio %g not above S-FAMA's %g", ew, sf)
	}
}
