package experiment

import (
	"reflect"
	"testing"
	"time"
)

// TestStreamingVerifyCleanRuns arms the always-on conformance verifier
// on every protocol under heavy contention and requires a clean
// verdict: the simulator's own receptions must satisfy Equation (1)
// as they stream past, with the verdict surfaced through
// Result.Conformance and the RunReport.
func TestStreamingVerifyCleanRuns(t *testing.T) {
	for _, p := range append(append([]Protocol(nil), Protocols...), ProtocolSALOHA) {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := Default(p)
			cfg.SimTime = 90 * time.Second
			cfg.OfferedLoadKbps = 0.8
			cfg.Observe = &Observe{Verify: true, Report: true}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			st := res.Conformance
			if st == nil {
				t.Fatal("Verify on but Result.Conformance is nil")
			}
			if st.Receptions == 0 {
				t.Fatal("verifier saw no receptions")
			}
			if st.Violations != 0 {
				t.Errorf("streaming oracle flagged a conformant run: %+v", st)
			}
			if st.PeakArrivals == 0 || st.PeakTxSpans == 0 {
				t.Errorf("verifier indexes never populated: %+v", st)
			}
			if res.Report == nil {
				t.Fatal("Report on but Result.Report is nil")
			}
			if len(res.Report.OracleViolations) != 0 {
				t.Errorf("report carries violations on a clean run: %v", res.Report.OracleViolations)
			}
		})
	}
}

// TestStreamingMatchesBatchOnRealRun runs one contended EW-MAC
// scenario with both oracles attached — the batch oracle through the
// legacy taps, the streaming one through Observe.Verify — and requires
// the same verdict and the same ground-truth coverage from both.
func TestStreamingMatchesBatchOnRealRun(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 120 * time.Second
	cfg.OfferedLoadKbps = 0.8
	o := attachOracle(&cfg)
	cfg.Observe = &Observe{Verify: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	st := res.Conformance
	if st == nil {
		t.Fatal("Result.Conformance is nil")
	}
	if batch := len(o.Verify()) + len(o.VerifyExtraSafety()); uint64(batch) != st.Violations {
		t.Errorf("oracles disagree: batch found %d violations, streaming %d (%+v)",
			batch, st.Violations, st.ByReason)
	}
	if o.Receptions() != int(st.Receptions) || o.Losses() != int(st.Losses) {
		t.Errorf("ground-truth coverage differs: batch %d rx / %d loss, streaming %d / %d",
			o.Receptions(), o.Losses(), st.Receptions, st.Losses)
	}
}

// TestVerifyDoesNotPerturbRun: the verifier is purely observational —
// arming it must leave the simulation's outcome bit-identical to a
// bare run of the same seed.
func TestVerifyDoesNotPerturbRun(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 60 * time.Second
	bare, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Observe = &Observe{Verify: true}
	verified, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(bare.Summary, verified.Summary) {
		t.Errorf("verification perturbed the run:\n bare:     %+v\n verified: %+v",
			bare.Summary, verified.Summary)
	}
	if verified.Conformance == nil || verified.Conformance.Violations != 0 {
		t.Errorf("unexpected verdict: %+v", verified.Conformance)
	}
}
