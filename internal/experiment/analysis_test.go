package experiment

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/analysis"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
)

// TestThroughputWithinAnalyticalCeiling ties the simulator to the
// closed-form model: in a single broadcast domain no protocol may
// exceed the exploit ceiling (one serialized handshake pipeline plus
// at most one appended packet per exchange).
func TestThroughputWithinAnalyticalCeiling(t *testing.T) {
	model := acoustic.DefaultModel()
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}
	ceiling := analysis.ExploitCeilingKbps(slots, 2048, model.MaxDelay(), model.BitRate())
	serial := analysis.SerializedCeilingKbps(slots, 2048, model.MaxDelay(), model.BitRate())
	for _, p := range Protocols {
		cfg := Default(p)
		cfg.SimTime = 200 * time.Second
		cfg.OfferedLoadKbps = 1.0
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		thr := res.Summary.ThroughputKbps
		if thr > ceiling {
			t.Errorf("%s: throughput %v exceeds the exploit ceiling %v", p, thr, ceiling)
		}
		eff, err := analysis.ContentionEfficiency(thr, serial)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("%-7s %.3f kbps = %.0f%% of the serialized ceiling (%.3f)", p, thr, 100*eff, serial)
		if p == ProtocolSFAMA && thr > serial {
			t.Errorf("S-FAMA %v exceeded the serialized ceiling %v (it appends nothing)", thr, serial)
		}
	}
}
