package experiment

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// TestObserveEndToEnd runs the paper's Table 2 EW-MAC scenario with
// every observability consumer enabled and checks that the three
// outputs are consistent with each other and with the metric summary.
func TestObserveEndToEnd(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	if testing.Short() {
		cfg.SimTime = 60 * time.Second
	}
	var trace, ts bytes.Buffer
	var delivered uint64
	cfg.Observe = &Observe{
		Recorder: obs.RecorderFunc(func(_ sim.Time, e obs.Event) {
			if _, ok := e.(*obs.Delivery); ok {
				delivered++
			}
		}),
		Trace:      &trace,
		TimeSeries: &ts,
		Report:     true,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep := res.Report
	if rep == nil {
		t.Fatal("Observe.Report enabled but Result.Report is nil")
	}

	// The report's delivery count must match the counter-based summary
	// exactly: both increment at the same instant in deliverData.
	if rep.DeliveredPackets != res.Summary.MAC.DeliveredPackets {
		t.Errorf("report delivered %d != summary delivered %d",
			rep.DeliveredPackets, res.Summary.MAC.DeliveredPackets)
	}
	if rep.DeliveredBits != res.Summary.MAC.DeliveredBits {
		t.Errorf("report bits %d != summary bits %d",
			rep.DeliveredBits, res.Summary.MAC.DeliveredBits)
	}
	if delivered != rep.DeliveredPackets {
		t.Errorf("custom recorder saw %d deliveries, report %d", delivered, rep.DeliveredPackets)
	}
	if rep.Protocol != "EW-MAC" || rep.Nodes != cfg.Nodes || rep.Seed != cfg.Seed {
		t.Errorf("report identity wrong: %+v", rep)
	}
	if rep.EngineEvents == 0 || rep.EngineEventsPerS <= 0 || rep.VirtualWallRatio <= 0 {
		t.Errorf("engine stats missing: events=%d eps=%v ratio=%v",
			rep.EngineEvents, rep.EngineEventsPerS, rep.VirtualWallRatio)
	}

	// Every trace line must parse and carry the shared schema header.
	lines := strings.Split(strings.TrimSpace(trace.String()), "\n")
	if len(lines) < 100 {
		t.Fatalf("trace suspiciously short: %d lines", len(lines))
	}
	var traceDeliveries uint64
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("trace line %d not JSON: %v", i, err)
		}
		ev, ok := m["event"].(string)
		if !ok || ev == "" {
			t.Fatalf("trace line %d missing event tag: %s", i, line)
		}
		if _, ok := m["at"].(float64); !ok {
			t.Fatalf("trace line %d missing at: %s", i, line)
		}
		if ev == "mac.deliver" {
			traceDeliveries++
		}
	}
	if traceDeliveries != rep.DeliveredPackets {
		t.Errorf("trace has %d mac.deliver lines, report %d", traceDeliveries, rep.DeliveredPackets)
	}

	// The time series must have a header plus ~one row per simulated
	// second, each with the full column set.
	rows := strings.Split(strings.TrimSpace(ts.String()), "\n")
	wantCols := len(strings.Split(rows[0], ","))
	if !strings.HasPrefix(rows[0], "t_s,queue_depth,events_per_s,virt_wall_ratio") {
		t.Errorf("csv header = %q", rows[0])
	}
	wantRows := int(cfg.SimTime/time.Second) - 1
	if len(rows)-1 < wantRows {
		t.Errorf("csv has %d data rows, want >= %d", len(rows)-1, wantRows)
	}
	for i, r := range rows[1:] {
		if got := len(strings.Split(r, ",")); got != wantCols {
			t.Fatalf("csv row %d has %d cells, want %d", i+1, got, wantCols)
		}
	}
}

// TestObserveDisabledNoReport checks the zero-config path stays inert.
func TestObserveDisabledNoReport(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 20 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report != nil {
		t.Fatal("Report should be nil with observability disabled")
	}
}

// TestInstrumentationShim checks the legacy taps still fire, now fed
// from the event bus.
func TestInstrumentationShim(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 30 * time.Second
	var traces, rx, losses int
	cfg.Instrument = &Instrumentation{
		Trace:   func(_, _ packet.NodeID, _ *packet.Frame, _ time.Duration, _ float64) { traces++ },
		RxTap:   func(_ sim.Time, _ packet.NodeID, _ *packet.Frame) { rx++ },
		LossTap: func(_ sim.Time, _ packet.NodeID, _ *packet.Frame, _ phy.LossReason) { losses++ },
	}
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
	if traces == 0 || rx == 0 {
		t.Fatalf("legacy taps silent: traces=%d rx=%d losses=%d", traces, rx, losses)
	}
}
