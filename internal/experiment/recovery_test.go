package experiment

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/mac"
)

// TestChaosRecoveryMetrics is the PR's acceptance check: under the
// full fault cocktail EW-MAC reports per-episode recovery metrics —
// episodes counted, time-to-recover measured, degraded windows timed —
// and strands no traffic behind dead peers.
func TestChaosRecoveryMetrics(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 120 * time.Second
	cfg.Faults = chaosScenario()
	cfg.Observe = &Observe{Report: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := res.Resilience
	if r == nil {
		t.Fatal("no resilience stats on a fault-injected run")
	}
	if r.Episodes == 0 {
		t.Error("chaos cocktail produced no recoverable fault episodes")
	}
	if r.Recovered == 0 {
		t.Error("no episode ever recovered")
	}
	if r.Recovered > 0 && r.MeanTimeToRecoverS <= 0 {
		t.Errorf("recovered %d episodes but mean TTR %v", r.Recovered, r.MeanTimeToRecoverS)
	}
	if r.MaxTimeToRecoverS < r.MeanTimeToRecoverS {
		t.Errorf("max TTR %v below mean %v", r.MaxTimeToRecoverS, r.MeanTimeToRecoverS)
	}
	if r.DegradedS <= 0 {
		t.Error("no degraded window under continuous churn and outages")
	}
	if r.DegradedDeliveryRatio < 0 || r.DegradedDeliveryRatio > 1 {
		t.Errorf("degraded delivery ratio %v outside [0,1]", r.DegradedDeliveryRatio)
	}
	if r.StrandedPackets != 0 {
		t.Errorf("%d packets stranded behind dead peers: the purge/drop paths leak", r.StrandedPackets)
	}
	if res.Report == nil || res.Report.Resilience == nil {
		t.Fatal("resilience stats missing from the run report")
	}
	if *res.Report.Resilience != *r {
		t.Error("report resilience stats diverge from the result's")
	}
	t.Logf("episodes=%d recovered=%d meanTTR=%.1fs maxTTR=%.1fs degraded=%.1fs ratio=%.2f suspects=%d deads=%d watchdogs=%d",
		r.Episodes, r.Recovered, r.MeanTimeToRecoverS, r.MaxTimeToRecoverS,
		r.DegradedS, r.DegradedDeliveryRatio, r.SuspectMarks, r.DeadMarks, r.WatchdogResets)
}

// TestFaultFreeRunHasNoResilience: the tracker (and the recovery
// layer) only arm under fault injection.
func TestFaultFreeRunHasNoResilience(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience != nil {
		t.Error("fault-free run reported resilience stats")
	}
}

// TestRetryForeverNeverDrops: MaxRetries=0 means keep trying — on a
// totally dead channel every protocol must retry indefinitely without
// ever dropping a packet.
func TestRetryForeverNeverDrops(t *testing.T) {
	for _, p := range allProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			cfg := Default(p)
			cfg.SimTime = 60 * time.Second
			cfg.OfferedLoadKbps = 0.3
			cfg.MaxRetries = 0
			cfg.PER = acoustic.UniformLossPER{LossProb: 1}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Summary.MAC
			if m.Generated == 0 {
				t.Fatal("no traffic generated")
			}
			if m.Dropped != 0 || m.DroppedRetry != 0 || m.DroppedDeadPeer != 0 {
				t.Errorf("MaxRetries=0 dropped packets: total=%d retry=%d dead-peer=%d",
					m.Dropped, m.DroppedRetry, m.DroppedDeadPeer)
			}
		})
	}
}

// TestRetryExhaustionDrops: with a small retry budget on a dead
// channel every protocol must exhaust retries and account each drop
// under the retry-exhausted reason — and under none other, since the
// liveness layer is not armed on fault-free runs.
func TestRetryExhaustionDrops(t *testing.T) {
	for _, p := range allProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			t.Parallel()
			cfg := Default(p)
			cfg.SimTime = 60 * time.Second
			cfg.OfferedLoadKbps = 0.3
			cfg.MaxRetries = 2
			cfg.PER = acoustic.UniformLossPER{LossProb: 1}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			m := res.Summary.MAC
			if m.DroppedRetry == 0 {
				t.Fatal("dead channel with MaxRetries=2 never exhausted a retry budget")
			}
			if m.Dropped != m.DroppedRetry {
				t.Errorf("total dropped %d != retry-exhausted %d: unexplained drops", m.Dropped, m.DroppedRetry)
			}
			if m.DroppedDeadPeer != 0 {
				t.Errorf("dead-peer drops %d without the recovery layer armed", m.DroppedDeadPeer)
			}
			if m.Dropped > m.Generated {
				t.Errorf("dropped %d > generated %d", m.Dropped, m.Generated)
			}
		})
	}
}

// TestRecoveryOverride: an explicit Recovery config wins over the
// faults-derived default in both directions.
func TestRecoveryOverride(t *testing.T) {
	// Forced off under faults: no liveness, so a dead channel with a
	// retry budget drops by retry exhaustion only, and no recovery
	// counters move.
	off := Default(ProtocolEWMAC)
	off.SimTime = 60 * time.Second
	off.MaxRetries = 2
	off.PER = acoustic.UniformLossPER{LossProb: 1}
	off.Faults = chaosScenario()
	off.Recovery = &mac.RecoveryConfig{Enabled: false}
	res, err := Run(off)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Summary.MAC
	if m.SuspectMarks != 0 || m.DeadMarks != 0 || m.WatchdogResets != 0 || m.DroppedDeadPeer != 0 {
		t.Errorf("recovery forced off but counters moved: suspects=%d deads=%d watchdogs=%d deadDrops=%d",
			m.SuspectMarks, m.DeadMarks, m.WatchdogResets, m.DroppedDeadPeer)
	}

	// Forced on without faults: a dead channel makes every peer
	// suspect, then dead, and the pending traffic is purged rather
	// than retried forever.
	on := Default(ProtocolEWMAC)
	on.SimTime = 60 * time.Second
	on.OfferedLoadKbps = 0.3
	on.PER = acoustic.UniformLossPER{LossProb: 1}
	on.Recovery = &mac.RecoveryConfig{Enabled: true}
	res, err = Run(on)
	if err != nil {
		t.Fatal(err)
	}
	m = res.Summary.MAC
	if m.SuspectMarks == 0 || m.DeadMarks == 0 {
		t.Errorf("dead channel with liveness armed marked no peers: suspects=%d deads=%d",
			m.SuspectMarks, m.DeadMarks)
	}
	if m.DroppedDeadPeer == 0 {
		t.Error("dead peers never shed their pending traffic")
	}
}
