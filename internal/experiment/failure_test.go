package experiment

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
)

// TestRetransmissionRecoversFromFrameLoss injects a flat 10% frame
// loss on top of the SINR receiver and checks every protocol's
// retransmission machinery still delivers most of a light load —
// robustness the paper's retransmission accounting presumes.
func TestRetransmissionRecoversFromFrameLoss(t *testing.T) {
	model := acoustic.DefaultModel()
	for _, p := range Protocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := Default(p)
			cfg.SimTime = 240 * time.Second
			cfg.OfferedLoadKbps = 0.2 // light load: loss, not congestion
			cfg.PER = acoustic.UniformLossPER{
				Base:     acoustic.ThresholdPER{ThresholdDB: model.SINRThresholdDB},
				LossProb: 0.10,
			}
			res, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			s := res.Summary
			if s.MAC.Retransmissions+s.MAC.ContentionFailures == 0 {
				t.Error("10% frame loss caused no retries at all")
			}
			if s.DeliveryRatio < 0.5 {
				t.Errorf("delivery ratio %.2f under 10%% loss — retransmission path broken?", s.DeliveryRatio)
			}
			t.Logf("%s: delivery %.0f%%, retransmissions %d, PER losses %d",
				p, 100*s.DeliveryRatio, s.MAC.Retransmissions, s.PHY.PERLosses)
			if s.PHY.PERLosses == 0 {
				t.Error("injected loss never triggered")
			}
		})
	}
}

// TestTotalLossDeliversNothing is the degenerate sanity check: with
// 100% loss nothing is ever delivered, and the run still terminates.
func TestTotalLossDeliversNothing(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 60 * time.Second
	cfg.OfferedLoadKbps = 0.3
	cfg.PER = acoustic.UniformLossPER{LossProb: 1}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MAC.DeliveredPackets != 0 {
		t.Errorf("delivered %d packets through a dead channel", res.Summary.MAC.DeliveredPackets)
	}
	if res.Summary.MAC.RTSSent == 0 {
		t.Error("senders never even tried")
	}
}
