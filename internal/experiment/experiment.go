// Package experiment assembles full simulations of the paper's
// evaluation scenarios: it deploys a topology per Table 2, wires
// modems, channel, protocol instances, traffic generators and mobility,
// runs the discrete-event engine, and reduces the raw counters to the
// metrics of §5.
package experiment

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/fault"
	"ewmac/internal/mac"
	"ewmac/internal/mac/csmac"
	"ewmac/internal/mac/ewmac"
	"ewmac/internal/mac/ropa"
	"ewmac/internal/mac/saloha"
	"ewmac/internal/mac/sfama"
	"ewmac/internal/metrics"
	"ewmac/internal/obs"
	"ewmac/internal/obs/slotprof"
	"ewmac/internal/oracle"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/resilience"
	"ewmac/internal/routing"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/traffic"
	"ewmac/internal/vec"
)

// Protocol selects the MAC under test.
type Protocol string

// The four protocols of the paper's evaluation.
const (
	ProtocolEWMAC Protocol = "ewmac"
	ProtocolSFAMA Protocol = "sfama"
	ProtocolROPA  Protocol = "ropa"
	ProtocolCSMAC Protocol = "csmac"
	// ProtocolSALOHA is an extension baseline (slotted ALOHA with
	// acknowledgements); it is runnable but not part of the paper's
	// figure sweeps.
	ProtocolSALOHA Protocol = "saloha"
)

// Protocols lists all protocols in the paper's presentation order.
var Protocols = []Protocol{ProtocolSFAMA, ProtocolROPA, ProtocolCSMAC, ProtocolEWMAC}

// DisplayName returns the paper's name for the protocol.
func (p Protocol) DisplayName() string {
	switch p {
	case ProtocolEWMAC:
		return "EW-MAC"
	case ProtocolSFAMA:
		return "S-FAMA"
	case ProtocolROPA:
		return "ROPA"
	case ProtocolCSMAC:
		return "CS-MAC"
	case ProtocolSALOHA:
		return "S-ALOHA"
	default:
		return string(p)
	}
}

// Config is one scenario. Default() fills it with Table 2.
type Config struct {
	Protocol Protocol
	// Nodes is the number of sensing nodes; Sinks surface sinks.
	Nodes, Sinks int
	// RegionSide is the deployment cube edge in meters.
	RegionSide float64
	// MobileFraction of sensors drift (half horizontal, half vertical);
	// CurrentMS is the drift speed.
	MobileFraction, CurrentMS float64
	// OfferedLoadKbps is the network-wide generated payload rate.
	OfferedLoadKbps float64
	// FixedBatch, if positive, replaces the Poisson load with a batch
	// of that many packets injected at warmup (Figure 8's workload).
	FixedBatch int
	// DataBits is the payload size (Table 2: 1024–4096, default 2048).
	DataBits int
	// SimTime is total simulated time; Warmup is the initialization
	// period (Hello phase) excluded from the measurement window.
	SimTime, Warmup time.Duration
	// MobilityStep is how often node positions advance.
	MobilityStep time.Duration
	// Seed drives every random stream.
	Seed int64
	// QueueMax bounds MAC queues (0 = unbounded).
	QueueMax int
	// MaxRetries drops a packet after that many failed rounds (0 = keep
	// trying).
	MaxRetries int
	// CWMax overrides the backoff window ceiling in slots (0 = default).
	CWMax int
	// Model overrides the acoustic environment (nil = default).
	Model *acoustic.Model
	// PER overrides the packet-error model (nil = threshold receiver
	// at the model's SINR cutoff). Use acoustic.UniformLossPER for
	// failure injection.
	PER acoustic.PERModel
	// Energy overrides the modem power profile (zero = default).
	Energy energy.Profile
	// EW / Ropa / CS pass protocol-specific options.
	EW   ewmac.Options
	Ropa ropa.Options
	CS   csmac.Options
	// Faults enables deterministic fault injection (node churn, clock
	// drift, delay shifts, outages, interference); nil runs the
	// fault-free baseline bit-identically. When faults are active the
	// MACs are hardened automatically: probing is enabled, EW-MAC
	// gets a stale-delay-table bound unless one was set explicitly,
	// and the recovery layer (liveness + watchdog) is armed.
	Faults *fault.Scenario
	// Recovery overrides the MAC recovery layer explicitly: nil (the
	// default) arms it with defaults exactly when faults are active,
	// keeping fault-free runs bit-identical; a non-nil value is used
	// as-is (tests use it to force the layer on or off).
	Recovery *mac.RecoveryConfig
	// Overload configures queue drop policies, admission control, and
	// retry budgets on every MAC. The zero value keeps the historical
	// tail-drop/unbudgeted behaviour bit-identically.
	Overload mac.OverloadConfig
	// ClosedLoop turns the traffic generators closed-loop: arrivals are
	// withheld at the source while the destination MAC reports
	// backpressure (requires Overload.HighWater). The Poisson schedule
	// is untouched, so RNG streams are identical either way. Off by
	// default.
	ClosedLoop bool
	// PriorityEvery marks every Nth generated packet high-priority
	// (0 = never). Only meaningful with Overload.Priority.
	PriorityEvery int
	// Budget bounds the run: wall-clock deadline, executed-event cap,
	// and the livelock watchdog window (sim time frozen across that
	// many events aborts the run). The zero Budget runs unbounded and
	// bit-identically to earlier versions. When any bound is set and
	// LivelockEvents is not, sim.DefaultLivelockEvents applies. An
	// exhausted budget surfaces as an error wrapping
	// sim.ErrBudgetExceeded.
	Budget sim.Budget
	// DisableGeometryCache forces the channel to recompute pairwise
	// geometry on every broadcast instead of serving the epoch-validated
	// cache. Outputs are bit-identical either way (the determinism tests
	// assert it); the knob exists for those tests and for isolating the
	// cache when profiling.
	DisableGeometryCache bool
	// Observe configures the unified observability layer (structured
	// event tracing, time-series sampling, run reports); nil disables.
	Observe *Observe
	// Instrument attaches legacy observability taps; nil disables.
	//
	// Deprecated: Instrument is a compatibility shim over the event
	// bus — its taps are fed from the same obs events as Observe
	// consumers. New code should use Observe.Recorder.
	Instrument *Instrumentation
}

// Instrumentation taps channel- and PHY-level events without
// influencing protocol behaviour.
type Instrumentation struct {
	// Trace observes every scheduled frame delivery at emission time.
	Trace channel.TraceFunc
	// RxTap observes every successful decode.
	RxTap func(now sim.Time, node packet.NodeID, f *packet.Frame)
	// LossTap observes every reported loss of a decodable frame.
	LossTap func(now sim.Time, node packet.NodeID, f *packet.Frame, r phy.LossReason)
}

// Default returns the paper's Table 2 scenario for protocol p.
func Default(p Protocol) Config {
	return Config{
		Protocol:        p,
		Nodes:           60,
		Sinks:           4,
		RegionSide:      1000,
		MobileFraction:  0.5,
		CurrentMS:       0.3,
		OfferedLoadKbps: 0.5,
		DataBits:        2048,
		SimTime:         300 * time.Second,
		Warmup:          12 * time.Second,
		MobilityStep:    time.Second,
		Seed:            1,
		QueueMax:        128,
	}
}

// Validate reports every invalid field as one joined error, so a
// mis-built config is fixable in a single pass instead of one
// rejection at a time.
func (c Config) Validate() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("experiment: "+format, args...))
	}
	if c.Nodes <= 0 {
		bad("%d nodes", c.Nodes)
	}
	if c.Sinks < 0 {
		bad("%d sinks", c.Sinks)
	}
	if c.DataBits <= 0 {
		bad("%d data bits", c.DataBits)
	}
	if c.SimTime <= c.Warmup {
		bad("sim time %v within warmup %v", c.SimTime, c.Warmup)
	}
	if c.RegionSide <= 0 {
		bad("region side %v", c.RegionSide)
	}
	if c.MobileFraction < 0 || c.MobileFraction > 1 {
		bad("mobile fraction %v outside [0, 1]", c.MobileFraction)
	}
	if c.OfferedLoadKbps < 0 {
		bad("offered load %v", c.OfferedLoadKbps)
	}
	if c.FixedBatch < 0 {
		bad("fixed batch %d", c.FixedBatch)
	}
	if c.MobilityStep <= 0 {
		bad("mobility step %v", c.MobilityStep)
	}
	if c.QueueMax < 0 {
		bad("queue max %d", c.QueueMax)
	}
	if c.MaxRetries < 0 {
		bad("max retries %d", c.MaxRetries)
	}
	if c.Budget.Deadline < 0 {
		bad("budget deadline %v", c.Budget.Deadline)
	}
	switch c.Protocol {
	case ProtocolEWMAC, ProtocolSFAMA, ProtocolROPA, ProtocolCSMAC, ProtocolSALOHA:
	default:
		bad("unknown protocol %q", c.Protocol)
	}
	if c.PriorityEvery < 0 {
		bad("priority every %d", c.PriorityEvery)
	}
	if err := c.Overload.Validate(c.QueueMax); err != nil {
		errs = append(errs, err)
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			errs = append(errs, err)
		}
	}
	return errors.Join(errs...)
}

// Result is one run's outcome.
type Result struct {
	Config  Config
	Summary metrics.Summary
	// MeanDegree and MaxPairDelay characterize the deployed topology.
	MeanDegree   float64
	MaxPairDelay time.Duration
	// PerNode keeps raw samples for deeper inspection.
	PerNode []metrics.NodeSample
	// Report is the observability summary, set when Config.Observe
	// enables report collection.
	Report *obs.RunReport
	// SlotProfile is the waiting-resource profile summary, set when
	// Config.Observe enables slot profiling.
	SlotProfile *slotprof.Summary
	// Resilience is the recovery-metrics summary (fault episodes,
	// time-to-recover, degraded-window delivery, stranded packets),
	// set on fault-injected runs.
	Resilience *obs.ResilienceStats
	// Conformance is the streaming oracle's summary (receptions
	// checked, violations by reason, index high-water marks), set when
	// Config.Observe enables verification.
	Conformance *oracle.Stats
}

// Run executes one scenario.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	model := cfg.Model
	if model == nil {
		model = acoustic.DefaultModel()
	}
	prof := cfg.Energy
	if prof == (energy.Profile{}) {
		prof = energy.DefaultProfile()
	}

	eng := sim.NewEngine(cfg.Seed)
	if cfg.Budget.Enabled() {
		b := cfg.Budget
		if b.LivelockEvents == 0 {
			b.LivelockEvents = sim.DefaultLivelockEvents
		}
		eng.SetBudget(b)
	}
	net, err := topology.Deploy(topology.DeployConfig{
		Nodes:     cfg.Nodes,
		Sinks:     cfg.Sinks,
		Region:    vec.Cube(cfg.RegionSide),
		Mobile:    cfg.MobileFraction,
		CurrentMS: cfg.CurrentMS,
	}, model, eng.RNG("deploy"))
	if err != nil {
		return nil, err
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		return nil, err
	}
	if cfg.DisableGeometryCache {
		ch.SetCacheEnabled(false)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}

	// The resilience tracker joins the recorder fan-out on fault-
	// injected and overload-managed runs so it sees the same event
	// stream as every other consumer (this also means such runs always
	// carry a recorder).
	var tracker *resilience.Tracker
	var trackerRec obs.Recorder
	if cfg.Faults.Active() || cfg.Overload.Armed() {
		tracker = resilience.NewTracker()
		trackerRec = tracker
	}
	ro := newRunObs(cfg, slots, model, trackerRec)
	if ro.rec != nil {
		ch.SetRecorder(ro.rec)
	}

	var inj *fault.Injector
	if cfg.Faults.Active() {
		inj = fault.NewInjector(eng, cfg.Faults, net, ro.rec)
		if cfg.EW.StaleAfter == 0 {
			// Under faults, delay-table entries go bad between Hello
			// refreshes; bound their trusted lifetime so EW-MAC falls
			// back to denying extra grants instead of acting on them.
			cfg.EW.StaleAfter = 30 * time.Second
		}
	}

	modems := make([]*phy.Modem, 0, net.Len())
	protos := make([]mac.Protocol, 0, net.Len())
	for _, n := range net.Nodes() {
		modem, err := phy.NewModem(phy.Config{
			ID:     n.ID,
			Engine: eng,
			Model:  model,
			PER:    cfg.PER,
			Medium: ch,
			Energy: prof,
		})
		if err != nil {
			return nil, err
		}
		if err := ch.Register(modem); err != nil {
			return nil, err
		}
		if ro.rec != nil {
			modem.SetRecorder(ro.rec)
		}
		mcfg := mac.Config{
			ID:          n.ID,
			Engine:      eng,
			Modem:       modem,
			Slots:       slots,
			BitRate:     model.BitRate(),
			IsSink:      n.Sink,
			QueueMax:    cfg.QueueMax,
			MaxRetries:  cfg.MaxRetries,
			CWMax:       cfg.CWMax,
			EnableHello: true,
			HelloWindow: cfg.Warmup,
			Recorder:    ro.rec,
			Overload:    cfg.Overload,
		}
		if inj != nil {
			mcfg.EnableProbe = true
			if c := inj.ClockFor(n.ID); c != nil {
				mcfg.Clock = c
			}
		}
		switch {
		case cfg.Recovery != nil:
			mcfg.Recovery = *cfg.Recovery
		case inj != nil:
			// Under faults the recovery layer is part of the automatic
			// hardening; fault-free runs leave it off so every code path
			// stays bit-identical to the pre-recovery behaviour.
			mcfg.Recovery = mac.RecoveryConfig{Enabled: true}
		}
		proto, err := buildProtocol(cfg, mcfg)
		if err != nil {
			return nil, err
		}
		modem.SetListener(proto)
		if inj != nil {
			inj.Register(n.ID, modem, proto)
		}
		modems = append(modems, modem)
		protos = append(protos, proto)
	}
	for _, p := range protos {
		p.Start()
	}
	if inj != nil {
		// Faults begin after warmup so the Hello phase establishes the
		// baseline delay tables the injectors then degrade.
		inj.Start(sim.At(cfg.Warmup), sim.At(cfg.SimTime))
	}

	// Traffic.
	route := func(from packet.NodeID) (packet.NodeID, bool) {
		return routing.NextHop(net, from)
	}
	warmupAt := sim.At(cfg.Warmup)
	endAt := sim.At(cfg.SimTime)
	if cfg.FixedBatch > 0 {
		spreadBatch(eng, net, protos, route, cfg)
	} else if cfg.OfferedLoadKbps > 0 {
		rate := traffic.PerNodeRate(cfg.OfferedLoadKbps, cfg.DataBits, cfg.Nodes)
		for i, n := range net.Nodes() {
			if n.Sink {
				continue
			}
			tc := traffic.Config{
				Node:      n.ID,
				Engine:    eng,
				Sink:      protos[i],
				Route:     route,
				RatePPS:   rate,
				Bits:      cfg.DataBits,
				Start:     warmupAt,
				Stop:      endAt,
				HighEvery: cfg.PriorityEvery,
			}
			if cfg.ClosedLoop {
				if bp, ok := protos[i].(interface{ Backpressure() bool }); ok {
					tc.Backpressure = bp.Backpressure
				}
			}
			gen, err := traffic.NewGenerator(tc)
			if err != nil {
				return nil, err
			}
			gen.Start()
		}
	}

	// Mobility.
	if cfg.MobileFraction > 0 && cfg.CurrentMS > 0 {
		var step func()
		step = func() {
			net.Step(cfg.MobilityStep)
			if eng.Now().Add(cfg.MobilityStep).Before(endAt) {
				eng.ScheduleIn(cfg.MobilityStep, sim.PriorityObserver, step)
			}
		}
		eng.ScheduleIn(cfg.MobilityStep, sim.PriorityObserver, step)
	}

	if err := ro.startSampler(cfg, eng, slots, protos, modems, endAt); err != nil {
		return nil, err
	}

	// Baseline energy snapshot at warmup so initialization cost does
	// not skew the power comparison window.
	baseline := make([]energy.Breakdown, len(modems))
	eng.MustScheduleAt(warmupAt, sim.PriorityObserver, func() {
		for i, m := range modems {
			b, err := m.Energy()
			if err == nil {
				baseline[i] = b
			}
		}
	})

	eng.RunUntil(endAt)
	if berr := eng.BudgetErr(); berr != nil {
		// The run was cut mid-stream; partial counters would be
		// misleading, so the abort is the whole result — but the stream
		// consumers still flush through the same close path as normal
		// completion, so trace/span/profile files are parseable up to
		// the cut instead of ending mid-buffer.
		cerr := ro.closeStreams(eng)
		return nil, errors.Join(
			fmt.Errorf("experiment: %s seed %d: %w", cfg.Protocol, cfg.Seed, berr), cerr)
	}

	samples := make([]metrics.NodeSample, 0, len(modems))
	for i, m := range modems {
		b, err := m.Energy()
		if err != nil {
			return nil, err
		}
		samples = append(samples, metrics.NodeSample{
			MAC: protos[i].Counters(),
			PHY: m.Stats(),
			Energy: energy.Breakdown{
				IdleJ:  b.IdleJ - baseline[i].IdleJ,
				RxJ:    b.RxJ - baseline[i].RxJ,
				TxJ:    b.TxJ - baseline[i].TxJ,
				SleepJ: b.SleepJ - baseline[i].SleepJ,
			},
			IsSink: net.Nodes()[i].Sink,
		})
	}
	sum, err := metrics.Summarize(samples, cfg.SimTime-cfg.Warmup, cfg.DataBits)
	if err != nil {
		return nil, err
	}
	rep, err := ro.finish(cfg, eng)
	if err != nil {
		return nil, err
	}
	var resil *obs.ResilienceStats
	if tracker != nil {
		stranded := 0
		for _, p := range protos {
			if s, ok := p.(interface{ Stranded() int }); ok {
				stranded += s.Stranded()
			}
		}
		resil = tracker.Summary(eng.Now(), stranded)
		if rep != nil {
			rep.Resilience = resil
		}
	}
	var conf *oracle.Stats
	if ro.verifier != nil {
		st := ro.verifier.Stats()
		conf = &st
	}
	return &Result{
		Config:       cfg,
		Summary:      sum,
		MeanDegree:   net.MeanDegree(),
		MaxPairDelay: net.MaxPairDelay(),
		PerNode:      samples,
		Report:       rep,
		SlotProfile:  ro.slotSum,
		Resilience:   resil,
		Conformance:  conf,
	}, nil
}

// PanicError is a panic recovered from a simulation run, converted to
// an error so one corrupted (x, protocol, seed) point cannot kill a
// whole sweep process. The supervision layer (internal/runner) treats
// it as non-retriable and quarantines the point with its stack.
type PanicError struct {
	// Value is the panic value's string form.
	Value string
	// Stack is the goroutine stack at recovery.
	Stack string
}

// Error implements error.
func (e *PanicError) Error() string { return "experiment: run panicked: " + e.Value }

// runRecovering is Run behind a recover boundary: RunMean fans seeds
// out to goroutines, and a panic escaping one of them would end the
// process no matter what callers higher up recover.
func runRecovering(cfg Config) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: fmt.Sprint(p), Stack: string(debug.Stack())}
		}
	}()
	return Run(cfg)
}

// spreadBatch injects cfg.FixedBatch packets, round-robin across
// non-sink nodes, shortly after warmup (Figure 8's workload).
func spreadBatch(eng *sim.Engine, net *topology.Network, protos []mac.Protocol, route traffic.Router, cfg Config) {
	nonSinks := make([]int, 0, net.Len())
	for i, n := range net.Nodes() {
		if !n.Sink {
			nonSinks = append(nonSinks, i)
		}
	}
	if len(nonSinks) == 0 {
		return
	}
	// Round-robin the batch across nodes, one FixedBatch call per node
	// so sequence numbers stay unique per origin.
	per := make(map[int]int, len(nonSinks))
	for k := 0; k < cfg.FixedBatch; k++ {
		per[nonSinks[k%len(nonSinks)]]++
	}
	for _, idx := range nonSinks {
		if per[idx] == 0 {
			continue
		}
		node := net.Nodes()[idx].ID
		traffic.FixedBatch(eng, protos[idx], route, node, cfg.DataBits, per[idx], sim.At(cfg.Warmup))
	}
}

func buildProtocol(cfg Config, mcfg mac.Config) (mac.Protocol, error) {
	switch cfg.Protocol {
	case ProtocolEWMAC:
		return ewmac.New(mcfg, cfg.EW)
	case ProtocolSFAMA:
		return sfama.New(mcfg)
	case ProtocolROPA:
		return ropa.New(mcfg, cfg.Ropa)
	case ProtocolCSMAC:
		return csmac.New(mcfg, cfg.CS)
	case ProtocolSALOHA:
		return saloha.New(mcfg)
	default:
		return nil, errors.New("experiment: unknown protocol")
	}
}

// RunMean executes the scenario once per seed — in parallel, since
// each run owns an independent engine — and averages the summaries.
// The result is deterministic: per-seed outcomes do not depend on
// scheduling, and the average is order-independent by construction
// (summaries are collected in seed order).
// runGate bounds the simulation runs executing at once across the whole
// process. Concurrent sweeps (figures × x-values × protocols × seeds)
// all funnel through this one GOMAXPROCS-sized gate, so nested parallel
// layers fan out freely without oversubscribing the CPUs the way
// stacked per-call semaphores would.
var runGate = make(chan struct{}, runtime.GOMAXPROCS(0))

func RunMean(cfg Config, seeds []int64) (metrics.Summary, error) {
	if len(seeds) == 0 {
		seeds = []int64{cfg.Seed}
	}
	runs := make([]metrics.Summary, len(seeds))
	errs := make([]error, len(seeds))
	var wg sync.WaitGroup
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, seed int64) {
			defer wg.Done()
			runGate <- struct{}{}
			defer func() { <-runGate }()
			c := cfg
			c.Seed = seed
			r, err := runRecovering(c)
			if err != nil {
				errs[i] = err
				return
			}
			runs[i] = r.Summary
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return metrics.Summary{}, err
		}
	}
	return metrics.Mean(runs)
}
