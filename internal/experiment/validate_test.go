package experiment

import (
	"errors"
	"strings"
	"testing"
	"time"

	"ewmac/internal/sim"
)

// TestValidateEveryField drives one invalid value through each check
// and asserts its rejection message, so a regressed or silently
// dropped check fails by name.
func TestValidateEveryField(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"nodes", func(c *Config) { c.Nodes = 0 }, "0 nodes"},
		{"sinks", func(c *Config) { c.Sinks = -1 }, "-1 sinks"},
		{"data bits", func(c *Config) { c.DataBits = -8 }, "-8 data bits"},
		{"sim time", func(c *Config) { c.SimTime = c.Warmup }, "within warmup"},
		{"region side", func(c *Config) { c.RegionSide = 0 }, "region side 0"},
		{"mobile fraction", func(c *Config) { c.MobileFraction = 1.5 }, "mobile fraction 1.5 outside [0, 1]"},
		{"offered load", func(c *Config) { c.OfferedLoadKbps = -0.1 }, "offered load -0.1"},
		{"fixed batch", func(c *Config) { c.FixedBatch = -3 }, "fixed batch -3"},
		{"mobility step", func(c *Config) { c.MobilityStep = 0 }, "mobility step 0"},
		{"queue max", func(c *Config) { c.QueueMax = -1 }, "queue max -1"},
		{"max retries", func(c *Config) { c.MaxRetries = -2 }, "max retries -2"},
		{"budget deadline", func(c *Config) { c.Budget.Deadline = -time.Second }, "budget deadline -1s"},
		{"protocol", func(c *Config) { c.Protocol = "bogus" }, `unknown protocol "bogus"`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default(ProtocolEWMAC)
			tc.mut(&cfg)
			err := cfg.Validate()
			if err == nil {
				t.Fatalf("Validate accepted invalid %s", tc.name)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestValidateJoinsAllErrors: a config broken in several ways reports
// every broken field at once, not just the first.
func TestValidateJoinsAllErrors(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = -5
	cfg.DataBits = 0
	cfg.RegionSide = -1
	cfg.Protocol = "nope"
	err := cfg.Validate()
	if err == nil {
		t.Fatal("Validate accepted a quadruply-broken config")
	}
	for _, want := range []string{"-5 nodes", "0 data bits", "region side -1", `unknown protocol "nope"`} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error %q missing %q", err, want)
		}
	}
}

func TestValidateAcceptsDefaults(t *testing.T) {
	for _, p := range append(Protocols, ProtocolSALOHA) {
		if err := Default(p).Validate(); err != nil {
			t.Errorf("default %s config rejected: %v", p, err)
		}
	}
}

// TestRunBudgetAborts: a run under an impossible wall-clock deadline
// must abort with a structured budget error instead of completing or
// hanging.
func TestRunBudgetAborts(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 8
	cfg.Sinks = 1
	cfg.SimTime = 30 * time.Second
	cfg.Budget = sim.Budget{Deadline: time.Nanosecond}
	_, err := Run(cfg)
	if !errors.Is(err, sim.ErrBudgetExceeded) {
		t.Fatalf("Run under 1ns deadline returned %v, want ErrBudgetExceeded", err)
	}
	var be *sim.BudgetError
	if !errors.As(err, &be) || be.Reason != sim.BudgetDeadline {
		t.Fatalf("error %v lacks a deadline BudgetError", err)
	}
}

// TestRunBudgetMaxEvents: the event cap also aborts, and a generous
// budget does not disturb a completing run.
func TestRunBudgetMaxEvents(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 8
	cfg.Sinks = 1
	cfg.SimTime = 30 * time.Second
	cfg.Budget = sim.Budget{MaxEvents: 50}
	if _, err := Run(cfg); !errors.Is(err, sim.ErrBudgetExceeded) {
		t.Fatalf("Run under 50-event cap returned %v", err)
	}

	cfg.Budget = sim.Budget{MaxEvents: 50_000_000, Deadline: 10 * time.Minute}
	if _, err := Run(cfg); err != nil {
		t.Fatalf("Run under generous budget failed: %v", err)
	}
}
