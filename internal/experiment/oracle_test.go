package experiment

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/oracle"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// attachOracle wires an Equation (1) oracle into a scenario.
func attachOracle(cfg *Config) *oracle.Oracle {
	model := acoustic.DefaultModel()
	o := oracle.New(model.BitRate(), model.SINRThresholdDB)
	cfg.Instrument = &Instrumentation{
		Trace: func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, level float64) {
			// The trace runs at emission time inside the engine; Now is
			// the emission instant.
			o.RecordEmission(sim.At(f.Timestamp), src, dst, f, delay, level)
		},
		RxTap: func(now sim.Time, node packet.NodeID, f *packet.Frame) {
			o.RecordReception(now, node, f)
		},
		LossTap: func(now sim.Time, node packet.NodeID, f *packet.Frame, r phy.LossReason) {
			o.RecordLoss(now, node, f, r)
		},
	}
	return o
}

// TestEquation1Invariant replays every claimed reception of a full run
// against channel-level ground truth: no frame may be decoded while
// its receiver transmits or while a comparable-power signal overlaps
// it (the paper's Equation (1)).
func TestEquation1Invariant(t *testing.T) {
	for _, p := range Protocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			cfg := Default(p)
			cfg.SimTime = 150 * time.Second
			cfg.OfferedLoadKbps = 0.8 // heavy contention exercises the edge cases
			o := attachOracle(&cfg)
			if _, err := Run(cfg); err != nil {
				t.Fatal(err)
			}
			if o.Receptions() == 0 {
				t.Fatal("oracle saw no receptions")
			}
			if v := o.Verify(); len(v) != 0 {
				for i, viol := range v {
					if i >= 5 {
						t.Errorf("... and %d more", len(v)-5)
						break
					}
					t.Error(viol)
				}
			}
		})
	}
}

// TestExtraNeverCorruptsNegotiatedExchanges verifies the paper's §4.2
// safety property at network scale: in a static deployment (exact
// delay tables) no negotiated CTS/Data/Ack lost at its destination may
// overlap an extra-communication frame.
func TestExtraNeverCorruptsNegotiatedExchanges(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 200 * time.Second
	cfg.OfferedLoadKbps = 0.8
	cfg.MobileFraction = 0 // perfect delay knowledge
	o := attachOracle(&cfg)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MAC.ExtraAttempts == 0 {
		t.Skip("no extra communications occurred; property not exercised on this seed")
	}
	if v := o.VerifyExtraSafety(); len(v) != 0 {
		for _, viol := range v {
			t.Error(viol)
		}
	}
}

// TestOracleDetectsViolations sanity-checks the oracle itself with a
// fabricated impossible trace, so a silent always-pass bug in the
// oracle cannot hide.
func TestOracleDetectsViolations(t *testing.T) {
	o := oracle.New(12000, 10)
	f1 := &packet.Frame{Kind: packet.KindData, Src: 1, Dst: 3, Seq: 1, DataBits: 2048, Timestamp: time.Second}
	f2 := &packet.Frame{Kind: packet.KindData, Src: 2, Dst: 3, Seq: 1, DataBits: 2048, Timestamp: time.Second}
	// Equal-power full overlap at node 3 — yet a reception is claimed.
	o.RecordEmission(sim.At(time.Second), 1, 3, f1, 100*time.Millisecond, 130)
	o.RecordEmission(sim.At(time.Second), 2, 3, f2, 100*time.Millisecond, 130)
	o.RecordReception(sim.At(time.Second+300*time.Millisecond), 3, f1)
	if v := o.Verify(); len(v) == 0 {
		t.Fatal("oracle accepted an impossible reception")
	}
	// A reception with no emission at all.
	o2 := oracle.New(12000, 10)
	o2.RecordReception(sim.At(time.Second), 3, f1)
	if v := o2.Verify(); len(v) == 0 {
		t.Fatal("oracle accepted a reception without emission")
	}
	// Extra-safety: a lost negotiated Data overlapping an EXData.
	o3 := oracle.New(12000, 10)
	ex := &packet.Frame{Kind: packet.KindEXData, Src: 4, Dst: 3, Seq: 9, DataBits: 2048, Timestamp: time.Second}
	o3.RecordEmission(sim.At(time.Second), 1, 3, f1, 100*time.Millisecond, 130)
	o3.RecordEmission(sim.At(time.Second), 4, 3, ex, 100*time.Millisecond, 130)
	o3.RecordLoss(sim.At(time.Second+300*time.Millisecond), 3, f1, phy.LossCollision)
	if v := o3.VerifyExtraSafety(); len(v) == 0 {
		t.Fatal("oracle missed an extra-frame guard breach")
	}
}
