package experiment

import (
	"math"
	"testing"
	"time"

	"ewmac/internal/fault"
	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// chaosScenario enables every injector at once, aggressively enough
// that all fault paths fire inside a two-minute run.
func chaosScenario() *fault.Scenario {
	return &fault.Scenario{
		Name: "soak",
		Churn: &fault.ChurnSpec{
			MeanUp: fault.Dur(40 * time.Second), MeanDown: fault.Dur(10 * time.Second), Fraction: 0.25,
		},
		Drift: &fault.DriftSpec{
			SkewPPM: 300, MaxOffset: fault.Dur(80 * time.Millisecond),
			SyncEvery:     fault.Dur(30 * time.Second),
			LossMeanEvery: fault.Dur(30 * time.Second), LossMeanDur: fault.Dur(60 * time.Second),
			Fraction: 0.5,
		},
		DelayShift: &fault.DelayShiftSpec{
			MeanEvery: fault.Dur(30 * time.Second), MaxJumpM: 200, Fraction: 0.4,
		},
		Outage: &fault.OutageSpec{
			MeanEvery: fault.Dur(60 * time.Second), MeanDur: fault.Dur(4 * time.Second), Fraction: 0.3,
		},
		Interference: &fault.InterferenceSpec{
			MeanEvery: fault.Dur(25 * time.Second), MeanDur: fault.Dur(2 * time.Second),
			LevelDB: 60, RadiusM: 400,
		},
	}
}

// TestChaosSoak runs every protocol under the full fault cocktail on
// several seeds and asserts the stack degrades instead of breaking: no
// panics, no insane counters, and a delivery ratio that is dented but
// not annihilated.
func TestChaosSoak(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak is minutes of simulated time per protocol")
	}
	protocols := []Protocol{ProtocolSFAMA, ProtocolROPA, ProtocolCSMAC, ProtocolEWMAC, ProtocolSALOHA}
	seeds := []int64{1, 2, 3}
	for _, p := range protocols {
		for _, seed := range seeds {
			t.Run(string(p)+"/"+string(rune('0'+seed)), func(t *testing.T) {
				t.Parallel()
				cfg := Default(p)
				cfg.SimTime = 120 * time.Second
				cfg.Seed = seed
				cfg.Faults = chaosScenario()
				var faults uint64
				cfg.Observe = &Observe{Recorder: obs.RecorderFunc(func(_ sim.Time, e obs.Event) {
					if _, ok := e.(*obs.Fault); ok {
						faults++
					}
				})}
				res, err := Run(cfg)
				if err != nil {
					t.Fatal(err)
				}
				if faults == 0 {
					t.Error("no fault events recorded under the full cocktail")
				}
				s := res.Summary
				const insane = uint64(1) << 40
				m := s.MAC
				for name, v := range map[string]uint64{
					"Generated": m.Generated, "DeliveredPackets": m.DeliveredPackets,
					"DeliveredBits": m.DeliveredBits, "AckedPackets": m.AckedPackets,
					"RTSSent": m.RTSSent, "CTSSent": m.CTSSent,
					"Retransmissions": m.Retransmissions, "Dropped": m.Dropped,
					"Probes": m.Probes, "ImpossibleRx": m.ImpossibleRx,
				} {
					if v > insane {
						t.Errorf("%s = %d: counter underflow", name, v)
					}
				}
				if m.DeliveredPackets > m.Generated {
					t.Errorf("delivered %d > generated %d", m.DeliveredPackets, m.Generated)
				}
				if s.DeliveryRatio < 0 || s.DeliveryRatio > 1 || math.IsNaN(s.DeliveryRatio) {
					t.Errorf("delivery ratio %v outside [0,1]", s.DeliveryRatio)
				}
				// Faults hurt, but a 120s run at Table 2 load must still
				// deliver something: total collapse means a protocol
				// wedged, not that the ocean was noisy.
				if s.DeliveryRatio < 0.05 {
					t.Errorf("delivery ratio %.3f: protocol effectively dead under faults", s.DeliveryRatio)
				}
				if s.MeanPowerMW < 0 || math.IsNaN(s.MeanPowerMW) {
					t.Errorf("mean power %v", s.MeanPowerMW)
				}
				if s.ExecutionTime < 0 {
					t.Errorf("execution time %v", s.ExecutionTime)
				}
			})
		}
	}
}

// TestFaultsDisabledMatchesBaseline locks the bit-identity guarantee:
// a nil Faults section must not perturb a single counter relative to
// the pre-fault code path.
func TestFaultsDisabledMatchesBaseline(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 60 * time.Second
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != b.Summary {
		t.Error("identical configs diverged (nondeterminism)")
	}
	// An empty (inactive) scenario must behave exactly like nil.
	cfg.Faults = &fault.Scenario{Name: "empty"}
	c, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary != c.Summary {
		t.Error("inactive fault scenario perturbed the run")
	}
}

// TestChaosReportSummarizesFaults checks the observability contract:
// every fault class appears in the run report's per-type table.
func TestChaosReportSummarizesFaults(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.SimTime = 120 * time.Second
	cfg.Faults = chaosScenario()
	cfg.Observe = &Observe{Report: true}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Report == nil {
		t.Fatal("no run report")
	}
	for _, key := range []string{"churn/inject", "churn/clear", "sync-loss/inject", "delay-shift/inject", "outage/inject", "interference/inject"} {
		if res.Report.Faults[key] == 0 {
			t.Errorf("report missing fault summary entry %q (got %v)", key, res.Report.Faults)
		}
	}
}
