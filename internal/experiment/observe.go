package experiment

import (
	"errors"
	"io"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/obs/slotprof"
	"ewmac/internal/obs/span"
	"ewmac/internal/oracle"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// Observe configures the unified observability layer for one run. All
// fields are optional; the zero value (or a nil *Observe) disables
// everything, in which case emission sites across the stack reduce to
// one nil check each.
type Observe struct {
	// Recorder receives every structured event, in addition to the
	// sinks implied by the fields below. Use it for custom analysis or
	// test assertions over the live event stream.
	Recorder obs.Recorder
	// Trace, when non-nil, receives the trace-v2 JSONL stream: one
	// event object per line, each carrying "at" (fractional simulated
	// seconds) and "event" (the stable tag). See the README's
	// Observability section for the schema.
	Trace io.Writer
	// TimeSeries, when non-nil, receives periodic CSV samples of engine
	// and protocol health (queue depth, events/s, backlog, slot
	// utilization, extra-communication success, energy).
	TimeSeries io.Writer
	// SampleEvery is the TimeSeries period in simulated time
	// (default 1s).
	SampleEvery time.Duration
	// Spans, when non-nil, receives the causal-span JSONL stream: raw
	// events folded into one line per handshake, extra exchange,
	// contention round, and fault window, linked by exchange-lineage
	// IDs. See internal/obs/span.
	Spans io.Writer
	// SlotProfile, when non-nil, receives the per-slot waiting-resource
	// profile: every nanosecond of every node's slots classified into
	// tx/rx/wait/reclaimed/guard, with the exploitation ratio
	// reclaimed/(reclaimed+wait) per node and for the run. See
	// internal/obs/slotprof.
	SlotProfile io.Writer
	// Report enables event aggregation into Result.Report.
	Report bool
	// Verify arms the streaming conformance oracle: every reception is
	// checked against the paper's Equation (1) (plus the §4.2
	// extra-communication guard) as it is recorded, with bounded memory.
	// Violations surface as typed oracle.violation trace events, in
	// RunReport.OracleViolations, in the resilience summary, and in
	// Result.Conformance. Purely observational: protocol behaviour and
	// RNG streams are untouched.
	Verify bool
}

// recorder adapts the legacy Instrumentation taps to the event bus, so
// pre-obs consumers (the verification oracle, debug tracers) keep
// working unchanged while riding the same stream as everything else.
func (ins *Instrumentation) recorder() obs.Recorder {
	if ins == nil || (ins.Trace == nil && ins.RxTap == nil && ins.LossTap == nil) {
		return nil
	}
	return obs.RecorderFunc(func(at sim.Time, e obs.Event) {
		switch ev := e.(type) {
		case *obs.FrameEmit:
			if ins.Trace != nil {
				ins.Trace(ev.Src, ev.Dst, ev.Frame, ev.Delay, ev.LevelDB)
			}
		case *obs.FrameRx:
			if ins.RxTap != nil {
				ins.RxTap(at, ev.Node, ev.Frame)
			}
		case *obs.FrameLoss:
			if ins.LossTap != nil {
				ins.LossTap(at, ev.Node, ev.Frame, phy.LossReason(ev.ReasonCode))
			}
		}
	})
}

// runObs bundles the per-run observability consumers.
type runObs struct {
	rec       obs.Recorder
	jsonl     *obs.JSONL
	collector *obs.Collector
	sampler   *obs.Sampler
	spans     *span.Assembler
	slotprof  *slotprof.Profiler
	slotSum   *slotprof.Summary
	verifier  *oracle.Streaming
	closed    bool
}

// newRunObs assembles the recorder fan-out for one run; rec stays nil
// when nothing is enabled. slots and model parameterize the slot
// profiler and the conformance verifier (they are protocol-
// independent, so every consumer of one run sees the same slot grid
// and PHY thresholds). extra splices additional recorders (the
// resilience tracker on fault-injected runs) into the fan-out.
func newRunObs(cfg Config, slots mac.SlotConfig, model *acoustic.Model, extra ...obs.Recorder) *runObs {
	ro := &runObs{}
	recs := append([]obs.Recorder(nil), extra...)
	if o := cfg.Observe; o != nil {
		recs = append(recs, o.Recorder)
		if o.Trace != nil {
			ro.jsonl = obs.NewJSONL(o.Trace)
			recs = append(recs, ro.jsonl)
		}
		if o.Spans != nil {
			ro.spans = span.New(o.Spans)
			ro.spans.WriteMeta(cfg.Protocol.DisplayName(), cfg.Seed, cfg.Nodes)
			recs = append(recs, ro.spans)
		}
		if o.SlotProfile != nil {
			ro.slotprof = slotprof.New(slotprof.Config{
				Protocol: cfg.Protocol.DisplayName(),
				SlotLen:  slots.Len(),
				BitRate:  model.BitRate(),
				Start:    sim.At(cfg.Warmup),
				End:      sim.At(cfg.SimTime),
				Writer:   o.SlotProfile,
			})
			recs = append(recs, ro.slotprof)
		}
		if o.Report {
			ro.collector = obs.NewCollector()
			recs = append(recs, ro.collector)
		}
		if o.Verify {
			// Eviction lookback must cover the farthest interference
			// arrival the channel will schedule.
			horizon := time.Duration(float64(model.MaxDelay()) * channel.InterferenceRangeFactor)
			ro.verifier = oracle.NewStreaming(model.BitRate(), model.SINRThresholdDB, horizon)
		}
	}
	recs = append(recs, cfg.Instrument.recorder())
	if ro.verifier != nil {
		// The verifier must sit LAST: it re-emits violations into the
		// same fan-out, and the JSONL exporter (among others) is not
		// re-entrant mid-Record — by the time the verifier runs, every
		// other recorder has finished with the triggering event.
		recs = append(recs, ro.verifier)
	}
	ro.rec = obs.Multi(recs...)
	if ro.verifier != nil {
		ro.verifier.SetSink(ro.rec)
	}
	return ro
}

// closeStreams drains every buffered stream consumer: the sampler and
// trace flush, the span assembler closes out still-open spans, and the
// slot profiler classifies and writes its records. It is called from
// the normal completion path and from the budget-abort path alike, so
// a run cut mid-stream still leaves parseable, flushed output files.
// Safe to call twice; the second call is a no-op.
func (ro *runObs) closeStreams(eng *sim.Engine) error {
	if ro.closed {
		return nil
	}
	ro.closed = true
	var errs []error
	if ro.sampler != nil {
		errs = append(errs, ro.sampler.Flush())
	}
	if ro.jsonl != nil {
		errs = append(errs, ro.jsonl.Close())
	}
	if ro.spans != nil {
		errs = append(errs, ro.spans.Close())
	}
	if ro.slotprof != nil {
		sum, err := ro.slotprof.Finish(eng.Now())
		ro.slotSum = &sum
		errs = append(errs, err)
	}
	return errors.Join(errs...)
}

// startSampler arms the time-series sampler with the domain columns
// the protocol stack can answer. No-op unless TimeSeries is set.
func (ro *runObs) startSampler(cfg Config, eng *sim.Engine, slots mac.SlotConfig,
	protos []mac.Protocol, modems []*phy.Modem, until sim.Time) error {
	o := cfg.Observe
	if o == nil || o.TimeSeries == nil {
		return nil
	}
	// slot_util needs per-interval deltas; the closures share this state.
	var lastFrames uint64
	lastAt := eng.Now()
	framesTx := func() uint64 {
		var n uint64
		for _, m := range modems {
			n += m.Stats().FramesTx
		}
		return n
	}
	counters := func() mac.Counters {
		var sum mac.Counters
		for _, p := range protos {
			sum = sum.Add(p.Counters())
		}
		return sum
	}
	cols := []obs.Column{
		{Name: "tx_backlog", Fn: func() float64 {
			total := 0
			for _, p := range protos {
				total += p.QueueLen()
			}
			return float64(total)
		}},
		{Name: "slot_util", Fn: func() float64 {
			// Fraction of the network's slot capacity spent transmitting
			// over the last interval: one frame occupies one slot, and
			// capacity is nodes × elapsed slots.
			now := eng.Now()
			frames := framesTx()
			dSlots := now.Sub(lastAt).Seconds() / slots.Len().Seconds()
			df := frames - lastFrames
			lastFrames, lastAt = frames, now
			if dSlots <= 0 || len(modems) == 0 {
				return 0
			}
			return float64(df) / (dSlots * float64(len(modems)))
		}},
		{Name: "delivered", Fn: func() float64 {
			return float64(counters().DeliveredPackets)
		}},
		{Name: "extra_success_rate", Fn: func() float64 {
			c := counters()
			if c.ExtraAttempts == 0 {
				return 0
			}
			return float64(c.ExtraCompletions) / float64(c.ExtraAttempts)
		}},
		{Name: "energy_j", Fn: func() float64 {
			var j float64
			for _, m := range modems {
				if b, err := m.Energy(); err == nil {
					j += b.Total()
				}
			}
			return j
		}},
	}
	s, err := obs.NewSampler(eng, o.TimeSeries, o.SampleEvery, cols...)
	if err != nil {
		return err
	}
	s.SetRecorder(ro.rec)
	s.Start(until)
	ro.sampler = s
	return nil
}

// finish flushes the stream consumers and, when report collection is
// on, reduces the collected events to a RunReport stamped with the
// trial identity and engine statistics.
func (ro *runObs) finish(cfg Config, eng *sim.Engine) (*obs.RunReport, error) {
	if err := ro.closeStreams(eng); err != nil {
		return nil, err
	}
	if ro.collector == nil {
		return nil, nil
	}
	rep := ro.collector.Report((cfg.SimTime - cfg.Warmup).Seconds())
	rep.Protocol = cfg.Protocol.DisplayName()
	rep.Seed = cfg.Seed
	rep.Nodes = cfg.Nodes
	ls := eng.LoopStats()
	rep.EngineEvents = ls.Executed
	if w := ls.Wall.Seconds(); w > 0 {
		rep.EngineEventsPerS = float64(ls.Executed) / w
		rep.VirtualWallRatio = ls.Now.Seconds() / w
	}
	return rep, nil
}
