package experiment

import (
	"io"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// Observe configures the unified observability layer for one run. All
// fields are optional; the zero value (or a nil *Observe) disables
// everything, in which case emission sites across the stack reduce to
// one nil check each.
type Observe struct {
	// Recorder receives every structured event, in addition to the
	// sinks implied by the fields below. Use it for custom analysis or
	// test assertions over the live event stream.
	Recorder obs.Recorder
	// Trace, when non-nil, receives the trace-v2 JSONL stream: one
	// event object per line, each carrying "at" (fractional simulated
	// seconds) and "event" (the stable tag). See the README's
	// Observability section for the schema.
	Trace io.Writer
	// TimeSeries, when non-nil, receives periodic CSV samples of engine
	// and protocol health (queue depth, events/s, backlog, slot
	// utilization, extra-communication success, energy).
	TimeSeries io.Writer
	// SampleEvery is the TimeSeries period in simulated time
	// (default 1s).
	SampleEvery time.Duration
	// Report enables event aggregation into Result.Report.
	Report bool
}

// recorder adapts the legacy Instrumentation taps to the event bus, so
// pre-obs consumers (the verification oracle, debug tracers) keep
// working unchanged while riding the same stream as everything else.
func (ins *Instrumentation) recorder() obs.Recorder {
	if ins == nil || (ins.Trace == nil && ins.RxTap == nil && ins.LossTap == nil) {
		return nil
	}
	return obs.RecorderFunc(func(at sim.Time, e obs.Event) {
		switch ev := e.(type) {
		case obs.FrameEmit:
			if ins.Trace != nil {
				ins.Trace(ev.Src, ev.Dst, ev.Frame, ev.Delay, ev.LevelDB)
			}
		case obs.FrameRx:
			if ins.RxTap != nil {
				ins.RxTap(at, ev.Node, ev.Frame)
			}
		case obs.FrameLoss:
			if ins.LossTap != nil {
				ins.LossTap(at, ev.Node, ev.Frame, phy.LossReason(ev.ReasonCode))
			}
		}
	})
}

// runObs bundles the per-run observability consumers.
type runObs struct {
	rec       obs.Recorder
	jsonl     *obs.JSONL
	collector *obs.Collector
	sampler   *obs.Sampler
}

// newRunObs assembles the recorder fan-out for one run; rec stays nil
// when nothing is enabled.
func newRunObs(cfg Config) *runObs {
	ro := &runObs{}
	var recs []obs.Recorder
	if o := cfg.Observe; o != nil {
		recs = append(recs, o.Recorder)
		if o.Trace != nil {
			ro.jsonl = obs.NewJSONL(o.Trace)
			recs = append(recs, ro.jsonl)
		}
		if o.Report {
			ro.collector = obs.NewCollector()
			recs = append(recs, ro.collector)
		}
	}
	recs = append(recs, cfg.Instrument.recorder())
	ro.rec = obs.Multi(recs...)
	return ro
}

// startSampler arms the time-series sampler with the domain columns
// the protocol stack can answer. No-op unless TimeSeries is set.
func (ro *runObs) startSampler(cfg Config, eng *sim.Engine, slots mac.SlotConfig,
	protos []mac.Protocol, modems []*phy.Modem, until sim.Time) error {
	o := cfg.Observe
	if o == nil || o.TimeSeries == nil {
		return nil
	}
	// slot_util needs per-interval deltas; the closures share this state.
	var lastFrames uint64
	lastAt := eng.Now()
	framesTx := func() uint64 {
		var n uint64
		for _, m := range modems {
			n += m.Stats().FramesTx
		}
		return n
	}
	counters := func() mac.Counters {
		var sum mac.Counters
		for _, p := range protos {
			sum = sum.Add(p.Counters())
		}
		return sum
	}
	cols := []obs.Column{
		{Name: "tx_backlog", Fn: func() float64 {
			total := 0
			for _, p := range protos {
				total += p.QueueLen()
			}
			return float64(total)
		}},
		{Name: "slot_util", Fn: func() float64 {
			// Fraction of the network's slot capacity spent transmitting
			// over the last interval: one frame occupies one slot, and
			// capacity is nodes × elapsed slots.
			now := eng.Now()
			frames := framesTx()
			dSlots := now.Sub(lastAt).Seconds() / slots.Len().Seconds()
			df := frames - lastFrames
			lastFrames, lastAt = frames, now
			if dSlots <= 0 || len(modems) == 0 {
				return 0
			}
			return float64(df) / (dSlots * float64(len(modems)))
		}},
		{Name: "delivered", Fn: func() float64 {
			return float64(counters().DeliveredPackets)
		}},
		{Name: "extra_success_rate", Fn: func() float64 {
			c := counters()
			if c.ExtraAttempts == 0 {
				return 0
			}
			return float64(c.ExtraCompletions) / float64(c.ExtraAttempts)
		}},
		{Name: "energy_j", Fn: func() float64 {
			var j float64
			for _, m := range modems {
				if b, err := m.Energy(); err == nil {
					j += b.Total()
				}
			}
			return j
		}},
	}
	s, err := obs.NewSampler(eng, o.TimeSeries, o.SampleEvery, cols...)
	if err != nil {
		return err
	}
	s.SetRecorder(ro.rec)
	s.Start(until)
	ro.sampler = s
	return nil
}

// finish flushes the stream consumers and, when report collection is
// on, reduces the collected events to a RunReport stamped with the
// trial identity and engine statistics.
func (ro *runObs) finish(cfg Config, eng *sim.Engine) (*obs.RunReport, error) {
	if ro.sampler != nil {
		if err := ro.sampler.Flush(); err != nil {
			return nil, err
		}
	}
	if ro.jsonl != nil {
		if err := ro.jsonl.Flush(); err != nil {
			return nil, err
		}
	}
	if ro.collector == nil {
		return nil, nil
	}
	rep := ro.collector.Report((cfg.SimTime - cfg.Warmup).Seconds())
	rep.Protocol = cfg.Protocol.DisplayName()
	rep.Seed = cfg.Seed
	rep.Nodes = cfg.Nodes
	ls := eng.LoopStats()
	rep.EngineEvents = ls.Executed
	if w := ls.Wall.Seconds(); w > 0 {
		rep.EngineEventsPerS = float64(ls.Executed) / w
		rep.VirtualWallRatio = ls.Now.Seconds() / w
	}
	return rep, nil
}
