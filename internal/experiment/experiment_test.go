package experiment

import (
	"testing"
	"time"
)

// short returns a fast-but-meaningful scenario.
func short(p Protocol) Config {
	cfg := Default(p)
	cfg.SimTime = 120 * time.Second
	cfg.OfferedLoadKbps = 0.5
	return cfg
}

func TestRunAllProtocolsDeliver(t *testing.T) {
	for _, p := range Protocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			res, err := Run(short(p))
			if err != nil {
				t.Fatal(err)
			}
			s := res.Summary
			if s.MAC.Generated == 0 {
				t.Fatal("no traffic generated")
			}
			if s.MAC.DeliveredPackets == 0 {
				t.Fatal("nothing delivered")
			}
			if s.ThroughputKbps <= 0 || s.ThroughputKbps > s.OfferedKbps*1.05 {
				t.Errorf("throughput %v implausible vs offered %v", s.ThroughputKbps, s.OfferedKbps)
			}
			if s.DeliveryRatio <= 0 || s.DeliveryRatio > 1 {
				t.Errorf("delivery ratio %v outside (0, 1]", s.DeliveryRatio)
			}
			if s.MeanPowerMW <= 0 {
				t.Error("no energy consumed")
			}
			if s.ExecutionTime <= 0 {
				t.Error("no latency recorded")
			}
			if res.MeanDegree < 2 {
				t.Errorf("network implausibly sparse: degree %v", res.MeanDegree)
			}
		})
	}
}

func TestRunDeterministic(t *testing.T) {
	for _, p := range Protocols {
		a, err := Run(short(p))
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(short(p))
		if err != nil {
			t.Fatal(err)
		}
		if a.Summary.MAC != b.Summary.MAC {
			t.Errorf("%s: MAC counters differ across identical runs:\n%+v\n%+v",
				p, a.Summary.MAC, b.Summary.MAC)
		}
		if a.Summary.PHY != b.Summary.PHY {
			t.Errorf("%s: PHY stats differ across identical runs", p)
		}
	}
}

func TestRunSeedSensitivity(t *testing.T) {
	cfg := short(ProtocolEWMAC)
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 99
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.MAC == b.Summary.MAC {
		t.Error("different seeds produced identical counters (RNG not wired?)")
	}
}

func TestProtocolOrderingUnderLoad(t *testing.T) {
	// The paper's headline result (Figure 6, high load): EW-MAC beats
	// every baseline, and every exploit protocol beats S-FAMA.
	thr := map[Protocol]float64{}
	for _, p := range Protocols {
		cfg := short(p)
		cfg.OfferedLoadKbps = 0.8
		cfg.SimTime = 200 * time.Second
		sum, err := RunMean(cfg, []int64{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		thr[p] = sum.ThroughputKbps
	}
	t.Logf("throughput at 0.8 kbps: %v", thr)
	if thr[ProtocolEWMAC] <= thr[ProtocolSFAMA] {
		t.Error("EW-MAC did not beat S-FAMA")
	}
	if thr[ProtocolEWMAC] <= thr[ProtocolROPA] {
		t.Error("EW-MAC did not beat ROPA")
	}
	if thr[ProtocolEWMAC] <= thr[ProtocolCSMAC] {
		t.Error("EW-MAC did not beat CS-MAC at high load")
	}
	if thr[ProtocolCSMAC] <= thr[ProtocolSFAMA] {
		t.Error("CS-MAC did not beat S-FAMA")
	}
	if thr[ProtocolROPA] <= thr[ProtocolSFAMA] {
		t.Error("ROPA did not beat S-FAMA")
	}
}

func TestOverheadOrdering(t *testing.T) {
	// Figure 10: S-FAMA is the overhead baseline; the exploit
	// protocols pay more, CS-MAC the most (two-hop state piggybacked
	// on every control frame).
	ovh := map[Protocol]uint64{}
	for _, p := range Protocols {
		cfg := short(p)
		res, err := Run(cfg)
		if err != nil {
			t.Fatal(err)
		}
		ovh[p] = res.Summary.OverheadBits
	}
	t.Logf("overhead bits: %v", ovh)
	if ovh[ProtocolSFAMA] >= ovh[ProtocolEWMAC] {
		t.Error("S-FAMA overhead should be the smallest")
	}
	if ovh[ProtocolCSMAC] <= ovh[ProtocolROPA] {
		t.Error("CS-MAC overhead should exceed ROPA's")
	}
}

func TestFixedBatchWorkload(t *testing.T) {
	cfg := short(ProtocolEWMAC)
	cfg.OfferedLoadKbps = 0
	cfg.FixedBatch = 20
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MAC.Generated != 20 {
		t.Fatalf("generated %d packets, want 20", res.Summary.MAC.Generated)
	}
	if res.Summary.MAC.DeliveredPackets < 15 {
		t.Errorf("only %d of 20 batch packets delivered", res.Summary.MAC.DeliveredPackets)
	}
}

func TestConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"zero nodes", func(c *Config) { c.Nodes = 0 }},
		{"zero bits", func(c *Config) { c.DataBits = 0 }},
		{"sim within warmup", func(c *Config) { c.SimTime = c.Warmup }},
		{"zero region", func(c *Config) { c.RegionSide = 0 }},
		{"negative load", func(c *Config) { c.OfferedLoadKbps = -1 }},
		{"zero mobility step", func(c *Config) { c.MobilityStep = 0 }},
		{"unknown protocol", func(c *Config) { c.Protocol = "alohaext" }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := Default(ProtocolEWMAC)
			tc.edit(&cfg)
			if _, err := Run(cfg); err == nil {
				t.Error("Run accepted invalid config")
			}
		})
	}
}

func TestRunMeanAverages(t *testing.T) {
	cfg := short(ProtocolSFAMA)
	sum, err := RunMean(cfg, []int64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum.ThroughputKbps <= 0 {
		t.Error("averaged throughput zero")
	}
	// Averaging must fall between the per-seed extremes.
	var lo, hi float64
	for i, s := range []int64{1, 2, 3} {
		c := cfg
		c.Seed = s
		r, err := Run(c)
		if err != nil {
			t.Fatal(err)
		}
		v := r.Summary.ThroughputKbps
		if i == 0 || v < lo {
			lo = v
		}
		if i == 0 || v > hi {
			hi = v
		}
	}
	if sum.ThroughputKbps < lo-1e-9 || sum.ThroughputKbps > hi+1e-9 {
		t.Errorf("mean %v outside [%v, %v]", sum.ThroughputKbps, lo, hi)
	}
}

func TestLargerDataPacketsCarryMoreBits(t *testing.T) {
	// Table 2 supports 1024–4096-bit payloads; with the same load the
	// throughput should not collapse for large packets (the paper's
	// conclusion favors them).
	small := short(ProtocolEWMAC)
	small.DataBits = 1024
	big := short(ProtocolEWMAC)
	big.DataBits = 4096
	rs, err := Run(small)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := Run(big)
	if err != nil {
		t.Fatal(err)
	}
	if rb.Summary.MAC.DeliveredBits == 0 || rs.Summary.MAC.DeliveredBits == 0 {
		t.Fatal("no delivery")
	}
	perPacketSmall := float64(rs.Summary.MAC.DeliveredBits) / float64(rs.Summary.MAC.DeliveredPackets)
	perPacketBig := float64(rb.Summary.MAC.DeliveredBits) / float64(rb.Summary.MAC.DeliveredPackets)
	if perPacketSmall != 1024 || perPacketBig != 4096 {
		t.Errorf("per-packet bits %v/%v, want 1024/4096", perPacketSmall, perPacketBig)
	}
}

func TestSinksNeverGenerate(t *testing.T) {
	cfg := short(ProtocolSFAMA)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range res.PerNode {
		if s.IsSink && s.MAC.Generated > 0 {
			t.Errorf("sink %d generated traffic", i)
		}
	}
}
