package experiment

// The overload soak harness: a saturation sweep from well below to 4×
// the network's capacity, comparing a managed configuration (deadline
// drops + admission control + retry budget) against the unmanaged
// historical baseline (unbounded tail-drop queue). The managed runs
// must keep queue memory bounded and hold their FRESH goodput —
// deliveries younger than the TTL — near the peak across loads, while
// the unmanaged baseline visibly collapses: its queues grow without
// bound and most of what it delivers under saturation is stale.
//
// Every test here matches -run TestOverload (the CI overload-soak job
// filter). The runs are short (2 min simulated, tens of ms wall) so
// the sweep stays cheap under -race.

import (
	"strings"
	"testing"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

// soakTTL is the freshness bound: a delivery older than this is stale
// and does not count toward goodput, and the managed configuration
// sheds queued packets once they cross it.
const soakTTL = 30 * time.Second

// soakLoads sweeps 0.5×–4× of the ~0.5 kbps saturation knee of the
// 12-node/2-sink topology below.
var soakLoads = []float64{0.25, 0.5, 1.0, 2.0}

// freshCounter is an obs.Recorder that splits deliveries into fresh
// (latency ≤ TTL) and stale.
type freshCounter struct {
	ttl          time.Duration
	fresh, stale uint64
	freshBits    uint64
}

func (f *freshCounter) Record(_ sim.Time, e obs.Event) {
	d, ok := e.(*obs.Delivery)
	if !ok {
		return
	}
	if d.Latency <= f.ttl {
		f.fresh++
		f.freshBits += uint64(d.Bits)
	} else {
		f.stale++
	}
}

// soakPoint is one (load, config) measurement.
type soakPoint struct {
	load          float64
	freshKbps     float64
	fresh, stale  uint64
	queuePeak     int
	dropped       uint64
	droppedExpire uint64
}

// runSoak executes one soak run and reduces it to a soakPoint. Managed
// runs get the full overload layer; unmanaged runs get the historical
// unbounded tail-drop queue.
func runSoak(t *testing.T, p Protocol, load float64, managed bool) soakPoint {
	t.Helper()
	cfg := Default(p)
	cfg.Nodes = 12
	cfg.Sinks = 2
	cfg.OfferedLoadKbps = load
	cfg.SimTime = 120 * time.Second
	// A frozen or runaway run must fail the test, not hang it: every
	// soak run executes under an event budget and livelock watchdog.
	cfg.Budget = sim.Budget{MaxEvents: 20_000_000}
	if managed {
		cfg.Overload = mac.OverloadConfig{
			Policy:      mac.DropDeadline,
			PacketTTL:   soakTTL,
			HighWater:   0.9,
			RetryBudget: mac.RetryBudgetConfig{Burst: 8, RatePerSec: 1},
		}
	} else {
		cfg.QueueMax = 0 // unbounded tail-drop: the historical worst case
	}
	fc := &freshCounter{ttl: soakTTL}
	cfg.Observe = &Observe{Report: true, Recorder: fc}
	res, err := Run(cfg)
	if err != nil {
		t.Fatalf("%s load %g managed=%v: %v", p, load, managed, err)
	}
	if res.Report == nil {
		t.Fatalf("%s load %g: no run report", p, load)
	}
	window := (cfg.SimTime - cfg.Warmup).Seconds()
	return soakPoint{
		load:          load,
		freshKbps:     float64(fc.freshBits) / 1000 / window,
		fresh:         fc.fresh,
		stale:         fc.stale,
		queuePeak:     res.Report.QueuePeakDepth,
		dropped:       res.Summary.MAC.Dropped,
		droppedExpire: res.Summary.MAC.DroppedExpired,
	}
}

// peak returns the maximum fresh goodput across the sweep.
func peak(points []soakPoint) float64 {
	var m float64
	for _, pt := range points {
		if pt.freshKbps > m {
			m = pt.freshKbps
		}
	}
	return m
}

// TestOverloadSoakEWMAC is the PR's acceptance check: under a 0.5×–4×
// saturation sweep, managed EW-MAC holds its fresh goodput at 4× within
// 15% of its peak across loads with bounded queues, while the unmanaged
// baseline collapses — unbounded queue growth and a saturated goodput
// measurably below its own peak.
func TestOverloadSoakEWMAC(t *testing.T) {
	var managed, unmanaged []soakPoint
	for _, load := range soakLoads {
		m := runSoak(t, ProtocolEWMAC, load, true)
		u := runSoak(t, ProtocolEWMAC, load, false)
		managed = append(managed, m)
		unmanaged = append(unmanaged, u)
		t.Logf("load %.2f: managed fresh=%.4f kbps (stale=%d peak=%d expired=%d)  unmanaged fresh=%.4f kbps (stale=%d peak=%d)",
			load, m.freshKbps, m.stale, m.queuePeak, m.droppedExpire,
			u.freshKbps, u.stale, u.queuePeak)
	}

	mSat := managed[len(managed)-1]
	uSat := unmanaged[len(unmanaged)-1]

	// Managed: saturated fresh goodput within 15% of the sweep peak.
	if mp := peak(managed); mSat.freshKbps < 0.85*mp {
		t.Errorf("managed fresh goodput collapsed at saturation: %.4f kbps < 85%% of peak %.4f",
			mSat.freshKbps, mp)
	}
	// Managed: queue memory bounded by the configured cap at every load.
	for _, pt := range managed {
		if pt.queuePeak > 128 {
			t.Errorf("managed queue peak %d exceeds QueueMax at load %g", pt.queuePeak, pt.load)
		}
	}
	// The deadline policy must actually be doing the shedding work under
	// saturation — otherwise the goodput number is not its doing.
	if mSat.droppedExpire == 0 {
		t.Error("managed saturated run expired nothing: deadline policy inert")
	}

	// Unmanaged: the backlog grows far beyond anything the managed
	// configuration retains, and what it delivers under saturation is
	// mostly stale — its fresh goodput visibly collapses relative to the
	// managed run at the same load.
	if uSat.queuePeak <= mSat.queuePeak {
		t.Errorf("unmanaged queue peak %d not above managed %d: saturation never backlogged",
			uSat.queuePeak, mSat.queuePeak)
	}
	if uSat.stale == 0 {
		t.Error("unmanaged saturated run delivered nothing stale")
	}
	if uSat.freshKbps >= 0.85*mSat.freshKbps {
		t.Errorf("unmanaged fresh goodput %.4f kbps not visibly below managed %.4f at saturation",
			uSat.freshKbps, mSat.freshKbps)
	}
}

// TestOverloadSoakAllProtocols drives every protocol at 4× capacity
// with the managed configuration: each run must complete inside its
// event budget (no livelock), keep its queues inside the cap, and
// account every drop under a typed reason.
func TestOverloadSoakAllProtocols(t *testing.T) {
	for _, p := range allProtocols {
		p := p
		t.Run(string(p), func(t *testing.T) {
			pt := runSoak(t, p, soakLoads[len(soakLoads)-1], true)
			if pt.queuePeak > 128 {
				t.Errorf("queue peak %d exceeds QueueMax", pt.queuePeak)
			}
			if pt.fresh == 0 {
				t.Error("saturated run delivered nothing fresh")
			}
			t.Logf("fresh=%.4f kbps stale=%d peak=%d dropped=%d (expired=%d)",
				pt.freshKbps, pt.stale, pt.queuePeak, pt.dropped, pt.droppedExpire)
		})
	}
}

// TestOverloadTypedDropAccounting: on a managed saturated run the
// aggregate drop counter equals the sum of its typed breakdowns — no
// drop path escapes classification.
func TestOverloadTypedDropAccounting(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 12
	cfg.Sinks = 2
	cfg.OfferedLoadKbps = 2
	cfg.SimTime = 120 * time.Second
	cfg.QueueMax = 4 // tiny queue so overflow and shedding both fire
	cfg.Overload = mac.OverloadConfig{
		Policy:    mac.DropDeadline,
		PacketTTL: soakTTL,
		HighWater: 0.75,
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Summary.MAC
	typed := c.DroppedRetry + c.DroppedDeadPeer + c.DroppedQueueFull +
		c.DroppedOldest + c.DroppedExpired + c.DroppedShed
	if c.Dropped != typed {
		t.Errorf("Dropped=%d but typed sum=%d (retry=%d dead=%d full=%d oldest=%d expired=%d shed=%d)",
			c.Dropped, typed, c.DroppedRetry, c.DroppedDeadPeer, c.DroppedQueueFull,
			c.DroppedOldest, c.DroppedExpired, c.DroppedShed)
	}
	if c.Dropped == 0 {
		t.Error("saturated run with a 4-slot queue dropped nothing")
	}
}

// TestOverloadClosedLoop: with the generators closed-loop, arrivals are
// withheld at the source instead of shed at the queue, and the overload
// episodes appear in the resilience summary.
func TestOverloadClosedLoop(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 12
	cfg.Sinks = 2
	cfg.OfferedLoadKbps = 2
	cfg.SimTime = 120 * time.Second
	cfg.QueueMax = 4
	cfg.ClosedLoop = true
	cfg.Overload = mac.OverloadConfig{HighWater: 0.75}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience == nil {
		t.Fatal("overload-managed run has no resilience stats")
	}
	r := res.Resilience
	if r.OverloadEpisodes == 0 {
		t.Error("saturated 4-slot queues never closed the admission gate")
	}
	if r.OverloadEpisodes > 0 && r.OverloadS <= 0 {
		t.Errorf("%d overload episodes but zero overload time", r.OverloadEpisodes)
	}
	// Closed-loop: the source withholds, so queue-level sheds are rare
	// compared to the open-loop run below.
	open := cfg
	open.ClosedLoop = false
	openRes, err := Run(open)
	if err != nil {
		t.Fatal(err)
	}
	if openRes.Resilience == nil {
		t.Fatal("open-loop managed run has no resilience stats")
	}
	if openRes.Resilience.ShedPackets == 0 {
		t.Error("open-loop saturated run shed nothing at the gate")
	}
	if res.Summary.MAC.DroppedShed >= openRes.Summary.MAC.DroppedShed {
		t.Errorf("closed loop shed %d at the queue, open loop %d: backpressure not reducing queue-level sheds",
			res.Summary.MAC.DroppedShed, openRes.Summary.MAC.DroppedShed)
	}
	t.Logf("closed: episodes=%d overload=%.1fs shed=%d  open: shed=%d",
		r.OverloadEpisodes, r.OverloadS, r.ShedPackets, openRes.Resilience.ShedPackets)
}

// TestOverloadRetryBudgetDefers: an exhausted retry budget defers
// retries (counted, never dropped for that reason) and the deferrals
// surface in both the counters and the resilience summary.
func TestOverloadRetryBudgetDefers(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Nodes = 12
	cfg.Sinks = 2
	cfg.OfferedLoadKbps = 2
	cfg.SimTime = 120 * time.Second
	cfg.Overload = mac.OverloadConfig{
		RetryBudget: mac.RetryBudgetConfig{Burst: 1, RatePerSec: 0.02},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	c := res.Summary.MAC
	if c.RetryDeferrals == 0 {
		t.Error("a starved retry budget under saturation deferred nothing")
	}
	if res.Resilience == nil || res.Resilience.RetryDeferrals != c.RetryDeferrals {
		t.Errorf("resilience deferrals diverge from counters: %+v vs %d",
			res.Resilience, c.RetryDeferrals)
	}
	// Deferral is not loss: the budget itself must not manufacture a new
	// drop class.
	if c.DroppedRetry > 0 && cfg.MaxRetries == 0 {
		t.Errorf("retry budget dropped %d packets; it may only defer", c.DroppedRetry)
	}
}

// TestOverloadDefaultsInert: Default() leaves the whole overload layer
// disarmed, so plain runs carry no overload machinery or stats.
func TestOverloadDefaultsInert(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	if cfg.Overload.Armed() {
		t.Fatal("default config arms the overload layer")
	}
	cfg.SimTime = 30 * time.Second
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resilience != nil {
		t.Error("unarmed run reported resilience stats")
	}
	c := res.Summary.MAC
	if n := c.DroppedQueueFull + c.DroppedOldest + c.DroppedExpired + c.DroppedShed + c.RetryDeferrals; n != 0 {
		t.Errorf("unarmed run produced %d overload-typed drops/deferrals", n)
	}
}

// TestOverloadConfigValidation: experiment.Validate surfaces overload
// misconfiguration with everything else.
func TestOverloadConfigValidation(t *testing.T) {
	cfg := Default(ProtocolEWMAC)
	cfg.Overload.Policy = mac.DropDeadline // no TTL
	cfg.PriorityEvery = -1
	err := cfg.Validate()
	if err == nil {
		t.Fatal("invalid overload config validated")
	}
	for _, want := range []string{"PacketTTL", "priority every"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}
}
