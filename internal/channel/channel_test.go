package channel

import (
	"errors"
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

type recorder struct {
	received []*packet.Frame
	lost     int
}

func (r *recorder) OnFrameReceived(f *packet.Frame)           { r.received = append(r.received, f) }
func (r *recorder) OnFrameLost(*packet.Frame, phy.LossReason) { r.lost++ }
func (r *recorder) OnTxDone(*packet.Frame)                    {}

// lineNetwork builds nodes on the X axis at the given offsets (meters),
// all at 100 m depth, inside a large region.
func lineNetwork(t *testing.T, xs ...float64) (*sim.Engine, *Channel, []*phy.Modem, []*recorder) {
	t.Helper()
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, len(xs))
	for i, x := range xs {
		nodes[i] = &topology.Node{ID: packet.NodeID(i + 1), Pos: vec.V3{X: x, Z: 100}}
	}
	region := vec.Box{Min: vec.V3{X: -1e5, Y: -1e5, Z: 0}, Max: vec.V3{X: 1e5, Y: 1e5, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	modems := make([]*phy.Modem, len(xs))
	recs := make([]*recorder, len(xs))
	for i := range xs {
		recs[i] = &recorder{}
		m, err := phy.NewModem(phy.Config{
			ID:       packet.NodeID(i + 1),
			Engine:   eng,
			Model:    model,
			Medium:   ch,
			Listener: recs[i],
			Energy:   energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(m); err != nil {
			t.Fatal(err)
		}
		modems[i] = m
	}
	return eng, ch, modems, recs
}

func TestBroadcastRespectsPropagationDelay(t *testing.T) {
	eng, _, modems, recs := lineNetwork(t, 0, 750, 1500)
	var rxAt [3]sim.Time
	f := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 3}
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	// Capture arrival times via an observer wrapper: approximate by
	// checking reception happened and the engine clock advanced at
	// least past the propagation delay of the farthest node.
	eng.Run()
	_ = rxAt
	if len(recs[1].received) != 1 || len(recs[2].received) != 1 {
		t.Fatalf("receptions = %d, %d; want 1 each", len(recs[1].received), len(recs[2].received))
	}
	if len(recs[0].received) != 0 {
		t.Error("sender received its own frame")
	}
	// On-air end for node 3: 1.0 s propagation + 64/12000 s tx.
	wantEnd := sim.FromSeconds(1.0 + 64.0/12000)
	if got := eng.Now(); got < wantEnd-sim.At(time.Millisecond) || got > wantEnd+sim.At(5*time.Millisecond) {
		t.Errorf("simulation ended at %v, want ≈%v", got, wantEnd)
	}
}

func TestTraceSeesDeliveries(t *testing.T) {
	eng, ch, modems, _ := lineNetwork(t, 0, 750)
	type entry struct {
		src, dst packet.NodeID
		delay    time.Duration
	}
	var entries []entry
	ch.SetTrace(func(src, dst packet.NodeID, _ *packet.Frame, delay time.Duration, _ float64) {
		entries = append(entries, entry{src, dst, delay})
	})
	if err := modems[0].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(entries) != 1 || entries[0].src != 1 || entries[0].dst != 2 {
		t.Fatalf("trace = %+v", entries)
	}
	want := 500 * time.Millisecond
	if d := entries[0].delay; d < want-time.Millisecond || d > want+time.Millisecond {
		t.Errorf("traced delay = %v, want ≈%v", d, want)
	}
	if ch.Deliveries() != 1 {
		t.Errorf("Deliveries = %d", ch.Deliveries())
	}
}

func TestOutOfRangeNotDecodedButInterferes(t *testing.T) {
	// Node 2 sits 2 km from node 1 (beyond the 1.5 km range but within
	// interference range) and 750 m from node 3.
	eng, _, modems, recs := lineNetwork(t, 0, 2000, 2750)
	if err := modems[1].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: 2, Dst: 3}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(recs[0].received) != 0 {
		t.Error("node 1 decoded a frame from 2 km away")
	}
	if len(recs[2].received) != 1 {
		t.Error("node 3 failed to decode an in-range frame")
	}

	// Now node 1 receives from a close node while node 2 (out of range
	// of 1) transmits concurrently: interference must kill the frame.
	eng2, _, modems2, recs2 := lineNetwork(t, 0, 2000, 400)
	sendBoth := func() {
		if err := modems2[2].Transmit(&packet.Frame{Kind: packet.KindData, Src: 3, Dst: 1, DataBits: 2048}); err != nil {
			t.Error(err)
		}
		if err := modems2[1].Transmit(&packet.Frame{Kind: packet.KindData, Src: 2, Dst: 3, DataBits: 2048}); err != nil {
			t.Error(err)
		}
	}
	eng2.ScheduleIn(0, sim.PriorityMAC, sendBoth)
	eng2.Run()
	// 2 km interferer is ~11 dB weaker than the 400 m signal — enough
	// to matter: received level diff = 1.5*10*(log10(2000)-log10(400))
	// ≈ 10.5 dB < the 10 dB threshold only marginally; assert the
	// interference was at least registered by checking either loss or
	// reception occurred (no silent drop).
	if len(recs2[0].received)+recs2[0].lost == 0 {
		t.Error("frame to node 1 vanished without reception or loss report")
	}
}

func TestBeyondInterferenceRangeSkipped(t *testing.T) {
	eng, ch, modems, recs := lineNetwork(t, 0, 5000)
	if err := modems[0].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if ch.Deliveries() != 0 {
		t.Errorf("Deliveries = %d, want 0 beyond interference range", ch.Deliveries())
	}
	if len(recs[1].received) != 0 {
		t.Error("frame decoded at 5 km")
	}
}

func TestRegisterValidation(t *testing.T) {
	eng, ch, modems, _ := lineNetwork(t, 0, 750)
	if err := ch.Register(nil); err == nil {
		t.Error("nil modem accepted")
	}
	if err := ch.Register(modems[0]); err == nil {
		t.Error("duplicate modem accepted")
	}
	// A modem whose ID is not in the topology.
	stray, err := phy.NewModem(phy.Config{
		ID:     99,
		Engine: eng,
		Model:  acoustic.DefaultModel(),
		Medium: ch,
		Energy: energy.DefaultProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := ch.Register(stray); err == nil {
		t.Error("modem without topology node accepted")
	}
	if ch.Modem(1) != modems[0] || ch.Modem(99) != nil {
		t.Error("Modem lookup wrong")
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, nil); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := New(sim.NewEngine(1), nil); err == nil {
		t.Error("nil network accepted")
	}
}

func TestMutualTransmissionsCollideAtThirdNode(t *testing.T) {
	// 1 and 3 both transmit to 2 simultaneously from equal distances:
	// classic UASN collision at the receiver.
	eng, _, modems, recs := lineNetwork(t, 0, 750, 1500)
	eng.ScheduleIn(0, sim.PriorityMAC, func() {
		if err := modems[0].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}); err != nil {
			t.Error(err)
		}
		if err := modems[2].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: 3, Dst: 2}); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	if len(recs[1].received) != 0 {
		t.Fatalf("node 2 decoded %d frames from an equal-power collision", len(recs[1].received))
	}
	if recs[1].lost != 2 {
		t.Errorf("node 2 lost = %d, want 2", recs[1].lost)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	run := func() (uint64, int) {
		eng, ch, modems, recs := lineNetwork(t, 0, 300, 600, 900, 1200)
		for i := range modems {
			i := i
			eng.ScheduleIn(time.Duration(i)*137*time.Millisecond, sim.PriorityMAC, func() {
				dst := packet.NodeID((i+1)%5 + 1)
				_ = modems[i].Transmit(&packet.Frame{Kind: packet.KindRTS, Src: packet.NodeID(i + 1), Dst: dst})
			})
		}
		eng.Run()
		total := 0
		for _, r := range recs {
			total += len(r.received)
		}
		return ch.Deliveries(), total
	}
	d1, r1 := run()
	d2, r2 := run()
	if d1 != d2 || r1 != r2 {
		t.Errorf("non-deterministic: (%d,%d) vs (%d,%d)", d1, r1, d2, r2)
	}
}

func TestSurfaceReflectionDelivery(t *testing.T) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	model.SurfaceReflection = true
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{X: 0, Z: 400}},
		{ID: 2, Pos: vec.V3{X: 600, Z: 400}},
	}
	region := vec.Box{Min: vec.V3{X: -1e5, Y: -1e5, Z: 0}, Max: vec.V3{X: 1e5, Y: 1e5, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	rec := &recorder{}
	var tx *phy.Modem
	for i, r := range []*recorder{{}, rec} {
		m, err := phy.NewModem(phy.Config{
			ID:       packet.NodeID(i + 1),
			Engine:   eng,
			Model:    model,
			Medium:   ch,
			Listener: r,
			Energy:   energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(m); err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			tx = m
		}
	}
	if err := tx.Transmit(&packet.Frame{Kind: packet.KindData, Src: 1, Dst: 2, DataBits: 2048}); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	// Direct ray 600 m (0.4 s), reflected 1000 m (0.667 s): the data
	// frame lasts 176 ms, so the echo begins 91 ms after the direct
	// copy finishes — no overlap, and the frame is decoded.
	if len(rec.received) != 1 {
		t.Fatalf("received %d frames with clean echo separation, want 1", len(rec.received))
	}
	// Simulation runs until the echo's arrival completes: well past the
	// direct arrival end.
	if eng.Now().Seconds() < 0.8 {
		t.Errorf("simulation ended at %v; echo never scheduled", eng.Now())
	}
}

func TestSurfaceReflectionCanCorrupt(t *testing.T) {
	// Shallow nodes: the echo follows the direct ray closely and lands
	// on the tail of a long frame... here we instead check the echo of
	// an *earlier* frame corrupting a later one at a third node.
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	model.SurfaceReflection = true
	model.SurfaceLossDB = 0.5 // strong bounce
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{X: 0, Z: 900}},
		{ID: 2, Pos: vec.V3{X: 300, Z: 900}},
		{ID: 3, Pos: vec.V3{X: 150, Z: 880}},
	}
	region := vec.Box{Min: vec.V3{X: -1e5, Y: -1e5, Z: 0}, Max: vec.V3{X: 1e5, Y: 1e5, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]*recorder, 3)
	modems := make([]*phy.Modem, 3)
	for i := range nodes {
		recs[i] = &recorder{}
		m, err := phy.NewModem(phy.Config{
			ID: packet.NodeID(i + 1), Engine: eng, Model: model,
			Medium: ch, Listener: recs[i], Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(m); err != nil {
			t.Fatal(err)
		}
		modems[i] = m
	}
	// Node 1 sends a long frame; node 2 sends to node 3 timed so that
	// node 1's deep-water echo (≈1.2 s extra path) arrives at node 3
	// during the reception.
	if err := modems[0].Transmit(&packet.Frame{Kind: packet.KindData, Src: 1, Dst: 2, DataBits: 4096}); err != nil {
		t.Fatal(err)
	}
	eng.MustScheduleAt(sim.At(1150*time.Millisecond), sim.PriorityMAC, func() {
		if err := modems[1].Transmit(&packet.Frame{Kind: packet.KindData, Src: 2, Dst: 3, DataBits: 2048}); err != nil {
			t.Error(err)
		}
	})
	eng.Run()
	// The direct frame 1→2 decodes fine; whether 2→3 survives depends
	// on the echo's relative power — assert that the echo at least
	// registered as interference (reception + loss accounting adds up).
	if len(recs[1].received) != 1 {
		t.Errorf("node 2 received %d, want its direct frame", len(recs[1].received))
	}
	if got := len(recs[2].received) + recs[2].lost; got == 0 {
		t.Error("frame 2→3 vanished entirely")
	}
}

// TestBroadcastUnknownSourceDrops: a transmission from a node outside
// the topology must be dropped with a counted, typed error — never a
// panic in the event loop — and must not schedule any arrival.
func TestBroadcastUnknownSourceDrops(t *testing.T) {
	eng, ch, _, recs := lineNetwork(t, 0, 750)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 99, Dst: 1}
	dur := f.TxDuration(acoustic.DefaultModel().BitRate())

	err := ch.Broadcast(99, f, dur)
	if !errors.Is(err, ErrUnknownSource) {
		t.Fatalf("Broadcast from unknown node returned %v, want ErrUnknownSource", err)
	}
	if got := ch.DroppedUnknown(); got != 1 {
		t.Errorf("DroppedUnknown = %d, want 1", got)
	}
	if got := ch.Deliveries(); got != 0 {
		t.Errorf("dropped broadcast scheduled %d deliveries", got)
	}
	eng.RunUntil(sim.At(10 * time.Second))
	for i, r := range recs {
		if len(r.received) != 0 || r.lost != 0 {
			t.Errorf("modem %d saw traffic from a dropped broadcast", i+1)
		}
	}

	// A registered source still works after the drop.
	ok := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}
	if err := ch.Broadcast(1, ok, dur); err != nil {
		t.Fatalf("valid broadcast failed after drop: %v", err)
	}
	if ch.Deliveries() == 0 {
		t.Error("valid broadcast scheduled no deliveries")
	}
}
