package channel

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

// Moving a node must invalidate the cached geometry: the next broadcast
// has to see the new positions' delay, not the pre-move one.
func TestGeometryCacheInvalidatedByStep(t *testing.T) {
	eng, ch, modems, _ := lineNetwork(t, 0, 750)
	net := chNetwork(ch)
	// Give node 2 a drift so Step actually moves it.
	net.Node(2).Mobility = topology.MobilityHorizontal
	net.Node(2).Vel = vec.V3{X: 100}

	var traced []time.Duration
	ch.SetTrace(func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
		traced = append(traced, delay)
	})

	f := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(traced) != 1 {
		t.Fatalf("traced %d deliveries, want 1", len(traced))
	}
	before := traced[0]

	// Same geometry again: must be a cache hit with an identical delay.
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if traced[1] != before {
		t.Fatalf("static rebroadcast delay %v != %v", traced[1], before)
	}
	hits, _ := ch.CacheStats()
	if hits == 0 {
		t.Fatal("static rebroadcast did not hit the cache")
	}

	epoch := net.Epoch()
	net.Step(2 * time.Second) // node 2 drifts 200 m further out
	if net.Epoch() == epoch {
		t.Fatal("Step moved a node without bumping the epoch")
	}
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := net.Model.Delay(net.Node(1).Pos, net.Node(2).Pos)
	if got := traced[2]; got != want {
		t.Fatalf("post-move delay = %v, want fresh %v (stale cached %v)", got, want, before)
	}
	if got := traced[2]; got == before {
		t.Fatal("post-move broadcast served the stale cached delay")
	}
}

// A static topology must never bump the epoch, so the cache survives
// mobility steps that move nothing.
func TestStaticStepKeepsCache(t *testing.T) {
	_, ch, _, _ := lineNetwork(t, 0, 750)
	net := chNetwork(ch)
	epoch := net.Epoch()
	net.Step(time.Second)
	if net.Epoch() != epoch {
		t.Fatal("static Step bumped the geometry epoch")
	}
}

// Direct position mutation (the fault injector's delay-shift path) plus
// Invalidate must refresh cached geometry exactly like Step does.
func TestGeometryCacheInvalidatedByDirectMove(t *testing.T) {
	eng, ch, modems, _ := lineNetwork(t, 0, 750)
	net := chNetwork(ch)
	var traced []time.Duration
	ch.SetTrace(func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
		traced = append(traced, delay)
	})
	f := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	net.Node(2).Pos.X = 1200
	net.Invalidate()
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	want := net.Model.Delay(net.Node(1).Pos, net.Node(2).Pos)
	if traced[1] != want || traced[1] == traced[0] {
		t.Fatalf("post-jump delay = %v, want %v (pre-jump %v)", traced[1], want, traced[0])
	}
}

// Registering a modem after broadcasts started must invalidate the
// cached receiver lists so the newcomer is not silently skipped.
func TestRegisterInvalidatesCache(t *testing.T) {
	eng, ch, modems, _ := lineNetwork(t, 0, 750)
	net := chNetwork(ch)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}
	if err := modems[0].Transmit(f); err != nil {
		t.Fatal(err)
	}
	eng.Run()

	// Grow the topology is not supported; instead simulate late modem
	// registration by building a fresh network with three nodes but
	// registering the third modem only after a broadcast.
	_ = net
	eng2 := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{X: 0, Z: 100}},
		{ID: 2, Pos: vec.V3{X: 750, Z: 100}},
		{ID: 3, Pos: vec.V3{X: 400, Z: 100}},
	}
	region := vec.Box{Min: vec.V3{X: -1e5, Y: -1e5, Z: 0}, Max: vec.V3{X: 1e5, Y: 1e5, Z: 1e4}}
	net2, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch2, err := New(eng2, net2)
	if err != nil {
		t.Fatal(err)
	}
	mods := make([]*phy.Modem, 3)
	recs := make([]*recorder, 3)
	for i := 0; i < 3; i++ {
		recs[i] = &recorder{}
		m, err := phy.NewModem(phy.Config{
			ID: packet.NodeID(i + 1), Engine: eng2, Model: model,
			Medium: ch2, Listener: recs[i], Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		mods[i] = m
		if i < 2 {
			if err := ch2.Register(m); err != nil {
				t.Fatal(err)
			}
		}
	}
	g := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 2}
	if err := mods[0].Transmit(g); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if len(recs[2].received) != 0 {
		t.Fatal("unregistered modem received a frame")
	}
	if err := ch2.Register(mods[2]); err != nil {
		t.Fatal(err)
	}
	if err := mods[0].Transmit(g); err != nil {
		t.Fatal(err)
	}
	eng2.Run()
	if len(recs[2].received) != 1 {
		t.Fatalf("late-registered modem received %d frames, want 1", len(recs[2].received))
	}
}

// chNetwork digs the topology out of the channel for test mutation.
func chNetwork(c *Channel) *topology.Network { return c.net }

// BenchmarkChannelBroadcast measures one broadcast fanning out to a
// static 40-node deployment plus draining the scheduled arrivals — the
// geometry-cache + copy-on-write hot path.
func BenchmarkChannelBroadcast(b *testing.B) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	const n = 40
	nodes := make([]*topology.Node, n)
	for i := range nodes {
		// 8×5 grid, 300 m pitch: everything within interference range of
		// everything, as in the dense Table 2 deployments.
		nodes[i] = &topology.Node{
			ID:  packet.NodeID(i + 1),
			Pos: vec.V3{X: float64(i%8) * 300, Y: float64(i/8) * 300, Z: 100},
		}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		b.Fatal(err)
	}
	ch, err := New(eng, net)
	if err != nil {
		b.Fatal(err)
	}
	for i := range nodes {
		m, err := phy.NewModem(phy.Config{
			ID: packet.NodeID(i + 1), Engine: eng, Model: model,
			Medium: ch, Energy: energy.DefaultProfile(),
		})
		if err != nil {
			b.Fatal(err)
		}
		if err := ch.Register(m); err != nil {
			b.Fatal(err)
		}
	}
	f := &packet.Frame{
		Kind: packet.KindRTS, Src: 1, Dst: 2,
		Neighbors: []packet.NeighborInfo{{ID: 2, Delay: time.Second}},
	}
	dur := 10 * time.Millisecond
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ch.Broadcast(1, f, dur)
		eng.Run()
	}
}
