// Package channel connects modems through the acoustic environment: it
// is the broadcast medium. For every transmission it computes, per
// receiver, the propagation delay and received level from the current
// geometry, then schedules the arrival at that receiver's modem.
//
// Delay and level are sampled at emission time. For moving nodes this
// means the channel always uses true current geometry while the MAC
// layer works from its learned delay tables — so staleness in the
// protocol's knowledge (a failure mode the paper discusses in §5) is
// faithfully represented rather than assumed away.
package channel

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
)

// InterferenceRangeFactor scales the nominal communication range to the
// distance at which a transmission still contributes interference. At
// 2× the nominal range the received level is ~15 dB below the edge of
// the communication range (practical spreading), small enough to ignore
// beyond it but large enough to matter within.
const InterferenceRangeFactor = 2.0

// TraceFunc observes every scheduled delivery; used by tests and the
// debug tracer. It runs at emission time.
type TraceFunc func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64)

// rxGeom is one precomputed receiver entry of a source's geometry list:
// everything Broadcast needs per in-interference-range neighbor, so the
// hot path does zero trigonometry while the topology is static.
type rxGeom struct {
	rx        *phy.Modem
	dst       packet.NodeID
	delay     time.Duration
	levelDB   float64
	surfDelay time.Duration
	surfLevel float64
	syncable  bool
	surf      bool
}

// srcGeoms is the cached receiver list for one source, stamped with the
// topology epoch and modem-registration generation it was built under.
type srcGeoms struct {
	epoch uint64
	gen   uint64
	built bool
	list  []rxGeom
}

// Channel is the shared acoustic medium.
type Channel struct {
	eng    *sim.Engine
	net    *topology.Network
	modems map[packet.NodeID]*phy.Modem
	trace  TraceFunc
	rec    obs.Recorder

	// geo caches per-source receiver geometry, indexed by NodeID-1. An
	// entry is valid while the topology epoch and registration
	// generation it was built under are both current; Broadcast rebuilds
	// it lazily (reusing the slice) otherwise.
	geo      []srcGeoms
	regGen   uint64 // bumped by Register; invalidates every cache entry
	cacheOff bool
	scratch  []rxGeom // reused build target when the cache is disabled

	cacheHits   uint64
	cacheMisses uint64

	// Deliveries counts scheduled frame arrivals (per receiver).
	deliveries uint64
	// droppedUnknown counts broadcasts rejected because the source has
	// no node in the topology.
	droppedUnknown uint64
}

// ErrUnknownSource is returned by Broadcast when the transmitting node
// is not part of the deployed topology. The transmission is dropped and
// counted rather than crashing the run: a mis-wired harness should
// surface as an observable error, not a panic inside the event loop.
var ErrUnknownSource = errors.New("channel: broadcast from unknown source")

var _ phy.Medium = (*Channel)(nil)

// New returns an empty channel over the given deployed network.
func New(eng *sim.Engine, net *topology.Network) (*Channel, error) {
	if eng == nil {
		return nil, errors.New("channel: nil engine")
	}
	if net == nil {
		return nil, errors.New("channel: nil network")
	}
	return &Channel{
		eng:    eng,
		net:    net,
		modems: make(map[packet.NodeID]*phy.Modem),
		geo:    make([]srcGeoms, net.Len()),
	}, nil
}

// Register attaches a modem. Every node in the topology must have
// exactly one registered modem before traffic starts.
func (c *Channel) Register(m *phy.Modem) error {
	if m == nil {
		return errors.New("channel: nil modem")
	}
	if c.net.Node(m.ID()) == nil {
		return fmt.Errorf("channel: modem %v has no node in topology", m.ID())
	}
	if _, dup := c.modems[m.ID()]; dup {
		return fmt.Errorf("channel: duplicate modem for %v", m.ID())
	}
	c.modems[m.ID()] = m
	c.regGen++
	return nil
}

// SetCacheEnabled force-disables (or re-enables) the geometry cache.
// With the cache off every broadcast recomputes pairwise geometry from
// scratch — the reference path the determinism tests compare against.
func (c *Channel) SetCacheEnabled(on bool) { c.cacheOff = !on }

// CacheStats reports geometry-cache hits and misses (rebuilds).
func (c *Channel) CacheStats() (hits, misses uint64) {
	return c.cacheHits, c.cacheMisses
}

// SetTrace installs a delivery observer (nil to disable).
func (c *Channel) SetTrace(t TraceFunc) { c.trace = t }

// SetRecorder installs the observability event sink (nil to disable).
// Every scheduled delivery is recorded as an obs.FrameEmit at emission
// time, the trace-v2 superset of TraceFunc.
func (c *Channel) SetRecorder(r obs.Recorder) { c.rec = r }

// Deliveries reports how many frame arrivals have been scheduled.
func (c *Channel) Deliveries() uint64 { return c.deliveries }

// DroppedUnknown reports how many broadcasts were dropped because their
// source was not in the topology.
func (c *Channel) DroppedUnknown() uint64 { return c.droppedUnknown }

// buildGeoms computes the receiver list for srcNode into out (reused
// between rebuilds), iterating in node-ID order — arrivals scheduled
// for the same instant execute in scheduling order, so the list order
// must be deterministic across runs.
func (c *Channel) buildGeoms(srcNode *topology.Node, out []rxGeom) []rxGeom {
	model := c.net.Model
	maxDist := model.MaxRangeM * InterferenceRangeFactor
	for _, dstNode := range c.net.Nodes() {
		id := dstNode.ID
		if id == srcNode.ID {
			continue
		}
		rx, ok := c.modems[id]
		if !ok {
			continue
		}
		dist := srcNode.Pos.Dist(dstNode.Pos)
		if dist > maxDist {
			continue
		}
		g := rxGeom{
			rx:      rx,
			dst:     id,
			delay:   model.Delay(srcNode.Pos, dstNode.Pos),
			levelDB: model.ReceivedLevelDB(srcNode.Pos, dstNode.Pos),
			// Beyond the nominal communication range (Table 2: 1.5 km)
			// the modem never synchronizes to the signal, but its energy
			// still interferes at full physical strength.
			syncable: dist <= model.MaxRangeM,
		}
		if model.SurfaceReflection {
			// Two-ray extension: the surface-bounced copy arrives later
			// and weaker, as pure interference (a real modem stays
			// locked to the direct ray).
			rDelay, rLevel := model.SurfacePath(srcNode.Pos, dstNode.Pos)
			if rDelay > g.delay {
				g.surf = true
				g.surfDelay = rDelay
				g.surfLevel = rLevel
			}
		}
		out = append(out, g)
	}
	return out
}

// geomsFor returns the receiver list for src, from cache when the
// topology epoch and modem registrations are unchanged since it was
// built. The returned slice is owned by the channel and only valid
// until the next Broadcast.
func (c *Channel) geomsFor(src packet.NodeID, srcNode *topology.Node) []rxGeom {
	if c.cacheOff {
		c.scratch = c.buildGeoms(srcNode, c.scratch[:0])
		return c.scratch
	}
	sg := &c.geo[int(src)-1]
	if sg.built && sg.epoch == c.net.Epoch() && sg.gen == c.regGen {
		c.cacheHits++
		return sg.list
	}
	c.cacheMisses++
	sg.list = c.buildGeoms(srcNode, sg.list[:0])
	sg.epoch = c.net.Epoch()
	sg.gen = c.regGen
	sg.built = true
	return sg.list
}

// Broadcast implements phy.Medium: it fans f out to every other modem
// within interference range, with per-pair delay and received level
// computed from the current node positions (cached while the topology
// is static). All receivers share one copy-on-write view of the frame
// instead of a deep clone each.
func (c *Channel) Broadcast(src packet.NodeID, f *packet.Frame, dur time.Duration) error {
	srcNode := c.net.Node(src)
	if srcNode == nil {
		c.droppedUnknown++
		obs.Invariant{
			Node:   src,
			Check:  "channel.broadcast.src",
			Detail: "transmission from node outside topology dropped",
		}.Emit(c.rec, c.eng.Now())
		return fmt.Errorf("%w: %v", ErrUnknownSource, src)
	}
	geoms := c.geomsFor(src, srcNode)
	if len(geoms) == 0 {
		return nil
	}
	fc := f.Share()
	now := c.eng.Now()
	for i := range geoms {
		g := &geoms[i]
		if c.trace != nil {
			c.trace(src, g.dst, f, g.delay, g.levelDB)
		}
		if c.rec != nil {
			obs.FrameEmit{
				Src: src, Dst: g.dst, Frame: f, Delay: g.delay, LevelDB: g.levelDB,
			}.Emit(c.rec, now)
		}
		c.deliveries++
		// Copy out of the cache entry before capturing: the cache slice
		// may be rebuilt in place before the scheduled closures run.
		rxm, level, syncable := g.rx, g.levelDB, g.syncable
		c.eng.ScheduleIn(g.delay, sim.PriorityPHY, func() {
			rxm.BeginArrival(fc, level, dur, syncable)
		})
		if g.surf {
			sLevel := g.surfLevel
			c.eng.ScheduleIn(g.surfDelay, sim.PriorityPHY, func() {
				rxm.BeginArrival(fc, sLevel, dur, false)
			})
		}
	}
	return nil
}

// Modem returns the registered modem for id, or nil.
func (c *Channel) Modem(id packet.NodeID) *phy.Modem { return c.modems[id] }
