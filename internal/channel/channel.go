// Package channel connects modems through the acoustic environment: it
// is the broadcast medium. For every transmission it computes, per
// receiver, the propagation delay and received level from the current
// geometry, then schedules the arrival at that receiver's modem.
//
// Delay and level are sampled at emission time. For moving nodes this
// means the channel always uses true current geometry while the MAC
// layer works from its learned delay tables — so staleness in the
// protocol's knowledge (a failure mode the paper discusses in §5) is
// faithfully represented rather than assumed away.
package channel

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
)

// InterferenceRangeFactor scales the nominal communication range to the
// distance at which a transmission still contributes interference. At
// 2× the nominal range the received level is ~15 dB below the edge of
// the communication range (practical spreading), small enough to ignore
// beyond it but large enough to matter within.
const InterferenceRangeFactor = 2.0

// TraceFunc observes every scheduled delivery; used by tests and the
// debug tracer. It runs at emission time.
type TraceFunc func(src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64)

// Channel is the shared acoustic medium.
type Channel struct {
	eng    *sim.Engine
	net    *topology.Network
	modems map[packet.NodeID]*phy.Modem
	trace  TraceFunc
	rec    obs.Recorder

	// Deliveries counts scheduled frame arrivals (per receiver).
	deliveries uint64
}

var _ phy.Medium = (*Channel)(nil)

// New returns an empty channel over the given deployed network.
func New(eng *sim.Engine, net *topology.Network) (*Channel, error) {
	if eng == nil {
		return nil, errors.New("channel: nil engine")
	}
	if net == nil {
		return nil, errors.New("channel: nil network")
	}
	return &Channel{
		eng:    eng,
		net:    net,
		modems: make(map[packet.NodeID]*phy.Modem),
	}, nil
}

// Register attaches a modem. Every node in the topology must have
// exactly one registered modem before traffic starts.
func (c *Channel) Register(m *phy.Modem) error {
	if m == nil {
		return errors.New("channel: nil modem")
	}
	if c.net.Node(m.ID()) == nil {
		return fmt.Errorf("channel: modem %v has no node in topology", m.ID())
	}
	if _, dup := c.modems[m.ID()]; dup {
		return fmt.Errorf("channel: duplicate modem for %v", m.ID())
	}
	c.modems[m.ID()] = m
	return nil
}

// SetTrace installs a delivery observer (nil to disable).
func (c *Channel) SetTrace(t TraceFunc) { c.trace = t }

// SetRecorder installs the observability event sink (nil to disable).
// Every scheduled delivery is recorded as an obs.FrameEmit at emission
// time, the trace-v2 superset of TraceFunc.
func (c *Channel) SetRecorder(r obs.Recorder) { c.rec = r }

// Deliveries reports how many frame arrivals have been scheduled.
func (c *Channel) Deliveries() uint64 { return c.deliveries }

// Broadcast implements phy.Medium: it fans f out to every other modem
// within interference range, with per-pair delay and received level
// computed from the current node positions.
func (c *Channel) Broadcast(src packet.NodeID, f *packet.Frame, dur time.Duration) {
	srcNode := c.net.Node(src)
	if srcNode == nil {
		panic(fmt.Sprintf("channel: broadcast from unknown node %v", src))
	}
	model := c.net.Model
	maxDist := model.MaxRangeM * InterferenceRangeFactor
	// Iterate in node-ID order, not map order: arrivals scheduled for
	// the same instant are executed in scheduling order, and that order
	// must be deterministic across runs.
	for _, dstNode := range c.net.Nodes() {
		id := dstNode.ID
		if id == src {
			continue
		}
		rx, ok := c.modems[id]
		if !ok {
			continue
		}
		dist := srcNode.Pos.Dist(dstNode.Pos)
		if dist > maxDist {
			continue
		}
		delay := model.Delay(srcNode.Pos, dstNode.Pos)
		level := model.ReceivedLevelDB(srcNode.Pos, dstNode.Pos)
		// Beyond the nominal communication range (Table 2: 1.5 km) the
		// modem never synchronizes to the signal, but its energy still
		// interferes at full physical strength.
		syncable := dist <= model.MaxRangeM
		if c.trace != nil {
			c.trace(src, id, f, delay, level)
		}
		if c.rec != nil {
			c.rec.Record(c.eng.Now(), obs.FrameEmit{
				Src: src, Dst: id, Frame: f, Delay: delay, LevelDB: level,
			})
		}
		c.deliveries++
		fc := f.Clone()
		rxm := rx
		c.eng.ScheduleIn(delay, sim.PriorityPHY, func() {
			rxm.BeginArrival(fc, level, dur, syncable)
		})
		if model.SurfaceReflection {
			// Two-ray extension: the surface-bounced copy arrives
			// later and weaker, as pure interference (a real modem
			// stays locked to the direct ray).
			rDelay, rLevel := model.SurfacePath(srcNode.Pos, dstNode.Pos)
			if rDelay > delay {
				rc := f.Clone()
				c.eng.ScheduleIn(rDelay, sim.PriorityPHY, func() {
					rxm.BeginArrival(rc, rLevel, dur, false)
				})
			}
		}
	}
}

// Modem returns the registered modem for id, or nil.
func (c *Channel) Modem(id packet.NodeID) *phy.Modem { return c.modems[id] }
