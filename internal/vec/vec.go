// Package vec provides the small amount of 3-D geometry the simulator
// needs: positions, displacement, distance, and axis-aligned regions.
//
// Coordinates are in meters. The convention throughout the simulator is
// that Z is depth: Z = 0 is the sea surface and Z grows downward, so a
// "shallower" node has a smaller Z.
package vec

import (
	"fmt"
	"math"
)

// V3 is a point or displacement in meters.
type V3 struct {
	X, Y, Z float64
}

// Add returns v + w.
func (v V3) Add(w V3) V3 { return V3{v.X + w.X, v.Y + w.Y, v.Z + w.Z} }

// Sub returns v - w.
func (v V3) Sub(w V3) V3 { return V3{v.X - w.X, v.Y - w.Y, v.Z - w.Z} }

// Scale returns v scaled by k.
func (v V3) Scale(k float64) V3 { return V3{v.X * k, v.Y * k, v.Z * k} }

// Dot returns the dot product of v and w.
func (v V3) Dot(w V3) float64 { return v.X*w.X + v.Y*w.Y + v.Z*w.Z }

// Norm returns the Euclidean length of v.
func (v V3) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between points v and w.
func (v V3) Dist(w V3) float64 { return v.Sub(w).Norm() }

// DistXY returns the horizontal (surface-plane) distance between v and w.
func (v V3) DistXY(w V3) float64 {
	dx, dy := v.X-w.X, v.Y-w.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// Depth returns the depth coordinate (Z, meters below surface).
func (v V3) Depth() float64 { return v.Z }

// String formats the point with centimeter precision.
func (v V3) String() string {
	return fmt.Sprintf("(%.2f, %.2f, %.2f)", v.X, v.Y, v.Z)
}

// Box is an axis-aligned region. Min.Z is the shallowest depth covered
// and Max.Z the deepest.
type Box struct {
	Min, Max V3
}

// Cube returns a box with the given side length whose top face sits at
// the surface (Z = 0), centered at the origin in X/Y.
func Cube(side float64) Box {
	h := side / 2
	return Box{
		Min: V3{X: -h, Y: -h, Z: 0},
		Max: V3{X: h, Y: h, Z: side},
	}
}

// Size returns the box edge lengths.
func (b Box) Size() V3 { return b.Max.Sub(b.Min) }

// Volume returns the box volume in cubic meters.
func (b Box) Volume() float64 {
	s := b.Size()
	return s.X * s.Y * s.Z
}

// Contains reports whether p lies inside the box (inclusive bounds).
func (b Box) Contains(p V3) bool {
	return p.X >= b.Min.X && p.X <= b.Max.X &&
		p.Y >= b.Min.Y && p.Y <= b.Max.Y &&
		p.Z >= b.Min.Z && p.Z <= b.Max.Z
}

// Clamp returns p moved to the nearest point inside the box.
func (b Box) Clamp(p V3) V3 {
	return V3{
		X: clamp(p.X, b.Min.X, b.Max.X),
		Y: clamp(p.Y, b.Min.Y, b.Max.Y),
		Z: clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

// WrapXY returns p with the horizontal coordinates wrapped torus-style
// into the box and the depth clamped. Mobility models use this so nodes
// drifting with a current re-enter the region instead of piling up at
// a wall (which would skew density).
func (b Box) WrapXY(p V3) V3 {
	s := b.Size()
	return V3{
		X: wrap(p.X, b.Min.X, s.X),
		Y: wrap(p.Y, b.Min.Y, s.Y),
		Z: clamp(p.Z, b.Min.Z, b.Max.Z),
	}
}

func clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

func wrap(v, lo, span float64) float64 {
	if span <= 0 {
		return lo
	}
	off := math.Mod(v-lo, span)
	if off < 0 {
		off += span
	}
	return lo + off
}
