package vec

import (
	"math"
	"testing"
	"testing/quick"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestArithmetic(t *testing.T) {
	v := V3{1, 2, 3}
	w := V3{4, -5, 6}
	if got := v.Add(w); got != (V3{5, -3, 9}) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); got != (V3{-3, 7, -3}) {
		t.Errorf("Sub = %v", got)
	}
	if got := v.Scale(2); got != (V3{2, 4, 6}) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(w); !almost(got, 4-10+18) {
		t.Errorf("Dot = %v", got)
	}
}

func TestDist(t *testing.T) {
	a := V3{0, 0, 0}
	b := V3{3, 4, 0}
	if !almost(a.Dist(b), 5) {
		t.Errorf("Dist = %v, want 5", a.Dist(b))
	}
	c := V3{3, 4, 12}
	if !almost(a.Dist(c), 13) {
		t.Errorf("Dist = %v, want 13", a.Dist(c))
	}
	if !almost(a.DistXY(c), 5) {
		t.Errorf("DistXY = %v, want 5", a.DistXY(c))
	}
}

func TestCube(t *testing.T) {
	b := Cube(1000)
	if !almost(b.Volume(), 1e9) {
		t.Errorf("Volume = %v, want 1e9", b.Volume())
	}
	if b.Min.Z != 0 || b.Max.Z != 1000 {
		t.Errorf("depth bounds = [%v, %v], want [0, 1000]", b.Min.Z, b.Max.Z)
	}
	if !b.Contains(V3{0, 0, 500}) {
		t.Error("center not contained")
	}
	if b.Contains(V3{0, 0, -1}) {
		t.Error("point above surface contained")
	}
}

func TestClamp(t *testing.T) {
	b := Cube(100)
	p := b.Clamp(V3{1000, -1000, 50})
	if p != (V3{50, -50, 50}) {
		t.Errorf("Clamp = %v", p)
	}
	inside := V3{10, -10, 10}
	if b.Clamp(inside) != inside {
		t.Error("Clamp moved an interior point")
	}
}

// Property: WrapXY always lands inside the box and preserves points that
// are already inside.
func TestWrapXYProperty(t *testing.T) {
	b := Cube(1000)
	f := func(x, y, z float64) bool {
		if math.IsNaN(x) || math.IsNaN(y) || math.IsNaN(z) ||
			math.IsInf(x, 0) || math.IsInf(y, 0) || math.IsInf(z, 0) {
			return true
		}
		x = math.Mod(x, 1e6)
		y = math.Mod(y, 1e6)
		z = math.Mod(z, 1e6)
		p := b.WrapXY(V3{x, y, z})
		if !b.Contains(p) {
			return false
		}
		if b.Contains(V3{x, y, z}) {
			q := V3{x, y, z}
			return almost(p.X, q.X) && almost(p.Y, q.Y) && almost(p.Z, q.Z)
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: distance is symmetric and satisfies the triangle inequality.
func TestDistMetricProperty(t *testing.T) {
	gen := func(a, b, c, d, e, f, g, h, i int16) bool {
		p := V3{float64(a), float64(b), float64(c)}
		q := V3{float64(d), float64(e), float64(f)}
		r := V3{float64(g), float64(h), float64(i)}
		if !almost(p.Dist(q), q.Dist(p)) {
			return false
		}
		return p.Dist(r) <= p.Dist(q)+q.Dist(r)+1e-9
	}
	if err := quick.Check(gen, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestWrapDegenerateSpan(t *testing.T) {
	b := Box{Min: V3{0, 0, 0}, Max: V3{0, 0, 10}}
	p := b.WrapXY(V3{5, 5, 5})
	if p.X != 0 || p.Y != 0 {
		t.Errorf("WrapXY with zero span = %v, want X=Y=0", p)
	}
}
