package core

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

func deployment(t *testing.T) (*sim.Engine, *channel.Channel, *acoustic.Model) {
	t.Helper()
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 100}},
		{ID: 2, Pos: vec.V3{X: 700, Z: 400}},
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	return eng, ch, model
}

func TestNewNodeAssemblesWorkingPair(t *testing.T) {
	eng, ch, model := deployment(t)
	var nodes []*Node
	for id := packet.NodeID(1); id <= 2; id++ {
		n, err := NewNode(NodeConfig{
			ID:          id,
			Engine:      eng,
			Channel:     ch,
			Model:       model,
			HelloWindow: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		nodes = append(nodes, n)
	}
	for _, n := range nodes {
		n.MAC.Start()
	}
	eng.MustScheduleAt(sim.At(9*time.Second), sim.PriorityApp, func() {
		nodes[1].MAC.Enqueue(mac.AppPacket{Dst: 1, Bits: 2048})
	})
	eng.RunUntil(sim.At(30 * time.Second))
	if got := nodes[0].MAC.Counters().DeliveredPackets; got != 1 {
		t.Fatalf("delivered %d packets through a core-assembled pair, want 1", got)
	}
	if b, err := nodes[1].Modem.Energy(); err != nil || b.Total() <= 0 {
		t.Errorf("energy metering broken: %v, %v", b, err)
	}
}

func TestNewNodeValidation(t *testing.T) {
	eng, ch, model := deployment(t)
	if _, err := NewNode(NodeConfig{ID: 1, Engine: eng, Channel: ch}); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewNode(NodeConfig{ID: 1, Engine: eng, Model: model}); err == nil {
		t.Error("nil channel accepted")
	}
	// Unknown topology ID is rejected at registration.
	if _, err := NewNode(NodeConfig{ID: 99, Engine: eng, Channel: ch, Model: model}); err == nil {
		t.Error("unknown node ID accepted")
	}
}
