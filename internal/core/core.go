// Package core is the home of the paper's primary contribution at the
// node level: it assembles one deployed EW-MAC sensor — acoustic modem,
// protocol instance, and channel registration — from the substrates,
// and re-exports the EW-MAC tuning options. The experiment harness
// builds fleets through its own generic path; core is the entry point
// for embedding a single EW-MAC node into a custom simulation (see
// examples/ for fleet-level use through the public facade).
package core

import (
	"fmt"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/mac/ewmac"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// Options re-exports the EW-MAC protocol knobs.
type Options = ewmac.Options

// Node is one assembled EW-MAC sensor.
type Node struct {
	// Modem is the node's half-duplex transducer.
	Modem *phy.Modem
	// MAC is the EW-MAC protocol instance driving the modem.
	MAC *ewmac.MAC
}

// NodeConfig describes one sensor to assemble.
type NodeConfig struct {
	// ID is the dense node identifier (must exist in the channel's
	// topology).
	ID packet.NodeID
	// Engine is the simulation engine shared by the deployment.
	Engine *sim.Engine
	// Channel is the shared acoustic medium.
	Channel *channel.Channel
	// Model is the acoustic environment (must match the channel's).
	Model *acoustic.Model
	// Energy is the modem power profile (zero value = defaults).
	Energy energy.Profile
	// IsSink marks pure receivers.
	IsSink bool
	// HelloWindow bounds the randomized Hello broadcast used to seed
	// the one-hop delay tables (zero = 10 s).
	HelloWindow time.Duration
	// QueueMax bounds the transmit queue (0 = unbounded).
	QueueMax int
	// Options tunes the protocol (zero value = the paper's EW-MAC).
	Options Options
}

// NewNode builds, registers, and returns an EW-MAC node. Call
// Node.MAC.Start() once the whole deployment is assembled.
func NewNode(cfg NodeConfig) (*Node, error) {
	if cfg.Model == nil {
		return nil, fmt.Errorf("core: nil acoustic model")
	}
	if cfg.Channel == nil {
		return nil, fmt.Errorf("core: nil channel")
	}
	prof := cfg.Energy
	if prof == (energy.Profile{}) {
		prof = energy.DefaultProfile()
	}
	modem, err := phy.NewModem(phy.Config{
		ID:     cfg.ID,
		Engine: cfg.Engine,
		Model:  cfg.Model,
		Medium: cfg.Channel,
		Energy: prof,
	})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := cfg.Channel.Register(modem); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, cfg.Model.BitRate()),
		TauMax: cfg.Model.MaxDelay(),
	}
	proto, err := ewmac.New(mac.Config{
		ID:          cfg.ID,
		Engine:      cfg.Engine,
		Modem:       modem,
		Slots:       slots,
		BitRate:     cfg.Model.BitRate(),
		IsSink:      cfg.IsSink,
		QueueMax:    cfg.QueueMax,
		EnableHello: true,
		HelloWindow: cfg.HelloWindow,
	}, cfg.Options)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	modem.SetListener(proto)
	return &Node{Modem: modem, MAC: proto}, nil
}
