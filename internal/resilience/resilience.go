// Package resilience folds the fault timeline and the observability
// event stream into per-run recovery metrics: how many fault episodes
// the network absorbed, how long each afflicted node took to make
// protocol progress again after its fault cleared, how delivery held
// up inside degraded windows, and whether any traffic was left
// stranded behind a dead peer.
//
// The Tracker is an obs.Recorder: the experiment layer splices it into
// the per-run recorder fan-out whenever fault injection is active, so
// it sees the same deterministic event stream as every other consumer.
// The reduced obs.ResilienceStats is attached to experiment.Result,
// the RunReport, and the Prometheus snapshot.
package resilience

import (
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// pairedKinds are the fault classes whose injectors emit a matching
// clear for every inject, forming an episode with a recovery to
// measure. Delay shifts and interference bursts are inject-only (the
// "fault" is a permanent world change or an instantaneous burst), so
// they contribute no episodes and no degraded windows.
func paired(kind string) bool {
	switch kind {
	case "churn", "outage", "sync-loss":
		return true
	}
	return false
}

type episodeKey struct {
	node packet.NodeID
	kind string
}

// pending is one cleared fault episode whose node has not yet made
// protocol progress.
type pending struct {
	node    packet.NodeID
	kind    string
	clearAt sim.Time
}

// Tracker reduces the event stream to recovery metrics. All methods
// run on the simulation goroutine; Summary is called once after the
// run drains.
type Tracker struct {
	active        map[episodeKey]sim.Time
	awaiting      []pending
	ttrs          []time.Duration
	episodes      int
	activeCount   int
	degradedStart sim.Time
	degraded      time.Duration

	degradedDeliv uint64
	cleanDeliv    uint64

	suspects      uint64
	deads         uint64
	resurrections uint64
	watchdogs     uint64

	// Overload episodes: merged windows during which at least one node's
	// admission gate is shedding, plus shed/defer tallies.
	shedNodes        map[packet.NodeID]bool
	shedActive       int
	overloadStart    sim.Time
	overload         time.Duration
	overloadEpisodes int
	sheds            uint64
	retryDeferrals   uint64

	oracleViolations uint64
}

// NewTracker returns an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		active:    make(map[episodeKey]sim.Time),
		shedNodes: make(map[packet.NodeID]bool),
	}
}

var _ obs.Recorder = (*Tracker)(nil)

// Record implements obs.Recorder.
func (t *Tracker) Record(at sim.Time, e obs.Event) {
	switch ev := e.(type) {
	case *obs.Fault:
		if !paired(ev.Kind) {
			return
		}
		key := episodeKey{ev.Node, ev.Kind}
		switch ev.Action {
		case obs.FaultInject:
			if _, dup := t.active[key]; dup {
				return
			}
			t.active[key] = at
			if t.activeCount == 0 {
				t.degradedStart = at
			}
			t.activeCount++
		case obs.FaultClear:
			if _, ok := t.active[key]; !ok {
				return
			}
			delete(t.active, key)
			t.episodes++
			t.awaiting = append(t.awaiting, pending{node: ev.Node, kind: ev.Kind, clearAt: at})
			t.activeCount--
			if t.activeCount == 0 {
				t.degraded += at.Sub(t.degradedStart)
			}
		}
	case *obs.Delivery:
		if t.activeCount > 0 {
			t.degradedDeliv++
		} else {
			t.cleanDeliv++
		}
		t.progress(ev.Node, at)
	case *obs.Contention:
		// A won round (sender) or an issued grant (receiver) is the
		// node demonstrably negotiating again — the recovery signal for
		// nodes that are relays rather than destinations.
		if ev.Outcome == obs.ContentionWon || ev.Outcome == obs.ContentionGrant {
			t.progress(ev.Node, at)
		}
	case *obs.Recovery:
		switch ev.Action {
		case obs.RecoverySuspect:
			t.suspects++
		case obs.RecoveryDead:
			t.deads++
		case obs.RecoveryResurrect:
			t.resurrections++
		case obs.RecoveryWatchdog:
			t.watchdogs++
		}
	case *obs.Overload:
		switch ev.Action {
		case obs.OverloadShedBegin:
			if t.shedNodes[ev.Node] {
				return
			}
			t.shedNodes[ev.Node] = true
			if t.shedActive == 0 {
				t.overloadStart = at
				t.overloadEpisodes++
			}
			t.shedActive++
		case obs.OverloadShedEnd:
			if !t.shedNodes[ev.Node] {
				return
			}
			delete(t.shedNodes, ev.Node)
			t.shedActive--
			if t.shedActive == 0 {
				t.overload += at.Sub(t.overloadStart)
			}
		case obs.OverloadRetryDefer:
			t.retryDeferrals++
		}
	case *obs.PacketDrop:
		if ev.Reason == obs.DropShed {
			t.sheds++
		}
	case *obs.OracleViolation:
		t.oracleViolations++
	}
}

// progress closes every pending episode of node that cleared at or
// before this instant, recording its time-to-recover.
func (t *Tracker) progress(node packet.NodeID, at sim.Time) {
	if len(t.awaiting) == 0 {
		return
	}
	kept := t.awaiting[:0]
	for _, p := range t.awaiting {
		if p.node == node && !at.Before(p.clearAt) {
			t.ttrs = append(t.ttrs, at.Sub(p.clearAt))
			continue
		}
		kept = append(kept, p)
	}
	t.awaiting = kept
}

// Summary reduces the tracked state to ResilienceStats. end is the
// run's final instant; stranded is the count of packets still queued
// to dead peers across all nodes at that instant.
func (t *Tracker) Summary(end sim.Time, stranded int) *obs.ResilienceStats {
	degraded := t.degraded
	if t.activeCount > 0 && end.After(t.degradedStart) {
		degraded += end.Sub(t.degradedStart)
	}
	clean := end.Duration() - degraded
	if clean < 0 {
		clean = 0
	}
	overload := t.overload
	if t.shedActive > 0 && end.After(t.overloadStart) {
		overload += end.Sub(t.overloadStart)
	}
	st := &obs.ResilienceStats{
		Episodes:           t.episodes,
		Recovered:          len(t.ttrs),
		Unrecovered:        len(t.awaiting),
		DegradedS:          degraded.Seconds(),
		CleanS:             clean.Seconds(),
		DegradedDeliveries: t.degradedDeliv,
		CleanDeliveries:    t.cleanDeliv,
		StrandedPackets:    stranded,
		SuspectMarks:       t.suspects,
		DeadMarks:          t.deads,
		Resurrections:      t.resurrections,
		WatchdogResets:     t.watchdogs,
		OverloadEpisodes:   t.overloadEpisodes,
		OverloadS:          overload.Seconds(),
		ShedPackets:        t.sheds,
		RetryDeferrals:     t.retryDeferrals,
		OracleViolations:   t.oracleViolations,
	}
	if len(t.ttrs) > 0 {
		var sum, max time.Duration
		for _, d := range t.ttrs {
			sum += d
			if d > max {
				max = d
			}
		}
		st.MeanTimeToRecoverS = (sum / time.Duration(len(t.ttrs))).Seconds()
		st.MaxTimeToRecoverS = max.Seconds()
	}
	// Degraded delivery ratio: the delivery *rate* inside degraded
	// windows normalized by the clean-window rate. 1 means faults cost
	// nothing; 0 means total collapse. With no degraded time (or no
	// clean baseline to compare against) the ratio is reported as 1.
	switch {
	case st.DegradedS <= 0 || st.CleanS <= 0:
		st.DegradedDeliveryRatio = 1
	default:
		cleanRate := float64(t.cleanDeliv) / st.CleanS
		degRate := float64(t.degradedDeliv) / st.DegradedS
		if cleanRate <= 0 {
			st.DegradedDeliveryRatio = 1
		} else {
			r := degRate / cleanRate
			if r > 1 {
				r = 1
			}
			st.DegradedDeliveryRatio = r
		}
	}
	return st
}
