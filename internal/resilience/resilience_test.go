package resilience

import (
	"math"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.At(d) }

// TestTrackerEpisodes walks a synthetic fault timeline through the
// tracker: one churn episode on node 3, recovered by a delivery 5s
// after the clear, with deliveries on both sides of the degraded
// window.
func TestTrackerEpisodes(t *testing.T) {
	tr := NewTracker()

	tr.Record(at(5*time.Second), &obs.Delivery{Node: 3}) // clean
	tr.Record(at(10*time.Second), &obs.Fault{Node: 3, Kind: "churn", Action: obs.FaultInject})
	tr.Record(at(15*time.Second), &obs.Delivery{Node: 2}) // degraded
	tr.Record(at(20*time.Second), &obs.Fault{Node: 3, Kind: "churn", Action: obs.FaultClear})
	tr.Record(at(25*time.Second), &obs.Delivery{Node: 3}) // recovery signal
	tr.Record(at(30*time.Second), &obs.Delivery{Node: 3}) // clean

	st := tr.Summary(at(60*time.Second), 2)
	if st.Episodes != 1 || st.Recovered != 1 || st.Unrecovered != 0 {
		t.Fatalf("episodes=%d recovered=%d unrecovered=%d, want 1/1/0",
			st.Episodes, st.Recovered, st.Unrecovered)
	}
	if st.MeanTimeToRecoverS != 5 || st.MaxTimeToRecoverS != 5 {
		t.Fatalf("ttr mean=%v max=%v, want 5/5", st.MeanTimeToRecoverS, st.MaxTimeToRecoverS)
	}
	if st.DegradedS != 10 || st.CleanS != 50 {
		t.Fatalf("degraded=%v clean=%v, want 10/50", st.DegradedS, st.CleanS)
	}
	if st.DegradedDeliveries != 1 || st.CleanDeliveries != 3 {
		t.Fatalf("deliveries degraded=%d clean=%d, want 1/3", st.DegradedDeliveries, st.CleanDeliveries)
	}
	// Degraded rate 1/10 vs clean rate 3/50: ratio 5/3 clamps to 1.
	if st.DegradedDeliveryRatio != 1 {
		t.Fatalf("degraded delivery ratio %v, want 1 (clamped)", st.DegradedDeliveryRatio)
	}
	if st.StrandedPackets != 2 {
		t.Fatalf("stranded=%d, want 2", st.StrandedPackets)
	}
}

// TestTrackerContentionProgress verifies that a won contention round
// counts as recovery for a relay node that never receives deliveries,
// and that a node with no progress stays unrecovered.
func TestTrackerContentionProgress(t *testing.T) {
	tr := NewTracker()
	tr.Record(at(10*time.Second), &obs.Fault{Node: 1, Kind: "outage", Action: obs.FaultInject})
	tr.Record(at(12*time.Second), &obs.Fault{Node: 2, Kind: "outage", Action: obs.FaultInject})
	tr.Record(at(20*time.Second), &obs.Fault{Node: 1, Kind: "outage", Action: obs.FaultClear})
	tr.Record(at(22*time.Second), &obs.Fault{Node: 2, Kind: "outage", Action: obs.FaultClear})
	// Node 1 wins a round 3s after its clear; node 2 only loses rounds.
	tr.Record(at(23*time.Second), &obs.Contention{Node: 1, Outcome: obs.ContentionWon})
	tr.Record(at(24*time.Second), &obs.Contention{Node: 2, Outcome: "lost"})

	st := tr.Summary(at(30*time.Second), 0)
	if st.Episodes != 2 || st.Recovered != 1 || st.Unrecovered != 1 {
		t.Fatalf("episodes=%d recovered=%d unrecovered=%d, want 2/1/1",
			st.Episodes, st.Recovered, st.Unrecovered)
	}
	if st.MeanTimeToRecoverS != 3 {
		t.Fatalf("mean ttr %v, want 3", st.MeanTimeToRecoverS)
	}
}

// TestTrackerOverlappingWindows: two overlapping episodes form one
// degraded window spanning first inject to last clear.
func TestTrackerOverlappingWindows(t *testing.T) {
	tr := NewTracker()
	tr.Record(at(10*time.Second), &obs.Fault{Node: 1, Kind: "churn", Action: obs.FaultInject})
	tr.Record(at(15*time.Second), &obs.Fault{Node: 2, Kind: "outage", Action: obs.FaultInject})
	tr.Record(at(20*time.Second), &obs.Fault{Node: 1, Kind: "churn", Action: obs.FaultClear})
	tr.Record(at(30*time.Second), &obs.Fault{Node: 2, Kind: "outage", Action: obs.FaultClear})
	st := tr.Summary(at(60*time.Second), 0)
	if st.DegradedS != 20 {
		t.Fatalf("degraded=%v, want 20 (one merged window)", st.DegradedS)
	}
	if st.Episodes != 2 {
		t.Fatalf("episodes=%d, want 2", st.Episodes)
	}
}

// TestTrackerUnpairedKindsIgnored: delay-shift and interference are
// inject-only world changes; they must not open degraded windows or
// leak unrecovered episodes.
func TestTrackerUnpairedKindsIgnored(t *testing.T) {
	tr := NewTracker()
	tr.Record(at(10*time.Second), &obs.Fault{Node: 1, Kind: "delay-shift", Action: obs.FaultInject})
	tr.Record(at(12*time.Second), &obs.Fault{Node: 2, Kind: "interference", Action: obs.FaultInject})
	st := tr.Summary(at(60*time.Second), 0)
	if st.Episodes != 0 || st.Unrecovered != 0 || st.DegradedS != 0 {
		t.Fatalf("unpaired kinds leaked: %+v", st)
	}
}

// TestTrackerOpenWindowExtendsToEnd: a fault still active at run end
// degrades the remainder of the run and counts no episode.
func TestTrackerOpenWindowExtendsToEnd(t *testing.T) {
	tr := NewTracker()
	tr.Record(at(40*time.Second), &obs.Fault{Node: 1, Kind: "outage", Action: obs.FaultInject})
	st := tr.Summary(at(60*time.Second), 0)
	if st.DegradedS != 20 || st.CleanS != 40 {
		t.Fatalf("degraded=%v clean=%v, want 20/40", st.DegradedS, st.CleanS)
	}
	if st.Episodes != 0 {
		t.Fatalf("episodes=%d, want 0 (never cleared)", st.Episodes)
	}
}

// TestTrackerRecoveryCounters tallies the four recovery actions.
func TestTrackerRecoveryCounters(t *testing.T) {
	tr := NewTracker()
	tr.Record(at(time.Second), &obs.Recovery{Node: 1, Peer: 2, Action: obs.RecoverySuspect})
	tr.Record(at(2*time.Second), &obs.Recovery{Node: 1, Peer: 2, Action: obs.RecoveryDead})
	tr.Record(at(3*time.Second), &obs.Recovery{Node: 1, Peer: 2, Action: obs.RecoveryResurrect})
	tr.Record(at(4*time.Second), &obs.Recovery{Node: 1, Action: obs.RecoveryWatchdog})
	tr.Record(at(5*time.Second), &obs.Recovery{Node: 1, Action: obs.RecoverySuspect})
	st := tr.Summary(at(10*time.Second), 0)
	if st.SuspectMarks != 2 || st.DeadMarks != 1 || st.Resurrections != 1 || st.WatchdogResets != 1 {
		t.Fatalf("recovery counters %+v, want suspects=2 deads=1 resurrections=1 watchdogs=1", st)
	}
}

// TestTrackerDegradedRatio: an unclamped ratio comes out as the
// degraded delivery rate over the clean rate.
func TestTrackerDegradedRatio(t *testing.T) {
	tr := NewTracker()
	// Clean: 0..30s with 6 deliveries (rate 0.2/s).
	for i := 0; i < 6; i++ {
		tr.Record(at(time.Duration(i+1)*time.Second), &obs.Delivery{Node: 1})
	}
	tr.Record(at(30*time.Second), &obs.Fault{Node: 1, Kind: "outage", Action: obs.FaultInject})
	// Degraded: 30..60s with 3 deliveries (rate 0.1/s).
	for i := 0; i < 3; i++ {
		tr.Record(at(time.Duration(35+i)*time.Second), &obs.Delivery{Node: 2})
	}
	st := tr.Summary(at(60*time.Second), 0)
	if math.Abs(st.DegradedDeliveryRatio-0.5) > 1e-9 {
		t.Fatalf("degraded delivery ratio %v, want 0.5", st.DegradedDeliveryRatio)
	}
}
