// Package adversary searches fault-scenario space for timelines that
// break a resilience invariant, then shrinks any violation to a
// minimal reproducer.
//
// The search is seeded and fully deterministic: a generator draws
// random fault scenarios from aggressive parameter ranges, each
// candidate runs the same base experiment configuration with only
// Config.Faults swapped, and a candidate violates when either
//
//   - delivery-collapse: its delivery ratio falls below a configured
//     fraction of the fault-free baseline's, or
//   - livelock: traffic was generated but nothing was ever delivered.
//
// A violating scenario is then minimized by greedy shrinking — drop
// whole fault classes, then soften the surviving knobs benign-ward —
// re-running after every step and keeping only transformations that
// preserve the violation. The minimized scenario is verified to
// reproduce bit-identically (two runs compare equal) and to survive a
// JSON round-trip through fault.Parse, so the emitted file replays the
// violation exactly via `uansim -faults`.
package adversary

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/fault"
	"ewmac/internal/metrics"
)

// Invariant names for Finding.Invariant.
const (
	InvariantCollapse = "delivery-collapse"
	InvariantLivelock = "livelock"
)

// Options configures a search.
type Options struct {
	// Base is the experiment configuration every candidate runs under;
	// its Faults field is overwritten per candidate (and must be nil —
	// the search generates its own scenarios). Keep Observe nil: the
	// search runs many experiments and wants them cheap.
	Base experiment.Config
	// Trials is how many random scenarios to generate (default 16).
	Trials int
	// Seed drives the scenario generator. Independent of Base.Seed,
	// which stays fixed so candidate runs differ only in their faults.
	Seed int64
	// CollapseFraction f flags a candidate when its delivery ratio is
	// below f × the fault-free baseline's (default 0.25).
	CollapseFraction float64
	// MaxShrink bounds the greedy shrinking steps (default 32).
	MaxShrink int
	// Log, when non-nil, receives one-line progress messages.
	Log func(string)
}

// Finding is one minimized violation.
type Finding struct {
	// Scenario is the minimized fault timeline; marshal it to JSON and
	// it replays via fault.Parse / `uansim -faults`.
	Scenario *fault.Scenario
	// Invariant is which resilience invariant broke.
	Invariant string
	// Detail is a human-readable account of the violation.
	Detail string
	// BaselineRatio is the fault-free delivery ratio; Violating is the
	// full summary of the minimized scenario's run, for replay
	// comparison.
	BaselineRatio float64
	Violating     metrics.Summary
	// Trial is the generator index that first violated; ShrinkSteps is
	// how many simplifications survived; Runs is the total experiment
	// executions the search spent.
	Trial, ShrinkSteps, Runs int
}

type searcher struct {
	opts      Options
	threshold float64
	baseline  metrics.Summary
	runs      int
}

func (s *searcher) logf(format string, args ...any) {
	if s.opts.Log != nil {
		s.opts.Log(fmt.Sprintf(format, args...))
	}
}

func (s *searcher) run(sc *fault.Scenario) (metrics.Summary, error) {
	cfg := s.opts.Base
	cfg.Faults = sc
	s.runs++
	res, err := experiment.Run(cfg)
	if err != nil {
		return metrics.Summary{}, err
	}
	return res.Summary, nil
}

// violation classifies a candidate summary, returning the broken
// invariant (or ok=false when none is).
func (s *searcher) violation(sum metrics.Summary) (inv, detail string, ok bool) {
	if sum.MAC.Generated > 0 && sum.MAC.DeliveredPackets == 0 {
		return InvariantLivelock,
			fmt.Sprintf("generated %d packets, delivered none", sum.MAC.Generated), true
	}
	if sum.DeliveryRatio < s.threshold {
		return InvariantCollapse,
			fmt.Sprintf("delivery ratio %.3f below %.3f (%.0f%% of fault-free %.3f)",
				sum.DeliveryRatio, s.threshold,
				100*s.opts.CollapseFraction, s.baseline.DeliveryRatio), true
	}
	return "", "", false
}

// Search runs the adversarial search. It returns (nil, nil) when no
// generated scenario violates an invariant within the trial budget.
func Search(o Options) (*Finding, error) {
	if o.Trials <= 0 {
		o.Trials = 16
	}
	if o.CollapseFraction <= 0 {
		o.CollapseFraction = 0.25
	}
	if o.MaxShrink <= 0 {
		o.MaxShrink = 32
	}
	if o.Base.Faults.Active() {
		return nil, fmt.Errorf("adversary: Base.Faults must be nil; the search generates its own scenarios")
	}
	s := &searcher{opts: o}

	base, err := s.run(nil)
	if err != nil {
		return nil, fmt.Errorf("adversary: baseline: %w", err)
	}
	if base.DeliveryRatio <= 0 {
		return nil, fmt.Errorf("adversary: fault-free baseline delivers nothing (ratio %v); the search needs a healthy baseline to measure collapse against", base.DeliveryRatio)
	}
	s.baseline = base
	s.threshold = o.CollapseFraction * base.DeliveryRatio
	s.logf("baseline delivery ratio %.3f; collapse threshold %.3f", base.DeliveryRatio, s.threshold)

	rng := rand.New(rand.NewSource(o.Seed))
	for trial := 0; trial < o.Trials; trial++ {
		sc := Generate(rng, o.Seed, trial)
		sum, err := s.run(sc)
		if err != nil {
			return nil, fmt.Errorf("adversary: trial %d: %w", trial, err)
		}
		inv, detail, bad := s.violation(sum)
		s.logf("trial %d/%d: delivery %.3f%s", trial+1, o.Trials, sum.DeliveryRatio,
			map[bool]string{true: " VIOLATION: " + detail}[bad])
		if !bad {
			continue
		}
		f, err := s.shrink(sc, trial)
		if err != nil {
			return nil, err
		}
		f.Invariant, f.Detail = inv, detail
		if inv2, detail2, _ := s.violation(f.Violating); inv2 != "" {
			f.Invariant, f.Detail = inv2, detail2
		}
		return f, nil
	}
	s.logf("no violation in %d trials (%d runs)", o.Trials, s.runs)
	return nil, nil
}

// shrink greedily minimizes sc while it keeps violating, then verifies
// the minimized scenario reproduces deterministically and survives a
// JSON round-trip.
func (s *searcher) shrink(sc *fault.Scenario, trial int) (*Finding, error) {
	cur := clone(sc)
	steps := 0
	for steps < s.opts.MaxShrink {
		shrunk := false
		for _, cand := range candidates(cur, s.opts.Base.SimTime) {
			if !cand.Active() {
				continue
			}
			sum, err := s.run(cand)
			if err != nil {
				return nil, fmt.Errorf("adversary: shrink: %w", err)
			}
			if _, _, bad := s.violation(sum); bad {
				cur = cand
				steps++
				shrunk = true
				break
			}
		}
		if !shrunk {
			break
		}
	}
	cur.Name = fmt.Sprintf("adversary-seed%d-trial%d-min", s.opts.Seed, trial)

	// The reproducer must replay bit-identically: two direct runs must
	// agree, and a run of the JSON round-tripped scenario (what a
	// -faults file replays) must agree with them.
	first, err := s.run(cur)
	if err != nil {
		return nil, fmt.Errorf("adversary: verify: %w", err)
	}
	second, err := s.run(cur)
	if err != nil {
		return nil, fmt.Errorf("adversary: verify: %w", err)
	}
	if first != second {
		return nil, fmt.Errorf("adversary: minimized scenario is nondeterministic: two identical runs diverged")
	}
	b, err := json.Marshal(cur)
	if err != nil {
		return nil, fmt.Errorf("adversary: %w", err)
	}
	rt, err := fault.Parse(b)
	if err != nil {
		return nil, fmt.Errorf("adversary: minimized scenario does not re-parse: %w", err)
	}
	replayed, err := s.run(rt)
	if err != nil {
		return nil, fmt.Errorf("adversary: replay: %w", err)
	}
	if replayed != first {
		return nil, fmt.Errorf("adversary: JSON round-trip changed the run outcome")
	}
	if _, _, bad := s.violation(first); !bad {
		return nil, fmt.Errorf("adversary: minimized scenario no longer violates (shrinker bug)")
	}
	s.logf("minimized in %d steps (%d runs total)", steps, s.runs)
	return &Finding{
		Scenario:      cur,
		BaselineRatio: s.baseline.DeliveryRatio,
		Violating:     first,
		Trial:         trial,
		ShrinkSteps:   steps,
		Runs:          s.runs,
	}, nil
}

// Generate draws one adversarial scenario from aggressive ranges. The
// draw order is fixed, so (rng state, seed, trial) fully determines
// the result.
func Generate(r *rand.Rand, seed int64, trial int) *fault.Scenario {
	sc := &fault.Scenario{Name: fmt.Sprintf("adversary-seed%d-trial%d", seed, trial)}
	if r.Float64() < 0.7 {
		sc.Churn = &fault.ChurnSpec{
			MeanUp:   durBetween(r, 10*time.Second, 60*time.Second),
			MeanDown: durBetween(r, 5*time.Second, 30*time.Second),
			Fraction: between(r, 0.2, 0.9),
		}
	}
	if r.Float64() < 0.5 {
		sc.Drift = &fault.DriftSpec{
			SkewPPM:       between(r, 100, 1000),
			MaxOffset:     durBetween(r, 10*time.Millisecond, 200*time.Millisecond),
			SyncEvery:     durBetween(r, 10*time.Second, 60*time.Second),
			LossMeanEvery: durBetween(r, 20*time.Second, 90*time.Second),
			LossMeanDur:   durBetween(r, 10*time.Second, 60*time.Second),
			Fraction:      between(r, 0.2, 0.9),
		}
	}
	if r.Float64() < 0.5 {
		sc.DelayShift = &fault.DelayShiftSpec{
			MeanEvery: durBetween(r, 10*time.Second, 60*time.Second),
			MaxJumpM:  between(r, 50, 400),
			Fraction:  between(r, 0.2, 0.8),
		}
	}
	if r.Float64() < 0.7 {
		sc.Outage = &fault.OutageSpec{
			MeanEvery: durBetween(r, 15*time.Second, 90*time.Second),
			MeanDur:   durBetween(r, 2*time.Second, 20*time.Second),
			Fraction:  between(r, 0.2, 0.9),
		}
	}
	if r.Float64() < 0.5 {
		radius := between(r, 200, 800)
		if r.Float64() < 0.3 {
			radius = 0 // region-wide
		}
		sc.Interference = &fault.InterferenceSpec{
			MeanEvery: durBetween(r, 10*time.Second, 60*time.Second),
			MeanDur:   durBetween(r, time.Second, 10*time.Second),
			LevelDB:   between(r, 40, 80),
			RadiusM:   radius,
		}
	}
	if !sc.Active() {
		// Every trial must inject something; outage is the mildest
		// always-sensible fallback.
		sc.Outage = &fault.OutageSpec{
			MeanEvery: durBetween(r, 15*time.Second, 60*time.Second),
			MeanDur:   durBetween(r, 2*time.Second, 20*time.Second),
			Fraction:  between(r, 0.3, 0.9),
		}
	}
	return sc
}

// Soften floors: a knob already at or below its floor is no longer
// offered for halving (the drop-the-class candidate covers "make it
// negligible"), and inter-arrival means are not doubled past the run
// length. Without these bounds, halving a fraction shrinks forever
// without ever reaching zero and the shrinker burns its step budget on
// noise.
const (
	minFraction = 0.05
	minDur      = fault.Dur(500 * time.Millisecond)
	minSkewPPM  = 10
	minJumpM    = 10
	minLevelDB  = 5
)

// candidates lists one-step simplifications of sc, most aggressive
// first: dropping a whole fault class beats softening one knob.
// simLen bounds inter-arrival doubling.
func candidates(sc *fault.Scenario, simLen time.Duration) []*fault.Scenario {
	var out []*fault.Scenario
	mutate := func(f func(*fault.Scenario)) {
		c := clone(sc)
		f(c)
		out = append(out, c)
	}
	maxEvery := fault.Dur(simLen)
	if sc.Churn != nil {
		mutate(func(c *fault.Scenario) { c.Churn = nil })
	}
	if sc.Drift != nil {
		mutate(func(c *fault.Scenario) { c.Drift = nil })
	}
	if sc.DelayShift != nil {
		mutate(func(c *fault.Scenario) { c.DelayShift = nil })
	}
	if sc.Outage != nil {
		mutate(func(c *fault.Scenario) { c.Outage = nil })
	}
	if sc.Interference != nil {
		mutate(func(c *fault.Scenario) { c.Interference = nil })
	}
	if ch := sc.Churn; ch != nil {
		if ch.Fraction > minFraction {
			mutate(func(c *fault.Scenario) { c.Churn.Fraction /= 2 })
		}
		if ch.MeanDown > minDur {
			mutate(func(c *fault.Scenario) { c.Churn.MeanDown /= 2 })
		}
		if ch.MeanUp < maxEvery {
			mutate(func(c *fault.Scenario) { c.Churn.MeanUp *= 2 })
		}
	}
	if d := sc.Drift; d != nil {
		if d.LossMeanEvery > 0 {
			mutate(func(c *fault.Scenario) { c.Drift.LossMeanEvery, c.Drift.LossMeanDur = 0, 0 })
		}
		if d.SkewPPM > minSkewPPM {
			mutate(func(c *fault.Scenario) { c.Drift.SkewPPM /= 2 })
		}
		if d.Fraction > minFraction {
			mutate(func(c *fault.Scenario) { c.Drift.Fraction /= 2 })
		}
	}
	if ds := sc.DelayShift; ds != nil {
		if ds.Fraction > minFraction {
			mutate(func(c *fault.Scenario) { c.DelayShift.Fraction /= 2 })
		}
		if ds.MaxJumpM > minJumpM {
			mutate(func(c *fault.Scenario) { c.DelayShift.MaxJumpM /= 2 })
		}
		if ds.MeanEvery < maxEvery {
			mutate(func(c *fault.Scenario) { c.DelayShift.MeanEvery *= 2 })
		}
	}
	if o := sc.Outage; o != nil {
		if o.Fraction > minFraction {
			mutate(func(c *fault.Scenario) { c.Outage.Fraction /= 2 })
		}
		if o.MeanDur > minDur {
			mutate(func(c *fault.Scenario) { c.Outage.MeanDur /= 2 })
		}
		if o.MeanEvery < maxEvery {
			mutate(func(c *fault.Scenario) { c.Outage.MeanEvery *= 2 })
		}
	}
	if in := sc.Interference; in != nil {
		if in.MeanDur > minDur {
			mutate(func(c *fault.Scenario) { c.Interference.MeanDur /= 2 })
		}
		if in.MeanEvery < maxEvery {
			mutate(func(c *fault.Scenario) { c.Interference.MeanEvery *= 2 })
		}
		if in.LevelDB > minLevelDB {
			mutate(func(c *fault.Scenario) { c.Interference.LevelDB /= 2 })
		}
	}
	return out
}

// clone deep-copies a scenario so shrink candidates never alias.
func clone(sc *fault.Scenario) *fault.Scenario {
	c := *sc
	if sc.Churn != nil {
		v := *sc.Churn
		c.Churn = &v
	}
	if sc.Drift != nil {
		v := *sc.Drift
		c.Drift = &v
	}
	if sc.DelayShift != nil {
		v := *sc.DelayShift
		c.DelayShift = &v
	}
	if sc.Outage != nil {
		v := *sc.Outage
		c.Outage = &v
	}
	if sc.Interference != nil {
		v := *sc.Interference
		c.Interference = &v
	}
	return &c
}

func durBetween(r *rand.Rand, lo, hi time.Duration) fault.Dur {
	if hi <= lo {
		return fault.Dur(lo)
	}
	return fault.Dur(lo + time.Duration(r.Int63n(int64(hi-lo))))
}

func between(r *rand.Rand, lo, hi float64) float64 {
	return lo + r.Float64()*(hi-lo)
}
