package adversary

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/fault"
)

// smallBase is a cheap scenario the search can afford to run ~100
// times: 10 nodes, 90 simulated seconds.
func smallBase() experiment.Config {
	cfg := experiment.Default(experiment.ProtocolEWMAC)
	cfg.Nodes = 10
	cfg.Sinks = 2
	cfg.OfferedLoadKbps = 0.4
	cfg.SimTime = 90 * time.Second
	return cfg
}

// TestSearchFindsMinimizesAndReplays is the end-to-end contract: on a
// pinned seed the search finds a violation, shrinks it, and the
// emitted scenario JSON replays the violation bit-identically through
// fault.Parse — exactly what `uansim -faults <file>` does.
func TestSearchFindsMinimizesAndReplays(t *testing.T) {
	f, err := Search(Options{
		Base:             smallBase(),
		Trials:           4,
		Seed:             1,
		CollapseFraction: 0.8,
		Log:              func(line string) { t.Log(line) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if f == nil {
		t.Fatal("pinned seed found no violation; the generator or invariants regressed")
	}
	if !f.Scenario.Active() {
		t.Fatal("minimized scenario has no fault classes")
	}
	if err := f.Scenario.Validate(); err != nil {
		t.Fatalf("minimized scenario invalid: %v", err)
	}

	// Replay through the JSON round-trip, as the CLI reproducer does.
	b, err := json.Marshal(f.Scenario)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := fault.Parse(b)
	if err != nil {
		t.Fatalf("reproducer does not re-parse: %v", err)
	}
	cfg := smallBase()
	cfg.Faults = sc
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary != f.Violating {
		t.Fatalf("replay diverged from the recorded violation:\n got %+v\nwant %+v",
			res.Summary, f.Violating)
	}

	// The violation itself must hold on replay.
	livelock := res.Summary.MAC.Generated > 0 && res.Summary.MAC.DeliveredPackets == 0
	collapse := res.Summary.DeliveryRatio < 0.8*f.BaselineRatio
	if !livelock && !collapse {
		t.Fatalf("replayed scenario no longer violates: delivery %.3f, baseline %.3f",
			res.Summary.DeliveryRatio, f.BaselineRatio)
	}
	if f.Runs < 3 {
		t.Fatalf("suspiciously few runs (%d): baseline + trial + verification expected", f.Runs)
	}
}

// TestSearchRejectsActiveBaseFaults: the search owns Config.Faults.
func TestSearchRejectsActiveBaseFaults(t *testing.T) {
	cfg := smallBase()
	cfg.Faults = &fault.Scenario{Outage: &fault.OutageSpec{
		MeanEvery: fault.Dur(10 * time.Second), MeanDur: fault.Dur(time.Second), Fraction: 0.5,
	}}
	if _, err := Search(Options{Base: cfg, Trials: 1, Seed: 1}); err == nil {
		t.Fatal("Search accepted a Base config with active faults")
	}
}

// TestGenerateDeterministic: the generator is a pure function of the
// RNG stream, and every scenario it emits is valid and active.
func TestGenerateDeterministic(t *testing.T) {
	a, b := rand.New(rand.NewSource(7)), rand.New(rand.NewSource(7))
	for i := 0; i < 32; i++ {
		sa, sb := Generate(a, 7, i), Generate(b, 7, i)
		if !reflect.DeepEqual(sa, sb) {
			t.Fatalf("trial %d: same seed produced different scenarios", i)
		}
		if !sa.Active() {
			t.Fatalf("trial %d: inactive scenario", i)
		}
		if err := sa.Validate(); err != nil {
			t.Fatalf("trial %d: invalid scenario: %v", i, err)
		}
	}
}

// TestCandidatesShrinkOrStay: every shrink candidate stays valid, and
// soften floors stop offering candidates once every knob bottoms out.
func TestCandidatesShrinkOrStay(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	sc := Generate(r, 3, 0)
	for _, c := range candidates(sc, 90*time.Second) {
		if !c.Active() {
			continue // dropping the last class is filtered by the shrinker
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("candidate invalid: %v", err)
		}
	}
	// A scenario already at the floors offers only the drop candidates.
	floor := &fault.Scenario{Outage: &fault.OutageSpec{
		MeanEvery: fault.Dur(200 * time.Second), // past simLen: no doubling
		MeanDur:   minDur,
		Fraction:  minFraction,
	}}
	got := candidates(floor, 90*time.Second)
	if len(got) != 1 || got[0].Outage != nil {
		t.Fatalf("floored scenario offered %d candidates, want only the drop", len(got))
	}
}
