package oracle

import (
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

func dataFrame(src, dst packet.NodeID, seq uint32, ts time.Duration) *packet.Frame {
	return &packet.Frame{Kind: packet.KindData, Src: src, Dst: dst, Seq: seq, DataBits: 2048, Timestamp: ts}
}

func TestCleanReceptionVerifies(t *testing.T) {
	o := New(12000, 10)
	f := dataFrame(1, 3, 1, time.Second)
	o.RecordEmission(sim.At(time.Second), 1, 3, f, 400*time.Millisecond, 130)
	o.RecordReception(sim.At(time.Second+600*time.Millisecond), 3, f)
	if v := o.Verify(); len(v) != 0 {
		t.Errorf("clean reception flagged: %v", v)
	}
	if o.Receptions() != 1 || o.Losses() != 0 {
		t.Error("bookkeeping wrong")
	}
}

func TestHalfDuplexViolationDetected(t *testing.T) {
	o := New(12000, 10)
	rx := dataFrame(1, 3, 1, time.Second)
	tx := dataFrame(3, 2, 9, time.Second+100*time.Millisecond)
	o.RecordEmission(sim.At(time.Second), 1, 3, rx, 200*time.Millisecond, 130)
	// Node 3 transmits while rx is arriving at it.
	o.RecordEmission(sim.At(time.Second+100*time.Millisecond), 3, 2, tx, 300*time.Millisecond, 130)
	o.RecordReception(sim.At(time.Second+380*time.Millisecond), 3, rx)
	if v := o.Verify(); len(v) == 0 {
		t.Error("half-duplex violation missed")
	}
}

func TestCaptureMarginRespected(t *testing.T) {
	o := New(12000, 10)
	strong := dataFrame(1, 3, 1, time.Second)
	weak := dataFrame(2, 3, 2, time.Second)
	o.RecordEmission(sim.At(time.Second), 1, 3, strong, 100*time.Millisecond, 150)
	o.RecordEmission(sim.At(time.Second), 2, 3, weak, 100*time.Millisecond, 120) // 30 dB down
	o.RecordReception(sim.At(time.Second+300*time.Millisecond), 3, strong)
	if v := o.Verify(); len(v) != 0 {
		t.Errorf("capture of a 30 dB-stronger frame flagged: %v", v)
	}
	// The weak frame, if claimed received, is a violation.
	o.RecordReception(sim.At(time.Second+300*time.Millisecond), 3, weak)
	if v := o.Verify(); len(v) == 0 {
		t.Error("reception under 30 dB of interference accepted")
	}
}

func TestExtraSafetyScopesToNegotiatedKinds(t *testing.T) {
	o := New(12000, 10)
	// An RTS lost to an overlapping extra frame is explicitly exempt
	// (the paper does not protect RTS contention).
	rts := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 3, Seq: 1, Timestamp: time.Second}
	ex := &packet.Frame{Kind: packet.KindEXR, Src: 2, Dst: 3, Seq: 2, Timestamp: time.Second}
	o.RecordEmission(sim.At(time.Second), 1, 3, rts, 100*time.Millisecond, 130)
	o.RecordEmission(sim.At(time.Second), 2, 3, ex, 100*time.Millisecond, 130)
	o.RecordLoss(sim.At(time.Second+110*time.Millisecond), 3, rts, phy.LossCollision)
	if v := o.VerifyExtraSafety(); len(v) != 0 {
		t.Errorf("RTS loss wrongly counted as a guard breach: %v", v)
	}
	// Losses at bystanders (frame not addressed to the loser) are also
	// out of scope.
	data := dataFrame(1, 5, 7, 2*time.Second)
	o.RecordEmission(sim.At(2*time.Second), 1, 9, data, 100*time.Millisecond, 130)
	o.RecordLoss(sim.At(2*time.Second+300*time.Millisecond), 9, data, phy.LossCollision)
	if v := o.VerifyExtraSafety(); len(v) != 0 {
		t.Errorf("bystander loss wrongly counted: %v", v)
	}
}

func TestViolationStringsAreReadable(t *testing.T) {
	o := New(12000, 10)
	f := dataFrame(1, 3, 1, time.Second)
	o.RecordReception(sim.At(2*time.Second), 3, f)
	v := o.Verify()
	if len(v) != 1 {
		t.Fatalf("want one violation, got %v", v)
	}
	if v[0].String() == "" || v[0].Node != 3 {
		t.Errorf("violation rendering broken: %+v", v[0])
	}
}
