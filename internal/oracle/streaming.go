package oracle

import (
	"fmt"
	"sort"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// Streaming is the always-on form of the Equation-(1) oracle: instead
// of accumulating a whole run and cross-examining it afterwards in
// O(receptions × arrivals), it verifies each reception the instant it
// is recorded against per-receiver time-ordered interval indexes
// (binary-search overlap queries), and evicts arrivals and
// transmission spans once they fall behind a watermark no future
// reception window can reach, so memory stays bounded over arbitrarily
// long runs.
//
// Incremental verification is sound because the event stream arrives
// in simulation-time order and every record the checks consult is
// already present when a reception is verified: an arrival overlapping
// a reception window ending at the decode instant must have started —
// and therefore been emitted — strictly earlier, and likewise for
// transmission spans. Eviction is safe with the same argument run
// backwards: a span whose end is more than one maximum frame duration
// (plus the configured propagation horizon) behind the newest event
// can never overlap a window verified later.
//
// Streaming implements obs.Recorder, consuming the channel/PHY tap
// events (chan.emit, phy.tx, phy.rx, phy.loss) directly from the
// per-run recorder fan-out. Violations are tallied, a bounded sample
// is kept for reporting, and — when a sink is attached with SetSink —
// each one is re-emitted as a typed obs.OracleViolation event so it
// reaches the trace, the report collector, and the resilience tracker
// like any other observation. The verifier must be the LAST recorder
// in the fan-out: emitting from inside an earlier position would
// re-enter consumers (the JSONL exporter in particular) that are not
// re-entrant mid-Record.
type Streaming struct {
	// BitRate converts frame sizes to duration; CaptureDB is the SINR
	// margin above which a stronger frame survives a weaker overlapping
	// one. Match the acoustic model, exactly as with the batch Oracle.
	BitRate   float64
	CaptureDB float64
	// Horizon is extra lookback headroom before eviction, normally the
	// maximum propagation delay across the interference range. The
	// event-order argument above makes one max frame duration
	// sufficient; the horizon keeps the watermark conservative against
	// same-instant scheduling ties and future taps that observe
	// arrivals at emission rather than decode time.
	Horizon time.Duration

	sink obs.Recorder

	arrivals map[packet.NodeID]*arrivalIndex
	tx       map[packet.NodeID]*txIndex
	maxDur   time.Duration

	receptions uint64
	losses     uint64
	emissions  uint64
	violations uint64
	byReason   map[string]uint64
	kept       []Violation

	liveArrivals int
	liveTx       int
	peakArrivals int
	peakTx       int
	evicted      uint64
}

// keptMax bounds the retained violation sample; tallies keep counting
// past it.
const keptMax = 32

// compactEvery is how many inserts an index absorbs between eviction
// sweeps; each sweep is O(live), so eviction cost is amortized O(1)
// per insert.
const compactEvery = 64

type arrivalIndex struct {
	// spans is sorted by span.start (ties keep insertion order).
	spans   []arrival
	inserts int
}

type txIndex struct {
	spans   []span
	inserts int
}

// NewStreaming returns a streaming verifier for the given PHY
// parameters. horizon is the propagation-delay headroom added to the
// eviction watermark (the caller normally passes the model's maximum
// delay scaled by the channel's interference-range factor).
func NewStreaming(bitRate, captureDB float64, horizon time.Duration) *Streaming {
	return &Streaming{
		BitRate:   bitRate,
		CaptureDB: captureDB,
		Horizon:   horizon,
		arrivals:  make(map[packet.NodeID]*arrivalIndex),
		tx:        make(map[packet.NodeID]*txIndex),
		byReason:  make(map[string]uint64),
	}
}

// SetSink attaches the recorder violations are re-emitted to as
// obs.OracleViolation events. The verifier ignores its own events, so
// the sink may be (and normally is) the fan-out the verifier itself
// belongs to.
func (s *Streaming) SetSink(r obs.Recorder) { s.sink = r }

var _ obs.Recorder = (*Streaming)(nil)

// Record implements obs.Recorder, folding the channel/PHY ground-truth
// taps into the indexes and verifying receptions and losses as they
// stream past. Event records are not retained past the call (frames
// are copy-on-write and safe to keep; see the obs ownership rule).
func (s *Streaming) Record(at sim.Time, e obs.Event) {
	switch ev := e.(type) {
	case *obs.FrameEmit:
		s.RecordEmission(at, ev.Src, ev.Dst, ev.Frame, ev.Delay, ev.LevelDB)
	case *obs.TxBegin:
		s.RecordTx(at, ev.Node, ev.Dur)
	case *obs.FrameRx:
		s.RecordReception(at, ev.Node, ev.Frame)
	case *obs.FrameLoss:
		s.RecordLoss(at, ev.Node, ev.Frame, phy.LossReason(ev.ReasonCode))
	}
}

// RecordEmission logs one scheduled delivery: the frame's arrival
// interval at dst. Unlike the batch Oracle it does not derive the
// transmission span — that comes from RecordTx (the phy.tx tap), once
// per transmission instead of once per receiver.
func (s *Streaming) RecordEmission(now sim.Time, src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
	s.emissions++
	dur := f.TxDuration(s.BitRate)
	if dur > s.maxDur {
		s.maxDur = dur
	}
	a := arrival{
		key:     keyOf(f),
		at:      dst,
		span:    span{now.Add(delay), now.Add(delay + dur)},
		levelDB: levelDB,
		kind:    f.Kind,
	}
	idx := s.arrivals[dst]
	if idx == nil {
		idx = &arrivalIndex{}
		s.arrivals[dst] = idx
	}
	i := sort.Search(len(idx.spans), func(i int) bool { return idx.spans[i].span.start > a.span.start })
	idx.spans = append(idx.spans, arrival{})
	copy(idx.spans[i+1:], idx.spans[i:])
	idx.spans[i] = a
	s.liveArrivals++
	if s.liveArrivals > s.peakArrivals {
		s.peakArrivals = s.liveArrivals
	}
	if idx.inserts++; idx.inserts >= compactEvery {
		idx.inserts = 0
		s.compactArrivals(idx, s.watermark(now))
	}
}

// RecordTx logs one transmission span at node (the phy.tx tap). An
// exact-duplicate span is suppressed so emission-derived fixtures that
// record one span per receiver stay comparable with the batch Oracle.
func (s *Streaming) RecordTx(now sim.Time, node packet.NodeID, dur time.Duration) {
	if dur > s.maxDur {
		s.maxDur = dur
	}
	sp := span{now, now.Add(dur)}
	idx := s.tx[node]
	if idx == nil {
		idx = &txIndex{}
		s.tx[node] = idx
	}
	i := sort.Search(len(idx.spans), func(i int) bool { return idx.spans[i].start > sp.start })
	for j := i - 1; j >= 0 && idx.spans[j].start == sp.start; j-- {
		if idx.spans[j] == sp {
			return
		}
	}
	idx.spans = append(idx.spans, span{})
	copy(idx.spans[i+1:], idx.spans[i:])
	idx.spans[i] = sp
	s.liveTx++
	if s.liveTx > s.peakTx {
		s.peakTx = s.liveTx
	}
	if idx.inserts++; idx.inserts >= compactEvery {
		idx.inserts = 0
		s.compactTx(idx, s.watermark(now))
	}
}

// RecordReception verifies one claimed successful decode the moment it
// is recorded (now is the decode instant = the arrival's end).
func (s *Streaming) RecordReception(now sim.Time, node packet.NodeID, f *packet.Frame) {
	s.receptions++
	a, ok := s.findArrival(now, node, f)
	if !ok {
		s.violate(now, node, f, obs.OracleNoEmission,
			fmt.Sprintf("reception of %v with no matching channel emission", keyString(keyOf(f))))
		return
	}
	if idx := s.tx[node]; idx != nil {
		hi := sort.Search(len(idx.spans), func(i int) bool { return !idx.spans[i].start.Before(a.span.end) })
		for i := hi - 1; i >= 0; i-- {
			if !idx.spans[i].start.Add(s.maxDur).After(a.span.start) {
				break
			}
			if idx.spans[i].overlaps(a.span) {
				s.violate(now, node, f, obs.OracleHalfDuplex,
					fmt.Sprintf("decoded %v while transmitting (half-duplex violation)", keyString(a.key)))
			}
		}
	}
	s.eachOverlap(node, a.span, func(other *arrival) {
		if other.key == a.key {
			return
		}
		if other.levelDB >= a.levelDB-s.CaptureDB {
			s.violate(now, node, f, obs.OracleCapture,
				fmt.Sprintf("decoded %v despite overlapping %v within the capture margin (Equation (1) violation)",
					keyString(a.key), keyString(other.key)))
		}
	})
}

// RecordLoss verifies the paper's §4.2 guarantee for one reported
// loss: a negotiated CTS/Data/Ack lost to a collision at its intended
// destination must not overlap an extra-communication frame (RTS
// contention is exempt, as in the paper).
func (s *Streaming) RecordLoss(now sim.Time, node packet.NodeID, f *packet.Frame, reason phy.LossReason) {
	s.losses++
	if reason != phy.LossCollision || f.Dst != node {
		return
	}
	switch f.Kind {
	case packet.KindCTS, packet.KindData, packet.KindAck:
	default:
		return
	}
	victim, ok := s.findArrival(now, node, f)
	if !ok {
		return
	}
	s.eachOverlap(node, victim.span, func(other *arrival) {
		if other.key == victim.key || !other.kind.IsExtra() {
			return
		}
		s.violate(now, node, f, obs.OracleExtraGuard,
			fmt.Sprintf("negotiated %v corrupted by extra frame %v (guard breach)",
				keyString(victim.key), keyString(other.key)))
	})
}

// findArrival locates the live arrival a decode or loss at now refers
// to. The stream's decode instant is exactly the arrival's end, so the
// primary lookup is a binary search for start == now − duration; the
// bounded fallback scan keeps fabricated fixtures (whose claimed
// instants need not line up) matched the way the batch Oracle matches
// them.
func (s *Streaming) findArrival(now sim.Time, node packet.NodeID, f *packet.Frame) (arrival, bool) {
	idx := s.arrivals[node]
	if idx == nil {
		return arrival{}, false
	}
	k := keyOf(f)
	start := now.Add(-f.TxDuration(s.BitRate))
	i := sort.Search(len(idx.spans), func(i int) bool { return !idx.spans[i].span.start.Before(start) })
	for ; i < len(idx.spans) && idx.spans[i].span.start == start; i++ {
		if idx.spans[i].key == k {
			return idx.spans[i], true
		}
	}
	for _, a := range idx.spans {
		if a.key == k {
			return a, true
		}
	}
	return arrival{}, false
}

// eachOverlap calls fn for every live arrival at node overlapping w,
// found by binary search for the first start past the window and a
// backward scan bounded by the maximum frame duration.
func (s *Streaming) eachOverlap(node packet.NodeID, w span, fn func(*arrival)) {
	idx := s.arrivals[node]
	if idx == nil {
		return
	}
	hi := sort.Search(len(idx.spans), func(i int) bool { return !idx.spans[i].span.start.Before(w.end) })
	for i := hi - 1; i >= 0; i-- {
		a := &idx.spans[i]
		if !a.span.start.Add(s.maxDur).After(w.start) {
			break
		}
		if a.span.overlaps(w) {
			fn(a)
		}
	}
}

// watermark is the instant behind which no span can influence a future
// check: every later-verified window starts no earlier than now minus
// one maximum frame duration, with Horizon as extra headroom.
func (s *Streaming) watermark(now sim.Time) sim.Time {
	return now.Add(-(s.Horizon + s.maxDur))
}

func (s *Streaming) compactArrivals(idx *arrivalIndex, wm sim.Time) {
	kept := idx.spans[:0]
	for _, a := range idx.spans {
		if a.span.end.After(wm) {
			kept = append(kept, a)
		}
	}
	s.evicted += uint64(len(idx.spans) - len(kept))
	s.liveArrivals -= len(idx.spans) - len(kept)
	idx.spans = kept
}

func (s *Streaming) compactTx(idx *txIndex, wm sim.Time) {
	kept := idx.spans[:0]
	for _, sp := range idx.spans {
		if sp.end.After(wm) {
			kept = append(kept, sp)
		}
	}
	s.evicted += uint64(len(idx.spans) - len(kept))
	s.liveTx -= len(idx.spans) - len(kept)
	idx.spans = kept
}

// violate tallies one violation, keeps a bounded sample, and re-emits
// it as a typed obs event through the sink (which may be the fan-out
// the verifier itself is part of; its own events are ignored by
// Record's switch).
func (s *Streaming) violate(now sim.Time, node packet.NodeID, f *packet.Frame, reason, detail string) {
	s.violations++
	s.byReason[reason]++
	if len(s.kept) < keptMax {
		s.kept = append(s.kept, Violation{Node: node, Key: keyString(keyOf(f)), Reason: detail})
	}
	if s.sink != nil {
		obs.OracleViolation{Node: node, Frame: f, Reason: reason, Detail: detail}.Emit(s.sink, now)
	}
}

// Stats is the verifier's summary: what it checked, what it found, and
// how much state it held doing so (the Live/Peak counters are what the
// bounded-memory soak asserts on).
type Stats struct {
	// Emissions / Receptions / Losses count the ground-truth records
	// consumed.
	Emissions  uint64 `json:"emissions"`
	Receptions uint64 `json:"receptions"`
	Losses     uint64 `json:"losses"`
	// Violations counts every conformance violation; ByReason breaks
	// them down by the obs.Oracle* reason constants.
	Violations uint64            `json:"violations"`
	ByReason   map[string]uint64 `json:"by_reason,omitempty"`
	// LiveArrivals / LiveTxSpans are the interval-index sizes at
	// snapshot time; the Peak values are their run maxima; Evicted is
	// the total spans dropped past the watermark.
	LiveArrivals int    `json:"live_arrivals"`
	LiveTxSpans  int    `json:"live_tx_spans"`
	PeakArrivals int    `json:"peak_arrivals"`
	PeakTxSpans  int    `json:"peak_tx_spans"`
	Evicted      uint64 `json:"evicted"`
}

// Stats snapshots the verifier.
func (s *Streaming) Stats() Stats {
	by := make(map[string]uint64, len(s.byReason))
	for k, v := range s.byReason {
		by[k] = v
	}
	if len(by) == 0 {
		by = nil
	}
	return Stats{
		Emissions:    s.emissions,
		Receptions:   s.receptions,
		Losses:       s.losses,
		Violations:   s.violations,
		ByReason:     by,
		LiveArrivals: s.liveArrivals,
		LiveTxSpans:  s.liveTx,
		PeakArrivals: s.peakArrivals,
		PeakTxSpans:  s.peakTx,
		Evicted:      s.evicted,
	}
}

// Violations returns the retained violation sample (the first keptMax
// found; the Stats tallies keep counting past that).
func (s *Streaming) Violations() []Violation { return s.kept }
