package oracle

import (
	"fmt"
	"sort"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// ---- Span semantics (pinned before the streaming rewrite) ----

// TestOverlapSemantics pins the exact interval algebra both oracles
// share: strictly-open overlap, so touching endpoints do not conflict,
// a zero-width span strictly inside a nonzero one does, and two
// zero-width spans at the same instant do not.
func TestOverlapSemantics(t *testing.T) {
	at := func(d time.Duration) sim.Time { return sim.At(d) }
	cases := []struct {
		name string
		a, b span
		want bool
	}{
		{"disjoint", span{at(0), at(time.Second)}, span{at(2 * time.Second), at(3 * time.Second)}, false},
		{"plain overlap", span{at(0), at(2 * time.Second)}, span{at(time.Second), at(3 * time.Second)}, true},
		{"nested", span{at(0), at(3 * time.Second)}, span{at(time.Second), at(2 * time.Second)}, true},
		// a ends exactly when b starts: the decode completes before the
		// next signal's first bit, so no conflict.
		{"boundary touch", span{at(0), at(time.Second)}, span{at(time.Second), at(2 * time.Second)}, false},
		// A zero-width span strictly inside a nonzero window conflicts…
		{"zero inside nonzero", span{at(time.Second), at(time.Second)}, span{at(0), at(2 * time.Second)}, true},
		// …but a zero-width span at the window's edge does not,
		{"zero at edge", span{at(time.Second), at(time.Second)}, span{at(0), at(time.Second)}, false},
		// and two zero-width spans at the same instant never overlap.
		{"zero vs zero", span{at(time.Second), at(time.Second)}, span{at(time.Second), at(time.Second)}, false},
	}
	for _, c := range cases {
		if got := c.a.overlaps(c.b); got != c.want {
			t.Errorf("%s: a.overlaps(b) = %v, want %v", c.name, got, c.want)
		}
		if got := c.b.overlaps(c.a); got != c.want {
			t.Errorf("%s (reversed): b.overlaps(a) = %v, want %v", c.name, got, c.want)
		}
	}
}

// ---- Shared edge-case fixtures run against both oracles ----

// verifier abstracts the batch and streaming oracles so every
// edge-case fixture pins both implementations to the same verdict.
type verifier interface {
	RecordEmission(now sim.Time, src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64)
	RecordReception(now sim.Time, node packet.NodeID, f *packet.Frame)
	RecordLoss(now sim.Time, node packet.NodeID, f *packet.Frame, reason phy.LossReason)
}

// violationsOf runs (or snapshots) the verifier's full verdict as
// sorted human-readable strings so batch and streaming compare 1:1.
func violationsOf(v verifier) []string {
	var vs []Violation
	switch o := v.(type) {
	case *Oracle:
		vs = append(o.Verify(), o.VerifyExtraSafety()...)
	case *Streaming:
		vs = o.Violations()
	case *streamingCompat:
		vs = o.Violations()
	default:
		panic("unknown verifier")
	}
	out := make([]string, len(vs))
	for i, x := range vs {
		out[i] = x.String()
	}
	sort.Strings(out)
	return out
}

// eachOracle runs fn once with the batch oracle and once with the
// streaming one, so a shared fixture pins both. The streaming verifier
// derives transmission spans from its own tap in production; the
// fixture-compat path (findArrival fallback + RecordTx dedup) keeps
// emission-driven fixtures equivalent.
func eachOracle(t *testing.T, bitRate, captureDB float64, fn func(t *testing.T, v verifier)) {
	t.Helper()
	t.Run("batch", func(t *testing.T) { fn(t, New(bitRate, captureDB)) })
	t.Run("streaming", func(t *testing.T) {
		s := NewStreaming(bitRate, captureDB, 5*time.Second)
		fn(t, &streamingCompat{s})
	})
}

// streamingCompat mirrors the batch oracle's emission-derived tx
// spans: one span per emission at the source (RecordTx suppresses the
// exact duplicates a multi-receiver broadcast produces).
type streamingCompat struct{ *Streaming }

func (c *streamingCompat) RecordEmission(now sim.Time, src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
	c.Streaming.RecordEmission(now, src, dst, f, delay, levelDB)
	c.Streaming.RecordTx(now, src, f.TxDuration(c.BitRate))
}

// TestBoundaryTouchIsNotInterference: an arrival ending exactly when
// the received frame's window starts (and another starting exactly
// when it ends) is not interference under Equation (1).
func TestBoundaryTouchIsNotInterference(t *testing.T) {
	const bitRate = 12000
	eachOracle(t, bitRate, 10, func(t *testing.T, v verifier) {
		mid := dataFrame(1, 3, 1, time.Second)
		dur := mid.TxDuration(bitRate) // 176 ms at 12 kbit/s
		before := dataFrame(2, 3, 2, time.Second)
		after := dataFrame(4, 3, 3, time.Second)
		// before's window is [1s−dur, 1s], mid's is [1s, 1s+dur],
		// after's is [1s+dur, 1s+2dur]: all touching, none overlapping.
		v.RecordEmission(sim.At(time.Second-dur), 2, 3, before, 0, 130)
		v.RecordEmission(sim.At(time.Second), 1, 3, mid, 0, 130)
		v.RecordEmission(sim.At(time.Second+dur), 4, 3, after, 0, 130)
		v.RecordReception(sim.At(time.Second), 3, before)
		v.RecordReception(sim.At(time.Second+dur), 3, mid)
		v.RecordReception(sim.At(time.Second+2*dur), 3, after)
		if vs := violationsOf(v); len(vs) != 0 {
			t.Errorf("touching windows flagged as interference: %v", vs)
		}
	})
}

// TestZeroDurationFramesDoNotConflict: at an extreme bit rate every
// frame's on-air time truncates to zero; two such frames arriving at
// the same instant occupy zero-width windows that cannot overlap, so
// both decodes are conformant.
func TestZeroDurationFramesDoNotConflict(t *testing.T) {
	const bitRate = 1e15
	eachOracle(t, bitRate, 10, func(t *testing.T, v verifier) {
		a := dataFrame(1, 3, 1, time.Second)
		b := dataFrame(2, 3, 2, time.Second)
		if d := a.TxDuration(bitRate); d != 0 {
			t.Fatalf("fixture expects zero duration, got %v", d)
		}
		v.RecordEmission(sim.At(time.Second), 1, 3, a, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(time.Second), 2, 3, b, 100*time.Millisecond, 130)
		v.RecordReception(sim.At(time.Second+100*time.Millisecond), 3, a)
		v.RecordReception(sim.At(time.Second+100*time.Millisecond), 3, b)
		if vs := violationsOf(v); len(vs) != 0 {
			t.Errorf("zero-width windows flagged: %v", vs)
		}
	})
}

// TestCaptureMarginEqualityIsViolation: the capture test is inclusive
// (other ≥ mine − margin), so an interferer sitting exactly on the
// margin still invalidates the decode.
func TestCaptureMarginEqualityIsViolation(t *testing.T) {
	const bitRate = 12000
	eachOracle(t, bitRate, 10, func(t *testing.T, v verifier) {
		mine := dataFrame(1, 3, 1, time.Second)
		other := dataFrame(2, 3, 2, time.Second)
		v.RecordEmission(sim.At(time.Second), 1, 3, mine, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(time.Second), 2, 3, other, 100*time.Millisecond, 120) // exactly margin dB down
		v.RecordReception(sim.At(time.Second+100*time.Millisecond+mine.TxDuration(bitRate)), 3, mine)
		if vs := violationsOf(v); len(vs) != 1 {
			t.Errorf("capture-margin equality: want exactly 1 violation, got %v", vs)
		}
		// One decibel below the margin the decode is conformant.
		v2 := New(bitRate, 10)
		v2.RecordEmission(sim.At(time.Second), 1, 3, mine, 100*time.Millisecond, 130)
		v2.RecordEmission(sim.At(time.Second), 2, 3, other, 100*time.Millisecond, 119)
		v2.RecordReception(sim.At(time.Second+100*time.Millisecond+mine.TxDuration(bitRate)), 3, mine)
		if vs := v2.Verify(); len(vs) != 0 {
			t.Errorf("sub-margin interferer flagged: %v", vs)
		}
	})
}

// TestDuplicateReceptionsVerifiedIndependently: a frame key claimed
// received twice at the same node is checked twice — a violating
// window yields one violation per claim, a clean one yields none.
func TestDuplicateReceptionsVerifiedIndependently(t *testing.T) {
	const bitRate = 12000
	eachOracle(t, bitRate, 10, func(t *testing.T, v verifier) {
		mine := dataFrame(1, 3, 1, time.Second)
		jam := dataFrame(2, 3, 2, time.Second)
		v.RecordEmission(sim.At(time.Second), 1, 3, mine, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(time.Second), 2, 3, jam, 100*time.Millisecond, 130)
		end := sim.At(time.Second + 100*time.Millisecond + mine.TxDuration(bitRate))
		v.RecordReception(end, 3, mine)
		v.RecordReception(end, 3, mine)
		if vs := violationsOf(v); len(vs) != 2 {
			t.Errorf("duplicate claims: want 2 violations (one per claim), got %v", vs)
		}
	})
}

// ---- Batch vs streaming agreement ----

// TestBatchStreamingAgreement replays one recorded fixture — clean
// receptions, a half-duplex breach, a capture breach, a phantom
// reception, and an extra-guard breach — into both oracles and
// requires identical verdicts, violation for violation.
func TestBatchStreamingAgreement(t *testing.T) {
	const bitRate = 12000
	const captureDB = 10
	batch := New(bitRate, captureDB)
	stream := &streamingCompat{NewStreaming(bitRate, captureDB, 5*time.Second)}

	replay := func(v verifier) {
		// t=1s: clean unicast 1→3.
		clean := dataFrame(1, 3, 1, time.Second)
		v.RecordEmission(sim.At(time.Second), 1, 3, clean, 100*time.Millisecond, 130)
		v.RecordReception(sim.At(time.Second+100*time.Millisecond+clean.TxDuration(bitRate)), 3, clean)

		// t=3s: node 5 decodes while itself transmitting.
		rx := dataFrame(1, 5, 2, 3*time.Second)
		tx := dataFrame(5, 2, 3, 3*time.Second+50*time.Millisecond)
		v.RecordEmission(sim.At(3*time.Second), 1, 5, rx, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(3*time.Second+50*time.Millisecond), 5, 2, tx, 200*time.Millisecond, 130)
		v.RecordReception(sim.At(3*time.Second+100*time.Millisecond+rx.TxDuration(bitRate)), 5, rx)

		// t=5s: equal-power overlap decoded anyway.
		strong := dataFrame(1, 7, 4, 5*time.Second)
		weak := dataFrame(2, 7, 5, 5*time.Second)
		v.RecordEmission(sim.At(5*time.Second), 1, 7, strong, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(5*time.Second), 2, 7, weak, 100*time.Millisecond, 130)
		v.RecordReception(sim.At(5*time.Second+100*time.Millisecond+strong.TxDuration(bitRate)), 7, strong)

		// t=7s: reception with no recorded emission at all.
		ghost := dataFrame(9, 4, 6, 7*time.Second)
		v.RecordReception(sim.At(7*time.Second), 4, ghost)

		// t=9s: negotiated Data lost at its destination under an
		// overlapping extra frame (§4.2 guard breach)…
		victim := dataFrame(1, 6, 7, 9*time.Second)
		extra := &packet.Frame{Kind: packet.KindEXData, Src: 2, Dst: 8, Seq: 8, DataBits: 2048, Timestamp: 9 * time.Second}
		v.RecordEmission(sim.At(9*time.Second), 1, 6, victim, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(9*time.Second), 2, 6, extra, 100*time.Millisecond, 130)
		v.RecordLoss(sim.At(9*time.Second+100*time.Millisecond+victim.TxDuration(bitRate)), 6, victim, phy.LossCollision)

		// …while the same shape with an RTS victim is exempt.
		rts := &packet.Frame{Kind: packet.KindRTS, Src: 1, Dst: 6, Seq: 9, Timestamp: 11 * time.Second}
		ex2 := &packet.Frame{Kind: packet.KindEXR, Src: 2, Dst: 8, Seq: 10, Timestamp: 11 * time.Second}
		v.RecordEmission(sim.At(11*time.Second), 1, 6, rts, 100*time.Millisecond, 130)
		v.RecordEmission(sim.At(11*time.Second), 2, 6, ex2, 100*time.Millisecond, 130)
		v.RecordLoss(sim.At(11*time.Second+100*time.Millisecond+rts.TxDuration(bitRate)), 6, rts, phy.LossCollision)
	}
	replay(batch)
	replay(stream)

	got, want := violationsOf(stream), violationsOf(batch)
	if len(want) != 4 {
		t.Fatalf("fixture should trip the batch oracle 4 times (half-duplex, capture, no-emission, guard breach); got %v", want)
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("oracles disagree:\n batch:     %v\n streaming: %v", want, got)
	}
	st := stream.Stats()
	if st.Violations != uint64(len(want)) || st.Receptions != 4 || st.Losses != 2 {
		t.Errorf("streaming stats inconsistent with verdict: %+v", st)
	}
	if st.ByReason[obs.OracleHalfDuplex] != 1 || st.ByReason[obs.OracleCapture] != 1 ||
		st.ByReason[obs.OracleNoEmission] != 1 || st.ByReason[obs.OracleExtraGuard] != 1 {
		t.Errorf("streaming by-reason tallies wrong: %v", st.ByReason)
	}
}

// ---- Streaming-only properties ----

// TestStreamingConsumesObsEvents drives the verifier through its
// obs.Recorder face — the production tap — and checks a fabricated
// equal-power overlap is caught and re-emitted as a typed violation
// event through the sink.
func TestStreamingConsumesObsEvents(t *testing.T) {
	const bitRate = 12000
	s := NewStreaming(bitRate, 10, 5*time.Second)
	var emitted []obs.OracleViolation
	s.SetSink(obs.RecorderFunc(func(at sim.Time, e obs.Event) {
		if v, ok := e.(*obs.OracleViolation); ok {
			emitted = append(emitted, *v)
		}
	}))

	strong := dataFrame(1, 3, 1, time.Second)
	weak := dataFrame(2, 3, 2, time.Second)
	dur := strong.TxDuration(bitRate)
	s.Record(sim.At(time.Second), &obs.FrameEmit{Src: 1, Dst: 3, Frame: strong, Delay: 100 * time.Millisecond, LevelDB: 130})
	s.Record(sim.At(time.Second), &obs.TxBegin{Node: 1, Frame: strong, Dur: dur})
	s.Record(sim.At(time.Second), &obs.FrameEmit{Src: 2, Dst: 3, Frame: weak, Delay: 100 * time.Millisecond, LevelDB: 130})
	s.Record(sim.At(time.Second), &obs.TxBegin{Node: 2, Frame: weak, Dur: dur})
	s.Record(sim.At(time.Second+100*time.Millisecond+dur), &obs.FrameRx{Node: 3, Frame: strong})

	if len(emitted) != 1 {
		t.Fatalf("want 1 violation event through the sink, got %d", len(emitted))
	}
	if emitted[0].Reason != obs.OracleCapture || emitted[0].Node != 3 || emitted[0].Frame != strong {
		t.Errorf("violation event wrong: %+v", emitted[0])
	}
	// Its own event class must be ignored, so wiring the verifier into
	// the same fan-out it emits to cannot recurse.
	before := s.Stats().Violations
	s.Record(sim.At(2*time.Second), &emitted[0])
	if got := s.Stats().Violations; got != before {
		t.Errorf("verifier consumed its own violation event: %d -> %d", before, got)
	}
}

// TestStreamingHalfDuplexFromTxTap: the production half-duplex check
// uses the phy.tx tap (one span per transmission), not emission-derived
// spans.
func TestStreamingHalfDuplexFromTxTap(t *testing.T) {
	const bitRate = 12000
	s := NewStreaming(bitRate, 10, 5*time.Second)
	rx := dataFrame(1, 3, 1, time.Second)
	dur := rx.TxDuration(bitRate)
	s.Record(sim.At(time.Second), &obs.FrameEmit{Src: 1, Dst: 3, Frame: rx, Delay: 100 * time.Millisecond, LevelDB: 130})
	// Node 3 keys up in the middle of rx's arrival window.
	s.Record(sim.At(time.Second+150*time.Millisecond), &obs.TxBegin{Node: 3, Frame: dataFrame(3, 2, 9, time.Second+150*time.Millisecond), Dur: dur})
	s.Record(sim.At(time.Second+100*time.Millisecond+dur), &obs.FrameRx{Node: 3, Frame: rx})
	st := s.Stats()
	if st.ByReason[obs.OracleHalfDuplex] != 1 {
		t.Errorf("half-duplex breach via tx tap missed: %+v", st)
	}
}

// TestStreamingBoundedMemory runs a long steady stream — far more
// frames than the indexes may retain — and checks eviction keeps the
// peak index sizes bounded while the verdict stays clean.
func TestStreamingBoundedMemory(t *testing.T) {
	const bitRate = 12000
	const horizon = 2 * time.Second
	s := NewStreaming(bitRate, 10, horizon)
	f := dataFrame(1, 2, 0, 0)
	dur := f.TxDuration(bitRate)
	const n = 20000
	const gap = 500 * time.Millisecond
	for i := 0; i < n; i++ {
		at := sim.At(time.Duration(i) * gap)
		f := dataFrame(1, 2, uint32(i), at.Duration())
		s.Record(at, &obs.FrameEmit{Src: 1, Dst: 2, Frame: f, Delay: 100 * time.Millisecond, LevelDB: 130})
		s.Record(at, &obs.TxBegin{Node: 1, Frame: f, Dur: dur})
		s.Record(at.Add(100*time.Millisecond+dur), &obs.FrameRx{Node: 2, Frame: f})
	}
	st := s.Stats()
	if st.Violations != 0 {
		t.Fatalf("clean stream flagged: %+v", st)
	}
	if st.Receptions != n || st.Emissions != n {
		t.Fatalf("stream miscounted: %+v", st)
	}
	// Live span count is bounded by horizon/gap plus one compaction
	// period of slack — far below the 20 000 recorded frames.
	bound := int(horizon/gap) + compactEvery + 8
	if st.PeakArrivals > bound || st.PeakTxSpans > bound {
		t.Errorf("indexes grew past the eviction bound %d: %+v", bound, st)
	}
	if st.Evicted == 0 || st.LiveArrivals > bound {
		t.Errorf("eviction never ran: %+v", st)
	}
}

// TestStreamingEvictionNeverCausesFalseVerdicts: receptions verified
// long after their interferers were candidates for eviction still see
// them if (and only if) they are within the sound lookback window.
func TestStreamingEvictionNeverCausesFalseVerdicts(t *testing.T) {
	const bitRate = 12000
	s := NewStreaming(bitRate, 10, time.Second)
	// Fill well past one compaction period with old clean traffic.
	f0 := dataFrame(1, 2, 0, 0)
	dur := f0.TxDuration(bitRate)
	var at sim.Time
	for i := 0; i < 3*compactEvery; i++ {
		at = sim.At(time.Duration(i) * time.Second)
		f := dataFrame(1, 2, uint32(i), at.Duration())
		s.Record(at, &obs.FrameEmit{Src: 1, Dst: 2, Frame: f, Delay: 0, LevelDB: 130})
		s.Record(at.Add(dur), &obs.FrameRx{Node: 2, Frame: f})
	}
	// Now an overlap right at the head: interferer recorded, then the
	// victim decode claimed — eviction of *old* spans must not have
	// taken the live interferer with it.
	base := at.Add(time.Second)
	jam := dataFrame(3, 2, 900, base.Duration())
	mine := dataFrame(1, 2, 901, base.Duration())
	s.Record(base, &obs.FrameEmit{Src: 3, Dst: 2, Frame: jam, Delay: 0, LevelDB: 130})
	s.Record(base, &obs.FrameEmit{Src: 1, Dst: 2, Frame: mine, Delay: 0, LevelDB: 130})
	s.Record(base.Add(dur), &obs.FrameRx{Node: 2, Frame: mine})
	st := s.Stats()
	if st.ByReason[obs.OracleCapture] != 1 {
		t.Errorf("live interferer lost to eviction: %+v", st)
	}
	if st.Evicted == 0 {
		t.Errorf("fixture never exercised eviction: %+v", st)
	}
}

// BenchmarkStreamingRecord measures the steady-state per-frame cost of
// always-on verification: one emission + tx + reception cycle.
func BenchmarkStreamingRecord(b *testing.B) {
	const bitRate = 12000
	s := NewStreaming(bitRate, 10, 2*time.Second)
	f := dataFrame(1, 2, 0, 0)
	dur := f.TxDuration(bitRate)
	emit := obs.FrameEmit{Src: 1, Dst: 2, Frame: f, Delay: 100 * time.Millisecond, LevelDB: 130}
	tx := obs.TxBegin{Node: 1, Frame: f, Dur: dur}
	rx := obs.FrameRx{Node: 2, Frame: f}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		at := sim.At(time.Duration(i) * 500 * time.Millisecond)
		f.Seq = uint32(i)
		f.Timestamp = at.Duration()
		s.Record(at, &emit)
		s.Record(at, &tx)
		s.Record(at.Add(100*time.Millisecond+dur), &rx)
	}
	if st := s.Stats(); st.Violations != 0 {
		b.Fatalf("benchmark stream flagged: %+v", st)
	}
}
