// Package oracle independently verifies the paper's Equation (1) over
// a finished run: a packet counts as received only if, for its whole
// reception window, the receiver was not transmitting and no other
// neighbor's signal arrived. The oracle reconstructs every arrival
// interval at every receiver purely from channel-level emission
// records — it shares no code with the PHY's reception logic — and
// then cross-examines the claimed receptions and losses. It backs two
// test suites: PHY-correctness invariants and the EW-MAC safety
// property that admitted extra transmissions never corrupt negotiated
// exchanges.
package oracle

import (
	"fmt"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// frameKey identifies one logical transmission.
type frameKey struct {
	src  packet.NodeID
	kind packet.Kind
	seq  uint32
	ts   time.Duration
}

func keyOf(f *packet.Frame) frameKey {
	return frameKey{src: f.Src, kind: f.Kind, seq: f.Seq, ts: f.Timestamp}
}

type span struct {
	start, end sim.Time
}

func (s span) overlaps(o span) bool { return s.start < o.end && o.start < s.end }

// arrival is one signal reaching one receiver.
type arrival struct {
	key     frameKey
	at      packet.NodeID
	span    span
	levelDB float64
	kind    packet.Kind
}

type reception struct {
	node packet.NodeID
	key  frameKey
	at   sim.Time
}

type loss struct {
	node   packet.NodeID
	key    frameKey
	kind   packet.Kind
	dst    packet.NodeID
	reason phy.LossReason
	at     sim.Time
}

// Violation is one inconsistency found by Verify.
type Violation struct {
	Node   packet.NodeID
	Key    fmt.Stringer
	Reason string
}

func (v Violation) String() string {
	return fmt.Sprintf("node %v: %s", v.Node, v.Reason)
}

type keyString frameKey

func (k keyString) String() string {
	return fmt.Sprintf("%v %v seq=%d @%v", frameKey(k).src, frameKey(k).kind, frameKey(k).seq, frameKey(k).ts)
}

// Oracle accumulates a run's channel-level ground truth.
type Oracle struct {
	// BitRate converts frame sizes to duration.
	BitRate float64
	// CaptureDB is the SINR margin above which a stronger frame
	// survives a weaker overlapping one. Match the model's threshold.
	CaptureDB float64

	arrivals   []arrival
	txSpans    map[packet.NodeID][]span
	txSeen     map[frameKey]bool
	receptions []reception
	losses     []loss
}

// New returns an oracle for the given PHY parameters.
func New(bitRate, captureDB float64) *Oracle {
	return &Oracle{
		BitRate:   bitRate,
		CaptureDB: captureDB,
		txSpans:   make(map[packet.NodeID][]span),
		txSeen:    make(map[frameKey]bool),
	}
}

// RecordEmission logs one scheduled delivery (call from the channel
// trace at emission time).
func (o *Oracle) RecordEmission(now sim.Time, src, dst packet.NodeID, f *packet.Frame, delay time.Duration, levelDB float64) {
	dur := f.TxDuration(o.BitRate)
	k := keyOf(f)
	o.arrivals = append(o.arrivals, arrival{
		key:     k,
		at:      dst,
		span:    span{now.Add(delay), now.Add(delay + dur)},
		levelDB: levelDB,
		kind:    f.Kind,
	})
	if !o.txSeen[k] {
		o.txSeen[k] = true
		o.txSpans[src] = append(o.txSpans[src], span{now, now.Add(dur)})
	}
}

// RecordReception logs a claimed successful decode (call from the
// modem's rx tap; now is the decode instant = arrival end).
func (o *Oracle) RecordReception(now sim.Time, node packet.NodeID, f *packet.Frame) {
	o.receptions = append(o.receptions, reception{node: node, key: keyOf(f), at: now})
}

// RecordLoss logs a reported loss of a decodable frame.
func (o *Oracle) RecordLoss(now sim.Time, node packet.NodeID, f *packet.Frame, reason phy.LossReason) {
	o.losses = append(o.losses, loss{
		node: node, key: keyOf(f), kind: f.Kind, dst: f.Dst, reason: reason, at: now,
	})
}

// Receptions reports how many successful decodes were recorded.
func (o *Oracle) Receptions() int { return len(o.receptions) }

// Losses reports how many losses were recorded.
func (o *Oracle) Losses() int { return len(o.losses) }

func (o *Oracle) findArrival(node packet.NodeID, k frameKey) (arrival, bool) {
	for _, a := range o.arrivals {
		if a.at == node && a.key == k {
			return a, true
		}
	}
	return arrival{}, false
}

// Verify checks Equation (1) for every claimed reception: during the
// frame's reception window the receiver transmitted nothing, and no
// comparable-power foreign signal overlapped it.
func (o *Oracle) Verify() []Violation {
	var out []Violation
	for _, r := range o.receptions {
		a, ok := o.findArrival(r.node, r.key)
		if !ok {
			out = append(out, Violation{r.node, keyString(r.key),
				fmt.Sprintf("reception of %v with no matching channel emission", keyString(r.key))})
			continue
		}
		for _, tx := range o.txSpans[r.node] {
			if tx.overlaps(a.span) {
				out = append(out, Violation{r.node, keyString(r.key),
					fmt.Sprintf("decoded %v while transmitting (half-duplex violation)", keyString(r.key))})
			}
		}
		for _, other := range o.arrivals {
			if other.at != r.node || other.key == a.key {
				continue
			}
			if !other.span.overlaps(a.span) {
				continue
			}
			if other.levelDB >= a.levelDB-o.CaptureDB {
				out = append(out, Violation{r.node, keyString(r.key),
					fmt.Sprintf("decoded %v despite overlapping %v within the capture margin (Equation (1) violation)",
						keyString(r.key), keyString(other.key))})
			}
		}
	}
	return out
}

// VerifyExtraSafety checks the paper's §4.2 guarantee: no negotiated
// frame (CTS, Data, or Ack) lost at its intended destination may have
// been corrupted by an overlapping extra-communication frame. RTS
// contention is explicitly exempt ("we do not assure that there is no
// collision between RTS packets", §4).
func (o *Oracle) VerifyExtraSafety() []Violation {
	var out []Violation
	for _, l := range o.losses {
		if l.reason != phy.LossCollision || l.dst != l.node {
			continue
		}
		switch l.kind {
		case packet.KindCTS, packet.KindData, packet.KindAck:
		default:
			continue
		}
		victim, ok := o.findArrival(l.node, l.key)
		if !ok {
			continue
		}
		for _, other := range o.arrivals {
			if other.at != l.node || other.key == victim.key {
				continue
			}
			if !other.span.overlaps(victim.span) || !other.kind.IsExtra() {
				continue
			}
			out = append(out, Violation{l.node, keyString(l.key),
				fmt.Sprintf("negotiated %v corrupted by extra frame %v (guard breach)",
					keyString(l.key), keyString(other.key))})
		}
	}
	return out
}
