package fault

import (
	"time"

	"ewmac/internal/sim"
	"ewmac/internal/timesync"
)

// DriftClock is a disciplined imperfect oscillator implementing
// mac.Clock. The raw hardware behaviour is a timesync.Clock (phase
// offset plus frequency skew); on top of it the node applies a
// correction learned at each synchronization epoch. Immediately after
// a Sync the corrected local reading equals true time; between syncs
// the residual skew re-accumulates error, and during a sync-loss
// episode (Desync) the error grows unbounded until discipline returns.
type DriftClock struct {
	raw timesync.Clock
	// corr is subtracted from the raw reading; Sync sets it so the
	// corrected reading matches true time at the sync instant.
	corr time.Duration
	// lost marks an ongoing sync-loss episode: Sync calls are ignored.
	lost bool
}

// NewDriftClock builds a clock with the given initial phase offset and
// frequency skew (parts per million), not yet disciplined.
func NewDriftClock(offset time.Duration, skewPPM float64) *DriftClock {
	return &DriftClock{raw: timesync.Clock{Offset: offset, SkewPPM: skewPPM}}
}

// Local implements mac.Clock.
func (c *DriftClock) Local(t sim.Time) time.Duration {
	return c.raw.Local(t) - c.corr
}

// TrueTime implements mac.Clock: it inverts Local, returning the true
// instant at which the corrected local clock reads local.
func (c *DriftClock) TrueTime(local time.Duration) sim.Time {
	// local = Offset + g·(1+s/1e6) - corr  ⇒  g = (local + corr - Offset)/(1+s/1e6).
	g := float64(local+c.corr-c.raw.Offset) / (1 + c.raw.SkewPPM/1e6)
	return sim.At(time.Duration(g))
}

// Err reports the current clock error: corrected local reading minus
// true time at instant t.
func (c *DriftClock) Err(t sim.Time) time.Duration {
	return c.Local(t) - t.Duration()
}

// Sync disciplines the clock so its corrected reading equals true time
// at now. A clock inside a sync-loss episode ignores the call.
func (c *DriftClock) Sync(now sim.Time) {
	if c.lost {
		return
	}
	c.corr = c.raw.Local(now) - now.Duration()
}

// Desync starts or ends a sync-loss episode.
func (c *DriftClock) Desync(lost bool) { c.lost = lost }

// Lost reports whether a sync-loss episode is in progress.
func (c *DriftClock) Lost() bool { return c.lost }
