package fault

import (
	"testing"
	"time"

	"ewmac/internal/sim"
)

func TestDriftClockLocalAndTrueTime(t *testing.T) {
	c := NewDriftClock(10*time.Millisecond, 100) // +10ms, +100 ppm
	at := sim.At(100 * time.Second)
	local := c.Local(at)
	// 100 ppm over 100 s accumulates 10 ms, plus the 10 ms offset.
	want := 100*time.Second + 20*time.Millisecond
	if local != want {
		t.Errorf("Local = %v, want %v", local, want)
	}
	// TrueTime inverts Local to within float rounding.
	back := c.TrueTime(local)
	if d := back.Sub(at); d < -time.Microsecond || d > time.Microsecond {
		t.Errorf("TrueTime(Local(t)) off by %v", d)
	}
}

func TestDriftClockSyncDisciplines(t *testing.T) {
	c := NewDriftClock(50*time.Millisecond, 200)
	at := sim.At(30 * time.Second)
	if c.Err(at) == 0 {
		t.Fatal("undisciplined clock reports zero error")
	}
	c.Sync(at)
	if err := c.Err(at); err != 0 {
		t.Errorf("error %v immediately after sync", err)
	}
	// Skew re-accumulates after the sync: 200 ppm over 10 s = 2 ms.
	later := at.Add(10 * time.Second)
	if err := c.Err(later); err != 2*time.Millisecond {
		t.Errorf("re-accumulated error = %v, want 2ms", err)
	}
}

func TestDriftClockSyncLoss(t *testing.T) {
	c := NewDriftClock(0, 500)
	c.Sync(sim.At(10 * time.Second))
	c.Desync(true)
	if !c.Lost() {
		t.Fatal("Lost() false after Desync(true)")
	}
	at := sim.At(60 * time.Second)
	before := c.Err(at)
	c.Sync(at) // must be ignored during the episode
	if c.Err(at) != before {
		t.Error("Sync disciplined a clock inside a sync-loss episode")
	}
	c.Desync(false)
	c.Sync(at)
	if c.Err(at) != 0 {
		t.Error("Sync ineffective after the episode ended")
	}
}
