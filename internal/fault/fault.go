// Package fault is a deterministic, seed-reproducible fault-injection
// layer for the simulator. A Scenario describes which fault classes are
// active and with what statistics; an Injector turns the scenario into
// scheduled events against a deployed network: node crash/recovery
// churn, per-node clock drift with sync-loss episodes, mobility-induced
// propagation-delay jumps, transient modem outages, and bursty wideband
// interference.
//
// Every stochastic choice draws from named sim.RNG streams (one per
// fault class, per node where the class is per-node), so enabling one
// fault class never perturbs another and the same seed always yields
// the same fault timeline. Every injection and recovery is emitted on
// the observability bus as an obs.Fault event.
package fault

import (
	"encoding/json"
	"fmt"
	"os"
	"time"
)

// Dur is a time.Duration that marshals as a Go duration string
// ("30s", "1m30s") so scenario JSON stays human-editable.
type Dur time.Duration

// D converts to time.Duration.
func (d Dur) D() time.Duration { return time.Duration(d) }

// MarshalJSON implements json.Marshaler.
func (d Dur) MarshalJSON() ([]byte, error) {
	return json.Marshal(time.Duration(d).String())
}

// UnmarshalJSON accepts either a duration string ("45s") or raw
// nanoseconds for compatibility with mechanically generated files.
func (d *Dur) UnmarshalJSON(b []byte) error {
	var s string
	if err := json.Unmarshal(b, &s); err == nil {
		v, err := time.ParseDuration(s)
		if err != nil {
			return fmt.Errorf("fault: bad duration %q: %w", s, err)
		}
		*d = Dur(v)
		return nil
	}
	var ns int64
	if err := json.Unmarshal(b, &ns); err != nil {
		return fmt.Errorf("fault: duration must be a string or integer nanoseconds: %s", b)
	}
	*d = Dur(ns)
	return nil
}

// ChurnSpec crashes and recovers a fraction of the sensing nodes.
// A crashed node loses all volatile MAC state (negotiations, delay
// table, backoff) and its modem neither transmits nor receives; on
// recovery the protocol cold-starts via its Restart method. Sinks are
// never churned — the paper's sinks are infrastructure.
type ChurnSpec struct {
	// MeanUp / MeanDown are the means of the exponential up- and
	// down-time distributions.
	MeanUp   Dur `json:"mean_up"`
	MeanDown Dur `json:"mean_down"`
	// Fraction of non-sink nodes subject to churn (0..1].
	Fraction float64 `json:"fraction"`
}

// DriftSpec gives a fraction of the nodes imperfect oscillators. Each
// affected node gets a clock with a skew drawn uniformly from
// [-SkewPPM, +SkewPPM] and an initial offset from [-MaxOffset,
// +MaxOffset]. Every SyncEvery the node re-disciplines its clock to
// true time (the paper's assumed synchronization service, §3.1) —
// except during sync-loss episodes, whose onsets are exponential with
// mean LossMeanEvery and whose durations are exponential with mean
// LossMeanDur; while an episode lasts, drift accumulates unchecked.
type DriftSpec struct {
	SkewPPM   float64 `json:"skew_ppm"`
	MaxOffset Dur     `json:"max_offset"`
	SyncEvery Dur     `json:"sync_every"`
	// LossMeanEvery <= 0 disables sync-loss episodes.
	LossMeanEvery Dur     `json:"loss_mean_every"`
	LossMeanDur   Dur     `json:"loss_mean_dur"`
	Fraction      float64 `json:"fraction"`
}

// DelayShiftSpec teleports nodes small distances at exponential
// intervals, modelling current-driven position jumps that invalidate
// the MAC's learned propagation delays faster than its Hello refresh.
type DelayShiftSpec struct {
	MeanEvery Dur `json:"mean_every"`
	// MaxJumpM bounds the per-event displacement in meters.
	MaxJumpM float64 `json:"max_jump_m"`
	Fraction float64 `json:"fraction"`
}

// OutageSpec silences modems transiently (mean inter-arrival
// MeanEvery, mean duration MeanDur). Unlike churn, the MAC keeps its
// state: the node simply cannot hear or be heard for a while.
type OutageSpec struct {
	MeanEvery Dur     `json:"mean_every"`
	MeanDur   Dur     `json:"mean_dur"`
	Fraction  float64 `json:"fraction"`
}

// InterferenceSpec raises the noise floor in bursts: at exponential
// intervals a point in the region is struck and every node within
// RadiusM receives wideband interference at LevelDB for the burst
// duration. RadiusM <= 0 means region-wide.
type InterferenceSpec struct {
	MeanEvery Dur     `json:"mean_every"`
	MeanDur   Dur     `json:"mean_dur"`
	LevelDB   float64 `json:"level_db"`
	RadiusM   float64 `json:"radius_m"`
}

// Scenario is one named fault configuration; nil sub-specs disable
// their fault class. The zero Scenario injects nothing.
type Scenario struct {
	Name         string            `json:"name"`
	Churn        *ChurnSpec        `json:"churn,omitempty"`
	Drift        *DriftSpec        `json:"drift,omitempty"`
	DelayShift   *DelayShiftSpec   `json:"delay_shift,omitempty"`
	Outage       *OutageSpec       `json:"outage,omitempty"`
	Interference *InterferenceSpec `json:"interference,omitempty"`
}

// Parse decodes a scenario from JSON and validates it.
func Parse(b []byte) (*Scenario, error) {
	var s Scenario
	if err := json.Unmarshal(b, &s); err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	if err := s.Validate(); err != nil {
		return nil, err
	}
	return &s, nil
}

// Load reads and parses a scenario file.
func Load(path string) (*Scenario, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("fault: %w", err)
	}
	return Parse(b)
}

func checkFraction(class string, f float64) error {
	if f < 0 || f > 1 {
		return fmt.Errorf("fault: %s fraction %v outside [0,1]", class, f)
	}
	return nil
}

// Validate reports the first invalid field.
func (s *Scenario) Validate() error {
	if c := s.Churn; c != nil {
		if c.MeanUp <= 0 || c.MeanDown <= 0 {
			return fmt.Errorf("fault: churn means must be positive (up=%v down=%v)", c.MeanUp.D(), c.MeanDown.D())
		}
		if err := checkFraction("churn", c.Fraction); err != nil {
			return err
		}
	}
	if d := s.Drift; d != nil {
		if d.SkewPPM < 0 {
			return fmt.Errorf("fault: negative drift skew bound %v ppm", d.SkewPPM)
		}
		if d.MaxOffset < 0 {
			return fmt.Errorf("fault: negative drift offset bound %v", d.MaxOffset.D())
		}
		if d.SyncEvery <= 0 {
			return fmt.Errorf("fault: drift sync_every must be positive, got %v", d.SyncEvery.D())
		}
		if d.LossMeanEvery > 0 && d.LossMeanDur <= 0 {
			return fmt.Errorf("fault: sync-loss episodes need a positive loss_mean_dur")
		}
		if err := checkFraction("drift", d.Fraction); err != nil {
			return err
		}
	}
	if d := s.DelayShift; d != nil {
		if d.MeanEvery <= 0 {
			return fmt.Errorf("fault: delay-shift mean_every must be positive, got %v", d.MeanEvery.D())
		}
		if d.MaxJumpM <= 0 {
			return fmt.Errorf("fault: delay-shift max_jump_m must be positive, got %v", d.MaxJumpM)
		}
		if err := checkFraction("delay-shift", d.Fraction); err != nil {
			return err
		}
	}
	if o := s.Outage; o != nil {
		if o.MeanEvery <= 0 || o.MeanDur <= 0 {
			return fmt.Errorf("fault: outage means must be positive (every=%v dur=%v)", o.MeanEvery.D(), o.MeanDur.D())
		}
		if err := checkFraction("outage", o.Fraction); err != nil {
			return err
		}
	}
	if i := s.Interference; i != nil {
		if i.MeanEvery <= 0 || i.MeanDur <= 0 {
			return fmt.Errorf("fault: interference means must be positive (every=%v dur=%v)", i.MeanEvery.D(), i.MeanDur.D())
		}
	}
	return nil
}

// Active reports whether any fault class is enabled.
func (s *Scenario) Active() bool {
	if s == nil {
		return false
	}
	return s.Churn != nil || s.Drift != nil || s.DelayShift != nil ||
		s.Outage != nil || s.Interference != nil
}
