package fault

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestParseScenario(t *testing.T) {
	src := `{
		"name": "t",
		"churn": {"mean_up": "60s", "mean_down": "15s", "fraction": 0.25},
		"drift": {"skew_ppm": 100, "max_offset": "50ms", "sync_every": "30s",
		          "loss_mean_every": "1m", "loss_mean_dur": "45s", "fraction": 0.5},
		"delay_shift": {"mean_every": "40s", "max_jump_m": 120, "fraction": 0.3},
		"outage": {"mean_every": "90s", "mean_dur": "5s", "fraction": 0.2},
		"interference": {"mean_every": "30s", "mean_dur": "2s", "level_db": 60, "radius_m": 300}
	}`
	s, err := Parse([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Active() {
		t.Error("fully populated scenario reports inactive")
	}
	if got := s.Churn.MeanUp.D(); got != 60*time.Second {
		t.Errorf("mean_up = %v", got)
	}
	if got := s.Drift.LossMeanEvery.D(); got != time.Minute {
		t.Errorf("loss_mean_every = %v", got)
	}
	if got := s.Drift.MaxOffset.D(); got != 50*time.Millisecond {
		t.Errorf("max_offset = %v", got)
	}
	if s.Interference.LevelDB != 60 || s.Interference.RadiusM != 300 {
		t.Errorf("interference = %+v", s.Interference)
	}
}

func TestDurRoundTrip(t *testing.T) {
	b, err := json.Marshal(Dur(90 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if string(b) != `"1m30s"` {
		t.Errorf("marshal = %s", b)
	}
	var d Dur
	if err := json.Unmarshal(b, &d); err != nil {
		t.Fatal(err)
	}
	if d.D() != 90*time.Second {
		t.Errorf("round trip = %v", d.D())
	}
	// Integer nanoseconds are accepted too.
	if err := json.Unmarshal([]byte("1500000000"), &d); err != nil {
		t.Fatal(err)
	}
	if d.D() != 1500*time.Millisecond {
		t.Errorf("ns form = %v", d.D())
	}
	if err := json.Unmarshal([]byte(`"bogus"`), &d); err == nil {
		t.Error("bad duration string accepted")
	}
}

func TestScenarioValidate(t *testing.T) {
	cases := []struct {
		name string
		sc   Scenario
		want string
	}{
		{"churn zero mean", Scenario{Churn: &ChurnSpec{MeanDown: Dur(time.Second), Fraction: 0.5}}, "churn means"},
		{"churn fraction", Scenario{Churn: &ChurnSpec{MeanUp: Dur(time.Second), MeanDown: Dur(time.Second), Fraction: 1.5}}, "fraction"},
		{"drift no sync", Scenario{Drift: &DriftSpec{SkewPPM: 10, Fraction: 0.5}}, "sync_every"},
		{"drift loss dur", Scenario{Drift: &DriftSpec{SkewPPM: 10, SyncEvery: Dur(time.Second), LossMeanEvery: Dur(time.Second), Fraction: 0.5}}, "loss_mean_dur"},
		{"shift jump", Scenario{DelayShift: &DelayShiftSpec{MeanEvery: Dur(time.Second), Fraction: 0.5}}, "max_jump_m"},
		{"outage means", Scenario{Outage: &OutageSpec{MeanEvery: Dur(time.Second), Fraction: 0.5}}, "outage means"},
		{"interference means", Scenario{Interference: &InterferenceSpec{MeanEvery: Dur(time.Second)}}, "interference means"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.sc.Validate()
			if err == nil {
				t.Fatal("invalid scenario accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
	empty := &Scenario{}
	if err := empty.Validate(); err != nil {
		t.Errorf("empty scenario rejected: %v", err)
	}
	if empty.Active() {
		t.Error("empty scenario reports active")
	}
	var nilSc *Scenario
	if nilSc.Active() {
		t.Error("nil scenario reports active")
	}
}
