package fault

import (
	"fmt"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

// Restartable is the protocol-side recovery hook: a crashed node that
// comes back cold-starts through it, dropping all volatile MAC state.
// All MACs in this repo implement it (mac.Base provides it to the
// four handshake protocols; slotted ALOHA has its own).
type Restartable interface{ Restart() }

// downReason tracks why a modem is silenced so overlapping fault
// classes (a crash during an outage, or vice versa) compose correctly:
// the modem comes back only when every reason has cleared.
type downReason uint8

const (
	downChurn downReason = 1 << iota
	downOutage
)

// member is one node under fault injection.
type member struct {
	id      packet.NodeID
	node    *topology.Node
	modem   *phy.Modem
	restart Restartable
	clock   *DriftClock
	churned bool
	shifted bool
	outaged bool
	down    downReason
}

// Injector schedules a Scenario's faults against a deployed network.
// Build it with NewInjector after topology deployment (clock
// assignment happens there, so MACs can be constructed with their
// drifting clocks), Register every node as its modem and protocol come
// up, then Start it once the protocols are running.
type Injector struct {
	eng     *sim.Engine
	sc      *Scenario
	net     *topology.Network
	rec     obs.Recorder
	members []*member
	byID    map[packet.NodeID]*member
}

// NewInjector assigns fault-class membership and clock parameters for
// every deployed node, drawing from dedicated RNG streams in node-ID
// order so the assignment is a pure function of (seed, scenario).
// Sinks are exempt from churn, drift, and delay shifts — they model
// maintained surface infrastructure with disciplined clocks — but
// share outages and interference with everyone else.
func NewInjector(eng *sim.Engine, sc *Scenario, net *topology.Network, rec obs.Recorder) *Injector {
	in := &Injector{
		eng:  eng,
		sc:   sc,
		net:  net,
		rec:  rec,
		byID: make(map[packet.NodeID]*member, net.Len()),
	}
	sel := eng.RNG("fault/select")
	for _, n := range net.Nodes() {
		m := &member{id: n.ID, node: n}
		if c := sc.Churn; c != nil && !n.Sink {
			m.churned = sel.Float64() < c.Fraction
		}
		if d := sc.Drift; d != nil && !n.Sink {
			if sel.Float64() < d.Fraction {
				offset := time.Duration((2*sel.Float64() - 1) * float64(d.MaxOffset))
				skew := (2*sel.Float64() - 1) * d.SkewPPM
				m.clock = NewDriftClock(offset, skew)
			}
		}
		if s := sc.DelayShift; s != nil && !n.Sink {
			m.shifted = sel.Float64() < s.Fraction
		}
		if o := sc.Outage; o != nil {
			m.outaged = sel.Float64() < o.Fraction
		}
		in.members = append(in.members, m)
		in.byID[n.ID] = m
	}
	return in
}

// ClockFor returns the node's drifting clock, or nil when the node
// keeps a perfect oscillator. Callers storing the result in an
// interface field (mac.Config.Clock) must check for nil first to
// avoid a typed-nil interface.
func (in *Injector) ClockFor(id packet.NodeID) *DriftClock {
	if m := in.byID[id]; m != nil {
		return m.clock
	}
	return nil
}

// Register attaches the node's modem and protocol so the injector can
// silence and cold-start it. proto may be nil (pure PHY experiments);
// a node whose protocol lacks Restart simply keeps its MAC state
// across churn, which is still a valid (battery-backed) failure model.
func (in *Injector) Register(id packet.NodeID, modem *phy.Modem, proto any) {
	m := in.byID[id]
	if m == nil {
		return
	}
	m.modem = modem
	m.restart, _ = proto.(Restartable)
}

// emit records one fault event on the observability bus.
func (in *Injector) emit(node packet.NodeID, kind, action, detail string) {
	obs.Fault{Node: node, Kind: kind, Action: action, Detail: detail}.Emit(in.rec, in.eng.Now())
}

// expAfter draws an exponential holding time with the given mean.
func expAfter(rng *sim.RNG, mean Dur) time.Duration {
	sec := rng.ExpFloat64Rate(1 / mean.D().Seconds())
	return time.Duration(sec * float64(time.Second))
}

// setDown adds reason to the member's down mask, silencing the modem
// on the first reason.
func (m *member) setDown(r downReason) {
	was := m.down != 0
	m.down |= r
	if !was && m.modem != nil {
		m.modem.SetDown(true)
	}
}

// clearDown removes reason; the modem recovers when no reason remains.
func (m *member) clearDown(r downReason) {
	m.down &^= r
	if m.down == 0 && m.modem != nil {
		m.modem.SetDown(false)
	}
}

// Start schedules every enabled fault class over [from, until). Fault
// processes are independent per class and per node, each on its own
// RNG stream. Events run at observer priority so same-instant
// PHY/MAC processing is never reordered by fault activity.
func (in *Injector) Start(from, until sim.Time) {
	if !in.sc.Active() {
		return
	}
	for _, m := range in.members {
		if m.churned {
			in.churnLoop(m, from, until)
		}
		if m.clock != nil {
			in.syncLoop(m, from, until)
			if d := in.sc.Drift; d.LossMeanEvery > 0 {
				in.syncLossLoop(m, from, until)
			}
		}
		if m.shifted {
			in.shiftLoop(m, from, until)
		}
		if m.outaged {
			in.outageLoop(m, from, until)
		}
	}
	if in.sc.Interference != nil {
		in.interferenceLoop(from, until)
	}
}

// churnLoop alternates exponential up and down periods. A crash
// silences the modem and, on recovery, cold-starts the protocol and
// re-disciplines the clock (a rebooted node resynchronizes first).
func (in *Injector) churnLoop(m *member, from, until sim.Time) {
	spec := in.sc.Churn
	rng := in.eng.RNG(fmt.Sprintf("fault/churn/%d", m.id))
	var crash, revive func()
	crash = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanUp))
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.setDown(downChurn)
			in.emit(m.id, "churn", obs.FaultInject, "crash")
			revive()
		})
	}
	revive = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanDown))
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.clearDown(downChurn)
			if m.clock != nil {
				m.clock.Sync(in.eng.Now())
			}
			if m.restart != nil {
				m.restart.Restart()
			}
			in.emit(m.id, "churn", obs.FaultClear, "recovered")
			crash()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, crash)
}

// syncLoop re-disciplines the clock every SyncEvery (ignored while a
// sync-loss episode is in progress — DriftClock.Sync is a no-op then).
// The clock starts undisciplined: its initial offset persists until
// the first sync epoch, one SyncEvery after faults begin.
func (in *Injector) syncLoop(m *member, from, until sim.Time) {
	every := in.sc.Drift.SyncEvery.D()
	var tick func()
	tick = func() {
		at := in.eng.Now().Add(every)
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.clock.Sync(in.eng.Now())
			tick()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, tick)
}

// syncLossLoop opens and closes sync-loss episodes during which the
// clock's error accumulates unchecked.
func (in *Injector) syncLossLoop(m *member, from, until sim.Time) {
	spec := in.sc.Drift
	rng := in.eng.RNG(fmt.Sprintf("fault/drift/%d", m.id))
	var open, shut func()
	open = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.LossMeanEvery))
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.clock.Desync(true)
			in.emit(m.id, "sync-loss", obs.FaultInject, "")
			shut()
		})
	}
	shut = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.LossMeanDur))
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.clock.Desync(false)
			err := m.clock.Err(in.eng.Now())
			in.emit(m.id, "sync-loss", obs.FaultClear, fmt.Sprintf("accumulated err %v", err))
			open()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, open)
}

// shiftLoop teleports the node a bounded random displacement at
// exponential intervals, invalidating neighbors' learned delays.
func (in *Injector) shiftLoop(m *member, from, until sim.Time) {
	spec := in.sc.DelayShift
	rng := in.eng.RNG(fmt.Sprintf("fault/shift/%d", m.id))
	var jump func()
	jump = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanEvery))
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			d := randUnit(rng).Scale(rng.Float64() * spec.MaxJumpM)
			m.node.Pos = in.net.Region.Clamp(m.node.Pos.Add(d))
			// Direct Pos mutation bypasses Network.Step, so the geometry
			// epoch must be advanced by hand or the channel would keep
			// serving pre-jump cached delays.
			in.net.Invalidate()
			in.emit(m.id, "delay-shift", obs.FaultInject, fmt.Sprintf("jump %.1fm", d.Norm()))
			jump()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, jump)
}

// randUnit draws a direction uniformly enough for displacement noise
// (cube sampling, normalized; the zero vector degrades to no jump).
func randUnit(rng *sim.RNG) vec.V3 {
	v := vec.V3{X: 2*rng.Float64() - 1, Y: 2*rng.Float64() - 1, Z: 2*rng.Float64() - 1}
	n := v.Norm()
	if n == 0 {
		return vec.V3{}
	}
	return v.Scale(1 / n)
}

// outageLoop silences the modem transiently; unlike churn the MAC
// keeps its state and resumes where it left off.
func (in *Injector) outageLoop(m *member, from, until sim.Time) {
	spec := in.sc.Outage
	rng := in.eng.RNG(fmt.Sprintf("fault/outage/%d", m.id))
	var begin, end func()
	begin = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanEvery))
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.setDown(downOutage)
			in.emit(m.id, "outage", obs.FaultInject, "")
			end()
		})
	}
	end = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanDur))
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			m.clearDown(downOutage)
			in.emit(m.id, "outage", obs.FaultClear, "")
			begin()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, begin)
}

// interferenceLoop strikes a random point at exponential intervals,
// raising the noise floor at every modem within radius for an
// exponential burst duration.
func (in *Injector) interferenceLoop(from, until sim.Time) {
	spec := in.sc.Interference
	rng := in.eng.RNG("fault/interference")
	var strike func()
	strike = func() {
		at := in.eng.Now().Add(expAfter(rng, spec.MeanEvery))
		if at.After(until) {
			return
		}
		in.eng.MustScheduleAt(at, sim.PriorityObserver, func() {
			sz := in.net.Region.Size()
			center := in.net.Region.Min.Add(vec.V3{
				X: rng.Float64() * sz.X,
				Y: rng.Float64() * sz.Y,
				Z: rng.Float64() * sz.Z,
			})
			dur := expAfter(rng, spec.MeanDur)
			hit := 0
			for _, m := range in.members {
				if m.modem == nil {
					continue
				}
				if spec.RadiusM > 0 && m.node.Pos.Dist(center) > spec.RadiusM {
					continue
				}
				m.modem.InjectInterference(spec.LevelDB, dur)
				hit++
			}
			in.emit(packet.Nobody, "interference", obs.FaultInject,
				fmt.Sprintf("burst %v at %v hit %d nodes", dur.Round(time.Millisecond), center, hit))
			strike()
		})
	}
	in.eng.MustScheduleAt(from, sim.PriorityObserver, strike)
}
