package fault

import (
	"fmt"
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

type nullMedium struct{}

func (nullMedium) Broadcast(packet.NodeID, *packet.Frame, time.Duration) error { return nil }

type fakeProto struct{ restarts int }

func (p *fakeProto) Restart() { p.restarts++ }

// rig is a minimal deployed network under injection: 3 sensors + 1 sink.
type rig struct {
	eng    *sim.Engine
	net    *topology.Network
	inj    *Injector
	modems map[packet.NodeID]*phy.Modem
	protos map[packet.NodeID]*fakeProto
	log    []string
}

func newRig(t *testing.T, seed int64, sc *Scenario) *rig {
	t.Helper()
	model := acoustic.DefaultModel()
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{X: -400, Y: -400, Z: 100}, Mobility: topology.MobilityStatic},
		{ID: 2, Pos: vec.V3{X: 0, Y: 0, Z: 500}, Mobility: topology.MobilityStatic},
		{ID: 3, Pos: vec.V3{X: 400, Y: 400, Z: 900}, Mobility: topology.MobilityStatic},
		{ID: 4, Pos: vec.V3{X: 0, Y: 0, Z: 0}, Sink: true, Mobility: topology.MobilityStatic},
	}
	net, err := topology.NewNetwork(vec.Cube(1000), model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	r := &rig{
		eng:    sim.NewEngine(seed),
		net:    net,
		modems: make(map[packet.NodeID]*phy.Modem),
		protos: make(map[packet.NodeID]*fakeProto),
	}
	rec := obs.RecorderFunc(func(at sim.Time, e obs.Event) {
		if f, ok := e.(*obs.Fault); ok {
			r.log = append(r.log, fmt.Sprintf("%v n%d %s/%s", at, f.Node, f.Kind, f.Action))
		}
	})
	r.inj = NewInjector(r.eng, sc, net, rec)
	for _, n := range nodes {
		m, err := phy.NewModem(phy.Config{
			ID: n.ID, Engine: r.eng, Model: model,
			Medium: nullMedium{}, Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		p := &fakeProto{}
		r.inj.Register(n.ID, m, p)
		r.modems[n.ID] = m
		r.protos[n.ID] = p
	}
	return r
}

func (r *rig) run(until time.Duration) {
	r.inj.Start(sim.At(0), sim.At(until))
	r.eng.RunUntil(sim.At(until))
}

func TestChurnCrashesAndRestarts(t *testing.T) {
	sc := &Scenario{Churn: &ChurnSpec{
		MeanUp: Dur(10 * time.Second), MeanDown: Dur(3 * time.Second), Fraction: 1,
	}}
	r := newRig(t, 1, sc)
	r.run(120 * time.Second)

	crashes, recoveries := 0, 0
	for _, l := range r.log {
		if l[len(l)-len("inject"):] == "inject" {
			crashes++
		} else {
			recoveries++
		}
	}
	if crashes == 0 {
		t.Fatal("no crashes in 120s with 10s mean uptime")
	}
	if recoveries > crashes || crashes > recoveries+3 {
		t.Errorf("crashes=%d recoveries=%d inconsistent", crashes, recoveries)
	}
	total := 0
	for id, p := range r.protos {
		if id == 4 && p.restarts > 0 {
			t.Error("sink was churned")
		}
		total += p.restarts
	}
	if total != recoveries {
		t.Errorf("restarts=%d, want one per recovery (%d)", total, recoveries)
	}
	if r.protos[4].restarts != 0 || r.modems[4].Down() {
		t.Error("sink affected by churn")
	}
}

func TestDriftClocksAssignedAndSynced(t *testing.T) {
	sc := &Scenario{Drift: &DriftSpec{
		SkewPPM: 100, MaxOffset: Dur(20 * time.Millisecond),
		SyncEvery: Dur(30 * time.Second), Fraction: 1,
	}}
	r := newRig(t, 2, sc)
	if r.inj.ClockFor(4) != nil {
		t.Error("sink got a drifting clock")
	}
	withErr := 0
	for _, id := range []packet.NodeID{1, 2, 3} {
		c := r.inj.ClockFor(id)
		if c == nil {
			t.Fatalf("node %d missing clock at fraction 1", id)
		}
		if c.Err(sim.At(0)) != 0 || c.Err(sim.At(time.Minute)) != 0 {
			withErr++
		}
	}
	if withErr == 0 {
		t.Error("no clock has any error despite skew and offset bounds")
	}
	r.run(100 * time.Second)
	// After the last sync epoch (t=90s) error is bounded by 10s of skew:
	// 100 ppm * 10s = 1ms, plus rounding.
	for _, id := range []packet.NodeID{1, 2, 3} {
		if err := r.inj.ClockFor(id).Err(sim.At(100 * time.Second)); err > 2*time.Millisecond || err < -2*time.Millisecond {
			t.Errorf("node %d clock error %v after discipline", id, err)
		}
	}
}

func TestDelayShiftMovesNodesInsideRegion(t *testing.T) {
	sc := &Scenario{DelayShift: &DelayShiftSpec{
		MeanEvery: Dur(10 * time.Second), MaxJumpM: 200, Fraction: 1,
	}}
	r := newRig(t, 3, sc)
	before := make(map[packet.NodeID]vec.V3)
	for _, n := range r.net.Nodes() {
		before[n.ID] = n.Pos
	}
	r.run(120 * time.Second)
	moved := 0
	for _, n := range r.net.Nodes() {
		if n.Pos != before[n.ID] {
			if n.Sink {
				t.Error("sink teleported")
			}
			moved++
		}
		if !r.net.Region.Contains(n.Pos) {
			t.Errorf("node %d shifted outside the region: %v", n.ID, n.Pos)
		}
	}
	if moved == 0 {
		t.Error("no node moved in 120s with 10s mean shift interval")
	}
}

func TestOutageSilencesTransiently(t *testing.T) {
	sc := &Scenario{Outage: &OutageSpec{
		MeanEvery: Dur(10 * time.Second), MeanDur: Dur(2 * time.Second), Fraction: 1,
	}}
	r := newRig(t, 4, sc)
	r.run(200 * time.Second)
	if len(r.log) == 0 {
		t.Fatal("no outage events")
	}
	for _, p := range r.protos {
		if p.restarts != 0 {
			t.Error("outage cold-started a protocol (only churn should)")
		}
	}
}

func TestDownReasonsCompose(t *testing.T) {
	r := newRig(t, 5, &Scenario{})
	m := r.inj.byID[1]
	m.setDown(downChurn)
	m.setDown(downOutage)
	if !r.modems[1].Down() {
		t.Fatal("modem up despite two down reasons")
	}
	m.clearDown(downOutage)
	if !r.modems[1].Down() {
		t.Error("modem revived while still crashed")
	}
	m.clearDown(downChurn)
	if r.modems[1].Down() {
		t.Error("modem still down with no reasons left")
	}
}

func TestInjectionDeterministicPerSeed(t *testing.T) {
	sc := &Scenario{
		Churn: &ChurnSpec{MeanUp: Dur(15 * time.Second), MeanDown: Dur(5 * time.Second), Fraction: 0.7},
		Drift: &DriftSpec{SkewPPM: 50, SyncEvery: Dur(20 * time.Second),
			LossMeanEvery: Dur(30 * time.Second), LossMeanDur: Dur(10 * time.Second), Fraction: 0.7},
		Outage:       &OutageSpec{MeanEvery: Dur(25 * time.Second), MeanDur: Dur(3 * time.Second), Fraction: 0.7},
		DelayShift:   &DelayShiftSpec{MeanEvery: Dur(30 * time.Second), MaxJumpM: 100, Fraction: 0.7},
		Interference: &InterferenceSpec{MeanEvery: Dur(20 * time.Second), MeanDur: Dur(2 * time.Second), LevelDB: 60, RadiusM: 600},
	}
	run := func(seed int64) []string {
		r := newRig(t, seed, sc)
		r.run(180 * time.Second)
		return r.log
	}
	a, b := run(11), run(11)
	if len(a) == 0 {
		t.Fatal("no fault events in a fully enabled scenario")
	}
	if fmt.Sprint(a) != fmt.Sprint(b) {
		t.Error("same seed produced different fault timelines")
	}
	c := run(12)
	if fmt.Sprint(a) == fmt.Sprint(c) {
		t.Error("different seeds produced identical fault timelines")
	}
}
