package traffic

import (
	"math"
	"testing"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

type collector struct {
	pkts []mac.AppPacket
}

func (c *collector) Enqueue(p mac.AppPacket) { c.pkts = append(c.pkts, p) }

func okRoute(packet.NodeID) (packet.NodeID, bool) { return 9, true }

func TestPerNodeRate(t *testing.T) {
	// 0.8 kbps network-wide, 2048-bit packets, 60 nodes:
	// 800/2048/60 packets per second per node.
	got := PerNodeRate(0.8, 2048, 60)
	want := 800.0 / 2048 / 60
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("PerNodeRate = %v, want %v", got, want)
	}
	if PerNodeRate(0, 2048, 60) != 0 || PerNodeRate(1, 0, 60) != 0 || PerNodeRate(1, 2048, 0) != 0 {
		t.Error("degenerate rates should be 0")
	}
}

func TestGeneratorPoissonVolume(t *testing.T) {
	eng := sim.NewEngine(7)
	c := &collector{}
	// Rate 1 pkt/s over 200 s → ~200 packets; Poisson 3σ ≈ 42.
	g, err := NewGenerator(Config{
		Node:    3,
		Engine:  eng,
		Sink:    c,
		Route:   okRoute,
		RatePPS: 1,
		Bits:    2048,
		Start:   sim.At(10 * time.Second),
		Stop:    sim.At(210 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run()
	n := len(c.pkts)
	if n < 150 || n > 250 {
		t.Fatalf("generated %d packets for E=200", n)
	}
	if g.Generated() != uint64(n) {
		t.Errorf("Generated() = %d, want %d", g.Generated(), n)
	}
	seen := map[uint32]bool{}
	for _, p := range c.pkts {
		if p.Origin != 3 || p.Dst != 9 || p.Bits != 2048 {
			t.Fatalf("bad packet %+v", p)
		}
		if p.GeneratedAt < 10*time.Second || p.GeneratedAt > 210*time.Second {
			t.Fatalf("packet outside window: %v", p.GeneratedAt)
		}
		if seen[p.Seq] {
			t.Fatalf("duplicate seq %d", p.Seq)
		}
		seen[p.Seq] = true
	}
}

func TestGeneratorRespectsWindow(t *testing.T) {
	eng := sim.NewEngine(1)
	c := &collector{}
	g, err := NewGenerator(Config{
		Node: 1, Engine: eng, Sink: c, Route: okRoute,
		RatePPS: 100, Bits: 1024,
		Start: sim.At(5 * time.Second), Stop: sim.At(6 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run()
	for _, p := range c.pkts {
		if p.GeneratedAt < 5*time.Second || p.GeneratedAt > 6*time.Second {
			t.Fatalf("arrival at %v outside [5s, 6s]", p.GeneratedAt)
		}
	}
	if len(c.pkts) == 0 {
		t.Fatal("no packets in a 100 pps window")
	}
}

func TestGeneratorZeroRateSilent(t *testing.T) {
	eng := sim.NewEngine(1)
	c := &collector{}
	g, err := NewGenerator(Config{
		Node: 1, Engine: eng, Sink: c, Route: okRoute,
		RatePPS: 0, Bits: 1024,
		Start: sim.Epoch, Stop: sim.At(time.Hour),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run()
	if len(c.pkts) != 0 {
		t.Error("zero-rate generator produced packets")
	}
}

func TestGeneratorUnroutedCounted(t *testing.T) {
	eng := sim.NewEngine(1)
	c := &collector{}
	noRoute := func(packet.NodeID) (packet.NodeID, bool) { return packet.Nobody, false }
	g, err := NewGenerator(Config{
		Node: 1, Engine: eng, Sink: c, Route: noRoute,
		RatePPS: 10, Bits: 1024,
		Start: sim.Epoch, Stop: sim.At(10 * time.Second),
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Start()
	eng.Run()
	if len(c.pkts) != 0 {
		t.Error("unroutable packets enqueued")
	}
	if g.Unrouted() == 0 {
		t.Error("unrouted drops not counted")
	}
}

func TestGeneratorValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	base := Config{
		Node: 1, Engine: eng, Sink: &collector{}, Route: okRoute,
		RatePPS: 1, Bits: 1024, Start: sim.Epoch, Stop: sim.At(time.Second),
	}
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"no node", func(c *Config) { c.Node = packet.Nobody }},
		{"nil engine", func(c *Config) { c.Engine = nil }},
		{"nil sink", func(c *Config) { c.Sink = nil }},
		{"nil route", func(c *Config) { c.Route = nil }},
		{"zero bits", func(c *Config) { c.Bits = 0 }},
		{"negative rate", func(c *Config) { c.RatePPS = -1 }},
		{"empty window", func(c *Config) { c.Stop = c.Start }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.edit(&cfg)
			if _, err := NewGenerator(cfg); err == nil {
				t.Error("NewGenerator accepted invalid config")
			}
		})
	}
}

func TestGeneratorDeterministicPerSeed(t *testing.T) {
	run := func(seed int64) []time.Duration {
		eng := sim.NewEngine(seed)
		c := &collector{}
		g, err := NewGenerator(Config{
			Node: 1, Engine: eng, Sink: c, Route: okRoute,
			RatePPS: 2, Bits: 1024, Start: sim.Epoch, Stop: sim.At(50 * time.Second),
		})
		if err != nil {
			t.Fatal(err)
		}
		g.Start()
		eng.Run()
		var out []time.Duration
		for _, p := range c.pkts {
			out = append(out, p.GeneratedAt)
		}
		return out
	}
	a, b := run(5), run(5)
	if len(a) != len(b) {
		t.Fatal("same-seed runs differ in volume")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same-seed runs differ in arrival times")
		}
	}
	if c := run(6); len(c) == len(a) && len(a) > 0 && c[0] == a[0] {
		t.Error("different seeds look identical")
	}
}

func TestFixedBatch(t *testing.T) {
	eng := sim.NewEngine(1)
	c := &collector{}
	made := FixedBatch(eng, c, okRoute, 4, 2048, 15, sim.At(3*time.Second))
	if made != 15 {
		t.Fatalf("FixedBatch returned %d", made)
	}
	eng.Run()
	if len(c.pkts) != 15 {
		t.Fatalf("delivered %d packets, want 15", len(c.pkts))
	}
	seqs := map[uint32]bool{}
	for _, p := range c.pkts {
		if p.GeneratedAt != 3*time.Second {
			t.Errorf("batch packet at %v, want 3s", p.GeneratedAt)
		}
		if seqs[p.Seq] {
			t.Errorf("duplicate batch seq %d", p.Seq)
		}
		seqs[p.Seq] = true
	}
}
