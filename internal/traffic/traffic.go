// Package traffic generates the offered load of the paper's
// evaluation: a network-wide Poisson process of fixed-size data
// packets, expressed in kbps of generated payload (Figure 8 calibrates
// the unit: "20 packets per 300 s ≈ 0.136 kbps" at 2048-bit packets).
// Each non-sink node runs an independent Poisson stream of rate
// λ/N so the aggregate is the configured network-wide load.
package traffic

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Sink accepts generated packets (implemented by mac.Protocol).
type Sink interface {
	Enqueue(p mac.AppPacket)
}

// Router resolves a generator node's next hop at packet-creation time.
type Router func(from packet.NodeID) (packet.NodeID, bool)

// Generator drives Poisson arrivals for one node.
type Generator struct {
	node    packet.NodeID
	eng     *sim.Engine
	rng     *sim.RNG
	sink    Sink
	route   Router
	rate    float64 // packets per second
	bits    int
	seq     uint32
	stopAt  sim.Time
	startAt sim.Time

	// Closed-loop mode: backpressure is the MAC's congestion signal;
	// normal-priority packets are withheld (counted in throttled) while
	// it reports overload. highEvery > 0 marks every Nth packet
	// high-priority; high packets are never throttled.
	backpressure func() bool
	highEvery    int

	generated uint64
	unrouted  uint64
	throttled uint64
}

// Config assembles a Generator.
type Config struct {
	Node   packet.NodeID
	Engine *sim.Engine
	Sink   Sink
	Route  Router
	// RatePPS is this node's Poisson rate in packets per second.
	RatePPS float64
	// Bits is the payload size of every generated packet.
	Bits int
	// Start and Stop bound the generation window.
	Start, Stop sim.Time
	// Backpressure, when non-nil, turns the generator closed-loop: each
	// normal-priority arrival consults it and is withheld (not offered
	// to the MAC) while it reports true. Nil keeps the historical
	// open-loop behaviour. The Poisson schedule itself is untouched, so
	// the RNG stream is identical either way.
	Backpressure func() bool
	// HighEvery marks every Nth generated packet high-priority (0 =
	// never). High packets bypass the backpressure check.
	HighEvery int
}

// NewGenerator validates cfg and returns an unstarted generator.
func NewGenerator(cfg Config) (*Generator, error) {
	switch {
	case cfg.Node == packet.Nobody:
		return nil, errors.New("traffic: no node")
	case cfg.Engine == nil:
		return nil, errors.New("traffic: nil engine")
	case cfg.Sink == nil:
		return nil, errors.New("traffic: nil sink")
	case cfg.Route == nil:
		return nil, errors.New("traffic: nil router")
	case cfg.Bits <= 0:
		return nil, fmt.Errorf("traffic: %d payload bits", cfg.Bits)
	case cfg.RatePPS < 0:
		return nil, fmt.Errorf("traffic: negative rate %v", cfg.RatePPS)
	case cfg.Stop <= cfg.Start:
		return nil, fmt.Errorf("traffic: window [%v, %v] empty", cfg.Start, cfg.Stop)
	case cfg.HighEvery < 0:
		return nil, fmt.Errorf("traffic: negative HighEvery %d", cfg.HighEvery)
	}
	return &Generator{
		node:         cfg.Node,
		eng:          cfg.Engine,
		rng:          cfg.Engine.RNG(fmt.Sprintf("traffic/%d", cfg.Node)),
		sink:         cfg.Sink,
		route:        cfg.Route,
		rate:         cfg.RatePPS,
		bits:         cfg.Bits,
		startAt:      cfg.Start,
		stopAt:       cfg.Stop,
		backpressure: cfg.Backpressure,
		highEvery:    cfg.HighEvery,
	}, nil
}

// Start arms the first arrival.
func (g *Generator) Start() {
	if g.rate <= 0 {
		return
	}
	g.scheduleNext(g.startAt)
}

func (g *Generator) scheduleNext(from sim.Time) {
	gap := time.Duration(g.rng.ExpFloat64Rate(g.rate) * float64(time.Second))
	at := from.Add(gap)
	if at.After(g.stopAt) {
		return
	}
	g.eng.MustScheduleAt(at, sim.PriorityApp, func() {
		g.fire()
		g.scheduleNext(g.eng.Now())
	})
}

func (g *Generator) fire() {
	dst, ok := g.route(g.node)
	if !ok {
		g.unrouted++
		return
	}
	g.seq++
	high := g.highEvery > 0 && g.seq%uint32(g.highEvery) == 0
	if g.backpressure != nil && !high && g.backpressure() {
		// Closed loop: the MAC says it is overloaded, so this arrival
		// is withheld at the source rather than shed at the queue. The
		// sequence number is still consumed — the stream's identity is
		// its schedule, not its admissions.
		g.throttled++
		return
	}
	g.generated++
	g.sink.Enqueue(mac.AppPacket{
		Dst:         dst,
		Bits:        g.bits,
		Origin:      g.node,
		Seq:         g.seq,
		GeneratedAt: g.eng.Now().Duration(),
		High:        high,
	})
}

// Generated reports packets handed to the MAC.
func (g *Generator) Generated() uint64 { return g.generated }

// Unrouted reports packets dropped for lack of a next hop.
func (g *Generator) Unrouted() uint64 { return g.unrouted }

// Throttled reports packets withheld at the source by backpressure.
func (g *Generator) Throttled() uint64 { return g.throttled }

// PerNodeRate converts a network-wide offered load in kbps into the
// per-node Poisson rate in packets per second for n generating nodes
// sending packets of the given payload size.
func PerNodeRate(loadKbps float64, bits, n int) float64 {
	if loadKbps <= 0 || bits <= 0 || n <= 0 {
		return 0
	}
	return loadKbps * 1000 / float64(bits) / float64(n)
}

// FixedBatch enqueues count packets at the given instants — the
// workload of Figure 8 ("time for successful transmission" of a fixed
// number of packets).
func FixedBatch(eng *sim.Engine, sink Sink, route Router, node packet.NodeID, bits, count int, at sim.Time) uint64 {
	var made uint64
	for i := 0; i < count; i++ {
		i := i
		eng.MustScheduleAt(at, sim.PriorityApp, func() {
			dst, ok := route(node)
			if !ok {
				return
			}
			sink.Enqueue(mac.AppPacket{
				Dst:         dst,
				Bits:        bits,
				Origin:      node,
				Seq:         uint32(i + 1),
				GeneratedAt: eng.Now().Duration(),
			})
		})
		made++
	}
	return made
}
