// Package traffic generates the offered load of the paper's
// evaluation: a network-wide Poisson process of fixed-size data
// packets, expressed in kbps of generated payload (Figure 8 calibrates
// the unit: "20 packets per 300 s ≈ 0.136 kbps" at 2048-bit packets).
// Each non-sink node runs an independent Poisson stream of rate
// λ/N so the aggregate is the configured network-wide load.
package traffic

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Sink accepts generated packets (implemented by mac.Protocol).
type Sink interface {
	Enqueue(p mac.AppPacket)
}

// Router resolves a generator node's next hop at packet-creation time.
type Router func(from packet.NodeID) (packet.NodeID, bool)

// Generator drives Poisson arrivals for one node.
type Generator struct {
	node    packet.NodeID
	eng     *sim.Engine
	rng     *sim.RNG
	sink    Sink
	route   Router
	rate    float64 // packets per second
	bits    int
	seq     uint32
	stopAt  sim.Time
	startAt sim.Time

	generated uint64
	unrouted  uint64
}

// Config assembles a Generator.
type Config struct {
	Node   packet.NodeID
	Engine *sim.Engine
	Sink   Sink
	Route  Router
	// RatePPS is this node's Poisson rate in packets per second.
	RatePPS float64
	// Bits is the payload size of every generated packet.
	Bits int
	// Start and Stop bound the generation window.
	Start, Stop sim.Time
}

// NewGenerator validates cfg and returns an unstarted generator.
func NewGenerator(cfg Config) (*Generator, error) {
	switch {
	case cfg.Node == packet.Nobody:
		return nil, errors.New("traffic: no node")
	case cfg.Engine == nil:
		return nil, errors.New("traffic: nil engine")
	case cfg.Sink == nil:
		return nil, errors.New("traffic: nil sink")
	case cfg.Route == nil:
		return nil, errors.New("traffic: nil router")
	case cfg.Bits <= 0:
		return nil, fmt.Errorf("traffic: %d payload bits", cfg.Bits)
	case cfg.RatePPS < 0:
		return nil, fmt.Errorf("traffic: negative rate %v", cfg.RatePPS)
	case cfg.Stop <= cfg.Start:
		return nil, fmt.Errorf("traffic: window [%v, %v] empty", cfg.Start, cfg.Stop)
	}
	return &Generator{
		node:    cfg.Node,
		eng:     cfg.Engine,
		rng:     cfg.Engine.RNG(fmt.Sprintf("traffic/%d", cfg.Node)),
		sink:    cfg.Sink,
		route:   cfg.Route,
		rate:    cfg.RatePPS,
		bits:    cfg.Bits,
		startAt: cfg.Start,
		stopAt:  cfg.Stop,
	}, nil
}

// Start arms the first arrival.
func (g *Generator) Start() {
	if g.rate <= 0 {
		return
	}
	g.scheduleNext(g.startAt)
}

func (g *Generator) scheduleNext(from sim.Time) {
	gap := time.Duration(g.rng.ExpFloat64Rate(g.rate) * float64(time.Second))
	at := from.Add(gap)
	if at.After(g.stopAt) {
		return
	}
	g.eng.MustScheduleAt(at, sim.PriorityApp, func() {
		g.fire()
		g.scheduleNext(g.eng.Now())
	})
}

func (g *Generator) fire() {
	dst, ok := g.route(g.node)
	if !ok {
		g.unrouted++
		return
	}
	g.seq++
	g.generated++
	g.sink.Enqueue(mac.AppPacket{
		Dst:         dst,
		Bits:        g.bits,
		Origin:      g.node,
		Seq:         g.seq,
		GeneratedAt: g.eng.Now().Duration(),
	})
}

// Generated reports packets handed to the MAC.
func (g *Generator) Generated() uint64 { return g.generated }

// Unrouted reports packets dropped for lack of a next hop.
func (g *Generator) Unrouted() uint64 { return g.unrouted }

// PerNodeRate converts a network-wide offered load in kbps into the
// per-node Poisson rate in packets per second for n generating nodes
// sending packets of the given payload size.
func PerNodeRate(loadKbps float64, bits, n int) float64 {
	if loadKbps <= 0 || bits <= 0 || n <= 0 {
		return 0
	}
	return loadKbps * 1000 / float64(bits) / float64(n)
}

// FixedBatch enqueues count packets at the given instants — the
// workload of Figure 8 ("time for successful transmission" of a fixed
// number of packets).
func FixedBatch(eng *sim.Engine, sink Sink, route Router, node packet.NodeID, bits, count int, at sim.Time) uint64 {
	var made uint64
	for i := 0; i < count; i++ {
		i := i
		eng.MustScheduleAt(at, sim.PriorityApp, func() {
			dst, ok := route(node)
			if !ok {
				return
			}
			sink.Enqueue(mac.AppPacket{
				Dst:         dst,
				Bits:        bits,
				Origin:      node,
				Seq:         uint32(i + 1),
				GeneratedAt: eng.Now().Duration(),
			})
		})
		made++
	}
	return made
}
