package routing

import (
	"testing"

	"ewmac/internal/acoustic"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

func network(t *testing.T, nodes []*topology.Node) *topology.Network {
	t.Helper()
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, acoustic.DefaultModel(), nodes)
	if err != nil {
		t.Fatal(err)
	}
	return net
}

func TestNextHopPicksNearestShallower(t *testing.T) {
	net := network(t, []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 0}, Sink: true},
		{ID: 2, Pos: vec.V3{X: 600, Z: 300}},
		{ID: 3, Pos: vec.V3{X: 110, Z: 380}}, // nearest qualifying parent of 4
		{ID: 4, Pos: vec.V3{X: 100, Z: 800}},
	})
	hop, ok := NextHop(net, 4)
	if !ok || hop != 3 {
		t.Errorf("NextHop(4) = %v, %v; want node 3", hop, ok)
	}
	hop, ok = NextHop(net, 3)
	if !ok || hop != 1 {
		t.Errorf("NextHop(3) = %v, %v; want the sink", hop, ok)
	}
}

func TestNextHopIgnoresDeeperAndTinyGains(t *testing.T) {
	net := network(t, []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 0}, Sink: true},
		{ID: 2, Pos: vec.V3{X: 10, Z: 500}},
		{ID: 3, Pos: vec.V3{X: 20, Z: 500 - MinDepthGain/2}}, // not enough depth gain
		{ID: 4, Pos: vec.V3{X: 15, Z: 900}},                  // deeper
	})
	hop, ok := NextHop(net, 2)
	if !ok || hop != 1 {
		t.Errorf("NextHop(2) = %v, %v; want sink (3 is not shallower enough, 4 is deeper)", hop, ok)
	}
}

func TestNextHopFallsBackToSink(t *testing.T) {
	// Node 2 is the shallowest sensor but a sink is in range.
	net := network(t, []*topology.Node{
		{ID: 1, Pos: vec.V3{X: 500, Z: 0}, Sink: true},
		{ID: 2, Pos: vec.V3{Z: 0.5}},
	})
	hop, ok := NextHop(net, 2)
	if !ok || hop != 1 {
		t.Errorf("NextHop = %v, %v; want sink fallback", hop, ok)
	}
}

func TestNextHopUnreachable(t *testing.T) {
	net := network(t, []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 0}, Sink: true},
		{ID: 2, Pos: vec.V3{X: 9000, Z: 500}}, // out of range of everything
	})
	if _, ok := NextHop(net, 2); ok {
		t.Error("isolated node found a next hop")
	}
	if _, ok := NextHop(net, 99); ok {
		t.Error("unknown node found a next hop")
	}
}

func TestHopCountReachesSink(t *testing.T) {
	// A vertical chain, 700 m between nodes.
	nodes := []*topology.Node{{ID: 1, Pos: vec.V3{Z: 0}, Sink: true}}
	for i := 2; i <= 5; i++ {
		nodes = append(nodes, &topology.Node{ID: packet.NodeID(i), Pos: vec.V3{Z: float64(i-1) * 700}})
	}
	net := network(t, nodes)
	hops, out := HopCount(net, 5, 10)
	if out != HopReached || hops != 4 {
		t.Errorf("HopCount = %d, %v; want 4 hops to sink", hops, out)
	}
	// A budget smaller than the path is exhaustion, not a dead end.
	if hops, out := HopCount(net, 5, 2); out != HopBudgetExceeded || hops != 2 {
		t.Errorf("HopCount under budget = %d, %v; want 2 hops, budget-exceeded", hops, out)
	}
}

func TestHopCountDeadEndReportsHopsWalked(t *testing.T) {
	// 2 routes to 1 (700 m shallower, in range); 1 is stuck: nothing in
	// range is shallower or a sink. The walk takes exactly one hop.
	net := network(t, []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 700}},
		{ID: 2, Pos: vec.V3{Z: 1400}},
	})
	hops, out := HopCount(net, 2, 10)
	if out != HopNoRoute || hops != 1 {
		t.Errorf("HopCount to dead end = %d, %v; want 1 hop walked, no-route", hops, out)
	}
	// A stuck starting node walks zero hops.
	if hops, out := HopCount(net, 1, 10); out != HopNoRoute || hops != 0 {
		t.Errorf("HopCount from stuck node = %d, %v; want 0 hops, no-route", hops, out)
	}
	// An unknown starting node is a zero-hop no-route, not a panic.
	if hops, out := HopCount(net, 99, 10); out != HopNoRoute || hops != 0 {
		t.Errorf("HopCount from unknown node = %d, %v; want 0 hops, no-route", hops, out)
	}
}

func TestHopCountOutcomeStrings(t *testing.T) {
	for _, c := range []struct {
		o    HopOutcome
		want string
	}{
		{HopReached, "reached"}, {HopNoRoute, "no-route"},
		{HopBudgetExceeded, "budget-exceeded"}, {HopOutcome(42), "HopOutcome(42)"},
	} {
		if got := c.o.String(); got != c.want {
			t.Errorf("HopOutcome(%d).String() = %q, want %q", int(c.o), got, c.want)
		}
	}
}

func TestDeployedNetworkFullyRouted(t *testing.T) {
	net, err := topology.Deploy(topology.DeployConfig{
		Nodes:  60,
		Sinks:  4,
		Region: vec.Cube(1000),
	}, acoustic.DefaultModel(), sim.NewEngine(1).RNG("deploy"))
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range net.Nodes() {
		if n.Sink {
			continue
		}
		if _, ok := NextHop(net, n.ID); !ok {
			t.Errorf("node %v has no route", n.ID)
		}
		if hops, out := HopCount(net, n.ID, 32); out != HopReached {
			t.Errorf("node %v cannot reach a sink (%v after %d hops)", n.ID, out, hops)
		}
	}
}
