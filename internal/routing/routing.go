// Package routing provides the depth-greedy next-hop selection the
// paper's system model implies (Figure 1): sensors at greater depths
// transmit toward sensors closer to the surface, where sinks collect
// the data. The paper assumes localization is handled by dedicated
// protocols (§3.1, refs [23,24]), so next hops are computed from the
// topology's ground truth rather than learned.
//
// The choice of the *nearest* shallower neighbor (rather than the
// farthest-progress one) is deliberate: it is the energy-minimizing
// greedy rule common in UASN routing, and it is what couples node
// density to pairwise propagation delay — the effect behind Figure 7
// (denser networks → closer next hops → smaller exploitable waiting
// windows).
package routing

import (
	"fmt"
	"math"

	"ewmac/internal/packet"
	"ewmac/internal/topology"
)

// MinDepthGain is how much shallower (in meters) a candidate must be
// to count as progress toward the surface. The value does double duty:
// it bounds hop count, and it concentrates each node's traffic on a
// small set of parents, reproducing the convergecast fan-in of the
// paper's Figure 1 — without fan-in, the same-target contention that
// triggers extra communications (Figure 4) almost never arises. See
// DESIGN.md, calibration decision 3.
const MinDepthGain = 400.0

// NextHop returns the nearest in-range neighbor that is at least
// MinDepthGain shallower than from; sinks qualify like any other node.
// If no shallower neighbor is in range it falls back to the nearest
// in-range sink, and reports false if neither exists.
func NextHop(net *topology.Network, from packet.NodeID) (packet.NodeID, bool) {
	src := net.Node(from)
	if src == nil {
		return packet.Nobody, false
	}
	best := packet.Nobody
	bestDist := math.Inf(1)
	var fallback packet.NodeID
	fallbackDist := math.Inf(1)
	for _, n := range net.Nodes() {
		if n.ID == from {
			continue
		}
		if !net.Model.InRange(src.Pos, n.Pos) {
			continue
		}
		d := src.Pos.Dist(n.Pos)
		if n.Pos.Depth() <= src.Pos.Depth()-MinDepthGain {
			if d < bestDist {
				best, bestDist = n.ID, d
			}
		}
		if n.Sink && d < fallbackDist {
			fallback, fallbackDist = n.ID, d
		}
	}
	if best != packet.Nobody {
		return best, true
	}
	if fallback != packet.Nobody {
		return fallback, true
	}
	return packet.Nobody, false
}

// HopOutcome classifies how a HopCount walk ended.
type HopOutcome int

const (
	// HopReached: a sink was reached; the hop count is the path length.
	HopReached HopOutcome = iota
	// HopNoRoute: the walk hit a node with no next hop; the hop count
	// is the hops actually walked before getting stuck (0 when the
	// starting node itself has no route).
	HopNoRoute
	// HopBudgetExceeded: maxHops hops were walked without reaching a
	// sink — a routing loop, or a budget smaller than the path.
	HopBudgetExceeded
)

// String renders the outcome for test failures and logs.
func (o HopOutcome) String() string {
	switch o {
	case HopReached:
		return "reached"
	case HopNoRoute:
		return "no-route"
	case HopBudgetExceeded:
		return "budget-exceeded"
	default:
		return fmt.Sprintf("HopOutcome(%d)", int(o))
	}
}

// HopCount walks next hops from a node until a sink is reached,
// returning the hops actually walked and how the walk ended. maxHops
// bounds the walk (guarding against routing loops on degenerate
// topologies); a walk cut by the budget reports HopBudgetExceeded,
// distinct from the HopNoRoute dead end.
func HopCount(net *topology.Network, from packet.NodeID, maxHops int) (int, HopOutcome) {
	cur := from
	for h := 1; h <= maxHops; h++ {
		next, ok := NextHop(net, cur)
		if !ok {
			// Hop h was never taken: only h-1 hops were walked.
			return h - 1, HopNoRoute
		}
		if n := net.Node(next); n != nil && n.Sink {
			return h, HopReached
		}
		cur = next
	}
	return maxHops, HopBudgetExceeded
}
