package obs

import (
	"io"
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// These tests pin the steady-state record path to zero allocations
// per event: the pooled Emit helpers box nothing, the hand-rolled
// JSONL encoders format into recycled buffers, and the Collector's
// folds intern every key they touch. A regression here is the
// "obs-on tax" coming back; the benchjson alloc gate in CI guards the
// same property end to end.

// steadyEvents covers every producer-side event shape. The frames are
// shared (the channel's copy-on-write frames behave the same way) and
// the strings are the interned constants real emission sites pass.
func steadyState() (at sim.Time, f *packet.Frame, emit func(Recorder)) {
	f = &packet.Frame{
		Kind: packet.KindData, Src: 3, Dst: 7, Seq: 41,
		Origin: 3, DataBits: 2048, XID: 99,
	}
	at = sim.At(1500 * time.Millisecond)
	emit = func(r Recorder) {
		FrameEmit{Src: 3, Dst: 7, Frame: f, Delay: 137 * time.Millisecond, LevelDB: 118.25}.Emit(r, at)
		TxBegin{Node: 3, Frame: f, Dur: 682 * time.Millisecond}.Emit(r, at)
		FrameRx{Node: 7, Frame: f}.Emit(r, at)
		FrameLoss{Node: 7, Frame: f, Reason: "collision"}.Emit(r, at)
		MACState{Node: 2, From: "idle", To: "wait-cts", Slot: 19}.Emit(r, at)
		Contention{Node: 2, Peer: 5, Outcome: ContentionWon, Slot: 19, XID: 99}.Emit(r, at)
		SlotPeriod{Node: 4, Peer: 6, Period: "III", Slot: 20}.Emit(r, at)
		Delivery{Node: 7, Origin: 3, Seq: 41, Bits: 2048, Latency: time.Second, XID: 99}.Emit(r, at)
		Extra{Node: 1, Peer: 2, Action: ExtraDeny, Reason: "gap-too-small", XID: 5, Parent: 4}.Emit(r, at)
		Recovery{Node: 3, Peer: 8, Action: RecoverySuspect, Detail: "2 failures"}.Emit(r, at)
		PacketDrop{Node: 5, Peer: 9, Reason: DropRetryExhausted, Origin: 5, Seq: 77}.Emit(r, at)
		OracleViolation{Node: 7, Frame: f, Reason: OracleCapture, Detail: "overlap"}.Emit(r, at)
		Fault{Node: 6, Kind: "outage", Action: FaultInject}.Emit(r, at)
		Invariant{Node: 1, Check: "impossible-rx", Detail: "d"}.Emit(r, at)
		EngineSample{QueueDepth: 42, EventsPerSec: 180443.75, VirtualWallRatio: 12.5}.Emit(r, at)
	}
	return
}

func assertZeroAllocs(t *testing.T, name string, f func()) {
	t.Helper()
	if avg := testing.AllocsPerRun(200, f); avg != 0 {
		t.Errorf("%s: %.2f allocs per steady-state event batch, want 0", name, avg)
	}
}

func TestRecordPathZeroAllocNoop(t *testing.T) {
	_, _, emit := steadyState()
	noop := RecorderFunc(func(sim.Time, Event) {})
	assertZeroAllocs(t, "noop recorder", func() { emit(noop) })
}

func TestRecordPathZeroAllocNilRecorder(t *testing.T) {
	_, _, emit := steadyState()
	assertZeroAllocs(t, "nil recorder", func() { emit(nil) })
}

func TestRecordPathZeroAllocJSONL(t *testing.T) {
	_, _, emit := steadyState()
	j := NewJSONL(io.Discard)
	defer j.Close()
	assertZeroAllocs(t, "jsonl exporter", func() { emit(j) })
	if err := j.Err(); err != nil {
		t.Fatal(err)
	}
}

func TestRecordPathZeroAllocCollector(t *testing.T) {
	_, _, emit := steadyState()
	c := NewCollector()
	emit(c) // warm the interning maps and per-node slices
	assertZeroAllocs(t, "collector", func() { emit(c) })
}

// TestRecordPathZeroAllocFanOut is the benchjson obs-on stack: noop
// analysis recorder + trace exporter + report collector behind one
// Multi, the configuration the headline ewmac/obs-on benchmark runs.
func TestRecordPathZeroAllocFanOut(t *testing.T) {
	_, _, emit := steadyState()
	j := NewJSONL(io.Discard)
	defer j.Close()
	c := NewCollector()
	rec := Multi(RecorderFunc(func(sim.Time, Event) {}), j, c)
	emit(rec) // warm pools, interners, and staging buffers
	assertZeroAllocs(t, "full fan-out", func() { emit(rec) })
}
