package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"ewmac/internal/sim"
)

func get(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %s", url, resp.Status)
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestLiveEndpoints drives the introspection handler end to end: feed
// events and progress, then read them back through /metrics and
// /progress.
func TestLiveEndpoints(t *testing.T) {
	l := NewLive()
	l.SetRun("EW-MAC", 7, 20)
	l.Progress(3, 9, "fig6")
	l.Record(sim.At(time.Second), &Delivery{Bits: 2048})
	l.Record(sim.At(2*time.Second), &Delivery{Bits: 2048})

	srv := httptest.NewServer(l.Handler())
	defer srv.Close()

	metrics := get(t, srv.URL+"/metrics")
	for _, want := range []string{
		`uasn_delivered_packets{protocol="EW-MAC"} 2`,
		"uasn_sweep_points_total 9",
		"uasn_sweep_points_done 3",
		"# TYPE uasn_uptime_seconds gauge",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q\n%s", want, metrics)
		}
	}

	var p struct {
		Protocol string `json:"protocol"`
		Seed     int64  `json:"seed"`
		Nodes    int    `json:"nodes"`
		Label    string `json:"label"`
		Done     int    `json:"done"`
		Total    int    `json:"total"`
	}
	if err := json.Unmarshal([]byte(get(t, srv.URL+"/progress")), &p); err != nil {
		t.Fatal(err)
	}
	if p.Protocol != "EW-MAC" || p.Seed != 7 || p.Nodes != 20 ||
		p.Label != "fig6" || p.Done != 3 || p.Total != 9 {
		t.Errorf("/progress = %+v", p)
	}

	// pprof index responds.
	if !strings.Contains(get(t, srv.URL+"/debug/pprof/"), "pprof") {
		t.Error("/debug/pprof/ not serving")
	}
}

// TestLiveServeBindsEphemeral: Serve on :0 returns a usable bound
// address.
func TestLiveServeBindsEphemeral(t *testing.T) {
	l := NewLive()
	addr, err := l.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(get(t, "http://"+addr+"/progress"), "uptime_s") {
		t.Error("served /progress missing uptime")
	}
}
