package obs

import (
	"sync"

	"ewmac/internal/sim"
)

// This file is the non-boxing record path. Every event type has an
// Emit method that stages the value into a pooled record and passes a
// pointer through the Recorder interface, so the steady-state cost of
// a fully-instrumented run is a pool round-trip instead of one
// interface box + one struct allocation per event.
//
// Ownership rule: the record handed to Recorder.Record is owned by the
// emitter and is reclaimed the moment Record returns. Recorders must
// copy any field they keep — retaining the record itself corrupts a
// later event. The one exception is the *packet.Frame fields: frames
// are copy-on-write values owned by the channel layer and outlive the
// record, so frame-level consumers (the oracle taps) may hold them
// exactly as before.
//
// Consumers therefore type-switch on pointer types (*FrameEmit,
// *TxBegin, ...); a value event never reaches the bus from the
// simulator's own producers.

// recPool is a typed sync.Pool of event records. sync.Pool rather than
// a bare free list: parallel sweeps emit from many engines at once,
// and the per-P caches make Get/Put contention-free on that path.
type recPool[T any, PT interface {
	*T
	Event
}] struct {
	pool sync.Pool
}

// emit stages v in a pooled record, records it, and reclaims the
// record. Nil-safe, so emission sites can keep a single guard (or
// none, on cold paths).
func (p *recPool[T, PT]) emit(r Recorder, at sim.Time, v T) {
	if r == nil {
		return
	}
	x, _ := p.pool.Get().(PT)
	if x == nil {
		x = PT(new(T))
	}
	*x = v
	r.Record(at, x)
	p.pool.Put(x)
}

var (
	frameEmitPool    recPool[FrameEmit, *FrameEmit]
	txBeginPool      recPool[TxBegin, *TxBegin]
	frameRxPool      recPool[FrameRx, *FrameRx]
	frameLossPool    recPool[FrameLoss, *FrameLoss]
	macStatePool     recPool[MACState, *MACState]
	contentionPool   recPool[Contention, *Contention]
	slotPeriodPool   recPool[SlotPeriod, *SlotPeriod]
	deliveryPool     recPool[Delivery, *Delivery]
	extraPool        recPool[Extra, *Extra]
	recoveryPool     recPool[Recovery, *Recovery]
	packetDropPool   recPool[PacketDrop, *PacketDrop]
	queueDepthPool   recPool[QueueDepth, *QueueDepth]
	overloadPool     recPool[Overload, *Overload]
	oracleViolPool   recPool[OracleViolation, *OracleViolation]
	faultPool        recPool[Fault, *Fault]
	invariantPool    recPool[Invariant, *Invariant]
	engineSamplePool recPool[EngineSample, *EngineSample]
)

// Emit records the event through r at the given instant without
// heap-boxing it; see the ownership rule at the top of this file.
func (v FrameEmit) Emit(r Recorder, at sim.Time) { frameEmitPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v TxBegin) Emit(r Recorder, at sim.Time) { txBeginPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v FrameRx) Emit(r Recorder, at sim.Time) { frameRxPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v FrameLoss) Emit(r Recorder, at sim.Time) { frameLossPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v MACState) Emit(r Recorder, at sim.Time) { macStatePool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Contention) Emit(r Recorder, at sim.Time) { contentionPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v SlotPeriod) Emit(r Recorder, at sim.Time) { slotPeriodPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Delivery) Emit(r Recorder, at sim.Time) { deliveryPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Extra) Emit(r Recorder, at sim.Time) { extraPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Recovery) Emit(r Recorder, at sim.Time) { recoveryPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v PacketDrop) Emit(r Recorder, at sim.Time) { packetDropPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v QueueDepth) Emit(r Recorder, at sim.Time) { queueDepthPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Overload) Emit(r Recorder, at sim.Time) { overloadPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v OracleViolation) Emit(r Recorder, at sim.Time) { oracleViolPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Fault) Emit(r Recorder, at sim.Time) { faultPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v Invariant) Emit(r Recorder, at sim.Time) { invariantPool.emit(r, at, v) }

// Emit records the event through r; see FrameEmit.Emit.
func (v EngineSample) Emit(r Recorder, at sim.Time) { engineSamplePool.emit(r, at, v) }
