package obs

import (
	"bufio"
	"encoding/json"
	"io"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// JSONL is the trace-v2 exporter: it renders every event as one JSON
// object per line under a single schema. Every line carries
//
//	"at"    — simulation time in fractional seconds
//	"event" — the stable Event.Tag()
//
// plus the event's own flattened fields (frame fields appear as
// kind/seq/origin/bits; durations as fractional seconds). The writer
// is buffered; call Flush (or Close) before reading the output.
type JSONL struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error
}

// NewJSONL returns a trace-v2 exporter writing to w.
func NewJSONL(w io.Writer) *JSONL {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &JSONL{bw: bw, enc: json.NewEncoder(bw)}
}

// Err returns the first write error, if any.
func (j *JSONL) Err() error { return j.err }

// Flush drains the write buffer.
func (j *JSONL) Flush() error {
	if err := j.bw.Flush(); err != nil && j.err == nil {
		j.err = err
	}
	return j.err
}

// frameRef is the flattened frame portion of trace-v2 lines.
type frameRef struct {
	Src    uint16 `json:"src"`
	Dst    uint16 `json:"dst"`
	Kind   string `json:"kind"`
	Seq    uint32 `json:"seq"`
	Origin uint16 `json:"origin,omitempty"`
	Bits   int    `json:"bits"`
	XID    uint64 `json:"xid,omitempty"`
}

func flatten(f *packet.Frame) frameRef {
	return frameRef{
		Src:    uint16(f.Src),
		Dst:    uint16(f.Dst),
		Kind:   f.Kind.String(),
		Seq:    f.Seq,
		Origin: uint16(f.Origin),
		Bits:   f.Bits(),
		XID:    f.XID,
	}
}

// header is the leading portion shared by every trace-v2 line.
type header struct {
	At    float64 `json:"at"`
	Event string  `json:"event"`
}

// Record implements Recorder.
func (j *JSONL) Record(at sim.Time, e Event) {
	if j.err != nil {
		return
	}
	h := header{At: at.Seconds(), Event: e.Tag()}
	var line any
	switch ev := e.(type) {
	case FrameEmit:
		line = struct {
			header
			frameRef
			DelayS  float64 `json:"delay"`
			LevelDB float64 `json:"level_db"`
		}{h, flatten(ev.Frame), ev.Delay.Seconds(), ev.LevelDB}
	case TxBegin:
		line = struct {
			header
			Node uint16 `json:"node"`
			frameRef
			DurS float64 `json:"dur"`
		}{h, uint16(ev.Node), flatten(ev.Frame), ev.Dur.Seconds()}
	case FrameRx:
		line = struct {
			header
			Node uint16 `json:"node"`
			frameRef
		}{h, uint16(ev.Node), flatten(ev.Frame)}
	case FrameLoss:
		line = struct {
			header
			Node uint16 `json:"node"`
			frameRef
			Reason string `json:"reason"`
		}{h, uint16(ev.Node), flatten(ev.Frame), ev.Reason}
	case MACState:
		line = struct {
			header
			Node uint16 `json:"node"`
			From string `json:"from"`
			To   string `json:"to"`
			Slot int64  `json:"slot"`
		}{h, uint16(ev.Node), ev.From, ev.To, ev.Slot}
	case Contention:
		line = struct {
			header
			Node    uint16 `json:"node"`
			Peer    uint16 `json:"peer"`
			Outcome string `json:"outcome"`
			Slot    int64  `json:"slot"`
			XID     uint64 `json:"xid,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Outcome, ev.Slot, ev.XID}
	case SlotPeriod:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Period string `json:"period"`
			Slot   int64  `json:"slot"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Period, ev.Slot}
	case Delivery:
		line = struct {
			header
			Node     uint16  `json:"node"`
			Origin   uint16  `json:"origin"`
			Seq      uint32  `json:"seq"`
			Bits     int     `json:"bits"`
			LatencyS float64 `json:"latency"`
			Extra    bool    `json:"extra,omitempty"`
			XID      uint64  `json:"xid,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Origin), ev.Seq, ev.Bits, ev.Latency.Seconds(), ev.Extra, ev.XID}
	case Extra:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Action string `json:"action"`
			Reason string `json:"reason,omitempty"`
			XID    uint64 `json:"xid,omitempty"`
			Parent uint64 `json:"parent,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Action, ev.Reason, ev.XID, ev.Parent}
	case Fault:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Kind   string `json:"kind"`
			Action string `json:"action"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), ev.Kind, ev.Action, ev.Detail}
	case Recovery:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer,omitempty"`
			Action string `json:"action"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Action, ev.Detail}
	case PacketDrop:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Reason string `json:"reason"`
			Origin uint16 `json:"origin,omitempty"`
			Seq    uint32 `json:"seq"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Reason, uint16(ev.Origin), ev.Seq}
	case Invariant:
		line = struct {
			header
			Node   uint16 `json:"node"`
			Check  string `json:"check"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), ev.Check, ev.Detail}
	case EngineSample:
		line = struct {
			header
			QueueDepth       int     `json:"queue_depth"`
			EventsPerSec     float64 `json:"events_per_s"`
			VirtualWallRatio float64 `json:"virt_wall"`
		}{h, ev.QueueDepth, ev.EventsPerSec, ev.VirtualWallRatio}
	default:
		// Future event types degrade to a tagged envelope rather than
		// being dropped, so readers can at least count them.
		line = struct {
			header
			Data Event `json:"data"`
		}{h, e}
	}
	if err := j.enc.Encode(line); err != nil && j.err == nil {
		j.err = err
	}
}
