package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// JSONL is the trace-v2 exporter: it renders every event as one JSON
// object per line under a single schema. Every line carries
//
//	"at"    — simulation time in fractional seconds
//	"event" — the stable Event.Tag()
//
// plus the event's own flattened fields (frame fields appear as
// kind/seq/origin/bits; durations as fractional seconds).
//
// The encoders are hand-rolled (encode.go) and byte-identical to the
// reflection-based encoding/json output the exporter used through
// PR 7, so golden trace hashes and tracetool are unaffected; lines are
// staged in pooled buffers and written by a background goroutine
// (asyncwriter.go). Call Flush before reading the output mid-run and
// Close when the stream is done — Close stops the writer goroutine.
type JSONL struct {
	bw     *batchWriter
	cur    []byte
	err    error
	closed bool

	// atCache short-circuits formatting the "at" header when several
	// events share one instant (slot boundaries, one broadcast's
	// fan-out): float formatting is the encoder's single largest cost.
	lastAt sim.Time
	atLen  uint8
	atBuf  [24]byte
}

// NewJSONL returns a trace-v2 exporter writing to w. The caller must
// Close it (closing flushes); an unclosed exporter leaks its writer
// goroutine.
func NewJSONL(w io.Writer) *JSONL {
	bw := newBatchWriter(w)
	return &JSONL{bw: bw, cur: bw.grab()}
}

// Err returns the first write or encode error, if any.
func (j *JSONL) Err() error {
	if j.err != nil {
		return j.err
	}
	return j.bw.firstErr()
}

// Flush drains the staged lines through to the underlying writer.
func (j *JSONL) Flush() error {
	if !j.closed {
		j.cur = j.bw.flush(j.cur)
	}
	return j.Err()
}

// Close flushes and stops the writer goroutine. Records after Close
// are dropped. Safe to call twice.
func (j *JSONL) Close() error {
	if !j.closed {
		j.closed = true
		j.bw.close(j.cur)
		j.cur = nil
	}
	return j.Err()
}

// kindJSON pre-quotes the defined frame kind names — constant safe
// ASCII — so appendFrame neither consults the Kind.String name map nor
// scans for escapes on every frame event.
var kindJSON = func() (t [16][]byte) {
	for k := packet.Kind(1); k.Valid(); k++ {
		t[k] = appendJSONString(nil, k.String())
	}
	return
}()

// appendFrame appends the flattened frame portion shared by the frame
// events: src/dst/kind/seq/origin(omitempty)/bits/xid(omitempty).
func appendFrame(b []byte, f *packet.Frame) []byte {
	b = append(b, `,"src":`...)
	b = appendUint(b, uint64(uint16(f.Src)))
	b = append(b, `,"dst":`...)
	b = appendUint(b, uint64(uint16(f.Dst)))
	b = append(b, `,"kind":`...)
	if k := f.Kind; int(k) < len(kindJSON) && kindJSON[k] != nil {
		b = append(b, kindJSON[k]...)
	} else {
		b = appendJSONString(b, k.String())
	}
	b = append(b, `,"seq":`...)
	b = appendUint(b, uint64(f.Seq))
	if uint16(f.Origin) != 0 {
		b = append(b, `,"origin":`...)
		b = appendUint(b, uint64(uint16(f.Origin)))
	}
	b = append(b, `,"bits":`...)
	b = appendInt(b, int64(f.Bits()))
	if f.XID != 0 {
		b = append(b, `,"xid":`...)
		b = appendUint(b, f.XID)
	}
	return b
}

// num appends a float; a non-finite value poisons the stream exactly
// as encoding/json's UnsupportedValueError used to (sticky error, line
// dropped).
func (j *JSONL) num(b []byte, f float64) []byte {
	b, ok := appendJSONFloat(b, f)
	if !ok && j.err == nil {
		j.err = fmt.Errorf("obs: jsonl: unsupported value: %v", f)
	}
	return b
}

// appendAt appends the `{"at":<seconds>` line prefix, reusing the
// formatted digits while consecutive events share an instant.
func (j *JSONL) appendAt(b []byte, at sim.Time) []byte {
	b = append(b, `{"at":`...)
	if at == j.lastAt && j.atLen > 0 {
		return append(b, j.atBuf[:j.atLen]...)
	}
	mark := len(b)
	b = j.num(b, at.Seconds())
	j.lastAt = at
	j.atLen = uint8(copy(j.atBuf[:], b[mark:]))
	return b
}

// Record implements Recorder.
func (j *JSONL) Record(at sim.Time, e Event) {
	if j.err != nil || j.closed {
		return
	}
	b := j.cur
	mark := len(b)
	b = j.appendAt(b, at)
	// Each case appends its `,"event":"…"` header as a constant: the
	// tags are fixed safe ASCII, so quoting them is a literal, not an
	// escape scan. The fidelity tests pin every literal to Tag().
	switch ev := e.(type) {
	case *FrameEmit:
		b = append(b, `,"event":"chan.emit"`...)
		b = appendFrame(b, ev.Frame)
		b = append(b, `,"delay":`...)
		b = j.num(b, ev.Delay.Seconds())
		b = append(b, `,"level_db":`...)
		b = j.num(b, ev.LevelDB)
	case *TxBegin:
		b = append(b, `,"event":"phy.tx","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = appendFrame(b, ev.Frame)
		b = append(b, `,"dur":`...)
		b = j.num(b, ev.Dur.Seconds())
	case *FrameRx:
		b = append(b, `,"event":"phy.rx","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = appendFrame(b, ev.Frame)
	case *FrameLoss:
		b = append(b, `,"event":"phy.loss","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = appendFrame(b, ev.Frame)
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
	case *MACState:
		b = append(b, `,"event":"mac.state","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"from":`...)
		b = appendJSONString(b, ev.From)
		b = append(b, `,"to":`...)
		b = appendJSONString(b, ev.To)
		b = append(b, `,"slot":`...)
		b = appendInt(b, ev.Slot)
	case *Contention:
		b = append(b, `,"event":"mac.contention","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"peer":`...)
		b = appendUint(b, uint64(uint16(ev.Peer)))
		b = append(b, `,"outcome":`...)
		b = appendJSONString(b, ev.Outcome)
		b = append(b, `,"slot":`...)
		b = appendInt(b, ev.Slot)
		if ev.XID != 0 {
			b = append(b, `,"xid":`...)
			b = appendUint(b, ev.XID)
		}
	case *SlotPeriod:
		b = append(b, `,"event":"mac.period","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"peer":`...)
		b = appendUint(b, uint64(uint16(ev.Peer)))
		b = append(b, `,"period":`...)
		b = appendJSONString(b, ev.Period)
		b = append(b, `,"slot":`...)
		b = appendInt(b, ev.Slot)
	case *Delivery:
		b = append(b, `,"event":"mac.deliver","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"origin":`...)
		b = appendUint(b, uint64(uint16(ev.Origin)))
		b = append(b, `,"seq":`...)
		b = appendUint(b, uint64(ev.Seq))
		b = append(b, `,"bits":`...)
		b = appendInt(b, int64(ev.Bits))
		b = append(b, `,"latency":`...)
		b = j.num(b, ev.Latency.Seconds())
		if ev.Extra {
			b = append(b, `,"extra":true`...)
		}
		if ev.XID != 0 {
			b = append(b, `,"xid":`...)
			b = appendUint(b, ev.XID)
		}
	case *Extra:
		b = append(b, `,"event":"mac.extra","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"peer":`...)
		b = appendUint(b, uint64(uint16(ev.Peer)))
		b = append(b, `,"action":`...)
		b = appendJSONString(b, ev.Action)
		if ev.Reason != "" {
			b = append(b, `,"reason":`...)
			b = appendJSONString(b, ev.Reason)
		}
		if ev.XID != 0 {
			b = append(b, `,"xid":`...)
			b = appendUint(b, ev.XID)
		}
		if ev.Parent != 0 {
			b = append(b, `,"parent":`...)
			b = appendUint(b, ev.Parent)
		}
	case *OracleViolation:
		b = append(b, `,"event":"oracle.violation","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = appendFrame(b, ev.Frame)
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
		if ev.Detail != "" {
			b = append(b, `,"detail":`...)
			b = appendJSONString(b, ev.Detail)
		}
	case *Fault:
		b = append(b, `,"event":"fault.event","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"kind":`...)
		b = appendJSONString(b, ev.Kind)
		b = append(b, `,"action":`...)
		b = appendJSONString(b, ev.Action)
		if ev.Detail != "" {
			b = append(b, `,"detail":`...)
			b = appendJSONString(b, ev.Detail)
		}
	case *Recovery:
		b = append(b, `,"event":"mac.recovery","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		if uint16(ev.Peer) != 0 {
			b = append(b, `,"peer":`...)
			b = appendUint(b, uint64(uint16(ev.Peer)))
		}
		b = append(b, `,"action":`...)
		b = appendJSONString(b, ev.Action)
		if ev.Detail != "" {
			b = append(b, `,"detail":`...)
			b = appendJSONString(b, ev.Detail)
		}
	case *PacketDrop:
		b = append(b, `,"event":"mac.drop","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"peer":`...)
		b = appendUint(b, uint64(uint16(ev.Peer)))
		b = append(b, `,"reason":`...)
		b = appendJSONString(b, ev.Reason)
		if uint16(ev.Origin) != 0 {
			b = append(b, `,"origin":`...)
			b = appendUint(b, uint64(uint16(ev.Origin)))
		}
		b = append(b, `,"seq":`...)
		b = appendUint(b, uint64(ev.Seq))
	case *QueueDepth:
		b = append(b, `,"event":"mac.queue","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"len":`...)
		b = appendInt(b, int64(ev.Len))
		b = append(b, `,"op":`...)
		b = appendJSONString(b, ev.Op)
		if ev.Sojourn > 0 {
			b = append(b, `,"sojourn":`...)
			b = j.num(b, ev.Sojourn.Seconds())
		}
	case *Overload:
		b = append(b, `,"event":"mac.overload","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"action":`...)
		b = appendJSONString(b, ev.Action)
		b = append(b, `,"len":`...)
		b = appendInt(b, int64(ev.Len))
	case *Invariant:
		b = append(b, `,"event":"mac.invariant","node":`...)
		b = appendUint(b, uint64(uint16(ev.Node)))
		b = append(b, `,"check":`...)
		b = appendJSONString(b, ev.Check)
		if ev.Detail != "" {
			b = append(b, `,"detail":`...)
			b = appendJSONString(b, ev.Detail)
		}
	case *EngineSample:
		b = append(b, `,"event":"engine.sample","queue_depth":`...)
		b = appendInt(b, int64(ev.QueueDepth))
		b = append(b, `,"events_per_s":`...)
		b = j.num(b, ev.EventsPerSec)
		b = append(b, `,"virt_wall":`...)
		b = j.num(b, ev.VirtualWallRatio)
	default:
		// Future event types degrade to a tagged envelope rather than
		// being dropped, so readers can at least count them. This cold
		// path may allocate; every simulator event takes a fast case
		// above.
		b = append(b, `,"event":`...)
		b = appendJSONString(b, e.Tag())
		raw, err := json.Marshal(e)
		if err != nil {
			if j.err == nil {
				j.err = err
			}
			j.cur = b[:mark]
			return
		}
		b = append(b, `,"data":`...)
		b = append(b, raw...)
	}
	if j.err != nil {
		j.cur = b[:mark]
		return
	}
	b = append(b, '}', '\n')
	j.cur = b
	if len(j.cur) >= batchFlushAt {
		j.cur = j.bw.submit(j.cur)
	}
}
