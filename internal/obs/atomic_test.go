package obs

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.csv")
	if err := WriteFileAtomic(path, []byte("a,b\n1,2\n")); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "a,b\n1,2\n" {
		t.Errorf("content = %q", got)
	}
	// Overwrite must replace the whole file, and no temp files may
	// survive either write.
	if err := WriteFileAtomic(path, []byte("new\n")); err != nil {
		t.Fatal(err)
	}
	got, _ = os.ReadFile(path)
	if string(got) != "new\n" {
		t.Errorf("after overwrite content = %q", got)
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("directory has %d entries, want 1 (temp files leaked?)", len(ents))
	}
}

func TestAtomicFileAbortLeavesDestinationUntouched(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "out.json")
	if err := WriteFileAtomic(path, []byte("old")); err != nil {
		t.Fatal(err)
	}
	a, err := CreateAtomic(path)
	if err != nil {
		t.Fatal(err)
	}
	a.Write([]byte("partial garbage"))
	a.Abort()
	got, err := os.ReadFile(path)
	if err != nil || string(got) != "old" {
		t.Errorf("destination = %q, %v; want intact %q", got, err, "old")
	}
	ents, _ := os.ReadDir(dir)
	if len(ents) != 1 {
		t.Errorf("temp file leaked: %d entries", len(ents))
	}
}

func TestAppendJSONLAndReopen(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "journal.jsonl")
	j, err := CreateJSONL(path)
	if err != nil {
		t.Fatal(err)
	}
	type rec struct {
		N int `json:"n"`
	}
	for i := 0; i < 3; i++ {
		if err := j.Append(rec{N: i}); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	raw, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("journal has %d lines, want 3: %q", len(lines), raw)
	}

	// Simulate a SIGKILL mid-write: append torn garbage, then reopen at
	// the last valid offset — the torn tail must be gone and the next
	// record must land on a clean line.
	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"n":99`)
	f.Close()
	valid := int64(len(raw))
	j2, err := OpenJSONLAt(path, valid)
	if err != nil {
		t.Fatal(err)
	}
	if err := j2.Append(rec{N: 3}); err != nil {
		t.Fatal(err)
	}
	j2.Close()
	raw, _ = os.ReadFile(path)
	lines = strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("after reopen journal has %d lines: %q", len(lines), raw)
	}
	var last rec
	if err := json.Unmarshal([]byte(lines[3]), &last); err != nil || last.N != 3 {
		t.Errorf("last line = %q (%v), want n=3", lines[3], err)
	}
}
