// Package span folds the raw observability event stream into causal
// spans: typed, timed records of one logical exchange each, linked by
// the exchange-lineage IDs (packet.Frame.XID) the MAC layers stamp on
// every frame of a handshake or extra exchange.
//
// Four span types come out of the assembler:
//
//	handshake  — one primary exchange (RTS→CTS→Data→Ack, or S-ALOHA's
//	             Data→Ack), keyed by the XID the sender allocated when
//	             it opened the round
//	extra      — one opportunistic exchange (EW-MAC EXR→EXC→EXData→
//	             EXAck, ROPA's RTA appending, CS-MAC's steal), keyed by
//	             its own XID and linked to the primary handshake whose
//	             waiting window it exploits via Parent
//	contention — one RTS contention round at one node, closed by the
//	             won/lost/timeout outcome
//	fault      — one injected fault window (inject→clear) at one node
//
// Each span carries its legs: the individual transmissions, receptions,
// losses, and lifecycle steps that compose it, in event order. The
// output is JSONL, one span per line, written when the span closes (so
// a reader can stream) plus a deterministic flush of still-open spans
// on Close.
package span

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Leg is one constituent event of a span.
type Leg struct {
	// T is the leg's simulation time in fractional seconds.
	T float64 `json:"t"`
	// Node is where the leg happened.
	Node uint16 `json:"node"`
	// What names the leg: "<Kind>-tx", "<Kind>-rx", "<Kind>-lost" for
	// frame legs; "delivered", "extra-request", "extra-grant",
	// "rts"/"won"/"lost"/"timeout" for lifecycle legs.
	What string `json:"what"`
}

// Span is one assembled causal span.
type Span struct {
	// Type is "handshake", "extra", "contention", or "fault".
	Type string `json:"span"`
	// XID is the exchange lineage (zero for fault spans).
	XID uint64 `json:"xid,omitempty"`
	// Parent links an extra span to the primary handshake whose waiting
	// window it exploits (zero when unknown or not applicable).
	Parent uint64 `json:"parent,omitempty"`
	// Src and Dst are the exchange initiator and responder (for fault
	// spans, Src is the faulted node).
	Src uint16 `json:"src"`
	Dst uint16 `json:"dst,omitempty"`
	// Start and End bound the span in fractional seconds.
	Start float64 `json:"start"`
	End   float64 `json:"end"`
	// Complete reports the exchange reached its terminal success state
	// (payload delivered, contention decided, fault cleared).
	Complete bool `json:"complete"`
	// Outcome is the terminal state: "acked", "delivered", "won",
	// "lost", "timeout", "deny:<reason>", "abort:<reason>",
	// "cleared", or "open" for spans flushed at Close.
	Outcome string `json:"outcome,omitempty"`
	// Bits is the delivered payload size; Latency its generation-to-
	// delivery time. Both zero unless the span delivered data.
	Bits     int     `json:"bits,omitempty"`
	LatencyS float64 `json:"latency,omitempty"`
	// Kind annotates fault spans with the fault kind.
	Kind string `json:"kind,omitempty"`
	// Legs are the constituent events in order.
	Legs []Leg `json:"legs,omitempty"`

	seq       uint64 // open order, for deterministic Close flushing
	delivered bool
}

// Stats summarizes an assembly for programmatic checks.
type Stats struct {
	// Spans counts every span written.
	Spans int
	// Complete counts spans written with Complete set.
	Complete int
	// Handshakes / Extras / Contentions / Faults count written spans by
	// type.
	Handshakes  int
	Extras      int
	Contentions int
	Faults      int
	// Deliveries counts Delivery events seen; OrphanDeliveries counts
	// those whose XID matched no open span — the causal-coverage
	// failure the golden tests assert to be zero.
	Deliveries       int
	OrphanDeliveries int
}

// Meta is the leading line of a span file, identifying the run.
type Meta struct {
	Span     string `json:"span"` // always "meta"
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
}

// Assembler consumes the event bus and emits spans. It implements
// obs.Recorder and, like every recorder, runs synchronously on the
// simulation goroutine.
type Assembler struct {
	bw  *bufio.Writer
	enc *json.Encoder
	err error

	open       map[uint64]*Span        // handshake/extra spans by XID
	done       map[uint64]struct{}     // lineages already terminally flushed
	contention map[packet.NodeID]*Span // one contention round per node
	faults     map[faultKey]*Span      // open fault windows
	seq        uint64                  // next span open-order number
	stats      Stats

	// outcomes interns the "deny:<reason>"/"abort:<reason>" strings so
	// repeated denials fold without concatenating.
	outcomes map[[2]string]string
}

// outcome returns the interned prefix+reason terminal-outcome string.
func (a *Assembler) outcome(prefix, reason string) string {
	k := [2]string{prefix, reason}
	if s, ok := a.outcomes[k]; ok {
		return s
	}
	if a.outcomes == nil {
		a.outcomes = make(map[[2]string]string)
	}
	s := prefix + reason
	a.outcomes[k] = s
	return s
}

type faultKey struct {
	node packet.NodeID
	kind string
}

// legName interns the "<Kind>-tx/-rx/-lost" leg labels so the
// per-frame fold never concatenates. Built once over the valid kinds.
var legName = func() map[packet.Kind][3]string {
	m := make(map[packet.Kind][3]string)
	for k := packet.Kind(1); k.Valid(); k++ {
		s := k.String()
		m[k] = [3]string{s + "-tx", s + "-rx", s + "-lost"}
	}
	return m
}()

const (
	legTx = iota
	legRx
	legLost
)

// New returns an assembler writing span JSONL to w.
func New(w io.Writer) *Assembler {
	bw := bufio.NewWriterSize(w, 1<<16)
	return &Assembler{
		bw:         bw,
		enc:        json.NewEncoder(bw),
		open:       make(map[uint64]*Span),
		done:       make(map[uint64]struct{}),
		contention: make(map[packet.NodeID]*Span),
		faults:     make(map[faultKey]*Span),
	}
}

// WriteMeta writes the leading meta line. Call once, before the run.
func (a *Assembler) WriteMeta(protocol string, seed int64, nodes int) {
	a.write(Meta{Span: "meta", Protocol: protocol, Seed: seed, Nodes: nodes})
}

// Err returns the first write error, if any.
func (a *Assembler) Err() error { return a.err }

// Stats returns the assembly counters collected so far.
func (a *Assembler) Stats() Stats { return a.stats }

func (a *Assembler) write(v any) {
	if a.err != nil {
		return
	}
	if err := a.enc.Encode(v); err != nil {
		a.err = err
	}
}

// flush writes a span and removes it from the open set.
func (a *Assembler) flush(s *Span) {
	a.stats.Spans++
	if s.Complete {
		a.stats.Complete++
	}
	switch s.Type {
	case "handshake":
		a.stats.Handshakes++
	case "extra":
		a.stats.Extras++
	case "contention":
		a.stats.Contentions++
	case "fault":
		a.stats.Faults++
	}
	a.write(s)
}

// responderKind reports whether a frame kind is sent by the exchange's
// responder, so span src/dst can be oriented even when the first
// observed frame of a lineage is a reply.
func responderKind(k packet.Kind) bool {
	switch k {
	case packet.KindCTS, packet.KindAck, packet.KindEXC, packet.KindEXAck:
		return true
	default:
		return false
	}
}

// get returns the open span for xid, creating it from the frame when
// absent. f may be nil when the caller knows the span exists. A
// lineage that already flushed terminally stays closed: stragglers
// (duplicate Acks after a retransmission, late overheard copies) must
// not resurrect a second span for the same exchange.
func (a *Assembler) get(at sim.Time, xid uint64, f *packet.Frame) *Span {
	if s, ok := a.open[xid]; ok {
		return s
	}
	if _, closed := a.done[xid]; closed || f == nil {
		return nil
	}
	typ := "handshake"
	if f.Kind.IsExtra() {
		typ = "extra"
	}
	src, dst := uint16(f.Src), uint16(f.Dst)
	if responderKind(f.Kind) {
		src, dst = dst, src
	}
	a.seq++
	s := &Span{
		Type: typ, XID: xid, Src: src, Dst: dst,
		Start: at.Seconds(), End: at.Seconds(), seq: a.seq,
	}
	a.open[xid] = s
	return s
}

// leg appends one leg and extends the span's end time.
func (s *Span) leg(at float64, node packet.NodeID, what string) {
	s.Legs = append(s.Legs, Leg{T: at, Node: uint16(node), What: what})
	if at > s.End {
		s.End = at
	}
}

// closeSpan finalizes and writes an open handshake/extra span.
func (a *Assembler) closeSpan(s *Span, at float64, complete bool, outcome string) {
	if at > s.End {
		s.End = at
	}
	// A span that already delivered its payload stays a success no
	// matter how the bookkeeping around it ends.
	if !s.delivered {
		s.Complete = complete
		s.Outcome = outcome
	}
	delete(a.open, s.XID)
	a.done[s.XID] = struct{}{}
	a.flush(s)
}

// Record implements obs.Recorder.
func (a *Assembler) Record(at sim.Time, e obs.Event) {
	t := at.Seconds()
	switch ev := e.(type) {
	case *obs.TxBegin:
		if ev.Frame.XID == 0 {
			return
		}
		s := a.get(at, ev.Frame.XID, ev.Frame)
		if s == nil {
			return
		}
		s.leg(t, ev.Node, legName[ev.Frame.Kind][legTx])
		if end := t + ev.Dur.Seconds(); end > s.End {
			s.End = end
		}

	case *obs.FrameRx:
		f := ev.Frame
		if f.XID == 0 || f.Dst != ev.Node {
			return
		}
		s := a.get(at, f.XID, f)
		if s == nil {
			return
		}
		s.leg(t, ev.Node, legName[f.Kind][legRx])
		// The final acknowledgement arriving back at the initiator is
		// the span's terminal success: upgrade and flush.
		if (f.Kind == packet.KindAck || f.Kind == packet.KindEXAck) &&
			uint16(ev.Node) == s.Src {
			s.delivered = true // Delivery at the peer preceded this Ack
			s.Complete = true
			s.Outcome = "acked"
			delete(a.open, s.XID)
			a.done[s.XID] = struct{}{}
			a.flush(s)
		}

	case *obs.FrameLoss:
		f := ev.Frame
		if f.XID == 0 || f.Dst != ev.Node {
			return
		}
		if s := a.get(at, f.XID, f); s != nil {
			s.leg(t, ev.Node, legName[f.Kind][legLost])
		}

	case *obs.Contention:
		a.onContention(t, ev)

	case *obs.Delivery:
		a.stats.Deliveries++
		s := a.open[ev.XID]
		if ev.XID == 0 || s == nil {
			a.stats.OrphanDeliveries++
			return
		}
		s.delivered = true
		s.Complete = true
		s.Outcome = "delivered" // upgraded to "acked" if the Ack lands
		s.Bits = ev.Bits
		s.LatencyS = ev.Latency.Seconds()
		s.leg(t, ev.Node, "delivered")

	case *obs.Extra:
		a.onExtra(t, ev)

	case *obs.Fault:
		k := faultKey{node: ev.Node, kind: ev.Kind}
		switch ev.Action {
		case obs.FaultInject:
			if a.faults[k] == nil {
				a.seq++
				s := &Span{
					Type: "fault", Src: uint16(ev.Node), Kind: ev.Kind,
					Start: t, End: t, seq: a.seq,
				}
				s.leg(t, ev.Node, "inject")
				a.faults[k] = s
			}
		case obs.FaultClear:
			if s := a.faults[k]; s != nil {
				s.leg(t, ev.Node, "clear")
				s.Complete = true
				s.Outcome = "cleared"
				delete(a.faults, k)
				a.flush(s)
			}
		}
	}
}

// onContention folds one contention step into the per-node contention
// span and, on terminal outcomes, closes the handshake span too.
func (a *Assembler) onContention(t float64, ev *obs.Contention) {
	switch ev.Outcome {
	case obs.ContentionRTS:
		a.seq++
		s := &Span{
			Type: "contention", XID: ev.XID,
			Src: uint16(ev.Node), Dst: uint16(ev.Peer),
			Start: t, End: t, seq: a.seq,
		}
		s.leg(t, ev.Node, "rts")
		// A node can only contend for one exchange at a time; a fresh
		// RTS supersedes any round left open by a lost cause.
		if prev := a.contention[ev.Node]; prev != nil {
			prev.Outcome = "superseded"
			a.flush(prev)
		}
		a.contention[ev.Node] = s

	case obs.ContentionGrant:
		// Receiver-side: a leg on the granted handshake span.
		if s := a.open[ev.XID]; s != nil {
			s.leg(t, ev.Node, "grant")
		}

	case obs.ContentionWon, obs.ContentionLost, obs.ContentionTimeout:
		if s := a.contention[ev.Node]; s != nil {
			s.leg(t, ev.Node, ev.Outcome)
			s.Complete = true
			s.Outcome = ev.Outcome
			delete(a.contention, ev.Node)
			a.flush(s)
		}
		// lost/timeout also terminate the handshake the node was
		// driving: the lineage dies and any retry opens a fresh XID.
		if ev.Outcome != obs.ContentionWon && ev.XID != 0 {
			if s := a.open[ev.XID]; s != nil {
				a.closeSpan(s, t, false, ev.Outcome)
			}
		}
	}
}

// onExtra folds one extra-communication lifecycle step into its span.
func (a *Assembler) onExtra(t float64, ev *obs.Extra) {
	if ev.XID == 0 {
		// Pre-flight denial: no frame ever existed, nothing to span.
		return
	}
	if _, closed := a.done[ev.XID]; closed {
		return
	}
	s := a.open[ev.XID]
	if s == nil {
		// The request event fires when the attempt is admitted, which
		// can precede the (scheduled) transmission: open the span here
		// so the lifecycle is fully covered.
		a.seq++
		s = &Span{
			Type: "extra", XID: ev.XID, Parent: ev.Parent,
			Src: uint16(ev.Node), Dst: uint16(ev.Peer),
			Start: t, End: t, seq: a.seq,
		}
		a.open[ev.XID] = s
	}
	if s.Parent == 0 {
		s.Parent = ev.Parent
	}
	switch ev.Action {
	case obs.ExtraRequest:
		s.leg(t, ev.Node, "extra-request")
	case obs.ExtraGrant:
		s.leg(t, ev.Node, "extra-grant")
	case obs.ExtraDeny:
		s.leg(t, ev.Node, "extra-deny")
		a.closeSpan(s, t, false, a.outcome("deny:", ev.Reason))
	case obs.ExtraAbort:
		s.leg(t, ev.Node, "extra-abort")
		a.closeSpan(s, t, false, a.outcome("abort:", ev.Reason))
	case obs.ExtraComplete:
		s.leg(t, ev.Node, "extra-complete")
		s.delivered = true
		s.Complete = true
		s.Outcome = "acked"
		delete(a.open, s.XID)
		a.done[s.XID] = struct{}{}
		a.flush(s)
	}
}

// Close flushes every still-open span (in deterministic order: start
// time, then XID, then open order) followed by the buffered output.
func (a *Assembler) Close() error {
	rest := make([]*Span, 0, len(a.open)+len(a.contention)+len(a.faults))
	for _, s := range a.open {
		rest = append(rest, s)
	}
	for _, s := range a.contention {
		rest = append(rest, s)
	}
	for _, s := range a.faults {
		rest = append(rest, s)
	}
	sort.Slice(rest, func(i, j int) bool {
		if rest[i].Start != rest[j].Start {
			return rest[i].Start < rest[j].Start
		}
		if rest[i].XID != rest[j].XID {
			return rest[i].XID < rest[j].XID
		}
		return rest[i].seq < rest[j].seq
	})
	for _, s := range rest {
		if s.Outcome == "" {
			s.Outcome = "open"
		}
		a.flush(s)
	}
	a.open = make(map[uint64]*Span)
	a.done = make(map[uint64]struct{})
	a.contention = make(map[packet.NodeID]*Span)
	a.faults = make(map[faultKey]*Span)
	if err := a.bw.Flush(); err != nil && a.err == nil {
		a.err = err
	}
	return a.err
}
