package span

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.At(d) }

func frame(k packet.Kind, src, dst packet.NodeID, xid uint64) *packet.Frame {
	return &packet.Frame{Kind: k, Src: src, Dst: dst, XID: xid}
}

// decode parses every span line (skipping meta) from the assembler's
// output.
func decode(t *testing.T, buf *bytes.Buffer) []Span {
	t.Helper()
	var out []Span
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var s Span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("bad span line %q: %v", line, err)
		}
		if s.Type == "meta" {
			continue
		}
		out = append(out, s)
	}
	return out
}

// TestHandshakeSpan walks a full RTS→CTS→Data→Ack exchange through the
// assembler and checks both the contention span and the handshake span
// come out complete with the right lineage.
func TestHandshakeSpan(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	a.WriteMeta("EW-MAC", 1, 2)
	const x = uint64(1)<<32 | 1
	ms := time.Millisecond

	a.Record(at(0), &obs.Contention{Node: 1, Peer: 2, Outcome: obs.ContentionRTS, XID: x})
	a.Record(at(0), &obs.TxBegin{Node: 1, Frame: frame(packet.KindRTS, 1, 2, x), Dur: 5 * ms})
	a.Record(at(10*ms), &obs.FrameRx{Node: 2, Frame: frame(packet.KindRTS, 1, 2, x)})
	a.Record(at(11*ms), &obs.Contention{Node: 2, Peer: 1, Outcome: obs.ContentionGrant, XID: x})
	a.Record(at(12*ms), &obs.TxBegin{Node: 2, Frame: frame(packet.KindCTS, 2, 1, x), Dur: 5 * ms})
	a.Record(at(20*ms), &obs.FrameRx{Node: 1, Frame: frame(packet.KindCTS, 2, 1, x)})
	a.Record(at(20*ms), &obs.Contention{Node: 1, Peer: 2, Outcome: obs.ContentionWon, XID: x})
	a.Record(at(25*ms), &obs.TxBegin{Node: 1, Frame: frame(packet.KindData, 1, 2, x), Dur: 50 * ms})
	a.Record(at(80*ms), &obs.FrameRx{Node: 2, Frame: frame(packet.KindData, 1, 2, x)})
	a.Record(at(80*ms), &obs.Delivery{Node: 2, Origin: 1, Bits: 2048, Latency: 80 * ms, XID: x})
	a.Record(at(85*ms), &obs.TxBegin{Node: 2, Frame: frame(packet.KindAck, 2, 1, x), Dur: 5 * ms})
	a.Record(at(95*ms), &obs.FrameRx{Node: 1, Frame: frame(packet.KindAck, 2, 1, x)})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}

	spans := decode(t, &buf)
	if len(spans) != 2 {
		t.Fatalf("want contention+handshake, got %d spans: %+v", len(spans), spans)
	}
	var hs, ct *Span
	for i := range spans {
		switch spans[i].Type {
		case "handshake":
			hs = &spans[i]
		case "contention":
			ct = &spans[i]
		}
	}
	if hs == nil || ct == nil {
		t.Fatalf("missing span types: %+v", spans)
	}
	if !hs.Complete || hs.Outcome != "acked" || hs.XID != x {
		t.Errorf("handshake = %+v, want complete acked xid=%x", hs, x)
	}
	if hs.Src != 1 || hs.Dst != 2 || hs.Bits != 2048 || hs.LatencyS != 0.08 {
		t.Errorf("handshake identity/payload wrong: %+v", hs)
	}
	// 4 tx + 4 rx + grant + delivered legs.
	if len(hs.Legs) != 10 {
		t.Errorf("handshake legs = %d, want 10: %+v", len(hs.Legs), hs.Legs)
	}
	if !ct.Complete || ct.Outcome != "won" {
		t.Errorf("contention = %+v, want complete won", ct)
	}

	st := a.Stats()
	if st.Deliveries != 1 || st.OrphanDeliveries != 0 {
		t.Errorf("stats = %+v, want 1 covered delivery", st)
	}
	if st.Handshakes != 1 || st.Contentions != 1 || st.Spans != 2 || st.Complete != 2 {
		t.Errorf("stats counts wrong: %+v", st)
	}
}

// TestContentionTimeoutClosesHandshake: a CTS timeout terminates both
// the contention round and the handshake lineage, incomplete.
func TestContentionTimeoutClosesHandshake(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	const x = uint64(3)<<32 | 7
	ms := time.Millisecond

	a.Record(at(0), &obs.Contention{Node: 3, Peer: 4, Outcome: obs.ContentionRTS, XID: x})
	a.Record(at(0), &obs.TxBegin{Node: 3, Frame: frame(packet.KindRTS, 3, 4, x), Dur: 5 * ms})
	a.Record(at(time.Second), &obs.Contention{Node: 3, Peer: 4, Outcome: obs.ContentionTimeout, XID: x})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	for _, s := range decode(t, &buf) {
		switch s.Type {
		case "handshake":
			if s.Complete || s.Outcome != "timeout" {
				t.Errorf("handshake = %+v, want incomplete timeout", s)
			}
		case "contention":
			if !s.Complete || s.Outcome != "timeout" {
				t.Errorf("contention = %+v, want complete timeout", s)
			}
		default:
			t.Errorf("unexpected span %+v", s)
		}
	}
}

// TestDeliveredSurvivesLateClose: once the payload delivered, neither a
// late lost-contention event nor the Close flush may demote the span.
func TestDeliveredSurvivesLateClose(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	const x = uint64(5)<<32 | 2
	ms := time.Millisecond

	a.Record(at(0), &obs.TxBegin{Node: 5, Frame: frame(packet.KindData, 5, 6, x), Dur: 50 * ms})
	a.Record(at(60*ms), &obs.FrameRx{Node: 6, Frame: frame(packet.KindData, 5, 6, x)})
	a.Record(at(60*ms), &obs.Delivery{Node: 6, Origin: 5, Bits: 1024, Latency: 60 * ms, XID: x})
	// Ack never arrives; the run ends with the span still open.
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	spans := decode(t, &buf)
	if len(spans) != 1 {
		t.Fatalf("want 1 span, got %d", len(spans))
	}
	if !spans[0].Complete || spans[0].Outcome != "delivered" {
		t.Errorf("span = %+v, want complete delivered", spans[0])
	}
}

// TestExtraLifecycle: request→grant→complete yields a complete extra
// span carrying its parent lineage; an XID-0 pre-flight deny is not a
// span at all.
func TestExtraLifecycle(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	const parent = uint64(1)<<32 | 1
	const x = uint64(9)<<32 | 1
	ms := time.Millisecond

	a.Record(at(0), &obs.Extra{Node: 9, Peer: 2, Action: obs.ExtraDeny, Reason: "gap-too-small", XID: 0, Parent: parent})
	a.Record(at(5*ms), &obs.Extra{Node: 9, Peer: 2, Action: obs.ExtraRequest, XID: x, Parent: parent})
	a.Record(at(6*ms), &obs.TxBegin{Node: 9, Frame: frame(packet.KindEXR, 9, 2, x), Dur: 5 * ms})
	a.Record(at(15*ms), &obs.FrameRx{Node: 2, Frame: frame(packet.KindEXR, 9, 2, x)})
	a.Record(at(16*ms), &obs.Extra{Node: 2, Peer: 9, Action: obs.ExtraGrant, XID: x, Parent: parent})
	a.Record(at(40*ms), &obs.Extra{Node: 9, Peer: 2, Action: obs.ExtraComplete, XID: x, Parent: parent})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	spans := decode(t, &buf)
	if len(spans) != 1 {
		t.Fatalf("want 1 extra span (deny must not span), got %d: %+v", len(spans), spans)
	}
	s := spans[0]
	if s.Type != "extra" || !s.Complete || s.Outcome != "acked" {
		t.Errorf("extra = %+v, want complete acked", s)
	}
	if s.XID != x || s.Parent != parent {
		t.Errorf("lineage wrong: xid=%x parent=%x", s.XID, s.Parent)
	}
}

// TestExtraAbortIncomplete: an aborted extra closes incomplete with the
// reason in its outcome.
func TestExtraAbortIncomplete(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	const x = uint64(4)<<32 | 3
	a.Record(at(0), &obs.Extra{Node: 4, Peer: 8, Action: obs.ExtraRequest, XID: x, Parent: 1})
	a.Record(at(time.Second), &obs.Extra{Node: 4, Peer: 8, Action: obs.ExtraAbort, Reason: "exc-timeout", XID: x, Parent: 1})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	spans := decode(t, &buf)
	if len(spans) != 1 || spans[0].Complete || spans[0].Outcome != "abort:exc-timeout" {
		t.Fatalf("spans = %+v, want one incomplete abort:exc-timeout", spans)
	}
}

// TestOrphanDelivery: a delivery whose lineage was never seen counts as
// orphan instead of fabricating a span.
func TestOrphanDelivery(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	a.Record(at(0), &obs.Delivery{Node: 1, Origin: 2, Bits: 512, XID: 12345})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	st := a.Stats()
	if st.Deliveries != 1 || st.OrphanDeliveries != 1 {
		t.Errorf("stats = %+v, want one orphan delivery", st)
	}
	if spans := decode(t, &buf); len(spans) != 0 {
		t.Errorf("orphan delivery fabricated spans: %+v", spans)
	}
}

// TestFaultWindowSpan: inject→clear produces one complete fault span.
func TestFaultWindowSpan(t *testing.T) {
	var buf bytes.Buffer
	a := New(&buf)
	a.Record(at(time.Second), &obs.Fault{Node: 7, Kind: "mute", Action: obs.FaultInject})
	a.Record(at(3*time.Second), &obs.Fault{Node: 7, Kind: "mute", Action: obs.FaultClear})
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	spans := decode(t, &buf)
	if len(spans) != 1 {
		t.Fatalf("want 1 fault span, got %d", len(spans))
	}
	s := spans[0]
	if s.Type != "fault" || !s.Complete || s.Outcome != "cleared" || s.Kind != "mute" {
		t.Errorf("fault span = %+v", s)
	}
	if s.Start != 1 || s.End != 3 {
		t.Errorf("fault window [%g, %g], want [1, 3]", s.Start, s.End)
	}
}

// TestCloseFlushOrderDeterministic: spans left open flush sorted by
// start time regardless of map iteration order.
func TestCloseFlushOrderDeterministic(t *testing.T) {
	run := func() string {
		var buf bytes.Buffer
		a := New(&buf)
		ms := time.Millisecond
		for i := 20; i >= 1; i-- {
			x := uint64(i)<<32 | 1
			a.Record(at(time.Duration(i)*ms),
				&obs.TxBegin{Node: packet.NodeID(i), Frame: frame(packet.KindData, packet.NodeID(i), 0, x), Dur: ms})
		}
		if err := a.Close(); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	first := run()
	for i := 0; i < 5; i++ {
		if got := run(); got != first {
			t.Fatalf("Close flush order not deterministic:\n%s\nvs\n%s", first, got)
		}
	}
	var prev float64 = -1
	for _, s := range decodeStr(t, first) {
		if s.Outcome != "open" {
			t.Errorf("flushed open span has outcome %q", s.Outcome)
		}
		if s.Start < prev {
			t.Errorf("flush out of order: %g after %g", s.Start, prev)
		}
		prev = s.Start
	}
}

func decodeStr(t *testing.T, s string) []Span {
	var buf bytes.Buffer
	buf.WriteString(s)
	return decode(t, &buf)
}
