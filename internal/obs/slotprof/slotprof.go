// Package slotprof profiles how every node spends every slot of the
// measurement window, classified into the waiting-resource periods of
// the paper's Figure 2:
//
//	tx        — transmitting a primary (negotiated) frame
//	rx        — receiving any frame (decoded or lost mid-air)
//	reclaimed — transmitting or receiving an extra-communication frame
//	            (EXR/EXC/EXData/EXAck, RTA, StolenData): waiting
//	            resource the protocol exploited instead of idling
//	wait      — engaged in an exchange (non-idle MAC role) but neither
//	            transmitting nor receiving: the idle waiting the paper's
//	            extra communication targets
//	guard     — everything else (truly idle, or guard margins)
//
// Classification is priority-ordered (tx > rx > wait > guard, extra
// promoting to reclaimed), over the elementary segments induced by all
// interval endpoints, so the five classes partition each slot exactly:
// for every node and slot they sum to the slot length by construction.
//
// The headline figure is the waiting-resource exploitation ratio
// reclaimed / (reclaimed + wait): the fraction of would-be idle waiting
// a protocol converted into useful transfer. EW-MAC exploits waiting
// windows by design; S-FAMA never does (ratio identically zero), which
// is the comparison the paper's Figures 6–8 quantify end-to-end.
package slotprof

import (
	"bufio"
	"encoding/json"
	"io"
	"sort"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Config configures a Profiler.
type Config struct {
	// Protocol labels the summary line.
	Protocol string
	// SlotLen is the slot length (mac.SlotConfig.Len()).
	SlotLen time.Duration
	// BitRate reconstructs reception durations from FrameRx/FrameLoss
	// completion times.
	BitRate float64
	// Start / End bound the measurement window; only slots fully inside
	// it are profiled. End may be clipped further by Finish.
	Start, End sim.Time
	// Writer receives the per-slot/per-node/summary JSONL.
	Writer io.Writer
}

// interval is one half-open busy interval [start, end) in engine ns.
type interval struct {
	start, end int64
	extra      bool
}

// nodeProf accumulates one node's raw intervals.
type nodeProf struct {
	tx, rx, busy []interval
	busySince    int64
	engaged      bool
}

// Profiler consumes the event bus and classifies slot time. It
// implements obs.Recorder.
type Profiler struct {
	cfg   Config
	nodes map[packet.NodeID]*nodeProf
}

// SlotRecord is one per-node, per-slot classification line. All
// durations are fractional seconds and sum to the slot length.
type SlotRecord struct {
	Rec       string  `json:"rec"` // "slot"
	Node      uint16  `json:"node"`
	Slot      int64   `json:"slot"`
	Tx        float64 `json:"tx"`
	Rx        float64 `json:"rx"`
	Wait      float64 `json:"wait"`
	Reclaimed float64 `json:"reclaimed"`
	Guard     float64 `json:"guard"`
}

// NodeRecord is one node's totals over the whole window.
type NodeRecord struct {
	Rec       string  `json:"rec"` // "node"
	Node      uint16  `json:"node"`
	Tx        float64 `json:"tx"`
	Rx        float64 `json:"rx"`
	Wait      float64 `json:"wait"`
	Reclaimed float64 `json:"reclaimed"`
	Guard     float64 `json:"guard"`
	Exploit   float64 `json:"exploit"`
}

// Summary is the whole-run aggregate, also returned by Finish.
type Summary struct {
	Rec       string  `json:"rec"` // "summary"
	Protocol  string  `json:"protocol"`
	SlotLenS  float64 `json:"slot_len"`
	Slots     int64   `json:"slots"`
	Nodes     int     `json:"nodes"`
	Tx        float64 `json:"tx"`
	Rx        float64 `json:"rx"`
	Wait      float64 `json:"wait"`
	Reclaimed float64 `json:"reclaimed"`
	Guard     float64 `json:"guard"`
	// Exploit is the waiting-resource exploitation ratio
	// reclaimed/(reclaimed+wait), the profiler's headline figure.
	Exploit float64 `json:"exploit"`
}

// New returns a Profiler for the given window.
func New(cfg Config) *Profiler {
	return &Profiler{cfg: cfg, nodes: make(map[packet.NodeID]*nodeProf)}
}

func (p *Profiler) node(id packet.NodeID) *nodeProf {
	n := p.nodes[id]
	if n == nil {
		n = &nodeProf{}
		p.nodes[id] = n
	}
	return n
}

// Record implements obs.Recorder.
func (p *Profiler) Record(at sim.Time, e obs.Event) {
	switch ev := e.(type) {
	case *obs.TxBegin:
		n := p.node(ev.Node)
		n.tx = append(n.tx, interval{
			start: int64(at), end: int64(at.Add(ev.Dur)),
			extra: ev.Frame.Kind.IsExtra(),
		})
	case *obs.FrameRx:
		p.addRx(at, ev.Node, ev.Frame)
	case *obs.FrameLoss:
		p.addRx(at, ev.Node, ev.Frame)
	case *obs.MACState:
		n := p.node(ev.Node)
		toIdle := ev.To == "idle"
		if !n.engaged && !toIdle {
			n.engaged = true
			n.busySince = int64(at)
		} else if n.engaged && toIdle {
			n.engaged = false
			n.busy = append(n.busy, interval{start: n.busySince, end: int64(at)})
		}
	}
}

// addRx records a reception interval ending at the observation time
// (FrameRx/FrameLoss fire when the frame has fully arrived).
func (p *Profiler) addRx(at sim.Time, node packet.NodeID, f *packet.Frame) {
	dur := f.TxDuration(p.cfg.BitRate)
	n := p.node(node)
	n.rx = append(n.rx, interval{
		start: int64(at.Add(-dur)), end: int64(at),
		extra: f.Kind.IsExtra(),
	})
}

// sweepEvent is one endpoint of the per-node coverage sweep.
type sweepEvent struct {
	t                             int64
	dTx, dTxEx, dRx, dRxEx, dBusy int
}

// acc accumulates classified nanoseconds.
type acc struct {
	tx, rx, wait, reclaimed, guard int64
}

func (a *acc) add(class int, d int64) {
	switch class {
	case 0:
		a.tx += d
	case 1:
		a.rx += d
	case 2:
		a.wait += d
	case 3:
		a.reclaimed += d
	default:
		a.guard += d
	}
}

// Finish clips the window to end, classifies every slot, writes the
// JSONL records, and returns the run summary. Per-slot lines are
// emitted only for slots with any non-guard time (an all-idle slot is
// implied); node and summary totals cover every slot either way.
func (p *Profiler) Finish(end sim.Time) (Summary, error) {
	if end > p.cfg.End {
		end = p.cfg.End
	}
	slotLen := int64(p.cfg.SlotLen)
	w0, w1 := int64(p.cfg.Start), int64(end)
	sum := Summary{Rec: "summary", Protocol: p.cfg.Protocol, SlotLenS: p.cfg.SlotLen.Seconds()}
	if slotLen <= 0 || w1 <= w0 {
		return sum, nil
	}
	// Align the window to whole slots: first boundary at or after Start,
	// last boundary at or before end.
	firstSlot := (w0 + slotLen - 1) / slotLen
	lastSlot := w1 / slotLen
	nSlots := lastSlot - firstSlot
	if nSlots <= 0 {
		return sum, nil
	}
	sum.Slots = nSlots
	w0, w1 = firstSlot*slotLen, lastSlot*slotLen

	bw := bufio.NewWriterSize(p.cfg.Writer, 1<<16)
	enc := json.NewEncoder(bw)

	ids := make([]packet.NodeID, 0, len(p.nodes))
	for id := range p.nodes {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	sum.Nodes = len(ids)

	var werr error
	write := func(v any) {
		if werr == nil {
			werr = enc.Encode(v)
		}
	}

	for _, id := range ids {
		n := p.nodes[id]
		if n.engaged {
			n.busy = append(n.busy, interval{start: n.busySince, end: w1})
			n.engaged = false
		}
		slots := p.classify(n, w0, w1, slotLen)
		var nt acc
		for i, a := range slots {
			nt.tx += a.tx
			nt.rx += a.rx
			nt.wait += a.wait
			nt.reclaimed += a.reclaimed
			nt.guard += a.guard
			if a.tx+a.rx+a.wait+a.reclaimed == 0 {
				continue
			}
			write(SlotRecord{
				Rec: "slot", Node: uint16(id), Slot: firstSlot + int64(i),
				Tx: secs(a.tx), Rx: secs(a.rx), Wait: secs(a.wait),
				Reclaimed: secs(a.reclaimed), Guard: secs(a.guard),
			})
		}
		write(NodeRecord{
			Rec: "node", Node: uint16(id),
			Tx: secs(nt.tx), Rx: secs(nt.rx), Wait: secs(nt.wait),
			Reclaimed: secs(nt.reclaimed), Guard: secs(nt.guard),
			Exploit: ratio(nt.reclaimed, nt.wait),
		})
		sum.Tx += secs(nt.tx)
		sum.Rx += secs(nt.rx)
		sum.Wait += secs(nt.wait)
		sum.Reclaimed += secs(nt.reclaimed)
		sum.Guard += secs(nt.guard)
	}
	if sum.Reclaimed+sum.Wait > 0 {
		sum.Exploit = sum.Reclaimed / (sum.Reclaimed + sum.Wait)
	}
	write(sum)
	if err := bw.Flush(); err != nil && werr == nil {
		werr = err
	}
	return sum, werr
}

// classify sweeps one node's intervals over [w0, w1) and returns one
// accumulator per slot. Coverage counters make overlap harmless; the
// priority order is tx > rx > wait, with extra coverage promoting
// tx/rx time to reclaimed, and the remainder is guard.
func (p *Profiler) classify(n *nodeProf, w0, w1, slotLen int64) []acc {
	nSlots := (w1 - w0) / slotLen
	out := make([]acc, nSlots)

	evs := make([]sweepEvent, 0, 2*(len(n.tx)+len(n.rx)+len(n.busy))+int(nSlots)+1)
	addIv := func(iv interval, open, close sweepEvent) {
		s, e := iv.start, iv.end
		if s < w0 {
			s = w0
		}
		if e > w1 {
			e = w1
		}
		if s >= e {
			return
		}
		open.t, close.t = s, e
		evs = append(evs, open, close)
	}
	for _, iv := range n.tx {
		if iv.extra {
			addIv(iv, sweepEvent{dTx: 1, dTxEx: 1}, sweepEvent{dTx: -1, dTxEx: -1})
		} else {
			addIv(iv, sweepEvent{dTx: 1}, sweepEvent{dTx: -1})
		}
	}
	for _, iv := range n.rx {
		if iv.extra {
			addIv(iv, sweepEvent{dRx: 1, dRxEx: 1}, sweepEvent{dRx: -1, dRxEx: -1})
		} else {
			addIv(iv, sweepEvent{dRx: 1}, sweepEvent{dRx: -1})
		}
	}
	for _, iv := range n.busy {
		addIv(iv, sweepEvent{dBusy: 1}, sweepEvent{dBusy: -1})
	}
	// Slot boundaries are zero-delta events so no elementary segment
	// straddles two slots.
	for t := w0; t <= w1; t += slotLen {
		evs = append(evs, sweepEvent{t: t})
	}
	sort.Slice(evs, func(i, j int) bool { return evs[i].t < evs[j].t })

	var tx, txEx, rx, rxEx, busy int
	prev := w0
	for _, e := range evs {
		if e.t > prev {
			class := 4 // guard
			switch {
			case tx > 0 && txEx > 0, rx > 0 && tx == 0 && rxEx > 0:
				class = 3 // reclaimed
			case tx > 0:
				class = 0
			case rx > 0:
				class = 1
			case busy > 0:
				class = 2
			}
			// The segment lies inside one slot by construction.
			out[(prev-w0)/slotLen].add(class, e.t-prev)
			prev = e.t
		}
		tx += e.dTx
		txEx += e.dTxEx
		rx += e.dRx
		rxEx += e.dRxEx
		busy += e.dBusy
	}
	return out
}

func secs(ns int64) float64 { return float64(ns) / 1e9 }

func ratio(num, den int64) float64 {
	if num+den == 0 {
		return 0
	}
	return float64(num) / float64(num+den)
}
