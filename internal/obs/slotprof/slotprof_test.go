package slotprof

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

func at(d time.Duration) sim.Time { return sim.At(d) }

// parse splits the profiler's JSONL output into its three record kinds.
func parse(t *testing.T, buf *bytes.Buffer) (slots []SlotRecord, nodes []NodeRecord, sum *Summary) {
	t.Helper()
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var disc struct {
			Rec string `json:"rec"`
		}
		if err := json.Unmarshal([]byte(line), &disc); err != nil {
			t.Fatalf("bad line %q: %v", line, err)
		}
		switch disc.Rec {
		case "slot":
			var r SlotRecord
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			slots = append(slots, r)
		case "node":
			var r NodeRecord
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			nodes = append(nodes, r)
		case "summary":
			var r Summary
			if err := json.Unmarshal([]byte(line), &r); err != nil {
				t.Fatal(err)
			}
			sum = &r
		default:
			t.Fatalf("unknown record %q", disc.Rec)
		}
	}
	return
}

const eps = 1e-9

func near(a, b float64) bool { return math.Abs(a-b) < eps }

// TestClassificationPartitionsSlot: one node with one primary tx inside
// a busy window; every class is exact and the slot sums to its length.
func TestClassificationPartitionsSlot(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{
		Protocol: "T", SlotLen: time.Second, BitRate: 1000,
		Start: 0, End: at(2 * time.Second), Writer: &buf,
	})
	ms := time.Millisecond
	// Busy (non-idle MAC role) from 100ms to 900ms; primary tx 200-400ms.
	p.Record(at(100*ms), &obs.MACState{Node: 1, From: "idle", To: "wait-cts"})
	p.Record(at(200*ms), &obs.TxBegin{Node: 1, Frame: &packet.Frame{Kind: packet.KindData}, Dur: 200 * ms})
	p.Record(at(900*ms), &obs.MACState{Node: 1, From: "wait-cts", To: "idle"})

	sum, err := p.Finish(at(2 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	slots, nodes, fileSum := parse(t, &buf)
	if fileSum == nil || *fileSum != sum {
		t.Fatalf("file summary %+v != returned %+v", fileSum, sum)
	}
	if sum.Slots != 2 || sum.Nodes != 1 {
		t.Fatalf("summary window wrong: %+v", sum)
	}
	// Only slot 0 has activity; slot 1 is implied all-guard.
	if len(slots) != 1 || slots[0].Slot != 0 {
		t.Fatalf("slot lines = %+v, want just slot 0", slots)
	}
	s := slots[0]
	if !near(s.Tx, 0.2) || !near(s.Rx, 0) || !near(s.Wait, 0.6) || !near(s.Reclaimed, 0) || !near(s.Guard, 0.2) {
		t.Errorf("slot classes = %+v, want tx=0.2 wait=0.6 guard=0.2", s)
	}
	if got := s.Tx + s.Rx + s.Wait + s.Reclaimed + s.Guard; !near(got, 1.0) {
		t.Errorf("slot classes sum to %g, want 1.0", got)
	}
	// Node totals cover both slots (the idle one contributes guard).
	if len(nodes) != 1 {
		t.Fatalf("node lines = %+v", nodes)
	}
	n := nodes[0]
	if got := n.Tx + n.Rx + n.Wait + n.Reclaimed + n.Guard; !near(got, 2.0) {
		t.Errorf("node classes sum to %g, want 2.0 (2 slots)", got)
	}
}

// TestExtraPromotesToReclaimed: extra-kind tx and rx time classifies as
// reclaimed, and the exploitation ratio reflects reclaimed vs wait.
func TestExtraPromotesToReclaimed(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{
		Protocol: "T", SlotLen: time.Second, BitRate: 1000,
		Start: 0, End: at(time.Second), Writer: &buf,
	})
	ms := time.Millisecond
	// Busy all slot; EXData tx 100-300ms; the rest of the busy time waits.
	p.Record(at(0), &obs.MACState{Node: 2, From: "idle", To: "extra"})
	p.Record(at(100*ms), &obs.TxBegin{Node: 2, Frame: &packet.Frame{Kind: packet.KindEXData}, Dur: 200 * ms})
	// Extra reception: frame of 100 bits at 1000 b/s = 100ms, ending 500ms.
	exd := &packet.Frame{Kind: packet.KindEXAck, DataBits: 0}
	p.Record(at(500*ms), &obs.FrameRx{Node: 2, Frame: exd})
	rxDur := exd.TxDuration(1000).Seconds()

	sum, err := p.Finish(at(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	slots, _, _ := parse(t, &buf)
	if len(slots) != 1 {
		t.Fatalf("want 1 slot line, got %+v", slots)
	}
	s := slots[0]
	wantReclaimed := 0.2 + rxDur
	if !near(s.Reclaimed, wantReclaimed) {
		t.Errorf("reclaimed = %g, want %g (extra tx + extra rx)", s.Reclaimed, wantReclaimed)
	}
	if !near(s.Wait, 1.0-wantReclaimed) {
		t.Errorf("wait = %g, want %g", s.Wait, 1.0-wantReclaimed)
	}
	if got := s.Tx + s.Rx + s.Wait + s.Reclaimed + s.Guard; !near(got, 1.0) {
		t.Errorf("classes sum to %g, want 1.0", got)
	}
	wantExploit := wantReclaimed / (wantReclaimed + s.Wait)
	if !near(sum.Exploit, wantExploit) {
		t.Errorf("exploit = %g, want %g", sum.Exploit, wantExploit)
	}
}

// TestPriorityTxOverRx: overlapping primary tx and rx classifies as tx
// (priority order), never double-counted.
func TestPriorityTxOverRx(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{
		Protocol: "T", SlotLen: time.Second, BitRate: 1e6,
		Start: 0, End: at(time.Second), Writer: &buf,
	})
	ms := time.Millisecond
	p.Record(at(100*ms), &obs.TxBegin{Node: 3, Frame: &packet.Frame{Kind: packet.KindData}, Dur: 400 * ms})
	// A loss event lands mid-transmission (overlap 100-500 vs rx ending
	// at 450ms with negligible duration at 1e6 b/s: 64 control bits =
	// 64µs, inside the tx interval).
	p.Record(at(450*ms), &obs.FrameLoss{Node: 3, Frame: &packet.Frame{Kind: packet.KindRTS}})

	_, err := p.Finish(at(time.Second))
	if err != nil {
		t.Fatal(err)
	}
	slots, _, _ := parse(t, &buf)
	s := slots[0]
	if !near(s.Tx, 0.4) || !near(s.Rx, 0) {
		t.Errorf("overlap misclassified: tx=%g rx=%g, want tx=0.4 rx=0", s.Tx, s.Rx)
	}
	if got := s.Tx + s.Rx + s.Wait + s.Reclaimed + s.Guard; !near(got, 1.0) {
		t.Errorf("classes sum to %g, want 1.0", got)
	}
}

// TestWindowClipping: intervals straddling the window and an engaged
// node at the end are clipped, and partial trailing slots are dropped.
func TestWindowClipping(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{
		Protocol: "T", SlotLen: time.Second, BitRate: 1000,
		Start: at(time.Second), End: at(10 * time.Second), Writer: &buf,
	})
	ms := time.Millisecond
	// Tx starts before the window and a busy period never closes.
	p.Record(at(500*ms), &obs.TxBegin{Node: 1, Frame: &packet.Frame{Kind: packet.KindData}, Dur: time.Second})
	p.Record(at(2*time.Second), &obs.MACState{Node: 1, From: "idle", To: "wait-data"})

	// Finish early, mid-slot: window [1s, 3.5s) keeps slots 1 and 2 only.
	sum, err := p.Finish(at(3500 * ms))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Slots != 2 {
		t.Fatalf("slots = %d, want 2 (clipped to whole slots)", sum.Slots)
	}
	slots, _, _ := parse(t, &buf)
	var total float64
	for _, s := range slots {
		total = s.Tx + s.Rx + s.Wait + s.Reclaimed + s.Guard
		if !near(total, 1.0) {
			t.Errorf("slot %d sums to %g, want 1.0", s.Slot, total)
		}
	}
	// Slot 1 (1s-2s): tx clipped to [1, 1.5) = 0.5s.
	if slots[0].Slot != 1 || !near(slots[0].Tx, 0.5) {
		t.Errorf("clipped tx wrong: %+v", slots[0])
	}
	// Slot 2 (2s-3s): busy clipped to window end → all wait.
	if slots[1].Slot != 2 || !near(slots[1].Wait, 1.0) {
		t.Errorf("open busy interval not clipped to window: %+v", slots[1])
	}
}

// TestEmptyWindow: a degenerate window yields a zero summary, no
// records, and no error.
func TestEmptyWindow(t *testing.T) {
	var buf bytes.Buffer
	p := New(Config{Protocol: "T", SlotLen: time.Second, BitRate: 1000,
		Start: at(5 * time.Second), End: at(5 * time.Second), Writer: &buf})
	sum, err := p.Finish(at(5 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if sum.Slots != 0 || buf.Len() != 0 {
		t.Errorf("empty window wrote output: %+v %q", sum, buf.String())
	}
}
