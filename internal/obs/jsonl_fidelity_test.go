package obs

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// This file pins the hand-rolled trace-v2 encoders (encode.go,
// jsonl.go) to encoding/json, byte for byte. The reference below is
// the reflection-based encoder the exporter used through PR 7,
// reproduced verbatim; if the two ever disagree on any event, the
// golden trace hashes in the determinism suite would silently drift,
// so this test enumerates every event type and the adversarial
// corners (html-escaped strings, invalid UTF-8, float formatting
// boundaries, omitempty boundaries) explicitly.

type refFrameRef struct {
	Src    uint16 `json:"src"`
	Dst    uint16 `json:"dst"`
	Kind   string `json:"kind"`
	Seq    uint32 `json:"seq"`
	Origin uint16 `json:"origin,omitempty"`
	Bits   int    `json:"bits"`
	XID    uint64 `json:"xid,omitempty"`
}

func refFlatten(f *packet.Frame) refFrameRef {
	return refFrameRef{
		Src:    uint16(f.Src),
		Dst:    uint16(f.Dst),
		Kind:   f.Kind.String(),
		Seq:    f.Seq,
		Origin: uint16(f.Origin),
		Bits:   f.Bits(),
		XID:    f.XID,
	}
}

type refHeader struct {
	At    float64 `json:"at"`
	Event string  `json:"event"`
}

// refEncode is the PR-7 reflection encoder, kept as the fidelity
// reference.
func refEncode(w *bytes.Buffer, at sim.Time, e Event) error {
	h := refHeader{At: at.Seconds(), Event: e.Tag()}
	var line any
	switch ev := e.(type) {
	case *FrameEmit:
		line = struct {
			refHeader
			refFrameRef
			DelayS  float64 `json:"delay"`
			LevelDB float64 `json:"level_db"`
		}{h, refFlatten(ev.Frame), ev.Delay.Seconds(), ev.LevelDB}
	case *TxBegin:
		line = struct {
			refHeader
			Node uint16 `json:"node"`
			refFrameRef
			DurS float64 `json:"dur"`
		}{h, uint16(ev.Node), refFlatten(ev.Frame), ev.Dur.Seconds()}
	case *FrameRx:
		line = struct {
			refHeader
			Node uint16 `json:"node"`
			refFrameRef
		}{h, uint16(ev.Node), refFlatten(ev.Frame)}
	case *FrameLoss:
		line = struct {
			refHeader
			Node uint16 `json:"node"`
			refFrameRef
			Reason string `json:"reason"`
		}{h, uint16(ev.Node), refFlatten(ev.Frame), ev.Reason}
	case *MACState:
		line = struct {
			refHeader
			Node uint16 `json:"node"`
			From string `json:"from"`
			To   string `json:"to"`
			Slot int64  `json:"slot"`
		}{h, uint16(ev.Node), ev.From, ev.To, ev.Slot}
	case *Contention:
		line = struct {
			refHeader
			Node    uint16 `json:"node"`
			Peer    uint16 `json:"peer"`
			Outcome string `json:"outcome"`
			Slot    int64  `json:"slot"`
			XID     uint64 `json:"xid,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Outcome, ev.Slot, ev.XID}
	case *SlotPeriod:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Period string `json:"period"`
			Slot   int64  `json:"slot"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Period, ev.Slot}
	case *Delivery:
		line = struct {
			refHeader
			Node     uint16  `json:"node"`
			Origin   uint16  `json:"origin"`
			Seq      uint32  `json:"seq"`
			Bits     int     `json:"bits"`
			LatencyS float64 `json:"latency"`
			Extra    bool    `json:"extra,omitempty"`
			XID      uint64  `json:"xid,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Origin), ev.Seq, ev.Bits, ev.Latency.Seconds(), ev.Extra, ev.XID}
	case *Extra:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Action string `json:"action"`
			Reason string `json:"reason,omitempty"`
			XID    uint64 `json:"xid,omitempty"`
			Parent uint64 `json:"parent,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Action, ev.Reason, ev.XID, ev.Parent}
	case *OracleViolation:
		line = struct {
			refHeader
			Node uint16 `json:"node"`
			refFrameRef
			Reason string `json:"reason"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), refFlatten(ev.Frame), ev.Reason, ev.Detail}
	case *Fault:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Kind   string `json:"kind"`
			Action string `json:"action"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), ev.Kind, ev.Action, ev.Detail}
	case *Recovery:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer,omitempty"`
			Action string `json:"action"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Action, ev.Detail}
	case *PacketDrop:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Peer   uint16 `json:"peer"`
			Reason string `json:"reason"`
			Origin uint16 `json:"origin,omitempty"`
			Seq    uint32 `json:"seq"`
		}{h, uint16(ev.Node), uint16(ev.Peer), ev.Reason, uint16(ev.Origin), ev.Seq}
	case *Invariant:
		line = struct {
			refHeader
			Node   uint16 `json:"node"`
			Check  string `json:"check"`
			Detail string `json:"detail,omitempty"`
		}{h, uint16(ev.Node), ev.Check, ev.Detail}
	case *EngineSample:
		line = struct {
			refHeader
			QueueDepth       int     `json:"queue_depth"`
			EventsPerSec     float64 `json:"events_per_s"`
			VirtualWallRatio float64 `json:"virt_wall"`
		}{h, ev.QueueDepth, ev.EventsPerSec, ev.VirtualWallRatio}
	default:
		line = struct {
			refHeader
			Data Event `json:"data"`
		}{h, e}
	}
	return json.NewEncoder(w).Encode(line)
}

// nastyStrings exercises every branch of appendJSONString: quotes,
// backslashes, the two-byte escapes, generic control bytes, the
// html-escaped set, DEL (which encoding/json leaves alone), multibyte
// runes, U+2028/U+2029, and invalid UTF-8.
var nastyStrings = []string{
	"",
	"plain",
	`quote " backslash \ done`,
	"newline\ntab\tcarriage\rbell\x07null\x00",
	"html <tag> & entity",
	"del\x7fchar",
	"µ-law éclair 水下",
	"line sep par",
	"bad\xff\xfeutf8\xc3(",
	"edge\x1f\x20ctl",
}

// nastyFloats exercises appendJSONFloat's format boundaries: the
// 'f'/'e' switchover at 1e-6 and 1e21, exponent leading-zero
// stripping, negative zero, and shortest-round-trip subtleties.
var nastyFloats = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.25, 1.5, 3.363156e6,
	1e-6, 9.999999e-7, 1e-7, -2.5e-8, 1e21, 9.99999e20, -3e22,
	1.7976931348623157e308, 5e-324, 0.1, 1.0 / 3.0, 123456.789,
}

func fidelityEvents() []Event {
	full := &packet.Frame{
		Kind: packet.KindData, Src: 3, Dst: 7, Seq: 41,
		Origin: 12, DataBits: 2048, XID: 7777,
	}
	bare := &packet.Frame{Kind: packet.KindHello, Src: 9, Dst: packet.Broadcast}
	evs := []Event{
		&FrameEmit{Src: 3, Dst: 7, Frame: full, Delay: 137 * time.Millisecond, LevelDB: 118.25},
		&FrameEmit{Src: 9, Dst: 1, Frame: bare, Delay: 0, LevelDB: -3.5},
		&TxBegin{Node: 3, Frame: full, Dur: 682 * time.Millisecond},
		&FrameRx{Node: 7, Frame: full},
		&FrameLoss{Node: 7, Frame: bare, Reason: "collision"},
		&MACState{Node: 2, From: "idle", To: "wait-cts", Slot: 19},
		&Contention{Node: 2, Peer: 5, Outcome: ContentionWon, Slot: 19, XID: 88},
		&Contention{Node: 2, Peer: 5, Outcome: ContentionTimeout, Slot: -1},
		&SlotPeriod{Node: 4, Peer: 6, Period: "III", Slot: 20},
		&Delivery{Node: 7, Origin: 12, Seq: 41, Bits: 2048, Latency: 9*time.Second + 31*time.Millisecond, Extra: true, XID: 7777},
		&Delivery{Node: 7, Origin: 0, Seq: 0, Bits: 0, Latency: 0},
		&Extra{Node: 1, Peer: 2, Action: ExtraDeny, Reason: "gap-too-small", XID: 5, Parent: 4},
		&Extra{Node: 1, Peer: 2, Action: ExtraRequest},
		&Fault{Node: 6, Kind: "sync-loss", Action: FaultInject, Detail: "accumulated err 1.5ms"},
		&Fault{Node: 6, Kind: "outage", Action: FaultClear},
		&Recovery{Node: 3, Peer: 8, Action: RecoverySuspect, Detail: "2 consecutive handshake failures"},
		&Recovery{Node: 3, Action: RecoveryWatchdog},
		&PacketDrop{Node: 5, Peer: 9, Reason: DropRetryExhausted, Origin: 5, Seq: 77},
		&PacketDrop{Node: 5, Peer: 9, Reason: DropDeadPeer},
		&OracleViolation{Node: 7, Frame: full, Reason: OracleCapture, Detail: "overlaps 9 Data seq=3 @1s"},
		&OracleViolation{Node: 7, Frame: bare, Reason: OracleHalfDuplex},
		&Invariant{Node: 1, Check: "impossible-rx", Detail: "measured delay -3ms outside [0, 2s]"},
		&Invariant{Node: 1, Check: "channel.broadcast.src"},
		&EngineSample{QueueDepth: 42, EventsPerSec: 180443.75, VirtualWallRatio: 1216.0625},
	}
	// Every nasty string, through each distinct string-field shape
	// (plain field, omitempty field, frame kind is always a safe name).
	for _, s := range nastyStrings {
		evs = append(evs,
			&FrameLoss{Node: 1, Frame: bare, Reason: s},
			&MACState{Node: 1, From: s, To: s, Slot: 0},
			&Extra{Node: 1, Peer: 2, Action: s, Reason: s, XID: 1},
			&Fault{Node: 1, Kind: s, Action: s, Detail: s},
			&OracleViolation{Node: 1, Frame: bare, Reason: s, Detail: s},
		)
	}
	// Every nasty float, through the header "at" (handled by the
	// caller), level_db, latency-like duration fields, and the
	// engine-sample rates.
	for _, f := range nastyFloats {
		evs = append(evs,
			&FrameEmit{Src: 1, Dst: 2, Frame: bare, Delay: time.Duration(f), LevelDB: f},
			&EngineSample{QueueDepth: 0, EventsPerSec: f, VirtualWallRatio: -f},
		)
	}
	return evs
}

func TestJSONLByteFidelity(t *testing.T) {
	ats := []sim.Time{
		0, sim.At(time.Nanosecond), sim.At(1500 * time.Millisecond),
		sim.At(3 * time.Hour), sim.At(time.Duration(1)),
	}
	for _, at := range ats {
		for _, e := range fidelityEvents() {
			var want bytes.Buffer
			if err := refEncode(&want, at, e); err != nil {
				t.Fatalf("reference encoder: %v", err)
			}
			var got bytes.Buffer
			j := NewJSONL(&got)
			j.Record(at, e)
			if err := j.Close(); err != nil {
				t.Fatalf("%T: %v", e, err)
			}
			if !bytes.Equal(got.Bytes(), want.Bytes()) {
				t.Errorf("%T at %v: encoder drift\n got: %q\nwant: %q",
					e, at, got.String(), want.String())
			}
		}
	}
}

// TestJSONLNonFinitePoisons pins the encoding/json error contract: a
// NaN/Inf float drops the line and sticks as an error, exactly as the
// reflection encoder's UnsupportedValueError did.
func TestJSONLNonFinitePoisons(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		var buf bytes.Buffer
		j := NewJSONL(&buf)
		j.Record(0, &EngineSample{EventsPerSec: bad})
		if err := j.Close(); err == nil {
			t.Errorf("EventsPerSec=%v: want error, got nil", bad)
		}
		if buf.Len() != 0 {
			t.Errorf("EventsPerSec=%v: poisoned line written: %q", bad, buf.String())
		}
	}
}

// TestJSONLUnknownEventEnvelope pins the default-case envelope for
// event types without a fast path.
type oddEvent struct{ N int }

func (oddEvent) Tag() string { return "test.odd" }

func TestJSONLUnknownEventEnvelope(t *testing.T) {
	var got bytes.Buffer
	j := NewJSONL(&got)
	j.Record(sim.At(time.Second), oddEvent{N: 3})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := `{"at":1,"event":"test.odd","data":{"N":3}}` + "\n"
	if got.String() != want {
		t.Errorf("envelope = %q, want %q", got.String(), want)
	}
}

// TestJSONLBatchBoundary drives enough lines through one exporter to
// cross the async writer's flush threshold several times, verifying
// the stream is the exact concatenation a synchronous writer would
// have produced.
func TestJSONLBatchBoundary(t *testing.T) {
	var got, want bytes.Buffer
	j := NewJSONL(&got)
	detail := strings.Repeat("x", 512)
	for i := 0; i < 4096; i++ {
		e := &Invariant{Node: packet.NodeID(i), Check: "soak", Detail: detail}
		j.Record(sim.At(time.Duration(i)*time.Millisecond), e)
		if err := refEncode(&want, sim.At(time.Duration(i)*time.Millisecond), e); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Bytes(), want.Bytes()) {
		t.Fatalf("async stream diverges from synchronous reference (len %d vs %d)",
			got.Len(), want.Len())
	}
}
