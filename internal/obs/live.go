package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"sync"
	"time"

	"ewmac/internal/sim"
)

// Live is the run-introspection endpoint: a thread-safe Collector
// wrapper plus an http.Handler exposing
//
//	/metrics      — Prometheus text snapshot of the collected counters,
//	                plus sweep progress gauges
//	/progress     — the same progress as JSON
//	/debug/pprof/ — the standard Go profiler endpoints
//
// The simulation goroutine feeds it through Record (it implements
// Recorder, so it composes with Multi like any other consumer); the
// runner feeds sweep progress through Progress; HTTP handlers read
// both under the same mutex. Unlike every other recorder, Record here
// takes a lock — attach Live only when a server is actually wanted.
type Live struct {
	mu       sync.Mutex
	coll     *Collector
	protocol string
	seed     int64
	nodes    int
	done     int
	total    int
	label    string
	started  time.Time
}

// NewLive returns an empty Live endpoint.
func NewLive() *Live {
	return &Live{coll: NewCollector(), started: time.Now()}
}

// Record implements Recorder.
func (l *Live) Record(at sim.Time, e Event) {
	l.mu.Lock()
	l.coll.Record(at, e)
	l.mu.Unlock()
}

// SetRun labels the metrics with the run identity. Sweeps running many
// configurations keep one Live across all of them; the label reflects
// the most recent run to start.
func (l *Live) SetRun(protocol string, seed int64, nodes int) {
	l.mu.Lock()
	l.protocol, l.seed, l.nodes = protocol, seed, nodes
	l.mu.Unlock()
}

// Progress updates the sweep progress gauges (done of total points;
// label names the sweep or figure being computed).
func (l *Live) Progress(done, total int, label string) {
	l.mu.Lock()
	l.done, l.total, l.label = done, total, label
	l.mu.Unlock()
}

// progressState is the /progress JSON document.
type progressState struct {
	Protocol      string  `json:"protocol,omitempty"`
	Seed          int64   `json:"seed,omitempty"`
	Nodes         int     `json:"nodes,omitempty"`
	Label         string  `json:"label,omitempty"`
	Done          int     `json:"done"`
	Total         int     `json:"total"`
	UptimeSeconds float64 `json:"uptime_s"`
}

func (l *Live) snapshot() (*RunReport, progressState) {
	l.mu.Lock()
	defer l.mu.Unlock()
	r := l.coll.Report(l.coll.lastAt.Seconds())
	r.Protocol = l.protocol
	r.Seed = l.seed
	r.Nodes = l.nodes
	p := progressState{
		Protocol: l.protocol, Seed: l.seed, Nodes: l.nodes,
		Label: l.label, Done: l.done, Total: l.total,
		UptimeSeconds: time.Since(l.started).Seconds(),
	}
	return r, p
}

// Handler returns the introspection mux.
func (l *Live) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		report, p := l.snapshot()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		_ = report.WriteProm(w)
		writePromGauge(w, "uasn_sweep_points_total", "Points in the running sweep.", float64(p.Total))
		writePromGauge(w, "uasn_sweep_points_done", "Points completed so far.", float64(p.Done))
		writePromGauge(w, "uasn_uptime_seconds", "Seconds since the server started.", p.UptimeSeconds)
	})
	mux.HandleFunc("/progress", func(w http.ResponseWriter, _ *http.Request) {
		_, p := l.snapshot()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(p)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

func writePromGauge(w http.ResponseWriter, name, help string, v float64) {
	_, _ = w.Write([]byte("# HELP " + name + " " + help + "\n# TYPE " + name + " gauge\n"))
	_, _ = w.Write([]byte(name + " " + formatFloat(v) + "\n"))
}

func formatFloat(v float64) string {
	b, _ := json.Marshal(v)
	return string(b)
}

// Serve starts the introspection server on addr in a background
// goroutine and returns the bound listener address (useful with
// ":0"). The server lives until the process exits; run introspection
// is a debugging aid, not a managed service.
func (l *Live) Serve(addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	srv := &http.Server{Handler: l.Handler()}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), nil
}
