package obs

import (
	"io"
	"sync"
)

// batchWriter moves trace I/O off the simulation goroutine. The
// encoder stages lines into a byte buffer it owns; full buffers are
// handed over a bounded channel to one background goroutine, which
// writes them in hand-off order and recycles them through a free
// list. The bounded channel doubles as backpressure: a sink slower
// than the simulator blocks the producer instead of buffering without
// limit, and FIFO hand-off keeps the byte stream identical to a
// synchronous writer's.
type batchWriter struct {
	w    io.Writer
	reqs chan writeReq
	free chan []byte
	done chan struct{}

	mu  sync.Mutex
	err error
}

// writeReq is one buffer hand-off; flushed, when non-nil, is closed
// after the buffer has reached the underlying writer (the Flush
// barrier).
type writeReq struct {
	buf     []byte
	flushed chan struct{}
}

// batchBufCap sizes the staging buffers; a buffer is handed off once
// it crosses batchFlushAt, so the headroom above the threshold
// absorbs one worst-case trace line without reallocating.
const (
	batchBufCap   = 1<<15 + 1024
	batchFlushAt  = 1 << 15
	batchInFlight = 4
)

// newBatchWriter starts the drain goroutine; stop with close.
func newBatchWriter(w io.Writer) *batchWriter {
	bw := &batchWriter{
		w:    w,
		reqs: make(chan writeReq, batchInFlight),
		free: make(chan []byte, batchInFlight+1),
		done: make(chan struct{}),
	}
	go bw.loop()
	return bw
}

func (bw *batchWriter) loop() {
	defer close(bw.done)
	for r := range bw.reqs {
		if len(r.buf) > 0 {
			if _, err := bw.w.Write(r.buf); err != nil {
				bw.mu.Lock()
				if bw.err == nil {
					bw.err = err
				}
				bw.mu.Unlock()
			}
		}
		select {
		case bw.free <- r.buf[:0]:
		default: // free list full; let the buffer go
		}
		if r.flushed != nil {
			close(r.flushed)
		}
	}
}

// grab returns a recycled staging buffer, or a fresh one when the
// drain goroutine still owns them all.
func (bw *batchWriter) grab() []byte {
	select {
	case b := <-bw.free:
		return b
	default:
		return make([]byte, 0, batchBufCap)
	}
}

// submit hands buf to the drain goroutine and returns a replacement
// staging buffer. Blocks only when batchInFlight buffers are already
// queued (sink backpressure).
func (bw *batchWriter) submit(buf []byte) []byte {
	bw.reqs <- writeReq{buf: buf}
	return bw.grab()
}

// flush hands buf over and blocks until every queued buffer has been
// written, then returns a replacement staging buffer.
func (bw *batchWriter) flush(buf []byte) []byte {
	ack := make(chan struct{})
	bw.reqs <- writeReq{buf: buf, flushed: ack}
	<-ack
	return bw.grab()
}

// close drains buf and every queued write, then stops the goroutine.
func (bw *batchWriter) close(buf []byte) {
	bw.reqs <- writeReq{buf: buf}
	close(bw.reqs)
	<-bw.done
}

// firstErr returns the first write error observed by the drain
// goroutine.
func (bw *batchWriter) firstErr() error {
	bw.mu.Lock()
	defer bw.mu.Unlock()
	return bw.err
}
