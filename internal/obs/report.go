package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"ewmac/internal/sim"
)

// Collector is a Recorder that aggregates events into counters for the
// per-run report. It holds no references to frames, so collecting is
// cheap enough to leave on for every trial of a sweep.
type Collector struct {
	events     map[string]uint64
	losses     map[string]uint64
	contention map[string]uint64
	extras     map[string]uint64
	deny       map[string]uint64
	faults     map[string]uint64
	invariants map[string]uint64

	delivered      uint64
	deliveredBits  uint64
	extraDelivered uint64
	lastAt         sim.Time
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		events:     make(map[string]uint64),
		losses:     make(map[string]uint64),
		contention: make(map[string]uint64),
		extras:     make(map[string]uint64),
		deny:       make(map[string]uint64),
		faults:     make(map[string]uint64),
		invariants: make(map[string]uint64),
	}
}

// Record implements Recorder.
func (c *Collector) Record(at sim.Time, e Event) {
	c.events[e.Tag()]++
	if at > c.lastAt {
		c.lastAt = at
	}
	switch ev := e.(type) {
	case FrameLoss:
		c.losses[ev.Reason]++
	case Contention:
		c.contention[ev.Outcome]++
	case Extra:
		c.extras[ev.Action]++
		if ev.Reason != "" {
			c.deny[ev.Action+"/"+ev.Reason]++
		}
	case Fault:
		c.faults[ev.Kind+"/"+ev.Action]++
	case Invariant:
		c.invariants[ev.Check]++
	case Delivery:
		c.delivered++
		c.deliveredBits += uint64(ev.Bits)
		if ev.Extra {
			c.extraDelivered++
		}
	}
}

// RunReport is the per-run observability summary: raw event counts
// plus the derived rates that make a trial's behaviour checkable at a
// glance. It is what internal/experiment attaches to a Result when
// report collection is enabled.
type RunReport struct {
	// Protocol / Seed / Nodes identify the trial.
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	// DurationS is the measurement window in seconds.
	DurationS float64 `json:"duration_s"`

	// Events counts every recorded event by tag.
	Events map[string]uint64 `json:"events"`
	// Losses breaks phy.loss down by reason.
	Losses map[string]uint64 `json:"losses,omitempty"`
	// Contention breaks mac.contention down by outcome.
	Contention map[string]uint64 `json:"contention,omitempty"`
	// Extras breaks mac.extra down by action; DenyReasons refines the
	// deny/abort actions by the admission rule that fired.
	Extras      map[string]uint64 `json:"extras,omitempty"`
	DenyReasons map[string]uint64 `json:"deny_reasons,omitempty"`
	// Faults breaks fault.event down by kind/action (e.g.
	// "churn/inject"); Invariants breaks mac.invariant down by check.
	// Both are empty — and omitted — on fault-free runs.
	Faults     map[string]uint64 `json:"faults,omitempty"`
	Invariants map[string]uint64 `json:"invariants,omitempty"`

	// DeliveredPackets / DeliveredBits count unique payload deliveries
	// (they match mac.Counters exactly; see the experiment tests).
	DeliveredPackets uint64 `json:"delivered_packets"`
	DeliveredBits    uint64 `json:"delivered_bits"`
	ExtraDelivered   uint64 `json:"extra_delivered"`

	// Derived rates.
	ThroughputKbps   float64 `json:"throughput_kbps"`
	DeliveriesPerSec float64 `json:"deliveries_per_s"`
	// ExtraSuccessRate is completes/requests over the whole run.
	ExtraSuccessRate float64 `json:"extra_success_rate"`
	// ContentionWinRate is won/(won+timeout) RTS rounds.
	ContentionWinRate float64 `json:"contention_win_rate"`

	// Engine statistics for the run.
	EngineEvents     uint64  `json:"engine_events"`
	EngineEventsPerS float64 `json:"engine_events_per_wall_s"`
	VirtualWallRatio float64 `json:"virtual_wall_ratio"`

	// Supervision is filled by the runner layer when the run executed
	// under supervision (budgets, retry, resume); nil otherwise.
	Supervision *SupervisionStats `json:"supervision,omitempty"`
}

// SupervisionStats records how the runner supervision layer treated a
// point: how many attempts it took, how many were budget aborts, and
// whether the result was restored from a checkpoint manifest instead
// of recomputed.
type SupervisionStats struct {
	// Attempts counts executions, including the successful one.
	Attempts int `json:"attempts"`
	// Retries counts re-executions after a transient (budget) abort.
	Retries int `json:"retries"`
	// BudgetAborts counts attempts ended by sim.ErrBudgetExceeded.
	BudgetAborts int `json:"budget_aborts,omitempty"`
	// Resumed reports the result came from the manifest, not a run.
	Resumed bool `json:"resumed,omitempty"`
}

// Report reduces the collected counters to a RunReport. durationS is
// the measurement window; the caller fills the identity and engine
// fields it knows.
func (c *Collector) Report(durationS float64) *RunReport {
	r := &RunReport{
		DurationS:        durationS,
		Events:           copyMap(c.events),
		Losses:           copyMap(c.losses),
		Contention:       copyMap(c.contention),
		Extras:           copyMap(c.extras),
		DenyReasons:      copyMap(c.deny),
		Faults:           copyMap(c.faults),
		Invariants:       copyMap(c.invariants),
		DeliveredPackets: c.delivered,
		DeliveredBits:    c.deliveredBits,
		ExtraDelivered:   c.extraDelivered,
	}
	if durationS > 0 {
		r.ThroughputKbps = float64(c.deliveredBits) / durationS / 1000
		r.DeliveriesPerSec = float64(c.delivered) / durationS
	}
	if req := c.extras[ExtraRequest]; req > 0 {
		r.ExtraSuccessRate = float64(c.extras[ExtraComplete]) / float64(req)
	}
	if rounds := c.contention[ContentionWon] + c.contention[ContentionTimeout]; rounds > 0 {
		r.ContentionWinRate = float64(c.contention[ContentionWon]) / float64(rounds)
	}
	return r
}

func copyMap(m map[string]uint64) map[string]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// promEscaper escapes a label value per the Prometheus text exposition
// format, which allows exactly three escapes: \\, \", and \n. Go's %q
// is close but wrong — it also emits \t and \xNN sequences, which
// Prometheus parsers reject.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabel renders one label value, quoted and escaped for the
// exposition format.
func promLabel(v string) string {
	return `"` + promEscaper.Replace(v) + `"`
}

// WriteProm renders the report as a Prometheus-style text snapshot
// (counter and gauge families with a uasn_ prefix, labelled by
// protocol). Keys within a family are emitted in sorted order so the
// snapshot is diffable across runs.
func (r *RunReport) WriteProm(w io.Writer) error {
	var b strings.Builder
	label := func(extra string) string {
		if extra == "" {
			return "{protocol=" + promLabel(r.Protocol) + "}"
		}
		return "{protocol=" + promLabel(r.Protocol) + "," + extra + "}"
	}
	family := func(name, help, typ string, m map[string]uint64, lbl string) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s%s %d\n", name, label(lbl+"="+promLabel(k)), m[k])
		}
	}
	scalar := func(name, help, typ string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s%s %g\n",
			name, help, name, typ, name, label(""), v)
	}

	family("uasn_events_total", "Recorded events by tag.", "counter", r.Events, "event")
	family("uasn_losses_total", "PHY losses by reason.", "counter", r.Losses, "reason")
	family("uasn_contention_total", "Contention steps by outcome.", "counter", r.Contention, "outcome")
	family("uasn_extra_total", "Extra-communication steps by action.", "counter", r.Extras, "action")
	family("uasn_extra_denied_total", "Extra denials/aborts by reason.", "counter", r.DenyReasons, "reason")
	family("uasn_fault_events_total", "Injected fault lifecycle steps by kind/action.", "counter", r.Faults, "fault")
	family("uasn_invariant_checks_total", "Physical-consistency checks fired, by check.", "counter", r.Invariants, "check")
	scalar("uasn_delivered_packets", "Unique data payloads delivered.", "counter", float64(r.DeliveredPackets))
	scalar("uasn_delivered_bits", "Unique payload bits delivered.", "counter", float64(r.DeliveredBits))
	scalar("uasn_throughput_kbps", "Delivered payload rate over the window.", "gauge", r.ThroughputKbps)
	scalar("uasn_extra_success_rate", "Extra completes per request.", "gauge", r.ExtraSuccessRate)
	scalar("uasn_contention_win_rate", "Won RTS rounds per decided round.", "gauge", r.ContentionWinRate)
	scalar("uasn_engine_events", "Discrete events executed.", "counter", float64(r.EngineEvents))
	scalar("uasn_engine_events_per_wall_second", "Engine speed.", "gauge", r.EngineEventsPerS)
	scalar("uasn_virtual_wall_ratio", "Simulated seconds per wall second.", "gauge", r.VirtualWallRatio)
	if s := r.Supervision; s != nil {
		scalar("uasn_run_attempts", "Supervised executions of this point.", "counter", float64(s.Attempts))
		scalar("uasn_run_retries", "Re-executions after transient aborts.", "counter", float64(s.Retries))
		scalar("uasn_run_budget_aborts", "Attempts ended by the run budget.", "counter", float64(s.BudgetAborts))
	}

	_, err := io.WriteString(w, b.String())
	return err
}
