package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"ewmac/internal/sim"
)

// Collector is a Recorder that aggregates events into counters for the
// per-run report. It holds no references to frames and allocates
// nothing on the steady-state path: composite "a/b" keys are interned
// once per distinct pair, and per-node drop counts are kept in a
// numeric-keyed table that is formatted only at snapshot time.
// tagIdx orders the simulator's event types for the Collector's flat
// per-tag counter table; tagNames maps each slot back to its Tag().
const (
	tagEmit = iota
	tagTx
	tagRx
	tagLoss
	tagState
	tagContention
	tagPeriod
	tagDeliver
	tagExtra
	tagRecovery
	tagDrop
	tagQueue
	tagOverload
	tagFault
	tagInvariant
	tagSample
	tagViolation
	tagCount
)

var tagNames = [tagCount]string{
	tagEmit:       FrameEmit{}.Tag(),
	tagTx:         TxBegin{}.Tag(),
	tagRx:         FrameRx{}.Tag(),
	tagLoss:       FrameLoss{}.Tag(),
	tagState:      MACState{}.Tag(),
	tagContention: Contention{}.Tag(),
	tagPeriod:     SlotPeriod{}.Tag(),
	tagDeliver:    Delivery{}.Tag(),
	tagExtra:      Extra{}.Tag(),
	tagRecovery:   Recovery{}.Tag(),
	tagDrop:       PacketDrop{}.Tag(),
	tagQueue:      QueueDepth{}.Tag(),
	tagOverload:   Overload{}.Tag(),
	tagFault:      Fault{}.Tag(),
	tagInvariant:  Invariant{}.Tag(),
	tagSample:     EngineSample{}.Tag(),
	tagViolation:  OracleViolation{}.Tag(),
}

type Collector struct {
	// tags counts the known event types without touching a map on the
	// hot fold; events catches only unknown (future) types. The two are
	// merged into the report's string-keyed Events at snapshot time.
	tags   [tagCount]uint64
	events map[string]uint64

	losses     map[string]uint64
	contention map[string]uint64
	extras     map[string]uint64
	deny       map[string]uint64
	faults     map[string]uint64
	invariants map[string]uint64
	recovery   map[string]uint64
	drops      map[string]uint64
	overload   map[string]uint64
	violations map[string]uint64
	dropsNode  []uint64 // indexed by node id; see Report

	// Queue occupancy fold: network-wide peak depth and the sojourn
	// accumulator over serviced (popped) packets.
	queuePeak  int
	sojournSum float64
	sojournN   uint64

	// pairKeys interns the "a/b" composite keys (deny action/reason,
	// fault kind/action) so folding a repeated pair never concatenates.
	pairKeys map[[2]string]string

	delivered      uint64
	deliveredBits  uint64
	extraDelivered uint64
	lastAt         sim.Time
}

// NewCollector returns an empty collector.
func NewCollector() *Collector {
	return &Collector{
		events:     make(map[string]uint64),
		losses:     make(map[string]uint64),
		contention: make(map[string]uint64),
		extras:     make(map[string]uint64),
		deny:       make(map[string]uint64),
		faults:     make(map[string]uint64),
		invariants: make(map[string]uint64),
		recovery:   make(map[string]uint64),
		drops:      make(map[string]uint64),
		overload:   make(map[string]uint64),
		violations: make(map[string]uint64),
		pairKeys:   make(map[[2]string]string),
	}
}

// pairKey returns the interned "a/b" key, concatenating only the first
// time a pair is seen.
func (c *Collector) pairKey(a, b string) string {
	k := [2]string{a, b}
	if s, ok := c.pairKeys[k]; ok {
		return s
	}
	s := a + "/" + b
	c.pairKeys[k] = s
	return s
}

// Record implements Recorder.
func (c *Collector) Record(at sim.Time, e Event) {
	if at > c.lastAt {
		c.lastAt = at
	}
	switch ev := e.(type) {
	case *FrameEmit:
		c.tags[tagEmit]++
	case *TxBegin:
		c.tags[tagTx]++
	case *FrameRx:
		c.tags[tagRx]++
	case *FrameLoss:
		c.tags[tagLoss]++
		c.losses[ev.Reason]++
	case *MACState:
		c.tags[tagState]++
	case *Contention:
		c.tags[tagContention]++
		c.contention[ev.Outcome]++
	case *SlotPeriod:
		c.tags[tagPeriod]++
	case *Delivery:
		c.tags[tagDeliver]++
		c.delivered++
		c.deliveredBits += uint64(ev.Bits)
		if ev.Extra {
			c.extraDelivered++
		}
	case *Extra:
		c.tags[tagExtra]++
		c.extras[ev.Action]++
		if ev.Reason != "" {
			c.deny[c.pairKey(ev.Action, ev.Reason)]++
		}
	case *Recovery:
		c.tags[tagRecovery]++
		c.recovery[ev.Action]++
	case *PacketDrop:
		c.tags[tagDrop]++
		c.drops[ev.Reason]++
		id := int(uint16(ev.Node))
		if id >= len(c.dropsNode) {
			grown := make([]uint64, id+1)
			copy(grown, c.dropsNode)
			c.dropsNode = grown
		}
		c.dropsNode[id]++
	case *QueueDepth:
		c.tags[tagQueue]++
		if ev.Len > c.queuePeak {
			c.queuePeak = ev.Len
		}
		if ev.Op == QueuePop {
			c.sojournSum += ev.Sojourn.Seconds()
			c.sojournN++
		}
	case *Overload:
		c.tags[tagOverload]++
		c.overload[ev.Action]++
	case *OracleViolation:
		c.tags[tagViolation]++
		c.violations[ev.Reason]++
	case *Fault:
		c.tags[tagFault]++
		c.faults[c.pairKey(ev.Kind, ev.Action)]++
	case *Invariant:
		c.tags[tagInvariant]++
		c.invariants[ev.Check]++
	case *EngineSample:
		c.tags[tagSample]++
	default:
		c.events[e.Tag()]++
	}
}

// RunReport is the per-run observability summary: raw event counts
// plus the derived rates that make a trial's behaviour checkable at a
// glance. It is what internal/experiment attaches to a Result when
// report collection is enabled.
type RunReport struct {
	// Protocol / Seed / Nodes identify the trial.
	Protocol string `json:"protocol"`
	Seed     int64  `json:"seed"`
	Nodes    int    `json:"nodes"`
	// DurationS is the measurement window in seconds.
	DurationS float64 `json:"duration_s"`

	// Events counts every recorded event by tag.
	Events map[string]uint64 `json:"events"`
	// Losses breaks phy.loss down by reason.
	Losses map[string]uint64 `json:"losses,omitempty"`
	// Contention breaks mac.contention down by outcome.
	Contention map[string]uint64 `json:"contention,omitempty"`
	// Extras breaks mac.extra down by action; DenyReasons refines the
	// deny/abort actions by the admission rule that fired.
	Extras      map[string]uint64 `json:"extras,omitempty"`
	DenyReasons map[string]uint64 `json:"deny_reasons,omitempty"`
	// Faults breaks fault.event down by kind/action (e.g.
	// "churn/inject"); Invariants breaks mac.invariant down by check.
	// Both are empty — and omitted — on fault-free runs.
	Faults     map[string]uint64 `json:"faults,omitempty"`
	Invariants map[string]uint64 `json:"invariants,omitempty"`
	// RecoveryEvents breaks mac.recovery down by action
	// (suspect/dead/resurrect/watchdog-reset); Drops breaks mac.drop
	// down by reason and DropsByNode by the dropping node. All empty —
	// and omitted — when the recovery layer never fired.
	RecoveryEvents map[string]uint64 `json:"recovery,omitempty"`
	Drops          map[string]uint64 `json:"drops,omitempty"`
	DropsByNode    map[string]uint64 `json:"drops_by_node,omitempty"`
	// Overload breaks mac.overload down by action (shed-begin/shed-end/
	// retry-defer); QueuePeakDepth is the deepest any transmit queue
	// got, and QueueMeanSojournS the mean generation→dequeue time over
	// serviced packets. All empty/zero — and omitted — when queue
	// occupancy events were never recorded.
	Overload          map[string]uint64 `json:"overload,omitempty"`
	QueuePeakDepth    int               `json:"queue_peak_depth,omitempty"`
	QueueMeanSojournS float64           `json:"queue_mean_sojourn_s,omitempty"`
	// OracleViolations breaks oracle.violation down by reason
	// (no-emission/half-duplex/capture/extra-guard). Empty — and
	// omitted — unless the always-on conformance verifier found the run
	// inconsistent with channel-level ground truth; any entry here means
	// the paper's Equation (1) or §4.2 safety property was broken.
	OracleViolations map[string]uint64 `json:"oracle_violations,omitempty"`

	// DeliveredPackets / DeliveredBits count unique payload deliveries
	// (they match mac.Counters exactly; see the experiment tests).
	DeliveredPackets uint64 `json:"delivered_packets"`
	DeliveredBits    uint64 `json:"delivered_bits"`
	ExtraDelivered   uint64 `json:"extra_delivered"`

	// Derived rates.
	ThroughputKbps   float64 `json:"throughput_kbps"`
	DeliveriesPerSec float64 `json:"deliveries_per_s"`
	// ExtraSuccessRate is completes/requests over the whole run.
	ExtraSuccessRate float64 `json:"extra_success_rate"`
	// ContentionWinRate is won/(won+timeout) RTS rounds.
	ContentionWinRate float64 `json:"contention_win_rate"`

	// Engine statistics for the run.
	EngineEvents     uint64  `json:"engine_events"`
	EngineEventsPerS float64 `json:"engine_events_per_wall_s"`
	VirtualWallRatio float64 `json:"virtual_wall_ratio"`

	// Supervision is filled by the runner layer when the run executed
	// under supervision (budgets, retry, resume); nil otherwise.
	Supervision *SupervisionStats `json:"supervision,omitempty"`

	// Resilience is filled by the experiment layer on fault-injected
	// runs from the resilience tracker; nil otherwise.
	Resilience *ResilienceStats `json:"resilience,omitempty"`
}

// ResilienceStats folds the fault timeline and the recovery event
// stream into per-run recovery metrics. It lives in obs (rather than
// internal/resilience, which produces it) so RunReport can embed it
// without an import cycle: resilience consumes obs events, and the
// experiment layer imports both.
type ResilienceStats struct {
	// Episodes counts paired inject→clear fault windows (churn,
	// outage, sync-loss — the kinds whose injectors emit a clear).
	Episodes int `json:"episodes"`
	// Recovered counts episodes where the afflicted node made protocol
	// progress after its fault cleared; Unrecovered is the rest.
	Recovered   int `json:"recovered"`
	Unrecovered int `json:"unrecovered"`
	// MeanTimeToRecoverS / MaxTimeToRecoverS summarize, over recovered
	// episodes, the delay from fault clear to the node's first
	// subsequent protocol progress (a delivery at the node or a
	// contention win/grant by it).
	MeanTimeToRecoverS float64 `json:"mean_time_to_recover_s"`
	MaxTimeToRecoverS  float64 `json:"max_time_to_recover_s"`
	// DegradedS is total simulated time with at least one paired fault
	// active anywhere in the network; CleanS is the rest of the run.
	DegradedS float64 `json:"degraded_s"`
	CleanS    float64 `json:"clean_s"`
	// DegradedDeliveries / CleanDeliveries split deliveries by whether
	// they landed inside a degraded window; DegradedDeliveryRatio is
	// the degraded delivery *rate* normalized by the clean rate (1 =
	// no degradation, 0 = total collapse under faults).
	DegradedDeliveries    uint64  `json:"degraded_deliveries"`
	CleanDeliveries       uint64  `json:"clean_deliveries"`
	DegradedDeliveryRatio float64 `json:"degraded_delivery_ratio"`
	// StrandedPackets counts packets still queued to a dead next hop
	// at the end of the run — traffic the recovery layer failed to
	// either deliver or account for with a typed drop.
	StrandedPackets int `json:"stranded_packets"`
	// Liveness/watchdog tallies from the mac.recovery stream.
	SuspectMarks   uint64 `json:"suspect_marks"`
	DeadMarks      uint64 `json:"dead_marks"`
	Resurrections  uint64 `json:"resurrections"`
	WatchdogResets uint64 `json:"watchdog_resets"`
	// Overload tallies from the mac.overload stream: merged windows with
	// at least one admission gate closed (episodes and total seconds),
	// packets refused by a closed gate, and retries postponed by an
	// empty retry budget. All zero — and omitted — when the overload
	// layer never fired.
	OverloadEpisodes int     `json:"overload_episodes,omitempty"`
	OverloadS        float64 `json:"overload_s,omitempty"`
	ShedPackets      uint64  `json:"shed_packets,omitempty"`
	RetryDeferrals   uint64  `json:"retry_deferrals,omitempty"`
	// OracleViolations counts conformance-oracle violations observed
	// during the run (zero — and omitted — on conforming runs). Folded
	// here so the resilience summary answers "did the protocol stay
	// safe under faults", not just "did it stay live".
	OracleViolations uint64 `json:"oracle_violations,omitempty"`
}

// SupervisionStats records how the runner supervision layer treated a
// point: how many attempts it took, how many were budget aborts, and
// whether the result was restored from a checkpoint manifest instead
// of recomputed.
type SupervisionStats struct {
	// Attempts counts executions, including the successful one.
	Attempts int `json:"attempts"`
	// Retries counts re-executions after a transient (budget) abort.
	Retries int `json:"retries"`
	// BudgetAborts counts attempts ended by sim.ErrBudgetExceeded.
	BudgetAborts int `json:"budget_aborts,omitempty"`
	// Resumed reports the result came from the manifest, not a run.
	Resumed bool `json:"resumed,omitempty"`
}

// Report reduces the collected counters to a RunReport. durationS is
// the measurement window; the caller fills the identity and engine
// fields it knows.
func (c *Collector) Report(durationS float64) *RunReport {
	r := &RunReport{
		DurationS:        durationS,
		Events:           c.eventTotals(),
		Losses:           copyMap(c.losses),
		Contention:       copyMap(c.contention),
		Extras:           copyMap(c.extras),
		DenyReasons:      copyMap(c.deny),
		Faults:           copyMap(c.faults),
		Invariants:       copyMap(c.invariants),
		RecoveryEvents:   copyMap(c.recovery),
		Drops:            copyMap(c.drops),
		DropsByNode:      c.dropsByNode(),
		Overload:         copyMap(c.overload),
		OracleViolations: copyMap(c.violations),
		QueuePeakDepth:   c.queuePeak,
		DeliveredPackets: c.delivered,
		DeliveredBits:    c.deliveredBits,
		ExtraDelivered:   c.extraDelivered,
	}
	if durationS > 0 {
		r.ThroughputKbps = float64(c.deliveredBits) / durationS / 1000
		r.DeliveriesPerSec = float64(c.delivered) / durationS
	}
	if req := c.extras[ExtraRequest]; req > 0 {
		r.ExtraSuccessRate = float64(c.extras[ExtraComplete]) / float64(req)
	}
	if rounds := c.contention[ContentionWon] + c.contention[ContentionTimeout]; rounds > 0 {
		r.ContentionWinRate = float64(c.contention[ContentionWon]) / float64(rounds)
	}
	if c.sojournN > 0 {
		r.QueueMeanSojournS = c.sojournSum / float64(c.sojournN)
	}
	return r
}

// eventTotals merges the flat per-tag counters with the unknown-type
// overflow map into the report's string-keyed event counts.
func (c *Collector) eventTotals() map[string]uint64 {
	n := len(c.events)
	for _, v := range c.tags {
		if v > 0 {
			n++
		}
	}
	if n == 0 {
		return nil
	}
	out := make(map[string]uint64, n)
	for k, v := range c.events {
		out[k] = v
	}
	for i, v := range c.tags {
		if v > 0 {
			out[tagNames[i]] = v
		}
	}
	return out
}

// dropsByNode formats the numeric-keyed drop table into the report's
// string-keyed map (decimal node ids, as the trace schema has always
// shown them). Snapshot-time only; the fold itself never formats.
func (c *Collector) dropsByNode() map[string]uint64 {
	var out map[string]uint64
	for id, n := range c.dropsNode {
		if n == 0 {
			continue
		}
		if out == nil {
			out = make(map[string]uint64)
		}
		out[strconv.Itoa(id)] = n
	}
	return out
}

func copyMap(m map[string]uint64) map[string]uint64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]uint64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// WriteJSON renders the report as indented JSON.
func (r *RunReport) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// promEscaper escapes a label value per the Prometheus text exposition
// format, which allows exactly three escapes: \\, \", and \n. Go's %q
// is close but wrong — it also emits \t and \xNN sequences, which
// Prometheus parsers reject.
var promEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)

// promLabel renders one label value, quoted and escaped for the
// exposition format.
func promLabel(v string) string {
	return `"` + promEscaper.Replace(v) + `"`
}

// WriteProm renders the report as a Prometheus-style text snapshot
// (counter and gauge families with a uasn_ prefix, labelled by
// protocol). Keys within a family are emitted in sorted order so the
// snapshot is diffable across runs.
func (r *RunReport) WriteProm(w io.Writer) error {
	var b strings.Builder
	label := func(extra string) string {
		if extra == "" {
			return "{protocol=" + promLabel(r.Protocol) + "}"
		}
		return "{protocol=" + promLabel(r.Protocol) + "," + extra + "}"
	}
	family := func(name, help, typ string, m map[string]uint64, lbl string) {
		if len(m) == 0 {
			return
		}
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&b, "%s%s %d\n", name, label(lbl+"="+promLabel(k)), m[k])
		}
	}
	scalar := func(name, help, typ string, v float64) {
		fmt.Fprintf(&b, "# HELP %s %s\n# TYPE %s %s\n%s%s %g\n",
			name, help, name, typ, name, label(""), v)
	}

	family("uasn_events_total", "Recorded events by tag.", "counter", r.Events, "event")
	family("uasn_losses_total", "PHY losses by reason.", "counter", r.Losses, "reason")
	family("uasn_contention_total", "Contention steps by outcome.", "counter", r.Contention, "outcome")
	family("uasn_extra_total", "Extra-communication steps by action.", "counter", r.Extras, "action")
	family("uasn_extra_denied_total", "Extra denials/aborts by reason.", "counter", r.DenyReasons, "reason")
	family("uasn_fault_events_total", "Injected fault lifecycle steps by kind/action.", "counter", r.Faults, "fault")
	family("uasn_invariant_checks_total", "Physical-consistency checks fired, by check.", "counter", r.Invariants, "check")
	family("uasn_recovery_events_total", "MAC liveness/watchdog recovery steps by action.", "counter", r.RecoveryEvents, "action")
	family("uasn_dropped_total", "MAC packet drops by reason.", "counter", r.Drops, "reason")
	family("uasn_dropped_by_node_total", "MAC packet drops by dropping node.", "counter", r.DropsByNode, "node")
	family("uasn_overload_total", "Overload-protection steps by action.", "counter", r.Overload, "action")
	family("uasn_oracle_violations_total", "Conformance-oracle violations by reason.", "counter", r.OracleViolations, "reason")
	if r.QueuePeakDepth > 0 {
		scalar("uasn_queue_peak_depth", "Deepest transmit-queue occupancy seen.", "gauge", float64(r.QueuePeakDepth))
		scalar("uasn_queue_mean_sojourn_seconds", "Mean generation-to-dequeue time of serviced packets.", "gauge", r.QueueMeanSojournS)
	}
	if shed := r.Drops[DropShed]; shed > 0 {
		scalar("uasn_shed_total", "Packets refused by the admission gate.", "counter", float64(shed))
	}
	scalar("uasn_delivered_packets", "Unique data payloads delivered.", "counter", float64(r.DeliveredPackets))
	scalar("uasn_delivered_bits", "Unique payload bits delivered.", "counter", float64(r.DeliveredBits))
	scalar("uasn_throughput_kbps", "Delivered payload rate over the window.", "gauge", r.ThroughputKbps)
	scalar("uasn_extra_success_rate", "Extra completes per request.", "gauge", r.ExtraSuccessRate)
	scalar("uasn_contention_win_rate", "Won RTS rounds per decided round.", "gauge", r.ContentionWinRate)
	scalar("uasn_engine_events", "Discrete events executed.", "counter", float64(r.EngineEvents))
	scalar("uasn_engine_events_per_wall_second", "Engine speed.", "gauge", r.EngineEventsPerS)
	scalar("uasn_virtual_wall_ratio", "Simulated seconds per wall second.", "gauge", r.VirtualWallRatio)
	if s := r.Supervision; s != nil {
		scalar("uasn_run_attempts", "Supervised executions of this point.", "counter", float64(s.Attempts))
		scalar("uasn_run_retries", "Re-executions after transient aborts.", "counter", float64(s.Retries))
		scalar("uasn_run_budget_aborts", "Attempts ended by the run budget.", "counter", float64(s.BudgetAborts))
	}
	if rs := r.Resilience; rs != nil {
		scalar("uasn_fault_episodes", "Paired inject/clear fault windows.", "counter", float64(rs.Episodes))
		scalar("uasn_fault_episodes_recovered", "Episodes with post-clear progress.", "counter", float64(rs.Recovered))
		scalar("uasn_fault_episodes_unrecovered", "Episodes without post-clear progress.", "counter", float64(rs.Unrecovered))
		scalar("uasn_recovery_mean_seconds", "Mean time from fault clear to progress.", "gauge", rs.MeanTimeToRecoverS)
		scalar("uasn_recovery_max_seconds", "Max time from fault clear to progress.", "gauge", rs.MaxTimeToRecoverS)
		scalar("uasn_degraded_seconds", "Simulated time with a paired fault active.", "counter", rs.DegradedS)
		scalar("uasn_degraded_delivery_ratio", "Degraded delivery rate over clean rate.", "gauge", rs.DegradedDeliveryRatio)
		scalar("uasn_stranded_packets", "Packets still queued to a dead peer at run end.", "gauge", float64(rs.StrandedPackets))
	}

	_, err := io.WriteString(w, b.String())
	return err
}
