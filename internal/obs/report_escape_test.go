package obs

import (
	"bytes"
	"strings"
	"testing"
)

// TestPromLabel covers the Prometheus exposition-format escaping rules:
// backslash, double quote, and newline are escaped; everything else —
// including tabs and non-ASCII — passes through raw (Go's %q escapes,
// like \t and \xNN, are invalid in the exposition format).
func TestPromLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"plain", `"plain"`},
		{"", `""`},
		{`say "hi"`, `"say \"hi\""`},
		{`back\slash`, `"back\\slash"`},
		{"two\nlines", `"two\nlines"`},
		{"tab\there", "\"tab\there\""},
		{"ünïcodé", `"ünïcodé"`},
		{"\\\"\n", `"\\\"\n"`},
	}
	for _, c := range cases {
		if got := promLabel(c.in); got != c.want {
			t.Errorf("promLabel(%q) = %s, want %s", c.in, got, c.want)
		}
	}
}

// TestWritePromEscapesLabelValues: label values with quotes, backslashes
// and newlines reach the exposition output escaped, not as Go-quoted
// strings.
func TestWritePromEscapesLabelValues(t *testing.T) {
	c := NewCollector()
	c.Record(0, &Delivery{Bits: 1024})
	c.Record(0, &FrameLoss{Reason: "odd \"reason\"\\with\nnewline"})
	r := c.Report(1)
	r.Protocol = `EW"MAC\v1`

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`protocol="EW\"MAC\\v1"`,
		`reason="odd \"reason\"\\with\nnewline"`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
	// Every line must still be a single physical line: the raw newline
	// inside the reason label must not split its sample.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if strings.HasPrefix(line, "uasn_losses_total") && !strings.HasSuffix(strings.TrimSpace(line), "1") {
			t.Errorf("label newline split a sample line: %q", line)
		}
	}
	if strings.Contains(out, `\x`) {
		t.Errorf("Go-style hex escapes leaked into prom output:\n%s", out)
	}
}
