package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// This file holds the crash-safe persistence primitives shared by every
// result writer in the repo: the trace/time-series exporters, the
// figure-table CSV writer, the benchmark JSON writer, and the runner's
// checkpoint manifest. Two shapes cover all of them:
//
//   - AtomicFile / WriteFileAtomic: whole-file outputs published with
//     temp-file + fsync + rename, so a killed process leaves either the
//     previous complete file or the new complete file, never a torn one.
//   - AppendJSONL: an append-only journal whose every record is fsync'd,
//     so a killed process loses at most the record being written (a torn
//     final line, which readers must tolerate).

// AtomicFile is an io.WriteCloser that stages writes in a temp file in
// the destination directory and publishes them at Close via fsync +
// rename. Until Close succeeds the destination is untouched; Abort (or
// a Close error) removes the temp file.
type AtomicFile struct {
	f    *os.File
	path string
	done bool
}

// CreateAtomic starts an atomic write to path.
func CreateAtomic(path string) (*AtomicFile, error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, "."+filepath.Base(path)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("obs: atomic create %s: %w", path, err)
	}
	return &AtomicFile{f: f, path: path}, nil
}

// Write implements io.Writer.
func (a *AtomicFile) Write(p []byte) (int, error) { return a.f.Write(p) }

// Close fsyncs the staged content, renames it over the destination,
// and fsyncs the directory so the rename itself survives a crash.
func (a *AtomicFile) Close() error {
	if a.done {
		return nil
	}
	a.done = true
	tmp := a.f.Name()
	if err := a.f.Sync(); err != nil {
		a.f.Close()
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic sync %s: %w", a.path, err)
	}
	if err := a.f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic close %s: %w", a.path, err)
	}
	if err := os.Rename(tmp, a.path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("obs: atomic publish %s: %w", a.path, err)
	}
	return syncDir(filepath.Dir(a.path))
}

// Abort discards the staged content, leaving the destination untouched.
// Safe to call after Close (no-op).
func (a *AtomicFile) Abort() {
	if a.done {
		return
	}
	a.done = true
	tmp := a.f.Name()
	a.f.Close()
	os.Remove(tmp)
}

// WriteFileAtomic writes data to path through an AtomicFile.
func WriteFileAtomic(path string, data []byte) error {
	a, err := CreateAtomic(path)
	if err != nil {
		return err
	}
	if _, err := a.Write(data); err != nil {
		a.Abort()
		return fmt.Errorf("obs: atomic write %s: %w", path, err)
	}
	return a.Close()
}

// syncDir fsyncs a directory so a just-renamed entry is durable. Some
// filesystems refuse to fsync directories; that is not worth failing a
// completed write over.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return nil
	}
	defer d.Close()
	d.Sync()
	return nil
}

// AppendJSONL is a crash-safe append-only JSONL journal: each Append
// marshals one record, writes it with a trailing newline, and fsyncs
// before returning, so an acknowledged record survives SIGKILL. It is
// safe for concurrent use.
type AppendJSONL struct {
	mu sync.Mutex
	f  *os.File
}

// CreateJSONL truncates (or creates) the journal at path.
func CreateJSONL(path string) (*AppendJSONL, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: journal create %s: %w", path, err)
	}
	return &AppendJSONL{f: f}, nil
}

// OpenJSONLAt reopens an existing journal for appending after byte
// offset valid — everything past it (a torn final line from a killed
// writer) is truncated away so the next record starts on a clean line.
func OpenJSONLAt(path string, valid int64) (*AppendJSONL, error) {
	f, err := os.OpenFile(path, os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("obs: journal open %s: %w", path, err)
	}
	if err := f.Truncate(valid); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: journal truncate %s: %w", path, err)
	}
	if _, err := f.Seek(valid, io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("obs: journal seek %s: %w", path, err)
	}
	return &AppendJSONL{f: f}, nil
}

// Append journals one record durably.
func (a *AppendJSONL) Append(v any) error {
	line, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("obs: journal marshal: %w", err)
	}
	line = append(line, '\n')
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, err := a.f.Write(line); err != nil {
		return fmt.Errorf("obs: journal append: %w", err)
	}
	if err := a.f.Sync(); err != nil {
		return fmt.Errorf("obs: journal sync: %w", err)
	}
	return nil
}

// Close closes the journal file.
func (a *AppendJSONL) Close() error {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.f.Close()
}
