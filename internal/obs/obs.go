// Package obs is the simulator's unified observability layer: a
// structured event bus threaded through the channel, PHY, MAC, and
// experiment layers, plus the consumers built on top of it — a
// trace-v2 JSONL exporter, a periodic time-series sampler (CSV), and a
// per-run report collector with a Prometheus-style text snapshot.
//
// Events are plain structs dispatched through the nil-checked Recorder
// interface. Every emission site guards with a nil test before
// constructing the event, so with observability disabled the hot path
// pays exactly one predictable branch and zero allocations. Producers
// never block on consumers: recorders run synchronously on the
// simulation goroutine and must not re-enter the engine.
//
// With observability enabled the path is allocation-free too: emission
// sites call the per-type Emit helpers (emit.go), which lease a record
// from a per-type sync.Pool and deliver it to Record as a pointer
// (*FrameEmit, *Delivery, …). Ownership rule: the record is reclaimed
// the moment Record returns, so a recorder that keeps an event past
// its own Record call must copy the struct. Frame pointers inside
// events are shared copy-on-write frames and are safe to retain.
package obs

import (
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Event is one structured observation. Tag returns the stable event
// name used as the "event" field of the trace-v2 JSONL schema and as
// the counter key in RunReport; tags are dotted layer.name identifiers
// and form the compatibility surface of the trace format.
type Event interface {
	Tag() string
}

// Recorder consumes events. Implementations run on the simulation
// goroutine; Record must not schedule engine events or transmit.
type Recorder interface {
	Record(at sim.Time, e Event)
}

// RecorderFunc adapts a function to the Recorder interface.
type RecorderFunc func(at sim.Time, e Event)

// Record implements Recorder.
func (f RecorderFunc) Record(at sim.Time, e Event) { f(at, e) }

// multi fans one event out to several recorders in order.
type multi []Recorder

// Record implements Recorder.
func (m multi) Record(at sim.Time, e Event) {
	for _, r := range m {
		r.Record(at, e)
	}
}

// Multi combines recorders into one, dropping nils. It returns nil
// when every argument is nil, so the result can be stored directly in
// a nil-checked recorder field.
func Multi(recs ...Recorder) Recorder {
	var live multi
	for _, r := range recs {
		if r != nil {
			live = append(live, r)
		}
	}
	switch len(live) {
	case 0:
		return nil
	case 1:
		return live[0]
	default:
		return live
	}
}

// ---- Channel events ----

// FrameEmit records one scheduled frame delivery at emission time: the
// channel computed a propagation delay and received level for the
// (src, dst) pair and scheduled the arrival. It is the trace-v2
// superset of the legacy channel.TraceFunc observation.
type FrameEmit struct {
	Src, Dst packet.NodeID
	Frame    *packet.Frame
	Delay    time.Duration
	LevelDB  float64
}

// Tag implements Event.
func (FrameEmit) Tag() string { return "chan.emit" }

// ---- PHY events ----

// TxBegin records the start of a transmission at a modem.
type TxBegin struct {
	Node  packet.NodeID
	Frame *packet.Frame
	Dur   time.Duration
}

// Tag implements Event.
func (TxBegin) Tag() string { return "phy.tx" }

// FrameRx records one successfully decoded frame at a modem (whether
// or not the node is the destination).
type FrameRx struct {
	Node  packet.NodeID
	Frame *packet.Frame
}

// Tag implements Event.
func (FrameRx) Tag() string { return "phy.rx" }

// FrameLoss records a decodable frame that was not delivered, with the
// PHY's loss classification. ReasonCode carries the raw
// phy.LossReason value (obs cannot import phy); Reason is its string
// form, which is what the trace schema exposes.
type FrameLoss struct {
	Node       packet.NodeID
	Frame      *packet.Frame
	ReasonCode uint8
	Reason     string
}

// Tag implements Event.
func (FrameLoss) Tag() string { return "phy.loss" }

// ---- MAC events ----

// MACState records one primary-handshake role transition at a node.
// Roles are the mac.Role strings ("idle", "wait-cts", ...).
type MACState struct {
	Node     packet.NodeID
	From, To string
	Slot     int64
}

// Tag implements Event.
func (MACState) Tag() string { return "mac.state" }

// Contention outcomes.
const (
	// ContentionRTS: the node transmitted an RTS for Peer.
	ContentionRTS = "rts"
	// ContentionWon: the node's RTS was answered with a CTS.
	ContentionWon = "won"
	// ContentionLost: the node learned its target negotiated with
	// someone else (overheard RTS/CTS from the target).
	ContentionLost = "lost"
	// ContentionTimeout: no CTS arrived within the deadline.
	ContentionTimeout = "timeout"
	// ContentionGrant: the node, as receiver, answered an RTS with a CTS.
	ContentionGrant = "grant"
)

// Contention records one step of an RTS contention round. XID is the
// exchange lineage of the handshake the step belongs to (zero when the
// emitting protocol has no exchange in flight).
type Contention struct {
	Node    packet.NodeID
	Peer    packet.NodeID
	Outcome string
	Slot    int64
	XID     uint64
}

// Tag implements Event.
func (Contention) Tag() string { return "mac.contention" }

// SlotPeriod records a node entering one of the handshake periods of
// the paper's Figure 2 timeline, which partitions a four-way exchange
// into seven waiting/transmission periods:
//
//	I   sender sent RTS, waiting for the CTS slot
//	II  receiver sent CTS, waiting for data
//	III sender received CTS, waiting for its data slot
//	IV  data on air
//	V   sender finished data, waiting for the Ack slot
//	VI  receiver transmitting the Ack
//	VII exchange complete (Ack received / post-exchange)
//
// Together with the pairwise delay table these records reconstruct the
// exact slot timeline the extra-communication scheduler reasons about.
type SlotPeriod struct {
	Node   packet.NodeID
	Peer   packet.NodeID
	Period string // "I".."VII"
	Slot   int64
}

// Tag implements Event.
func (SlotPeriod) Tag() string { return "mac.period" }

// Delivery records one unique data payload accepted at its destination
// (the same instant mac.Counters.DeliveredPackets increments). XID is
// the lineage of the exchange that carried the payload.
type Delivery struct {
	Node    packet.NodeID
	Origin  packet.NodeID
	Seq     uint32
	Bits    int
	Latency time.Duration
	Extra   bool
	XID     uint64
}

// Tag implements Event.
func (Delivery) Tag() string { return "mac.deliver" }

// Extra-communication actions.
const (
	// ExtraRequest: an opportunistic request/steal went on air
	// (EXR, RTA, or StolenData).
	ExtraRequest = "request"
	// ExtraGrant: the negotiated node granted the request (EXC sent).
	ExtraGrant = "grant"
	// ExtraDeny: the opportunistic path was rejected; Reason says why.
	ExtraDeny = "deny"
	// ExtraAbort: an in-flight attempt was abandoned; Reason says why.
	ExtraAbort = "abort"
	// ExtraComplete: the extra exchange was acknowledged end to end.
	ExtraComplete = "complete"
)

// Extra records one step of an extra-communication exchange (EW-MAC
// EXR/EXC, ROPA appending, CS-MAC stealing). Reason is set on deny and
// abort actions and names the admission rule that fired — the signal
// for diagnosing a starved extra-communication path. XID is the extra
// exchange's own lineage (zero on pre-flight denials, before any frame
// existed); Parent, when nonzero, is the XID of the primary handshake
// whose waiting window the extra exchange exploits.
type Extra struct {
	Node   packet.NodeID
	Peer   packet.NodeID
	Action string
	Reason string
	XID    uint64
	Parent uint64
}

// Tag implements Event.
func (Extra) Tag() string { return "mac.extra" }

// Recovery actions.
const (
	// RecoverySuspect: consecutive handshake failures crossed the
	// suspect threshold for the peer.
	RecoverySuspect = "suspect"
	// RecoveryDead: the peer crossed the dead threshold; pending
	// traffic to it is purged and its delay-table entry quarantined.
	RecoveryDead = "dead"
	// RecoveryResurrect: a frame was overheard from a suspect/dead
	// peer, restoring it to alive.
	RecoveryResurrect = "resurrect"
	// RecoveryWatchdog: the node sat in a non-idle MAC state past the
	// delay-budget bound and was force-reset through the cold-restart
	// path.
	RecoveryWatchdog = "watchdog-reset"
)

// Recovery records one step of the MAC liveness/watchdog machinery: a
// peer transitioning between alive/suspect/dead, a resurrection on an
// overheard frame, or a stuck-state watchdog firing. Peer is the
// subject of liveness transitions and zero for watchdog resets; Detail
// carries the trigger (consecutive failure count, the stuck role, ...).
type Recovery struct {
	Node   packet.NodeID
	Peer   packet.NodeID
	Action string
	Detail string
}

// Tag implements Event.
func (Recovery) Tag() string { return "mac.recovery" }

// Packet drop reasons. Every packet the MAC abandons — including queue
// overflow, which historically never reached the event bus — is
// reported with one of these.
const (
	// DropRetryExhausted: the handshake failed MaxRetries times.
	DropRetryExhausted = "retry-exhausted"
	// DropDeadPeer: the packet's next hop was declared dead.
	DropDeadPeer = "dead-peer"
	// DropQueueFull: the bounded queue rejected or displaced the packet
	// on overflow (tail drop, or a priority insert displacing it).
	DropQueueFull = "queue-full"
	// DropOldest: the drop-oldest policy evicted the packet to admit a
	// newer one.
	DropOldest = "drop-oldest"
	// DropExpired: the packet outlived its per-packet deadline and was
	// lazily evicted.
	DropExpired = "deadline-expired"
	// DropShed: the admission gate refused the packet while occupancy
	// sat above the high-water mark.
	DropShed = "load-shed"
)

// PacketDrop records one queued application packet abandoned by the
// MAC with a typed reason, the moment mac.Counters.Dropped increments.
type PacketDrop struct {
	Node   packet.NodeID
	Peer   packet.NodeID
	Reason string
	Origin packet.NodeID
	Seq    uint32
}

// Tag implements Event.
func (PacketDrop) Tag() string { return "mac.drop" }

// Queue occupancy operations.
const (
	// QueuePush: a packet was accepted into the transmit queue.
	QueuePush = "push"
	// QueuePop: a packet left the queue for service (dequeue or
	// completion — drops are reported as PacketDrop, not here).
	QueuePop = "pop"
)

// QueueDepth records one transmit-queue occupancy change. Len is the
// occupancy after the operation; Sojourn is the packet's
// generation→dequeue time, set on pop only — together they give queue
// backlog and waiting-time distributions under load.
type QueueDepth struct {
	Node    packet.NodeID
	Len     int
	Op      string
	Sojourn time.Duration
}

// Tag implements Event.
func (QueueDepth) Tag() string { return "mac.queue" }

// Overload lifecycle actions.
const (
	// OverloadShedBegin: queue occupancy crossed the high-water mark;
	// the admission gate closed and begins shedding.
	OverloadShedBegin = "shed-begin"
	// OverloadShedEnd: occupancy drained to the low-water mark; the
	// gate reopened.
	OverloadShedEnd = "shed-end"
	// OverloadRetryDefer: a handshake retry was postponed because the
	// node's retry budget was empty.
	OverloadRetryDefer = "retry-defer"
)

// Overload records one step of the MAC overload-protection machinery:
// the admission gate opening or closing an overload episode, or the
// retry budget deferring a retry. Len is the queue occupancy at the
// instant of the action.
type Overload struct {
	Node   packet.NodeID
	Action string
	Len    int
}

// Tag implements Event.
func (Overload) Tag() string { return "mac.overload" }

// ---- Conformance events ----

// Oracle violation reasons. Each names the conformance property the
// streaming Equation-(1) verifier (internal/oracle.Streaming) found
// broken for one reception or loss.
const (
	// OracleNoEmission: a decode was claimed for a frame the channel
	// never delivered to that receiver.
	OracleNoEmission = "no-emission"
	// OracleHalfDuplex: a frame was decoded while its receiver was
	// transmitting.
	OracleHalfDuplex = "half-duplex"
	// OracleCapture: a frame was decoded despite an overlapping foreign
	// arrival within the capture margin (Equation (1) violation).
	OracleCapture = "capture"
	// OracleExtraGuard: a negotiated CTS/Data/Ack was lost to a
	// collision with an extra-communication frame (§4.2 guard breach).
	OracleExtraGuard = "extra-guard"
)

// OracleViolation records one conformance violation found by the
// always-on verification oracle: the named reception or loss at Node is
// inconsistent with channel-level ground truth. Frame is the violating
// frame (copy-on-write, safe to retain); Detail names the conflicting
// transmission or arrival.
type OracleViolation struct {
	Node   packet.NodeID
	Frame  *packet.Frame
	Reason string
	Detail string
}

// Tag implements Event.
func (OracleViolation) Tag() string { return "oracle.violation" }

// ---- Fault events ----

// Fault lifecycle actions.
const (
	// FaultInject: the fault became active on the node.
	FaultInject = "inject"
	// FaultClear: the fault ended and the node recovered.
	FaultClear = "clear"
)

// Fault records one fault-injection lifecycle step: a scenario injector
// activated (inject) or lifted (clear) a fault on a node. Kind names
// the injector ("churn", "drift", "sync-loss", "outage",
// "interference", "delay-shift"); Detail carries the injector-specific
// magnitude (skew in ppm, level in dB, jump in meters, ...).
type Fault struct {
	Node   packet.NodeID
	Kind   string
	Action string
	Detail string
}

// Tag implements Event.
func (Fault) Tag() string { return "fault.event" }

// Invariant records a physical-consistency check that fired at a node:
// the protocol observed something impossible under its own model of
// the world (for example a frame whose timestamp arithmetic yields a
// negative propagation delay under clock drift). The node degrades
// gracefully — it skips the poisoned measurement — and this event is
// the audit trail.
type Invariant struct {
	Node   packet.NodeID
	Check  string
	Detail string
}

// Tag implements Event.
func (Invariant) Tag() string { return "mac.invariant" }

// ---- Engine events ----

// EngineSample is a periodic event-loop health sample, emitted by the
// time-series sampler rather than by the engine itself (the engine's
// hot loop stays observer-free; its counters are polled).
type EngineSample struct {
	QueueDepth int
	// EventsPerSec is the executed-event rate over the last sample
	// interval, per simulated second.
	EventsPerSec float64
	// VirtualWallRatio is simulated seconds per wall second over the
	// last sample interval (higher is faster).
	VirtualWallRatio float64
}

// Tag implements Event.
func (EngineSample) Tag() string { return "engine.sample" }
