package obs

import (
	"math"
	"strconv"
	"unicode/utf8"
)

// Hand-rolled JSON fragment encoders for the trace-v2 fast path. The
// contract is byte-identity with encoding/json (html-escaping on, the
// json.Encoder default), so the golden trace hashes pinned by the
// determinism suite and every tracetool invocation are oblivious to
// the switch away from reflection. jsonl_fidelity_test.go enforces the
// contract against encoding/json itself for every event type and for
// adversarial strings and floats.

const jsonHex = "0123456789abcdef"

// appendJSONFloat appends f exactly as encoding/json renders a
// float64: shortest round-trip form, 'f' format inside [1e-6, 1e21),
// 'e' outside, with the exponent's leading zero stripped. ok is false
// for NaN/Inf, which encoding/json refuses (UnsupportedValueError).
func appendJSONFloat(b []byte, f float64) (_ []byte, ok bool) {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		return b, false
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		// Clean up e-09 to e-9, as encoding/json does.
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b, true
}

// jsonSafe reports whether a single byte can be copied verbatim into a
// JSON string under encoding/json's html-escaping rules (its
// htmlSafeSet: printable, not a quote or backslash, not <, >, &).
func jsonSafe(c byte) bool {
	return c >= 0x20 && c != '"' && c != '\\' && c != '<' && c != '>' && c != '&'
}

// appendJSONString appends s as a quoted JSON string, byte-identical
// to encoding/json's encoder with html escaping on: control bytes and
// <, >, & become \u00xx (\n, \r, \t as two-byte escapes), invalid
// UTF-8 becomes �, and U+2028/U+2029 are escaped for the benefit
// of javascript consumers.
func appendJSONString(b []byte, s string) []byte {
	b = append(b, '"')
	start := 0
	for i := 0; i < len(s); {
		if c := s[i]; c < utf8.RuneSelf {
			if jsonSafe(c) {
				i++
				continue
			}
			b = append(b, s[start:i]...)
			switch c {
			case '\\', '"':
				b = append(b, '\\', c)
			case '\n':
				b = append(b, '\\', 'n')
			case '\r':
				b = append(b, '\\', 'r')
			case '\t':
				b = append(b, '\\', 't')
			default:
				b = append(b, '\\', 'u', '0', '0', jsonHex[c>>4], jsonHex[c&0xF])
			}
			i++
			start = i
			continue
		}
		r, size := utf8.DecodeRuneInString(s[i:])
		if r == utf8.RuneError && size == 1 {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', 'f', 'f', 'f', 'd')
			i += size
			start = i
			continue
		}
		if r == '\u2028' || r == '\u2029' {
			b = append(b, s[start:i]...)
			b = append(b, '\\', 'u', '2', '0', '2', jsonHex[r&0xF])
			i += size
			start = i
			continue
		}
		i += size
	}
	b = append(b, s[start:]...)
	return append(b, '"')
}

// appendUint/appendInt wrap strconv for symmetry with the helpers
// above; JSON integers have no special cases.
func appendUint(b []byte, v uint64) []byte { return strconv.AppendUint(b, v, 10) }
func appendInt(b []byte, v int64) []byte   { return strconv.AppendInt(b, v, 10) }
