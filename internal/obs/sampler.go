package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"time"

	"ewmac/internal/sim"
)

// Column is one time-series quantity. Fn is sampled at observer
// priority, so it always sees settled state for the instant.
type Column struct {
	Name string
	Fn   func() float64
}

// Sampler periodically samples a set of columns and writes one CSV row
// per interval. The first column is always t_s (simulation time in
// seconds); the engine event-loop health columns (queue depth,
// events/s, virtual-vs-wall ratio) are built in, and callers append
// domain columns (backlog, slot utilization, energy, ...).
//
// The sampler also emits an EngineSample event per interval to the
// optional recorder, so engine health shows up in the trace-v2 stream
// alongside protocol events.
type Sampler struct {
	eng   *sim.Engine
	bw    *bufio.Writer
	cols  []Column
	every time.Duration
	rec   Recorder
	err   error

	// cell is the scratch buffer CSV numbers are formatted into, so a
	// sample formats without allocating.
	cell []byte

	lastExec uint64
	lastAt   sim.Time
	lastWall time.Time
}

// NewSampler builds a sampler writing CSV to w every interval. Columns
// are sampled in order after the built-in engine columns.
func NewSampler(eng *sim.Engine, w io.Writer, every time.Duration, cols ...Column) (*Sampler, error) {
	if eng == nil {
		return nil, fmt.Errorf("obs: sampler needs an engine")
	}
	if w == nil {
		return nil, fmt.Errorf("obs: sampler needs a writer")
	}
	if every <= 0 {
		every = time.Second
	}
	return &Sampler{
		eng:   eng,
		bw:    bufio.NewWriterSize(w, 1<<15),
		cols:  cols,
		every: every,
	}, nil
}

// SetRecorder mirrors engine samples onto the event bus (nil disables).
func (s *Sampler) SetRecorder(r Recorder) { s.rec = r }

// Start writes the CSV header and schedules sampling every interval
// until the given horizon (inclusive).
func (s *Sampler) Start(until sim.Time) {
	s.bw.WriteString("t_s,queue_depth,events_per_s,virt_wall_ratio")
	for _, c := range s.cols {
		s.bw.WriteByte(',')
		s.bw.WriteString(c.Name)
	}
	s.bw.WriteByte('\n')
	s.lastExec = s.eng.Executed()
	s.lastAt = s.eng.Now()
	s.lastWall = time.Now()
	s.scheduleNext(until)
}

func (s *Sampler) scheduleNext(until sim.Time) {
	next := s.eng.Now().Add(s.every)
	if next.After(until) {
		return
	}
	s.eng.MustScheduleAt(next, sim.PriorityObserver, func() {
		s.sample()
		s.scheduleNext(until)
	})
}

func (s *Sampler) sample() {
	now := s.eng.Now()
	wall := time.Now()
	exec := s.eng.Executed()

	dVirt := now.Sub(s.lastAt).Seconds()
	dWall := wall.Sub(s.lastWall).Seconds()
	var eps, ratio float64
	if dVirt > 0 {
		eps = float64(exec-s.lastExec) / dVirt
	}
	if dWall > 0 {
		ratio = dVirt / dWall
	}
	s.lastExec, s.lastAt, s.lastWall = exec, now, wall

	depth := s.eng.Pending()
	s.cell = strconv.AppendFloat(s.cell[:0], now.Seconds(), 'g', -1, 64)
	s.bw.Write(s.cell)
	s.writeCell(float64(depth))
	s.writeCell(eps)
	s.writeCell(ratio)
	for _, c := range s.cols {
		s.writeCell(c.Fn())
	}
	s.bw.WriteByte('\n')

	if s.rec != nil {
		EngineSample{
			QueueDepth:       depth,
			EventsPerSec:     eps,
			VirtualWallRatio: ratio,
		}.Emit(s.rec, now)
	}
}

func (s *Sampler) writeCell(v float64) {
	s.bw.WriteByte(',')
	s.cell = strconv.AppendFloat(s.cell[:0], v, 'g', -1, 64)
	s.bw.Write(s.cell)
}

// Flush drains the CSV buffer.
func (s *Sampler) Flush() error {
	if err := s.bw.Flush(); err != nil && s.err == nil {
		s.err = err
	}
	return s.err
}
