package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

func TestMultiDropsNils(t *testing.T) {
	if Multi() != nil {
		t.Fatal("Multi() should be nil")
	}
	if Multi(nil, nil) != nil {
		t.Fatal("Multi(nil, nil) should be nil")
	}
	var got int
	r := RecorderFunc(func(sim.Time, Event) { got++ })
	single := Multi(nil, r, nil)
	if single == nil {
		t.Fatal("Multi with one live recorder should not be nil")
	}
	single.Record(0, &Delivery{})
	if got != 1 {
		t.Fatalf("single recorder called %d times, want 1", got)
	}
	both := Multi(r, r)
	both.Record(0, &Delivery{})
	if got != 3 {
		t.Fatalf("fan-out recorder: %d calls total, want 3", got)
	}
}

func TestJSONLSchema(t *testing.T) {
	var buf bytes.Buffer
	j := NewJSONL(&buf)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 3, Dst: 7, Seq: 9}
	j.Record(sim.At(1500*time.Millisecond), &FrameEmit{
		Src: 3, Dst: 7, Frame: f, Delay: 250 * time.Millisecond, LevelDB: 120,
	})
	j.Record(sim.At(2*time.Second), &Extra{Node: 5, Peer: 6, Action: ExtraDeny, Reason: "gap-too-small"})
	j.Record(sim.At(3*time.Second), &Delivery{Node: 1, Origin: 2, Seq: 4, Bits: 2048, Latency: time.Second})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("got %d lines, want 3", len(lines))
	}
	// Every line must parse and carry the shared header fields.
	wantEvents := []string{"chan.emit", "mac.extra", "mac.deliver"}
	wantAt := []float64{1.5, 2, 3}
	for i, line := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(line), &m); err != nil {
			t.Fatalf("line %d not JSON: %v\n%s", i, err, line)
		}
		if m["event"] != wantEvents[i] {
			t.Errorf("line %d event = %v, want %s", i, m["event"], wantEvents[i])
		}
		if m["at"] != wantAt[i] {
			t.Errorf("line %d at = %v, want %v", i, m["at"], wantAt[i])
		}
	}
	// Spot-check flattened fields.
	var emit map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &emit); err != nil {
		t.Fatal(err)
	}
	if emit["kind"] != "RTS" || emit["delay"] != 0.25 || emit["level_db"] != float64(120) {
		t.Errorf("chan.emit fields wrong: %v", emit)
	}
	var deny map[string]any
	if err := json.Unmarshal([]byte(lines[1]), &deny); err != nil {
		t.Fatal(err)
	}
	if deny["action"] != "deny" || deny["reason"] != "gap-too-small" {
		t.Errorf("mac.extra fields wrong: %v", deny)
	}
}

func TestCollectorReport(t *testing.T) {
	c := NewCollector()
	at := sim.At(time.Second)
	c.Record(at, &Contention{Outcome: ContentionWon})
	c.Record(at, &Contention{Outcome: ContentionWon})
	c.Record(at, &Contention{Outcome: ContentionWon})
	c.Record(at, &Contention{Outcome: ContentionTimeout})
	c.Record(at, &Extra{Action: ExtraRequest})
	c.Record(at, &Extra{Action: ExtraRequest})
	c.Record(at, &Extra{Action: ExtraComplete})
	c.Record(at, &Extra{Action: ExtraDeny, Reason: "neighbor-conflict"})
	c.Record(at, &FrameLoss{Reason: "collision"})
	c.Record(at, &Delivery{Bits: 2048})
	c.Record(at, &Delivery{Bits: 2048, Extra: true})

	r := c.Report(10)
	if r.DeliveredPackets != 2 || r.DeliveredBits != 4096 || r.ExtraDelivered != 1 {
		t.Fatalf("delivery counts wrong: %+v", r)
	}
	if r.Events["mac.deliver"] != 2 || r.Events["mac.contention"] != 4 {
		t.Errorf("event counts wrong: %v", r.Events)
	}
	if r.Losses["collision"] != 1 {
		t.Errorf("losses wrong: %v", r.Losses)
	}
	if r.DenyReasons["deny/neighbor-conflict"] != 1 {
		t.Errorf("deny reasons wrong: %v", r.DenyReasons)
	}
	if got, want := r.ExtraSuccessRate, 0.5; got != want {
		t.Errorf("ExtraSuccessRate = %v, want %v", got, want)
	}
	if got, want := r.ContentionWinRate, 0.75; got != want {
		t.Errorf("ContentionWinRate = %v, want %v", got, want)
	}
	if got, want := r.ThroughputKbps, 4096.0/10/1000; got != want {
		t.Errorf("ThroughputKbps = %v, want %v", got, want)
	}
}

func TestReportZeroDurationNoNaN(t *testing.T) {
	r := NewCollector().Report(0)
	if r.ThroughputKbps != 0 || r.DeliveriesPerSec != 0 ||
		r.ExtraSuccessRate != 0 || r.ContentionWinRate != 0 {
		t.Fatalf("empty report must be all zeros: %+v", r)
	}
}

func TestWritePromFormat(t *testing.T) {
	c := NewCollector()
	c.Record(0, &Delivery{Bits: 1024})
	c.Record(0, &FrameLoss{Reason: "collision"})
	r := c.Report(5)
	r.Protocol = "EW-MAC"

	var buf bytes.Buffer
	if err := r.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE uasn_events_total counter",
		`uasn_losses_total{protocol="EW-MAC",reason="collision"} 1`,
		`uasn_delivered_packets{protocol="EW-MAC"} 1`,
		"# TYPE uasn_throughput_kbps gauge",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prom output missing %q\n%s", want, out)
		}
	}
}

func TestSamplerRowsAndEngineSamples(t *testing.T) {
	eng := sim.NewEngine(1)
	// Churn: an event every 100ms so the loop has something to count.
	var tick func()
	tick = func() {
		if eng.Now() < sim.At(10*time.Second) {
			eng.ScheduleIn(100*time.Millisecond, sim.PriorityMAC, tick)
		}
	}
	eng.ScheduleIn(0, sim.PriorityMAC, tick)

	var buf bytes.Buffer
	domain := 0.0
	s, err := NewSampler(eng, &buf, time.Second, Column{Name: "domain", Fn: func() float64 {
		domain++
		return domain
	}})
	if err != nil {
		t.Fatal(err)
	}
	var samples int
	s.SetRecorder(RecorderFunc(func(_ sim.Time, e Event) {
		if _, ok := e.(*EngineSample); ok {
			samples++
		}
	}))
	s.Start(sim.At(10 * time.Second))
	eng.RunUntil(sim.At(10 * time.Second))
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if lines[0] != "t_s,queue_depth,events_per_s,virt_wall_ratio,domain" {
		t.Fatalf("header = %q", lines[0])
	}
	if len(lines) != 11 { // header + one row per second
		t.Fatalf("got %d lines, want 11", len(lines))
	}
	if samples != 10 {
		t.Fatalf("got %d EngineSample events, want 10", samples)
	}
	// The domain column must appear, sampled in order.
	if !strings.HasSuffix(lines[1], ",1") || !strings.HasSuffix(lines[10], ",10") {
		t.Errorf("domain column wrong: first=%q last=%q", lines[1], lines[10])
	}
}

func TestSamplerValidation(t *testing.T) {
	if _, err := NewSampler(nil, &bytes.Buffer{}, time.Second); err == nil {
		t.Error("nil engine should error")
	}
	if _, err := NewSampler(sim.NewEngine(1), nil, time.Second); err == nil {
		t.Error("nil writer should error")
	}
}
