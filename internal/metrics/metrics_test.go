package metrics

import (
	"math"
	"testing"
	"time"

	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/phy"
)

func sample(delivered, generated uint64, bits int, joules float64) NodeSample {
	return NodeSample{
		MAC: mac.Counters{
			Generated:        generated,
			DeliveredPackets: delivered,
			DeliveredBits:    delivered * uint64(bits),
			LatencySum:       time.Duration(delivered) * 2 * time.Second,
		},
		PHY:    phy.Stats{ControlBitsTx: 1000},
		Energy: energy.Breakdown{TxJ: joules},
	}
}

func TestSummarizeBasics(t *testing.T) {
	samples := []NodeSample{
		sample(10, 12, 2048, 3),
		sample(5, 8, 2048, 1),
	}
	sum, err := Summarize(samples, 100*time.Second, 2048)
	if err != nil {
		t.Fatal(err)
	}
	wantThr := float64(15*2048) / 100 / 1000
	if math.Abs(sum.ThroughputKbps-wantThr) > 1e-12 {
		t.Errorf("throughput = %v, want %v", sum.ThroughputKbps, wantThr)
	}
	wantOff := float64(20*2048) / 100 / 1000
	if math.Abs(sum.OfferedKbps-wantOff) > 1e-12 {
		t.Errorf("offered = %v, want %v", sum.OfferedKbps, wantOff)
	}
	if math.Abs(sum.DeliveryRatio-0.75) > 1e-12 {
		t.Errorf("delivery ratio = %v, want 0.75", sum.DeliveryRatio)
	}
	if sum.ExecutionTime != 2*time.Second {
		t.Errorf("execution time = %v, want 2s", sum.ExecutionTime)
	}
	// 4 J over 100 s across 2 nodes = 20 mW.
	if math.Abs(sum.MeanPowerMW-20) > 1e-9 {
		t.Errorf("power = %v mW, want 20", sum.MeanPowerMW)
	}
	if sum.OverheadBits != 2000 {
		t.Errorf("overhead = %v, want 2000 (control only)", sum.OverheadBits)
	}
	if sum.Efficiency <= 0 {
		t.Error("efficiency not computed")
	}
}

func TestSummarizeIncludesRetransmissionsInOverhead(t *testing.T) {
	s := sample(1, 1, 1024, 1)
	s.MAC.RetransmittedBits = 5000
	sum, err := Summarize([]NodeSample{s}, time.Minute, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if sum.OverheadBits != 6000 {
		t.Errorf("overhead = %d, want control 1000 + retransmitted 5000", sum.OverheadBits)
	}
}

func TestSummarizeValidation(t *testing.T) {
	if _, err := Summarize(nil, time.Minute, 2048); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := Summarize([]NodeSample{{}}, 0, 2048); err == nil {
		t.Error("zero window accepted")
	}
}

func TestOverheadRatioAndEfficiencyIndex(t *testing.T) {
	base := Summary{OverheadBits: 1000, Efficiency: 0.5}
	s := Summary{OverheadBits: 2500, Efficiency: 1.25}
	if got := OverheadRatio(s, base); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("OverheadRatio = %v", got)
	}
	if got := EfficiencyIndex(s, base); math.Abs(got-2.5) > 1e-12 {
		t.Errorf("EfficiencyIndex = %v", got)
	}
	if OverheadRatio(s, Summary{}) != 0 || EfficiencyIndex(s, Summary{}) != 0 {
		t.Error("zero baselines should yield 0")
	}
}

func TestMean(t *testing.T) {
	runs := []Summary{
		{ThroughputKbps: 0.2, MeanPowerMW: 100, ExecutionTime: 2 * time.Second, OverheadBits: 100},
		{ThroughputKbps: 0.4, MeanPowerMW: 200, ExecutionTime: 4 * time.Second, OverheadBits: 300},
	}
	m, err := Mean(runs)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(m.ThroughputKbps-0.3) > 1e-12 {
		t.Errorf("mean throughput = %v", m.ThroughputKbps)
	}
	if math.Abs(m.MeanPowerMW-150) > 1e-12 {
		t.Errorf("mean power = %v", m.MeanPowerMW)
	}
	if m.ExecutionTime != 3*time.Second {
		t.Errorf("mean latency = %v", m.ExecutionTime)
	}
	if m.OverheadBits != 200 {
		t.Errorf("mean overhead = %v", m.OverheadBits)
	}
	if _, err := Mean(nil); err == nil {
		t.Error("Mean of no runs accepted")
	}
}

// noNaN fails the test if any derived Summary field is NaN or Inf —
// the failure mode for degenerate sample sets is silent NaN spread.
func noNaN(t *testing.T, sum Summary) {
	t.Helper()
	for name, v := range map[string]float64{
		"ThroughputKbps": sum.ThroughputKbps,
		"OfferedKbps":    sum.OfferedKbps,
		"DeliveryRatio":  sum.DeliveryRatio,
		"MeanPowerMW":    sum.MeanPowerMW,
		"Efficiency":     sum.Efficiency,
		"Fairness":       sum.Fairness,
		"EnergyJ":        sum.EnergyJ,
	} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Errorf("%s = %v, want finite", name, v)
		}
	}
}

func TestSummarizeAllSinks(t *testing.T) {
	// A sink-only population generates nothing and delivers nothing:
	// every rate must come out zero, never NaN.
	samples := []NodeSample{
		{IsSink: true, Energy: energy.Breakdown{IdleJ: 2}},
		{IsSink: true, Energy: energy.Breakdown{IdleJ: 2}},
	}
	sum, err := Summarize(samples, time.Minute, 2048)
	if err != nil {
		t.Fatal(err)
	}
	noNaN(t, sum)
	if sum.DeliveryRatio != 0 || sum.ThroughputKbps != 0 || sum.Fairness != 0 {
		t.Errorf("sink-only rates should be zero: %+v", sum)
	}
	if sum.MeanPowerMW <= 0 {
		t.Errorf("idle power should still accumulate, got %v", sum.MeanPowerMW)
	}
}

func TestSummarizeZeroDelivered(t *testing.T) {
	// Traffic generated but nothing delivered (e.g. a partitioned
	// network): DeliveryRatio is a true 0, Efficiency and Fairness must
	// not divide by the zero delivered count.
	s := sample(0, 25, 2048, 0)
	sum, err := Summarize([]NodeSample{s}, time.Minute, 2048)
	if err != nil {
		t.Fatal(err)
	}
	noNaN(t, sum)
	if sum.DeliveryRatio != 0 {
		t.Errorf("delivery ratio = %v, want 0", sum.DeliveryRatio)
	}
	if sum.ExecutionTime != 0 {
		t.Errorf("execution time = %v, want 0 with no deliveries", sum.ExecutionTime)
	}
	// Zero energy as well: power is 0 and Efficiency must stay 0, not NaN.
	if sum.MeanPowerMW != 0 || sum.Efficiency != 0 {
		t.Errorf("zero-energy power/efficiency = %v/%v, want 0/0", sum.MeanPowerMW, sum.Efficiency)
	}
}

func TestSummarizeWindowMismatch(t *testing.T) {
	// The same counters over different windows must scale rates
	// inversely with the window, and a non-positive window is an error,
	// not a division.
	s := sample(10, 10, 1024, 1)
	short, err := Summarize([]NodeSample{s}, 10*time.Second, 1024)
	if err != nil {
		t.Fatal(err)
	}
	long, err := Summarize([]NodeSample{s}, 100*time.Second, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(short.ThroughputKbps-10*long.ThroughputKbps) > 1e-12 {
		t.Errorf("throughput did not scale with window: %v vs %v",
			short.ThroughputKbps, long.ThroughputKbps)
	}
	if _, err := Summarize([]NodeSample{s}, -time.Second, 1024); err == nil {
		t.Error("negative window accepted")
	}
}

func TestJainIndex(t *testing.T) {
	mk := func(acked, gen uint64, sink bool) NodeSample {
		return NodeSample{MAC: mac.Counters{AckedPackets: acked, Generated: gen}, IsSink: sink}
	}
	// Perfectly fair.
	fair := []NodeSample{mk(5, 6, false), mk(5, 6, false), mk(5, 6, false)}
	if got := JainIndex(fair); math.Abs(got-1) > 1e-12 {
		t.Errorf("fair index = %v, want 1", got)
	}
	// One node starved: (10+10+0)²/(3·(100+100)) = 400/600.
	starved := []NodeSample{mk(10, 12, false), mk(10, 12, false), mk(0, 12, false)}
	if got := JainIndex(starved); math.Abs(got-400.0/600.0) > 1e-12 {
		t.Errorf("starved index = %v, want 2/3", got)
	}
	// Sinks and silent nodes are excluded.
	mixed := []NodeSample{mk(5, 6, false), mk(999, 0, false), mk(7, 1, true)}
	if got := JainIndex(mixed); math.Abs(got-1) > 1e-12 {
		t.Errorf("mixed index = %v, want 1 (only one real sender)", got)
	}
	if JainIndex(nil) != 0 {
		t.Error("empty index should be 0")
	}
}
