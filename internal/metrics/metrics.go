// Package metrics computes the paper's evaluation quantities from raw
// simulation counters: throughput (Equations (2)–(3)), execution time
// (mean generation→delivery latency), power consumption, protocol
// overhead, and the efficiency index (Equation (4)).
package metrics

import (
	"fmt"
	"time"

	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/phy"
)

// NodeSample is one node's raw counters at the end of a run.
type NodeSample struct {
	MAC    mac.Counters
	PHY    phy.Stats
	Energy energy.Breakdown
	IsSink bool
}

// Summary is the per-run report.
type Summary struct {
	// Duration is the measurement window.
	Duration time.Duration
	// Nodes is the population size (including sinks).
	Nodes int

	// ThroughputKbps is Σ delivered payload bits / T (Equation (3)).
	ThroughputKbps float64
	// OfferedKbps is Σ generated payload bits / T (for delivery-ratio
	// checks; uses the configured payload size via GeneratedBits).
	OfferedKbps float64
	// DeliveryRatio is delivered packets / generated packets.
	DeliveryRatio float64
	// ExecutionTime is the mean generation→delivery latency (Figure 8).
	ExecutionTime time.Duration
	// MeanPowerMW is the average per-node power draw in milliwatts
	// (Figure 9).
	MeanPowerMW float64
	// EnergyJ is the network's total energy.
	EnergyJ float64
	// OverheadBits is the protocol cost beyond useful payload:
	// control traffic (including piggybacked neighbor state and
	// dedicated maintenance frames) plus retransmitted payload
	// (Figure 10's accounting: transmission cost + neighbor
	// maintenance cost + retransmission cost).
	OverheadBits uint64
	// Efficiency is throughput per milliwatt (Equation (4), before
	// normalization to the S-FAMA baseline).
	Efficiency float64
	// Fairness is Jain's index over per-sender acknowledged packets
	// (1 = perfectly fair). The paper's rp priority exists "to balance
	// fairness" (§3.1); this quantifies it.
	Fairness float64

	// Aggregated raw counters for deeper inspection.
	MAC mac.Counters
	PHY phy.Stats
}

// Summarize folds node samples over a measurement window. dataBits is
// the configured payload size (used to express offered load in kbps).
func Summarize(samples []NodeSample, window time.Duration, dataBits int) (Summary, error) {
	if window <= 0 {
		return Summary{}, fmt.Errorf("metrics: window %v", window)
	}
	if len(samples) == 0 {
		return Summary{}, fmt.Errorf("metrics: no samples")
	}
	var (
		macSum mac.Counters
		phySum phy.Stats
		joules float64
	)
	for _, s := range samples {
		macSum = macSum.Add(s.MAC)
		phySum = addPhy(phySum, s.PHY)
		joules += s.Energy.Total()
	}
	sec := window.Seconds()
	sum := Summary{
		Duration:     window,
		Nodes:        len(samples),
		MAC:          macSum,
		PHY:          phySum,
		EnergyJ:      joules,
		OverheadBits: macSum.RetransmittedBits + phySum.ControlBitsTx,
	}
	sum.ThroughputKbps = float64(macSum.DeliveredBits) / sec / 1000
	sum.OfferedKbps = float64(macSum.Generated) * float64(dataBits) / sec / 1000
	if macSum.Generated > 0 {
		sum.DeliveryRatio = float64(macSum.DeliveredPackets) / float64(macSum.Generated)
	}
	sum.ExecutionTime = macSum.MeanLatency()
	sum.MeanPowerMW = joules / sec / float64(len(samples)) * 1000
	if sum.MeanPowerMW > 0 {
		sum.Efficiency = sum.ThroughputKbps / sum.MeanPowerMW
	}
	sum.Fairness = JainIndex(samples)
	return sum, nil
}

// JainIndex computes Jain's fairness index over the acknowledged
// packet counts of the nodes that generated traffic:
// (Σx)² / (n·Σx²) ∈ (0, 1], 1 meaning every sender got equal service.
// Returns 0 when nothing was generated.
func JainIndex(samples []NodeSample) float64 {
	var sumX, sumX2 float64
	n := 0
	for _, s := range samples {
		if s.IsSink || s.MAC.Generated == 0 {
			continue
		}
		x := float64(s.MAC.AckedPackets)
		sumX += x
		sumX2 += x * x
		n++
	}
	if n == 0 || sumX2 == 0 {
		return 0
	}
	return sumX * sumX / (float64(n) * sumX2)
}

func addPhy(a, b phy.Stats) phy.Stats {
	return phy.Stats{
		FramesTx:        a.FramesTx + b.FramesTx,
		BitsTx:          a.BitsTx + b.BitsTx,
		FramesRx:        a.FramesRx + b.FramesRx,
		BitsRx:          a.BitsRx + b.BitsRx,
		Collisions:      a.Collisions + b.Collisions,
		TxSelfLoss:      a.TxSelfLoss + b.TxSelfLoss,
		PERLosses:       a.PERLosses + b.PERLosses,
		ControlBitsTx:   a.ControlBitsTx + b.ControlBitsTx,
		DataBitsTx:      a.DataBitsTx + b.DataBitsTx,
		PiggybackBitsTx: a.PiggybackBitsTx + b.PiggybackBitsTx,
		ExtraFramesTx:   a.ExtraFramesTx + b.ExtraFramesTx,
	}
}

// OverheadRatio compares a protocol's overhead against a baseline run
// of the same scenario (S-FAMA = 1 in Figure 10). A zero baseline
// yields 0.
func OverheadRatio(s, baseline Summary) float64 {
	if baseline.OverheadBits == 0 {
		return 0
	}
	return float64(s.OverheadBits) / float64(baseline.OverheadBits)
}

// EfficiencyIndex normalizes Equation (4) to the baseline protocol
// (S-FAMA = 1 in Figure 11).
func EfficiencyIndex(s, baseline Summary) float64 {
	if baseline.Efficiency == 0 {
		return 0
	}
	return s.Efficiency / baseline.Efficiency
}

// Mean averages a set of same-scenario run summaries (multiple seeds).
func Mean(runs []Summary) (Summary, error) {
	if len(runs) == 0 {
		return Summary{}, fmt.Errorf("metrics: no runs")
	}
	out := runs[0]
	n := float64(len(runs))
	var thr, off, dr, pow, eff, en, fair float64
	var lat time.Duration
	var ovh float64
	for _, r := range runs {
		thr += r.ThroughputKbps
		off += r.OfferedKbps
		dr += r.DeliveryRatio
		pow += r.MeanPowerMW
		eff += r.Efficiency
		en += r.EnergyJ
		fair += r.Fairness
		lat += r.ExecutionTime
		ovh += float64(r.OverheadBits)
	}
	out.ThroughputKbps = thr / n
	out.OfferedKbps = off / n
	out.DeliveryRatio = dr / n
	out.MeanPowerMW = pow / n
	out.Efficiency = eff / n
	out.Fairness = fair / n
	out.EnergyJ = en / n
	out.ExecutionTime = lat / time.Duration(len(runs))
	out.OverheadBits = uint64(ovh / n)
	return out, nil
}
