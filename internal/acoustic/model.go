package acoustic

import (
	"fmt"
	"math"
	"time"

	"ewmac/internal/vec"
)

// Model bundles the physical parameters of one acoustic environment and
// answers the two questions the simulator asks of a channel: how long a
// signal takes between two points, and how strong it is when it gets
// there relative to noise and interference.
type Model struct {
	// Profile is the sound-speed profile. Defaults to 1500 m/s uniform.
	Profile SpeedProfile
	// FreqKHz is the carrier frequency in kHz (paper band: 10 kHz class).
	FreqKHz float64
	// BandwidthHz is the receiver band in Hz, used to integrate noise PSD.
	BandwidthHz float64
	// Spreading is the geometric spreading exponent (1.5 = practical).
	Spreading float64
	// Shipping is the Wenz shipping activity factor in [0, 1].
	Shipping float64
	// WindMS is the Wenz surface wind speed in m/s.
	WindMS float64
	// TxPowerW is the projector's electrical transmit power in watts.
	TxPowerW float64
	// MaxRangeM is the nominal communication range; beyond it a signal
	// is treated as pure interference, never as a decodable frame.
	MaxRangeM float64
	// SINRThresholdDB is the minimum SINR for successful reception.
	SINRThresholdDB float64
	// SurfaceReflection enables a two-ray extension: each transmission
	// also reaches receivers via a surface-bounced path (the image
	// source mirrored across the sea surface), delayed and attenuated,
	// arriving as pure interference. An extension beyond the paper's
	// channel (NS-3's default UAN PER model ignores multipath too);
	// used by the multipath ablation bench.
	SurfaceReflection bool
	// SurfaceLossDB is the additional loss of one surface bounce.
	SurfaceLossDB float64
}

// DefaultModel returns the environment from the paper's Table 2: 10 kHz
// carrier, 1.5 km range, 1500 m/s uniform sound speed, practical
// spreading, moderate shipping and wind, and a threshold receiver.
func DefaultModel() *Model {
	return &Model{
		Profile:         UniformSpeed(1500),
		FreqKHz:         10,
		BandwidthHz:     12_000,
		Spreading:       1.5,
		Shipping:        0.5,
		WindMS:          5,
		TxPowerW:        2,
		MaxRangeM:       1500,
		SINRThresholdDB: 10,
	}
}

// Validate reports the first non-physical parameter.
func (m *Model) Validate() error {
	switch {
	case m.Profile == nil:
		return fmt.Errorf("acoustic: nil speed profile")
	case m.FreqKHz <= 0:
		return fmt.Errorf("acoustic: carrier frequency %v kHz must be positive", m.FreqKHz)
	case m.BandwidthHz <= 0:
		return fmt.Errorf("acoustic: bandwidth %v Hz must be positive", m.BandwidthHz)
	case m.Spreading < 1 || m.Spreading > 2:
		return fmt.Errorf("acoustic: spreading exponent %v outside [1, 2]", m.Spreading)
	case m.TxPowerW <= 0:
		return fmt.Errorf("acoustic: transmit power %v W must be positive", m.TxPowerW)
	case m.MaxRangeM <= 0:
		return fmt.Errorf("acoustic: max range %v m must be positive", m.MaxRangeM)
	}
	return validateProfile(m.Profile, 10_000)
}

// Delay returns the one-way propagation delay between two points, using
// the mean sound speed over the endpoint depths.
func (m *Model) Delay(a, b vec.V3) time.Duration {
	d := a.Dist(b)
	c := MeanSpeed(m.Profile, a.Depth(), b.Depth())
	if c <= 0 {
		c = 1500
	}
	return time.Duration(d / c * float64(time.Second))
}

// DelayForDistance returns the delay over a straight path of the given
// length at the profile's surface speed; used for slot sizing where only
// the worst-case range matters.
func (m *Model) DelayForDistance(distM float64) time.Duration {
	c := m.Profile.SpeedAt(0)
	if c <= 0 {
		c = 1500
	}
	return time.Duration(distM / c * float64(time.Second))
}

// MaxDelay returns the propagation delay across the nominal range: the
// τmax that slotted protocols must budget for.
func (m *Model) MaxDelay() time.Duration {
	return m.DelayForDistance(m.MaxRangeM)
}

// InRange reports whether two points are within decodable range.
func (m *Model) InRange(a, b vec.V3) bool {
	return a.Dist(b) <= m.MaxRangeM
}

// ReceivedLevelDB returns the received signal level in dB re µPa for a
// transmission from a to b.
func (m *Model) ReceivedLevelDB(a, b vec.V3) float64 {
	return SourceLevelDB(m.TxPowerW) - PathLossDB(a.Dist(b), m.FreqKHz, m.Spreading)
}

// NoiseLevelDB returns total in-band ambient noise in dB re µPa.
func (m *Model) NoiseLevelDB() float64 {
	return AmbientNoiseDB(m.FreqKHz, m.Shipping, m.WindMS) + 10*math.Log10(m.BandwidthHz)
}

// SINRDB returns the signal-to-interference-plus-noise ratio for a
// signal received at signalDB against the given interferer levels
// (each in dB re µPa) plus ambient noise.
func (m *Model) SINRDB(signalDB float64, interferersDB []float64) float64 {
	denom := dbToLin(m.NoiseLevelDB())
	for _, i := range interferersDB {
		denom += dbToLin(i)
	}
	return signalDB - linToDB(denom)
}

// SINRDBFromLin returns the SINR for a signal at signalDB against an
// interference power already summed in the linear domain (µPa² units
// consistent with DBToLin of received levels). The PHY uses this form
// because it tracks the worst-case concurrent interference as a linear
// sum.
func (m *Model) SINRDBFromLin(signalDB, interferenceLin float64) float64 {
	return signalDB - linToDB(dbToLin(m.NoiseLevelDB())+interferenceLin)
}

// Decodable reports whether a frame received at the given SINR passes
// the threshold receiver.
func (m *Model) Decodable(sinrDB float64) bool {
	return sinrDB >= m.SINRThresholdDB
}

// BitRate returns the modem bit rate in bits per second implied by the
// band (the paper uses the band itself, 12 kbps over 12 kHz, i.e.
// 1 bit/s/Hz).
func (m *Model) BitRate() float64 { return m.BandwidthHz }

// SurfacePath returns the delay and received level of the
// surface-bounced ray from a to b: the straight path from a's image
// source (a mirrored across the surface, Z → −Z) to b, with the bounce
// loss added. Only meaningful when SurfaceReflection is enabled.
func (m *Model) SurfacePath(a, b vec.V3) (time.Duration, float64) {
	image := vec.V3{X: a.X, Y: a.Y, Z: -a.Z}
	// The image point is a geometric construction; the ray itself runs
	// through near-surface water, so the surface sound speed applies.
	delay := m.DelayForDistance(image.Dist(b))
	loss := m.SurfaceLossDB
	if loss <= 0 {
		loss = 3
	}
	level := SourceLevelDB(m.TxPowerW) - PathLossDB(image.Dist(b), m.FreqKHz, m.Spreading) - loss
	return delay, level
}
