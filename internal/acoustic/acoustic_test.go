package acoustic

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/vec"
)

func TestThorpAbsorptionKnownValues(t *testing.T) {
	// Thorp at 10 kHz is ≈ 1.1 dB/km; at low frequency it approaches
	// the 0.003 constant.
	got := ThorpAbsorption(10)
	if got < 0.8 || got > 1.5 {
		t.Errorf("ThorpAbsorption(10 kHz) = %v dB/km, want ≈1.1", got)
	}
	if lo := ThorpAbsorption(0.01); lo < 0.003 || lo > 0.01 {
		t.Errorf("ThorpAbsorption(0.01 kHz) = %v, want ≈0.003", lo)
	}
}

func TestThorpMonotoneInBand(t *testing.T) {
	prev := 0.0
	for f := 1.0; f <= 100; f += 1 {
		a := ThorpAbsorption(f)
		if a < prev {
			t.Fatalf("absorption decreased at %v kHz: %v < %v", f, a, prev)
		}
		prev = a
	}
}

func TestPathLossGrowsWithDistance(t *testing.T) {
	prev := -1.0
	for _, d := range []float64{1, 10, 100, 1000, 1500, 5000} {
		pl := PathLossDB(d, 10, 1.5)
		if pl <= prev {
			t.Fatalf("path loss not increasing at %v m: %v <= %v", d, pl, prev)
		}
		prev = pl
	}
}

func TestPathLossClampsBelowOneMeter(t *testing.T) {
	if PathLossDB(0.1, 10, 1.5) != PathLossDB(1, 10, 1.5) {
		t.Error("path loss below 1 m not clamped to reference distance")
	}
}

func TestSourceLevel(t *testing.T) {
	// 1 W source is 170.8 dB re µPa @ 1m by definition of the constant.
	if got := SourceLevelDB(1); math.Abs(got-170.8) > 1e-9 {
		t.Errorf("SourceLevelDB(1) = %v, want 170.8", got)
	}
	if got := SourceLevelDB(10); math.Abs(got-180.8) > 1e-9 {
		t.Errorf("SourceLevelDB(10) = %v, want 180.8", got)
	}
	if !math.IsInf(SourceLevelDB(0), -1) {
		t.Error("SourceLevelDB(0) should be -Inf")
	}
}

func TestAmbientNoiseDominatedByWindAt10kHz(t *testing.T) {
	f := 10.0
	total := AmbientNoiseDB(f, 0.5, 10)
	wind := NoiseWindDB(f, 10)
	if total < wind {
		t.Errorf("total noise %v below wind component %v", total, wind)
	}
	if total > wind+6 {
		t.Errorf("total noise %v implausibly far above dominant wind term %v", total, wind)
	}
}

func TestNoiseIncreasesWithWindAndShipping(t *testing.T) {
	base := AmbientNoiseDB(10, 0.2, 2)
	if AmbientNoiseDB(10, 0.9, 2) < base {
		t.Error("noise decreased with more shipping")
	}
	if AmbientNoiseDB(10, 0.2, 15) < base {
		t.Error("noise decreased with more wind")
	}
}

func TestSpeedProfiles(t *testing.T) {
	if got := UniformSpeed(1500).SpeedAt(4000); got != 1500 {
		t.Errorf("uniform profile = %v", got)
	}
	lin := LinearSpeed{Surface: 1500, Gradient: 0.016}
	if got := lin.SpeedAt(1000); math.Abs(got-1516) > 1e-9 {
		t.Errorf("linear profile at 1000 m = %v, want 1516", got)
	}
	munk := CanonicalMunk()
	axis := munk.SpeedAt(1300)
	if math.Abs(axis-1500) > 1e-6 {
		t.Errorf("Munk at axis = %v, want 1500", axis)
	}
	// Munk speed has its minimum at the channel axis.
	if munk.SpeedAt(0) <= axis || munk.SpeedAt(4000) <= axis {
		t.Error("Munk profile does not have minimum at channel axis")
	}
}

func TestMunkZeroScaleDepthFallsBack(t *testing.T) {
	m := MunkProfile{C1: 1500}
	if got := m.SpeedAt(123); got != 1500 {
		t.Errorf("Munk with B=0 = %v, want C1", got)
	}
}

func TestMeanSpeed(t *testing.T) {
	lin := LinearSpeed{Surface: 1500, Gradient: 0.02}
	// Mean of a linear profile between two depths is the midpoint value.
	got := MeanSpeed(lin, 0, 1000)
	if math.Abs(got-1510) > 1e-9 {
		t.Errorf("MeanSpeed linear = %v, want 1510", got)
	}
	if MeanSpeed(lin, 500, 500) != lin.SpeedAt(500) {
		t.Error("MeanSpeed at equal depths should be pointwise speed")
	}
	if MeanSpeed(lin, 1000, 0) != got {
		t.Error("MeanSpeed not symmetric in depth order")
	}
}

func TestModelDelay(t *testing.T) {
	m := DefaultModel()
	a := vec.V3{X: 0, Y: 0, Z: 100}
	b := vec.V3{X: 1500, Y: 0, Z: 100}
	d := m.Delay(a, b)
	want := time.Second // 1500 m at 1500 m/s
	if diff := d - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Delay = %v, want ≈%v", d, want)
	}
	if m.Delay(a, a) != 0 {
		t.Error("zero-distance delay should be 0")
	}
	if m.MaxDelay() != m.DelayForDistance(m.MaxRangeM) {
		t.Error("MaxDelay disagrees with DelayForDistance(MaxRangeM)")
	}
}

func TestDelaySymmetryProperty(t *testing.T) {
	m := DefaultModel()
	m.Profile = LinearSpeed{Surface: 1490, Gradient: 0.017}
	f := func(ax, ay, az, bx, by, bz uint16) bool {
		a := vec.V3{X: float64(ax % 1000), Y: float64(ay % 1000), Z: float64(az % 1000)}
		b := vec.V3{X: float64(bx % 1000), Y: float64(by % 1000), Z: float64(bz % 1000)}
		return m.Delay(a, b) == m.Delay(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSINRAndDecodable(t *testing.T) {
	m := DefaultModel()
	a := vec.V3{Z: 500}
	b := vec.V3{X: 1000, Z: 500}
	rl := m.ReceivedLevelDB(a, b)
	sinr := m.SINRDB(rl, nil)
	if !m.Decodable(sinr) {
		t.Fatalf("1 km link not decodable without interference: SINR=%v dB", sinr)
	}
	// A co-located equal-power interferer forces SINR to ≈0 dB.
	sinrJammed := m.SINRDB(rl, []float64{rl})
	if m.Decodable(sinrJammed) {
		t.Errorf("equal-power collision decodable: SINR=%v dB", sinrJammed)
	}
	if sinrJammed >= sinr {
		t.Error("interference did not reduce SINR")
	}
}

func TestInterferenceAccumulates(t *testing.T) {
	m := DefaultModel()
	one := m.SINRDB(120, []float64{100})
	two := m.SINRDB(120, []float64{100, 100})
	if two >= one {
		t.Errorf("second interferer did not lower SINR: %v vs %v", two, one)
	}
}

func TestInRange(t *testing.T) {
	m := DefaultModel()
	a := vec.V3{}
	if !m.InRange(a, vec.V3{X: 1500}) {
		t.Error("boundary distance should be in range")
	}
	if m.InRange(a, vec.V3{X: 1500.1}) {
		t.Error("beyond-range pair reported in range")
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultModel().Validate(); err != nil {
		t.Fatalf("default model invalid: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Model)
	}{
		{"nil profile", func(m *Model) { m.Profile = nil }},
		{"zero freq", func(m *Model) { m.FreqKHz = 0 }},
		{"zero band", func(m *Model) { m.BandwidthHz = 0 }},
		{"spreading too low", func(m *Model) { m.Spreading = 0.5 }},
		{"zero power", func(m *Model) { m.TxPowerW = 0 }},
		{"zero range", func(m *Model) { m.MaxRangeM = 0 }},
		{"absurd profile", func(m *Model) { m.Profile = UniformSpeed(100) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			m := DefaultModel()
			tc.edit(m)
			if err := m.Validate(); err == nil {
				t.Error("Validate accepted invalid model")
			}
		})
	}
}

func TestThresholdPER(t *testing.T) {
	p := ThresholdPER{ThresholdDB: 10}
	if p.PER(10, 1000) != 0 {
		t.Error("at-threshold frame should pass")
	}
	if p.PER(9.99, 1000) != 1 {
		t.Error("below-threshold frame should fail")
	}
}

func TestBPSKPERBehaviour(t *testing.T) {
	p := BPSKPER{}
	if got := p.PER(20, 2048); got > 1e-9 {
		t.Errorf("PER at 20 dB = %v, want ≈0", got)
	}
	if got := p.PER(-10, 2048); got < 0.999 {
		t.Errorf("PER at -10 dB = %v, want ≈1", got)
	}
	// Longer frames fail more often at marginal SINR.
	if p.PER(5, 4096) < p.PER(5, 64) {
		t.Error("longer frame has lower PER")
	}
	if p.PER(5, 0) != 0 {
		t.Error("zero-length frame should never fail")
	}
}

// Property: PER is always a probability and monotone non-increasing in
// SINR for fixed length.
func TestBPSKPERProperty(t *testing.T) {
	p := BPSKPER{}
	f := func(sinrRaw int8, bitsRaw uint16) bool {
		sinr := float64(sinrRaw) / 4
		bits := int(bitsRaw%8192) + 1
		v := p.PER(sinr, bits)
		if v < 0 || v > 1 || math.IsNaN(v) {
			return false
		}
		return p.PER(sinr+1, bits) <= v+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestBitRateMatchesBand(t *testing.T) {
	m := DefaultModel()
	if m.BitRate() != 12000 {
		t.Errorf("BitRate = %v, want 12000", m.BitRate())
	}
}

func TestSurfacePath(t *testing.T) {
	m := DefaultModel()
	a := vec.V3{X: 0, Z: 400}
	b := vec.V3{X: 600, Z: 400}
	direct := m.Delay(a, b)
	rDelay, rLevel := m.SurfacePath(a, b)
	if rDelay <= direct {
		t.Errorf("reflected delay %v not longer than direct %v", rDelay, direct)
	}
	if rLevel >= m.ReceivedLevelDB(a, b) {
		t.Error("reflected ray not weaker than direct ray")
	}
	// Image geometry: path length is sqrt(600² + 800²) = 1000 m.
	want := m.DelayForDistance(1000)
	if diff := rDelay - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("reflected delay %v, want ≈%v", rDelay, want)
	}
	// Custom bounce loss applies.
	m.SurfaceLossDB = 10
	_, lossy := m.SurfacePath(a, b)
	if lossy >= rLevel {
		t.Error("larger bounce loss did not lower the level")
	}
}

func TestSurfacePathShallowSourceNearlyCoincides(t *testing.T) {
	m := DefaultModel()
	a := vec.V3{X: 0, Z: 1} // source grazing the surface
	b := vec.V3{X: 500, Z: 300}
	direct := m.Delay(a, b)
	rDelay, _ := m.SurfacePath(a, b)
	if gap := rDelay - direct; gap < 0 || gap > 5*time.Millisecond {
		t.Errorf("grazing-source reflected path gap = %v, want tiny", gap)
	}
}
