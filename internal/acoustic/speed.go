// Package acoustic models the underwater acoustic channel: sound-speed
// profiles, Thorp absorption, spreading loss, ambient noise, and
// SINR-based reception. It is the substitute for the NS-3 UAN/Bellhop
// channel used in the paper (see DESIGN.md): the MAC protocols under
// study observe only pairwise propagation delay and whether overlapping
// arrivals collide, and this package produces both observables from the
// same physical inputs (geometry, frequency, band, noise environment).
package acoustic

import (
	"fmt"
	"math"
)

// SpeedProfile gives the local speed of sound as a function of depth.
type SpeedProfile interface {
	// SpeedAt returns the sound speed in m/s at the given depth in
	// meters (depth grows downward, 0 is the surface).
	SpeedAt(depth float64) float64
}

// UniformSpeed is a depth-independent profile. The paper's headline
// numbers use 1500 m/s.
type UniformSpeed float64

var _ SpeedProfile = UniformSpeed(0)

// SpeedAt implements SpeedProfile.
func (u UniformSpeed) SpeedAt(float64) float64 { return float64(u) }

// LinearSpeed is a profile with constant gradient, a common fit for the
// mixed surface layer: c(z) = Surface + Gradient*z.
type LinearSpeed struct {
	// Surface is the sound speed at depth 0, m/s.
	Surface float64
	// Gradient is the change per meter of depth, 1/s. Positive values
	// mean speed grows with depth.
	Gradient float64
}

var _ SpeedProfile = LinearSpeed{}

// SpeedAt implements SpeedProfile.
func (l LinearSpeed) SpeedAt(depth float64) float64 {
	return l.Surface + l.Gradient*depth
}

// MunkProfile is the canonical deep-water sound channel used by Bellhop
// test cases: c(z) = C1*(1 + eps*(eta + exp(-eta) - 1)) with
// eta = 2*(z - Z1)/B.
type MunkProfile struct {
	// C1 is the sound speed at the channel axis, m/s (canonically 1500).
	C1 float64
	// Z1 is the channel-axis depth in meters (canonically 1300).
	Z1 float64
	// B is the scale depth in meters (canonically 1300).
	B float64
	// Eps is the perturbation coefficient (canonically 0.00737).
	Eps float64
}

// CanonicalMunk returns the standard Munk profile parameters.
func CanonicalMunk() MunkProfile {
	return MunkProfile{C1: 1500, Z1: 1300, B: 1300, Eps: 0.00737}
}

var _ SpeedProfile = MunkProfile{}

// SpeedAt implements SpeedProfile.
func (m MunkProfile) SpeedAt(depth float64) float64 {
	if m.B == 0 {
		return m.C1
	}
	eta := 2 * (depth - m.Z1) / m.B
	return m.C1 * (1 + m.Eps*(eta+math.Exp(-eta)-1))
}

// MeanSpeed returns the average sound speed between two depths,
// approximated by a 16-point trapezoid along the depth axis. For the
// straight-line propagation model used here (no ray bending), this is
// the effective speed over a path whose endpoints sit at those depths.
func MeanSpeed(p SpeedProfile, depthA, depthB float64) float64 {
	if depthA == depthB {
		return p.SpeedAt(depthA)
	}
	const steps = 16
	lo, hi := depthA, depthB
	if lo > hi {
		lo, hi = hi, lo
	}
	h := (hi - lo) / steps
	sum := (p.SpeedAt(lo) + p.SpeedAt(hi)) / 2
	for i := 1; i < steps; i++ {
		sum += p.SpeedAt(lo + float64(i)*h)
	}
	return sum / steps
}

// validateProfile reports a descriptive error for non-physical speeds.
func validateProfile(p SpeedProfile, maxDepth float64) error {
	for _, z := range []float64{0, maxDepth / 2, maxDepth} {
		c := p.SpeedAt(z)
		if c < 1000 || c > 2000 {
			return fmt.Errorf("acoustic: speed %v m/s at depth %v m is outside plausible ocean range [1000, 2000]", c, z)
		}
	}
	return nil
}
