package acoustic

import "math"

// ThorpAbsorption returns the frequency-dependent absorption coefficient
// in dB/km for a signal at freqKHz kilohertz, using Thorp's empirical
// formula (valid for the few-to-tens-of-kHz band UASN modems use).
func ThorpAbsorption(freqKHz float64) float64 {
	f2 := freqKHz * freqKHz
	return 0.11*f2/(1+f2) + 44*f2/(4100+f2) + 2.75e-4*f2 + 0.003
}

// PathLossDB returns the transmission loss in dB over distM meters at
// freqKHz, combining geometric spreading (exponent k: 1 cylindrical,
// 2 spherical, 1.5 "practical") and Thorp absorption. Distances below
// one meter are clamped: the reference level is defined at 1 m.
func PathLossDB(distM, freqKHz, spreading float64) float64 {
	if distM < 1 {
		distM = 1
	}
	return spreading*10*math.Log10(distM) + ThorpAbsorption(freqKHz)*distM/1000
}

// SourceLevelDB converts electrical transmit power in watts into a
// source level in dB re µPa at 1 m, using the standard conversion for
// an omnidirectional projector (0.67e-18 W/m² per µPa²).
func SourceLevelDB(txPowerW float64) float64 {
	if txPowerW <= 0 {
		return math.Inf(-1)
	}
	return 170.8 + 10*math.Log10(txPowerW)
}

// Ambient noise per Wenz's curves in the compact form popularized by
// Stojanovic: four components (turbulence, shipping, wind/waves,
// thermal), each a power spectral density in dB re µPa per Hz at
// frequency freqKHz.

// NoiseTurbulenceDB returns the turbulence noise PSD.
func NoiseTurbulenceDB(freqKHz float64) float64 {
	return 17 - 30*math.Log10(freqKHz)
}

// NoiseShippingDB returns the shipping noise PSD for shipping activity
// s in [0, 1].
func NoiseShippingDB(freqKHz, s float64) float64 {
	return 40 + 20*(s-0.5) + 26*math.Log10(freqKHz) - 60*math.Log10(freqKHz+0.03)
}

// NoiseWindDB returns the surface-agitation noise PSD for wind speed w
// in m/s.
func NoiseWindDB(freqKHz, w float64) float64 {
	return 50 + 7.5*math.Sqrt(w) + 20*math.Log10(freqKHz) - 40*math.Log10(freqKHz+0.4)
}

// NoiseThermalDB returns the thermal noise PSD.
func NoiseThermalDB(freqKHz float64) float64 {
	return -15 + 20*math.Log10(freqKHz)
}

// AmbientNoiseDB returns the total ambient noise PSD (dB re µPa per Hz)
// at freqKHz for the given shipping activity and wind speed, summing the
// four Wenz components in the linear domain.
func AmbientNoiseDB(freqKHz, shipping, windMS float64) float64 {
	lin := dbToLin(NoiseTurbulenceDB(freqKHz)) +
		dbToLin(NoiseShippingDB(freqKHz, shipping)) +
		dbToLin(NoiseWindDB(freqKHz, windMS)) +
		dbToLin(NoiseThermalDB(freqKHz))
	return linToDB(lin)
}

// DBToLin converts decibels to a linear power ratio.
func DBToLin(db float64) float64 { return math.Pow(10, db/10) }

// LinToDB converts a linear power ratio to decibels (-Inf for
// non-positive input).
func LinToDB(lin float64) float64 {
	if lin <= 0 {
		return math.Inf(-1)
	}
	return 10 * math.Log10(lin)
}

func dbToLin(db float64) float64 { return DBToLin(db) }

func linToDB(lin float64) float64 { return LinToDB(lin) }
