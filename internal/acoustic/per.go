package acoustic

import "math"

// PERModel maps a frame's worst-case SINR during reception to a packet
// error probability. The simulator's PHY draws against this probability
// to decide whether a frame survives.
type PERModel interface {
	// PER returns the packet error rate in [0, 1] for a frame of the
	// given length in bits received at the given SINR.
	PER(sinrDB float64, bits int) float64
}

// ThresholdPER is the NS-3 UAN "default PER" analogue: a frame is
// received perfectly at or above the threshold and lost below it.
type ThresholdPER struct {
	// ThresholdDB is the SINR cutoff.
	ThresholdDB float64
}

var _ PERModel = ThresholdPER{}

// PER implements PERModel.
func (t ThresholdPER) PER(sinrDB float64, _ int) float64 {
	if sinrDB >= t.ThresholdDB {
		return 0
	}
	return 1
}

// BPSKPER derives PER from the BPSK bit error rate over an AWGN
// channel: BER = Q(sqrt(2·SINR)), PER = 1 − (1 − BER)^bits. It makes
// marginal links lossy rather than binary, which matters for the
// mobility experiments where ranges hover near the edge.
type BPSKPER struct{}

var _ PERModel = BPSKPER{}

// PER implements PERModel.
func (BPSKPER) PER(sinrDB float64, bits int) float64 {
	if bits <= 0 {
		return 0
	}
	sinr := math.Pow(10, sinrDB/10)
	ber := qfunc(math.Sqrt(2 * sinr))
	// log1p keeps precision when ber is tiny.
	return -math.Expm1(float64(bits) * math.Log1p(-ber))
}

// qfunc is the Gaussian tail probability Q(x) = P(N(0,1) > x).
func qfunc(x float64) float64 {
	return 0.5 * math.Erfc(x/math.Sqrt2)
}

// UniformLossPER wraps another PER model with an additional independent
// loss probability — a failure-injection knob modelling transient
// channel fades (bubbles, shadowing) that no SINR computation predicts.
// Robustness tests use it to verify the protocols' retransmission paths
// recover from arbitrary frame loss.
type UniformLossPER struct {
	// Base is the underlying model (nil means "never fails on SINR").
	Base PERModel
	// LossProb is the extra independent loss probability in [0, 1].
	LossProb float64
}

var _ PERModel = UniformLossPER{}

// PER implements PERModel: 1 − (1 − base)(1 − LossProb).
func (u UniformLossPER) PER(sinrDB float64, bits int) float64 {
	base := 0.0
	if u.Base != nil {
		base = u.Base.PER(sinrDB, bits)
	}
	p := 1 - (1-base)*(1-u.LossProb)
	if p < 0 {
		return 0
	}
	if p > 1 {
		return 1
	}
	return p
}
