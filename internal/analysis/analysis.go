// Package analysis provides closed-form performance bounds for the
// slotted protocols, the analytical companion to the paper's §5. The
// bounds serve two purposes: experiment sanity (simulated throughput
// must never exceed the channel's handshake ceiling) and scoping (how
// much of the ceiling each protocol's measured throughput captures).
package analysis

import (
	"fmt"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/packet"
)

// HandshakeSlots returns the number of slots one complete four-way
// exchange occupies: RTS + CTS + data slots per Equation (5) + Ack.
func HandshakeSlots(s mac.SlotConfig, dataBits int, tau time.Duration, bitRate float64) int64 {
	dataTx := packet.Duration(packet.DataHeaderBits+dataBits, bitRate)
	return 2 + s.DataSlots(dataTx, tau) + 1
}

// SerializedCeilingKbps returns the throughput of a perfectly
// scheduled, fully serialized slotted channel: one handshake after
// another with zero contention loss. No slotted protocol without
// parallel exchanges can beat this; S-FAMA approaches it from below.
func SerializedCeilingKbps(s mac.SlotConfig, dataBits int, tau time.Duration, bitRate float64) float64 {
	cycle := time.Duration(HandshakeSlots(s, dataBits, tau, bitRate)) * s.Len()
	if cycle <= 0 {
		return 0
	}
	return float64(dataBits) / cycle.Seconds() / 1000
}

// ExtraFitsWindow reports whether one extra data packet can be
// appended to a handshake per the paper's §4.2: the EXData must fit in
// the waiting resources bounded by the pair's propagation delay — the
// CS-MAC gap condition (TD < τ) is the tightest of the period
// constraints of Figure 2.
func ExtraFitsWindow(dataBits int, tau time.Duration, bitRate float64) bool {
	dataTx := packet.Duration(packet.DataHeaderBits+dataBits, bitRate)
	return dataTx < tau
}

// ExploitCeilingKbps bounds a waiting-resource protocol (EW-MAC,
// CS-MAC): at most one extra data packet rides on each primary
// handshake, and only when it fits the waiting window.
func ExploitCeilingKbps(s mac.SlotConfig, dataBits int, tau time.Duration, bitRate float64) float64 {
	base := SerializedCeilingKbps(s, dataBits, tau, bitRate)
	if ExtraFitsWindow(dataBits, tau, bitRate) {
		return 2 * base
	}
	return base
}

// ContentionEfficiency is the fraction of the relevant ceiling a
// measured throughput achieves.
func ContentionEfficiency(measuredKbps, ceilingKbps float64) (float64, error) {
	if ceilingKbps <= 0 {
		return 0, fmt.Errorf("analysis: non-positive ceiling %v", ceilingKbps)
	}
	return measuredKbps / ceilingKbps, nil
}

// SlotUtilization returns the fraction of a slot the data transmission
// actually uses — the paper's motivating observation that τmax guard
// time dwarfs transmission time.
func SlotUtilization(s mac.SlotConfig, dataBits int, bitRate float64) float64 {
	if s.Len() <= 0 {
		return 0
	}
	dataTx := packet.Duration(packet.DataHeaderBits+dataBits, bitRate)
	u := dataTx.Seconds() / s.Len().Seconds()
	if u > 1 {
		u = 1
	}
	return u
}

// OptimalDataBits returns, within [minBits, maxBits], the payload size
// maximizing the serialized ceiling — the paper's §2 argument (after
// Basagni et al.) that long propagation delays favour large packets.
// A non-positive step or an empty range degenerates to minBits rather
// than scanning (a step ≤ 0 would otherwise never terminate).
func OptimalDataBits(s mac.SlotConfig, tau time.Duration, bitRate float64, minBits, maxBits, step int) int {
	if step <= 0 || maxBits < minBits {
		return minBits
	}
	best, bestThr := minBits, 0.0
	for b := minBits; b <= maxBits; b += step {
		if thr := SerializedCeilingKbps(s, b, tau, bitRate); thr > bestThr {
			best, bestThr = b, thr
		}
	}
	return best
}
