package analysis

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/packet"
)

func slots() mac.SlotConfig {
	return mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, 12000),
		TauMax: time.Second,
	}
}

func TestHandshakeSlots(t *testing.T) {
	s := slots()
	// 2048-bit data (176 ms) + τ 400 ms fits one slot: RTS+CTS+Data+Ack = 4.
	if got := HandshakeSlots(s, 2048, 400*time.Millisecond, 12000); got != 4 {
		t.Errorf("HandshakeSlots = %d, want 4", got)
	}
	// Data spanning two slots (huge payload) makes it 5.
	if got := HandshakeSlots(s, 11000, 900*time.Millisecond, 12000); got != 5 {
		t.Errorf("HandshakeSlots big = %d, want 5", got)
	}
}

func TestSerializedCeiling(t *testing.T) {
	s := slots()
	got := SerializedCeilingKbps(s, 2048, 400*time.Millisecond, 12000)
	// 2048 bits / (4 × 1.00533 s) ≈ 0.509 kbps.
	want := 2048.0 / (4 * s.Len().Seconds()) / 1000
	if math.Abs(got-want) > 1e-9 {
		t.Errorf("ceiling = %v, want %v", got, want)
	}
}

func TestExploitCeiling(t *testing.T) {
	s := slots()
	base := SerializedCeilingKbps(s, 2048, 600*time.Millisecond, 12000)
	// 176 ms data < 600 ms τ: an extra packet fits → 2× bound.
	if got := ExploitCeilingKbps(s, 2048, 600*time.Millisecond, 12000); got != 2*base {
		t.Errorf("exploit ceiling = %v, want %v", got, 2*base)
	}
	// 176 ms data > 100 ms τ: no extra fits.
	base2 := SerializedCeilingKbps(s, 2048, 100*time.Millisecond, 12000)
	if got := ExploitCeilingKbps(s, 2048, 100*time.Millisecond, 12000); got != base2 {
		t.Errorf("exploit ceiling without window = %v, want %v", got, base2)
	}
}

func TestExtraFitsWindowBoundary(t *testing.T) {
	// τ exactly equal to the tx time does not fit (strict inequality).
	dataTx := packet.Duration(packet.DataHeaderBits+2048, 12000)
	if ExtraFitsWindow(2048, dataTx, 12000) {
		t.Error("boundary τ reported as fitting")
	}
	if !ExtraFitsWindow(2048, dataTx+time.Millisecond, 12000) {
		t.Error("τ just above tx time reported as not fitting")
	}
}

func TestContentionEfficiency(t *testing.T) {
	e, err := ContentionEfficiency(0.25, 0.5)
	if err != nil || e != 0.5 {
		t.Errorf("efficiency = %v, %v", e, err)
	}
	if _, err := ContentionEfficiency(1, 0); err == nil {
		t.Error("zero ceiling accepted")
	}
}

func TestSlotUtilizationMotivatesThePaper(t *testing.T) {
	s := slots()
	u := SlotUtilization(s, 2048, 12000)
	// A 2048-bit packet uses ~17.5% of a τmax-guarded slot: the other
	// 82% is the waiting resource EW-MAC exploits.
	if u < 0.15 || u > 0.20 {
		t.Errorf("slot utilization = %v, want ≈0.175", u)
	}
	if SlotUtilization(s, 1<<20, 12000) != 1 {
		t.Error("utilization should clamp at 1")
	}
}

// Property: the serialized ceiling is monotone non-decreasing in
// payload size when the data still fits one slot — larger packets
// amortize the handshake, the paper's §2 conclusion.
func TestCeilingFavoursLargePacketsProperty(t *testing.T) {
	s := slots()
	f := func(rawBits uint16, tauMS uint16) bool {
		bits := 512 + int(rawBits%3584) // 512..4096
		// Cap τ so that even bits+256 still fits one slot; across a
		// slot-boundary crossing the ceiling legitimately drops.
		tau := time.Duration(tauMS%600) * time.Millisecond
		a := SerializedCeilingKbps(s, bits, tau, 12000)
		b := SerializedCeilingKbps(s, bits+256, tau, 12000)
		return b >= a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestOptimalDataBitsPrefersLargest(t *testing.T) {
	s := slots()
	got := OptimalDataBits(s, 400*time.Millisecond, 12000, 1024, 4096, 1024)
	if got != 4096 {
		t.Errorf("OptimalDataBits = %d, want 4096 (Table 2 range)", got)
	}
}

// TestOptimalDataBitsDegenerateInputs: a non-positive step or an empty
// range must return minBits immediately — a step of 0 used to loop
// forever.
func TestOptimalDataBitsDegenerateInputs(t *testing.T) {
	s := slots()
	for _, c := range []struct {
		name                   string
		minBits, maxBits, step int
	}{
		{"zero step", 1024, 4096, 0},
		{"negative step", 1024, 4096, -512},
		{"empty range", 4096, 1024, 1024},
		{"empty range zero step", 4096, 1024, 0},
	} {
		done := make(chan int, 1)
		go func() {
			done <- OptimalDataBits(s, 400*time.Millisecond, 12000, c.minBits, c.maxBits, c.step)
		}()
		select {
		case got := <-done:
			if got != c.minBits {
				t.Errorf("%s: OptimalDataBits = %d, want minBits %d", c.name, got, c.minBits)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("%s: OptimalDataBits hung", c.name)
		}
	}
}
