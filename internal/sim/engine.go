package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Priority orders events that are scheduled for the same instant.
// Lower values run first. The bands below keep physical-layer
// bookkeeping strictly ahead of protocol reactions within an instant.
type Priority int32

const (
	// PriorityPHY is for physical-layer events (arrival starts/ends).
	PriorityPHY Priority = 1
	// PriorityMAC is for protocol state-machine events (slot ticks, timers).
	PriorityMAC Priority = 2
	// PriorityApp is for application-level events (traffic generation).
	PriorityApp Priority = 3
	// PriorityObserver is for metric sampling; it always sees settled state.
	PriorityObserver Priority = 4
)

// ErrScheduleInPast is returned when an event is scheduled before the
// engine's current time.
var ErrScheduleInPast = errors.New("sim: event scheduled in the past")

// Handle identifies a scheduled event and allows cancelling it.
type Handle struct {
	ev *event
}

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled event is a no-op. Cancel reports whether the event
// was still pending.
func (h *Handle) Cancel() bool {
	if h == nil || h.ev == nil || h.ev.cancelled || h.ev.done {
		return false
	}
	h.ev.cancelled = true
	h.ev.fn = nil
	return true
}

// Pending reports whether the event is still waiting to run.
func (h *Handle) Pending() bool {
	return h != nil && h.ev != nil && !h.ev.cancelled && !h.ev.done
}

type event struct {
	at        Time
	prio      Priority
	seq       uint64
	fn        func()
	cancelled bool
	done      bool
	index     int
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	if h[i].prio != h[j].prio {
		return h[i].prio < h[j].prio
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		panic(fmt.Sprintf("sim: eventHeap.Push got %T, want *event", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now      Time
	events   eventHeap
	seq      uint64
	executed uint64
	stopped  bool
	seed     int64
	streams  map[string]*RNG
	horizon  Time // 0 means unbounded
	// wallAccum / runStart track wall-clock time spent inside Run for
	// LoopStats. They are touched only at Run entry/exit, never in the
	// per-event loop, so instrumentation costs the hot path nothing.
	wallAccum time.Duration
	runStart  time.Time
	inRun     bool
}

// LoopStats is a snapshot of event-loop health, polled by the
// observability sampler (the engine itself never pushes events).
type LoopStats struct {
	// Now is the current simulation time.
	Now Time
	// Executed counts events run since engine construction.
	Executed uint64
	// Pending is the current event-queue depth (including cancelled
	// events not yet discarded).
	Pending int
	// Wall is cumulative wall-clock time spent inside Run.
	Wall time.Duration
}

// LoopStats returns the current event-loop snapshot. It is safe to
// call from inside a running event (the usual case: a sampler event).
func (e *Engine) LoopStats() LoopStats {
	wall := e.wallAccum
	if e.inRun {
		wall += time.Since(e.runStart)
	}
	return LoopStats{Now: e.now, Executed: e.executed, Pending: len(e.events), Wall: wall}
}

// NewEngine returns an engine whose RNG streams all derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		streams: make(map[string]*RNG),
	}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the seed all RNG streams derive from.
func (e *Engine) Seed() int64 { return e.seed }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many events are queued (including cancelled ones
// that have not yet been discarded).
func (e *Engine) Pending() int { return len(e.events) }

// ScheduleAt queues fn to run at instant at with the given priority and
// returns a cancellable handle. It returns ErrScheduleInPast if at is
// earlier than Now.
func (e *Engine) ScheduleAt(at Time, prio Priority, fn func()) (*Handle, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at %v, now %v", ErrScheduleInPast, at, e.now)
	}
	ev := &event{at: at, prio: prio, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Handle{ev: ev}, nil
}

// ScheduleIn queues fn to run d after Now. Negative d is clamped to zero
// so callers computing residual delays do not have to special-case
// rounding. It panics only if the internal invariant is violated.
func (e *Engine) ScheduleIn(d time.Duration, prio Priority, fn func()) *Handle {
	if d < 0 {
		d = 0
	}
	h, err := e.ScheduleAt(e.now.Add(d), prio, fn)
	if err != nil {
		// Unreachable: now+nonnegative >= now.
		panic(err)
	}
	return h
}

// MustScheduleAt is ScheduleAt for callers that have already validated
// the instant; it panics on ErrScheduleInPast.
func (e *Engine) MustScheduleAt(at Time, prio Priority, fn func()) *Handle {
	h, err := e.ScheduleAt(at, prio, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetHorizon makes Run ignore events scheduled after t. A zero horizon
// means run until the queue drains.
func (e *Engine) SetHorizon(t Time) { e.horizon = t }

// Run executes events in order until the queue is empty, the horizon is
// reached, or Stop is called. It returns the number of events executed
// during this call.
func (e *Engine) Run() uint64 {
	e.stopped = false
	if !e.inRun {
		// Runs can nest only via buggy reentrancy; guard anyway so the
		// wall-clock accounting never double-counts.
		e.inRun = true
		e.runStart = time.Now()
		defer func() {
			e.wallAccum += time.Since(e.runStart)
			e.inRun = false
		}()
	}
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		ev, ok := heap.Pop(&e.events).(*event)
		if !ok {
			panic("sim: heap returned non-event")
		}
		if ev.cancelled {
			continue
		}
		if e.horizon != 0 && ev.at > e.horizon {
			// Past the horizon: put the event back and stop so a later
			// Run/RunUntil call can resume from here.
			heap.Push(&e.events, ev)
			e.now = e.horizon
			break
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, e.now))
		}
		e.now = ev.at
		ev.done = true
		fn := ev.fn
		ev.fn = nil
		e.executed++
		n++
		fn()
	}
	return n
}

// RunUntil executes events up to and including instant t, then stops with
// Now advanced to exactly t (even if no event lands there).
func (e *Engine) RunUntil(t Time) uint64 {
	if t < e.now {
		return 0
	}
	prev := e.horizon
	e.horizon = t
	n := e.Run()
	e.horizon = prev
	if e.now < t {
		e.now = t
	}
	return n
}
