package sim

import (
	"errors"
	"fmt"
	"time"
)

// Priority orders events that are scheduled for the same instant.
// Lower values run first. The bands below keep physical-layer
// bookkeeping strictly ahead of protocol reactions within an instant.
type Priority int32

const (
	// PriorityPHY is for physical-layer events (arrival starts/ends).
	PriorityPHY Priority = 1
	// PriorityMAC is for protocol state-machine events (slot ticks, timers).
	PriorityMAC Priority = 2
	// PriorityApp is for application-level events (traffic generation).
	PriorityApp Priority = 3
	// PriorityObserver is for metric sampling; it always sees settled state.
	PriorityObserver Priority = 4
)

// ErrScheduleInPast is returned when an event is scheduled before the
// engine's current time.
var ErrScheduleInPast = errors.New("sim: event scheduled in the past")

// Handle identifies a scheduled event and allows cancelling it. It is a
// small value (copy freely); the zero Handle refers to no event, and
// Cancel/Pending on it are safe no-ops. Events are pooled and recycled
// after execution, so a Handle carries the generation it was issued
// under — operations on a Handle whose event has since been recycled
// are no-ops, never misfires against the event's new occupant.
type Handle struct {
	ev  *event
	gen uint64
}

// Cancel prevents the event from running. Cancelling an already-executed
// or already-cancelled event is a no-op. Cancel reports whether the event
// was still pending. The event's slot stays in the queue until it is
// popped or reclaimed by lazy compaction.
func (h Handle) Cancel() bool {
	ev := h.ev
	if ev == nil || ev.gen != h.gen || ev.cancelled {
		return false
	}
	ev.cancelled = true
	ev.fn = nil
	e := ev.eng
	e.live--
	e.maybeCompact()
	return true
}

// Pending reports whether the event is still waiting to run.
func (h Handle) Pending() bool {
	return h.ev != nil && h.ev.gen == h.gen && !h.ev.cancelled
}

// event is a pooled queue entry. gen is bumped every time the entry is
// recycled, invalidating outstanding Handles.
type event struct {
	at        Time
	prio      Priority
	seq       uint64
	gen       uint64
	fn        func()
	eng       *Engine
	cancelled bool
}

// eventLess is the total order events execute in: time, then priority,
// then scheduling sequence. seq is unique, so the order is strict — the
// execution sequence cannot depend on heap layout or compaction.
func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.prio != b.prio {
		return a.prio < b.prio
	}
	return a.seq < b.seq
}

// compactMin is the queue size below which cancelled entries are left
// for Run to discard; compacting tiny queues costs more than it saves.
const compactMin = 64

// Engine is a deterministic discrete-event scheduler.
type Engine struct {
	now    Time
	events []*event // binary min-heap ordered by eventLess
	free   []*event // recycled entries; schedule pops from here first
	// live counts queued events that are neither cancelled nor executed.
	live     int
	seq      uint64
	executed uint64
	stopped  bool
	seed     int64
	streams  map[string]*RNG
	// lastStream memoizes the most recent RNG lookup so hot paths that
	// re-request the same named stream skip the map.
	lastStream *RNG
	horizon    Time // 0 means unbounded
	// wallAccum / runStart track wall-clock time spent inside Run for
	// LoopStats. They are touched only at Run entry/exit, never in the
	// per-event loop, so instrumentation costs the hot path nothing.
	wallAccum time.Duration
	runStart  time.Time
	inRun     bool
	// budget fields (see budget.go): checks run only when budgetOn, so
	// unbudgeted runs pay one predictable branch per event. instAt /
	// instCount / instValid drive the livelock detector.
	budget    Budget
	budgetOn  bool
	budgetErr *BudgetError
	instAt    Time
	instCount uint64
	instValid bool
}

// LoopStats is a snapshot of event-loop health, polled by the
// observability sampler (the engine itself never pushes events).
type LoopStats struct {
	// Now is the current simulation time.
	Now Time
	// Executed counts events run since engine construction.
	Executed uint64
	// Pending is the number of live (not cancelled, not yet executed)
	// events in the queue.
	Pending int
	// PendingRaw is the raw queue depth including cancelled entries not
	// yet discarded; PendingRaw - Pending is the reclaimable slack the
	// lazy compactor watches.
	PendingRaw int
	// Wall is cumulative wall-clock time spent inside Run.
	Wall time.Duration
}

// LoopStats returns the current event-loop snapshot. It is safe to
// call from inside a running event (the usual case: a sampler event).
func (e *Engine) LoopStats() LoopStats {
	wall := e.wallAccum
	if e.inRun {
		wall += time.Since(e.runStart)
	}
	return LoopStats{
		Now:        e.now,
		Executed:   e.executed,
		Pending:    e.live,
		PendingRaw: len(e.events),
		Wall:       wall,
	}
}

// NewEngine returns an engine whose RNG streams all derive from seed.
func NewEngine(seed int64) *Engine {
	return &Engine{
		seed:    seed,
		streams: make(map[string]*RNG),
	}
}

// Now reports the current simulation time.
func (e *Engine) Now() Time { return e.now }

// Seed reports the seed all RNG streams derive from.
func (e *Engine) Seed() int64 { return e.seed }

// Executed reports how many events have run so far.
func (e *Engine) Executed() uint64 { return e.executed }

// Pending reports how many live events are waiting to run. Cancelled
// entries still occupying queue slots are not counted; PendingRaw
// reports the raw depth.
func (e *Engine) Pending() int { return e.live }

// PendingRaw reports the raw queue depth, including cancelled entries
// that have not yet been discarded or compacted away.
func (e *Engine) PendingRaw() int { return len(e.events) }

// alloc takes an entry from the free list, or mints one.
func (e *Engine) alloc() *event {
	if n := len(e.free); n > 0 {
		ev := e.free[n-1]
		e.free[n-1] = nil
		e.free = e.free[:n-1]
		return ev
	}
	return &event{eng: e}
}

// recycle invalidates outstanding handles and returns the entry to the
// free list.
func (e *Engine) recycle(ev *event) {
	ev.gen++
	ev.fn = nil
	ev.cancelled = false
	e.free = append(e.free, ev)
}

// push inserts ev into the heap (sift-up).
func (e *Engine) push(ev *event) {
	h := append(e.events, ev)
	i := len(h) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(h[i], h[parent]) {
			break
		}
		h[i], h[parent] = h[parent], h[i]
		i = parent
	}
	e.events = h
}

// pop removes and returns the earliest event (sift-down).
func (e *Engine) pop() *event {
	h := e.events
	n := len(h) - 1
	top := h[0]
	h[0] = h[n]
	h[n] = nil
	h = h[:n]
	e.events = h
	e.siftDown(0)
	return top
}

func (e *Engine) siftDown(i int) {
	h := e.events
	n := len(h)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		small := l
		if r := l + 1; r < n && eventLess(h[r], h[l]) {
			small = r
		}
		if !eventLess(h[small], h[i]) {
			return
		}
		h[i], h[small] = h[small], h[i]
		i = small
	}
}

// maybeCompact rebuilds the heap without its cancelled entries once
// they outnumber live ones. Compaction is invisible to execution order:
// events are totally ordered by (at, prio, seq), so the pop sequence
// after a rebuild is identical to the sequence without one.
func (e *Engine) maybeCompact() {
	n := len(e.events)
	if n < compactMin || 2*(n-e.live) <= n {
		return
	}
	h := e.events
	out := h[:0]
	for _, ev := range h {
		if ev.cancelled {
			e.recycle(ev)
		} else {
			out = append(out, ev)
		}
	}
	for i := len(out); i < n; i++ {
		h[i] = nil
	}
	e.events = out
	for i := len(out)/2 - 1; i >= 0; i-- {
		e.siftDown(i)
	}
}

// ScheduleAt queues fn to run at instant at with the given priority and
// returns a cancellable handle. It returns ErrScheduleInPast if at is
// earlier than Now. Steady state (pool warm, queue capacity reached) it
// performs no allocations.
func (e *Engine) ScheduleAt(at Time, prio Priority, fn func()) (Handle, error) {
	if at < e.now {
		return Handle{}, fmt.Errorf("%w: at %v, now %v", ErrScheduleInPast, at, e.now)
	}
	ev := e.alloc()
	ev.at = at
	ev.prio = prio
	ev.seq = e.seq
	ev.fn = fn
	e.seq++
	e.live++
	e.push(ev)
	return Handle{ev: ev, gen: ev.gen}, nil
}

// ScheduleIn queues fn to run d after Now. Negative d is clamped to zero
// so callers computing residual delays do not have to special-case
// rounding. It panics only if the internal invariant is violated.
func (e *Engine) ScheduleIn(d time.Duration, prio Priority, fn func()) Handle {
	if d < 0 {
		d = 0
	}
	h, err := e.ScheduleAt(e.now.Add(d), prio, fn)
	if err != nil {
		// Unreachable: now+nonnegative >= now.
		panic(err)
	}
	return h
}

// MustScheduleAt is ScheduleAt for callers that have already validated
// the instant; it panics on ErrScheduleInPast.
func (e *Engine) MustScheduleAt(at Time, prio Priority, fn func()) Handle {
	h, err := e.ScheduleAt(at, prio, fn)
	if err != nil {
		panic(err)
	}
	return h
}

// Stop makes Run return after the current event completes.
func (e *Engine) Stop() { e.stopped = true }

// SetHorizon makes Run ignore events scheduled after t. A zero horizon
// means run until the queue drains.
func (e *Engine) SetHorizon(t Time) { e.horizon = t }

// Run executes events in order until the queue is empty, the horizon is
// reached, or Stop is called. It returns the number of events executed
// during this call.
func (e *Engine) Run() uint64 {
	if e.budgetErr != nil {
		// A budget abort is terminal for this engine: the stream was cut
		// mid-flight and resuming would silently produce a half-run.
		return 0
	}
	e.stopped = false
	if !e.inRun {
		// Runs can nest only via buggy reentrancy; guard anyway so the
		// wall-clock accounting never double-counts.
		e.inRun = true
		e.runStart = time.Now()
		defer func() {
			e.wallAccum += time.Since(e.runStart)
			e.inRun = false
		}()
	}
	var n uint64
	for len(e.events) > 0 && !e.stopped {
		ev := e.pop()
		if ev.cancelled {
			e.recycle(ev)
			continue
		}
		if e.horizon != 0 && ev.at > e.horizon {
			// Past the horizon: put the event back and stop so a later
			// Run/RunUntil call can resume from here.
			e.push(ev)
			e.now = e.horizon
			break
		}
		if ev.at < e.now {
			panic(fmt.Sprintf("sim: time went backwards: event at %v, now %v", ev.at, e.now))
		}
		if e.budgetOn {
			if berr := e.checkBudget(ev.at); berr != nil {
				// Abort before touching state: the event goes back on the
				// queue so Pending stays truthful for post-mortems.
				e.budgetErr = berr
				e.push(ev)
				break
			}
		}
		e.now = ev.at
		fn := ev.fn
		// Recycle before running: the heap no longer references the
		// entry, outstanding Handles are invalidated by the gen bump,
		// and fn may immediately reuse the slot for a new event.
		e.recycle(ev)
		e.live--
		e.executed++
		n++
		fn()
	}
	return n
}

// RunUntil executes events up to and including instant t, then stops with
// Now advanced to exactly t (even if no event lands there).
func (e *Engine) RunUntil(t Time) uint64 {
	if t < e.now {
		return 0
	}
	prev := e.horizon
	e.horizon = t
	n := e.Run()
	e.horizon = prev
	// A budget abort leaves Now at the abort instant rather than
	// claiming the full window was simulated.
	if e.budgetErr == nil && e.now < t {
		e.now = t
	}
	return n
}
