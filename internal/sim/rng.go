package sim

import (
	"hash/fnv"
	"math"
	"math/rand"
	"strconv"
)

// RNG is a named deterministic random stream. Distinct subsystems
// (traffic, mobility, per-node contention) draw from distinct streams so
// that adding randomness to one subsystem does not perturb another —
// a prerequisite for meaningful A/B comparisons between protocols on the
// same seed.
type RNG struct {
	*rand.Rand
	name string
}

// Name reports the stream name.
func (r *RNG) Name() string { return r.name }

// ExpFloat64Rate draws an exponential variate with the given rate
// (events per second); it returns +Inf for a non-positive rate, which
// callers use to disable a generator.
func (r *RNG) ExpFloat64Rate(rate float64) float64 {
	if rate <= 0 {
		return math.Inf(1)
	}
	return r.ExpFloat64() / rate
}

// RNG returns the stream with the given name, creating it on first use.
// The stream's seed is a stable function of the engine seed and the name.
// A single-entry memo short-circuits the map lookup for hot paths that
// re-request the same stream; long-lived callers should still cache the
// returned handle at construction.
func (e *Engine) RNG(name string) *RNG {
	if r := e.lastStream; r != nil && r.name == name {
		return r
	}
	if r, ok := e.streams[name]; ok {
		e.lastStream = r
		return r
	}
	r := &RNG{
		Rand: rand.New(rand.NewSource(deriveSeed(e.seed, name))),
		name: name,
	}
	e.streams[name] = r
	e.lastStream = r
	return r
}

func deriveSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(strconv.FormatInt(seed, 16)))
	_, _ = h.Write([]byte{':'})
	_, _ = h.Write([]byte(name))
	derived := int64(h.Sum64()) //nolint:gosec // deliberate wraparound
	if derived == 0 {
		derived = 1
	}
	return derived
}
