package sim

import (
	"testing"
	"time"
)

// A handle must go dead once its event runs, even after the pooled
// entry is reused for a brand-new event: Cancel through the stale
// handle must not kill the new occupant.
func TestStaleHandleCannotCancelRecycledEvent(t *testing.T) {
	e := NewEngine(1)
	first := e.ScheduleIn(time.Millisecond, PriorityMAC, func() {})
	e.Run()
	if first.Pending() {
		t.Fatal("handle still pending after its event ran")
	}

	ran := false
	second := e.ScheduleIn(time.Millisecond, PriorityMAC, func() { ran = true })
	if second.ev != first.ev {
		t.Fatal("pool did not recycle the event entry")
	}
	if first.Cancel() {
		t.Error("stale handle reported a successful cancel")
	}
	if !second.Pending() {
		t.Error("stale cancel killed the recycled event")
	}
	e.Run()
	if !ran {
		t.Error("recycled event did not run")
	}
}

// Zero-value handles are inert.
func TestZeroHandleSafe(t *testing.T) {
	var h Handle
	if h.Pending() {
		t.Error("zero handle pending")
	}
	if h.Cancel() {
		t.Error("zero handle cancelled something")
	}
}

// Pending must count live events only; PendingRaw keeps the queue depth.
func TestPendingExcludesCancelled(t *testing.T) {
	e := NewEngine(1)
	var hs []Handle
	for i := 0; i < 10; i++ {
		hs = append(hs, e.ScheduleIn(time.Duration(i+1)*time.Millisecond, PriorityMAC, func() {}))
	}
	for i := 0; i < 4; i++ {
		hs[i].Cancel()
	}
	if got := e.Pending(); got != 6 {
		t.Errorf("Pending = %d, want 6", got)
	}
	if got := e.PendingRaw(); got != 10 {
		t.Errorf("PendingRaw = %d, want 10", got)
	}
	ls := e.LoopStats()
	if ls.Pending != 6 || ls.PendingRaw != 10 {
		t.Errorf("LoopStats pending = %d/%d, want 6/10", ls.Pending, ls.PendingRaw)
	}
	e.Run()
	if e.Pending() != 0 || e.PendingRaw() != 0 {
		t.Errorf("queue not drained: %d/%d", e.Pending(), e.PendingRaw())
	}
}

// Mass-cancelling above the compaction threshold must shrink the raw
// queue without disturbing the surviving events or their order.
func TestCompactionPreservesOrder(t *testing.T) {
	e := NewEngine(1)
	const n = 200
	hs := make([]Handle, n)
	for i := 0; i < n; i++ {
		i := i
		hs[i] = e.ScheduleIn(time.Duration(i+1)*time.Millisecond, PriorityMAC, func() {
			_ = i
		})
	}
	var order []int
	for i := 0; i < n; i++ {
		i := i
		// Replace: cancel original and track execution order via fresh events.
		hs[i].Cancel()
	}
	if e.PendingRaw() >= n {
		t.Errorf("compaction never fired: raw depth %d", e.PendingRaw())
	}
	if e.Pending() != 0 {
		t.Errorf("live count %d after cancelling all", e.Pending())
	}
	for i := n - 1; i >= 0; i-- {
		i := i
		e.ScheduleIn(time.Duration(i+1)*time.Millisecond, PriorityMAC, func() {
			order = append(order, i)
		})
	}
	e.Run()
	if len(order) != n {
		t.Fatalf("ran %d events, want %d", len(order), n)
	}
	for i := 1; i < n; i++ {
		if order[i] < order[i-1] {
			t.Fatalf("out of order at %d: %v then %v", i, order[i-1], order[i])
		}
	}
}

// The pool must reach zero steady-state allocations: after a warm-up
// batch, scheduling+running the same batch size again allocates nothing.
func TestScheduleSteadyStateAllocs(t *testing.T) {
	e := NewEngine(1)
	const batch = 256
	fn := func() {}
	run := func() {
		for i := 0; i < batch; i++ {
			e.ScheduleIn(time.Duration(i)*time.Microsecond, PriorityMAC, fn)
		}
		e.Run()
	}
	run() // warm pool + heap capacity
	avg := testing.AllocsPerRun(10, run)
	if avg != 0 {
		t.Errorf("steady-state allocs per batch = %v, want 0", avg)
	}
}
