package sim

import (
	"errors"
	"fmt"
	"time"
)

// ErrBudgetExceeded is the sentinel every budget abort wraps. Callers
// classify an aborted run with errors.Is(err, sim.ErrBudgetExceeded)
// and read the specifics from the *BudgetError in the chain.
var ErrBudgetExceeded = errors.New("sim: budget exceeded")

// Budget abort reasons, carried in BudgetError.Reason.
const (
	// BudgetDeadline: cumulative wall-clock time inside Run passed the
	// configured deadline.
	BudgetDeadline = "deadline"
	// BudgetMaxEvents: the engine executed its event cap.
	BudgetMaxEvents = "max-events"
	// BudgetLivelock: the livelock detector tripped — simulation time
	// stopped advancing across LivelockEvents consecutive events.
	BudgetLivelock = "livelock"
)

// DefaultLivelockEvents is the livelock window applied when a budget is
// enabled without an explicit LivelockEvents. A healthy slotted-MAC run
// executes at most a few events per node per instant; a million events
// with simulation time frozen is a spinning protocol, not a busy one.
const DefaultLivelockEvents = 1 << 20

// deadlineCheckMask throttles the wall-clock syscall in the run loop:
// the deadline is only consulted every (mask+1) events.
const deadlineCheckMask = 1<<10 - 1

// Budget bounds a run so pathological parameter corners abort with a
// structured error instead of spinning forever. The zero Budget
// disables every check (Enabled reports false) and costs the run loop
// one predictable branch per event.
type Budget struct {
	// Deadline caps cumulative wall-clock time spent inside Run
	// (0 = unbounded). It is checked every few hundred events, so very
	// slow individual events can overshoot slightly.
	Deadline time.Duration
	// MaxEvents caps the total number of events executed over the
	// engine's lifetime (0 = unbounded).
	MaxEvents uint64
	// LivelockEvents is the watchdog window: executing this many
	// consecutive events without simulation time advancing aborts the
	// run as livelocked (0 = detector off).
	LivelockEvents uint64
}

// Enabled reports whether any budget check is active.
func (b Budget) Enabled() bool {
	return b.Deadline > 0 || b.MaxEvents > 0 || b.LivelockEvents > 0
}

// Scale returns the budget loosened by factor (deadline and event cap
// multiplied; the livelock window is a correctness bound, not a size
// bound, and stays fixed). Retry supervisors use it to give a
// budget-aborted point more room on the next attempt.
func (b Budget) Scale(factor uint64) Budget {
	if factor <= 1 {
		return b
	}
	out := b
	if b.Deadline > 0 {
		out.Deadline = b.Deadline * time.Duration(factor)
	}
	if b.MaxEvents > 0 {
		out.MaxEvents = b.MaxEvents * factor
	}
	return out
}

// BudgetError reports which budget a run exhausted and where it stood.
// It wraps ErrBudgetExceeded.
type BudgetError struct {
	// Reason is one of BudgetDeadline, BudgetMaxEvents, BudgetLivelock.
	Reason string
	// Events is the number of events executed when the budget tripped.
	Events uint64
	// At is the simulation time of the abort.
	At Time
	// Elapsed is the cumulative wall-clock time spent inside Run.
	Elapsed time.Duration
}

// Error implements error.
func (e *BudgetError) Error() string {
	return fmt.Sprintf("sim: budget exceeded (%s) after %d events at sim time %v (wall %v)",
		e.Reason, e.Events, e.At, e.Elapsed.Truncate(time.Microsecond))
}

// Unwrap makes errors.Is(err, ErrBudgetExceeded) hold.
func (e *BudgetError) Unwrap() error { return ErrBudgetExceeded }

// SetBudget installs (or, with the zero Budget, removes) the run
// budget and clears any previous budget abort. The budget spans the
// engine's lifetime: MaxEvents counts all executed events and Deadline
// all wall-clock time inside Run, not just the next call.
func (e *Engine) SetBudget(b Budget) {
	e.budget = b
	e.budgetOn = b.Enabled()
	e.budgetErr = nil
	e.instCount = 0
	e.instValid = false
}

// BudgetErr returns the budget abort that stopped the last Run, or nil.
// Once set it persists (and blocks further Run calls) until SetBudget
// resets it: a budget-aborted engine is mid-event-stream and its state
// is only safe to inspect, not to resume blindly.
func (e *Engine) BudgetErr() error {
	if e.budgetErr == nil {
		return nil // avoid a typed-nil error interface
	}
	return e.budgetErr
}

// checkBudget is consulted once per event, before execution, with the
// event's instant. It returns the abort to record, or nil.
func (e *Engine) checkBudget(at Time) *BudgetError {
	b := &e.budget
	if b.MaxEvents > 0 && e.executed >= b.MaxEvents {
		return e.budgetError(BudgetMaxEvents, at)
	}
	if b.LivelockEvents > 0 {
		if e.instValid && at == e.instAt {
			e.instCount++
			if e.instCount >= b.LivelockEvents {
				return e.budgetError(BudgetLivelock, at)
			}
		} else {
			e.instAt = at
			e.instValid = true
			e.instCount = 0
		}
	}
	if b.Deadline > 0 && e.executed&deadlineCheckMask == 0 {
		if elapsed := e.wallAccum + time.Since(e.runStart); elapsed > b.Deadline {
			return e.budgetError(BudgetDeadline, at)
		}
	}
	return nil
}

func (e *Engine) budgetError(reason string, at Time) *BudgetError {
	elapsed := e.wallAccum
	if e.inRun {
		elapsed += time.Since(e.runStart)
	}
	return &BudgetError{Reason: reason, Events: e.executed, At: at, Elapsed: elapsed}
}
