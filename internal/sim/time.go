// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine is single-threaded by design: underwater MAC experiments are
// sensitive to the exact interleaving of packet arrivals, so event
// execution order must be a pure function of the initial seed and the
// scheduled work. Events at the same instant are ordered by an explicit
// priority and then by scheduling sequence number.
package sim

import (
	"fmt"
	"time"
)

// Time is an absolute simulation instant, in nanoseconds since the start
// of the simulation. The zero Time is the simulation epoch.
type Time int64

// Common instants and conversion helpers.
const (
	// Epoch is the start of simulated time.
	Epoch Time = 0
)

// At converts a duration since the epoch into an absolute Time.
func At(d time.Duration) Time { return Time(d.Nanoseconds()) }

// FromSeconds converts fractional seconds since the epoch into a Time.
func FromSeconds(s float64) Time { return Time(s * float64(time.Second)) }

// Add returns the instant d after t.
func (t Time) Add(d time.Duration) Time { return t + Time(d) }

// Sub returns the duration from u to t.
func (t Time) Sub(u Time) time.Duration { return time.Duration(t - u) }

// Seconds reports t as fractional seconds since the epoch.
func (t Time) Seconds() float64 { return float64(t) / float64(time.Second) }

// Duration reports the instant as a duration since the epoch.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Before reports whether t is strictly earlier than u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t is strictly later than u.
func (t Time) After(u Time) bool { return t > u }

// String formats the instant as seconds with millisecond precision.
func (t Time) String() string {
	return fmt.Sprintf("t=%.6fs", t.Seconds())
}
