package sim

import (
	"errors"
	"testing"
	"time"
)

func TestBudgetMaxEvents(t *testing.T) {
	e := NewEngine(1)
	e.SetBudget(Budget{MaxEvents: 10})
	for i := 0; i < 50; i++ {
		d := time.Duration(i) * time.Millisecond
		e.ScheduleIn(d, PriorityMAC, func() {})
	}
	n := e.Run()
	if n != 10 {
		t.Fatalf("executed %d events, want 10", n)
	}
	err := e.BudgetErr()
	if !errors.Is(err, ErrBudgetExceeded) {
		t.Fatalf("BudgetErr = %v, want ErrBudgetExceeded", err)
	}
	var be *BudgetError
	if !errors.As(err, &be) || be.Reason != BudgetMaxEvents {
		t.Fatalf("BudgetErr = %#v, want reason %q", err, BudgetMaxEvents)
	}
	if be.Events != 10 {
		t.Errorf("Events = %d, want 10", be.Events)
	}
	// The 40 unexecuted events stay pending (the aborting event was
	// pushed back), and further Run calls refuse to continue.
	if got := e.Pending(); got != 40 {
		t.Errorf("Pending = %d, want 40", got)
	}
	if n := e.Run(); n != 0 {
		t.Errorf("Run after budget abort executed %d events, want 0", n)
	}
}

func TestBudgetLivelockDetector(t *testing.T) {
	e := NewEngine(1)
	e.SetBudget(Budget{LivelockEvents: 100})
	// A self-rescheduling event that never advances simulation time:
	// the canonical livelock (a protocol spinning at one instant).
	var spin func()
	spin = func() {
		e.MustScheduleAt(e.Now(), PriorityMAC, spin)
	}
	e.MustScheduleAt(At(time.Second), PriorityMAC, spin)
	e.Run()
	var be *BudgetError
	if err := e.BudgetErr(); !errors.As(err, &be) || be.Reason != BudgetLivelock {
		t.Fatalf("BudgetErr = %v, want livelock", err)
	}
	if got := be.At; got != At(time.Second) {
		t.Errorf("livelock detected at %v, want %v", got, At(time.Second))
	}
}

func TestBudgetLivelockAllowsBusyInstants(t *testing.T) {
	// Many events at one instant, below the window, must not trip: the
	// detector watches for *unbounded* same-instant execution.
	e := NewEngine(1)
	e.SetBudget(Budget{LivelockEvents: 1000})
	for i := 0; i < 500; i++ {
		e.MustScheduleAt(At(time.Second), PriorityMAC, func() {})
		e.MustScheduleAt(At(2*time.Second), PriorityMAC, func() {})
	}
	if n := e.Run(); n != 1000 {
		t.Fatalf("executed %d, want 1000", n)
	}
	if err := e.BudgetErr(); err != nil {
		t.Fatalf("unexpected budget abort: %v", err)
	}
}

func TestBudgetDeadline(t *testing.T) {
	e := NewEngine(1)
	e.SetBudget(Budget{Deadline: time.Nanosecond})
	// Enough events to reach the throttled deadline check (every
	// deadlineCheckMask+1 events, and at event 0).
	for i := 0; i < 10; i++ {
		e.ScheduleIn(time.Duration(i)*time.Millisecond, PriorityMAC, func() {})
	}
	time.Sleep(time.Millisecond) // guarantee the wall clock moved
	e.Run()
	var be *BudgetError
	if err := e.BudgetErr(); !errors.As(err, &be) || be.Reason != BudgetDeadline {
		t.Fatalf("BudgetErr = %v, want deadline", err)
	}
}

func TestBudgetRunUntilDoesNotAdvancePastAbort(t *testing.T) {
	e := NewEngine(1)
	e.SetBudget(Budget{MaxEvents: 1})
	e.ScheduleIn(time.Second, PriorityMAC, func() {})
	e.ScheduleIn(2*time.Second, PriorityMAC, func() {})
	e.RunUntil(At(time.Minute))
	if e.BudgetErr() == nil {
		t.Fatal("expected budget abort")
	}
	if e.Now() >= At(time.Minute) {
		t.Errorf("Now = %v advanced to the horizon despite the abort", e.Now())
	}
}

func TestBudgetScale(t *testing.T) {
	b := Budget{Deadline: time.Second, MaxEvents: 100, LivelockEvents: 10}
	s := b.Scale(4)
	if s.Deadline != 4*time.Second || s.MaxEvents != 400 {
		t.Errorf("Scale(4) = %+v", s)
	}
	if s.LivelockEvents != 10 {
		t.Errorf("LivelockEvents scaled to %d, want fixed 10", s.LivelockEvents)
	}
	if z := (Budget{}); z.Enabled() {
		t.Error("zero budget reports enabled")
	}
	if !b.Enabled() {
		t.Error("non-zero budget reports disabled")
	}
}

func TestSetBudgetClearsAbort(t *testing.T) {
	e := NewEngine(1)
	e.SetBudget(Budget{MaxEvents: 1})
	e.ScheduleIn(time.Millisecond, PriorityMAC, func() {})
	e.ScheduleIn(2*time.Millisecond, PriorityMAC, func() {})
	e.Run()
	if e.BudgetErr() == nil {
		t.Fatal("expected abort")
	}
	e.SetBudget(Budget{})
	if e.BudgetErr() != nil {
		t.Fatal("SetBudget did not clear the abort")
	}
	if n := e.Run(); n != 1 {
		t.Fatalf("drain after reset executed %d events, want 1", n)
	}
}
