package sim

import (
	"testing"
	"time"
)

func TestLoopStats(t *testing.T) {
	e := NewEngine(1)
	if s := e.LoopStats(); s.Executed != 0 || s.Pending != 0 || s.Wall != 0 {
		t.Fatalf("fresh engine stats not zero: %+v", s)
	}
	for i := 0; i < 5; i++ {
		e.ScheduleIn(time.Duration(i)*time.Second, PriorityMAC, func() {})
	}
	if s := e.LoopStats(); s.Pending != 5 {
		t.Fatalf("pending = %d, want 5", s.Pending)
	}
	// Sample from inside a running event: wall time must already be
	// accumulating and executed must reflect completed events.
	var mid LoopStats
	e.ScheduleIn(2500*time.Millisecond, PriorityObserver, func() { mid = e.LoopStats() })
	e.Run()
	// Events at 0s, 1s, 2s ran before 2.5s, plus the sampling event
	// itself (counted before its callback runs).
	if mid.Executed != 4 {
		t.Errorf("mid-run executed = %d, want 4", mid.Executed)
	}
	if mid.Now != At(2500*time.Millisecond) {
		t.Errorf("mid-run now = %v", mid.Now)
	}
	s := e.LoopStats()
	if s.Executed != 6 || s.Pending != 0 {
		t.Errorf("final stats: %+v", s)
	}
	if s.Wall <= 0 || s.Wall < mid.Wall {
		t.Errorf("wall time not accumulated: mid=%v final=%v", mid.Wall, s.Wall)
	}
	if s.Now != At(4*time.Second) {
		t.Errorf("final now = %v", s.Now)
	}
}
