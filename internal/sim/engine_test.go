package sim

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var got []Time
	for _, d := range []time.Duration{5 * time.Second, time.Second, 3 * time.Second} {
		at := Epoch.Add(d)
		e.MustScheduleAt(at, PriorityMAC, func() { got = append(got, e.Now()) })
	}
	e.Run()
	want := []Time{At(time.Second), At(3 * time.Second), At(5 * time.Second)}
	if len(got) != len(want) {
		t.Fatalf("executed %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d ran at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineTieBreakByPriorityThenSeq(t *testing.T) {
	e := NewEngine(1)
	at := Epoch.Add(time.Second)
	var order []string
	e.MustScheduleAt(at, PriorityApp, func() { order = append(order, "app") })
	e.MustScheduleAt(at, PriorityPHY, func() { order = append(order, "phy1") })
	e.MustScheduleAt(at, PriorityMAC, func() { order = append(order, "mac") })
	e.MustScheduleAt(at, PriorityPHY, func() { order = append(order, "phy2") })
	e.Run()
	want := []string{"phy1", "phy2", "mac", "app"}
	for i := range want {
		if order[i] != want[i] {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine(1)
	e.MustScheduleAt(Epoch.Add(time.Second), PriorityMAC, func() {
		if _, err := e.ScheduleAt(Epoch, PriorityMAC, func() {}); err == nil {
			t.Error("scheduling in the past succeeded, want error")
		}
	})
	e.Run()
}

func TestCancelPreventsExecution(t *testing.T) {
	e := NewEngine(1)
	ran := false
	h := e.ScheduleIn(time.Second, PriorityMAC, func() { ran = true })
	if !h.Pending() {
		t.Fatal("handle not pending after schedule")
	}
	if !h.Cancel() {
		t.Fatal("Cancel returned false for pending event")
	}
	if h.Cancel() {
		t.Error("second Cancel returned true")
	}
	e.Run()
	if ran {
		t.Error("cancelled event ran")
	}
	if h.Pending() {
		t.Error("cancelled handle still pending")
	}
}

func TestRunUntilStopsAtHorizonAndResumes(t *testing.T) {
	e := NewEngine(1)
	var ran []int
	for i := 1; i <= 5; i++ {
		i := i
		e.ScheduleIn(time.Duration(i)*time.Second, PriorityMAC, func() { ran = append(ran, i) })
	}
	e.RunUntil(At(3 * time.Second))
	if len(ran) != 3 {
		t.Fatalf("ran %v before horizon, want 3 events", ran)
	}
	if e.Now() != At(3*time.Second) {
		t.Fatalf("Now = %v, want 3s", e.Now())
	}
	e.Run()
	if len(ran) != 5 {
		t.Fatalf("ran %v after resume, want 5 events", ran)
	}
}

func TestRunUntilAdvancesClockWithoutEvents(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(At(10 * time.Second))
	if e.Now() != At(10*time.Second) {
		t.Fatalf("Now = %v, want 10s", e.Now())
	}
}

func TestStopHaltsRun(t *testing.T) {
	e := NewEngine(1)
	count := 0
	for i := 1; i <= 10; i++ {
		e.ScheduleIn(time.Duration(i)*time.Millisecond, PriorityMAC, func() {
			count++
			if count == 4 {
				e.Stop()
			}
		})
	}
	e.Run()
	if count != 4 {
		t.Fatalf("count = %d after Stop, want 4", count)
	}
	e.Run()
	if count != 10 {
		t.Fatalf("count = %d after resume, want 10", count)
	}
}

func TestEventsScheduledDuringRun(t *testing.T) {
	e := NewEngine(1)
	depth := 0
	var grow func()
	grow = func() {
		depth++
		if depth < 100 {
			e.ScheduleIn(time.Millisecond, PriorityMAC, grow)
		}
	}
	e.ScheduleIn(0, PriorityMAC, grow)
	e.Run()
	if depth != 100 {
		t.Fatalf("depth = %d, want 100", depth)
	}
	if e.Now() != At(99*time.Millisecond) {
		t.Fatalf("Now = %v, want 99ms", e.Now())
	}
}

func TestNegativeScheduleInClampsToNow(t *testing.T) {
	e := NewEngine(1)
	e.RunUntil(At(time.Second))
	ran := false
	e.ScheduleIn(-5*time.Second, PriorityMAC, func() { ran = true })
	e.Run()
	if !ran {
		t.Error("event with negative delay never ran")
	}
	if e.Now() != At(time.Second) {
		t.Errorf("Now = %v, want 1s", e.Now())
	}
}

func TestRNGStreamsAreStableAndIndependent(t *testing.T) {
	a1 := NewEngine(42).RNG("traffic")
	a2 := NewEngine(42).RNG("traffic")
	b := NewEngine(42).RNG("mobility")
	for i := 0; i < 100; i++ {
		va1, va2 := a1.Int63(), a2.Int63()
		if va1 != va2 {
			t.Fatalf("draw %d: same stream diverged: %d vs %d", i, va1, va2)
		}
		if va1 == b.Int63() && i == 0 {
			t.Fatal("distinct streams produced identical first draw")
		}
	}
}

func TestRNGStreamCached(t *testing.T) {
	e := NewEngine(7)
	if e.RNG("x") != e.RNG("x") {
		t.Fatal("RNG stream not cached")
	}
}

func TestExpFloat64RateDisabled(t *testing.T) {
	e := NewEngine(7)
	v := e.RNG("x").ExpFloat64Rate(0)
	if v < 1e300 {
		t.Fatalf("rate 0 should yield +Inf-like value, got %v", v)
	}
}

// Property: for any multiset of (delay, priority) pairs, the engine
// executes them in non-decreasing (time, priority) order and ends with
// Now equal to the max delay.
func TestEngineOrderProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		e := NewEngine(1)
		type key struct {
			at   Time
			prio Priority
		}
		var executed []key
		for _, r := range raw {
			d := time.Duration(r%1000) * time.Millisecond
			prio := Priority(1 + int(r/1000)%4)
			at := Epoch.Add(d)
			e.MustScheduleAt(at, prio, func() {
				executed = append(executed, key{e.Now(), prio})
			})
		}
		e.Run()
		if len(executed) != len(raw) {
			return false
		}
		sorted := sort.SliceIsSorted(executed, func(i, j int) bool {
			if executed[i].at != executed[j].at {
				return executed[i].at < executed[j].at
			}
			return executed[i].prio < executed[j].prio
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: cancelling an arbitrary subset leaves exactly the complement
// to execute.
func TestCancelSubsetProperty(t *testing.T) {
	f := func(n uint8, mask uint64) bool {
		count := int(n%32) + 1
		e := NewEngine(1)
		ran := make([]bool, count)
		handles := make([]Handle, count)
		for i := 0; i < count; i++ {
			i := i
			handles[i] = e.ScheduleIn(time.Duration(i+1)*time.Millisecond, PriorityMAC, func() { ran[i] = true })
		}
		for i := 0; i < count; i++ {
			if mask&(1<<uint(i)) != 0 {
				handles[i].Cancel()
			}
		}
		e.Run()
		for i := 0; i < count; i++ {
			cancelled := mask&(1<<uint(i)) != 0
			if ran[i] == cancelled {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDeriveSeedStable(t *testing.T) {
	if deriveSeed(1, "a") != deriveSeed(1, "a") {
		t.Error("deriveSeed not deterministic")
	}
	if deriveSeed(1, "a") == deriveSeed(2, "a") {
		t.Error("deriveSeed ignores engine seed")
	}
	if deriveSeed(1, "a") == deriveSeed(1, "b") {
		t.Error("deriveSeed ignores stream name")
	}
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	const batch = 1024
	e := NewEngine(1)
	r := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < batch; j++ {
			e.ScheduleIn(time.Duration(r.Intn(1000))*time.Microsecond, PriorityMAC, func() {})
		}
		e.Run()
	}
}
