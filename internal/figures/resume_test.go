package figures

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"ewmac/internal/runner"
	"ewmac/internal/sim"
)

// TestSweepResumeBitIdentical is the crash-safety acceptance test: a
// sweep interrupted mid-run (simulated by cutting the manifest back to
// a prefix plus a torn tail, exactly what SIGKILL leaves) and then
// resumed must produce a byte-identical CSV to an uninterrupted run.
func TestSweepResumeBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	opts := Options{Seeds: []int64{1}, SimTime: 20 * time.Second, Workers: 4}

	clean, err := testSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	cleanCSV := clean.CSV()

	path := filepath.Join(t.TempDir(), "manifest.jsonl")
	m1, err := runner.OpenManifest(path, "resume-test")
	if err != nil {
		t.Fatal(err)
	}
	o1 := opts
	o1.Manifest = m1
	full, err := testSweep(o1)
	m1.Close()
	if err != nil {
		t.Fatal(err)
	}
	if full.CSV() != cleanCSV {
		t.Fatalf("journaling changed results:\nclean:\n%s\njournaled:\n%s", cleanCSV, full.CSV())
	}

	// Cut the journal back to header + 3 records and a torn fourth line:
	// the on-disk state of a process killed mid-sweep.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(string(raw), "\n")
	if len(lines) < 6 {
		t.Fatalf("journal too short to truncate: %d lines", len(lines))
	}
	torn := strings.Join(lines[:4], "") + lines[4][:len(lines[4])/2]
	if err := os.WriteFile(path, []byte(torn), 0o644); err != nil {
		t.Fatal(err)
	}

	m2, err := runner.OpenManifest(path, "resume-test")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Loaded() != 3 {
		t.Fatalf("resume loaded %d records, want 3", m2.Loaded())
	}
	o2 := opts
	o2.Manifest = m2
	resumed, err := testSweep(o2)
	m2.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resumed.Stats.Resumed != 3 {
		t.Errorf("resumed stats = %+v, want 3 points served from journal", resumed.Stats)
	}
	if resumed.Failed != nil {
		t.Errorf("resumed sweep quarantined cells: %v", resumed.Failed)
	}
	if got := resumed.CSV(); got != cleanCSV {
		t.Errorf("resumed CSV not bit-identical:\nclean:\n%s\nresumed:\n%s", cleanCSV, got)
	}
}

// TestSweepQuarantineAssembles: under an impossible budget every point
// is quarantined, yet the figure still assembles — NaN cells, populated
// Failed map, nil error.
func TestSweepQuarantineAssembles(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	opts := Options{
		Seeds:   []int64{1},
		SimTime: 30 * time.Second,
		Workers: 2,
		Budget:  sim.Budget{MaxEvents: 10},
	}
	tab, err := testSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(tab.X) * len(tab.Protocols)
	if tab.Stats.Quarantined != want {
		t.Fatalf("stats = %+v, want all %d points quarantined", tab.Stats, want)
	}
	if tab.Failed == nil {
		t.Fatal("Failed map empty despite quarantines")
	}
	for _, p := range tab.Protocols {
		for i, y := range tab.Y[p] {
			if !math.IsNaN(y) {
				t.Errorf("%s Y[%d] = %v, want NaN for quarantined cell", p, i, y)
			}
		}
	}
}
