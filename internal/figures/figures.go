// Package figures regenerates every table and figure of the paper's
// evaluation section (§5). Each Figure function runs the corresponding
// parameter sweep across all four protocols and returns a Table whose
// rows mirror the published plot's series.
package figures

import (
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/metrics"
)

// Options control sweep fidelity.
type Options struct {
	// Seeds are averaged per data point (default {1, 2, 3}).
	Seeds []int64
	// SimTime overrides the per-run simulated duration (default: the
	// paper's 300 s).
	SimTime time.Duration
	// Progress, if non-nil, receives one line per data point. Points run
	// concurrently, so lines are emitted during final table assembly, in
	// deterministic x-ascending, protocol-column order.
	Progress func(string)
	// Workers bounds how many (x-value × protocol) points of one sweep
	// are in flight at once (0 = GOMAXPROCS, 1 = serial). Results are
	// identical for any value: each point owns an independent engine and
	// the table is assembled in a fixed order after all points finish.
	Workers int
}

func (o *Options) applyDefaults() {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if o.SimTime <= 0 {
		o.SimTime = 300 * time.Second
	}
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// Table is one reproduced figure: X values against one Y series per
// protocol.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Protocols column order.
	Protocols []experiment.Protocol
	// X values, ascending.
	X []float64
	// Y[protocol][i] corresponds to X[i].
	Y map[experiment.Protocol][]float64
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, p := range t.Protocols {
		fmt.Fprintf(&b, "%12s", p.DisplayName())
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%-12.3g", x)
		for _, p := range t.Protocols {
			fmt.Fprintf(&b, "%12.4f", t.Y[p][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.ReplaceAll(t.XLabel, ",", " "))
	for _, p := range t.Protocols {
		b.WriteByte(',')
		b.WriteString(p.DisplayName())
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%g", x)
		for _, p := range t.Protocols {
			fmt.Fprintf(&b, ",%g", t.Y[p][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pointFunc configures one run for an x value; reduce maps its summary
// (plus the same-x S-FAMA baseline summary, for ratio figures) to y.
type pointFunc func(p experiment.Protocol, x float64) experiment.Config

type reduceFunc func(s, baseline metrics.Summary) float64

func sweep(id, title, xlabel, ylabel string, xs []float64, opts Options,
	point pointFunc, reduce reduceFunc) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:        id,
		Title:     title,
		XLabel:    xlabel,
		YLabel:    ylabel,
		Protocols: append([]experiment.Protocol(nil), experiment.Protocols...),
		X:         append([]float64(nil), xs...),
		Y:         make(map[experiment.Protocol][]float64),
	}
	sort.Float64s(t.X)

	// Fan every (x-value × protocol) point out to a bounded worker pool.
	// Each point runs with its own engines, so results are independent of
	// completion order; determinism comes from assembling the table (and
	// computing the S-FAMA-relative reductions) afterwards in fixed
	// x-ascending, protocol-column order.
	np := len(t.Protocols)
	sums := make([]metrics.Summary, len(t.X)*np)
	errs := make([]error, len(t.X)*np)
	idx := func(xi, pi int) int { return xi*np + pi }
	sem := make(chan struct{}, opts.workers())
	var wg sync.WaitGroup
	for xi := range t.X {
		for pi := range t.Protocols {
			wg.Add(1)
			go func(xi, pi int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				cfg := point(t.Protocols[pi], t.X[xi])
				cfg.SimTime = opts.SimTime
				sums[idx(xi, pi)], errs[idx(xi, pi)] = experiment.RunMean(cfg, opts.Seeds)
			}(xi, pi)
		}
	}
	wg.Wait()

	spi := 0
	for pi, p := range t.Protocols {
		if p == experiment.ProtocolSFAMA {
			spi = pi
		}
	}
	for xi, x := range t.X {
		// The S-FAMA baseline anchors the ratio metrics at this x; its
		// error is reported first so failure messages do not depend on
		// which worker lost the race.
		if err := errs[idx(xi, spi)]; err != nil {
			return nil, fmt.Errorf("figures %s: baseline at %v: %w", id, x, err)
		}
		base := sums[idx(xi, spi)]
		for pi, p := range t.Protocols {
			if err := errs[idx(xi, pi)]; err != nil {
				return nil, fmt.Errorf("figures %s: %s at %v: %w", id, p, x, err)
			}
			t.Y[p] = append(t.Y[p], reduce(sums[idx(xi, pi)], base))
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("%s: %s x=%g y=%.4f", id, p.DisplayName(), x, t.Y[p][len(t.Y[p])-1]))
			}
		}
	}
	return t, nil
}

// Figure6 reproduces "Throughput at different offer loads": offered
// load 0.1–1.0 kbps, 60 sensors.
func Figure6(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	return sweep("Figure 6", "Throughput at different offered loads",
		"load(kbps)", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps })
}

// Figure7 reproduces "Throughput at different network sensor
// densities": 60–140 sensors at 0.8 kbps offered load.
func Figure7(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120, 140}
	return sweep("Figure 7", "Throughput at different sensor densities",
		"nodes", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.8
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps })
}

// Figure8 reproduces "Relationship between execution time and offer
// load": mean time from generation to successful delivery.
func Figure8(opts Options) (*Table, error) {
	xs := []float64{0.01, 0.2, 0.4, 0.6, 0.8, 1.0}
	return sweep("Figure 8", "Execution time vs offered load",
		"load(kbps)", "execution time(s)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ExecutionTime.Seconds() })
}

// Figure9a reproduces "Power consumption according to offered load"
// among 80 sensors.
func Figure9a(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.4, 0.6, 0.8}
	return sweep("Figure 9a", "Power consumption vs offered load (80 sensors)",
		"load(kbps)", "power(mW)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = 80
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.MeanPowerMW })
}

// Figure9b reproduces "Power consumption according to the number of
// sensors" at 0.3 kbps offered load.
func Figure9b(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120}
	return sweep("Figure 9b", "Power consumption vs sensor count (0.3 kbps)",
		"nodes", "power(mW)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.3
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.MeanPowerMW })
}

// Figure10a reproduces "Overhead for the number of sensors" at 0.5 kbps
// (ratio to S-FAMA = 1).
func Figure10a(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120, 140}
	return sweep("Figure 10a", "Overhead ratio vs sensor count (0.5 kbps)",
		"nodes", "overhead(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.5
			return cfg
		},
		metrics.OverheadRatio)
}

// Figure10b reproduces "Overhead ratio according to the offered load
// among 200 sensors".
func Figure10b(opts Options) (*Table, error) {
	xs := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	return sweep("Figure 10b", "Overhead ratio vs offered load (200 sensors)",
		"load(kbps)", "overhead(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = 200
			cfg.OfferedLoadKbps = x
			return cfg
		},
		metrics.OverheadRatio)
}

// Figure11 reproduces "Efficiency indexes for different offered loads"
// (Equation (4), S-FAMA = 1).
func Figure11(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	return sweep("Figure 11", "Efficiency index vs offered load",
		"load(kbps)", "efficiency(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		metrics.EfficiencyIndex)
}

// FigurePacketSize is an extension experiment beyond the paper's
// plotted figures, quantifying its §2/§6 claim that large data packets
// suit UASNs ("the energy consumption of proposed protocol is less
// than that of existing protocols ... when the data packets are
// large"): throughput across Table 2's 1024–4096-bit payload range at
// fixed 0.6 kbps offered load.
func FigurePacketSize(opts Options) (*Table, error) {
	xs := []float64{1024, 1536, 2048, 3072, 4096}
	return sweep("Ext PacketSize", "Throughput vs data packet size (0.6 kbps)",
		"data(bits)", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.DataBits = int(x)
			cfg.OfferedLoadKbps = 0.6
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps })
}

// Table2 renders the paper's simulation-parameter table from the
// default configuration.
func Table2() string {
	cfg := experiment.Default(experiment.ProtocolEWMAC)
	var b strings.Builder
	b.WriteString("Table 2 — Simulation parameters\n")
	rows := [][2]string{
		{"Number of sensors", fmt.Sprintf("%d (+%d sinks)", cfg.Nodes, cfg.Sinks)},
		{"Deployment region", fmt.Sprintf("%.0f m cube", cfg.RegionSide)},
		{"Bandwidth", "12 kbps"},
		{"Communication range", "1.5 km"},
		{"Acoustic speed", "1.5 km/s"},
		{"Simulation time", cfg.SimTime.String()},
		{"Control packet size", "64 bits"},
		{"Data packet size", fmt.Sprintf("%d bits (1024–4096 supported)", cfg.DataBits)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %s\n", r[0], r[1])
	}
	return b.String()
}

// All maps figure IDs to their generators, in paper order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"fig8", Figure8},
		{"fig9a", Figure9a},
		{"fig9b", Figure9b},
		{"fig10a", Figure10a},
		{"fig10b", Figure10b},
		{"fig11", Figure11},
		{"ext-pktsize", FigurePacketSize},
	}
}
