// Package figures regenerates every table and figure of the paper's
// evaluation section (§5). Each Figure function runs the corresponding
// parameter sweep across all four protocols and returns a Table whose
// rows mirror the published plot's series.
package figures

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/fault"
	"ewmac/internal/metrics"
	"ewmac/internal/obs"
	"ewmac/internal/runner"
	"ewmac/internal/sim"
)

// Options control sweep fidelity and supervision.
type Options struct {
	// Seeds are averaged per data point (default {1, 2, 3}).
	Seeds []int64
	// SimTime overrides the per-run simulated duration (default: the
	// paper's 300 s).
	SimTime time.Duration
	// Progress, if non-nil, receives one line per data point. Points run
	// concurrently, so lines are emitted during final table assembly, in
	// deterministic x-ascending, protocol-column order. Supervision
	// events (retries, quarantines, resume hits) are also forwarded as
	// they happen, so those lines are not order-deterministic.
	Progress func(string)
	// Workers bounds how many (x-value × protocol) points of one sweep
	// are in flight at once (0 = GOMAXPROCS, 1 = serial). Results are
	// identical for any value: each point owns an independent engine and
	// the table is assembled in a fixed order after all points finish.
	Workers int
	// Manifest, when non-nil, checkpoints every finished point and
	// serves already-completed points on resume. One manifest may span
	// several figures: points are keyed by figure ID.
	Manifest *runner.Manifest
	// Budget bounds each point's run (zero = unbounded, livelock
	// watchdog still armed); Retries/Backoff govern re-execution of
	// budget-aborted points with an exponentially loosened budget.
	Budget  sim.Budget
	Retries int
	Backoff time.Duration
	// Live, when non-nil, receives every run's event stream plus the
	// sweep's point-completion progress, feeding the -http
	// introspection server. Live locks a mutex per event, so attach it
	// only when a server is actually wanted.
	Live *obs.Live
	// Faults applies one fault-injection scenario to every sweep point,
	// regenerating the paper's figures under adverse conditions; nil
	// keeps the fault-free baseline. The scenario is part of a point's
	// identity, so manifests built with different scenarios must use
	// different fingerprints (cmd/figures folds the scenario into its
	// fingerprint).
	Faults *fault.Scenario
}

func (o *Options) applyDefaults() {
	if len(o.Seeds) == 0 {
		o.Seeds = []int64{1, 2, 3}
	}
	if o.SimTime <= 0 {
		o.SimTime = 300 * time.Second
	}
}

// Table is one reproduced figure: X values against one Y series per
// protocol.
type Table struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	// Protocols column order.
	Protocols []experiment.Protocol
	// X values, ascending.
	X []float64
	// Y[protocol][i] corresponds to X[i]. A quarantined point is NaN.
	Y map[experiment.Protocol][]float64
	// Failed lists quarantined cells per protocol ("x=…: reason"); nil
	// when every point completed.
	Failed map[experiment.Protocol][]string
	// Stats summarize the supervised sweep that produced the table.
	Stats runner.Stats
}

// fail records a quarantined cell.
func (t *Table) fail(p experiment.Protocol, msg string) {
	if t.Failed == nil {
		t.Failed = make(map[experiment.Protocol][]string)
	}
	t.Failed[p] = append(t.Failed[p], msg)
}

// Render formats the table as aligned ASCII.
func (t *Table) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s — %s\n", t.ID, t.Title)
	fmt.Fprintf(&b, "%-12s", t.XLabel)
	for _, p := range t.Protocols {
		fmt.Fprintf(&b, "%12s", p.DisplayName())
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%-12.3g", x)
		for _, p := range t.Protocols {
			fmt.Fprintf(&b, "%12.4f", t.Y[p][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV formats the table as comma-separated values with a header row.
func (t *Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.ReplaceAll(t.XLabel, ",", " "))
	for _, p := range t.Protocols {
		b.WriteByte(',')
		b.WriteString(p.DisplayName())
	}
	b.WriteByte('\n')
	for i, x := range t.X {
		fmt.Fprintf(&b, "%g", x)
		for _, p := range t.Protocols {
			fmt.Fprintf(&b, ",%g", t.Y[p][i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// pointFunc configures one run for an x value; reduce maps its summary
// (plus the same-x S-FAMA baseline summary, for ratio figures) to y.
type pointFunc func(p experiment.Protocol, x float64) experiment.Config

type reduceFunc func(s, baseline metrics.Summary) float64

// needBaseline marks sweeps whose reduce divides by the same-x S-FAMA
// summary: when the baseline point is quarantined, the whole x-row is.
func sweep(id, title, xlabel, ylabel string, xs []float64, opts Options,
	point pointFunc, reduce reduceFunc, needBaseline bool) (*Table, error) {
	opts.applyDefaults()
	t := &Table{
		ID:        id,
		Title:     title,
		XLabel:    xlabel,
		YLabel:    ylabel,
		Protocols: append([]experiment.Protocol(nil), experiment.Protocols...),
		X:         append([]float64(nil), xs...),
		Y:         make(map[experiment.Protocol][]float64),
	}
	sort.Float64s(t.X)

	// Every (x-value × protocol) point goes through the runner's
	// supervised pool: a panicking or budget-exhausted point is
	// quarantined as a NaN cell instead of aborting the figure, finished
	// points checkpoint to the manifest, and resumed points are served
	// from it. Each point runs with its own engines, so results are
	// independent of completion order; determinism comes from assembling
	// the table (and computing the S-FAMA-relative reductions)
	// afterwards in fixed x-ascending, protocol-column order.
	np := len(t.Protocols)
	keys := make([]runner.Key, 0, len(t.X)*np)
	for _, x := range t.X {
		for _, p := range t.Protocols {
			keys = append(keys, runner.Key{Sweep: id, Protocol: string(p), X: x})
		}
	}
	idx := func(xi, pi int) int { return xi*np + pi }
	pf := func(k runner.Key, b sim.Budget) (metrics.Summary, error) {
		cfg := point(experiment.Protocol(k.Protocol), k.X)
		cfg.SimTime = opts.SimTime
		cfg.Budget = b
		cfg.Faults = opts.Faults
		if opts.Live != nil {
			if cfg.Observe == nil {
				cfg.Observe = &experiment.Observe{}
			}
			cfg.Observe.Recorder = obs.Multi(cfg.Observe.Recorder, opts.Live)
		}
		return experiment.RunMean(cfg, opts.Seeds)
	}
	ropts := runner.Options{
		Workers:  opts.Workers,
		Manifest: opts.Manifest,
		Budget:   opts.Budget,
		Retries:  opts.Retries,
		Backoff:  opts.Backoff,
		OnEvent:  opts.Progress,
	}
	if opts.Live != nil {
		ropts.OnPoint = func(done, total int) { opts.Live.Progress(done, total, id) }
	}
	recs, stats, err := runner.Sweep(keys, pf, ropts)
	if err != nil {
		return nil, fmt.Errorf("figures %s: %w", id, err)
	}
	t.Stats = stats

	spi := 0
	for pi, p := range t.Protocols {
		if p == experiment.ProtocolSFAMA {
			spi = pi
		}
	}
	for xi, x := range t.X {
		baseRec := recs[idx(xi, spi)]
		var base metrics.Summary
		if baseRec.Status == runner.StatusDone {
			base = *baseRec.Summary
		}
		for pi, p := range t.Protocols {
			r := recs[idx(xi, pi)]
			var y float64
			switch {
			case r.Status != runner.StatusDone:
				y = math.NaN()
				t.fail(p, fmt.Sprintf("x=%g: %s", x, r.Error))
			case needBaseline && baseRec.Status != runner.StatusDone:
				y = math.NaN()
				t.fail(p, fmt.Sprintf("x=%g: S-FAMA baseline quarantined: %s", x, baseRec.Error))
			default:
				y = reduce(*r.Summary, base)
			}
			t.Y[p] = append(t.Y[p], y)
			if opts.Progress != nil {
				opts.Progress(fmt.Sprintf("%s: %s x=%g y=%.4f", id, p.DisplayName(), x, y))
			}
		}
	}
	return t, nil
}

// Figure6 reproduces "Throughput at different offer loads": offered
// load 0.1–1.0 kbps, 60 sensors.
func Figure6(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	return sweep("Figure 6", "Throughput at different offered loads",
		"load(kbps)", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps }, false)
}

// Figure7 reproduces "Throughput at different network sensor
// densities": 60–140 sensors at 0.8 kbps offered load.
func Figure7(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120, 140}
	return sweep("Figure 7", "Throughput at different sensor densities",
		"nodes", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.8
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps }, false)
}

// Figure8 reproduces "Relationship between execution time and offer
// load": mean time from generation to successful delivery.
func Figure8(opts Options) (*Table, error) {
	xs := []float64{0.01, 0.2, 0.4, 0.6, 0.8, 1.0}
	return sweep("Figure 8", "Execution time vs offered load",
		"load(kbps)", "execution time(s)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ExecutionTime.Seconds() }, false)
}

// Figure9a reproduces "Power consumption according to offered load"
// among 80 sensors.
func Figure9a(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.4, 0.6, 0.8}
	return sweep("Figure 9a", "Power consumption vs offered load (80 sensors)",
		"load(kbps)", "power(mW)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = 80
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.MeanPowerMW }, false)
}

// Figure9b reproduces "Power consumption according to the number of
// sensors" at 0.3 kbps offered load.
func Figure9b(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120}
	return sweep("Figure 9b", "Power consumption vs sensor count (0.3 kbps)",
		"nodes", "power(mW)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.3
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.MeanPowerMW }, false)
}

// Figure10a reproduces "Overhead for the number of sensors" at 0.5 kbps
// (ratio to S-FAMA = 1).
func Figure10a(opts Options) (*Table, error) {
	xs := []float64{60, 80, 100, 120, 140}
	return sweep("Figure 10a", "Overhead ratio vs sensor count (0.5 kbps)",
		"nodes", "overhead(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = int(x)
			cfg.OfferedLoadKbps = 0.5
			return cfg
		},
		metrics.OverheadRatio, true)
}

// Figure10b reproduces "Overhead ratio according to the offered load
// among 200 sensors".
func Figure10b(opts Options) (*Table, error) {
	xs := []float64{0.4, 0.5, 0.6, 0.7, 0.8}
	return sweep("Figure 10b", "Overhead ratio vs offered load (200 sensors)",
		"load(kbps)", "overhead(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = 200
			cfg.OfferedLoadKbps = x
			return cfg
		},
		metrics.OverheadRatio, true)
}

// Figure11 reproduces "Efficiency indexes for different offered loads"
// (Equation (4), S-FAMA = 1).
func Figure11(opts Options) (*Table, error) {
	xs := []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
	return sweep("Figure 11", "Efficiency index vs offered load",
		"load(kbps)", "efficiency(×S-FAMA)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		metrics.EfficiencyIndex, true)
}

// FigurePacketSize is an extension experiment beyond the paper's
// plotted figures, quantifying its §2/§6 claim that large data packets
// suit UASNs ("the energy consumption of proposed protocol is less
// than that of existing protocols ... when the data packets are
// large"): throughput across Table 2's 1024–4096-bit payload range at
// fixed 0.6 kbps offered load.
func FigurePacketSize(opts Options) (*Table, error) {
	xs := []float64{1024, 1536, 2048, 3072, 4096}
	return sweep("Ext PacketSize", "Throughput vs data packet size (0.6 kbps)",
		"data(bits)", "throughput(kbps)", xs, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.DataBits = int(x)
			cfg.OfferedLoadKbps = 0.6
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps }, false)
}

// Table2 renders the paper's simulation-parameter table from the
// default configuration.
func Table2() string {
	cfg := experiment.Default(experiment.ProtocolEWMAC)
	var b strings.Builder
	b.WriteString("Table 2 — Simulation parameters\n")
	rows := [][2]string{
		{"Number of sensors", fmt.Sprintf("%d (+%d sinks)", cfg.Nodes, cfg.Sinks)},
		{"Deployment region", fmt.Sprintf("%.0f m cube", cfg.RegionSide)},
		{"Bandwidth", "12 kbps"},
		{"Communication range", "1.5 km"},
		{"Acoustic speed", "1.5 km/s"},
		{"Simulation time", cfg.SimTime.String()},
		{"Control packet size", "64 bits"},
		{"Data packet size", fmt.Sprintf("%d bits (1024–4096 supported)", cfg.DataBits)},
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "  %-24s %s\n", r[0], r[1])
	}
	return b.String()
}

// All maps figure IDs to their generators, in paper order.
func All() []struct {
	ID  string
	Run func(Options) (*Table, error)
} {
	return []struct {
		ID  string
		Run func(Options) (*Table, error)
	}{
		{"fig6", Figure6},
		{"fig7", Figure7},
		{"fig8", Figure8},
		{"fig9a", Figure9a},
		{"fig9b", Figure9b},
		{"fig10a", Figure10a},
		{"fig10b", Figure10b},
		{"fig11", Figure11},
		{"ext-pktsize", FigurePacketSize},
	}
}
