package figures

import (
	"reflect"
	"runtime"
	"testing"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/metrics"
)

// testSweep is a tiny two-point sweep with a baseline-relative
// reduction, so the test covers both raw and ratio assembly paths.
func testSweep(opts Options) (*Table, error) {
	return sweep("Figure T", "parallel equivalence probe", "load(kbps)", "ratio", []float64{0.3, 0.6}, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.Nodes = 16
			cfg.Sinks = 2
			cfg.OfferedLoadKbps = x
			return cfg
		},
		metrics.OverheadRatio, true)
}

// A sweep must produce the identical table whether its points run one
// at a time on one CPU or fanned out across many — per-run seeds and
// the assembly order, not goroutine scheduling, define the result.
func TestSweepParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	opts := Options{Seeds: []int64{1, 2}, SimTime: 40 * time.Second}

	prev := runtime.GOMAXPROCS(1)
	serialOpts := opts
	serialOpts.Workers = 1
	serial, err := testSweep(serialOpts)
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}

	runtime.GOMAXPROCS(4)
	parOpts := opts
	parOpts.Workers = 4
	parallel, perr := testSweep(parOpts)
	runtime.GOMAXPROCS(prev)
	if perr != nil {
		t.Fatal(perr)
	}

	if !reflect.DeepEqual(serial, parallel) {
		t.Errorf("serial and parallel sweeps diverged:\nserial:\n%s\nparallel:\n%s",
			serial.Render(), parallel.Render())
	}
}

// Progress lines must arrive in deterministic order even when points
// complete out of order.
func TestSweepProgressOrderDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var lines []string
	opts := Options{
		Seeds:    []int64{1},
		SimTime:  30 * time.Second,
		Workers:  4,
		Progress: func(s string) { lines = append(lines, s) },
	}
	tab, err := testSweep(opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(tab.X) * len(tab.Protocols)
	if len(lines) != want {
		t.Fatalf("got %d progress lines, want %d", len(lines), want)
	}
	// x-major, protocol-column-minor order.
	i := 0
	for _, x := range tab.X {
		for _, p := range tab.Protocols {
			prefix := "Figure T: " + p.DisplayName()
			if got := lines[i]; len(got) < len(prefix) || got[:len(prefix)] != prefix {
				t.Fatalf("line %d = %q, want prefix %q (x=%g)", i, got, prefix, x)
			}
			i++
		}
	}
}
