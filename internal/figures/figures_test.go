package figures

import (
	"strings"
	"testing"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/metrics"
)

func quickOpts() Options {
	return Options{Seeds: []int64{1}, SimTime: 60 * time.Second}
}

func TestSweepMachinery(t *testing.T) {
	var progress []string
	opts := quickOpts()
	opts.Progress = func(s string) { progress = append(progress, s) }
	tab, err := sweep("Figure X", "test sweep", "load(kbps)", "kbps",
		[]float64{0.3, 0.2}, opts,
		func(p experiment.Protocol, x float64) experiment.Config {
			cfg := experiment.Default(p)
			cfg.OfferedLoadKbps = x
			return cfg
		},
		func(s, _ metrics.Summary) float64 { return s.ThroughputKbps }, false)
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.X) != 2 || tab.X[0] != 0.2 || tab.X[1] != 0.3 {
		t.Fatalf("X not sorted: %v", tab.X)
	}
	for _, p := range tab.Protocols {
		ys := tab.Y[p]
		if len(ys) != 2 {
			t.Fatalf("%s series has %d points", p, len(ys))
		}
		for _, y := range ys {
			if y <= 0 {
				t.Errorf("%s produced non-positive throughput %v", p, y)
			}
		}
	}
	if len(progress) != 2*len(tab.Protocols) {
		t.Errorf("progress lines = %d, want %d", len(progress), 2*len(tab.Protocols))
	}
}

func TestRenderAndCSV(t *testing.T) {
	tab := &Table{
		ID: "Figure 6", Title: "Throughput", XLabel: "load(kbps)", YLabel: "kbps",
		Protocols: []experiment.Protocol{experiment.ProtocolSFAMA, experiment.ProtocolEWMAC},
		X:         []float64{0.1, 0.2},
		Y: map[experiment.Protocol][]float64{
			experiment.ProtocolSFAMA: {0.10, 0.15},
			experiment.ProtocolEWMAC: {0.11, 0.21},
		},
	}
	out := tab.Render()
	for _, want := range []string{"Figure 6", "S-FAMA", "EW-MAC", "0.2100"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
	csv := tab.CSV()
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if len(lines) != 3 {
		t.Fatalf("CSV has %d lines", len(lines))
	}
	if lines[0] != "load(kbps),S-FAMA,EW-MAC" {
		t.Errorf("CSV header = %q", lines[0])
	}
	if lines[2] != "0.2,0.15,0.21" {
		t.Errorf("CSV row = %q", lines[2])
	}
}

func TestTable2MentionsParameters(t *testing.T) {
	out := Table2()
	for _, want := range []string{"60", "12 kbps", "1.5 km", "64 bits", "2048"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table2 missing %q", want)
		}
	}
}

func TestAllListsEveryFigure(t *testing.T) {
	ids := map[string]bool{}
	for _, f := range All() {
		ids[f.ID] = true
		if f.Run == nil {
			t.Errorf("%s has no runner", f.ID)
		}
	}
	for _, want := range []string{"fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "fig11"} {
		if !ids[want] {
			t.Errorf("All() missing %s", want)
		}
	}
}

func TestFigure6QuickShape(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep is seconds-long")
	}
	tab, err := Figure6(quickOpts())
	if err != nil {
		t.Fatal(err)
	}
	// At the highest load EW-MAC must lead and S-FAMA trail — the
	// paper's headline.
	last := len(tab.X) - 1
	ew := tab.Y[experiment.ProtocolEWMAC][last]
	sf := tab.Y[experiment.ProtocolSFAMA][last]
	if ew <= sf {
		t.Errorf("EW-MAC %v not above S-FAMA %v at max load", ew, sf)
	}
	// Ratio figures use the S-FAMA baseline: spot-check Figure 11's
	// invariant that S-FAMA is exactly 1 everywhere.
	f11, err := Figure11(Options{Seeds: []int64{1}, SimTime: 45 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range f11.Y[experiment.ProtocolSFAMA] {
		if v != 1 {
			t.Errorf("S-FAMA efficiency index at %v = %v, want 1", f11.X[i], v)
		}
	}
}
