package energy

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/sim"
)

func almost(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeterIntegratesStates(t *testing.T) {
	p := Profile{TxW: 2, RxW: 1, IdleW: 0.1, SleepW: 0.01}
	m := NewMeter(p, sim.Epoch)

	mustSet := func(at time.Duration, s State) {
		t.Helper()
		if err := m.SetState(sim.At(at), s); err != nil {
			t.Fatal(err)
		}
	}
	mustSet(10*time.Second, StateTx)   // 10 s idle
	mustSet(12*time.Second, StateRx)   // 2 s tx
	mustSet(15*time.Second, StateIdle) // 3 s rx
	mustSet(20*time.Second, StateSleep)
	b, err := m.Snapshot(sim.At(30 * time.Second)) // 5 s idle + 10 s sleep
	if err != nil {
		t.Fatal(err)
	}
	if !almost(b.IdleJ, 0.1*15) {
		t.Errorf("IdleJ = %v, want 1.5", b.IdleJ)
	}
	if !almost(b.TxJ, 2*2) {
		t.Errorf("TxJ = %v, want 4", b.TxJ)
	}
	if !almost(b.RxJ, 1*3) {
		t.Errorf("RxJ = %v, want 3", b.RxJ)
	}
	if !almost(b.SleepJ, 0.01*10) {
		t.Errorf("SleepJ = %v, want 0.1", b.SleepJ)
	}
	if !almost(b.Total(), 1.5+4+3+0.1) {
		t.Errorf("Total = %v", b.Total())
	}
	mean, err := m.MeanPowerW(sim.At(30 * time.Second))
	if err != nil {
		t.Fatal(err)
	}
	if !almost(mean, b.Total()/30) {
		t.Errorf("MeanPowerW = %v", mean)
	}
}

func TestMeterRejectsBackwardTime(t *testing.T) {
	m := NewMeter(DefaultProfile(), sim.At(10*time.Second))
	if err := m.SetState(sim.At(5*time.Second), StateTx); err == nil {
		t.Error("backward SetState accepted")
	}
	if _, err := m.Snapshot(sim.At(time.Second)); err == nil {
		t.Error("backward Snapshot accepted")
	}
}

func TestMeanPowerAtEpoch(t *testing.T) {
	m := NewMeter(DefaultProfile(), sim.Epoch)
	mean, err := m.MeanPowerW(sim.Epoch)
	if err != nil || mean != 0 {
		t.Errorf("MeanPowerW at epoch = %v, %v", mean, err)
	}
}

func TestRepeatedSnapshotIdempotent(t *testing.T) {
	m := NewMeter(DefaultProfile(), sim.Epoch)
	at := sim.At(7 * time.Second)
	a, _ := m.Snapshot(at)
	b, _ := m.Snapshot(at)
	if a != b {
		t.Errorf("same-instant snapshots differ: %v vs %v", a, b)
	}
}

func TestBreakdownAdd(t *testing.T) {
	a := Breakdown{IdleJ: 1, RxJ: 2, TxJ: 3, SleepJ: 4}
	b := Breakdown{IdleJ: 10, RxJ: 20, TxJ: 30, SleepJ: 40}
	got := a.Add(b)
	if got != (Breakdown{IdleJ: 11, RxJ: 22, TxJ: 33, SleepJ: 44}) {
		t.Errorf("Add = %+v", got)
	}
}

func TestProfileValidate(t *testing.T) {
	if err := DefaultProfile().Validate(); err != nil {
		t.Errorf("default profile invalid: %v", err)
	}
	if err := (Profile{TxW: -1}).Validate(); err == nil {
		t.Error("negative power accepted")
	}
}

func TestTxEnergy(t *testing.T) {
	p := Profile{TxW: 2}
	// 12000 bits at 12 kbps = 1 s of tx at 2 W = 2 J.
	if got := p.TxEnergyJ(12000, 12000); !almost(got, 2) {
		t.Errorf("TxEnergyJ = %v, want 2", got)
	}
	if p.TxEnergyJ(0, 12000) != 0 || p.TxEnergyJ(100, 0) != 0 {
		t.Error("degenerate TxEnergyJ should be 0")
	}
}

// Property: energy conservation — for any state schedule, the breakdown
// total equals power-weighted elapsed time, and each component is
// non-negative and non-decreasing.
func TestMeterConservationProperty(t *testing.T) {
	p := Profile{TxW: 2, RxW: 1, IdleW: 0.1, SleepW: 0.01}
	f := func(steps []uint8) bool {
		m := NewMeter(p, sim.Epoch)
		now := sim.Epoch
		var wantTotal float64
		prevTotal := 0.0
		for _, s := range steps {
			dt := time.Duration(s%100) * time.Millisecond
			state := State(s%4) + 1
			wantTotal += p.watts(m.State()) * dt.Seconds()
			now = now.Add(dt)
			if err := m.SetState(now, state); err != nil {
				return false
			}
			b, err := m.Snapshot(now)
			if err != nil {
				return false
			}
			if b.IdleJ < 0 || b.RxJ < 0 || b.TxJ < 0 || b.SleepJ < 0 {
				return false
			}
			if b.Total()+1e-12 < prevTotal {
				return false
			}
			prevTotal = b.Total()
		}
		b, err := m.Snapshot(now)
		if err != nil {
			return false
		}
		return math.Abs(b.Total()-wantTotal) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestStateString(t *testing.T) {
	if StateIdle.String() != "idle" || StateTx.String() != "tx" ||
		StateRx.String() != "rx" || StateSleep.String() != "sleep" {
		t.Error("State.String changed")
	}
}
