// Package energy meters per-node power consumption. The paper's §5.2
// compares protocols by the energy spent waiting (idle listening),
// transmitting, and receiving; the meter integrates time spent in each
// radio state against a power profile so those components can be
// reported separately.
package energy

import (
	"fmt"

	"ewmac/internal/sim"
)

// State is the radio state being metered.
type State uint8

// Radio states.
const (
	// StateIdle is powered-on listening with no signal present (the
	// paper's "waiting" energy).
	StateIdle State = iota + 1
	// StateRx is actively receiving a signal.
	StateRx
	// StateTx is transmitting.
	StateTx
	// StateSleep is a low-power state (unused by the paper's protocols
	// but supported for extensions).
	StateSleep
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateIdle:
		return "idle"
	case StateRx:
		return "rx"
	case StateTx:
		return "tx"
	case StateSleep:
		return "sleep"
	default:
		return fmt.Sprintf("State(%d)", uint8(s))
	}
}

// Profile is the power drawn in each state, in watts. Defaults follow a
// WHOI-micromodem-class acoustic modem.
type Profile struct {
	TxW    float64
	RxW    float64
	IdleW  float64
	SleepW float64
}

// DefaultProfile returns a typical acoustic-modem power profile.
func DefaultProfile() Profile {
	return Profile{TxW: 2.0, RxW: 0.75, IdleW: 0.08, SleepW: 0.001}
}

// Validate reports non-physical profiles.
func (p Profile) Validate() error {
	if p.TxW < 0 || p.RxW < 0 || p.IdleW < 0 || p.SleepW < 0 {
		return fmt.Errorf("energy: negative power in profile %+v", p)
	}
	return nil
}

func (p Profile) watts(s State) float64 {
	switch s {
	case StateTx:
		return p.TxW
	case StateRx:
		return p.RxW
	case StateSleep:
		return p.SleepW
	default:
		return p.IdleW
	}
}

// Breakdown is cumulative energy per state, in joules.
type Breakdown struct {
	IdleJ  float64
	RxJ    float64
	TxJ    float64
	SleepJ float64
}

// Total returns the summed energy in joules.
func (b Breakdown) Total() float64 { return b.IdleJ + b.RxJ + b.TxJ + b.SleepJ }

// Add returns the component-wise sum of two breakdowns.
func (b Breakdown) Add(o Breakdown) Breakdown {
	return Breakdown{
		IdleJ:  b.IdleJ + o.IdleJ,
		RxJ:    b.RxJ + o.RxJ,
		TxJ:    b.TxJ + o.TxJ,
		SleepJ: b.SleepJ + o.SleepJ,
	}
}

// Meter integrates one node's energy use over simulated time.
type Meter struct {
	profile Profile
	state   State
	since   sim.Time
	acc     Breakdown
}

// NewMeter returns a meter starting in StateIdle at the given instant.
func NewMeter(profile Profile, now sim.Time) *Meter {
	return &Meter{profile: profile, state: StateIdle, since: now}
}

// State reports the current radio state.
func (m *Meter) State() State { return m.state }

// SetState accrues energy for the interval spent in the old state and
// switches to s. now must not precede the previous update.
func (m *Meter) SetState(now sim.Time, s State) error {
	if err := m.settle(now); err != nil {
		return err
	}
	m.state = s
	return nil
}

func (m *Meter) settle(now sim.Time) error {
	if now < m.since {
		return fmt.Errorf("energy: time went backwards: %v < %v", now, m.since)
	}
	dt := now.Sub(m.since).Seconds()
	j := m.profile.watts(m.state) * dt
	switch m.state {
	case StateTx:
		m.acc.TxJ += j
	case StateRx:
		m.acc.RxJ += j
	case StateSleep:
		m.acc.SleepJ += j
	default:
		m.acc.IdleJ += j
	}
	m.since = now
	return nil
}

// Snapshot accrues up to now and returns the cumulative breakdown.
func (m *Meter) Snapshot(now sim.Time) (Breakdown, error) {
	if err := m.settle(now); err != nil {
		return Breakdown{}, err
	}
	return m.acc, nil
}

// TotalJoules accrues up to now and returns total energy.
func (m *Meter) TotalJoules(now sim.Time) (float64, error) {
	b, err := m.Snapshot(now)
	if err != nil {
		return 0, err
	}
	return b.Total(), nil
}

// MeanPowerW returns average power (watts) over [0, now].
func (m *Meter) MeanPowerW(now sim.Time) (float64, error) {
	if now <= 0 {
		return 0, nil
	}
	j, err := m.TotalJoules(now)
	if err != nil {
		return 0, err
	}
	return j / now.Seconds(), nil
}

// TxEnergyJ returns the energy cost of transmitting the given number of
// bits at the given rate under this profile — a closed-form helper used
// by analytical overhead accounting.
func (p Profile) TxEnergyJ(bits int, bitRate float64) float64 {
	if bitRate <= 0 || bits <= 0 {
		return 0
	}
	return p.TxW * float64(bits) / bitRate
}
