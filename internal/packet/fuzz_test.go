package packet

import (
	"bytes"
	"testing"
	"time"
)

// FuzzUnmarshalBinary asserts the wire decoder's contract on arbitrary
// input: malformed, truncated, or hostile frames must return an error —
// never panic, never over-allocate from a forged length field — and
// every accepted payload must survive a marshal/unmarshal round trip
// unchanged.
func FuzzUnmarshalBinary(f *testing.F) {
	seed := &Frame{
		Kind: KindCTS, Src: 3, Dst: 9, Seq: 41,
		Timestamp: 1500 * time.Millisecond, PairDelay: 320 * time.Millisecond,
		RP: 0.625, DataBits: 2048, GrantAt: 2 * time.Second,
		Origin: 3, GeneratedAt: time.Second,
		Neighbors: []NeighborInfo{{ID: 7, Delay: 90 * time.Millisecond}},
	}
	good, err := seed.MarshalBinary()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(good)
	f.Add(good[:len(good)-3]) // truncated neighbor entry
	f.Add(good[:2])           // magic only
	f.Add([]byte{})
	f.Add([]byte{0xEA, 0x57})              // valid magic, nothing else
	f.Add([]byte{0x00, 0x00, 0x01, 0x02})  // bad magic
	f.Add(bytes.Repeat([]byte{0xEA}, 128)) // plausible-looking garbage

	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		if err := fr.UnmarshalBinary(data); err != nil {
			return // rejected input is fine; panicking is not
		}
		// Accepted input must round-trip exactly.
		out, err := fr.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded frame does not re-encode: %v (frame %+v)", err, fr)
		}
		var fr2 Frame
		if err := fr2.UnmarshalBinary(out); err != nil {
			t.Fatalf("re-encoded frame does not decode: %v", err)
		}
		out2, err := fr2.MarshalBinary()
		if err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("round trip not stable:\n first %x\nsecond %x", out, out2)
		}
	})
}
