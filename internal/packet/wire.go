package packet

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"math"
	"time"
)

// Wire format. The simulator itself passes *Frame pointers around, but
// the encoder exists so frames can be logged to trace files and so the
// declared bit sizes stay honest: the test suite asserts that every
// frame's semantic content actually fits in Bits().

const wireMagic uint16 = 0xEA57

// MarshalBinary encodes the frame in a fixed big-endian layout.
func (f *Frame) MarshalBinary() ([]byte, error) {
	if err := f.Validate(); err != nil {
		return nil, fmt.Errorf("packet: marshal: %w", err)
	}
	if len(f.Neighbors) > math.MaxUint8 {
		return nil, fmt.Errorf("packet: marshal: %d neighbor entries exceed wire limit", len(f.Neighbors))
	}
	var buf bytes.Buffer
	w := func(v any) {
		// bytes.Buffer writes cannot fail.
		_ = binary.Write(&buf, binary.BigEndian, v)
	}
	w(wireMagic)
	w(uint8(f.Kind))
	w(uint16(f.Src))
	w(uint16(f.Dst))
	w(f.Seq)
	w(f.Timestamp.Microseconds())
	w(f.PairDelay.Microseconds())
	w(math.Float64bits(f.RP))
	w(int32(f.DataBits))
	w(f.GrantAt.Microseconds())
	w(uint16(f.Origin))
	w(f.GeneratedAt.Microseconds())
	w(uint8(len(f.Neighbors)))
	for _, nb := range f.Neighbors {
		w(uint16(nb.ID))
		w(nb.Delay.Microseconds())
	}
	return buf.Bytes(), nil
}

// UnmarshalBinary decodes a frame produced by MarshalBinary.
func (f *Frame) UnmarshalBinary(data []byte) error {
	buf := bytes.NewReader(data)
	r := func(v any) error { return binary.Read(buf, binary.BigEndian, v) }

	var magic uint16
	if err := r(&magic); err != nil {
		return fmt.Errorf("packet: unmarshal: %w", err)
	}
	if magic != wireMagic {
		return fmt.Errorf("packet: unmarshal: bad magic %#04x", magic)
	}
	var (
		kind                         uint8
		src, dst, origin             uint16
		seq                          uint32
		tsUS, pairUS, genUS, grantUS int64
		rpBits                       uint64
		dataBits                     int32
		nNbr                         uint8
	)
	for _, step := range []struct {
		name string
		dst  any
	}{
		{"kind", &kind}, {"src", &src}, {"dst", &dst}, {"seq", &seq},
		{"timestamp", &tsUS}, {"pairDelay", &pairUS}, {"rp", &rpBits},
		{"dataBits", &dataBits}, {"grantAt", &grantUS},
		{"origin", &origin}, {"generatedAt", &genUS},
		{"nbrCount", &nNbr},
	} {
		if err := r(step.dst); err != nil {
			return fmt.Errorf("packet: unmarshal %s: %w", step.name, err)
		}
	}
	nbrs := make([]NeighborInfo, 0, nNbr)
	for i := 0; i < int(nNbr); i++ {
		var id uint16
		var delayUS int64
		if err := r(&id); err != nil {
			return fmt.Errorf("packet: unmarshal neighbor %d id: %w", i, err)
		}
		if err := r(&delayUS); err != nil {
			return fmt.Errorf("packet: unmarshal neighbor %d delay: %w", i, err)
		}
		nbrs = append(nbrs, NeighborInfo{ID: NodeID(id), Delay: time.Duration(delayUS) * time.Microsecond})
	}
	if buf.Len() != 0 {
		return fmt.Errorf("packet: unmarshal: %d trailing bytes", buf.Len())
	}
	*f = Frame{
		Kind:        Kind(kind),
		Src:         NodeID(src),
		Dst:         NodeID(dst),
		Seq:         seq,
		Timestamp:   time.Duration(tsUS) * time.Microsecond,
		PairDelay:   time.Duration(pairUS) * time.Microsecond,
		RP:          math.Float64frombits(rpBits),
		DataBits:    int(dataBits),
		GrantAt:     time.Duration(grantUS) * time.Microsecond,
		Origin:      NodeID(origin),
		GeneratedAt: time.Duration(genUS) * time.Microsecond,
		Neighbors:   nbrs,
	}
	if len(nbrs) == 0 {
		f.Neighbors = nil
	}
	return f.Validate()
}
