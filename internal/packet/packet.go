// Package packet defines the frames exchanged by every MAC protocol in
// the simulator: the classic four-way handshake (RTS/CTS/Data/Ack), the
// EW-MAC extra-communication frames (EXR/EXC/EXData/EXAck), ROPA's
// appended-request frame (RTA), CS-MAC's stolen data frames, and the
// Hello/neighbor-maintenance frames used during initialization.
//
// Sizes are tracked in bits because the paper specifies them in bits
// (64-bit control packets, 1024–4096-bit data packets) and because
// overhead accounting (Figure 10) compares protocols by the extra bits
// their control traffic carries.
package packet

import (
	"fmt"
	"time"
)

// NodeID identifies a sensor. IDs are dense small integers assigned at
// deployment; the zero value is reserved as "nobody".
type NodeID uint16

// Nobody is the zero NodeID; it never names a real sensor.
const Nobody NodeID = 0

// Broadcast addresses every sensor in range.
const Broadcast NodeID = 0xFFFF

// String renders the ID for logs.
func (n NodeID) String() string {
	switch n {
	case Nobody:
		return "n∅"
	case Broadcast:
		return "n*"
	default:
		return fmt.Sprintf("n%d", uint16(n))
	}
}

// Kind enumerates frame types.
type Kind uint8

// Frame kinds. The EX* frames are EW-MAC's extra-communication frames;
// RTA is ROPA's appended request; StolenData is CS-MAC's
// direct-transmission data frame (distinguished from Data so metrics can
// attribute collisions caused by stealing).
const (
	KindHello Kind = iota + 1
	KindRTS
	KindCTS
	KindData
	KindAck
	KindEXR
	KindEXC
	KindEXData
	KindEXAck
	KindRTA
	KindStolenData
	KindNbrUpdate
	kindEnd // sentinel for validation
)

var kindNames = map[Kind]string{
	KindHello:      "Hello",
	KindRTS:        "RTS",
	KindCTS:        "CTS",
	KindData:       "Data",
	KindAck:        "Ack",
	KindEXR:        "EXR",
	KindEXC:        "EXC",
	KindEXData:     "EXData",
	KindEXAck:      "EXAck",
	KindRTA:        "RTA",
	KindStolenData: "StolenData",
	KindNbrUpdate:  "NbrUpdate",
}

// String implements fmt.Stringer.
func (k Kind) String() string {
	if s, ok := kindNames[k]; ok {
		return s
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Valid reports whether k names a defined frame kind.
func (k Kind) Valid() bool { return k >= KindHello && k < kindEnd }

// IsControl reports whether the frame carries no application payload.
func (k Kind) IsControl() bool {
	switch k {
	case KindData, KindEXData, KindStolenData:
		return false
	default:
		return true
	}
}

// IsData reports whether the frame carries application payload.
func (k Kind) IsData() bool { return !k.IsControl() }

// IsExtra reports whether the frame belongs to an opportunistic
// (extra/appended/stolen) exchange rather than a primary negotiated one.
func (k Kind) IsExtra() bool {
	switch k {
	case KindEXR, KindEXC, KindEXData, KindEXAck, KindRTA, KindStolenData:
		return true
	default:
		return false
	}
}

// NeighborInfo is one entry of piggybacked neighbor state: the
// advertised neighbor and the advertiser's measured propagation delay
// to it. EW-MAC piggybacks only the pair under negotiation (one-hop
// info); CS-MAC and ROPA piggyback larger excerpts (two-hop info),
// which is where their extra overhead in Figure 10 comes from.
type NeighborInfo struct {
	ID    NodeID
	Delay time.Duration
}

// NeighborInfoBits is the wire size of one NeighborInfo entry: a 16-bit
// ID plus a 24-bit delay in microseconds (covers > 16 s).
const NeighborInfoBits = 40

// Frame is one over-the-air transmission. A single struct (rather than
// a type per kind) keeps the PHY and channel generic; protocol logic
// switches on Kind and reads only the fields meaningful for that kind.
type Frame struct {
	// Kind is the frame type.
	Kind Kind
	// Src is the transmitting sensor.
	Src NodeID
	// Dst is the intended receiver (Broadcast for Hello/NbrUpdate).
	Dst NodeID
	// Seq disambiguates retransmissions of the same logical packet.
	Seq uint32
	// Timestamp is the sender's clock at the instant transmission
	// started; receivers subtract it from arrival time to maintain
	// pairwise propagation delays (paper §4.3).
	Timestamp time.Duration
	// PairDelay piggybacks the sender's measured propagation delay to
	// the frame's counterpart (e.g. a CTS carries τ between receiver
	// and the chosen sender), letting overhearers schedule around the
	// negotiated exchange (paper §4.2, Figure 4).
	PairDelay time.Duration
	// RP is the random priority carried by RTS frames; receivers pick
	// the contender with the highest value (paper §3.1).
	RP float64
	// DataBits announces (in RTS/CTS/EXR/EXC) or carries (in data
	// kinds) the payload length in bits.
	DataBits int
	// Neighbors is piggybacked neighbor state; its length contributes
	// to the frame's wire size.
	Neighbors []NeighborInfo
	// GrantAt is used by extra-communication grants (EXC): the absolute
	// simulation time at which the granted EXData should begin arriving
	// at the granter. The granter computes it from its own negotiated
	// schedule (Equations (5)/(6) of the paper); the requester derives
	// its send time by subtracting the pairwise propagation delay.
	GrantAt time.Duration
	// Origin is the sensor that generated the payload (for multi-hop
	// delivery accounting); meaningful on data kinds only.
	Origin NodeID
	// GeneratedAt is the simulation time the payload was created, used
	// for latency accounting; meaningful on data kinds only.
	GeneratedAt time.Duration

	// XID is simulator-side exchange-lineage metadata: every frame of
	// one handshake or extra exchange carries the same nonzero value, so
	// observability consumers can fold raw events into causal spans. It
	// is not part of the wire format (MarshalBinary skips it) and does
	// not contribute to Bits() — a real MAC would recover the lineage
	// from (src, dst, kind, seq), which the simulator shortcuts.
	XID uint64

	// shared marks a frame handed to multiple consumers (every receiver
	// of one broadcast). A shared frame is read-only by contract;
	// Mutable gives would-be writers a private deep copy.
	shared bool
}

// ControlBits is the base wire size of a control frame per the paper's
// Table 2 (64 bits), excluding piggybacked neighbor entries.
const ControlBits = 64

// DataHeaderBits is the MAC header carried by data frames.
const DataHeaderBits = 64

// Bits returns the frame's total wire size in bits.
func (f *Frame) Bits() int {
	n := len(f.Neighbors) * NeighborInfoBits
	if f.Kind.IsData() {
		return DataHeaderBits + f.DataBits + n
	}
	return ControlBits + n
}

// Duration returns the time to clock the frame out at the given bit
// rate.
func Duration(bits int, bitRate float64) time.Duration {
	if bitRate <= 0 || bits <= 0 {
		return 0
	}
	return time.Duration(float64(bits) / bitRate * float64(time.Second))
}

// TxDuration returns the frame's on-air duration at the given bit rate.
func (f *Frame) TxDuration(bitRate float64) time.Duration {
	return Duration(f.Bits(), bitRate)
}

// String renders a compact description for traces.
func (f *Frame) String() string {
	return fmt.Sprintf("%s %s→%s seq=%d bits=%d", f.Kind, f.Src, f.Dst, f.Seq, f.Bits())
}

// Clone returns a deep, exclusively-owned copy.
func (f *Frame) Clone() *Frame {
	c := *f
	c.shared = false
	if f.Neighbors != nil {
		c.Neighbors = make([]NeighborInfo, len(f.Neighbors))
		copy(c.Neighbors, f.Neighbors)
	}
	return &c
}

// Share returns a copy-on-write view of f: a shallow copy (the
// Neighbors backing array is shared) flagged read-only. The channel
// hands one shared view per broadcast to every receiver instead of
// deep-cloning per receiver; receivers by contract never mutate
// delivered frames, and any future writer must go through Mutable.
func (f *Frame) Share() *Frame {
	c := *f
	c.shared = true
	return &c
}

// Shared reports whether f is a read-only shared view.
func (f *Frame) Shared() bool { return f.shared }

// Mutable returns f itself when exclusively owned, or a private deep
// copy when f is shared — the write half of the copy-on-write contract.
func (f *Frame) Mutable() *Frame {
	if !f.shared {
		return f
	}
	return f.Clone()
}

// Validate reports structural problems that indicate protocol bugs.
func (f *Frame) Validate() error {
	switch {
	case !f.Kind.Valid():
		return fmt.Errorf("packet: invalid kind %d", f.Kind)
	case f.Src == Nobody:
		return fmt.Errorf("packet: %s has no source", f.Kind)
	case f.Src == Broadcast:
		return fmt.Errorf("packet: broadcast source on %s", f.Kind)
	case f.Dst == Nobody:
		return fmt.Errorf("packet: %s has no destination", f.Kind)
	case f.Kind.IsData() && f.DataBits <= 0:
		return fmt.Errorf("packet: data frame with %d payload bits", f.DataBits)
	case f.DataBits < 0:
		return fmt.Errorf("packet: negative payload %d", f.DataBits)
	}
	return nil
}
