package packet

import (
	"math"
	"testing"
	"testing/quick"
	"time"
)

func validFrame() *Frame {
	return &Frame{
		Kind:      KindRTS,
		Src:       3,
		Dst:       7,
		Seq:       42,
		Timestamp: 1500 * time.Millisecond,
		PairDelay: 333 * time.Millisecond,
		RP:        0.71,
		DataBits:  2048,
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		kind    Kind
		control bool
		extra   bool
	}{
		{KindHello, true, false},
		{KindRTS, true, false},
		{KindCTS, true, false},
		{KindData, false, false},
		{KindAck, true, false},
		{KindEXR, true, true},
		{KindEXC, true, true},
		{KindEXData, false, true},
		{KindEXAck, true, true},
		{KindRTA, true, true},
		{KindStolenData, false, true},
		{KindNbrUpdate, true, false},
	}
	for _, tc := range cases {
		t.Run(tc.kind.String(), func(t *testing.T) {
			if !tc.kind.Valid() {
				t.Fatalf("%v not valid", tc.kind)
			}
			if tc.kind.IsControl() != tc.control {
				t.Errorf("IsControl = %v, want %v", tc.kind.IsControl(), tc.control)
			}
			if tc.kind.IsData() == tc.control {
				t.Errorf("IsData inconsistent with IsControl")
			}
			if tc.kind.IsExtra() != tc.extra {
				t.Errorf("IsExtra = %v, want %v", tc.kind.IsExtra(), tc.extra)
			}
		})
	}
	if Kind(0).Valid() || kindEnd.Valid() {
		t.Error("out-of-range kinds reported valid")
	}
}

func TestBits(t *testing.T) {
	f := validFrame()
	if f.Bits() != ControlBits {
		t.Errorf("control frame bits = %d, want %d", f.Bits(), ControlBits)
	}
	f.Neighbors = []NeighborInfo{{ID: 1, Delay: time.Second}, {ID: 2, Delay: time.Second}}
	if f.Bits() != ControlBits+2*NeighborInfoBits {
		t.Errorf("piggybacked control bits = %d", f.Bits())
	}
	d := &Frame{Kind: KindData, Src: 1, Dst: 2, DataBits: 2048}
	if d.Bits() != DataHeaderBits+2048 {
		t.Errorf("data frame bits = %d, want %d", d.Bits(), DataHeaderBits+2048)
	}
}

func TestDuration(t *testing.T) {
	// 64 bits at 12 kbps = 5.333 ms.
	got := Duration(64, 12000)
	bits := 64.0
	want := time.Duration(bits / 12000 * float64(time.Second))
	if got != want {
		t.Errorf("Duration = %v, want %v", got, want)
	}
	if Duration(64, 0) != 0 || Duration(0, 12000) != 0 {
		t.Error("degenerate durations should be 0")
	}
	f := &Frame{Kind: KindData, Src: 1, Dst: 2, DataBits: 2048}
	if f.TxDuration(12000) != Duration(DataHeaderBits+2048, 12000) {
		t.Error("TxDuration disagrees with Duration(Bits())")
	}
}

func TestValidate(t *testing.T) {
	if err := validFrame().Validate(); err != nil {
		t.Fatalf("valid frame rejected: %v", err)
	}
	cases := []struct {
		name string
		edit func(*Frame)
	}{
		{"bad kind", func(f *Frame) { f.Kind = 0 }},
		{"no src", func(f *Frame) { f.Src = Nobody }},
		{"broadcast src", func(f *Frame) { f.Src = Broadcast }},
		{"no dst", func(f *Frame) { f.Dst = Nobody }},
		{"empty data", func(f *Frame) { f.Kind = KindData; f.DataBits = 0 }},
		{"negative payload", func(f *Frame) { f.DataBits = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := validFrame()
			tc.edit(f)
			if err := f.Validate(); err == nil {
				t.Error("Validate accepted bad frame")
			}
		})
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := validFrame()
	f.Neighbors = []NeighborInfo{{ID: 9, Delay: time.Second}}
	c := f.Clone()
	c.Neighbors[0].ID = 10
	c.Seq = 99
	if f.Neighbors[0].ID != 9 || f.Seq != 42 {
		t.Error("Clone shares state with original")
	}
}

func TestWireRoundTrip(t *testing.T) {
	f := validFrame()
	f.Origin = 11
	f.GeneratedAt = 12345 * time.Microsecond
	f.Neighbors = []NeighborInfo{{ID: 5, Delay: 800 * time.Millisecond}, {ID: 6, Delay: time.Second}}
	raw, err := f.MarshalBinary()
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	var g Frame
	if err := g.UnmarshalBinary(raw); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if g.Kind != f.Kind || g.Src != f.Src || g.Dst != f.Dst || g.Seq != f.Seq ||
		g.Timestamp != f.Timestamp || g.PairDelay != f.PairDelay ||
		g.RP != f.RP || g.DataBits != f.DataBits || g.Origin != f.Origin ||
		g.GeneratedAt != f.GeneratedAt || len(g.Neighbors) != 2 ||
		g.Neighbors[1] != f.Neighbors[1] {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", g, *f)
	}
}

func TestWireRejectsGarbage(t *testing.T) {
	var f Frame
	if err := f.UnmarshalBinary(nil); err == nil {
		t.Error("empty input accepted")
	}
	if err := f.UnmarshalBinary([]byte{0, 0, 0}); err == nil {
		t.Error("bad magic accepted")
	}
	good, err := validFrame().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := f.UnmarshalBinary(good[:len(good)-1]); err == nil {
		t.Error("truncated input accepted")
	}
	if err := f.UnmarshalBinary(append(good, 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestMarshalRejectsInvalid(t *testing.T) {
	f := validFrame()
	f.Src = Nobody
	if _, err := f.MarshalBinary(); err == nil {
		t.Error("marshal accepted invalid frame")
	}
}

// Property: any structurally valid frame survives a wire round trip
// bit-exactly (durations quantized to microseconds, as on the wire).
func TestWireRoundTripProperty(t *testing.T) {
	f := func(kindRaw uint8, src, dst uint16, seq uint32, tsUS, pdUS uint32, rp float64, bits uint16, nNbr uint8) bool {
		kind := Kind(kindRaw%uint8(kindEnd-1)) + 1
		fr := &Frame{
			Kind:      kind,
			Src:       NodeID(src%1000 + 1),
			Dst:       NodeID(dst%1000 + 1),
			Seq:       seq,
			Timestamp: time.Duration(tsUS) * time.Microsecond,
			PairDelay: time.Duration(pdUS) * time.Microsecond,
			RP:        rp,
			DataBits:  int(bits) + 1,
		}
		if math.IsNaN(rp) {
			fr.RP = 0.5
		}
		for i := 0; i < int(nNbr%5); i++ {
			fr.Neighbors = append(fr.Neighbors, NeighborInfo{
				ID:    NodeID(i + 1),
				Delay: time.Duration(i) * 100 * time.Millisecond,
			})
		}
		raw, err := fr.MarshalBinary()
		if err != nil {
			return false
		}
		var g Frame
		if err := g.UnmarshalBinary(raw); err != nil {
			return false
		}
		if g.Kind != fr.Kind || g.Src != fr.Src || g.Dst != fr.Dst ||
			g.Seq != fr.Seq || g.Timestamp != fr.Timestamp ||
			g.PairDelay != fr.PairDelay || g.RP != fr.RP ||
			g.DataBits != fr.DataBits || len(g.Neighbors) != len(fr.Neighbors) {
			return false
		}
		for i := range g.Neighbors {
			if g.Neighbors[i] != fr.Neighbors[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

func TestNodeIDString(t *testing.T) {
	if Nobody.String() != "n∅" || Broadcast.String() != "n*" || NodeID(7).String() != "n7" {
		t.Error("NodeID.String formatting changed")
	}
}
