package phy

import (
	"errors"
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// fakeMedium records broadcasts and optionally loops them back to a set
// of peer modems with fixed delay/level, standing in for the channel.
type fakeMedium struct {
	eng    *sim.Engine
	sent   []*packet.Frame
	peers  []*Modem
	delay  time.Duration
	level  float64
	usable bool
}

func (fm *fakeMedium) Broadcast(src packet.NodeID, f *packet.Frame, dur time.Duration) error {
	fm.sent = append(fm.sent, f)
	for _, p := range fm.peers {
		if p.ID() == src {
			continue
		}
		rx := p
		fc := f.Clone()
		fm.eng.ScheduleIn(fm.delay, sim.PriorityPHY, func() {
			rx.BeginArrival(fc, fm.level, dur, fm.usable)
		})
	}
	return nil
}

// recorder is a Listener capturing events.
type recorder struct {
	received []*packet.Frame
	lost     []LossReason
	txDone   []*packet.Frame
}

func (r *recorder) OnFrameReceived(f *packet.Frame)            { r.received = append(r.received, f) }
func (r *recorder) OnFrameLost(_ *packet.Frame, rs LossReason) { r.lost = append(r.lost, rs) }
func (r *recorder) OnTxDone(f *packet.Frame)                   { r.txDone = append(r.txDone, f) }

func newTestModem(t *testing.T, eng *sim.Engine, id packet.NodeID, med Medium) (*Modem, *recorder) {
	t.Helper()
	rec := &recorder{}
	m, err := NewModem(Config{
		ID:       id,
		Engine:   eng,
		Model:    acoustic.DefaultModel(),
		Medium:   med,
		Listener: rec,
		Energy:   energy.DefaultProfile(),
	})
	if err != nil {
		t.Fatalf("NewModem: %v", err)
	}
	return m, rec
}

func ctrlFrame(kind packet.Kind, src, dst packet.NodeID) *packet.Frame {
	return &packet.Frame{Kind: kind, Src: src, Dst: dst}
}

func TestNewModemValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	base := Config{ID: 1, Engine: eng, Model: acoustic.DefaultModel(), Medium: med, Energy: energy.DefaultProfile()}
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"nobody id", func(c *Config) { c.ID = packet.Nobody }},
		{"broadcast id", func(c *Config) { c.ID = packet.Broadcast }},
		{"nil engine", func(c *Config) { c.Engine = nil }},
		{"nil model", func(c *Config) { c.Model = nil }},
		{"nil medium", func(c *Config) { c.Medium = nil }},
		{"bad energy", func(c *Config) { c.Energy = energy.Profile{TxW: -1} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := base
			tc.edit(&cfg)
			if _, err := NewModem(cfg); err == nil {
				t.Error("NewModem accepted invalid config")
			}
		})
	}
	if _, err := NewModem(base); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestTransmitDeliversToPeer(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng, delay: 500 * time.Millisecond, level: 140, usable: true}
	a, _ := newTestModem(t, eng, 1, med)
	b, recB := newTestModem(t, eng, 2, med)
	med.peers = []*Modem{a, b}

	f := ctrlFrame(packet.KindRTS, 1, 2)
	if err := a.Transmit(f); err != nil {
		t.Fatal(err)
	}
	if !a.Transmitting() {
		t.Error("modem not in tx state during transmission")
	}
	eng.Run()
	if len(recB.received) != 1 || recB.received[0].Kind != packet.KindRTS {
		t.Fatalf("peer received %v, want one RTS", recB.received)
	}
	if a.Transmitting() {
		t.Error("modem stuck in tx state")
	}
	if got := a.Stats().FramesTx; got != 1 {
		t.Errorf("FramesTx = %d", got)
	}
	if got := b.Stats().FramesRx; got != 1 {
		t.Errorf("FramesRx = %d", got)
	}
}

func TestTransmitWhileBusy(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	a, rec := newTestModem(t, eng, 1, med)
	med.peers = []*Modem{a}
	if err := a.Transmit(ctrlFrame(packet.KindRTS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	err := a.Transmit(ctrlFrame(packet.KindCTS, 1, 2))
	if !errors.Is(err, ErrBusy) {
		t.Fatalf("second transmit error = %v, want ErrBusy", err)
	}
	eng.Run()
	if len(rec.txDone) != 1 {
		t.Errorf("txDone count = %d, want 1", len(rec.txDone))
	}
}

func TestTransmitInvalidFrame(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	a, _ := newTestModem(t, eng, 1, med)
	if err := a.Transmit(&packet.Frame{Kind: packet.KindRTS}); err == nil {
		t.Error("invalid frame accepted")
	}
}

func TestCollisionLosesBothFrames(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)

	// Two equal-power arrivals overlapping completely.
	f1 := ctrlFrame(packet.KindRTS, 1, 3)
	f2 := ctrlFrame(packet.KindRTS, 2, 3)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(f1, 130, dur, true)
		c.BeginArrival(f2, 130, dur, true)
	})
	eng.Run()
	if len(rec.received) != 0 {
		t.Fatalf("received %d frames from a symmetric collision, want 0", len(rec.received))
	}
	if len(rec.lost) != 2 || rec.lost[0] != LossCollision || rec.lost[1] != LossCollision {
		t.Fatalf("lost = %v, want two collisions", rec.lost)
	}
	if c.Stats().Collisions != 2 {
		t.Errorf("Collisions = %d", c.Stats().Collisions)
	}
}

func TestCaptureStrongFrameSurvivesWeakInterference(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 150, dur, true) // strong
		c.BeginArrival(ctrlFrame(packet.KindRTS, 2, 3), 120, dur, true) // 30 dB weaker
	})
	eng.Run()
	if len(rec.received) != 1 || rec.received[0].Src != 1 {
		t.Fatalf("received = %v, want only the strong frame", rec.received)
	}
	if len(rec.lost) != 1 || rec.lost[0] != LossCollision {
		t.Fatalf("lost = %v, want weak frame collided", rec.lost)
	}
}

func TestPartialOverlapStillCollides(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 130, dur, true)
	})
	// Second arrival starts halfway through the first.
	eng.ScheduleIn(50*time.Millisecond, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 2, 3), 130, dur, true)
	})
	eng.Run()
	if len(rec.received) != 0 {
		t.Fatalf("partial overlap decoded %d frames, want 0", len(rec.received))
	}
}

func TestNonOverlappingFramesBothReceived(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 130, dur, true)
	})
	eng.ScheduleIn(200*time.Millisecond, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 2, 3), 130, dur, true)
	})
	eng.Run()
	if len(rec.received) != 2 {
		t.Fatalf("received %d, want 2", len(rec.received))
	}
}

func TestHalfDuplexTxCorruptsArrival(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	dur := 200 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindData, 1, 3), 130, dur, true)
	})
	// Start transmitting while the arrival is in the air.
	eng.ScheduleIn(50*time.Millisecond, sim.PriorityMAC, func() {
		if err := c.Transmit(ctrlFrame(packet.KindRTS, 3, 2)); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
	eng.Run()
	if len(rec.received) != 0 {
		t.Fatal("frame decoded despite half-duplex self-blocking")
	}
	if len(rec.lost) != 1 || rec.lost[0] != LossTxDuringRx {
		t.Fatalf("lost = %v, want tx-during-rx", rec.lost)
	}
}

func TestArrivalDuringTxCorrupted(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	// Long transmission.
	big := &packet.Frame{Kind: packet.KindData, Src: 3, Dst: 2, DataBits: 4096}
	eng.ScheduleIn(0, sim.PriorityMAC, func() {
		if err := c.Transmit(big); err != nil {
			t.Errorf("transmit: %v", err)
		}
	})
	eng.ScheduleIn(10*time.Millisecond, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 130, 50*time.Millisecond, true)
	})
	eng.Run()
	if len(rec.received) != 0 {
		t.Fatal("arrival during own tx decoded")
	}
	if len(rec.lost) != 1 || rec.lost[0] != LossTxDuringRx {
		t.Fatalf("lost = %v, want tx-during-rx", rec.lost)
	}
}

func TestUnsyncableArrivalIsSilentInterference(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, rec := newTestModem(t, eng, 3, med)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 130, dur, true)
		c.BeginArrival(ctrlFrame(packet.KindRTS, 2, 3), 130, dur, false) // out of range
	})
	eng.Run()
	// The syncable frame is jammed by out-of-range energy; the
	// out-of-range frame itself is never reported.
	if len(rec.received) != 0 {
		t.Fatal("jammed frame decoded")
	}
	if len(rec.lost) != 1 {
		t.Fatalf("lost = %v, want only the syncable frame reported", rec.lost)
	}
}

func TestEnergyStatesFollowActivity(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, _ := newTestModem(t, eng, 3, med)
	dur := 100 * time.Millisecond
	eng.ScheduleIn(time.Second, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindData, 1, 3), 130, dur, true)
	})
	eng.Run()
	eng.RunUntil(sim.At(2 * time.Second))
	b, err := c.Energy()
	if err != nil {
		t.Fatal(err)
	}
	if b.RxJ <= 0 {
		t.Error("no rx energy accrued")
	}
	if b.IdleJ <= 0 {
		t.Error("no idle energy accrued")
	}
	wantRx := energy.DefaultProfile().RxW * dur.Seconds()
	if diff := b.RxJ - wantRx; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("RxJ = %v, want %v", b.RxJ, wantRx)
	}
}

func TestStatsSplitControlAndData(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	a, _ := newTestModem(t, eng, 1, med)
	ctl := ctrlFrame(packet.KindRTS, 1, 2)
	ctl.Neighbors = []packet.NeighborInfo{{ID: 5, Delay: time.Second}}
	if err := a.Transmit(ctl); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	data := &packet.Frame{Kind: packet.KindEXData, Src: 1, Dst: 2, DataBits: 1024}
	if err := a.Transmit(data); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	s := a.Stats()
	if s.ControlBitsTx != uint64(packet.ControlBits+packet.NeighborInfoBits) {
		t.Errorf("ControlBitsTx = %d", s.ControlBitsTx)
	}
	if s.DataBitsTx != uint64(packet.DataHeaderBits+1024) {
		t.Errorf("DataBitsTx = %d", s.DataBitsTx)
	}
	if s.PiggybackBitsTx != packet.NeighborInfoBits {
		t.Errorf("PiggybackBitsTx = %d", s.PiggybackBitsTx)
	}
	if s.ExtraFramesTx != 1 {
		t.Errorf("ExtraFramesTx = %d, want 1 (the EXData)", s.ExtraFramesTx)
	}
}

func TestCarrierSense(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng}
	c, _ := newTestModem(t, eng, 3, med)
	if c.CarrierSensed() {
		t.Error("carrier sensed on quiet channel")
	}
	dur := 100 * time.Millisecond
	eng.ScheduleIn(0, sim.PriorityPHY, func() {
		c.BeginArrival(ctrlFrame(packet.KindRTS, 1, 3), 130, dur, true)
	})
	eng.ScheduleIn(50*time.Millisecond, sim.PriorityMAC, func() {
		if !c.CarrierSensed() {
			t.Error("carrier not sensed mid-arrival")
		}
		if !c.Receiving() {
			t.Error("Receiving false mid-arrival")
		}
	})
	eng.Run()
	if c.CarrierSensed() {
		t.Error("carrier sensed after arrival ended")
	}
}

func TestLossReasonString(t *testing.T) {
	if LossCollision.String() != "collision" ||
		LossTxDuringRx.String() != "tx-during-rx" ||
		LossChannel.String() != "channel" {
		t.Error("LossReason strings changed")
	}
}

func TestModemDown(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng, delay: 500 * time.Millisecond, level: 140, usable: true}
	a, _ := newTestModem(t, eng, 1, med)
	b, recB := newTestModem(t, eng, 2, med)
	med.peers = []*Modem{a, b}

	b.SetDown(true)
	if !b.Down() {
		t.Fatal("Down() false after SetDown(true)")
	}
	if err := b.Transmit(ctrlFrame(packet.KindRTS, 2, 1)); !errors.Is(err, ErrDown) {
		t.Fatalf("Transmit while down = %v, want ErrDown", err)
	}
	// A frame arriving at a down modem is never decoded — not even
	// reported as a loss (the receiver missed the preamble entirely).
	if err := a.Transmit(ctrlFrame(packet.KindRTS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(recB.received) != 0 || len(recB.lost) != 0 {
		t.Fatalf("down modem saw received=%d lost=%d, want nothing", len(recB.received), len(recB.lost))
	}

	// Back up: traffic flows again.
	b.SetDown(false)
	if err := a.Transmit(ctrlFrame(packet.KindCTS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	eng.Run()
	if len(recB.received) != 1 {
		t.Fatalf("recovered modem received %d frames, want 1", len(recB.received))
	}
}

func TestModemDownKillsInFlightArrival(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng, delay: 500 * time.Millisecond, level: 140, usable: true}
	a, _ := newTestModem(t, eng, 1, med)
	b, recB := newTestModem(t, eng, 2, med)
	med.peers = []*Modem{a, b}

	if err := a.Transmit(ctrlFrame(packet.KindRTS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// Crash b while the frame is propagating/arriving.
	eng.MustScheduleAt(sim.At(505*time.Millisecond), sim.PriorityMAC, func() {
		b.SetDown(true)
	})
	eng.Run()
	if len(recB.received) != 0 {
		t.Fatalf("down modem decoded %d frames, want 0", len(recB.received))
	}
}

func TestInjectInterference(t *testing.T) {
	eng := sim.NewEngine(1)
	med := &fakeMedium{eng: eng, delay: 500 * time.Millisecond, level: 140, usable: true}
	a, _ := newTestModem(t, eng, 1, med)
	b, recB := newTestModem(t, eng, 2, med)
	med.peers = []*Modem{a, b}

	// Noise alone: carrier sensed, nothing decoded, no losses.
	b.InjectInterference(140, time.Second)
	if !b.CarrierSensed() {
		t.Error("interference not carrier-sensed")
	}
	if b.Receiving() {
		t.Error("interference reported as decodable reception")
	}
	eng.Run()
	if b.CarrierSensed() {
		t.Error("interference never cleared")
	}
	if len(recB.received) != 0 || len(recB.lost) != 0 {
		t.Fatalf("noise produced received=%d lost=%d events", len(recB.received), len(recB.lost))
	}

	// Noise at equal power with a real frame drives SINR to 0 dB,
	// below the default 10 dB threshold: the frame is a collision loss.
	if err := a.Transmit(ctrlFrame(packet.KindRTS, 1, 2)); err != nil {
		t.Fatal(err)
	}
	eng.MustScheduleAt(eng.Now().Add(505*time.Millisecond), sim.PriorityPHY, func() {
		b.InjectInterference(med.level, 200*time.Millisecond)
	})
	eng.Run()
	if len(recB.received) != 0 {
		t.Fatalf("frame decoded through equal-power noise")
	}
	if len(recB.lost) != 1 || recB.lost[0] != LossCollision {
		t.Fatalf("lost = %v, want one collision", recB.lost)
	}
}
