// Package phy implements the half-duplex acoustic modem: transmit
// scheduling, arrival tracking, SINR-based collision resolution, and
// per-state energy metering. It is deliberately protocol-agnostic — the
// MAC layer sees successfully decoded frames (including everything it
// overhears) plus a transmit-complete callback, which is exactly the
// interface NS-3's UAN PHY presents to its MAC models.
package phy

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// ErrBusy is returned by Transmit while a transmission is in progress:
// the transducer is half-duplex and single-channel.
var ErrBusy = errors.New("phy: modem already transmitting")

// ErrDown is returned by Transmit while the modem is down (crashed
// node or transient outage injected by the fault layer).
var ErrDown = errors.New("phy: modem down")

// LossReason classifies why a decodable frame was not delivered. Real
// modems cannot always tell these apart; the reasons feed metrics, not
// protocol logic.
type LossReason uint8

// Loss reasons.
const (
	// LossCollision means concurrent arrivals drove SINR below the
	// receiver threshold.
	LossCollision LossReason = iota + 1
	// LossTxDuringRx means the modem was transmitting during part of
	// the arrival (half-duplex self-blocking).
	LossTxDuringRx
	// LossChannel means the frame failed the PER draw without
	// interference (marginal link).
	LossChannel
)

// String implements fmt.Stringer.
func (r LossReason) String() string {
	switch r {
	case LossCollision:
		return "collision"
	case LossTxDuringRx:
		return "tx-during-rx"
	case LossChannel:
		return "channel"
	default:
		return fmt.Sprintf("LossReason(%d)", uint8(r))
	}
}

// Listener receives modem events. The MAC layer implements this.
type Listener interface {
	// OnFrameReceived delivers every successfully decoded frame,
	// whether or not this node is the destination (overhearing).
	OnFrameReceived(f *packet.Frame)
	// OnFrameLost reports a frame that would have been decodable but
	// was lost; for metrics only.
	OnFrameLost(f *packet.Frame, reason LossReason)
	// OnTxDone fires when the modem finishes clocking out a frame.
	OnTxDone(f *packet.Frame)
}

// Medium propagates a transmission to other modems. The channel package
// implements it against the deployed topology.
type Medium interface {
	// Broadcast delivers f (with on-air duration dur) to every other
	// modem, applying propagation delay and attenuation. A non-nil error
	// means the medium dropped the transmission entirely (e.g. the
	// source is not part of the deployed topology); the transmitter
	// still spent its on-air time and energy.
	Broadcast(src packet.NodeID, f *packet.Frame, dur time.Duration) error
}

// Stats counts modem activity for the metrics layer.
type Stats struct {
	FramesTx   uint64
	BitsTx     uint64
	FramesRx   uint64
	BitsRx     uint64
	Collisions uint64
	TxSelfLoss uint64
	PERLosses  uint64
	// ControlBitsTx / DataBitsTx / PiggybackBitsTx split BitsTx for
	// overhead accounting (Figure 10).
	ControlBitsTx   uint64
	DataBitsTx      uint64
	PiggybackBitsTx uint64
	// ExtraFramesTx counts opportunistic frames (EX*/RTA/stolen).
	ExtraFramesTx uint64
}

type arrival struct {
	frame     *packet.Frame
	levelDB   float64
	levelLin  float64
	end       sim.Time
	corruptTx bool
	decodable bool
	// maxOtherLin is the worst concurrent interference power observed
	// while this arrival was in the air.
	maxOtherLin float64
}

// Modem is one node's acoustic transducer.
type Modem struct {
	id       packet.NodeID
	eng      *sim.Engine
	model    *acoustic.Model
	per      acoustic.PERModel
	medium   Medium
	listener Listener
	meter    *energy.Meter
	rng      *sim.RNG

	transmitting bool
	txFrame      *packet.Frame
	arrivals     []*arrival
	stats        Stats
	down         bool

	// rxTap / lossTap are observability hooks for metrics and
	// verification oracles; they see the same events as the listener
	// but never influence protocol behaviour.
	rxTap   func(f *packet.Frame)
	lossTap func(f *packet.Frame, reason LossReason)
	// rec is the structured event sink (nil when observability is off).
	rec obs.Recorder
}

// Config assembles a modem.
type Config struct {
	ID       packet.NodeID
	Engine   *sim.Engine
	Model    *acoustic.Model
	PER      acoustic.PERModel
	Medium   Medium
	Listener Listener
	Energy   energy.Profile
}

// NewModem validates cfg and returns a modem in the idle-listening
// state.
func NewModem(cfg Config) (*Modem, error) {
	switch {
	case cfg.ID == packet.Nobody || cfg.ID == packet.Broadcast:
		return nil, fmt.Errorf("phy: invalid modem ID %v", cfg.ID)
	case cfg.Engine == nil:
		return nil, errors.New("phy: nil engine")
	case cfg.Model == nil:
		return nil, errors.New("phy: nil acoustic model")
	case cfg.Medium == nil:
		return nil, errors.New("phy: nil medium")
	}
	if err := cfg.Energy.Validate(); err != nil {
		return nil, err
	}
	per := cfg.PER
	if per == nil {
		per = acoustic.ThresholdPER{ThresholdDB: cfg.Model.SINRThresholdDB}
	}
	return &Modem{
		id:       cfg.ID,
		eng:      cfg.Engine,
		model:    cfg.Model,
		per:      per,
		medium:   cfg.Medium,
		listener: cfg.Listener,
		meter:    energy.NewMeter(cfg.Energy, cfg.Engine.Now()),
		rng:      cfg.Engine.RNG(fmt.Sprintf("phy/%d", cfg.ID)),
	}, nil
}

// ID reports the modem's node ID.
func (m *Modem) ID() packet.NodeID { return m.id }

// SetListener installs the MAC callback sink. It must be called before
// the simulation starts; a nil listener drops events.
func (m *Modem) SetListener(l Listener) { m.listener = l }

// SetRxTap installs an observer for successfully decoded frames (for
// verification oracles; nil disables).
func (m *Modem) SetRxTap(tap func(f *packet.Frame)) { m.rxTap = tap }

// SetLossTap installs an observer for lost decodable frames (for
// verification oracles; nil disables).
func (m *Modem) SetLossTap(tap func(f *packet.Frame, reason LossReason)) { m.lossTap = tap }

// SetRecorder installs the observability event sink (nil to disable).
// The modem records obs.TxBegin, obs.FrameRx, and obs.FrameLoss.
func (m *Modem) SetRecorder(r obs.Recorder) { m.rec = r }

// Stats returns a copy of the activity counters.
func (m *Modem) Stats() Stats { return m.stats }

// Energy returns the cumulative energy breakdown as of now.
func (m *Modem) Energy() (energy.Breakdown, error) {
	return m.meter.Snapshot(m.eng.Now())
}

// Transmitting reports whether a transmission is in progress.
func (m *Modem) Transmitting() bool { return m.transmitting }

// Down reports whether the modem is down (fault-injected crash or
// outage).
func (m *Modem) Down() bool { return m.down }

// SetDown switches the modem between down and operational. While down
// the modem cannot start a transmission (Transmit returns ErrDown),
// never decodes arriving signals — including ones already in the air,
// which a dying receiver loses silently — and meters the sleep power
// draw. Bringing the modem back up restores idle listening; signals
// already arriving stay undecodable because the modem missed their
// synchronization preamble.
func (m *Modem) SetDown(down bool) {
	if m.down == down {
		return
	}
	m.down = down
	if down {
		for _, a := range m.arrivals {
			a.decodable = false
		}
		// An in-flight transmission is allowed to finish clocking out:
		// its energy is already committed to the channel, and cutting
		// the OnTxDone callback would wedge the MAC state machine the
		// fault layer is trying to exercise, not break.
	}
	m.updateEnergyState()
}

// Receiving reports whether any decodable signal is currently arriving.
func (m *Modem) Receiving() bool {
	for _, a := range m.arrivals {
		if a.decodable {
			return true
		}
	}
	return false
}

// CarrierSensed reports whether any signal energy (decodable or not) is
// on the channel at this modem.
func (m *Modem) CarrierSensed() bool { return len(m.arrivals) > 0 || m.transmitting }

// Transmit clocks out f. The frame's on-air time follows from its size
// and the model's bit rate. Returns ErrBusy if a transmission is in
// progress. Transmitting corrupts every arrival currently in the air at
// this modem (half-duplex).
func (m *Modem) Transmit(f *packet.Frame) error {
	if m.down {
		return fmt.Errorf("%w: %v", ErrDown, f)
	}
	if m.transmitting {
		return fmt.Errorf("%w: %v while sending %v", ErrBusy, f, m.txFrame)
	}
	if err := f.Validate(); err != nil {
		return fmt.Errorf("phy: transmit: %w", err)
	}
	dur := f.TxDuration(m.model.BitRate())
	m.transmitting = true
	m.txFrame = f
	for _, a := range m.arrivals {
		a.corruptTx = true
	}
	m.accountTx(f)
	m.updateEnergyState()
	obs.TxBegin{Node: m.id, Frame: f, Dur: dur}.Emit(m.rec, m.eng.Now())
	// finishTx is scheduled even when the medium rejects the frame: the
	// transmitter already committed its on-air time and energy, and the
	// modem must return to idle rather than stay wedged in tx state.
	err := m.medium.Broadcast(m.id, f, dur)
	m.eng.ScheduleIn(dur, sim.PriorityPHY, func() { m.finishTx(f) })
	if err != nil {
		return fmt.Errorf("phy: transmit: %w", err)
	}
	return nil
}

func (m *Modem) finishTx(f *packet.Frame) {
	m.transmitting = false
	m.txFrame = nil
	m.updateEnergyState()
	if m.listener != nil {
		m.listener.OnTxDone(f)
	}
}

func (m *Modem) accountTx(f *packet.Frame) {
	bits := uint64(f.Bits())
	m.stats.FramesTx++
	m.stats.BitsTx += bits
	pig := uint64(len(f.Neighbors) * packet.NeighborInfoBits)
	m.stats.PiggybackBitsTx += pig
	if f.Kind.IsControl() {
		m.stats.ControlBitsTx += bits
	} else {
		m.stats.DataBitsTx += bits
	}
	if f.Kind.IsExtra() {
		m.stats.ExtraFramesTx++
	}
}

// BeginArrival is called by the medium when signal energy from frame f
// starts arriving at this modem. levelDB is the received level; dur is
// the on-air duration; syncable reports whether the source is within
// nominal communication range (signals from farther away contribute
// interference but are never decoded). The modem schedules its own
// end-of-arrival processing.
func (m *Modem) BeginArrival(f *packet.Frame, levelDB float64, dur time.Duration, syncable bool) {
	now := m.eng.Now()
	a := &arrival{
		frame:     f,
		levelDB:   levelDB,
		levelLin:  acoustic.DBToLin(levelDB),
		end:       now.Add(dur),
		corruptTx: m.transmitting,
		decodable: syncable && !m.down && m.model.Decodable(m.model.SINRDBFromLin(levelDB, 0)),
	}
	m.arrivals = append(m.arrivals, a)
	m.refreshInterference()
	m.updateEnergyState()
	m.eng.ScheduleIn(dur, sim.PriorityPHY, func() { m.endArrival(a) })
}

// InjectInterference adds raw noise energy at this modem for dur: an
// arrival with no frame behind it that is never decodable but degrades
// the SINR of everything concurrently in the air (bursty biological or
// shipping noise, injected by the fault layer). The energy also shows
// up on carrier sense, so backoff logic reacts to it like any other
// busy-channel episode.
func (m *Modem) InjectInterference(levelDB float64, dur time.Duration) {
	a := &arrival{
		levelDB:  levelDB,
		levelLin: acoustic.DBToLin(levelDB),
		end:      m.eng.Now().Add(dur),
	}
	m.arrivals = append(m.arrivals, a)
	m.refreshInterference()
	m.updateEnergyState()
	m.eng.ScheduleIn(dur, sim.PriorityPHY, func() { m.endArrival(a) })
}

// refreshInterference recomputes, for every active arrival, the total
// power of the other active arrivals, and folds it into each arrival's
// running maximum. Interference peaks only when an arrival starts, so
// calling this from BeginArrival captures every arrival's worst case.
func (m *Modem) refreshInterference() {
	var total float64
	for _, a := range m.arrivals {
		total += a.levelLin
	}
	for _, a := range m.arrivals {
		other := total - a.levelLin
		if other > a.maxOtherLin {
			a.maxOtherLin = other
		}
	}
}

func (m *Modem) endArrival(a *arrival) {
	for i, b := range m.arrivals {
		if b == a {
			m.arrivals = append(m.arrivals[:i], m.arrivals[i+1:]...)
			break
		}
	}
	m.updateEnergyState()

	if !a.decodable {
		// Pure interference energy: a real modem never synchronizes to
		// it, so nothing is reported.
		return
	}
	if a.corruptTx {
		m.stats.TxSelfLoss++
		m.notifyLost(a.frame, LossTxDuringRx)
		return
	}
	sinr := m.model.SINRDBFromLin(a.levelDB, a.maxOtherLin)
	perr := m.per.PER(sinr, a.frame.Bits())
	if perr > 0 && (perr >= 1 || m.rng.Float64() < perr) {
		if a.maxOtherLin > 0 {
			m.stats.Collisions++
			m.notifyLost(a.frame, LossCollision)
		} else {
			m.stats.PERLosses++
			m.notifyLost(a.frame, LossChannel)
		}
		return
	}
	m.stats.FramesRx++
	m.stats.BitsRx += uint64(a.frame.Bits())
	obs.FrameRx{Node: m.id, Frame: a.frame}.Emit(m.rec, m.eng.Now())
	if m.rxTap != nil {
		m.rxTap(a.frame)
	}
	if m.listener != nil {
		m.listener.OnFrameReceived(a.frame)
	}
}

func (m *Modem) notifyLost(f *packet.Frame, r LossReason) {
	obs.FrameLoss{
		Node: m.id, Frame: f, ReasonCode: uint8(r), Reason: r.String(),
	}.Emit(m.rec, m.eng.Now())
	if m.lossTap != nil {
		m.lossTap(f, r)
	}
	if m.listener != nil {
		m.listener.OnFrameLost(f, r)
	}
}

func (m *Modem) updateEnergyState() {
	state := energy.StateIdle
	switch {
	case m.transmitting:
		state = energy.StateTx
	case m.down:
		state = energy.StateSleep
	case m.Receiving():
		state = energy.StateRx
	}
	if err := m.meter.SetState(m.eng.Now(), state); err != nil {
		// Time never goes backwards inside one engine; this is a bug.
		panic(err)
	}
}
