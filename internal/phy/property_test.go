package phy

import (
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// TestReceptionMatchesBruteForceProperty drives one modem with a
// random schedule of arrivals and recomputes, by brute force over
// intervals, which frames must have survived: a frame is decoded iff
// no overlapping arrival sits within the capture margin and the frame
// itself is above the noise floor. The modem's incremental
// interference tracking must agree exactly (threshold PER model, so no
// randomness).
func TestReceptionMatchesBruteForceProperty(t *testing.T) {
	type arrivalSpec struct {
		StartMS uint16
		DurMS   uint8
		Level   uint8
	}
	f := func(raw []arrivalSpec) bool {
		if len(raw) == 0 {
			return true
		}
		if len(raw) > 24 {
			raw = raw[:24]
		}
		model := acoustic.DefaultModel()
		eng := sim.NewEngine(1)
		rec := &recorder{}
		modem, err := NewModem(Config{
			ID:       1,
			Engine:   eng,
			Model:    model,
			Medium:   &fakeMedium{eng: eng},
			Listener: rec,
			Energy:   energy.DefaultProfile(),
		})
		if err != nil {
			return false
		}

		type span struct {
			start, end sim.Time
			level      float64
			seq        uint32
		}
		spans := make([]span, 0, len(raw))
		for i, a := range raw {
			// Sub-millisecond jitter by index removes exact start/end
			// ties, whose event ordering is legitimately arbitrary.
			start := sim.At(time.Duration(a.StartMS%2000)*time.Millisecond +
				time.Duration(i*7)*time.Microsecond)
			dur := time.Duration(a.DurMS%200+5)*time.Millisecond + 333*time.Microsecond
			level := 100 + float64(a.Level%50) // 100..149 dB, all decodable alone
			seq := uint32(i + 1)
			spans = append(spans, span{start, start.Add(dur), level, seq})
			fr := &packet.Frame{Kind: packet.KindRTS, Src: 2, Dst: 1, Seq: seq}
			d := dur
			eng.MustScheduleAt(start, sim.PriorityPHY, func() {
				modem.BeginArrival(fr, level, d, true)
			})
		}
		eng.Run()

		// Brute-force expectation: the worst instantaneous concurrent
		// interference during a's lifetime. Interference can only peak
		// when some arrival starts, so evaluating at a's start and at
		// every overlapping arrival's start covers the maximum.
		want := map[uint32]bool{}
		for i, a := range spans {
			instants := []sim.Time{a.start}
			for j, b := range spans {
				if i != j && b.start >= a.start && b.start < a.end {
					instants = append(instants, b.start)
				}
			}
			var worstLin float64
			for _, tm := range instants {
				var lin float64
				for j, b := range spans {
					if i == j || tm < b.start || tm >= b.end {
						continue
					}
					lin += acoustic.DBToLin(b.level)
				}
				if lin > worstLin {
					worstLin = lin
				}
			}
			sinr := model.SINRDBFromLin(a.level, worstLin)
			want[a.seq] = model.Decodable(sinr)
		}
		got := map[uint32]bool{}
		for _, fr := range rec.received {
			got[fr.Seq] = true
		}
		for seq, wantOK := range want {
			if got[seq] != wantOK {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Error(err)
	}
}
