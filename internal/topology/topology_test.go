package topology

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
	"ewmac/internal/vec"
)

func testConfig() DeployConfig {
	return DeployConfig{
		Nodes:     60,
		Sinks:     4,
		Region:    vec.Cube(1000),
		Mobile:    0.5,
		CurrentMS: 0.5,
	}
}

func deploy(t *testing.T, cfg DeployConfig) *Network {
	t.Helper()
	net, err := Deploy(cfg, acoustic.DefaultModel(), sim.NewEngine(1).RNG("deploy"))
	if err != nil {
		t.Fatalf("Deploy: %v", err)
	}
	return net
}

func TestDeployBasics(t *testing.T) {
	cfg := testConfig()
	net := deploy(t, cfg)
	if net.Len() != cfg.Nodes+cfg.Sinks {
		t.Fatalf("Len = %d, want %d", net.Len(), cfg.Nodes+cfg.Sinks)
	}
	for i := 1; i <= cfg.Sinks; i++ {
		n := net.Node(packet.NodeID(i))
		if !n.Sink {
			t.Errorf("node %d should be a sink", i)
		}
		if n.Pos.Z != 0 {
			t.Errorf("sink %d at depth %v, want surface", i, n.Pos.Z)
		}
	}
	for _, n := range net.Nodes() {
		if !net.Region.Contains(n.Pos) {
			t.Errorf("node %v deployed outside region", n.ID)
		}
	}
}

func TestDeployDeterministic(t *testing.T) {
	a := deploy(t, testConfig())
	b := deploy(t, testConfig())
	for i, n := range a.Nodes() {
		m := b.Nodes()[i]
		if n.Pos != m.Pos || n.Mobility != m.Mobility || n.Vel != m.Vel {
			t.Fatalf("node %d differs between same-seed deployments", i)
		}
	}
}

func TestDeployConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		edit func(*DeployConfig)
	}{
		{"zero nodes", func(c *DeployConfig) { c.Nodes = 0 }},
		{"negative sinks", func(c *DeployConfig) { c.Sinks = -1 }},
		{"mobile > 1", func(c *DeployConfig) { c.Mobile = 1.5 }},
		{"empty region", func(c *DeployConfig) { c.Region = vec.Box{} }},
		{"negative current", func(c *DeployConfig) { c.CurrentMS = -1 }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := testConfig()
			tc.edit(&cfg)
			if _, err := Deploy(cfg, acoustic.DefaultModel(), sim.NewEngine(1).RNG("d")); err == nil {
				t.Error("Deploy accepted invalid config")
			}
		})
	}
}

func TestNewNetworkRejectsBadNodes(t *testing.T) {
	model := acoustic.DefaultModel()
	region := vec.Cube(1000)
	if _, err := NewNetwork(region, nil, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := NewNetwork(region, model, []*Node{nil}); err == nil {
		t.Error("nil node accepted")
	}
	if _, err := NewNetwork(region, model, []*Node{{ID: 5}}); err == nil {
		t.Error("non-dense ID accepted")
	}
	outside := []*Node{{ID: 1, Pos: vec.V3{X: 1e9}}}
	if _, err := NewNetwork(region, model, outside); err == nil {
		t.Error("out-of-region node accepted")
	}
}

func TestDelayAndRange(t *testing.T) {
	model := acoustic.DefaultModel()
	nodes := []*Node{
		{ID: 1, Pos: vec.V3{Z: 100}},
		{ID: 2, Pos: vec.V3{X: 750, Z: 100}},
		{ID: 3, Pos: vec.V3{X: 450, Y: 300, Z: 900}},
	}
	net, err := NewNetwork(vec.Cube(2000), model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	d, err := net.Delay(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	want := 500 * time.Millisecond // 750 m at 1500 m/s
	if diff := d - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Errorf("Delay(1,2) = %v, want ≈%v", d, want)
	}
	if _, err := net.Delay(1, 99); err == nil {
		t.Error("Delay with unknown node accepted")
	}
	if !net.InRange(1, 2) {
		t.Error("750 m pair out of range")
	}
	if net.InRange(1, 1) {
		t.Error("node in range of itself")
	}
	nbrs := net.Neighbors(1)
	if len(nbrs) != 2 {
		t.Errorf("Neighbors(1) = %v, want both others", nbrs)
	}
}

func TestMaxPairDelayAndMeanDegree(t *testing.T) {
	net := deploy(t, testConfig())
	maxD := net.MaxPairDelay()
	if maxD <= 0 || maxD > net.Model.MaxDelay()+50*time.Millisecond {
		t.Errorf("MaxPairDelay = %v outside (0, τmax]", maxD)
	}
	// In a 1 km cube with 1.5 km range, almost everyone hears everyone.
	if deg := net.MeanDegree(); deg < float64(net.Len())/2 {
		t.Errorf("MeanDegree = %v, implausibly low for 1 km cube", deg)
	}
}

func TestStepHorizontalWraps(t *testing.T) {
	model := acoustic.DefaultModel()
	n := &Node{ID: 1, Pos: vec.V3{X: 499, Z: 100}, Mobility: MobilityHorizontal, Vel: vec.V3{X: 10}}
	net, err := NewNetwork(vec.Cube(1000), model, []*Node{n})
	if err != nil {
		t.Fatal(err)
	}
	net.Step(time.Second) // x = 509 → wraps to -491
	if !net.Region.Contains(n.Pos) {
		t.Fatalf("node left region: %v", n.Pos)
	}
	if math.Abs(n.Pos.X-(-491)) > 1e-9 {
		t.Errorf("X = %v, want -491 (wrapped)", n.Pos.X)
	}
	if n.Pos.Z != 100 {
		t.Error("horizontal drift changed depth")
	}
}

func TestStepVerticalReflects(t *testing.T) {
	model := acoustic.DefaultModel()
	n := &Node{ID: 1, Pos: vec.V3{Z: 995}, Mobility: MobilityVertical, Vel: vec.V3{Z: 10}}
	net, err := NewNetwork(vec.Cube(1000), model, []*Node{n})
	if err != nil {
		t.Fatal(err)
	}
	net.Step(time.Second) // z = 1005 → reflect to 995, velocity flips
	if math.Abs(n.Pos.Z-995) > 1e-9 {
		t.Errorf("Z = %v, want 995 after reflection", n.Pos.Z)
	}
	if n.Vel.Z != -10 {
		t.Errorf("Vel.Z = %v, want -10 after reflection", n.Vel.Z)
	}
}

func TestStepStaticAndSinksStay(t *testing.T) {
	net := deploy(t, testConfig())
	before := make([]vec.V3, net.Len())
	for i, n := range net.Nodes() {
		before[i] = n.Pos
	}
	net.Step(10 * time.Second)
	for i, n := range net.Nodes() {
		moved := n.Pos != before[i]
		if n.Sink && moved {
			t.Errorf("sink %v moved", n.ID)
		}
		if n.Mobility == MobilityStatic && moved {
			t.Errorf("static node %v moved", n.ID)
		}
		if n.Mobility == MobilityHorizontal && !moved {
			t.Errorf("horizontal node %v did not move", n.ID)
		}
	}
}

// Property: mobility never moves a node outside the region, for any
// sequence of steps.
func TestStepStaysInRegionProperty(t *testing.T) {
	f := func(steps []uint8, seed int64) bool {
		net, err := Deploy(testConfig(), acoustic.DefaultModel(), sim.NewEngine(seed).RNG("deploy"))
		if err != nil {
			return false
		}
		for _, s := range steps {
			net.Step(time.Duration(s) * time.Second)
			for _, n := range net.Nodes() {
				if !net.Region.Contains(n.Pos) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

// Property: Delay is symmetric regardless of mobility history.
func TestDelaySymmetric(t *testing.T) {
	net := deploy(t, testConfig())
	net.Step(30 * time.Second)
	ids := []packet.NodeID{1, 5, 10, 20, 40}
	for _, a := range ids {
		for _, b := range ids {
			if a == b {
				continue
			}
			da, err1 := net.Delay(a, b)
			db, err2 := net.Delay(b, a)
			if err1 != nil || err2 != nil || da != db {
				t.Fatalf("Delay(%v,%v)=%v,%v vs Delay(%v,%v)=%v,%v", a, b, da, err1, b, a, db, err2)
			}
		}
	}
}

func TestMobilityKindString(t *testing.T) {
	if MobilityStatic.String() != "static" ||
		MobilityHorizontal.String() != "horizontal" ||
		MobilityVertical.String() != "vertical" {
		t.Error("MobilityKind.String changed")
	}
}
