// Package topology manages sensor placement, surface sinks, mobility,
// and the ground-truth pairwise propagation delays the channel uses.
//
// The paper deploys sensors in a water volume with sinks at the surface;
// deeper sensors forward sensing data toward shallower ones (Figure 1).
// Locations change with water currents: each sensor independently is
// static, drifts horizontally, or drifts vertically (§5). Protocol code
// never reads positions — it only ever learns propagation delays from
// received timestamps, exactly as in the paper.
package topology

import (
	"fmt"
	"math"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
	"ewmac/internal/vec"
)

// MobilityKind selects how one node moves.
type MobilityKind uint8

// Mobility kinds per the paper's location models.
const (
	// MobilityStatic keeps the node where it was deployed.
	MobilityStatic MobilityKind = iota + 1
	// MobilityHorizontal drifts the node in the XY plane with a
	// current, wrapping at the region boundary.
	MobilityHorizontal
	// MobilityVertical oscillates the node along the depth axis,
	// reflecting at the region's top and bottom.
	MobilityVertical
)

// String implements fmt.Stringer.
func (k MobilityKind) String() string {
	switch k {
	case MobilityStatic:
		return "static"
	case MobilityHorizontal:
		return "horizontal"
	case MobilityVertical:
		return "vertical"
	default:
		return fmt.Sprintf("MobilityKind(%d)", uint8(k))
	}
}

// Node is one deployed sensor or sink.
type Node struct {
	// ID is the dense identifier used in frames.
	ID packet.NodeID
	// Pos is the current position in meters.
	Pos vec.V3
	// Sink marks surface data sinks (they receive, never generate).
	Sink bool
	// Mobility is this node's movement model.
	Mobility MobilityKind
	// Vel is the drift velocity in m/s (meaning depends on Mobility).
	Vel vec.V3
}

// Network is the deployed set of nodes plus the acoustic environment.
type Network struct {
	// Region is the deployment volume.
	Region vec.Box
	// Model is the acoustic environment used for delays and loss.
	Model *acoustic.Model
	// nodes is indexed by NodeID-1.
	nodes []*Node
	// epoch increments whenever any node position changes, so geometry
	// consumers (the channel's per-pair cache) can validate cached
	// delay/attenuation results with one integer compare.
	epoch uint64
}

// Epoch returns the geometry epoch: a counter that advances every time
// a node position changes. Cached pairwise geometry is valid exactly as
// long as the epoch it was computed under is still current.
func (n *Network) Epoch() uint64 { return n.epoch }

// Invalidate advances the geometry epoch. Step calls it automatically
// when mobility moves a node; code that mutates Node.Pos directly (the
// fault injector's delay-shift) must call it so cached geometry is not
// served stale.
func (n *Network) Invalidate() { n.epoch++ }

// NewNetwork wraps nodes (IDs must be dense, starting at 1) in the given
// region and environment.
func NewNetwork(region vec.Box, model *acoustic.Model, nodes []*Node) (*Network, error) {
	if model == nil {
		return nil, fmt.Errorf("topology: nil acoustic model")
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("topology: %w", err)
	}
	for i, n := range nodes {
		if n == nil {
			return nil, fmt.Errorf("topology: node %d is nil", i)
		}
		if want := packet.NodeID(i + 1); n.ID != want {
			return nil, fmt.Errorf("topology: node at index %d has ID %v, want dense ID %v", i, n.ID, want)
		}
		if !region.Contains(n.Pos) {
			return nil, fmt.Errorf("topology: node %v at %v outside region", n.ID, n.Pos)
		}
	}
	return &Network{Region: region, Model: model, nodes: nodes}, nil
}

// Len reports the number of nodes.
func (n *Network) Len() int { return len(n.nodes) }

// Node returns the node with the given ID, or nil if it does not exist.
func (n *Network) Node(id packet.NodeID) *Node {
	i := int(id) - 1
	if i < 0 || i >= len(n.nodes) {
		return nil
	}
	return n.nodes[i]
}

// Nodes returns the node slice (callers must not reorder it).
func (n *Network) Nodes() []*Node { return n.nodes }

// Delay returns the current true propagation delay between two nodes.
func (n *Network) Delay(a, b packet.NodeID) (time.Duration, error) {
	na, nb := n.Node(a), n.Node(b)
	if na == nil || nb == nil {
		return 0, fmt.Errorf("topology: delay between unknown nodes %v, %v", a, b)
	}
	return n.Model.Delay(na.Pos, nb.Pos), nil
}

// InRange reports whether two nodes can currently hear each other.
func (n *Network) InRange(a, b packet.NodeID) bool {
	na, nb := n.Node(a), n.Node(b)
	if na == nil || nb == nil || a == b {
		return false
	}
	return n.Model.InRange(na.Pos, nb.Pos)
}

// Neighbors returns the IDs currently within range of a, in ID order.
func (n *Network) Neighbors(a packet.NodeID) []packet.NodeID {
	na := n.Node(a)
	if na == nil {
		return nil
	}
	var out []packet.NodeID
	for _, other := range n.nodes {
		if other.ID != a && n.Model.InRange(na.Pos, other.Pos) {
			out = append(out, other.ID)
		}
	}
	return out
}

// MeanDegree reports the average neighbor count, a connectivity check
// used by experiment setup (the density experiments depend on the
// network actually being connected).
func (n *Network) MeanDegree() float64 {
	if len(n.nodes) == 0 {
		return 0
	}
	total := 0
	for _, nd := range n.nodes {
		total += len(n.Neighbors(nd.ID))
	}
	return float64(total) / float64(len(n.nodes))
}

// MaxPairDelay returns the largest current pairwise delay among in-range
// pairs — the empirical τmax of this topology.
func (n *Network) MaxPairDelay() time.Duration {
	var maxD time.Duration
	for i, a := range n.nodes {
		for _, b := range n.nodes[i+1:] {
			if !n.Model.InRange(a.Pos, b.Pos) {
				continue
			}
			if d := n.Model.Delay(a.Pos, b.Pos); d > maxD {
				maxD = d
			}
		}
	}
	return maxD
}

// Step advances mobility by dt. Horizontal nodes drift with their
// velocity and wrap; vertical nodes move along Z and reflect at the
// region's depth bounds. Sinks never move.
func (n *Network) Step(dt time.Duration) {
	sec := dt.Seconds()
	moved := false
	for _, nd := range n.nodes {
		if nd.Sink {
			continue
		}
		was := nd.Pos
		switch nd.Mobility {
		case MobilityHorizontal:
			nd.Pos = n.Region.WrapXY(nd.Pos.Add(vec.V3{X: nd.Vel.X * sec, Y: nd.Vel.Y * sec}))
		case MobilityVertical:
			z := nd.Pos.Z + nd.Vel.Z*sec
			lo, hi := n.Region.Min.Z, n.Region.Max.Z
			if z < lo {
				z = lo + (lo - z)
				nd.Vel.Z = -nd.Vel.Z
			}
			if z > hi {
				z = hi - (z - hi)
				nd.Vel.Z = -nd.Vel.Z
			}
			nd.Pos.Z = math.Max(lo, math.Min(hi, z))
		case MobilityStatic:
			// No movement.
		}
		if nd.Pos != was {
			moved = true
		}
	}
	if moved {
		// One bump per step, and only when something actually moved: a
		// fully static deployment keeps its geometry cache for the whole
		// run.
		n.Invalidate()
	}
}

// DeployConfig describes a randomized deployment.
type DeployConfig struct {
	// Nodes is the number of sensing nodes (sinks are extra).
	Nodes int
	// Sinks is the number of surface sinks (placed on a surface grid).
	Sinks int
	// Region is the deployment volume.
	Region vec.Box
	// Mobile is the fraction of sensing nodes that move at all; movers
	// split evenly between horizontal and vertical drift (paper §5:
	// "the location of each sensor is changed by randomly selecting
	// one of these models").
	Mobile float64
	// CurrentMS is the drift speed magnitude in m/s.
	CurrentMS float64
}

// Validate reports the first invalid field.
func (c DeployConfig) Validate() error {
	switch {
	case c.Nodes <= 0:
		return fmt.Errorf("topology: %d nodes", c.Nodes)
	case c.Sinks < 0:
		return fmt.Errorf("topology: %d sinks", c.Sinks)
	case c.Mobile < 0 || c.Mobile > 1:
		return fmt.Errorf("topology: mobile fraction %v outside [0, 1]", c.Mobile)
	case c.Region.Volume() <= 0:
		return fmt.Errorf("topology: empty region")
	case c.CurrentMS < 0:
		return fmt.Errorf("topology: negative current %v", c.CurrentMS)
	}
	return nil
}

// Deploy places Sinks sinks on a surface grid and Nodes sensors
// uniformly at random in the region, assigning each sensor a mobility
// model from rng. Node IDs: sinks first (1..Sinks), then sensors.
func Deploy(cfg DeployConfig, model *acoustic.Model, rng *sim.RNG) (*Network, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	nodes := make([]*Node, 0, cfg.Sinks+cfg.Nodes)
	size := cfg.Region.Size()

	// Sinks on a √k × √k surface grid so coverage does not depend on
	// the seed.
	side := int(math.Ceil(math.Sqrt(float64(cfg.Sinks))))
	for i := 0; i < cfg.Sinks; i++ {
		gx, gy := i%side, i/side
		pos := vec.V3{
			X: cfg.Region.Min.X + (float64(gx)+0.5)*size.X/float64(side),
			Y: cfg.Region.Min.Y + (float64(gy)+0.5)*size.Y/float64(side),
			Z: cfg.Region.Min.Z,
		}
		nodes = append(nodes, &Node{
			ID:       packet.NodeID(len(nodes) + 1),
			Pos:      cfg.Region.Clamp(pos),
			Sink:     true,
			Mobility: MobilityStatic,
		})
	}

	for i := 0; i < cfg.Nodes; i++ {
		pos := vec.V3{
			X: cfg.Region.Min.X + rng.Float64()*size.X,
			Y: cfg.Region.Min.Y + rng.Float64()*size.Y,
			Z: cfg.Region.Min.Z + rng.Float64()*size.Z,
		}
		n := &Node{
			ID:       packet.NodeID(len(nodes) + 1),
			Pos:      pos,
			Mobility: MobilityStatic,
		}
		if rng.Float64() < cfg.Mobile {
			angle := rng.Float64() * 2 * math.Pi
			if rng.Intn(2) == 0 {
				n.Mobility = MobilityHorizontal
				n.Vel = vec.V3{X: cfg.CurrentMS * math.Cos(angle), Y: cfg.CurrentMS * math.Sin(angle)}
			} else {
				n.Mobility = MobilityVertical
				dir := 1.0
				if rng.Intn(2) == 0 {
					dir = -1
				}
				n.Vel = vec.V3{Z: dir * cfg.CurrentMS}
			}
		}
		nodes = append(nodes, n)
	}
	return NewNetwork(cfg.Region, model, nodes)
}
