package mac

import (
	"time"

	"ewmac/internal/sim"
)

// Clock models the node's local oscillator. The slotted protocols act
// on *local* time: slot boundaries fire where the local clock claims
// the boundary is, and outgoing frames are stamped with local readings
// — so a drifting clock perturbs both the node's transmission timing
// and every delay measurement its neighbors derive from its frames,
// exactly the failure mode the fault layer injects.
//
// A nil Clock in Config means a perfect oscillator: local time equals
// simulation time and every code path reduces bit-identically to the
// pre-fault behaviour.
type Clock interface {
	// Local converts true simulation time to this node's local reading.
	Local(t sim.Time) time.Duration
	// TrueTime converts a local reading back to the true simulation
	// instant at which the local clock shows it.
	TrueTime(local time.Duration) sim.Time
}

// LocalNow returns the node's current local clock reading as a
// sim.Time (identical to engine time under a nil Clock).
func (b *Base) LocalNow() sim.Time {
	now := b.cfg.Engine.Now()
	if b.cfg.Clock == nil {
		return now
	}
	return sim.At(b.cfg.Clock.Local(now))
}
