package mac

import (
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

func ledgerFixture() (*Ledger, SlotConfig) {
	s := paperSlots()
	return NewLedger(s), s
}

func rtsFrame(src, dst packet.NodeID, tau time.Duration, bits int) *packet.Frame {
	return &packet.Frame{Kind: packet.KindRTS, Src: src, Dst: dst, PairDelay: tau, DataBits: bits}
}

func ctsFrame(src, dst packet.NodeID, tau time.Duration, bits int) *packet.Frame {
	return &packet.Frame{Kind: packet.KindCTS, Src: src, Dst: dst, PairDelay: tau, DataBits: bits}
}

func TestLedgerRTSThenCTSLifecycle(t *testing.T) {
	l, s := ledgerFixture()
	dataTx := 176 * time.Millisecond
	tau := 400 * time.Millisecond

	e := l.ObserveRTS(rtsFrame(2, 3, tau, 2048), 10, dataTx)
	if e.Confirmed {
		t.Fatal("RTS-only exchange confirmed")
	}
	if e.EndSlot(s) != 12 {
		t.Errorf("speculative EndSlot = %d, want 12", e.EndSlot(s))
	}
	if l.QuietUntilSlot() != 12 {
		t.Errorf("QuietUntilSlot = %d, want 12", l.QuietUntilSlot())
	}
	if l.QuietUntilSlotConfirmed() != 0 {
		t.Errorf("QuietUntilSlotConfirmed = %d, want 0", l.QuietUntilSlotConfirmed())
	}

	e2 := l.ObserveCTS(ctsFrame(3, 2, tau, 2048), 11, dataTx)
	if e2 != e {
		t.Fatal("CTS created a second exchange for the same pair")
	}
	if !e.Confirmed {
		t.Fatal("exchange not confirmed by CTS")
	}
	// Data slot 12, data (176ms) + τ (400ms) < |ts| → ack slot 13,
	// end slot 14.
	if got := e.AckSlot(s); got != 13 {
		t.Errorf("AckSlot = %d, want 13", got)
	}
	if got := e.EndSlot(s); got != 14 {
		t.Errorf("EndSlot = %d, want 14", got)
	}
	if l.QuietUntilSlotConfirmed() != 14 {
		t.Errorf("confirmed quiet = %d, want 14", l.QuietUntilSlotConfirmed())
	}

	l.Prune(13)
	if l.Len() != 1 {
		t.Error("active exchange pruned")
	}
	l.Prune(14)
	if l.Len() != 0 {
		t.Error("finished exchange kept")
	}
}

func TestLedgerCTSWithoutRTS(t *testing.T) {
	l, s := ledgerFixture()
	e := l.ObserveCTS(ctsFrame(3, 2, 300*time.Millisecond, 1024), 5, 90*time.Millisecond)
	if !e.Confirmed || e.Sender != 2 || e.Receiver != 3 || e.RTSSlot != 4 {
		t.Fatalf("exchange from bare CTS wrong: %+v", e)
	}
	if l.Lookup(2, 3) != e {
		t.Error("Lookup failed")
	}
	if e.DataSlot() != 6 {
		t.Errorf("DataSlot = %d, want 6", e.DataSlot())
	}
	_ = s
}

func TestLedgerRxWindows(t *testing.T) {
	l, s := ledgerFixture()
	tau := 400 * time.Millisecond
	dataTx := 176 * time.Millisecond
	l.ObserveCTS(ctsFrame(3, 2, tau, 2048), 11, dataTx)

	// Receiver 3 is busy receiving data during
	// [StartOf(12)+τ, +dataTx).
	dataStart := s.StartOf(12).Add(tau)
	if !l.RxConflict(3, Interval{dataStart.Add(50 * time.Millisecond), dataStart.Add(60 * time.Millisecond)}) {
		t.Error("no conflict inside receiver's data window")
	}
	if l.RxConflict(3, Interval{dataStart.Add(-20 * time.Millisecond), dataStart.Add(-10 * time.Millisecond)}) {
		t.Error("conflict before data arrives")
	}
	// Sender 2 receives the CTS during [StartOf(11)+τ, +ω).
	ctsAt := s.StartOf(11).Add(tau)
	if !l.RxConflict(2, Interval{ctsAt, ctsAt.Add(time.Millisecond)}) {
		t.Error("no conflict during sender's CTS reception")
	}
	// Sender 2 also receives the Ack (slot 13).
	ackAt := s.StartOf(13).Add(tau)
	if !l.RxConflict(2, Interval{ackAt.Add(time.Millisecond), ackAt.Add(2 * time.Millisecond)}) {
		t.Error("no conflict during sender's Ack reception")
	}
	// A bystander node has no windows.
	if l.RxConflict(9, Interval{dataStart, dataStart.Add(time.Hour)}) {
		t.Error("bystander has rx windows")
	}
}

func TestLedgerTxWindows(t *testing.T) {
	l, s := ledgerFixture()
	tau := 400 * time.Millisecond
	dataTx := 176 * time.Millisecond
	l.ObserveCTS(ctsFrame(3, 2, tau, 2048), 11, dataTx)

	// Sender transmits data during [StartOf(12), +dataTx).
	dt := s.StartOf(12)
	if !l.TxConflict(2, Interval{dt.Add(time.Millisecond), dt.Add(2 * time.Millisecond)}) {
		t.Error("no tx conflict during sender's data transmission")
	}
	// Receiver transmits CTS at slot 11 and Ack at slot 13.
	cts := s.StartOf(11)
	if !l.TxConflict(3, Interval{cts, cts.Add(time.Millisecond)}) {
		t.Error("no tx conflict during CTS")
	}
	ack := s.StartOf(13)
	if !l.TxConflict(3, Interval{ack, ack.Add(time.Millisecond)}) {
		t.Error("no tx conflict during Ack")
	}
	// Between windows the receiver is free to be addressed.
	gap := s.StartOf(11).Add(s.Omega + 10*time.Millisecond)
	if l.TxConflict(3, Interval{gap, gap.Add(time.Millisecond)}) {
		t.Error("tx conflict in receiver's idle gap")
	}
}

func TestLedgerSpeculativeWindows(t *testing.T) {
	l, s := ledgerFixture()
	tau := 400 * time.Millisecond
	l.ObserveRTS(rtsFrame(2, 3, tau, 2048), 10, 176*time.Millisecond)
	// Sender 2 expects a CTS in slot 11: that reception is protected
	// even before confirmation.
	ctsAt := s.StartOf(11).Add(tau)
	if !l.RxConflict(2, Interval{ctsAt, ctsAt.Add(time.Millisecond)}) {
		t.Error("speculative sender CTS window unprotected")
	}
	// But no data window exists yet for the receiver.
	dataAt := s.StartOf(12).Add(tau)
	if l.RxConflict(3, Interval{dataAt, dataAt.Add(time.Millisecond)}) {
		t.Error("unconfirmed exchange has a data window")
	}
}

func TestBusyParties(t *testing.T) {
	l, _ := ledgerFixture()
	l.ObserveRTS(rtsFrame(9, 2, 0, 1024), 5, time.Millisecond)
	l.ObserveCTS(ctsFrame(4, 7, 0, 1024), 6, time.Millisecond)
	got := l.BusyParties()
	want := []packet.NodeID{2, 4, 7, 9}
	if len(got) != len(want) {
		t.Fatalf("BusyParties = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("BusyParties = %v, want %v", got, want)
		}
	}
}

func TestIntervalOverlaps(t *testing.T) {
	a := Interval{sim.At(time.Second), sim.At(2 * time.Second)}
	cases := []struct {
		b    Interval
		want bool
	}{
		{Interval{sim.At(0), sim.At(time.Second)}, false},                   // touching start
		{Interval{sim.At(2 * time.Second), sim.At(3 * time.Second)}, false}, // touching end
		{Interval{sim.At(1500 * time.Millisecond), sim.At(1600 * time.Millisecond)}, true},
		{Interval{sim.At(0), sim.At(10 * time.Second)}, true}, // containing
	}
	for i, tc := range cases {
		if a.Overlaps(tc.b) != tc.want {
			t.Errorf("case %d: Overlaps = %v, want %v", i, !tc.want, tc.want)
		}
	}
}

func TestLedgerReusedPairUpdates(t *testing.T) {
	l, _ := ledgerFixture()
	l.ObserveRTS(rtsFrame(2, 3, time.Millisecond, 1024), 10, 90*time.Millisecond)
	l.ObserveRTS(rtsFrame(2, 3, time.Millisecond, 1024), 20, 90*time.Millisecond)
	if l.Len() != 1 {
		t.Fatalf("Len = %d, want 1 (same pair reuses entry)", l.Len())
	}
	if l.Lookup(2, 3).RTSSlot != 20 {
		t.Error("retried RTS did not update slot")
	}
}
