package ropa

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

type rig struct {
	eng  *sim.Engine
	macs []*MAC
}

func newRig(t *testing.T, seed int64, positions ...vec.V3) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, len(positions))
	for i, p := range positions {
		nodes[i] = &topology.Node{ID: packet.NodeID(i + 1), Pos: p}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}
	r := &rig{eng: eng}
	for i := range positions {
		modem, err := phy.NewModem(phy.Config{
			ID:     packet.NodeID(i + 1),
			Engine: eng,
			Model:  model,
			Medium: ch,
			Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(modem); err != nil {
			t.Fatal(err)
		}
		m, err := New(mac.Config{
			ID:          packet.NodeID(i + 1),
			Engine:      eng,
			Modem:       modem,
			Slots:       slots,
			BitRate:     model.BitRate(),
			EnableHello: true,
			HelloWindow: 5 * time.Second,
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		modem.SetListener(m)
		r.macs = append(r.macs, m)
		m.Start()
	}
	return r
}

func (r *rig) enqueueAt(at time.Duration, from int, dst packet.NodeID, bits int) {
	m := r.macs[from-1]
	r.eng.MustScheduleAt(sim.At(at), sim.PriorityApp, func() {
		m.Enqueue(mac.AppPacket{Dst: dst, Bits: bits})
	})
}

// TestAppendedTransmission: s sends to r; i, idle with data for s,
// overhears s's RTS, appends via RTA, and delivers its packet to s in
// s's post-exchange window.
func TestAppendedTransmission(t *testing.T) {
	r := newRig(t, 2,
		vec.V3{X: 0, Y: 0, Z: 100},     // 1 = r (receiver)
		vec.V3{X: 600, Y: 0, Z: 300},   // 2 = s (primary sender)
		vec.V3{X: 900, Y: 200, Z: 500}, // 3 = i (appender)
	)
	// s's packet first; i's packet arrives mid-slot — after s's RTS
	// left but before it reaches i — so i stays idle this round and
	// reacts to the overheard RTS with an RTA.
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.enqueueAt(9100*time.Millisecond, 3, 2, 2048)
	r.eng.RunUntil(sim.At(90 * time.Second))

	if got := r.macs[0].Counters().DeliveredPackets; got != 1 {
		t.Errorf("r delivered %d, want 1", got)
	}
	if got := r.macs[1].Counters().DeliveredPackets; got != 1 {
		t.Errorf("s delivered %d, want 1 (appended packet)", got)
	}
	att := r.macs[2].Counters().ExtraAttempts
	ok := r.macs[2].Counters().ExtraCompletions
	t.Logf("appender: attempts=%d grants=%d completions=%d",
		att, r.macs[2].Counters().ExtraGrants, ok)
	if att == 0 {
		t.Fatal("no RTA was ever attempted")
	}
	if ok == 0 {
		t.Fatal("appending attempted but never completed")
	}
}
