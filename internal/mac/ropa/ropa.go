// Package ropa implements the Reverse Opportunistic Packet Appending
// protocol (Ng, Soh & Motani, Computer Networks 2013) as characterized
// in the paper's evaluation (§5): a neighbor that overhears a sender's
// RTS and has data *for that sender* may transmit an appended request
// (RTA) during the sender's RTS→CTS waiting window; if the sender's own
// negotiation succeeds, it grants the appended transmission for the
// period after its primary exchange completes.
//
// ROPA exploits only the sender's waiting resources — never the
// receiver's — which is why its gains sit between S-FAMA's and
// EW-MAC's. It also maintains and periodically transmits two-hop
// neighbor information, the overhead/energy cost the paper charges it
// with (Figures 9 and 10).
package ropa

import (
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Options tune ROPA; the zero value matches the evaluation setup.
type Options struct {
	// Guard is the scheduling safety margin (default 2 ms).
	Guard time.Duration
	// UpdatePeriod is the interval between NbrUpdate broadcasts
	// (default 90 s).
	UpdatePeriod time.Duration
	// MaintenanceEntries caps neighbor entries per NbrUpdate broadcast
	// (default 4; entries rotate across broadcasts).
	MaintenanceEntries int
	// PiggybackEntries is how many neighbor entries ride on each
	// control frame (default 1).
	PiggybackEntries int
}

func (o *Options) applyDefaults() {
	if o.Guard <= 0 {
		o.Guard = 2 * time.Millisecond
	}
	if o.UpdatePeriod <= 0 {
		o.UpdatePeriod = 90 * time.Second
	}
	if o.MaintenanceEntries <= 0 {
		o.MaintenanceEntries = 4
	}
	if o.PiggybackEntries <= 0 {
		o.PiggybackEntries = 1
	}
}

// rtaState is the appender-side record of one RTA attempt.
type rtaState struct {
	target  packet.NodeID
	pkt     mac.AppPacket
	granted bool
	timeout sim.Handle
	// xid is the appended exchange's lineage; parent is the primary
	// handshake (the overheard RTS) whose waiting window it exploits.
	xid    uint64
	parent uint64
}

// appendReq is the primary sender's record of a pending RTA.
type appendReq struct {
	from packet.NodeID
	bits int
	xid  uint64
}

// MAC is the ROPA protocol.
type MAC struct {
	*mac.Base
	opts       Options
	pending    *rtaState
	request    *appendReq
	lastUpdate sim.Time
	rotCursor  int
}

var _ mac.Protocol = (*MAC)(nil)

// New builds a ROPA node.
func New(cfg mac.Config, opts Options) (*MAC, error) {
	opts.applyDefaults()
	cfg.LenientGrant = false
	// Control frames carry PiggybackEntries neighbor entries.
	cfg.Slots.Pad = packet.Duration(opts.PiggybackEntries*packet.NeighborInfoBits, cfg.BitRate)
	base, err := mac.NewBase(cfg)
	if err != nil {
		return nil, err
	}
	m := &MAC{Base: base, opts: opts}
	base.SetHooks(m)
	// Stagger the periodic maintenance phase per node so updates do not
	// synchronize into collision storms.
	m.lastUpdate = sim.At(-time.Duration(base.RNG().Int63n(int64(opts.UpdatePeriod))))
	return m, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "ROPA" }

// PickWinner implements mac.Hooks (first RTS wins, as in MACA-U).
func (m *MAC) PickWinner(cands []*packet.Frame) *packet.Frame {
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// Piggyback implements mac.Hooks: ROPA control frames carry a slice of
// the sender's neighbor table so two-hop state propagates.
func (m *MAC) Piggyback(f *packet.Frame) {
	if f.Kind == packet.KindNbrUpdate {
		return // already carries the full table
	}
	snap := m.Table().Snapshot(m.Engine().Now(), m.opts.PiggybackEntries)
	f.Neighbors = append(f.Neighbors, snap...)
}

// OnSlotStart implements mac.Hooks: periodic two-hop maintenance and
// cleanup of append requests whose primary negotiation died.
func (m *MAC) OnSlotStart(int64) {
	if m.request != nil && m.Role() != mac.RoleWaitCTS && m.Role() != mac.RoleSendData &&
		m.Role() != mac.RoleWaitAck {
		m.request = nil
	}
	m.maybeBroadcastUpdate()
}

func (m *MAC) maybeBroadcastUpdate() {
	now := m.Engine().Now()
	if now.Sub(m.lastUpdate) < m.opts.UpdatePeriod {
		return
	}
	if m.Role() != mac.RoleIdle || m.Held() || m.Modem().Transmitting() {
		return
	}
	if m.Ledger().QuietUntilSlot() > m.Slots().SlotAt(now) {
		return
	}
	upd := m.NewFrame(packet.KindNbrUpdate, packet.Broadcast)
	upd.Neighbors = m.rotatingSnapshot(now, m.opts.MaintenanceEntries)
	if err := m.SendNow(upd); err != nil {
		return
	}
	m.lastUpdate = now
	m.CountersRef().MaintenanceBits += uint64(upd.Bits())
}

// rotatingSnapshot returns up to max entries from the table, starting
// at a cursor that advances each broadcast so the whole two-hop state
// circulates over successive updates without monster frames.
func (m *MAC) rotatingSnapshot(now sim.Time, max int) []packet.NeighborInfo {
	full := m.Table().Snapshot(now, -1)
	if len(full) == 0 {
		return nil
	}
	if len(full) <= max {
		return full
	}
	out := make([]packet.NeighborInfo, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, full[(m.rotCursor+i)%len(full)])
	}
	m.rotCursor = (m.rotCursor + max) % len(full)
	return out
}

// OnContentionLost implements mac.Hooks: plain backoff — ROPA has no
// loser path; opportunism belongs to the sender's neighbors.
func (m *MAC) OnContentionLost(*packet.Frame) {}

// OnNegotiated implements mac.Hooks: the primary sender's CTS arrived;
// grant a pending appended request if the EXC reply fits in the idle
// window before the data slot.
func (m *MAC) OnNegotiated(*packet.Frame) {
	req := m.request
	if req == nil {
		return
	}
	m.request = nil
	now := m.Engine().Now()
	exc := m.NewFrame(packet.KindEXC, req.from)
	exc.DataBits = req.bits
	exc.XID = req.xid
	m.Piggyback(exc)
	if busyAt, busy := m.NextBusyAt(); busy {
		if now.Add(m.FrameTx(exc) + m.opts.Guard).After(busyAt) {
			m.recordExtra(req.from, obs.ExtraDeny, "gap-too-small", req.xid, 0)
			return
		}
	}
	grantAt := m.PrimaryFreeAt().Add(2 * m.opts.Guard)
	exc.GrantAt = grantAt.Duration()
	if err := m.SendNow(exc); err != nil {
		m.recordExtra(req.from, obs.ExtraDeny, "transducer-busy", req.xid, 0)
		return
	}
	m.recordExtra(req.from, obs.ExtraGrant, "", req.xid, 0)
	// Stay off the channel until the appended exchange finishes.
	release := grantAt.Add(m.DataTx(req.bits) + m.ControlTx() + 8*m.opts.Guard)
	m.SetHold(release)
	m.ScheduleClamped(release, sim.PriorityMAC, func() {
		if !m.Held() {
			return
		}
		m.SetHold(m.Engine().Now())
	})
}

// OnOverheard implements mac.Hooks: an overheard RTS from a neighbor we
// have data for opens the appending window.
func (m *MAC) OnOverheard(f *packet.Frame) {
	if f.Kind != packet.KindRTS || m.pending != nil || m.Held() {
		return
	}
	if m.Role() != mac.RoleIdle {
		return
	}
	idx := m.Queue().FirstFor(f.Src)
	if idx < 0 {
		return
	}
	now := m.Engine().Now()
	tau, known := m.Table().Delay(f.Src, now)
	if !known {
		return
	}
	slots := m.Slots()
	rtsSlot := slots.SlotAt(sim.At(f.Timestamp))
	winStart := slots.StartOf(rtsSlot).Add(m.FrameTx(f) + m.opts.Guard)
	// The RTA must be fully received at the sender before its CTS
	// begins arriving.
	winEnd := slots.StartOf(rtsSlot + 1).Add(f.PairDelay - m.opts.Guard)

	pkt := m.Queue().Items()[idx]
	rta := m.NewFrame(packet.KindRTA, f.Src)
	rta.DataBits = pkt.Bits
	rta.XID = m.NewXID()
	m.Piggyback(rta)
	rtaDur := m.FrameTx(rta)

	sendT := now.Add(m.opts.Guard)
	if earliest := winStart.Add(-tau); sendT.Before(earliest) {
		sendT = earliest
	}
	if sendT.Add(tau + rtaDur).After(winEnd) {
		return
	}
	// ROPA knows two-hop state: avoid arriving inside any known
	// receive window.
	for _, n := range m.Ledger().BusyParties() {
		if n == f.Src || n == m.ID() {
			continue
		}
		tn, ok := m.Table().Delay(n, now)
		if !ok {
			return
		}
		iv := mac.Interval{Start: sendT.Add(tn - m.opts.Guard), End: sendT.Add(tn + rtaDur + m.opts.Guard)}
		if m.Ledger().RxConflict(n, iv) {
			return
		}
	}

	st := &rtaState{target: f.Src, pkt: pkt, xid: rta.XID, parent: f.XID}
	m.pending = st
	// The grant (EXC) can only come after the sender receives its CTS:
	// allow until the end of the data slot.
	deadline := slots.StartOf(rtsSlot + 2).Add(slots.Len())
	m.SetHold(deadline)
	m.SendAt(sendT, rta, func(error) { m.abort(st) })
	m.CountersRef().ExtraAttempts++
	m.recordExtra(f.Src, obs.ExtraRequest, "", st.xid, st.parent)
	st.timeout = m.ScheduleClamped(deadline, sim.PriorityMAC, func() {
		if m.pending == st && !st.granted {
			m.abort(st)
		}
	})
}

func (m *MAC) abort(st *rtaState) {
	if m.pending != st {
		return
	}
	st.timeout.Cancel()
	m.pending = nil
	m.SetHold(m.Engine().Now())
}

// recordExtra emits one appending-lifecycle event when observing.
func (m *MAC) recordExtra(peer packet.NodeID, action, reason string, xid, parent uint64) {
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: peer, Action: action, Reason: reason, XID: xid, Parent: parent})
	}
}

// OnExtraFrame implements mac.Hooks.
func (m *MAC) OnExtraFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindRTA:
		// Primary sender: remember the first appended request made
		// while we wait for our CTS.
		if m.Role() == mac.RoleWaitCTS && m.request == nil {
			m.request = &appendReq{from: f.Src, bits: f.DataBits, xid: f.XID}
		}
	case packet.KindEXC:
		m.onGrant(f)
	case packet.KindEXData:
		m.DeliverData(f, true)
		ack := m.NewFrame(packet.KindEXAck, f.Src)
		ack.XID = f.XID
		ack.Seq = f.Seq
		ack.Origin = f.Origin
		_ = m.SendNow(ack)
	case packet.KindEXAck:
		st := m.pending
		if st == nil || f.Src != st.target || f.Seq != st.pkt.Seq {
			return
		}
		m.CountersRef().ExtraCompletions++
		m.recordExtra(f.Src, obs.ExtraComplete, "", st.xid, st.parent)
		m.CompleteBySeq(st.pkt.Origin, st.pkt.Seq)
		m.abort(st)
	default:
	}
}

func (m *MAC) onGrant(f *packet.Frame) {
	st := m.pending
	if st == nil || f.Src != st.target || st.granted {
		return
	}
	m.CountersRef().ExtraGrants++
	now := m.Engine().Now()
	tau, known := m.Table().Delay(st.target, now)
	sendT := sim.At(f.GrantAt).Add(-tau)
	if !known || sendT.Before(now.Add(m.opts.Guard)) {
		m.abort(st)
		return
	}
	// The packet may have been delivered by the primary path meanwhile.
	if m.Queue().FirstFor(st.target) < 0 {
		m.abort(st)
		return
	}
	st.granted = true
	st.timeout.Cancel()
	data := m.NewFrame(packet.KindEXData, st.target)
	data.XID = st.xid
	data.DataBits = st.pkt.Bits
	data.Seq = st.pkt.Seq
	data.Origin = st.pkt.Origin
	data.GeneratedAt = st.pkt.GeneratedAt
	dur := m.DataTx(st.pkt.Bits)
	deadline := sendT.Add(dur + 2*tau + m.ControlTx() + 8*m.opts.Guard)
	m.SetHold(deadline)
	// Re-validate against exchanges negotiated between the grant and
	// the send instant (ROPA maintains two-hop state, so it can).
	m.ScheduleClamped(sendT, sim.PriorityMAC, func() {
		if m.pending != st {
			return
		}
		nowSend := m.Engine().Now()
		for _, n := range m.Ledger().BusyParties() {
			if n == st.target || n == m.ID() {
				continue
			}
			tn, ok := m.Table().Delay(n, nowSend)
			if !ok {
				m.abort(st)
				return
			}
			iv := mac.Interval{Start: nowSend.Add(tn - m.opts.Guard), End: nowSend.Add(tn + dur + m.opts.Guard)}
			if m.Ledger().RxConflict(n, iv) {
				m.abort(st)
				return
			}
		}
		if err := m.SendNow(data); err != nil {
			m.abort(st)
		}
	})
	st.timeout = m.ScheduleClamped(deadline, sim.PriorityMAC, func() {
		if m.pending == st {
			m.abort(st)
		}
	})
}

// PendingRTA reports whether an appended request is in flight (tests).
func (m *MAC) PendingRTA() bool { return m.pending != nil }

// OnRestart implements mac.Hooks: a crashed node forgets its in-flight
// RTA attempt and any appended-request it promised to serve.
func (m *MAC) OnRestart() {
	if m.pending != nil {
		m.pending.timeout.Cancel()
		m.pending = nil
	}
	m.request = nil
}
