// Package csmac implements the Channel Stealing MAC (Chen, Liu, Chang &
// Shih, OCEANS 2011) as characterized in the paper's evaluation (§5):
// a node that overhears a CTS — so it can compute, from the
// piggybacked pair delay, the gap during which the CTS sender sits
// idle waiting for the negotiated data — transmits its own data packet
// for that node *directly*, with no extra negotiation, timed to be
// fully received inside the gap, i.e. before the negotiated packet
// arrives ("send data packets directly after determining that the
// packet will arrive at the receiver before the negotiated packet").
//
// The aggression is the point: at light load stealing is competitive
// with EW-MAC because it skips the EXR/EXC round trip, but CS-MAC does
// not coordinate stealers, so as load grows several neighbors steal
// the same gap and collide (Figure 6), and as density grows the gaps
// themselves shrink below a data transmission time (Figure 7). CS-MAC
// also piggybacks two-hop neighbor state on every control frame and
// refreshes it periodically, the overhead that dominates Figure 10.
package csmac

import (
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Options tune CS-MAC; the zero value matches the evaluation setup.
type Options struct {
	// Guard is the scheduling safety margin (default 2 ms).
	Guard time.Duration
	// UpdatePeriod is the interval between NbrUpdate broadcasts
	// (default 75 s).
	UpdatePeriod time.Duration
	// MaintenanceEntries caps neighbor entries per NbrUpdate broadcast
	// (default 8; entries rotate across broadcasts).
	MaintenanceEntries int
	// PiggybackEntries caps neighbor entries per control frame
	// (default 4 — two-hop state, so heavier than EW-MAC's single
	// pair entry).
	PiggybackEntries int
}

func (o *Options) applyDefaults() {
	if o.Guard <= 0 {
		o.Guard = 2 * time.Millisecond
	}
	if o.UpdatePeriod <= 0 {
		o.UpdatePeriod = 75 * time.Second
	}
	if o.MaintenanceEntries <= 0 {
		o.MaintenanceEntries = 8
	}
	if o.PiggybackEntries <= 0 {
		o.PiggybackEntries = 4
	}
}

type stealState struct {
	pkt     mac.AppPacket
	timeout sim.Handle
	// xid is the steal's exchange lineage; parent is the primary
	// handshake (the overheard CTS) whose gap it steals.
	xid    uint64
	parent uint64
}

// MAC is the CS-MAC protocol.
type MAC struct {
	*mac.Base
	opts       Options
	steal      *stealState
	lastUpdate sim.Time
	rotCursor  int
}

var _ mac.Protocol = (*MAC)(nil)

// New builds a CS-MAC node.
func New(cfg mac.Config, opts Options) (*MAC, error) {
	opts.applyDefaults()
	cfg.LenientGrant = false
	// Control frames carry up to PiggybackEntries neighbor entries.
	cfg.Slots.Pad = packet.Duration(opts.PiggybackEntries*packet.NeighborInfoBits, cfg.BitRate)
	base, err := mac.NewBase(cfg)
	if err != nil {
		return nil, err
	}
	m := &MAC{Base: base, opts: opts}
	base.SetHooks(m)
	// Stagger the periodic maintenance phase per node so updates do not
	// synchronize into collision storms.
	m.lastUpdate = sim.At(-time.Duration(base.RNG().Int63n(int64(opts.UpdatePeriod))))
	return m, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "CS-MAC" }

// PickWinner implements mac.Hooks.
func (m *MAC) PickWinner(cands []*packet.Frame) *packet.Frame {
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// Piggyback implements mac.Hooks: every control frame carries a
// two-hop-state excerpt whose size grows with neighborhood density.
func (m *MAC) Piggyback(f *packet.Frame) {
	if f.Kind == packet.KindNbrUpdate {
		return
	}
	snap := m.Table().Snapshot(m.Engine().Now(), m.opts.PiggybackEntries)
	f.Neighbors = append(f.Neighbors, snap...)
}

// OnSlotStart implements mac.Hooks: periodic maintenance.
func (m *MAC) OnSlotStart(int64) {
	now := m.Engine().Now()
	if now.Sub(m.lastUpdate) < m.opts.UpdatePeriod {
		return
	}
	if m.Role() != mac.RoleIdle || m.Held() || m.Modem().Transmitting() {
		return
	}
	if m.Ledger().QuietUntilSlot() > m.Slots().SlotAt(now) {
		return
	}
	upd := m.NewFrame(packet.KindNbrUpdate, packet.Broadcast)
	upd.Neighbors = m.rotatingSnapshot(now, m.opts.MaintenanceEntries)
	if err := m.SendNow(upd); err != nil {
		return
	}
	m.lastUpdate = now
	m.CountersRef().MaintenanceBits += uint64(upd.Bits())
}

// rotatingSnapshot returns up to max entries from the table, starting
// at a cursor that advances each broadcast so the whole two-hop state
// circulates over successive updates without monster frames.
func (m *MAC) rotatingSnapshot(now sim.Time, max int) []packet.NeighborInfo {
	full := m.Table().Snapshot(now, -1)
	if len(full) == 0 {
		return nil
	}
	if len(full) <= max {
		return full
	}
	out := make([]packet.NeighborInfo, 0, max)
	for i := 0; i < max; i++ {
		out = append(out, full[(m.rotCursor+i)%len(full)])
	}
	m.rotCursor = (m.rotCursor + max) % len(full)
	return out
}

// OnContentionLost implements mac.Hooks.
func (m *MAC) OnContentionLost(*packet.Frame) {}

// OnNegotiated implements mac.Hooks.
func (m *MAC) OnNegotiated(*packet.Frame) {}

// OnOverheard implements mac.Hooks: an overheard CTS opens a stealing
// opportunity. The CTS sender j is about to sit idle for the whole
// CTS→Data propagation gap (period V of the paper's Figure 2); if this
// node has data *for j* whose transmission fits inside that gap — "the
// data packet transmission time is less than the propagation time
// between two packets", the CS-MAC admission rule quoted in the
// paper's §2 — it transmits the data directly, with no negotiation,
// timed to be fully received at j before the negotiated data lands.
// j acknowledges after its negotiated exchange completes.
//
// CS-MAC checks nothing else: in particular it ignores the possibility
// that several of j's neighbors steal the same gap concurrently, which
// is exactly why its throughput collapses under load (Figure 6) and
// why shrinking gaps (denser networks, Figure 7) starve it.
func (m *MAC) OnOverheard(f *packet.Frame) {
	if f.Kind != packet.KindCTS || m.steal != nil || m.Held() {
		return
	}
	if m.Role() != mac.RoleIdle {
		return
	}
	j := f.Src
	tauPair := f.PairDelay
	if tauPair <= 0 {
		return
	}
	idx := m.Queue().FirstFor(j)
	if idx < 0 {
		return
	}
	now := m.Engine().Now()
	tau, known := m.Table().Delay(j, now)
	if !known {
		return
	}
	pkt := m.Queue().Items()[idx]
	dur := m.DataTx(pkt.Bits)

	// Admission: TD must fit inside the pair's propagation gap, and the
	// whole steal must be received at j before the negotiated data
	// lands there.
	if dur+m.opts.Guard > tauPair {
		m.recordExtra(j, obs.ExtraDeny, "gap-too-small", 0, f.XID)
		return
	}
	slots := m.Slots()
	ctsSlot := slots.SlotAt(sim.At(f.Timestamp))
	dataLands := slots.StartOf(ctsSlot + 1).Add(tauPair)
	sendT := now.Add(m.opts.Guard)
	if sendT.Add(tau + dur + m.opts.Guard).After(dataLands) {
		m.recordExtra(j, obs.ExtraDeny, "too-late", 0, f.XID)
		return
	}

	data := m.NewFrame(packet.KindStolenData, j)
	data.XID = m.NewXID()
	data.DataBits = pkt.Bits
	data.Seq = pkt.Seq
	data.Origin = pkt.Origin
	data.GeneratedAt = pkt.GeneratedAt
	st := &stealState{pkt: pkt, xid: data.XID, parent: f.XID}
	m.steal = st
	// j acknowledges only after its negotiated exchange: wait through
	// that exchange's ack slot plus the return propagation.
	ackSlot := slots.AckSlot(ctsSlot+1, m.DataTx(f.DataBits), tauPair)
	deadline := slots.StartOf(ackSlot + 1).Add(tau + m.ControlTx() + 8*m.opts.Guard)
	m.SetHold(deadline)
	m.SendAt(sendT, data, func(error) { m.abort(st, false) })
	m.CountersRef().ExtraAttempts++
	m.recordExtra(j, obs.ExtraRequest, "", st.xid, st.parent)
	st.timeout = m.ScheduleClamped(deadline, sim.PriorityMAC, func() {
		if m.steal == st {
			m.abort(st, true)
		}
	})
}

// abort clears the steal; failed counts the lost data as a
// retransmission (the payload went on air and must be sent again).
func (m *MAC) abort(st *stealState, failed bool) {
	if m.steal != st {
		return
	}
	if failed {
		m.CountersRef().Retransmissions++
		m.CountersRef().RetransmittedBits += uint64(st.pkt.Bits)
		m.recordExtra(st.pkt.Dst, obs.ExtraAbort, "steal-unacked", st.xid, st.parent)
	}
	st.timeout.Cancel()
	m.steal = nil
	m.SetHold(m.Engine().Now())
}

// OnExtraFrame implements mac.Hooks.
func (m *MAC) OnExtraFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindStolenData:
		m.DeliverData(f, true)
		ack := m.NewFrame(packet.KindEXAck, f.Src)
		ack.XID = f.XID
		ack.Seq = f.Seq
		ack.Origin = f.Origin
		// The stolen data landed in this node's waiting window; the
		// acknowledgement must wait until the negotiated exchange is
		// over or it would occupy the transducer when the negotiated
		// data arrives.
		at := m.PrimaryFreeAt().Add(m.opts.Guard)
		if at.Before(m.Engine().Now()) {
			at = m.Engine().Now()
		}
		m.SendAt(at, ack, nil)
	case packet.KindEXAck:
		st := m.steal
		if st == nil || f.Seq != st.pkt.Seq {
			return
		}
		m.CountersRef().ExtraCompletions++
		m.recordExtra(f.Src, obs.ExtraComplete, "", st.xid, st.parent)
		m.CompleteBySeq(st.pkt.Origin, st.pkt.Seq)
		m.abort(st, false)
	default:
	}
}

// recordExtra emits one stealing-lifecycle event when observing.
func (m *MAC) recordExtra(peer packet.NodeID, action, reason string, xid, parent uint64) {
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: peer, Action: action, Reason: reason, XID: xid, Parent: parent})
	}
}

// StealActive reports whether a steal is in flight (tests).
func (m *MAC) StealActive() bool { return m.steal != nil }

// OnRestart implements mac.Hooks: a crashed node forgets its in-flight
// steal.
func (m *MAC) OnRestart() {
	if m.steal != nil {
		m.steal.timeout.Cancel()
		m.steal = nil
	}
}
