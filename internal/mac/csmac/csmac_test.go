package csmac

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

type rig struct {
	eng  *sim.Engine
	macs []*MAC
}

func newRig(t *testing.T, seed int64, positions ...vec.V3) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, len(positions))
	for i, p := range positions {
		nodes[i] = &topology.Node{ID: packet.NodeID(i + 1), Pos: p}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}
	r := &rig{eng: eng}
	for i := range positions {
		modem, err := phy.NewModem(phy.Config{
			ID:     packet.NodeID(i + 1),
			Engine: eng,
			Model:  model,
			Medium: ch,
			Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(modem); err != nil {
			t.Fatal(err)
		}
		m, err := New(mac.Config{
			ID:          packet.NodeID(i + 1),
			Engine:      eng,
			Modem:       modem,
			Slots:       slots,
			BitRate:     model.BitRate(),
			EnableHello: true,
			HelloWindow: 5 * time.Second,
		}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		modem.SetListener(m)
		r.macs = append(r.macs, m)
		m.Start()
	}
	return r
}

func (r *rig) enqueueAt(at time.Duration, from int, dst packet.NodeID, bits int) {
	m := r.macs[from-1]
	r.eng.MustScheduleAt(sim.At(at), sim.PriorityApp, func() {
		m.Enqueue(mac.AppPacket{Dst: dst, Bits: bits})
	})
}

// TestChannelStealing: while s (2) and j (1) run a negotiated exchange
// across a long (large-τ) link, bystander i (3) with data for j
// overhears the CTS and steals j's CTS→Data waiting gap, delivering
// directly without negotiation; j acknowledges after its exchange.
func TestChannelStealing(t *testing.T) {
	r := newRig(t, 2,
		vec.V3{X: 0, Y: 0, Z: 100},     // 1 = j (receiver of the negotiated exchange)
		vec.V3{X: 1100, Y: 0, Z: 300},  // 2 = s (primary sender; far → big gap)
		vec.V3{X: 200, Y: 300, Z: 500}, // 3 = i (stealer with data for j)
	)
	// s's packet queued first; i's arrives mid-slot so i is idle when
	// the CTS is overheard.
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.enqueueAt(9100*time.Millisecond, 3, 1, 2048)
	r.eng.RunUntil(sim.At(60 * time.Second))

	if got := r.macs[0].Counters().DeliveredPackets; got != 2 {
		t.Errorf("j delivered %d, want 2 (negotiated + stolen)", got)
	}
	i := r.macs[2].Counters()
	t.Logf("stealer: attempts=%d completions=%d", i.ExtraAttempts, i.ExtraCompletions)
	if i.ExtraAttempts == 0 {
		t.Fatal("no steal was attempted")
	}
	if i.ExtraCompletions == 0 {
		t.Fatal("steal attempted but never completed")
	}
	if r.macs[0].Counters().ExtraDeliveredPackets == 0 {
		t.Fatal("delivery did not go through the stolen path")
	}
}

// TestStealRefusedWhenGapTooSmall: the negotiated pair sit close
// together, so the CTS→Data gap is shorter than the data transmission
// time and the admission rule must refuse the steal.
func TestStealRefusedWhenGapTooSmall(t *testing.T) {
	r := newRig(t, 2,
		vec.V3{X: 0, Y: 0, Z: 100},     // 1 = j
		vec.V3{X: 150, Y: 0, Z: 300},   // 2 = s, 250 m from j: τ ≈ 0.17 s < TD
		vec.V3{X: 200, Y: 300, Z: 500}, // 3 = i with data for j
	)
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.enqueueAt(9100*time.Millisecond, 3, 1, 2048)
	r.eng.RunUntil(sim.At(14 * time.Second))
	if got := r.macs[2].Counters().ExtraAttempts; got != 0 {
		t.Errorf("steal attempted %d times into a too-small gap, want 0", got)
	}
}
