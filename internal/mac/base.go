package mac

import (
	"errors"
	"fmt"
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// Role is the node's position in its own primary handshake.
type Role uint8

// Primary handshake roles (the state-transfer diagram of Figure 3,
// with the "quiet" condition derived from the ledger instead of being
// a distinct state, and the extra-communication states delegated to
// protocol hooks).
const (
	// RoleIdle: no handshake in progress.
	RoleIdle Role = iota + 1
	// RoleWaitCTS: sent an RTS, waiting for the CTS slot.
	RoleWaitCTS
	// RoleSendData: negotiated as sender; data goes out at DataSlot.
	RoleSendData
	// RoleWaitAck: data sent, waiting for the Ack slot.
	RoleWaitAck
	// RoleWaitData: granted a CTS, waiting to receive data.
	RoleWaitData
)

// String implements fmt.Stringer.
func (r Role) String() string {
	switch r {
	case RoleIdle:
		return "idle"
	case RoleWaitCTS:
		return "wait-cts"
	case RoleSendData:
		return "send-data"
	case RoleWaitAck:
		return "wait-ack"
	case RoleWaitData:
		return "wait-data"
	default:
		return fmt.Sprintf("Role(%d)", uint8(r))
	}
}

// Hooks customize the shared engine per protocol. All methods run on
// the simulation goroutine.
type Hooks interface {
	// PickWinner chooses among RTS frames received in one slot
	// (S-FAMA: first arrival; EW-MAC: highest random priority).
	PickWinner(cands []*packet.Frame) *packet.Frame
	// Piggyback may attach neighbor info to an outgoing control frame
	// (CS-MAC/ROPA two-hop state; EW-MAC pair info).
	Piggyback(f *packet.Frame)
	// OnSlotStart runs at each slot boundary after base duties.
	OnSlotStart(slot int64)
	// OnContentionLost fires when this node, in RoleWaitCTS toward
	// cause.Src, learns its target negotiated with someone else
	// (cause is the overheard RTS or CTS from the target). EW-MAC
	// launches its extra-communication request here.
	OnContentionLost(cause *packet.Frame)
	// OnNegotiated fires when this node's RTS is answered (cts is the
	// received CTS). ROPA grants pending appended requests here.
	OnNegotiated(cts *packet.Frame)
	// OnOverheard sees every decoded frame not addressed to this node,
	// after base bookkeeping (table, ledger).
	OnOverheard(f *packet.Frame)
	// OnExtraFrame handles extra-communication frames addressed to
	// this node (EXR, EXC, EXData, EXAck, RTA, StolenData).
	OnExtraFrame(f *packet.Frame)
	// OnRestart fires when the node cold-starts after a crash/recovery
	// cycle: protocol-private exchange state must be dropped, since the
	// node has forgotten every negotiation it was party to.
	OnRestart()
}

// Config assembles a Base.
type Config struct {
	ID     packet.NodeID
	Engine *sim.Engine
	Modem  *phy.Modem
	Slots  SlotConfig
	// BitRate is the shared modem bit rate (bits/s).
	BitRate float64
	// IsSink marks pure receivers.
	IsSink bool
	// QueueMax bounds the transmit queue (0 = unbounded).
	QueueMax int
	// MaxRetries drops a packet after this many failed rounds
	// (0 = retry forever).
	MaxRetries int
	// CWMin / CWMax bound the binary-exponential backoff window, in
	// slots.
	CWMin, CWMax int
	// EnableHello broadcasts a Hello at a random instant inside
	// HelloWindow so neighbors learn pairwise delays (paper §4.3).
	EnableHello bool
	HelloWindow time.Duration
	// TableTTL ages out delay estimates (0 = never).
	TableTTL time.Duration
	// RPBoostCap is the wait-slots count at which the random priority
	// boost saturates (paper §3.1: rp reflects contention/wait time).
	RPBoostCap int64
	// LenientGrant lets a receiver answer an RTS addressed to it even
	// when it overheard other (unconfirmed) RTS attempts in the same
	// contention slot. Slotted-FAMA-derived protocols defer on any
	// overheard RTS; EW-MAC instead arbitrates by random priority.
	LenientGrant bool
	// Recorder is the observability event sink; nil (the default)
	// disables all MAC-level event emission at the cost of one branch
	// per emission site.
	Recorder obs.Recorder
	// Clock is the node's local oscillator; nil means a perfect clock
	// (local time == simulation time). A drifting clock shifts this
	// node's slot boundaries and frame timestamps.
	Clock Clock
	// EnableProbe lets the node send unicast Hello probes to refresh
	// individual delay-table entries on demand (stale-table recovery),
	// and answer probes addressed to it.
	EnableProbe bool
	// ProbeMinGap rate-limits probes per peer (default 10 s).
	ProbeMinGap time.Duration
	// Recovery arms per-peer liveness tracking and the stuck-state
	// watchdog; disabled by default (see RecoveryConfig).
	Recovery RecoveryConfig
	// Overload configures queue drop policies, admission control, and
	// retry budgets; the zero value disables all of them and keeps the
	// pre-overload behaviour bit-identical (see OverloadConfig).
	Overload OverloadConfig
}

func (c *Config) applyDefaults() {
	if c.CWMin <= 0 {
		c.CWMin = 2
	}
	if c.CWMax < c.CWMin {
		// In a saturated single broadcast domain a successful handshake
		// needs a slot with exactly one RTS; the window must be able to
		// grow to the same order as the contender population.
		c.CWMax = 128
	}
	if c.RPBoostCap <= 0 {
		c.RPBoostCap = 16
	}
	if c.HelloWindow <= 0 {
		c.HelloWindow = 10 * time.Second
	}
	if c.ProbeMinGap <= 0 {
		c.ProbeMinGap = 10 * time.Second
	}
	if c.Recovery.Enabled {
		c.Recovery.applyDefaults()
	}
	c.Overload.applyDefaults()
}

// Validate reports the first invalid field.
func (c Config) Validate() error {
	switch {
	case c.ID == packet.Nobody || c.ID == packet.Broadcast:
		return fmt.Errorf("mac: invalid node ID %v", c.ID)
	case c.Engine == nil:
		return errors.New("mac: nil engine")
	case c.Modem == nil:
		return errors.New("mac: nil modem")
	case c.BitRate <= 0:
		return fmt.Errorf("mac: bit rate %v", c.BitRate)
	}
	if err := c.Overload.Validate(c.QueueMax); err != nil {
		return err
	}
	return c.Slots.Validate()
}

// Base is the shared slotted four-way-handshake engine. Protocol
// implementations embed *Base and provide Hooks.
type Base struct {
	cfg   Config
	hooks Hooks
	rng   *sim.RNG

	table  *NeighborTable
	ledger *Ledger
	queue  Queue

	role Role
	// Sender-side state.
	cur         AppPacket
	hasCur      bool
	curAttempts int
	rtsSlot     int64
	dataSlot    int64
	ackDeadline int64
	curTau      time.Duration
	backoffLeft int
	cw          int
	headSince   int64
	seq         uint32
	// Receiver-side state.
	rtsCands    map[int64][]*packet.Frame
	rxDataSlot  int64
	rxSender    packet.NodeID
	rxDataTx    time.Duration
	rxTau       time.Duration
	rxAckSlot   int64
	rxGotData   bool
	rxDataFrame *packet.Frame
	// holdUntil suspends contention and CTS granting while an
	// extra-communication exchange owns the transducer's near future.
	holdUntil sim.Time
	// xidSeq allocates exchange-lineage IDs; curXID/rxXID are the
	// lineage of the in-flight sender/receiver handshake.
	xidSeq uint64
	curXID uint64
	rxXID  uint64
	// seen dedupes retransmitted payloads: origin<<32|seq.
	seen map[uint64]struct{}
	// lastProbe rate-limits unicast delay probes per peer.
	lastProbe map[packet.NodeID]sim.Time
	// Liveness state (see liveness.go): consecutive failed handshakes
	// per peer, the resulting verdicts, and the slot the current role
	// was entered at (watchdog input).
	peerFails map[packet.NodeID]int
	peerState map[packet.NodeID]PeerState
	roleSlot  int64
	// Overload-protection state (see overload.go): the hysteresis
	// admission gate and the per-node retry token bucket.
	gate   AdmissionGate
	bucket RetryBucket

	counters Counters
	started  bool
	nextSlot int64
}

// NewBase validates cfg and returns an engine (hooks must be set with
// SetHooks before Start).
func NewBase(cfg Config) (*Base, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg.applyDefaults()
	b := &Base{
		cfg:       cfg,
		rng:       cfg.Engine.RNG(fmt.Sprintf("mac/%d", cfg.ID)),
		table:     NewNeighborTable(cfg.TableTTL),
		ledger:    NewLedger(cfg.Slots),
		role:      RoleIdle,
		rtsCands:  make(map[int64][]*packet.Frame),
		seen:      make(map[uint64]struct{}),
		lastProbe: make(map[packet.NodeID]sim.Time),
		peerFails: make(map[packet.NodeID]int),
		peerState: make(map[packet.NodeID]PeerState),
		gate:      NewAdmissionGate(cfg),
		bucket:    NewRetryBucket(cfg),
		cw:        cfg.CWMin,
	}
	b.queue = NewQueue(cfg,
		func() time.Duration { return cfg.Engine.Now().Duration() },
		b.dropPacket, b.queueEvent)
	return b, nil
}

// SetHooks installs the protocol behaviour. Must precede Start.
func (b *Base) SetHooks(h Hooks) { b.hooks = h }

// Accessors used by protocol implementations and tests.

// ID returns the node ID.
func (b *Base) ID() packet.NodeID { return b.cfg.ID }

// Engine returns the simulation engine.
func (b *Base) Engine() *sim.Engine { return b.cfg.Engine }

// Modem returns the PHY.
func (b *Base) Modem() *phy.Modem { return b.cfg.Modem }

// Slots returns the slot geometry.
func (b *Base) Slots() SlotConfig { return b.cfg.Slots }

// BitRate returns the modem bit rate.
func (b *Base) BitRate() float64 { return b.cfg.BitRate }

// Table returns the one-hop delay table.
func (b *Base) Table() *NeighborTable { return b.table }

// Ledger returns the overheard-negotiation ledger.
func (b *Base) Ledger() *Ledger { return b.ledger }

// Queue returns the transmit queue.
func (b *Base) Queue() *Queue { return &b.queue }

// RNG returns this node's deterministic random stream.
func (b *Base) RNG() *sim.RNG { return b.rng }

// Role returns the current primary-handshake role.
func (b *Base) Role() Role { return b.role }

// Observing reports whether an observability recorder is attached.
// Emission sites use it to skip event construction entirely when
// observability is off.
func (b *Base) Observing() bool { return b.cfg.Recorder != nil }

// recNow returns the recorder and current instant, shaped so emission
// sites read obs.X{...}.Emit(b.recNow()) and go through the pooled,
// non-boxing record path. The recorder may be nil; Emit drops the
// event without constructing a record.
func (b *Base) recNow() (obs.Recorder, sim.Time) {
	return b.cfg.Recorder, b.cfg.Engine.Now()
}

// EmitExtra records one extra-communication lifecycle event at the
// current instant. Protocol implementations use it for their own
// extra-phase events.
func (b *Base) EmitExtra(v obs.Extra) { v.Emit(b.recNow()) }

// setRole switches the primary-handshake role, recording the
// transition when observability is on.
func (b *Base) setRole(to Role) {
	if to != b.role {
		now := b.cfg.Engine.Now()
		if r := b.cfg.Recorder; r != nil {
			obs.MACState{
				Node: b.cfg.ID,
				From: b.role.String(),
				To:   to.String(),
				Slot: b.cfg.Slots.SlotAt(now),
			}.Emit(r, now)
		}
		b.roleSlot = b.cfg.Slots.SlotAt(now)
	}
	b.role = to
}

// Counters implements Protocol.
func (b *Base) Counters() Counters { return b.counters }

// CountersRef gives protocol hooks mutable access to the counters.
func (b *Base) CountersRef() *Counters { return &b.counters }

// QueueLen implements Protocol.
func (b *Base) QueueLen() int { return b.queue.Len() }

// NewXID allocates a fresh exchange-lineage ID, unique across the run:
// the high half is the node, the low half a per-node counter. It draws
// no randomness, so allocating (or not) never shifts the RNG streams
// behind the determinism guarantees.
func (b *Base) NewXID() uint64 {
	b.xidSeq++
	return uint64(b.cfg.ID)<<32 | b.xidSeq
}

// SetHold suspends base contention and CTS granting until t; protocols
// use it while an extra exchange owns the near future. Zero clears.
func (b *Base) SetHold(t sim.Time) { b.holdUntil = t }

// Held reports whether the base is currently suspended.
func (b *Base) Held() bool { return b.cfg.Engine.Now() < b.holdUntil }

// ControlTx returns the worst-case on-air time of this protocol's
// control frames (ω plus piggyback padding).
func (b *Base) ControlTx() time.Duration { return b.cfg.Slots.CtrlDur() }

// FrameTx returns the exact on-air time of f at the shared rate.
func (b *Base) FrameTx(f *packet.Frame) time.Duration {
	return f.TxDuration(b.cfg.BitRate)
}

// DataTx returns the on-air time of a data frame carrying bits payload.
func (b *Base) DataTx(bits int) time.Duration {
	return packet.Duration(packet.DataHeaderBits+bits, b.cfg.BitRate)
}

// Start implements Protocol: arms the slot loop and the Hello phase.
func (b *Base) Start() {
	if b.started {
		return
	}
	if b.hooks == nil {
		panic("mac: Start before SetHooks")
	}
	b.started = true
	if b.cfg.EnableHello {
		off := time.Duration(b.rng.Int63n(int64(b.cfg.HelloWindow)))
		b.cfg.Engine.ScheduleIn(off, sim.PriorityMAC, b.sendHello)
	}
	now := b.cfg.Engine.Now()
	b.nextSlot = b.cfg.Slots.SlotAt(now)
	if b.cfg.Slots.StartOf(b.nextSlot) != now {
		b.nextSlot++
	}
	b.scheduleNextSlot()
}

func (b *Base) scheduleNextSlot() {
	slot := b.nextSlot
	b.nextSlot++
	at := b.cfg.Slots.StartOf(slot)
	if b.cfg.Clock != nil {
		// The node fires the boundary where its *local* clock claims
		// slot start is; drift shifts it relative to the true grid. A
		// clock corrected backwards can map the boundary into the past —
		// the node is simply late, not entitled to time travel.
		at = b.cfg.Clock.TrueTime(at.Duration())
		if now := b.cfg.Engine.Now(); at.Before(now) {
			at = now
		}
	}
	b.cfg.Engine.MustScheduleAt(at, sim.PriorityMAC, func() {
		b.onSlotStart(slot)
		b.scheduleNextSlot()
	})
}

func (b *Base) sendHello() {
	f := b.NewFrame(packet.KindHello, packet.Broadcast)
	if err := b.SendNow(f); err == nil {
		b.counters.MaintenanceBits += uint64(f.Bits())
	}
}

// Probe sends a unicast Hello to peer to refresh its delay-table entry
// (the peer answers with a unicast NbrUpdate, whose timestamp gives
// this node a fresh measurement). Probes are rate-limited per peer by
// ProbeMinGap and reported in Counters.Probes. Returns whether a probe
// went on air.
func (b *Base) Probe(peer packet.NodeID) bool {
	if !b.cfg.EnableProbe || peer == packet.Nobody || peer == packet.Broadcast {
		return false
	}
	now := b.cfg.Engine.Now()
	if last, ok := b.lastProbe[peer]; ok && now.Sub(last) < b.cfg.ProbeMinGap {
		return false
	}
	if b.cfg.Modem.Transmitting() {
		return false
	}
	f := b.NewFrame(packet.KindHello, peer)
	if err := b.SendNow(f); err != nil {
		return false
	}
	b.lastProbe[peer] = now
	b.counters.Probes++
	b.counters.MaintenanceBits += uint64(f.Bits())
	return true
}

// replyProbe answers a unicast Hello probe with a unicast NbrUpdate.
// The reply kind is deliberately not another Hello so probes can never
// ping-pong. A busy transducer silently drops the reply; the prober's
// rate limiter will retry later.
func (b *Base) replyProbe(peer packet.NodeID) {
	f := b.NewFrame(packet.KindNbrUpdate, peer)
	if err := b.SendNow(f); err == nil {
		b.counters.MaintenanceBits += uint64(f.Bits())
	}
}

// Restart cold-starts the node after a crash/recovery cycle: every
// piece of soft state a real node keeps in RAM — handshake role,
// backoff, learned delay table, overheard-negotiation ledger, pending
// RTS candidates, holds — is dropped, and the protocol hook clears its
// own exchange state. The transmit queue, delivered-payload dedupe set,
// and counters survive: they model the application buffer and the
// metrics plane, not the MAC's volatile state.
func (b *Base) Restart() {
	b.setRole(RoleIdle)
	b.queue.UnlockHead()
	b.hasCur = false
	b.curAttempts = 0
	b.backoffLeft = 0
	b.cw = b.cfg.CWMin
	b.rtsCands = make(map[int64][]*packet.Frame)
	b.rxSender = packet.Nobody
	b.rxDataFrame = nil
	b.rxGotData = false
	b.holdUntil = 0
	b.curXID = 0
	b.rxXID = 0
	b.table.Clear()
	b.ledger.Clear()
	b.lastProbe = make(map[packet.NodeID]sim.Time)
	// A cold-started node has forgotten its liveness history too: every
	// peer is presumed alive until it fails again.
	b.peerFails = make(map[packet.NodeID]int)
	b.peerState = make(map[packet.NodeID]PeerState)
	b.headSince = b.cfg.Slots.SlotAt(b.cfg.Engine.Now())
	if b.hooks != nil {
		b.hooks.OnRestart()
	}
}

// NewFrame builds a frame from this node with the timestamp left to be
// stamped at transmission (SendNow fills it).
func (b *Base) NewFrame(kind packet.Kind, dst packet.NodeID) *packet.Frame {
	return &packet.Frame{Kind: kind, Src: b.cfg.ID, Dst: dst}
}

// SendNow stamps and transmits f immediately. Control frames pass
// through the Piggyback hook first.
func (b *Base) SendNow(f *packet.Frame) error {
	if f.Kind.IsControl() && b.hooks != nil {
		b.hooks.Piggyback(f)
	}
	f.Timestamp = b.LocalNow().Duration()
	return b.cfg.Modem.Transmit(f)
}

// SendAt schedules f for transmission at instant t (stamped then). An
// instant already in the past — possible when t was derived from a
// drifted peer's frame timestamp — degrades to sending immediately.
func (b *Base) SendAt(t sim.Time, f *packet.Frame, onErr func(error)) {
	b.ScheduleClamped(t, sim.PriorityMAC, func() {
		if err := b.SendNow(f); err != nil && onErr != nil {
			onErr(err)
		}
	})
}

// ScheduleClamped schedules fn at t, clamped to now if t is already
// past. Protocol timers computed from received frame timestamps must
// use this instead of Engine.MustScheduleAt: under injected clock
// drift a peer's stamp can place a deadline behind the present, and
// the graceful degradation is a timer that fires at once, not a
// panicking engine.
func (b *Base) ScheduleClamped(t sim.Time, prio sim.Priority, fn func()) sim.Handle {
	if now := b.cfg.Engine.Now(); t.Before(now) {
		t = now
	}
	return b.cfg.Engine.MustScheduleAt(t, prio, fn)
}

// Enqueue implements Protocol.
func (b *Base) Enqueue(p AppPacket) {
	if p.Origin == packet.Nobody {
		p.Origin = b.cfg.ID
	}
	if p.Seq == 0 {
		b.seq++
		p.Seq = b.seq
	}
	// Every offered packet counts as generated — it is real demand —
	// whether it queues or is refused with a typed drop below.
	b.counters.Generated++
	if b.cfg.Recovery.Enabled && b.peerState[p.Dst] == PeerDead {
		// Never queue up behind a corpse.
		b.dropPacket(p, obs.DropDeadPeer)
		return
	}
	if ttl := b.cfg.Overload.PacketTTL; ttl > 0 && p.Deadline == 0 {
		p.Deadline = p.GeneratedAt + ttl
	}
	if b.gate.Enabled() && !(b.cfg.Overload.Priority && p.High) {
		closed, changed := b.gate.Update(b.queue.Len())
		if changed {
			if closed {
				b.emitOverload(obs.OverloadShedBegin)
			} else {
				b.emitOverload(obs.OverloadShedEnd)
			}
		}
		if closed {
			b.dropPacket(p, obs.DropShed)
			return
		}
	}
	if !b.queue.Push(p) {
		b.dropPacket(p, obs.DropQueueFull)
	}
}

// Backpressure reports whether the admission gate is currently closed,
// re-evaluated against live occupancy. Closed-loop traffic generators
// consult it to throttle offered load at the source; always false when
// admission control is not configured.
func (b *Base) Backpressure() bool {
	if !b.gate.Enabled() {
		return false
	}
	closed, changed := b.gate.Update(b.queue.Len())
	if changed {
		if closed {
			b.emitOverload(obs.OverloadShedBegin)
		} else {
			b.emitOverload(obs.OverloadShedEnd)
		}
	}
	return closed
}

// emitOverload records one overload-protection lifecycle step.
func (b *Base) emitOverload(action string) {
	if r := b.cfg.Recorder; r != nil {
		obs.Overload{Node: b.cfg.ID, Action: action, Len: b.queue.Len()}.Emit(r, b.cfg.Engine.Now())
	}
}

// queueEvent observes transmit-queue occupancy changes (the Queue's
// OnEvent hook): depth after each push/pop, plus the serviced packet's
// generation→dequeue sojourn on pop.
func (b *Base) queueEvent(pushed bool, p AppPacket) {
	r := b.cfg.Recorder
	if r == nil {
		return
	}
	now := b.cfg.Engine.Now()
	ev := obs.QueueDepth{Node: b.cfg.ID, Len: b.queue.Len(), Op: obs.QueuePush}
	if !pushed {
		ev.Op = obs.QueuePop
		ev.Sojourn = now.Duration() - p.GeneratedAt
	}
	ev.Emit(r, now)
}

// ---- Slot engine ----

func (b *Base) onSlotStart(s int64) {
	b.ledger.Prune(s)

	// 0. Stuck-state watchdog (no-op unless recovery is enabled).
	b.watchdogCheck(s)

	// 1. Receiver: answer last slot's RTS contention.
	b.receiverGrant(s)

	// 2. Sender timeline.
	switch b.role {
	case RoleWaitCTS:
		if s >= b.rtsSlot+2 {
			// No CTS arrived: contention failed.
			b.counters.ContentionFailures++
			if b.Observing() {
				obs.Contention{Node: b.cfg.ID, Peer: b.cur.Dst, Outcome: obs.ContentionTimeout, Slot: s, XID: b.curXID}.Emit(b.recNow())
			}
			b.failRound(s)
		}
	case RoleSendData:
		if s == b.dataSlot {
			b.transmitData(s)
		}
	case RoleWaitAck:
		if s >= b.ackDeadline {
			b.counters.Retransmissions++
			b.counters.RetransmittedBits += uint64(b.cur.Bits)
			b.failRound(s)
		}
	case RoleWaitData:
		if s == b.rxAckSlot {
			b.finishReceive(s)
		}
	case RoleIdle:
		// Fall through to contention.
	}

	// 3. Contention.
	b.maybeContend(s)

	// 4. Protocol extension point.
	b.hooks.OnSlotStart(s)

	// Drop stale RTS candidate buckets.
	for slot := range b.rtsCands {
		if slot < s-1 {
			delete(b.rtsCands, slot)
		}
	}
}

func (b *Base) receiverGrant(s int64) {
	cands := b.rtsCands[s-1]
	if len(cands) == 0 {
		return
	}
	delete(b.rtsCands, s-1)
	if b.role != RoleIdle || b.Held() {
		return
	}
	quiet := b.ledger.QuietUntilSlot()
	if b.cfg.LenientGrant {
		quiet = b.ledger.QuietUntilSlotConfirmed()
	}
	if quiet > s {
		return
	}
	winner := b.hooks.PickWinner(cands)
	if winner == nil {
		return
	}
	now := b.cfg.Engine.Now()
	tau, ok := b.table.Delay(winner.Src, now)
	if !ok {
		tau = b.cfg.Slots.TauMax
	}
	cts := b.NewFrame(packet.KindCTS, winner.Src)
	cts.PairDelay = tau
	cts.DataBits = winner.DataBits
	cts.XID = winner.XID
	if err := b.SendNow(cts); err != nil {
		return
	}
	b.rxXID = winner.XID
	b.counters.CTSSent++
	if b.Observing() {
		obs.Contention{Node: b.cfg.ID, Peer: winner.Src, Outcome: obs.ContentionGrant, Slot: s, XID: winner.XID}.Emit(b.recNow())
		obs.SlotPeriod{Node: b.cfg.ID, Peer: winner.Src, Period: "II", Slot: s}.Emit(b.recNow())
	}
	b.setRole(RoleWaitData)
	b.rxDataSlot = s + 1
	b.rxSender = winner.Src
	b.rxDataTx = b.DataTx(winner.DataBits)
	b.rxTau = tau
	b.rxGotData = false
	b.rxDataFrame = nil
	b.rxAckSlot = b.cfg.Slots.AckSlot(s+1, b.rxDataTx, tau)
}

func (b *Base) maybeContend(s int64) {
	if b.role != RoleIdle || b.cfg.IsSink || b.Held() {
		return
	}
	head, ok := b.queue.Peek()
	if !ok {
		b.headSince = s
		return
	}
	if b.cfg.Recovery.Enabled && b.peerState[head.Dst] == PeerDead {
		// Never contend toward a corpse: the head is abandoned with a
		// typed reason rather than burning rounds into a void.
		b.queue.Pop()
		b.dropPacket(head, obs.DropDeadPeer)
		b.headSince = s
		return
	}
	if b.curAttempts > 0 &&
		(b.cfg.Overload.Priority || b.cfg.Overload.Policy == DropDeadline) &&
		(head.Origin != b.cur.Origin || head.Seq != b.cur.Seq) {
		// The backlog was reshuffled between failed rounds (a priority
		// insert or a deadline eviction changed the head): the failure
		// history belongs to the old head, not this packet.
		b.curAttempts = 0
		b.headSince = s
	}
	if b.ledger.QuietUntilSlot() > s {
		// The channel is reserved: freeze the backoff counter (802.11
		// semantics). Counting down only in free slots desynchronizes
		// contenders after an exchange ends; counting in wall-clock
		// slots would release every backlogged node at once and
		// collapse throughput under load.
		return
	}
	if b.cfg.Modem.Transmitting() || b.cfg.Modem.Receiving() {
		return
	}
	if b.backoffLeft > 0 {
		b.backoffLeft--
		return
	}
	if b.curAttempts > 0 && !b.bucket.Allow(s) {
		// A retry with an empty retry budget: defer to a later slot
		// (the lazy refill will eventually allow it) instead of adding
		// this node to a fleet-wide retry storm. First attempts are
		// never gated.
		b.counters.RetryDeferrals++
		b.emitOverload(obs.OverloadRetryDefer)
		return
	}
	now := b.cfg.Engine.Now()
	tau, known := b.table.Delay(head.Dst, now)
	if !known {
		tau = b.cfg.Slots.TauMax
	}
	rts := b.NewFrame(packet.KindRTS, head.Dst)
	rts.DataBits = head.Bits
	rts.PairDelay = tau
	rts.RP = b.randomPriority(s)
	rts.XID = b.NewXID()
	if err := b.SendNow(rts); err != nil {
		return
	}
	b.curXID = rts.XID
	b.counters.RTSSent++
	if b.Observing() {
		obs.Contention{Node: b.cfg.ID, Peer: head.Dst, Outcome: obs.ContentionRTS, Slot: s, XID: rts.XID}.Emit(b.recNow())
		obs.SlotPeriod{Node: b.cfg.ID, Peer: head.Dst, Period: "I", Slot: s}.Emit(b.recNow())
	}
	b.setRole(RoleWaitCTS)
	// The head is now in flight: pin it against every shedding scan
	// until the round resolves.
	b.queue.LockHead()
	b.cur = head
	b.hasCur = true
	b.rtsSlot = s
	b.curTau = tau
}

// randomPriority implements the paper's rp: a random value boosted by
// how long the head packet has waited, so starved nodes eventually win
// receiver arbitration.
func (b *Base) randomPriority(s int64) float64 {
	wait := s - b.headSince
	if wait < 0 {
		wait = 0
	}
	if wait > b.cfg.RPBoostCap {
		wait = b.cfg.RPBoostCap
	}
	return b.rng.Float64() + float64(wait)/float64(b.cfg.RPBoostCap)
}

func (b *Base) transmitData(s int64) {
	if !b.hasCur {
		b.setRole(RoleIdle)
		return
	}
	f := b.NewFrame(packet.KindData, b.cur.Dst)
	f.DataBits = b.cur.Bits
	f.Seq = b.cur.Seq
	f.Origin = b.cur.Origin
	f.GeneratedAt = b.cur.GeneratedAt
	f.PairDelay = b.curTau
	f.XID = b.curXID
	if err := b.SendNow(f); err != nil {
		b.failRound(s)
		return
	}
	if b.Observing() {
		obs.SlotPeriod{Node: b.cfg.ID, Peer: b.cur.Dst, Period: "IV", Slot: s}.Emit(b.recNow())
	}
	b.setRole(RoleWaitAck)
	b.ackDeadline = b.cfg.Slots.AckSlot(s, b.DataTx(b.cur.Bits), b.curTau) + 1
}

func (b *Base) finishReceive(s int64) {
	if b.rxGotData && b.rxDataFrame != nil {
		ack := b.NewFrame(packet.KindAck, b.rxSender)
		ack.Seq = b.rxDataFrame.Seq
		ack.PairDelay = b.rxTau
		ack.XID = b.rxXID
		if err := b.SendNow(ack); err == nil {
			if b.Observing() {
				obs.SlotPeriod{Node: b.cfg.ID, Peer: b.rxSender, Period: "VI", Slot: s}.Emit(b.recNow())
			}
			b.deliverData(b.rxDataFrame, false)
		}
	}
	b.setRole(RoleIdle)
	b.rxSender = packet.Nobody
	b.rxDataFrame = nil
	b.rxGotData = false
}

// deliverData counts a received payload exactly once per (origin, seq).
func (b *Base) deliverData(f *packet.Frame, extra bool) {
	key := uint64(f.Origin)<<32 | uint64(f.Seq)
	if _, dup := b.seen[key]; dup {
		b.counters.DuplicatesRx++
		return
	}
	b.seen[key] = struct{}{}
	b.counters.DeliveredPackets++
	b.counters.DeliveredBits += uint64(f.DataBits)
	if extra {
		b.counters.ExtraDeliveredPackets++
	}
	latency := b.cfg.Engine.Now().Duration() - f.GeneratedAt
	b.counters.LatencySum += latency
	if b.Observing() {
		obs.Delivery{
			Node: b.cfg.ID, Origin: f.Origin, Seq: f.Seq,
			Bits: f.DataBits, Latency: latency, Extra: extra, XID: f.XID,
		}.Emit(b.recNow())
	}
}

// DeliverData exposes delivery accounting to protocol hooks handling
// extra data frames (EXData, StolenData).
func (b *Base) DeliverData(f *packet.Frame, extra bool) { b.deliverData(f, extra) }

// failRound aborts the current sender round, leaving the packet at the
// queue head and backing off.
func (b *Base) failRound(s int64) {
	b.setRole(RoleIdle)
	// The round is over: the head is no longer in flight and shedding
	// policies may touch it again.
	b.queue.UnlockHead()
	b.curAttempts++
	if b.hasCur && b.noteHandshakeFailure(b.cur.Dst) {
		// This failure just killed the peer; the head (and everything
		// else queued to it) was purged with a typed dead-peer drop.
		b.curAttempts = 0
		b.headSince = s
	} else if b.cfg.MaxRetries > 0 && b.curAttempts >= b.cfg.MaxRetries {
		if p, ok := b.queue.Pop(); ok {
			b.dropPacket(p, obs.DropRetryExhausted)
		}
		b.curAttempts = 0
		b.headSince = s
	}
	b.hasCur = false
	b.backoffLeft = 1 + b.rng.Intn(b.cw)
	if b.cw < b.cfg.CWMax {
		b.cw *= 2
		if b.cw > b.cfg.CWMax {
			b.cw = b.cfg.CWMax
		}
	}
}

// CompleteHead removes the queue head if it matches (origin, seq) —
// used by protocols when an extra exchange delivers the head packet —
// and resets the sender round.
func (b *Base) CompleteHead(origin packet.NodeID, seq uint32) bool {
	head, ok := b.queue.Peek()
	if !ok || head.Origin != origin || head.Seq != seq {
		return false
	}
	b.queue.Pop()
	b.curAttempts = 0
	b.cw = b.cfg.CWMin
	b.hasCur = false
	b.headSince = b.cfg.Slots.SlotAt(b.cfg.Engine.Now())
	b.counters.AckedPackets++
	return true
}

// CompleteBySeq removes the first queued packet matching (origin, seq)
// wherever it sits (ROPA appends out of FIFO order).
func (b *Base) CompleteBySeq(origin packet.NodeID, seq uint32) bool {
	for i, p := range b.queue.Items() {
		if p.Origin == origin && p.Seq == seq {
			b.queue.RemoveAt(i)
			b.counters.AckedPackets++
			return true
		}
	}
	return false
}

// ---- Schedule introspection (used by extra-communication paths) ----

// PrimaryFreeAt returns the earliest instant at which this node's
// current primary exchange, including its final Ack, will be over —
// the start of the paper's period IV/VI, where granted extra data may
// arrive. For an idle node it is simply now.
func (b *Base) PrimaryFreeAt() sim.Time {
	s := b.cfg.Slots
	switch b.role {
	case RoleWaitData:
		// I send the Ack at rxAckSlot.
		return s.StartOf(b.rxAckSlot).Add(s.CtrlDur())
	case RoleWaitCTS:
		// Not yet negotiated: assume success and budget through the
		// Ack arrival (conservative for granting).
		ack := s.AckSlot(b.rtsSlot+2, b.DataTx(b.cur.Bits), b.curTau)
		return s.StartOf(ack).Add(b.curTau + s.CtrlDur())
	case RoleSendData:
		ack := s.AckSlot(b.dataSlot, b.DataTx(b.cur.Bits), b.curTau)
		return s.StartOf(ack).Add(b.curTau + s.CtrlDur())
	case RoleWaitAck:
		return s.StartOf(b.ackDeadline - 1).Add(b.curTau + s.CtrlDur())
	default:
		return b.cfg.Engine.Now()
	}
}

// NextBusyAt returns the next instant at which this node must transmit
// or receive for its primary exchange, and whether such an instant
// exists. The gap between now and that instant is the idle window an
// extra-communication reply (EXC) must fit into.
func (b *Base) NextBusyAt() (sim.Time, bool) {
	s := b.cfg.Slots
	now := b.cfg.Engine.Now()
	var cands []sim.Time
	switch b.role {
	case RoleWaitData:
		cands = []sim.Time{
			s.StartOf(b.rxDataSlot).Add(b.rxTau), // data starts arriving
			s.StartOf(b.rxAckSlot),               // I transmit the Ack
		}
	case RoleWaitCTS:
		cands = []sim.Time{
			s.StartOf(b.rtsSlot + 1).Add(b.curTau), // CTS arrives
			s.StartOf(b.rtsSlot + 2),               // data would go out
		}
	case RoleSendData:
		cands = []sim.Time{s.StartOf(b.dataSlot)}
	case RoleWaitAck:
		cands = []sim.Time{s.StartOf(b.ackDeadline - 1).Add(b.curTau)}
	default:
		return 0, false
	}
	for _, c := range cands {
		if !c.Before(now) {
			return c, true
		}
	}
	return 0, false
}

// InPrimaryExchange reports whether the node is a party to an ongoing
// primary handshake.
func (b *Base) InPrimaryExchange() bool { return b.role != RoleIdle }

// CurrentPacket returns the packet of the in-flight sender round.
func (b *Base) CurrentPacket() (AppPacket, bool) { return b.cur, b.hasCur }

// ---- PHY listener ----

var _ phy.Listener = (*Base)(nil)

// OnFrameReceived implements phy.Listener.
func (b *Base) OnFrameReceived(f *packet.Frame) {
	now := b.cfg.Engine.Now()
	localEnd := b.LocalNow()
	// Physical-consistency gate on the paper's §4.3 delay measurement:
	// with perfect clocks (arrival end − timestamp − tx time) is the
	// exact propagation delay, but under injected drift the two clock
	// errors land in the measurement and can make it negative or longer
	// than any in-range path. Such a reading is physically impossible —
	// feeding it to the table would poison scheduling silently, so it
	// is counted, reported, and discarded instead. The upper bound
	// carries 25% slack over τmax because depth-dependent sound-speed
	// profiles legitimately exceed the surface-speed bound slightly.
	d := localEnd.Duration() - f.Timestamp - b.FrameTx(f)
	if maxPlausible := b.cfg.Slots.TauMax + b.cfg.Slots.TauMax/4; d < 0 || d > maxPlausible {
		b.counters.ImpossibleRx++
		// The stored delay for this peer came from the same poisoned
		// timestamp source; flag it so confidence-aware admission rules
		// (EW-MAC's stale-delay fallback) stop trusting it.
		b.table.MarkSuspect(f.Src)
		if b.Observing() {
			obs.Invariant{
				Node: b.cfg.ID, Check: "impossible-rx",
				Detail: fmt.Sprintf("frame %v->%v %v: measured delay %v outside [0, %v]",
					f.Src, f.Dst, f.Kind, d, maxPlausible),
			}.Emit(b.recNow())
		}
	} else {
		b.table.Observe(f, localEnd, b.FrameTx(f))
		// Learn third-party pair delays from overheard negotiation frames.
		if f.PairDelay > 0 && f.Dst != b.cfg.ID && f.Dst != packet.Broadcast {
			b.table.ObservePair(f.Dst, f.PairDelay, now)
		}
	}

	// Any decoded frame proves the peer transmits: resurrect it if the
	// liveness layer had written it off. (Delay-table trust is tracked
	// separately — an implausible timestamp above keeps the entry
	// suspect even though the peer is demonstrably alive.)
	b.notePeerAlive(f.Src)

	switch f.Kind {
	case packet.KindHello, packet.KindNbrUpdate:
		if f.Kind == packet.KindHello && f.Dst == b.cfg.ID && b.cfg.EnableProbe {
			b.replyProbe(f.Src)
		}
		b.hooks.OnOverheard(f)
	case packet.KindRTS:
		b.onRTS(f)
	case packet.KindCTS:
		b.onCTS(f, now)
	case packet.KindData:
		b.onData(f)
	case packet.KindAck:
		b.onAck(f)
	default:
		if f.Dst == b.cfg.ID {
			b.hooks.OnExtraFrame(f)
		} else {
			b.hooks.OnOverheard(f)
		}
	}
}

func (b *Base) onRTS(f *packet.Frame) {
	sendSlot := b.cfg.Slots.SlotAt(sim.At(f.Timestamp))
	if f.Dst == b.cfg.ID {
		b.rtsCands[sendSlot] = append(b.rtsCands[sendSlot], f)
		return
	}
	b.ledger.ObserveRTS(f, sendSlot, b.DataTx(f.DataBits))
	if b.role == RoleWaitCTS && f.Src == b.cur.Dst {
		// My target is itself contending for someone else.
		if b.Observing() {
			obs.Contention{Node: b.cfg.ID, Peer: f.Src, Outcome: obs.ContentionLost, Slot: sendSlot, XID: b.curXID}.Emit(b.recNow())
		}
		b.hooks.OnContentionLost(f)
	}
	b.hooks.OnOverheard(f)
}

func (b *Base) onCTS(f *packet.Frame, now sim.Time) {
	ctsSlot := b.cfg.Slots.SlotAt(sim.At(f.Timestamp))
	if f.Dst == b.cfg.ID {
		if b.role == RoleWaitCTS && f.Src == b.cur.Dst {
			// Negotiated: data goes out at the next slot boundary.
			if tau, ok := b.table.Delay(f.Src, now); ok {
				b.curTau = tau
			}
			if b.Observing() {
				obs.Contention{Node: b.cfg.ID, Peer: f.Src, Outcome: obs.ContentionWon, Slot: ctsSlot, XID: b.curXID}.Emit(b.recNow())
				obs.SlotPeriod{Node: b.cfg.ID, Peer: f.Src, Period: "III", Slot: ctsSlot}.Emit(b.recNow())
			}
			b.setRole(RoleSendData)
			b.dataSlot = ctsSlot + 1
			b.hooks.OnNegotiated(f)
		}
		return
	}
	b.ledger.ObserveCTS(f, ctsSlot, b.DataTx(f.DataBits))
	if b.role == RoleWaitCTS && f.Src == b.cur.Dst {
		// My target granted someone else.
		if b.Observing() {
			obs.Contention{Node: b.cfg.ID, Peer: f.Src, Outcome: obs.ContentionLost, Slot: ctsSlot, XID: b.curXID}.Emit(b.recNow())
		}
		b.hooks.OnContentionLost(f)
	}
	b.hooks.OnOverheard(f)
}

func (b *Base) onData(f *packet.Frame) {
	if f.Dst == b.cfg.ID {
		if b.role == RoleWaitData && f.Src == b.rxSender {
			b.rxGotData = true
			b.rxDataFrame = f
		}
		return
	}
	// Overheard data from an exchange we may have missed: make sure the
	// ledger covers it so we stay quiet through its Ack.
	dataSlot := b.cfg.Slots.SlotAt(sim.At(f.Timestamp))
	if e := b.ledger.Lookup(f.Src, f.Dst); e == nil {
		tau := f.PairDelay
		if tau <= 0 {
			tau = b.cfg.Slots.TauMax
		}
		b.ledger.exchanges = append(b.ledger.exchanges, &Exchange{
			Sender:    f.Src,
			Receiver:  f.Dst,
			RTSSlot:   dataSlot - 2,
			PairDelay: tau,
			DataTx:    b.FrameTx(f),
			Confirmed: true,
		})
	}
	b.hooks.OnOverheard(f)
}

func (b *Base) onAck(f *packet.Frame) {
	if f.Dst == b.cfg.ID {
		if b.role == RoleWaitAck && f.Src == b.cur.Dst && f.Seq == b.cur.Seq {
			b.queue.Pop()
			b.counters.AckedPackets++
			b.curAttempts = 0
			b.cw = b.cfg.CWMin
			b.hasCur = false
			if b.Observing() {
				obs.SlotPeriod{
					Node: b.cfg.ID, Peer: f.Src, Period: "VII",
					Slot: b.cfg.Slots.SlotAt(b.cfg.Engine.Now()),
				}.Emit(b.recNow())
			}
			b.setRole(RoleIdle)
			b.headSince = b.cfg.Slots.SlotAt(b.cfg.Engine.Now())
		}
		return
	}
	b.hooks.OnOverheard(f)
}

// OnFrameLost implements phy.Listener. Losses are invisible to real
// MACs, so the base ignores them; protocol wrappers that want loss
// statistics can shadow this method.
func (b *Base) OnFrameLost(*packet.Frame, phy.LossReason) {}

// OnTxDone implements phy.Listener. The only base duty is the period-V
// timeline record: when a data frame finishes clocking out, its sender
// enters the wait-for-Ack period of Figure 2.
func (b *Base) OnTxDone(f *packet.Frame) {
	if b.Observing() && f.Kind == packet.KindData && b.role == RoleWaitAck {
		now := b.cfg.Engine.Now()
		obs.SlotPeriod{
			Node: b.cfg.ID, Peer: f.Dst, Period: "V",
			Slot: b.cfg.Slots.SlotAt(now),
		}.Emit(b.recNow())
	}
}
