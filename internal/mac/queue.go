package mac

import "ewmac/internal/packet"

// Queue is the FIFO of outbound application packets. A packet stays at
// the head while its handshake is in flight and is popped only on Ack,
// so a failed round naturally retries the same packet.
type Queue struct {
	items []AppPacket
	// MaxLen bounds the queue; zero means unbounded. Overflow drops
	// the newest packet (tail drop), counted in Dropped.
	MaxLen  int
	Dropped uint64
	peak    int
}

// Push appends p, returning false if the queue was full.
func (q *Queue) Push(p AppPacket) bool {
	if q.MaxLen > 0 && len(q.items) >= q.MaxLen {
		q.Dropped++
		return false
	}
	q.items = append(q.items, p)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	return true
}

// PushFront reinserts p at the head (retransmission path).
func (q *Queue) PushFront(p AppPacket) {
	q.items = append([]AppPacket{p}, q.items...)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
}

// Peek returns the head without removing it.
func (q *Queue) Peek() (AppPacket, bool) {
	if len(q.items) == 0 {
		return AppPacket{}, false
	}
	return q.items[0], true
}

// FirstFor returns the index of the first queued packet destined to
// dst, or -1. ROPA's appending path and CS-MAC's stealing path pull a
// packet for a specific neighbor out of FIFO order.
func (q *Queue) FirstFor(dst packet.NodeID) int {
	for i, p := range q.items {
		if p.Dst == dst {
			return i
		}
	}
	return -1
}

// Pop removes and returns the head.
func (q *Queue) Pop() (AppPacket, bool) {
	if len(q.items) == 0 {
		return AppPacket{}, false
	}
	p := q.items[0]
	q.items = q.items[1:]
	return p, true
}

// RemoveAt removes and returns the packet at index i.
func (q *Queue) RemoveAt(i int) (AppPacket, bool) {
	if i < 0 || i >= len(q.items) {
		return AppPacket{}, false
	}
	p := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	return p, true
}

// Len reports queued packets.
func (q *Queue) Len() int { return len(q.items) }

// Peak reports the high-water mark.
func (q *Queue) Peak() int { return q.peak }

// Items exposes the backing slice for read-only scans (do not mutate).
func (q *Queue) Items() []AppPacket { return q.items }
