package mac

import (
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
)

// Queue is the FIFO of outbound application packets. A packet stays at
// the head while its handshake is in flight and is popped only on Ack,
// so a failed round naturally retries the same packet.
//
// Overflow behaviour is pluggable (see DropPolicy): the zero value is
// the historical bounded tail-drop FIFO, DropOldest sheds from the
// front to keep the freshest traffic, and DropDeadline lazily evicts
// packets past their per-packet deadline at Peek and at Push-when-full.
// With Priority set, high-priority packets are kept in FIFO order ahead
// of every normal packet and are never shed first. None of the policies
// ever displaces the in-flight head: the MAC calls LockHead when a
// handshake for the head starts and UnlockHead when the round ends, and
// every eviction scan starts below the locked head.
type Queue struct {
	items []AppPacket
	// MaxLen bounds the queue; zero means unbounded. Overflow is
	// resolved per Policy; every packet the queue itself sheds (rejected
	// pushes and policy evictions alike) is counted in Dropped.
	MaxLen  int
	Dropped uint64
	// Policy selects the overflow behaviour (default DropTail).
	Policy DropPolicy
	// Priority enables the two-class scheme for packets with High set.
	Priority bool
	// Now supplies the current simulation instant for deadline checks;
	// nil reads as time zero, so deadlines never fire.
	Now func() time.Duration
	// OnDrop observes every packet the queue evicts on its own (expiry,
	// drop-oldest, priority displacement) with a typed reason. Rejected
	// pushes are NOT reported here — Push returns false and the caller
	// owns that drop.
	OnDrop func(p AppPacket, reason string)
	// OnEvent observes occupancy changes: pushed=true after an accepted
	// Push/PushFront, pushed=false after a Pop/RemoveAt (not after
	// OnDrop evictions — those are drops, not service).
	OnEvent func(pushed bool, p AppPacket)

	peak       int
	headLocked bool
}

// NewQueue builds the transmit queue for cfg with the drop policy,
// bound, and observation hooks wired consistently — the one
// construction path shared by Base and MACs with private queues
// (S-ALOHA), so policy wiring cannot drift between them. Any of the
// hooks may be nil.
func NewQueue(cfg Config, now func() time.Duration, onDrop func(AppPacket, string), onEvent func(bool, AppPacket)) Queue {
	return Queue{
		MaxLen:   cfg.QueueMax,
		Policy:   cfg.Overload.Policy,
		Priority: cfg.Overload.Priority,
		Now:      now,
		OnDrop:   onDrop,
		OnEvent:  onEvent,
	}
}

// now reads the deadline clock (zero when none is wired).
func (q *Queue) now() time.Duration {
	if q.Now == nil {
		return 0
	}
	return q.Now()
}

// expired reports whether p's deadline has passed at instant now. A
// packet is still valid AT its deadline instant; only strictly later
// does it expire.
func expired(p AppPacket, now time.Duration) bool {
	return p.Deadline > 0 && now > p.Deadline
}

// floor is the first evictable index: the locked head is out of reach
// for every shedding scan.
func (q *Queue) floor() int {
	if q.headLocked && len(q.items) > 0 {
		return 1
	}
	return 0
}

// evict removes items[i], counts it, and reports it with reason.
func (q *Queue) evict(i int, reason string) {
	p := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	q.Dropped++
	if i == 0 {
		q.headLocked = false
	}
	if q.OnDrop != nil {
		q.OnDrop(p, reason)
	}
}

// expireEvict evicts every expired packet above the floor. Returns how
// many were shed.
func (q *Queue) expireEvict(now time.Duration) int {
	n := 0
	for i := q.floor(); i < len(q.items); {
		if expired(q.items[i], now) {
			q.evict(i, obs.DropExpired)
			n++
			continue
		}
		i++
	}
	return n
}

// makeRoom tries to evict one queued packet to admit p, per policy.
func (q *Queue) makeRoom(p AppPacket) bool {
	f := q.floor()
	if f >= len(q.items) {
		// Nothing evictable (at most the locked head is queued).
		return false
	}
	switch q.Policy {
	case DropOldest:
		v := f
		if q.Priority {
			// Shed the oldest normal-priority packet first; a queued
			// high is displaced only by an incoming high with no normal
			// traffic left to shed.
			v = -1
			for i := f; i < len(q.items); i++ {
				if !q.items[i].High {
					v = i
					break
				}
			}
			if v < 0 {
				if !p.High {
					return false
				}
				v = f
			}
		}
		q.evict(v, obs.DropOldest)
		return true
	default:
		// Tail policies reject the newcomer — except that a
		// high-priority arrival may displace the newest normal packet.
		if !q.Priority || !p.High {
			return false
		}
		for i := len(q.items) - 1; i >= f; i-- {
			if !q.items[i].High {
				q.evict(i, obs.DropQueueFull)
				return true
			}
		}
		return false
	}
}

// insert places p per class: high-priority packets go ahead of every
// normal packet (FIFO within the class, never above the locked head);
// everything else is appended.
func (q *Queue) insert(p AppPacket) {
	if q.Priority && p.High {
		i := q.floor()
		for i < len(q.items) && q.items[i].High {
			i++
		}
		if i < len(q.items) {
			q.items = append(q.items, AppPacket{})
			copy(q.items[i+1:], q.items[i:])
			q.items[i] = p
			return
		}
	}
	q.items = append(q.items, p)
}

// Push admits p, returning false if the queue was full and the policy
// chose to reject the newcomer (the caller owns that drop; policy
// evictions of already-queued packets are reported through OnDrop).
func (q *Queue) Push(p AppPacket) bool {
	if q.MaxLen > 0 && len(q.items) >= q.MaxLen {
		if q.Policy == DropDeadline {
			q.expireEvict(q.now())
		}
		if len(q.items) >= q.MaxLen && !q.makeRoom(p) {
			q.Dropped++
			return false
		}
	}
	q.insert(p)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if q.OnEvent != nil {
		q.OnEvent(true, p)
	}
	return true
}

// PushFront reinserts p at the head (retransmission path).
func (q *Queue) PushFront(p AppPacket) {
	q.items = append([]AppPacket{p}, q.items...)
	if len(q.items) > q.peak {
		q.peak = len(q.items)
	}
	if q.OnEvent != nil {
		q.OnEvent(true, p)
	}
}

// Peek returns the head without removing it. Under DropDeadline an
// expired, unlocked head is lazily evicted here — an in-flight head is
// left alone until its round resolves.
func (q *Queue) Peek() (AppPacket, bool) {
	if q.Policy == DropDeadline && !q.headLocked {
		now := q.now()
		for len(q.items) > 0 && expired(q.items[0], now) {
			q.evict(0, obs.DropExpired)
		}
	}
	if len(q.items) == 0 {
		return AppPacket{}, false
	}
	return q.items[0], true
}

// FirstFor returns the index of the first queued packet destined to
// dst, or -1. ROPA's appending path and CS-MAC's stealing path pull a
// packet for a specific neighbor out of FIFO order.
func (q *Queue) FirstFor(dst packet.NodeID) int {
	for i, p := range q.items {
		if p.Dst == dst {
			return i
		}
	}
	return -1
}

// Pop removes and returns the head, releasing any head lock.
func (q *Queue) Pop() (AppPacket, bool) {
	if len(q.items) == 0 {
		return AppPacket{}, false
	}
	p := q.items[0]
	q.items = q.items[1:]
	q.headLocked = false
	if q.OnEvent != nil {
		q.OnEvent(false, p)
	}
	return p, true
}

// RemoveAt removes and returns the packet at index i. Removing index 0
// releases any head lock.
func (q *Queue) RemoveAt(i int) (AppPacket, bool) {
	if i < 0 || i >= len(q.items) {
		return AppPacket{}, false
	}
	p := q.items[i]
	q.items = append(q.items[:i], q.items[i+1:]...)
	if i == 0 {
		q.headLocked = false
	}
	if q.OnEvent != nil {
		q.OnEvent(false, p)
	}
	return p, true
}

// LockHead pins the current head against every shedding scan while its
// handshake is in flight. Pop and RemoveAt(0) release the lock.
func (q *Queue) LockHead() {
	if len(q.items) > 0 {
		q.headLocked = true
	}
}

// UnlockHead releases the in-flight pin (failed round, restart).
func (q *Queue) UnlockHead() { q.headLocked = false }

// HeadLocked reports whether the head is pinned.
func (q *Queue) HeadLocked() bool { return q.headLocked }

// Len reports queued packets.
func (q *Queue) Len() int { return len(q.items) }

// Peak reports the high-water mark.
func (q *Queue) Peak() int { return q.peak }

// Items exposes the backing slice for read-only scans (do not mutate).
func (q *Queue) Items() []AppPacket { return q.items }
