package mac

import (
	"testing"
	"time"

	"ewmac/internal/obs"
)

func TestParseDropPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want DropPolicy
		ok   bool
	}{
		{"", DropTail, true},
		{"tail", DropTail, true},
		{"oldest", DropOldest, true},
		{"drop-oldest", DropOldest, true},
		{"deadline", DropDeadline, true},
		{"TTL", DropDeadline, true},
		{" Deadline ", DropDeadline, true},
		{"random", DropTail, false},
	}
	for _, c := range cases {
		got, err := ParseDropPolicy(c.in)
		if (err == nil) != c.ok || got != c.want {
			t.Errorf("ParseDropPolicy(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, p := range []DropPolicy{DropTail, DropOldest, DropDeadline} {
		rt, err := ParseDropPolicy(p.String())
		if err != nil || rt != p {
			t.Errorf("round trip %v = %v, %v", p, rt, err)
		}
	}
}

func TestOverloadConfigValidate(t *testing.T) {
	good := []OverloadConfig{
		{},
		{Policy: DropOldest},
		{Policy: DropDeadline, PacketTTL: time.Second},
		{HighWater: 0.9},
		{HighWater: 0.9, LowWater: 0.5},
		{RetryBudget: RetryBudgetConfig{Burst: 4, RatePerSec: 1}},
	}
	for i, o := range good {
		if err := o.Validate(128); err != nil {
			t.Errorf("good[%d]: %v", i, err)
		}
	}
	bad := []OverloadConfig{
		{Policy: DropPolicy(9)},
		{PacketTTL: -time.Second},
		{Policy: DropDeadline}, // deadline policy without TTL
		{HighWater: 1.5},
		{HighWater: -0.1},
		{LowWater: 0.5}, // low water without high water
		{HighWater: 0.5, LowWater: 0.5},
		{RetryBudget: RetryBudgetConfig{Burst: -1}},
		{RetryBudget: RetryBudgetConfig{Burst: 1, RatePerSec: -1}},
	}
	for i, o := range bad {
		if err := o.Validate(128); err == nil {
			t.Errorf("bad[%d] %+v passed", i, o)
		}
	}
	// The admission gate needs a bounded queue to take fractions of.
	if err := (OverloadConfig{HighWater: 0.9}).Validate(0); err == nil {
		t.Error("high water with unbounded queue passed")
	}
}

func TestOverloadConfigArmedAndDefaults(t *testing.T) {
	if (OverloadConfig{}).Armed() {
		t.Error("zero config armed")
	}
	armed := []OverloadConfig{
		{Policy: DropOldest},
		{PacketTTL: time.Second},
		{Priority: true},
		{HighWater: 0.9},
		{RetryBudget: RetryBudgetConfig{Burst: 1}},
	}
	for i, o := range armed {
		if !o.Armed() {
			t.Errorf("armed[%d] not armed", i)
		}
	}
	d := OverloadConfig{HighWater: 0.8, RetryBudget: RetryBudgetConfig{Burst: 4}}.WithDefaults()
	if d.LowWater != 0.4 {
		t.Errorf("default low water = %v", d.LowWater)
	}
	if d.RetryBudget.RatePerSec != 0.5 {
		t.Errorf("default retry rate = %v", d.RetryBudget.RatePerSec)
	}
}

func TestAdmissionGateHysteresis(t *testing.T) {
	g := NewAdmissionGate(Config{
		QueueMax: 10,
		Overload: OverloadConfig{HighWater: 0.8, LowWater: 0.4}.WithDefaults(),
	})
	if !g.Enabled() {
		t.Fatal("gate not enabled")
	}
	if closed, changed := g.Update(7); closed || changed {
		t.Fatal("closed below high water")
	}
	closed, changed := g.Update(8)
	if !closed || !changed {
		t.Fatal("did not close at high water")
	}
	// Between the marks the gate holds its state in both directions.
	if closed, changed = g.Update(5); !closed || changed {
		t.Fatal("reopened above low water")
	}
	if closed, changed = g.Update(4); closed || !changed {
		t.Fatal("did not reopen at low water")
	}
	if closed, changed = g.Update(7); closed || changed {
		t.Fatal("re-closed below high water after reopening")
	}

	var off AdmissionGate
	if off.Enabled() {
		t.Error("zero gate enabled")
	}
	if closed, _ := off.Update(1 << 20); closed {
		t.Error("zero gate closed")
	}
}

func TestRetryBucketLazyRefill(t *testing.T) {
	cfg := Config{
		Slots: SlotConfig{Omega: 500 * time.Millisecond, TauMax: 500 * time.Millisecond},
		Overload: OverloadConfig{
			RetryBudget: RetryBudgetConfig{Burst: 2, RatePerSec: 1},
		},
	}
	b := NewRetryBucket(cfg) // 1 s slots, 1 token/s, burst 2
	if !b.Enabled() {
		t.Fatal("bucket not enabled")
	}
	if !b.Allow(0) || !b.Allow(0) {
		t.Fatal("initial burst not granted")
	}
	if b.Allow(0) {
		t.Fatal("empty bucket granted at same slot")
	}
	if !b.Allow(1) {
		t.Fatal("one elapsed slot did not refill one token")
	}
	if b.Allow(1) {
		t.Fatal("granted beyond refill")
	}
	// A long idle gap refills to burst, not beyond.
	if !b.Allow(100) || !b.Allow(100) {
		t.Fatal("long gap did not refill to burst")
	}
	if b.Allow(100) {
		t.Fatal("refilled beyond burst")
	}

	var off RetryBucket
	if off.Enabled() {
		t.Error("zero bucket enabled")
	}
	for i := 0; i < 10; i++ {
		if !off.Allow(0) {
			t.Fatal("disabled bucket denied")
		}
	}
}

// --- Queue edge tests (drop policies, head lock, deadlines) ---

// clock is a settable Now source for deadline tests.
type clock struct{ at time.Duration }

func (c *clock) now() time.Duration { return c.at }

func TestQueueDropOldest(t *testing.T) {
	var drops []uint32
	q := Queue{MaxLen: 2, Policy: DropOldest,
		OnDrop: func(p AppPacket, reason string) {
			if reason != obs.DropOldest {
				t.Errorf("reason = %q", reason)
			}
			drops = append(drops, p.Seq)
		}}
	q.Push(AppPacket{Seq: 1})
	q.Push(AppPacket{Seq: 2})
	if !q.Push(AppPacket{Seq: 3}) {
		t.Fatal("drop-oldest push rejected")
	}
	if len(drops) != 1 || drops[0] != 1 {
		t.Fatalf("drops = %v", drops)
	}
	if q.Dropped != 1 {
		t.Errorf("Dropped = %d", q.Dropped)
	}
	if p, _ := q.Peek(); p.Seq != 2 {
		t.Errorf("head = %d", p.Seq)
	}
}

func TestQueueDropOldestSparesLockedHead(t *testing.T) {
	q := Queue{MaxLen: 2, Policy: DropOldest}
	q.Push(AppPacket{Seq: 1})
	q.Push(AppPacket{Seq: 2})
	q.LockHead()
	if !q.Push(AppPacket{Seq: 3}) {
		t.Fatal("push rejected")
	}
	if p, _ := q.Peek(); p.Seq != 1 {
		t.Errorf("locked head evicted; head = %d", p.Seq)
	}
	// With only the locked head queued, nothing is evictable.
	q2 := Queue{MaxLen: 1, Policy: DropOldest}
	q2.Push(AppPacket{Seq: 1})
	q2.LockHead()
	if q2.Push(AppPacket{Seq: 2}) {
		t.Fatal("push displaced the only (locked) packet")
	}
	if q2.Dropped != 1 {
		t.Errorf("Dropped = %d", q2.Dropped)
	}
}

func TestQueueDeadlineExpiryBoundary(t *testing.T) {
	c := &clock{}
	q := Queue{MaxLen: 8, Policy: DropDeadline, Now: c.now}
	q.Push(AppPacket{Seq: 1, Deadline: 10 * time.Second})
	q.Push(AppPacket{Seq: 2}) // no deadline: never expires

	// A packet is valid AT its deadline instant.
	c.at = 10 * time.Second
	if p, ok := q.Peek(); !ok || p.Seq != 1 {
		t.Fatalf("Peek at exact deadline = %+v, %v", p, ok)
	}
	// Strictly past it, the head is lazily evicted.
	c.at = 10*time.Second + time.Nanosecond
	if p, ok := q.Peek(); !ok || p.Seq != 2 {
		t.Fatalf("Peek past deadline = %+v, %v", p, ok)
	}
	if q.Dropped != 1 || q.Len() != 1 {
		t.Errorf("Dropped=%d Len=%d", q.Dropped, q.Len())
	}
}

func TestQueueDeadlineExpiryMakesRoom(t *testing.T) {
	c := &clock{}
	var reasons []string
	q := Queue{MaxLen: 2, Policy: DropDeadline, Now: c.now,
		OnDrop: func(_ AppPacket, r string) { reasons = append(reasons, r) }}
	q.Push(AppPacket{Seq: 1, Deadline: time.Second})
	q.Push(AppPacket{Seq: 2, Deadline: time.Hour})
	c.at = 2 * time.Second
	if !q.Push(AppPacket{Seq: 3, Deadline: time.Hour}) {
		t.Fatal("push-when-full did not expire stale traffic")
	}
	if len(reasons) != 1 || reasons[0] != obs.DropExpired {
		t.Fatalf("reasons = %v", reasons)
	}
	// Nothing expired and nothing evictable: the newcomer is rejected.
	if q.Push(AppPacket{Seq: 4, Deadline: time.Hour}) {
		t.Fatal("push succeeded with no room")
	}
	if q.Dropped != 2 {
		t.Errorf("Dropped = %d", q.Dropped)
	}
}

func TestQueueDeadlineLockedHeadNotExpired(t *testing.T) {
	c := &clock{}
	q := Queue{MaxLen: 4, Policy: DropDeadline, Now: c.now}
	q.Push(AppPacket{Seq: 1, Deadline: time.Second})
	q.LockHead()
	c.at = time.Minute
	if p, ok := q.Peek(); !ok || p.Seq != 1 {
		t.Fatalf("in-flight head evicted: %+v, %v", p, ok)
	}
	q.UnlockHead()
	if _, ok := q.Peek(); ok {
		t.Fatal("expired head survived unlock")
	}
}

func TestQueuePriorityOrdering(t *testing.T) {
	q := Queue{MaxLen: 8, Priority: true}
	q.Push(AppPacket{Seq: 1})
	q.Push(AppPacket{Seq: 2, High: true})
	q.Push(AppPacket{Seq: 3})
	q.Push(AppPacket{Seq: 4, High: true})
	var got []uint32
	for {
		p, ok := q.Pop()
		if !ok {
			break
		}
		got = append(got, p.Seq)
	}
	want := []uint32{2, 4, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("order = %v, want %v", got, want)
		}
	}
}

func TestQueuePriorityNeverAboveLockedHead(t *testing.T) {
	q := Queue{MaxLen: 8, Priority: true}
	q.Push(AppPacket{Seq: 1})
	q.LockHead()
	q.Push(AppPacket{Seq: 2, High: true})
	if p, _ := q.Peek(); p.Seq != 1 {
		t.Fatalf("high insert displaced in-flight head; head = %d", p.Seq)
	}
	if q.Items()[1].Seq != 2 {
		t.Fatalf("high packet not right below the head: %+v", q.Items())
	}
}

func TestQueuePriorityDisplacement(t *testing.T) {
	var drops []uint32
	q := Queue{MaxLen: 2, Priority: true,
		OnDrop: func(p AppPacket, r string) {
			if r != obs.DropQueueFull {
				t.Errorf("reason = %q", r)
			}
			drops = append(drops, p.Seq)
		}}
	q.Push(AppPacket{Seq: 1})
	q.Push(AppPacket{Seq: 2})
	// A normal arrival is tail-dropped; a high arrival displaces the
	// newest normal packet.
	if q.Push(AppPacket{Seq: 3}) {
		t.Fatal("normal push above bound succeeded")
	}
	if !q.Push(AppPacket{Seq: 4, High: true}) {
		t.Fatal("high push rejected")
	}
	if len(drops) != 1 || drops[0] != 2 {
		t.Fatalf("drops = %v", drops)
	}
	// An all-high queue rejects further high arrivals under tail policy.
	q2 := Queue{MaxLen: 1, Priority: true}
	q2.Push(AppPacket{Seq: 1, High: true})
	if q2.Push(AppPacket{Seq: 2, High: true}) {
		t.Fatal("high displaced high under tail policy")
	}
}

func TestQueueDropOldestPrioritySheddingOrder(t *testing.T) {
	var drops []uint32
	q := Queue{MaxLen: 3, Policy: DropOldest, Priority: true,
		OnDrop: func(p AppPacket, _ string) { drops = append(drops, p.Seq) }}
	q.Push(AppPacket{Seq: 1, High: true})
	q.Push(AppPacket{Seq: 2})
	q.Push(AppPacket{Seq: 3})
	// Oldest NORMAL packet goes first, not the older high packet.
	q.Push(AppPacket{Seq: 4})
	if len(drops) != 1 || drops[0] != 2 {
		t.Fatalf("drops = %v", drops)
	}
	// With only high packets queued, a normal arrival is rejected…
	q2 := Queue{MaxLen: 1, Policy: DropOldest, Priority: true}
	q2.Push(AppPacket{Seq: 1, High: true})
	if q2.Push(AppPacket{Seq: 2}) {
		t.Fatal("normal arrival displaced a high packet")
	}
	// …but an incoming high may displace a queued high.
	if !q2.Push(AppPacket{Seq: 3, High: true}) {
		t.Fatal("high arrival could not displace the oldest high")
	}
}

func TestQueueRemoveAtInterleavings(t *testing.T) {
	q := Queue{MaxLen: 8}
	for i := uint32(1); i <= 4; i++ {
		q.Push(AppPacket{Seq: i})
	}
	q.LockHead()
	if _, ok := q.RemoveAt(2); !ok { // mid-queue removal keeps the lock
		t.Fatal("RemoveAt(2) failed")
	}
	if !q.HeadLocked() {
		t.Fatal("mid-queue removal released the head lock")
	}
	if _, ok := q.RemoveAt(0); !ok { // head removal releases it
		t.Fatal("RemoveAt(0) failed")
	}
	if q.HeadLocked() {
		t.Fatal("head removal kept the lock")
	}
	var got []uint32
	for _, p := range q.Items() {
		got = append(got, p.Seq)
	}
	if len(got) != 2 || got[0] != 2 || got[1] != 4 {
		t.Fatalf("surviving order = %v", got)
	}
	// Pop also releases a fresh lock.
	q.LockHead()
	q.Pop()
	if q.HeadLocked() {
		t.Fatal("Pop kept the lock")
	}
	// LockHead on an empty queue is a no-op.
	q.Pop()
	q.LockHead()
	if q.HeadLocked() {
		t.Fatal("empty queue locked")
	}
}

func TestQueueDroppedAccountingAcrossPolicies(t *testing.T) {
	c := &clock{}
	cases := []struct {
		name string
		q    Queue
		want uint64
	}{
		{"tail", Queue{MaxLen: 1}, 2},
		{"oldest", Queue{MaxLen: 1, Policy: DropOldest}, 2},
		{"deadline", Queue{MaxLen: 1, Policy: DropDeadline, Now: c.now}, 2},
	}
	for _, tc := range cases {
		tc.q.Push(AppPacket{Seq: 1, Deadline: time.Hour})
		tc.q.Push(AppPacket{Seq: 2, Deadline: time.Hour})
		tc.q.Push(AppPacket{Seq: 3, Deadline: time.Hour})
		if tc.q.Dropped != tc.want {
			t.Errorf("%s: Dropped = %d, want %d", tc.name, tc.q.Dropped, tc.want)
		}
		if tc.q.Len() != 1 {
			t.Errorf("%s: Len = %d", tc.name, tc.q.Len())
		}
	}
}

func TestQueueEventHooks(t *testing.T) {
	var pushes, pops int
	q := Queue{MaxLen: 2,
		OnEvent: func(pushed bool, _ AppPacket) {
			if pushed {
				pushes++
			} else {
				pops++
			}
		}}
	q.Push(AppPacket{Seq: 1})
	q.PushFront(AppPacket{Seq: 0})
	q.Push(AppPacket{Seq: 2}) // rejected: no event
	q.Pop()
	q.RemoveAt(0)
	if pushes != 2 || pops != 2 {
		t.Errorf("pushes=%d pops=%d", pushes, pops)
	}
}

func TestCountersCountDrop(t *testing.T) {
	var c Counters
	for _, r := range []string{
		obs.DropRetryExhausted, obs.DropDeadPeer, obs.DropQueueFull,
		obs.DropOldest, obs.DropExpired, obs.DropShed, "unknown",
	} {
		c.CountDrop(r)
	}
	if c.Dropped != 7 {
		t.Errorf("Dropped = %d", c.Dropped)
	}
	for name, got := range map[string]uint64{
		"retry": c.DroppedRetry, "dead-peer": c.DroppedDeadPeer,
		"queue-full": c.DroppedQueueFull, "oldest": c.DroppedOldest,
		"expired": c.DroppedExpired, "shed": c.DroppedShed,
	} {
		if got != 1 {
			t.Errorf("%s = %d", name, got)
		}
	}
}
