package mac

import (
	"fmt"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
)

// RecoveryConfig controls the MAC's graceful-degradation layer:
// per-peer liveness tracking (consecutive failed handshakes mark a
// neighbor suspect, then dead) and the stuck-state watchdog. Disabled
// by default — the experiment layer switches it on only when fault
// injection is active, so fault-free runs stay bit-identical to the
// pre-recovery behaviour.
type RecoveryConfig struct {
	// Enabled arms liveness tracking and the watchdog. When false every
	// recovery path is a no-op.
	Enabled bool
	// SuspectAfter is the consecutive-failure count at which a peer is
	// marked suspect (default 3). A suspect peer's delay-table entry is
	// flagged so confidence-aware admission (EW-MAC's stale-delay rule)
	// stops trusting it.
	SuspectAfter int
	// DeadAfter is the consecutive-failure count at which a peer is
	// declared dead (default 2×SuspectAfter). Pending traffic to a dead
	// peer is purged with a typed drop and new contention toward it is
	// suppressed until a frame from the peer is overheard.
	DeadAfter int
	// WatchdogFactor scales the stuck-state bound: a node staying in
	// any non-idle handshake role longer than WatchdogFactor worst-case
	// exchanges is force-reset through the cold-restart path
	// (default 4).
	WatchdogFactor int64
}

// WithDefaults returns r with unset thresholds filled in. Exported for
// MACs not built on Base (S-Aloha runs its own liveness bookkeeping).
func (r RecoveryConfig) WithDefaults() RecoveryConfig {
	r.applyDefaults()
	return r
}

func (r *RecoveryConfig) applyDefaults() {
	if r.SuspectAfter <= 0 {
		r.SuspectAfter = 3
	}
	if r.DeadAfter <= r.SuspectAfter {
		r.DeadAfter = 2 * r.SuspectAfter
	}
	if r.WatchdogFactor <= 0 {
		r.WatchdogFactor = 4
	}
}

// PeerState is the liveness verdict for one neighbor.
type PeerState uint8

// Liveness states. The zero value is alive, so an empty map means
// every peer is presumed reachable.
const (
	PeerAlive PeerState = iota
	PeerSuspect
	PeerDead
)

// String implements fmt.Stringer.
func (s PeerState) String() string {
	switch s {
	case PeerAlive:
		return "alive"
	case PeerSuspect:
		return "suspect"
	case PeerDead:
		return "dead"
	default:
		return fmt.Sprintf("PeerState(%d)", uint8(s))
	}
}

// PeerWatcher is an optional extension of Hooks: protocols that keep
// per-peer scheduling state (EW-MAC's delay table feeding the
// extra-communication admission rules) implement it to quarantine a
// dead peer's state and restore it on resurrection.
type PeerWatcher interface {
	// OnPeerDead fires when the base declares peer dead.
	OnPeerDead(peer packet.NodeID)
	// OnPeerAlive fires when a frame from a suspect/dead peer is
	// overheard and the peer returns to alive.
	OnPeerAlive(peer packet.NodeID)
}

// PeerState returns the liveness verdict for peer.
func (b *Base) PeerState(peer packet.NodeID) PeerState {
	return b.peerState[peer]
}

// Stranded counts queued packets whose next hop is currently dead —
// traffic the recovery layer has neither delivered nor dropped with a
// typed reason. A correctly closing recovery loop keeps this at zero.
func (b *Base) Stranded() int {
	if !b.cfg.Recovery.Enabled {
		return 0
	}
	n := 0
	for _, p := range b.queue.Items() {
		if b.peerState[p.Dst] == PeerDead {
			n++
		}
	}
	return n
}

// noteHandshakeFailure records one failed handshake round toward peer,
// walking it through suspect and dead. It returns true when this
// failure just killed the peer — the caller's head packet was purged
// along with everything else queued to it.
func (b *Base) noteHandshakeFailure(peer packet.NodeID) bool {
	rc := &b.cfg.Recovery
	if !rc.Enabled || peer == packet.Nobody || peer == packet.Broadcast {
		return false
	}
	n := b.peerFails[peer] + 1
	b.peerFails[peer] = n
	st := b.peerState[peer]
	if st == PeerAlive && n >= rc.SuspectAfter {
		st = PeerSuspect
		b.peerState[peer] = st
		b.counters.SuspectMarks++
		b.table.MarkSuspect(peer)
		if b.Observing() {
			obs.Recovery{
				Node: b.cfg.ID, Peer: peer, Action: obs.RecoverySuspect,
				Detail: fmt.Sprintf("%d consecutive handshake failures", n),
			}.Emit(b.recNow())
		}
	}
	if st != PeerDead && n >= rc.DeadAfter {
		b.peerState[peer] = PeerDead
		b.counters.DeadMarks++
		b.table.MarkSuspect(peer)
		if b.Observing() {
			obs.Recovery{
				Node: b.cfg.ID, Peer: peer, Action: obs.RecoveryDead,
				Detail: fmt.Sprintf("%d consecutive handshake failures", n),
			}.Emit(b.recNow())
		}
		b.purgeDeadTraffic(peer)
		if w, ok := b.hooks.(PeerWatcher); ok {
			w.OnPeerDead(peer)
		}
		return true
	}
	return false
}

// purgeDeadTraffic drops every queued packet destined to peer with a
// typed dead-peer reason, so the queue never retries into a void.
func (b *Base) purgeDeadTraffic(peer packet.NodeID) int {
	n := 0
	for i := 0; i < b.queue.Len(); {
		p := b.queue.Items()[i]
		if p.Dst != peer {
			i++
			continue
		}
		b.queue.RemoveAt(i)
		b.dropPacket(p, obs.DropDeadPeer)
		n++
	}
	return n
}

// dropPacket accounts one abandoned packet under the given typed
// reason. It doubles as the Queue's OnDrop hook, so policy evictions
// (expiry, drop-oldest, priority displacement) land here too.
func (b *Base) dropPacket(p AppPacket, reason string) {
	b.counters.CountDrop(reason)
	if b.Observing() {
		obs.PacketDrop{
			Node: b.cfg.ID, Peer: p.Dst, Reason: reason,
			Origin: p.Origin, Seq: p.Seq,
		}.Emit(b.recNow())
	}
}

// notePeerAlive clears the failure history for peer on any decoded
// frame from it, resurrecting a suspect/dead peer.
func (b *Base) notePeerAlive(peer packet.NodeID) {
	if !b.cfg.Recovery.Enabled {
		return
	}
	st := b.peerState[peer]
	if st == PeerAlive {
		if b.peerFails[peer] != 0 {
			delete(b.peerFails, peer)
		}
		return
	}
	delete(b.peerFails, peer)
	delete(b.peerState, peer)
	if st == PeerDead {
		b.counters.Resurrections++
		if b.Observing() {
			obs.Recovery{
				Node: b.cfg.ID, Peer: peer, Action: obs.RecoveryResurrect,
				Detail: "frame overheard from dead peer",
			}.Emit(b.recNow())
		}
		if w, ok := b.hooks.(PeerWatcher); ok {
			w.OnPeerAlive(peer)
		}
	}
}

// watchdogBound returns the stuck-state limit in slots for the current
// role: WatchdogFactor worst-case four-way exchanges (RTS, CTS, the
// data occupancy of Equation (5), and the Ack slot), derived from the
// delay budget of the exchange actually in flight.
func (b *Base) watchdogBound() int64 {
	dataTx := b.cfg.Slots.Len()
	switch {
	case b.role == RoleWaitData:
		dataTx = b.rxDataTx
	case b.hasCur:
		dataTx = b.DataTx(b.cur.Bits)
	}
	exchange := 4 + b.cfg.Slots.DataSlots(dataTx, b.cfg.Slots.TauMax)
	return b.cfg.Recovery.WatchdogFactor * exchange
}

// watchdogCheck force-resets a MAC stuck in a non-idle role past the
// delay-budget bound, through the existing cold-restart path. Runs at
// every slot boundary; a no-op unless recovery is enabled.
func (b *Base) watchdogCheck(s int64) {
	if !b.cfg.Recovery.Enabled || b.role == RoleIdle {
		return
	}
	stuck := s - b.roleSlot
	if stuck <= b.watchdogBound() {
		return
	}
	b.counters.WatchdogResets++
	if b.Observing() {
		obs.Recovery{
			Node: b.cfg.ID, Action: obs.RecoveryWatchdog,
			Detail: fmt.Sprintf("stuck in %v for %d slots (bound %d)", b.role, stuck, b.watchdogBound()),
		}.Emit(b.recNow())
	}
	b.Restart()
}
