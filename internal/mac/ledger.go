package mac

import (
	"sort"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Interval is a half-open busy window [Start, End).
type Interval struct {
	Start, End sim.Time
}

// Overlaps reports whether two intervals intersect.
func (iv Interval) Overlaps(o Interval) bool {
	return iv.Start < o.End && o.Start < iv.End
}

// Exchange is one overheard primary negotiation. From an RTS/CTS pair a
// bystander can predict, to the microsecond, when each party transmits
// and receives for the rest of the four-way handshake (paper §4.2):
// that prediction is what makes safe extra communication possible.
type Exchange struct {
	// Sender initiated with RTS and will transmit the data.
	Sender packet.NodeID
	// Receiver answers with CTS, receives data, sends Ack.
	Receiver packet.NodeID
	// RTSSlot is the slot the RTS was sent in.
	RTSSlot int64
	// PairDelay is τ between sender and receiver (piggybacked).
	PairDelay time.Duration
	// DataTx is the announced data transmission time.
	DataTx time.Duration
	// Confirmed is true once the CTS has been overheard.
	Confirmed bool
}

// DataSlot returns the slot the data transmission starts in.
func (e *Exchange) DataSlot() int64 { return e.RTSSlot + 2 }

// AckSlot returns the receiver's Ack slot per Equation (5).
func (e *Exchange) AckSlot(s SlotConfig) int64 {
	return s.AckSlot(e.DataSlot(), e.DataTx, e.PairDelay)
}

// EndSlot returns the first slot after the exchange completes.
func (e *Exchange) EndSlot(s SlotConfig) int64 {
	if !e.Confirmed {
		// A speculative exchange (RTS only) either confirms in slot
		// t+1 or dies.
		return e.RTSSlot + 2
	}
	return e.AckSlot(s) + 1
}

// rxWindows returns when node id is receiving within this exchange
// (empty if id is not a party).
func (e *Exchange) rxWindows(s SlotConfig, id packet.NodeID) []Interval {
	var out []Interval
	switch id {
	case e.Sender:
		// CTS arrives in slot t+1; Ack arrives in the ack slot.
		ctsAt := s.StartOf(e.RTSSlot + 1).Add(e.PairDelay)
		out = append(out, Interval{ctsAt, ctsAt.Add(s.CtrlDur())})
		if e.Confirmed {
			ackAt := s.StartOf(e.AckSlot(s)).Add(e.PairDelay)
			out = append(out, Interval{ackAt, ackAt.Add(s.CtrlDur())})
		}
	case e.Receiver:
		// RTS already arrived (past); data arrives in slot t+2.
		if e.Confirmed {
			dataAt := s.StartOf(e.DataSlot()).Add(e.PairDelay)
			out = append(out, Interval{dataAt, dataAt.Add(e.DataTx)})
		}
	}
	return out
}

// txWindows returns when node id is transmitting within this exchange.
func (e *Exchange) txWindows(s SlotConfig, id packet.NodeID) []Interval {
	var out []Interval
	switch id {
	case e.Sender:
		rts := s.StartOf(e.RTSSlot)
		out = append(out, Interval{rts, rts.Add(s.CtrlDur())})
		if e.Confirmed {
			data := s.StartOf(e.DataSlot())
			out = append(out, Interval{data, data.Add(e.DataTx)})
		}
	case e.Receiver:
		cts := s.StartOf(e.RTSSlot + 1)
		out = append(out, Interval{cts, cts.Add(s.CtrlDur())})
		if e.Confirmed {
			ack := s.StartOf(e.AckSlot(s))
			out = append(out, Interval{ack, ack.Add(s.CtrlDur())})
		}
	}
	return out
}

// Ledger tracks the negotiations a node has overheard, answering two
// questions: "until which slot must I stay quiet?" (the S-FAMA defer
// rule every protocol here inherits) and "would a transmission of mine,
// arriving at neighbor n during [a, b), interfere with anything I know
// n is doing?" (the EW-MAC extra-communication admission check).
type Ledger struct {
	slots     SlotConfig
	exchanges []*Exchange
}

// NewLedger returns an empty ledger over the given slot geometry.
func NewLedger(slots SlotConfig) *Ledger {
	return &Ledger{slots: slots}
}

// Clear drops every tracked exchange (node cold-start after a crash).
func (l *Ledger) Clear() { l.exchanges = nil }

// ObserveRTS records a speculative exchange from an overheard RTS.
func (l *Ledger) ObserveRTS(f *packet.Frame, slot int64, dataTx time.Duration) *Exchange {
	e := l.find(f.Src, f.Dst)
	if e == nil {
		e = &Exchange{Sender: f.Src, Receiver: f.Dst}
		l.exchanges = append(l.exchanges, e)
	}
	e.RTSSlot = slot
	e.PairDelay = f.PairDelay
	e.DataTx = dataTx
	e.Confirmed = false
	return e
}

// ObserveCTS confirms (or creates) an exchange from an overheard CTS.
// The CTS's source is the exchange receiver and its destination the
// sender; ctsSlot is the slot the CTS was sent in (RTSSlot+1).
func (l *Ledger) ObserveCTS(f *packet.Frame, ctsSlot int64, dataTx time.Duration) *Exchange {
	e := l.find(f.Dst, f.Src)
	if e == nil {
		e = &Exchange{Sender: f.Dst, Receiver: f.Src}
		l.exchanges = append(l.exchanges, e)
	}
	e.RTSSlot = ctsSlot - 1
	e.PairDelay = f.PairDelay
	if dataTx > 0 {
		e.DataTx = dataTx
	}
	e.Confirmed = true
	return e
}

func (l *Ledger) find(sender, receiver packet.NodeID) *Exchange {
	for _, e := range l.exchanges {
		if e.Sender == sender && e.Receiver == receiver {
			return e
		}
	}
	return nil
}

// Lookup returns the tracked exchange between the pair, or nil.
func (l *Ledger) Lookup(sender, receiver packet.NodeID) *Exchange {
	return l.find(sender, receiver)
}

// Prune drops exchanges that ended before the current slot.
func (l *Ledger) Prune(currentSlot int64) {
	kept := l.exchanges[:0]
	for _, e := range l.exchanges {
		if e.EndSlot(l.slots) > currentSlot {
			kept = append(kept, e)
		}
	}
	for i := len(kept); i < len(l.exchanges); i++ {
		l.exchanges[i] = nil
	}
	l.exchanges = kept
}

// Len reports tracked exchanges.
func (l *Ledger) Len() int { return len(l.exchanges) }

// QuietUntilSlot returns the first slot in which this node may contend
// again: one past the end of every exchange it knows about. This is the
// slotted-FAMA defer rule.
func (l *Ledger) QuietUntilSlot() int64 {
	var until int64
	for _, e := range l.exchanges {
		if end := e.EndSlot(l.slots); end > until {
			until = end
		}
	}
	return until
}

// QuietUntilSlotConfirmed is QuietUntilSlot over confirmed exchanges
// only. EW-MAC receivers arbitrate among concurrent RTS attempts by
// random priority instead of deferring on every overheard RTS (paper
// §3.1), so their grant decision ignores speculative entries.
func (l *Ledger) QuietUntilSlotConfirmed() int64 {
	var until int64
	for _, e := range l.exchanges {
		if !e.Confirmed {
			continue
		}
		if end := e.EndSlot(l.slots); end > until {
			until = end
		}
	}
	return until
}

// RxConflict reports whether an arrival at node id spanning the given
// interval would overlap a window in which id is predicted to be
// receiving. Interfering with a neighbor's reception is the one thing
// extra communication must never do (paper §4.2).
func (l *Ledger) RxConflict(id packet.NodeID, iv Interval) bool {
	for _, e := range l.exchanges {
		for _, w := range e.rxWindows(l.slots, id) {
			if iv.Overlaps(w) {
				return true
			}
		}
	}
	return false
}

// TxConflict reports whether node id is predicted to be transmitting at
// some point in the interval (an arrival then would be lost to
// half-duplex at id — harmless to others, fatal for a frame addressed
// to id).
func (l *Ledger) TxConflict(id packet.NodeID, iv Interval) bool {
	for _, e := range l.exchanges {
		for _, w := range e.txWindows(l.slots, id) {
			if iv.Overlaps(w) {
				return true
			}
		}
	}
	return false
}

// BusyParties returns the IDs currently involved in tracked exchanges,
// sorted for determinism.
func (l *Ledger) BusyParties() []packet.NodeID {
	seen := make(map[packet.NodeID]struct{}, 2*len(l.exchanges))
	for _, e := range l.exchanges {
		seen[e.Sender] = struct{}{}
		seen[e.Receiver] = struct{}{}
	}
	out := make([]packet.NodeID, 0, len(seen))
	for id := range seen {
		out = append(out, id)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
