package mac

import (
	"sort"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// NeighborTable maintains measured one-hop propagation delays, per the
// paper's §4.3: every frame carries its sender's transmission
// timestamp, and a receiver derives the pairwise delay as
// (arrival end − timestamp − transmission time). Entries age out so
// stale estimates for drifted neighbors are not trusted forever.
type NeighborTable struct {
	entries map[packet.NodeID]tableEntry
	// TTL is how long an estimate stays trusted; zero disables aging.
	TTL time.Duration
}

type tableEntry struct {
	delay time.Duration
	heard sim.Time
	// suspect marks an entry whose peer produced a physically
	// impossible delay measurement since the last good refresh: every
	// delay learned from that peer's timestamps — including this one —
	// is then untrustworthy until a plausible measurement clears it.
	suspect bool
}

// NewNeighborTable returns an empty table with the given TTL.
func NewNeighborTable(ttl time.Duration) *NeighborTable {
	return &NeighborTable{entries: make(map[packet.NodeID]tableEntry), TTL: ttl}
}

// Observe updates the sender's delay estimate from a received frame.
// arrivalEnd is the instant reception completed; txDur the frame's
// on-air duration at the shared bit rate.
func (t *NeighborTable) Observe(f *packet.Frame, arrivalEnd sim.Time, txDur time.Duration) {
	delay := arrivalEnd.Duration() - f.Timestamp - txDur
	if delay < 0 {
		// Clock skew or a bogus timestamp: distrust, but keep the
		// neighbor known with a zero-floor delay.
		delay = 0
	}
	t.entries[f.Src] = tableEntry{delay: delay, heard: arrivalEnd}
}

// ObservePair folds in piggybacked third-party delay info (e.g. a CTS
// announcing τ between the negotiating pair) — the receiver learns of
// the pair's delay without having measured it. These entries inform
// scheduling around overheard exchanges, not transmissions to that
// node, so they are stored only if no direct measurement exists.
func (t *NeighborTable) ObservePair(id packet.NodeID, delay time.Duration, now sim.Time) {
	if id == packet.Nobody || id == packet.Broadcast {
		return
	}
	if _, ok := t.entries[id]; ok {
		return
	}
	t.entries[id] = tableEntry{delay: delay, heard: now}
}

// Delay returns the current estimate for a neighbor and whether a live
// estimate exists.
func (t *NeighborTable) Delay(id packet.NodeID, now sim.Time) (time.Duration, bool) {
	e, ok := t.entries[id]
	if !ok {
		return 0, false
	}
	if t.TTL > 0 && now.Sub(e.heard) > t.TTL {
		return 0, false
	}
	return e.delay, true
}

// Age returns how long ago the estimate for a neighbor was refreshed,
// and whether any estimate (live or stale) exists. Staleness-aware
// admission rules use it to distrust old entries before TTL expiry.
func (t *NeighborTable) Age(id packet.NodeID, now sim.Time) (time.Duration, bool) {
	e, ok := t.entries[id]
	if !ok {
		return 0, false
	}
	return now.Sub(e.heard), true
}

// MarkSuspect flags an existing entry as untrustworthy (its peer just
// produced an impossible delay measurement). A later plausible
// Observe clears the flag.
func (t *NeighborTable) MarkSuspect(id packet.NodeID) {
	if e, ok := t.entries[id]; ok {
		e.suspect = true
		t.entries[id] = e
	}
}

// Suspect reports whether the entry exists and is flagged suspect.
func (t *NeighborTable) Suspect(id packet.NodeID) bool {
	return t.entries[id].suspect
}

// Clear drops every entry (node cold-start after a crash).
func (t *NeighborTable) Clear() {
	t.entries = make(map[packet.NodeID]tableEntry)
}

// Known returns the IDs with live estimates, sorted for determinism.
func (t *NeighborTable) Known(now sim.Time) []packet.NodeID {
	out := make([]packet.NodeID, 0, len(t.entries))
	for id := range t.entries {
		if _, ok := t.Delay(id, now); ok {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Len reports the number of entries (live or stale).
func (t *NeighborTable) Len() int { return len(t.entries) }

// Snapshot returns up to max live entries as piggybackable
// NeighborInfo, sorted by ID. CS-MAC and ROPA use this to distribute
// two-hop state; EW-MAC only ever piggybacks the single pair under
// negotiation.
func (t *NeighborTable) Snapshot(now sim.Time, max int) []packet.NeighborInfo {
	ids := t.Known(now)
	if max >= 0 && len(ids) > max {
		ids = ids[:max]
	}
	out := make([]packet.NeighborInfo, 0, len(ids))
	for _, id := range ids {
		d, _ := t.Delay(id, now)
		out = append(out, packet.NeighborInfo{ID: id, Delay: d})
	}
	return out
}
