// Package mac provides the scaffolding every protocol in this repo is
// built on: slot arithmetic for the τmax+ω slotted channel, the one-hop
// propagation-delay table maintained from received timestamps (paper
// §4.3), a ledger of overheard negotiations used to predict neighbors'
// busy windows (paper §4.2/Figure 2), transmit queues, and a Base
// engine implementing the shared four-way RTS/CTS/Data/Ack handshake
// with protocol-specific hooks.
//
// All four protocols of the paper's evaluation — EW-MAC, S-FAMA, ROPA,
// and CS-MAC — are implemented on this common base, mirroring the
// paper's methodology of rewriting every MAC model on the same slotted
// contention substrate ("we rewrite the MAC model based on CW-MAC",
// §5). That keeps the comparison about protocol mechanisms rather than
// implementation accidents.
package mac

import (
	"time"

	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
)

// AppPacket is one application data unit handed to a MAC for delivery
// to a one-hop destination.
type AppPacket struct {
	// Dst is the next-hop destination.
	Dst packet.NodeID
	// Bits is the payload size in bits.
	Bits int
	// Origin is the node that generated the payload.
	Origin packet.NodeID
	// Seq is unique per origin.
	Seq uint32
	// GeneratedAt is the simulation time of payload creation (for
	// latency accounting).
	GeneratedAt time.Duration
	// High marks the packet for the two-class priority scheme: queued
	// ahead of normal traffic, exempt from admission shedding, never
	// shed first. Inert unless OverloadConfig.Priority is set.
	High bool
	// Deadline is the absolute simulation instant after which delivery
	// is worthless (0 = none). Enqueue stamps GeneratedAt + PacketTTL
	// when the overload layer is configured with a TTL; the DropDeadline
	// policy evicts packets past it.
	Deadline time.Duration
}

// Protocol is the interface the node host drives. Implementations also
// act as the modem's phy.Listener.
type Protocol interface {
	phy.Listener
	// Name identifies the protocol in reports ("EW-MAC", "S-FAMA"...).
	Name() string
	// Start arms the slot loop and initialization (Hello) behaviour.
	Start()
	// Enqueue accepts an outbound packet from the traffic/routing layer.
	Enqueue(p AppPacket)
	// QueueLen reports packets waiting (including one in flight).
	QueueLen() int
	// Counters exposes protocol-level statistics.
	Counters() Counters
}

// Counters aggregates protocol-level statistics for the metrics layer.
// PHY-level statistics (bits on air, collisions) live in phy.Stats.
type Counters struct {
	// Generated counts packets accepted via Enqueue.
	Generated uint64
	// DeliveredPackets / DeliveredBits count unique data packets
	// successfully received at this node as destination (primary and
	// extra exchanges combined).
	DeliveredPackets uint64
	DeliveredBits    uint64
	// ExtraDeliveredPackets counts the subset delivered through
	// extra/appended/stolen exchanges.
	ExtraDeliveredPackets uint64
	// DuplicatesRx counts retransmitted data received more than once.
	DuplicatesRx uint64
	// AckedPackets counts packets this node sent that were acknowledged.
	AckedPackets uint64
	// LatencySum accumulates generation→delivery latency over delivered
	// packets (measured at the receiver).
	LatencySum time.Duration
	// RTSSent / CTSSent count primary negotiation attempts.
	RTSSent uint64
	CTSSent uint64
	// ContentionFailures counts RTS rounds that ended without a CTS.
	ContentionFailures uint64
	// Retransmissions counts data packets re-sent after a failed round
	// (lost CTS, lost data, or lost ack).
	Retransmissions uint64
	// RetransmittedBits counts payload bits re-sent (overhead input).
	RetransmittedBits uint64
	// ExtraAttempts / ExtraGrants / ExtraCompletions trace the
	// opportunistic path: requests sent (EXR/RTA) or steals launched,
	// grants received (EXC), and extra data exchanges acknowledged.
	ExtraAttempts    uint64
	ExtraGrants      uint64
	ExtraCompletions uint64
	// MaintenanceBits counts dedicated neighbor-maintenance traffic
	// (Hello and NbrUpdate frames), an overhead input.
	MaintenanceBits uint64
	// Dropped counts packets abandoned by the MAC for any reason; the
	// Dropped* fields break it down by typed cause: MaxRetries
	// exhaustion, dead-peer purge, queue overflow rejecting the
	// newcomer, drop-oldest eviction, per-packet deadline expiry, and
	// admission-control load shedding.
	Dropped          uint64
	DroppedRetry     uint64
	DroppedDeadPeer  uint64
	DroppedQueueFull uint64
	DroppedOldest    uint64
	DroppedExpired   uint64
	DroppedShed      uint64
	// RetryDeferrals counts handshake retries postponed (not dropped)
	// because the node's retry budget was empty.
	RetryDeferrals uint64
	// SuspectMarks / DeadMarks / Resurrections / WatchdogResets trace
	// the liveness layer: peers demoted to suspect or dead, peers
	// restored by an overheard frame, and stuck-state force-resets.
	SuspectMarks   uint64
	DeadMarks      uint64
	Resurrections  uint64
	WatchdogResets uint64
	// Probes counts unicast delay-refresh probes sent (stale-table
	// recovery traffic; their bits are folded into MaintenanceBits).
	Probes uint64
	// ImpossibleRx counts received frames whose measured propagation
	// delay was physically impossible (clock drift poisoning); the
	// measurements were discarded rather than fed to the delay table.
	ImpossibleRx uint64
}

// Add returns the field-wise sum of two counter sets.
func (c Counters) Add(o Counters) Counters {
	return Counters{
		Generated:             c.Generated + o.Generated,
		DeliveredPackets:      c.DeliveredPackets + o.DeliveredPackets,
		DeliveredBits:         c.DeliveredBits + o.DeliveredBits,
		ExtraDeliveredPackets: c.ExtraDeliveredPackets + o.ExtraDeliveredPackets,
		DuplicatesRx:          c.DuplicatesRx + o.DuplicatesRx,
		AckedPackets:          c.AckedPackets + o.AckedPackets,
		LatencySum:            c.LatencySum + o.LatencySum,
		RTSSent:               c.RTSSent + o.RTSSent,
		CTSSent:               c.CTSSent + o.CTSSent,
		ContentionFailures:    c.ContentionFailures + o.ContentionFailures,
		Retransmissions:       c.Retransmissions + o.Retransmissions,
		RetransmittedBits:     c.RetransmittedBits + o.RetransmittedBits,
		ExtraAttempts:         c.ExtraAttempts + o.ExtraAttempts,
		ExtraGrants:           c.ExtraGrants + o.ExtraGrants,
		ExtraCompletions:      c.ExtraCompletions + o.ExtraCompletions,
		MaintenanceBits:       c.MaintenanceBits + o.MaintenanceBits,
		Dropped:               c.Dropped + o.Dropped,
		DroppedRetry:          c.DroppedRetry + o.DroppedRetry,
		DroppedDeadPeer:       c.DroppedDeadPeer + o.DroppedDeadPeer,
		DroppedQueueFull:      c.DroppedQueueFull + o.DroppedQueueFull,
		DroppedOldest:         c.DroppedOldest + o.DroppedOldest,
		DroppedExpired:        c.DroppedExpired + o.DroppedExpired,
		DroppedShed:           c.DroppedShed + o.DroppedShed,
		RetryDeferrals:        c.RetryDeferrals + o.RetryDeferrals,
		SuspectMarks:          c.SuspectMarks + o.SuspectMarks,
		DeadMarks:             c.DeadMarks + o.DeadMarks,
		Resurrections:         c.Resurrections + o.Resurrections,
		WatchdogResets:        c.WatchdogResets + o.WatchdogResets,
		Probes:                c.Probes + o.Probes,
		ImpossibleRx:          c.ImpossibleRx + o.ImpossibleRx,
	}
}

// CountDrop accounts one abandoned packet under the given typed reason
// (the obs.Drop* strings), keeping the per-cause breakdown in lockstep
// with the Dropped total. Shared by Base and MACs with private drop
// paths (S-ALOHA).
func (c *Counters) CountDrop(reason string) {
	c.Dropped++
	switch reason {
	case obs.DropRetryExhausted:
		c.DroppedRetry++
	case obs.DropDeadPeer:
		c.DroppedDeadPeer++
	case obs.DropQueueFull:
		c.DroppedQueueFull++
	case obs.DropOldest:
		c.DroppedOldest++
	case obs.DropExpired:
		c.DroppedExpired++
	case obs.DropShed:
		c.DroppedShed++
	}
}

// MeanLatency returns the average generation→delivery latency.
func (c Counters) MeanLatency() time.Duration {
	if c.DeliveredPackets == 0 {
		return 0
	}
	return c.LatencySum / time.Duration(c.DeliveredPackets)
}
