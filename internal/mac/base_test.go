package mac

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/energy"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// nopHooks is a minimal protocol: first-RTS-wins, no extras.
type nopHooks struct{}

func (nopHooks) PickWinner(c []*packet.Frame) *packet.Frame {
	if len(c) == 0 {
		return nil
	}
	return c[0]
}
func (nopHooks) Piggyback(*packet.Frame)        {}
func (nopHooks) OnSlotStart(int64)              {}
func (nopHooks) OnContentionLost(*packet.Frame) {}
func (nopHooks) OnNegotiated(*packet.Frame)     {}
func (nopHooks) OnOverheard(*packet.Frame)      {}
func (nopHooks) OnExtraFrame(*packet.Frame)     {}
func (nopHooks) OnRestart()                     {}

// sinkMedium swallows transmissions.
type sinkMedium struct{}

func (sinkMedium) Broadcast(packet.NodeID, *packet.Frame, time.Duration) error { return nil }

func testBase(t *testing.T) (*Base, *sim.Engine) {
	t.Helper()
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	modem, err := phy.NewModem(phy.Config{
		ID:     1,
		Engine: eng,
		Model:  model,
		Medium: sinkMedium{},
		Energy: energy.DefaultProfile(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(Config{
		ID:      1,
		Engine:  eng,
		Modem:   modem,
		Slots:   paperSlots(),
		BitRate: model.BitRate(),
	})
	if err != nil {
		t.Fatal(err)
	}
	b.SetHooks(nopHooks{})
	return b, eng
}

func TestBaseConfigValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	modem, err := phy.NewModem(phy.Config{ID: 1, Engine: eng, Model: model, Medium: sinkMedium{}, Energy: energy.DefaultProfile()})
	if err != nil {
		t.Fatal(err)
	}
	good := Config{ID: 1, Engine: eng, Modem: modem, Slots: paperSlots(), BitRate: 12000}
	cases := []struct {
		name string
		edit func(*Config)
	}{
		{"nobody", func(c *Config) { c.ID = packet.Nobody }},
		{"broadcast", func(c *Config) { c.ID = packet.Broadcast }},
		{"nil engine", func(c *Config) { c.Engine = nil }},
		{"nil modem", func(c *Config) { c.Modem = nil }},
		{"zero rate", func(c *Config) { c.BitRate = 0 }},
		{"bad slots", func(c *Config) { c.Slots = SlotConfig{} }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := good
			tc.edit(&cfg)
			if _, err := NewBase(cfg); err == nil {
				t.Error("NewBase accepted invalid config")
			}
		})
	}
}

func TestEnqueueAssignsSequenceAndOrigin(t *testing.T) {
	b, _ := testBase(t)
	b.Enqueue(AppPacket{Dst: 9, Bits: 1024})
	b.Enqueue(AppPacket{Dst: 9, Bits: 1024})
	items := b.Queue().Items()
	if len(items) != 2 {
		t.Fatalf("queue len %d", len(items))
	}
	if items[0].Origin != 1 || items[1].Origin != 1 {
		t.Error("origin not defaulted to own ID")
	}
	if items[0].Seq == 0 || items[0].Seq == items[1].Seq {
		t.Error("sequence numbers not unique")
	}
	if b.Counters().Generated != 2 {
		t.Errorf("Generated = %d", b.Counters().Generated)
	}
}

func TestHoldSuspendsContention(t *testing.T) {
	b, eng := testBase(t)
	b.Start()
	b.Enqueue(AppPacket{Dst: 9, Bits: 1024})
	b.SetHold(sim.At(50 * time.Second))
	eng.RunUntil(sim.At(20 * time.Second))
	if b.Counters().RTSSent != 0 {
		t.Fatal("held node transmitted an RTS")
	}
	if !b.Held() {
		t.Fatal("Held() false before the deadline")
	}
	eng.RunUntil(sim.At(60 * time.Second))
	if b.Counters().RTSSent == 0 {
		t.Fatal("node never contended after the hold expired")
	}
	if b.Held() {
		t.Error("Held() true after the deadline")
	}
}

func TestContentionTimesOutAndBacksOff(t *testing.T) {
	b, eng := testBase(t)
	b.Start()
	b.Enqueue(AppPacket{Dst: 9, Bits: 1024})
	// Nothing ever answers (sink medium): every round fails.
	eng.RunUntil(sim.At(120 * time.Second))
	c := b.Counters()
	if c.RTSSent < 2 {
		t.Fatalf("RTSSent = %d, want retries", c.RTSSent)
	}
	if c.ContentionFailures != c.RTSSent {
		t.Errorf("failures %d != attempts %d with a dead channel", c.ContentionFailures, c.RTSSent)
	}
	if b.QueueLen() != 1 {
		t.Error("packet dropped without MaxRetries")
	}
}

func TestMaxRetriesDropsPacket(t *testing.T) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	modem, err := phy.NewModem(phy.Config{ID: 1, Engine: eng, Model: model, Medium: sinkMedium{}, Energy: energy.DefaultProfile()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(Config{
		ID: 1, Engine: eng, Modem: modem, Slots: paperSlots(),
		BitRate: model.BitRate(), MaxRetries: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	b.SetHooks(nopHooks{})
	b.Start()
	b.Enqueue(AppPacket{Dst: 9, Bits: 1024})
	eng.RunUntil(sim.At(300 * time.Second))
	if b.QueueLen() != 0 {
		t.Error("packet not dropped after MaxRetries")
	}
	if got := b.Counters().RTSSent; got != 3 {
		t.Errorf("RTSSent = %d, want exactly MaxRetries", got)
	}
}

func TestPrimaryFreeAtIdleIsNow(t *testing.T) {
	b, eng := testBase(t)
	eng.RunUntil(sim.At(5 * time.Second))
	if got := b.PrimaryFreeAt(); got != eng.Now() {
		t.Errorf("PrimaryFreeAt idle = %v, want now", got)
	}
	if _, busy := b.NextBusyAt(); busy {
		t.Error("idle node reports a busy time")
	}
}

func TestPrimaryFreeAtWaitCTS(t *testing.T) {
	b, eng := testBase(t)
	b.Start()
	b.Enqueue(AppPacket{Dst: 9, Bits: 2048})
	// Run until the RTS goes out (first slot).
	for b.Role() != RoleWaitCTS {
		if eng.Now().After(sim.At(30 * time.Second)) {
			t.Fatal("node never entered WaitCTS")
		}
		eng.RunUntil(eng.Now().Add(100 * time.Millisecond))
	}
	free := b.PrimaryFreeAt()
	if !free.After(eng.Now()) {
		t.Error("PrimaryFreeAt in WaitCTS should budget through the exchange")
	}
	busy, ok := b.NextBusyAt()
	if !ok || busy.Before(eng.Now()) {
		t.Errorf("NextBusyAt = %v, %v", busy, ok)
	}
	if !free.After(busy) {
		t.Error("exchange end precedes its own next event")
	}
}

func TestDeliverDataDedupes(t *testing.T) {
	b, _ := testBase(t)
	f := &packet.Frame{Kind: packet.KindEXData, Src: 2, Dst: 1, Seq: 7, Origin: 2, DataBits: 2048}
	b.DeliverData(f, true)
	b.DeliverData(f, true)
	c := b.Counters()
	if c.DeliveredPackets != 1 || c.DuplicatesRx != 1 {
		t.Errorf("delivered=%d dup=%d, want 1/1", c.DeliveredPackets, c.DuplicatesRx)
	}
	if c.ExtraDeliveredPackets != 1 {
		t.Errorf("extra delivered = %d", c.ExtraDeliveredPackets)
	}
	if c.DeliveredBits != 2048 {
		t.Errorf("delivered bits = %d", c.DeliveredBits)
	}
}

func TestCompleteHeadAndBySeq(t *testing.T) {
	b, _ := testBase(t)
	b.Enqueue(AppPacket{Dst: 9, Bits: 1, Seq: 11, Origin: 1})
	b.Enqueue(AppPacket{Dst: 8, Bits: 1, Seq: 12, Origin: 1})
	if b.CompleteHead(1, 12) {
		t.Error("CompleteHead matched a non-head packet")
	}
	if !b.CompleteHead(1, 11) {
		t.Error("CompleteHead failed on the head")
	}
	if !b.CompleteBySeq(1, 12) {
		t.Error("CompleteBySeq failed")
	}
	if b.CompleteBySeq(1, 99) {
		t.Error("CompleteBySeq matched a missing packet")
	}
	if b.QueueLen() != 0 {
		t.Error("queue not drained")
	}
	if b.Counters().AckedPackets != 2 {
		t.Errorf("AckedPackets = %d", b.Counters().AckedPackets)
	}
}

func TestRoleString(t *testing.T) {
	want := map[Role]string{
		RoleIdle: "idle", RoleWaitCTS: "wait-cts", RoleSendData: "send-data",
		RoleWaitAck: "wait-ack", RoleWaitData: "wait-data",
	}
	for r, s := range want {
		if r.String() != s {
			t.Errorf("%d.String() = %q, want %q", r, r.String(), s)
		}
	}
}

func TestStartWithoutHooksPanics(t *testing.T) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	modem, err := phy.NewModem(phy.Config{ID: 1, Engine: eng, Model: model, Medium: sinkMedium{}, Energy: energy.DefaultProfile()})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewBase(Config{ID: 1, Engine: eng, Modem: modem, Slots: paperSlots(), BitRate: 12000})
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("Start without hooks did not panic")
		}
	}()
	b.Start()
}
