package mac

import (
	"fmt"
	"strings"
	"time"
)

// This file is the MAC overload-protection layer: the queue drop
// policies, the high-water/low-water admission gate that sheds offered
// load before the queue saturates, and the per-node token-bucket retry
// budget that keeps a backlogged fleet from synchronizing into a retry
// storm. Everything here is inert by default — the zero OverloadConfig
// reproduces the pre-overload tail-drop behaviour bit-identically —
// and is shared verbatim between Base and MACs not built on it
// (S-ALOHA), so policy wiring cannot drift between the two.

// DropPolicy selects what a bounded queue sheds when it is full.
type DropPolicy uint8

// Queue drop policies.
const (
	// DropTail rejects the newest packet on overflow (the historical
	// default).
	DropTail DropPolicy = iota
	// DropOldest evicts the oldest queued packet to admit the newest,
	// keeping the freshest traffic — never the in-flight head.
	DropOldest
	// DropDeadline tail-drops on overflow like DropTail, but every
	// packet carries a deadline (Enqueue stamps generation + PacketTTL)
	// and expired packets are lazily evicted at Peek and at Push-when-
	// full, so a saturated queue spends the channel only on traffic
	// that can still arrive in time.
	DropDeadline
)

// String implements fmt.Stringer with the names ParseDropPolicy reads.
func (p DropPolicy) String() string {
	switch p {
	case DropTail:
		return "tail"
	case DropOldest:
		return "oldest"
	case DropDeadline:
		return "deadline"
	default:
		return fmt.Sprintf("DropPolicy(%d)", uint8(p))
	}
}

// ParseDropPolicy reads a policy name ("tail", "oldest", "deadline").
func ParseDropPolicy(s string) (DropPolicy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "tail":
		return DropTail, nil
	case "oldest", "drop-oldest":
		return DropOldest, nil
	case "deadline", "ttl":
		return DropDeadline, nil
	default:
		return DropTail, fmt.Errorf("mac: unknown drop policy %q (want tail, oldest, or deadline)", s)
	}
}

// RetryBudgetConfig bounds handshake retries with a per-node token
// bucket (à la SRE retry budgets), layered on the existing
// binary-exponential backoff: first attempts are always free, every
// retry spends one token, and an empty bucket defers the retry to a
// later slot instead of dropping the packet.
type RetryBudgetConfig struct {
	// Burst is the bucket capacity in retries; zero disables the
	// budget entirely.
	Burst int
	// RatePerSec refills the bucket in retries per second (default 0.5
	// when Burst is set). The refill is computed lazily from elapsed
	// slots, so it draws no randomness and costs nothing when idle.
	RatePerSec float64
}

// Enabled reports whether the retry budget is armed.
func (r RetryBudgetConfig) Enabled() bool { return r.Burst > 0 }

// OverloadConfig configures the overload-protection layer of one MAC.
// The zero value disables every mechanism and is bit-identical to the
// pre-overload behaviour.
type OverloadConfig struct {
	// Policy selects the queue's overflow behaviour.
	Policy DropPolicy
	// PacketTTL stamps each enqueued packet with a delivery deadline of
	// generation + TTL (packets arriving with an explicit Deadline keep
	// it). Required when Policy is DropDeadline; with other policies the
	// stamp is carried but never enforced.
	PacketTTL time.Duration
	// Priority enables the two-class scheme: packets marked High are
	// queued ahead of every normal packet (FIFO within the class),
	// bypass admission shedding, and are never shed first on overflow.
	// A high-priority insert never displaces the in-flight head.
	Priority bool
	// HighWater arms the admission gate: when queue occupancy reaches
	// HighWater × QueueMax, Enqueue sheds normal-priority packets with
	// the typed "load-shed" reason until occupancy falls back to
	// LowWater × QueueMax. Fractions of a bounded queue; zero disables.
	HighWater float64
	// LowWater is the reopen threshold (default HighWater/2). The
	// hysteresis prevents the gate from flapping at the boundary.
	LowWater float64
	// RetryBudget bounds handshake retries per node.
	RetryBudget RetryBudgetConfig
}

// Armed reports whether any overload mechanism is enabled.
func (o OverloadConfig) Armed() bool {
	return o.Policy != DropTail || o.PacketTTL > 0 || o.Priority ||
		o.HighWater > 0 || o.RetryBudget.Enabled()
}

// WithDefaults returns o with unset derived fields filled in. Exported
// for MACs not built on Base (S-ALOHA wires its own copy).
func (o OverloadConfig) WithDefaults() OverloadConfig {
	o.applyDefaults()
	return o
}

func (o *OverloadConfig) applyDefaults() {
	if o.HighWater > 0 && o.LowWater <= 0 {
		o.LowWater = o.HighWater / 2
	}
	if o.RetryBudget.Burst > 0 && o.RetryBudget.RatePerSec <= 0 {
		o.RetryBudget.RatePerSec = 0.5
	}
}

// Validate reports the first invalid field. queueMax is the queue
// bound the gate thresholds are fractions of.
func (o OverloadConfig) Validate(queueMax int) error {
	switch o.Policy {
	case DropTail, DropOldest, DropDeadline:
	default:
		return fmt.Errorf("mac: unknown drop policy %v", o.Policy)
	}
	if o.PacketTTL < 0 {
		return fmt.Errorf("mac: negative packet TTL %v", o.PacketTTL)
	}
	if o.Policy == DropDeadline && o.PacketTTL <= 0 {
		return fmt.Errorf("mac: deadline drop policy needs a positive PacketTTL")
	}
	if o.HighWater < 0 || o.HighWater > 1 {
		return fmt.Errorf("mac: high water %v outside (0, 1]", o.HighWater)
	}
	if o.HighWater > 0 && queueMax <= 0 {
		return fmt.Errorf("mac: admission gate needs a bounded queue (QueueMax > 0)")
	}
	if o.LowWater < 0 || (o.LowWater > 0 && o.HighWater == 0) {
		return fmt.Errorf("mac: low water %v without a high water mark", o.LowWater)
	}
	if o.LowWater > 0 && o.LowWater >= o.HighWater {
		return fmt.Errorf("mac: low water %v not below high water %v", o.LowWater, o.HighWater)
	}
	if o.RetryBudget.Burst < 0 {
		return fmt.Errorf("mac: negative retry budget burst %d", o.RetryBudget.Burst)
	}
	if o.RetryBudget.RatePerSec < 0 {
		return fmt.Errorf("mac: negative retry budget rate %v", o.RetryBudget.RatePerSec)
	}
	return nil
}

// AdmissionGate is the hysteresis load-shedding gate: it closes when
// queue occupancy reaches the high-water mark and reopens only once
// occupancy drains to the low-water mark. The zero value is disabled.
type AdmissionGate struct {
	high, low int
	closed    bool
}

// NewAdmissionGate derives the occupancy thresholds from cfg. The
// returned gate is disabled when the config leaves HighWater unset.
func NewAdmissionGate(cfg Config) AdmissionGate {
	o := cfg.Overload
	if o.HighWater <= 0 || cfg.QueueMax <= 0 {
		return AdmissionGate{}
	}
	high := int(o.HighWater*float64(cfg.QueueMax) + 0.5)
	if high < 1 {
		high = 1
	}
	low := int(o.LowWater * float64(cfg.QueueMax))
	if low >= high {
		low = high - 1
	}
	if low < 0 {
		low = 0
	}
	return AdmissionGate{high: high, low: low}
}

// Enabled reports whether the gate is armed.
func (g *AdmissionGate) Enabled() bool { return g.high > 0 }

// Update re-evaluates the gate against the current occupancy,
// returning the (possibly new) closed state and whether it just
// transitioned — the signal for overload begin/end events.
func (g *AdmissionGate) Update(occupancy int) (closed, changed bool) {
	if g.high <= 0 {
		return false, false
	}
	was := g.closed
	if g.closed {
		if occupancy <= g.low {
			g.closed = false
		}
	} else if occupancy >= g.high {
		g.closed = true
	}
	return g.closed, g.closed != was
}

// RetryBucket is the runtime state of a RetryBudgetConfig: a token
// bucket refilled lazily from elapsed slots, so consulting it is
// deterministic, allocation-free, and RNG-free. The zero value is
// disabled and always allows.
type RetryBucket struct {
	tokens   float64
	burst    float64
	perSlot  float64
	lastSlot int64
	enabled  bool
}

// NewRetryBucket builds the bucket for cfg (full at start). Disabled
// when the config leaves Burst unset.
func NewRetryBucket(cfg Config) RetryBucket {
	rb := cfg.Overload.RetryBudget
	if !rb.Enabled() {
		return RetryBucket{}
	}
	rate := rb.RatePerSec
	if rate <= 0 {
		rate = 0.5
	}
	return RetryBucket{
		tokens:  float64(rb.Burst),
		burst:   float64(rb.Burst),
		perSlot: rate * cfg.Slots.Len().Seconds(),
		enabled: true,
	}
}

// Enabled reports whether the budget is armed.
func (b *RetryBucket) Enabled() bool { return b.enabled }

// Allow spends one retry token at slot s, refilling for the slots
// elapsed since the last call. A false return means the retry must be
// deferred — the caller waits a slot rather than dropping the packet.
func (b *RetryBucket) Allow(s int64) bool {
	if !b.enabled {
		return true
	}
	if s > b.lastSlot {
		b.tokens += float64(s-b.lastSlot) * b.perSlot
		if b.tokens > b.burst {
			b.tokens = b.burst
		}
		b.lastSlot = s
	}
	if b.tokens >= 1 {
		b.tokens--
		return true
	}
	return false
}
