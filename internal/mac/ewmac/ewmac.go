// Package ewmac implements EW-MAC, the paper's contribution: a slotted
// four-way-handshake MAC that exploits the waiting resources other
// protocols leave idle.
//
// Mechanism (paper §4): a node i that loses RTS contention for its
// target j — because j answered a higher-priority contender k, or
// because j itself contended toward k — knows, from the overheard
// negotiation frame and its one-hop propagation-delay table, exactly
// when j is idle for the rest of the exchange. It requests an extra
// communication by sending EXR inside j's idle window (periods I/III/V
// of Figure 2); j answers EXC with a grant time derived from its own
// schedule (Equations (5)/(6)); i then transmits EXData so it begins
// arriving at j exactly when j has finished its negotiated exchange,
// and j confirms with EXAck. Before every extra transmission, i checks
// that the frame's arrival at every neighbor it knows to be involved
// in a negotiation misses that neighbor's predicted receive windows —
// extra communication must never interfere with negotiated
// communication.
package ewmac

import (
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

// Options tune EW-MAC; the zero value is the paper's protocol.
type Options struct {
	// DisableNeighborGuard turns off the neighbor-interference
	// admission check (ablation: degrades EW-MAC toward CS-MAC's
	// collision-prone stealing).
	DisableNeighborGuard bool
	// Guard is the scheduling safety margin around busy windows.
	// Defaults to 2 ms.
	Guard time.Duration
	// UniformPriority disables the wait-time boost in rp (ablation for
	// the fairness design choice). The boost itself lives in the base;
	// this zeroes the candidate ordering advantage instead of the
	// generation.
	UniformPriority bool
	// StaleAfter distrusts delay-table entries older than this for
	// extra-communication admission: attempts and grants against a
	// stale entry are denied (reason "stale-delay") and a unicast probe
	// is sent to refresh it, while entries merely aging toward the
	// limit inflate the scheduling Guard up to 2×. Zero (the default)
	// disables staleness handling entirely — extra scheduling trusts
	// the table as long as the base TTL does, the paper's behaviour.
	StaleAfter time.Duration
}

func (o *Options) applyDefaults() {
	if o.Guard <= 0 {
		o.Guard = 2 * time.Millisecond
	}
}

type extraPhase uint8

const (
	phaseRequested extraPhase = iota + 1
	phaseGranted
	phaseDataSent
)

// extraAttempt is the sender-side state of one extra communication.
type extraAttempt struct {
	target  packet.NodeID
	pkt     mac.AppPacket
	phase   extraPhase
	timeout sim.Handle
	// xid is the exchange lineage shared by every frame of this extra
	// exchange; parent is the primary handshake it exploits.
	xid    uint64
	parent uint64
}

// grantedExtra is the receiver-side record of an extra grant.
type grantedExtra struct {
	from packet.NodeID
	bits int
	at   sim.Time
}

// MAC is the EW-MAC protocol.
type MAC struct {
	*mac.Base
	opts    Options
	extra   *extraAttempt
	granted *grantedExtra
}

var _ mac.Protocol = (*MAC)(nil)

// New builds an EW-MAC node.
func New(cfg mac.Config, opts Options) (*MAC, error) {
	opts.applyDefaults()
	// EW-MAC receivers arbitrate concurrent RTS attempts by priority
	// rather than deferring on every overheard RTS (paper §3.1).
	cfg.LenientGrant = true
	// Control frames carry one piggybacked pair entry.
	cfg.Slots.Pad = packet.Duration(packet.NeighborInfoBits, cfg.BitRate)
	base, err := mac.NewBase(cfg)
	if err != nil {
		return nil, err
	}
	m := &MAC{Base: base, opts: opts}
	base.SetHooks(m)
	return m, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "EW-MAC" }

// PickWinner implements mac.Hooks: highest random priority wins
// (paper §3.1). Ties break toward the earlier arrival.
func (m *MAC) PickWinner(cands []*packet.Frame) *packet.Frame {
	if len(cands) == 0 {
		return nil
	}
	if m.opts.UniformPriority {
		return cands[0]
	}
	best := cands[0]
	for _, c := range cands[1:] {
		if c.RP > best.RP {
			best = c
		}
	}
	return best
}

// Piggyback implements mac.Hooks: EW-MAC appends exactly one neighbor
// entry — the delay to the frame's counterpart — never two-hop state
// (paper §4.3; this is why its overhead stays flat in Figure 10b).
func (m *MAC) Piggyback(f *packet.Frame) {
	if f.Dst == packet.Broadcast || f.PairDelay <= 0 {
		return
	}
	f.Neighbors = append(f.Neighbors, packet.NeighborInfo{ID: f.Dst, Delay: f.PairDelay})
}

// OnSlotStart implements mac.Hooks.
func (m *MAC) OnSlotStart(int64) {}

// OnNegotiated implements mac.Hooks.
func (m *MAC) OnNegotiated(*packet.Frame) {}

// OnOverheard implements mac.Hooks: base bookkeeping suffices.
func (m *MAC) OnOverheard(*packet.Frame) {}

// staleEntry reports whether peer's delay estimate is too old to base
// extra-communication timing on. Extra exchanges are scheduled to
// land inside windows a few guard-margins wide; a table entry that has
// not been refreshed for StaleAfter (mobility may have moved the peer
// hundreds of meters since) makes those windows fiction.
func (m *MAC) staleEntry(peer packet.NodeID, now sim.Time) bool {
	if m.opts.StaleAfter <= 0 {
		return false
	}
	if m.Table().Suspect(peer) {
		// The peer produced a physically impossible measurement since
		// the last good refresh — its stored delay is poisoned
		// regardless of age.
		return true
	}
	age, ok := m.Table().Age(peer, now)
	return ok && age > m.opts.StaleAfter
}

// guardFor returns the scheduling margin to use against peer: the base
// Guard, inflated linearly up to 2× as the peer's delay estimate ages
// toward StaleAfter. Fresh entries (or StaleAfter zero) keep the exact
// base margin.
func (m *MAC) guardFor(peer packet.NodeID, now sim.Time) time.Duration {
	g := m.opts.Guard
	if m.opts.StaleAfter <= 0 {
		return g
	}
	if m.Table().Suspect(peer) {
		return 2 * g
	}
	age, ok := m.Table().Age(peer, now)
	if !ok || age <= 0 {
		return g
	}
	scale := float64(age) / float64(m.opts.StaleAfter)
	if scale > 1 {
		scale = 1
	}
	return g + time.Duration(float64(g)*scale)
}

// OnContentionLost implements mac.Hooks: this is the entry to the
// "Asking Extra Commu" state of Figure 3. cause is the overheard frame
// that told us j is busy: a CTS from j to the winner (j is the
// receiver of the other exchange) or an RTS from j to its own target
// (j is the sender).
func (m *MAC) OnContentionLost(cause *packet.Frame) {
	if m.extra != nil || m.granted != nil {
		m.denyExtra(cause.Src, "exchange-in-flight")
		return
	}
	pkt, ok := m.Queue().Peek()
	if !ok || pkt.Dst != cause.Src {
		return
	}
	now := m.Engine().Now()
	tau, known := m.Table().Delay(cause.Src, now)
	if !known {
		m.denyExtra(cause.Src, "unknown-delay")
		return
	}
	if m.staleEntry(cause.Src, now) {
		// Table confidence too low to aim inside j's idle window:
		// deny conservatively and probe to refresh the entry.
		m.denyExtra(cause.Src, "stale-delay")
		m.Probe(cause.Src)
		return
	}
	guard := m.guardFor(cause.Src, now)

	// j's idle window for the EXR, per Figure 2: after j finished
	// transmitting `cause`, before the next frame of j's exchange
	// reaches it (CTS if j is a sender, Data if j is a receiver —
	// either way, one slot after `cause`, delayed by the pair delay).
	slots := m.Slots()
	causeSlot := slots.SlotAt(sim.At(cause.Timestamp))
	winStart := slots.StartOf(causeSlot).Add(m.FrameTx(cause) + guard)
	winEnd := slots.StartOf(causeSlot + 1).Add(cause.PairDelay - guard)

	exr := m.NewFrame(packet.KindEXR, cause.Src)
	exr.DataBits = pkt.Bits
	exr.XID = m.NewXID()
	m.Piggyback(exr) // sized before scheduling so duration is exact
	exrDur := m.FrameTx(exr)

	sendT := now.Add(guard)
	if earliest := winStart.Add(-tau); sendT.Before(earliest) {
		sendT = earliest
	}
	arrivalStart := sendT.Add(tau)
	arrivalEnd := arrivalStart.Add(exrDur)
	if arrivalEnd.After(winEnd) {
		// Window too small — give up (paper: back to Quiet).
		m.denyExtra(cause.Src, "window-too-small")
		return
	}
	if !m.clearAtNeighbors(sendT, exrDur, cause.Src) {
		m.denyExtra(cause.Src, "neighbor-conflict")
		return
	}

	att := &extraAttempt{target: cause.Src, pkt: pkt, phase: phaseRequested, xid: exr.XID, parent: cause.XID}
	m.extra = att
	// EXC should be back after roughly twice the propagation delay
	// (paper §4.2); time out shortly after.
	deadline := sendT.Add(2*tau + exrDur + m.ControlTx() + 4*guard)
	m.SetHold(deadline)
	m.SendAt(sendT, exr, func(error) { m.abortExtra(att) })
	m.CountersRef().ExtraAttempts++
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: cause.Src, Action: obs.ExtraRequest, XID: att.xid, Parent: att.parent})
	}
	att.timeout = m.ScheduleClamped(deadline, sim.PriorityMAC, func() {
		if m.extra == att && att.phase == phaseRequested {
			if m.Observing() {
				m.EmitExtra(obs.Extra{Node: m.ID(), Peer: att.target, Action: obs.ExtraDeny, Reason: "exc-timeout", XID: att.xid, Parent: att.parent})
			}
			m.abortExtra(att)
		}
	})
}

// denyExtra records an extra-communication denial with the admission
// rule that fired; it is the diagnostic for a starved extra path.
func (m *MAC) denyExtra(peer packet.NodeID, reason string) {
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: peer, Action: obs.ExtraDeny, Reason: reason})
	}
}

// recordAbort records an in-flight extra attempt being abandoned.
func (m *MAC) recordAbort(att *extraAttempt, reason string) {
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: att.target, Action: obs.ExtraAbort, Reason: reason, XID: att.xid, Parent: att.parent})
	}
}

// clearAtNeighbors checks that a transmission starting at sendT with
// the given duration, arriving at every neighbor this node knows to be
// party to a negotiation, misses that neighbor's predicted receive
// windows. target is excluded (its window was checked explicitly).
// Returns true when the transmission is safe (or the guard is disabled
// for ablation).
func (m *MAC) clearAtNeighbors(sendT sim.Time, dur time.Duration, target packet.NodeID) bool {
	if m.opts.DisableNeighborGuard {
		return true
	}
	now := m.Engine().Now()
	for _, n := range m.Ledger().BusyParties() {
		if n == target || n == m.ID() {
			continue
		}
		tau, known := m.Table().Delay(n, now)
		if !known {
			// Cannot predict the arrival time at this party: the paper
			// requires certainty, so give up.
			return false
		}
		iv := mac.Interval{
			Start: sendT.Add(tau - m.opts.Guard),
			End:   sendT.Add(tau + dur + m.opts.Guard),
		}
		if m.Ledger().RxConflict(n, iv) {
			return false
		}
	}
	return true
}

func (m *MAC) abortExtra(att *extraAttempt) {
	if m.extra != att {
		return
	}
	att.timeout.Cancel()
	m.extra = nil
	m.SetHold(m.Engine().Now()) // release the base engine
}

// OnExtraFrame implements mac.Hooks: EXR/EXC/EXData/EXAck addressed to
// this node.
func (m *MAC) OnExtraFrame(f *packet.Frame) {
	switch f.Kind {
	case packet.KindEXR:
		m.onEXR(f)
	case packet.KindEXC:
		m.onEXC(f)
	case packet.KindEXData:
		m.onEXData(f)
	case packet.KindEXAck:
		m.onEXAck(f)
	default:
		// RTA/StolenData belong to other protocols; EW-MAC ignores
		// them.
	}
}

// onEXR runs at the negotiated node j: grant if the EXC reply fits in
// the current idle window and the extra data can arrive after the
// primary exchange completes.
func (m *MAC) onEXR(f *packet.Frame) {
	if m.granted != nil {
		m.denyExtra(f.Src, "already-granted")
		return // one extra grant at a time
	}
	now := m.Engine().Now()
	if m.staleEntry(f.Src, now) {
		// My own knowledge of the requester is stale: the grant instant
		// I would announce is computed against windows I can no longer
		// trust. Deny and refresh instead of granting blind.
		m.denyExtra(f.Src, "stale-delay")
		m.Probe(f.Src)
		return
	}
	exc := m.NewFrame(packet.KindEXC, f.Src)
	exc.DataBits = f.DataBits
	exc.XID = f.XID
	m.Piggyback(exc)
	excDur := m.FrameTx(exc)

	// The EXC must fit strictly inside my idle gap, and its arrival at
	// every other negotiated neighbor must miss their receive windows
	// (extra control packets are themselves extra communication, §4.2).
	if busyAt, busy := m.NextBusyAt(); busy {
		if now.Add(excDur + m.opts.Guard).After(busyAt) {
			m.denyExtra(f.Src, "gap-too-small")
			return
		}
	}
	if !m.clearAtNeighbors(now, excDur, f.Src) {
		m.denyExtra(f.Src, "neighbor-conflict")
		return
	}
	grantAt := m.PrimaryFreeAt().Add(2 * m.opts.Guard)
	exc.GrantAt = grantAt.Duration()
	if err := m.SendNow(exc); err != nil {
		m.denyExtra(f.Src, "transducer-busy")
		return
	}
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: f.Src, Action: obs.ExtraGrant, XID: f.XID})
	}
	dataDur := m.DataTx(f.DataBits)
	m.granted = &grantedExtra{from: f.Src, bits: f.DataBits, at: grantAt}
	// Suspend contention until the granted exchange (EXData + EXAck)
	// is over; release early if the data never shows.
	release := grantAt.Add(dataDur + m.ControlTx() + 8*m.opts.Guard)
	m.SetHold(release)
	g := m.granted
	m.ScheduleClamped(release, sim.PriorityMAC, func() {
		if m.granted == g {
			m.granted = nil
			m.SetHold(m.Engine().Now())
		}
	})
}

// onEXC runs at the requester i: schedule the EXData so it begins
// arriving at j at the granted instant (Equation (6): send at
// grant − τij).
func (m *MAC) onEXC(f *packet.Frame) {
	att := m.extra
	if att == nil || att.phase != phaseRequested || f.Src != att.target {
		return
	}
	m.CountersRef().ExtraGrants++
	now := m.Engine().Now()
	guard := m.guardFor(att.target, now)
	tau, known := m.Table().Delay(att.target, now)
	grantAt := sim.At(f.GrantAt)
	sendT := grantAt.Add(-tau)
	dataDur := m.DataTx(att.pkt.Bits)
	if !known || sendT.Before(now.Add(guard)) ||
		!m.clearAtNeighbors(sendT, dataDur, att.target) {
		m.recordAbort(att, "grant-unusable")
		m.abortExtra(att)
		return
	}
	att.timeout.Cancel()
	att.phase = phaseGranted

	data := m.NewFrame(packet.KindEXData, att.target)
	data.XID = att.xid
	data.DataBits = att.pkt.Bits
	data.Seq = att.pkt.Seq
	data.Origin = att.pkt.Origin
	data.GeneratedAt = att.pkt.GeneratedAt
	deadline := sendT.Add(dataDur + 2*tau + m.ControlTx() + 8*guard)
	m.SetHold(deadline)
	// The grant can lie seconds ahead; new negotiations may begin in
	// the meantime. Re-run the neighbor admission check at the actual
	// send instant — extra communication must never interfere with a
	// negotiated exchange, including ones younger than the grant.
	m.ScheduleClamped(sendT, sim.PriorityMAC, func() {
		if m.extra != att {
			return
		}
		if !m.clearAtNeighbors(m.Engine().Now(), dataDur, att.target) {
			m.recordAbort(att, "late-neighbor-conflict")
			m.abortExtra(att)
			return
		}
		if err := m.SendNow(data); err != nil {
			m.abortExtra(att)
			return
		}
		att.phase = phaseDataSent
	})
	att.timeout = m.ScheduleClamped(deadline, sim.PriorityMAC, func() {
		if m.extra == att {
			m.abortExtra(att)
		}
	})
}

// onEXData runs at j: the extra payload arrived after the negotiated
// exchange; deliver and confirm.
func (m *MAC) onEXData(f *packet.Frame) {
	m.DeliverData(f, true)
	ack := m.NewFrame(packet.KindEXAck, f.Src)
	ack.XID = f.XID
	ack.Seq = f.Seq
	ack.Origin = f.Origin
	_ = m.SendNow(ack) // if the transducer is busy the sender retries normally
	if m.granted != nil && m.granted.from == f.Src {
		m.granted = nil
		m.SetHold(m.Engine().Now())
	}
}

// onEXAck completes the extra exchange at i.
func (m *MAC) onEXAck(f *packet.Frame) {
	att := m.extra
	if att == nil || f.Src != att.target || f.Seq != att.pkt.Seq {
		return
	}
	m.CountersRef().ExtraCompletions++
	if m.Observing() {
		m.EmitExtra(obs.Extra{Node: m.ID(), Peer: f.Src, Action: obs.ExtraComplete, XID: att.xid, Parent: att.parent})
	}
	if !m.CompleteHead(att.pkt.Origin, att.pkt.Seq) {
		m.CompleteBySeq(att.pkt.Origin, att.pkt.Seq)
	}
	att.timeout.Cancel()
	m.extra = nil
	m.SetHold(m.Engine().Now())
}

// ExtraActive reports whether an extra attempt is in flight (tests).
func (m *MAC) ExtraActive() bool { return m.extra != nil }

// GrantActive reports whether this node has granted an extra exchange
// (tests).
func (m *MAC) GrantActive() bool { return m.granted != nil }

// ClearAtNeighborsForTest exposes the admission check to tests and the
// ablation benches.
func (m *MAC) ClearAtNeighborsForTest(sendT sim.Time, dur time.Duration, target packet.NodeID) bool {
	return m.clearAtNeighbors(sendT, dur, target)
}

// OnRestart implements mac.Hooks: a crashed node forgets its in-flight
// extra attempt and any grant it issued.
func (m *MAC) OnRestart() {
	if m.extra != nil {
		m.extra.timeout.Cancel()
		m.extra = nil
	}
	m.granted = nil
}

var _ mac.PeerWatcher = (*MAC)(nil)

// OnPeerDead implements mac.PeerWatcher: a dead peer's delay-table
// entry is quarantined (marked suspect) so extra-communication
// admission never schedules against a corpse — staleEntry then denies
// with the existing "stale-delay" reason — and any in-flight extra
// exchange with the peer is abandoned.
func (m *MAC) OnPeerDead(peer packet.NodeID) {
	m.Table().MarkSuspect(peer)
	if att := m.extra; att != nil && att.target == peer {
		m.recordAbort(att, "peer-dead")
		m.abortExtra(att)
	}
	if g := m.granted; g != nil && g.from == peer {
		m.granted = nil
		m.SetHold(m.Engine().Now())
	}
}

// OnPeerAlive implements mac.PeerWatcher. The resurrection itself
// (clearing the liveness verdict) happens in the base; the delay-table
// suspect flag stays until a plausible measurement overwrites the
// entry, so a freshly resurrected peer is schedulable again only once
// its delay is re-learned.
func (m *MAC) OnPeerAlive(packet.NodeID) {}
