package ewmac

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

// rig is a hand-placed micro-network of EW-MAC nodes.
type rig struct {
	eng  *sim.Engine
	net  *topology.Network
	ch   *channel.Channel
	macs []*MAC
}

// newRig places nodes at the given positions (IDs 1..n) and wires
// EW-MAC instances with Hello enabled in the first 5 s.
func newRig(t *testing.T, seed int64, opts Options, positions ...vec.V3) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, len(positions))
	for i, p := range positions {
		nodes[i] = &topology.Node{ID: packet.NodeID(i + 1), Pos: p}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}
	r := &rig{eng: eng, net: net, ch: ch}
	for i := range positions {
		modem, err := phy.NewModem(phy.Config{
			ID:     packet.NodeID(i + 1),
			Engine: eng,
			Model:  model,
			Medium: ch,
			Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(modem); err != nil {
			t.Fatal(err)
		}
		m, err := New(mac.Config{
			ID:          packet.NodeID(i + 1),
			Engine:      eng,
			Modem:       modem,
			Slots:       slots,
			BitRate:     model.BitRate(),
			EnableHello: true,
			HelloWindow: 5 * time.Second,
		}, opts)
		if err != nil {
			t.Fatal(err)
		}
		modem.SetListener(m)
		r.macs = append(r.macs, m)
		m.Start()
	}
	return r
}

func (r *rig) enqueueAt(at time.Duration, from int, dst packet.NodeID, bits int) {
	m := r.macs[from-1]
	r.eng.MustScheduleAt(sim.At(at), sim.PriorityApp, func() {
		m.Enqueue(mac.AppPacket{Dst: dst, Bits: bits})
	})
}

// figure4Positions: j shallow, i and k deeper, all mutually in range
// with distinct pairwise delays.
func figure4Positions() []vec.V3 {
	return []vec.V3{
		{X: 0, Y: 0, Z: 100},   // 1 = j (the contended receiver)
		{X: 500, Y: 0, Z: 300}, // 2 = i
		{X: 0, Y: 600, Z: 400}, // 3 = k
	}
}

// TestFigure4ExtraCommunication reproduces the paper's Figure 4/5
// sequence: i and k contend for j in the same slot; the loser requests
// an extra communication and completes it inside the winner's exchange
// waiting time, so both payloads are delivered.
func TestFigure4ExtraCommunication(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		r := newRig(t, seed, Options{}, figure4Positions()...)
		// Enqueue on both contenders shortly before the same slot
		// boundary, after the Hello phase.
		r.enqueueAt(9*time.Second, 2, 1, 2048)
		r.enqueueAt(9*time.Second, 3, 1, 2048)
		r.eng.RunUntil(sim.At(60 * time.Second))

		j := r.macs[0]
		got := j.Counters().DeliveredPackets
		if got != 2 {
			t.Fatalf("seed %d: j delivered %d packets, want 2", seed, got)
		}
		totalExtraAttempts := uint64(0)
		totalExtraOK := uint64(0)
		for _, m := range r.macs {
			totalExtraAttempts += m.Counters().ExtraAttempts
			totalExtraOK += m.Counters().ExtraCompletions
		}
		if totalExtraAttempts == 0 {
			t.Fatalf("seed %d: no extra communication was attempted", seed)
		}
		if totalExtraOK == 0 {
			t.Fatalf("seed %d: extra communication attempted (%d) but never completed", seed, totalExtraAttempts)
		}
		if j.Counters().ExtraDeliveredPackets == 0 {
			t.Fatalf("seed %d: no payload delivered via the extra path", seed)
		}
	}
}

// TestCaseBSenderBusy reproduces §4.2's second case: i targets j, but j
// itself is a sender toward k. i must still get its packet to j via the
// extra path (or a later primary round) without corrupting j's
// exchange.
func TestCaseBSenderBusy(t *testing.T) {
	r := newRig(t, 3, Options{}, figure4Positions()...)
	// j (node 1) targets k (node 3); i (node 2) targets j.
	r.enqueueAt(9*time.Second, 1, 3, 2048)
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.eng.RunUntil(sim.At(90 * time.Second))

	if got := r.macs[2].Counters().DeliveredPackets; got != 1 {
		t.Fatalf("k delivered %d packets, want 1 (j's primary exchange)", got)
	}
	if got := r.macs[0].Counters().DeliveredPackets; got != 1 {
		t.Fatalf("j delivered %d packets, want 1 (i's packet)", got)
	}
}

// TestExtraNeverCorruptsNegotiated is the core safety property from
// §4.2: an admitted extra transmission must not interfere with any
// negotiated exchange. With four nodes (two negotiated pairs plus a
// loser), the winner pair's data must always arrive intact.
func TestExtraNeverCorruptsNegotiated(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		r := newRig(t, seed, Options{},
			vec.V3{X: 0, Y: 0, Z: 100},     // 1 = contended receiver j
			vec.V3{X: 500, Y: 0, Z: 300},   // 2 = i
			vec.V3{X: 0, Y: 600, Z: 400},   // 3 = k
			vec.V3{X: 700, Y: 700, Z: 500}, // 4 = bystander with traffic to j
		)
		r.enqueueAt(9*time.Second, 2, 1, 2048)
		r.enqueueAt(9*time.Second, 3, 1, 2048)
		r.enqueueAt(9*time.Second+500*time.Millisecond, 4, 1, 2048)
		r.eng.RunUntil(sim.At(120 * time.Second))
		if got := r.macs[0].Counters().DeliveredPackets; got != 3 {
			t.Errorf("seed %d: j delivered %d packets, want all 3", seed, got)
		}
	}
}

func TestPickWinnerByPriority(t *testing.T) {
	r := newRig(t, 1, Options{}, figure4Positions()...)
	m := r.macs[0]
	lo := &packet.Frame{Kind: packet.KindRTS, Src: 2, Dst: 1, RP: 0.2}
	hi := &packet.Frame{Kind: packet.KindRTS, Src: 3, Dst: 1, RP: 0.9}
	if w := m.PickWinner([]*packet.Frame{lo, hi}); w != hi {
		t.Error("PickWinner ignored priority")
	}
	if w := m.PickWinner(nil); w != nil {
		t.Error("PickWinner on empty should be nil")
	}
	uni, err := New(mac.Config{
		ID:      99,
		Engine:  r.eng,
		Modem:   r.macs[0].Modem(),
		Slots:   r.macs[0].Slots(),
		BitRate: 12000,
	}, Options{UniformPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	if w := uni.PickWinner([]*packet.Frame{lo, hi}); w != lo {
		t.Error("UniformPriority should pick first arrival")
	}
}

func TestPiggybackSingleEntry(t *testing.T) {
	r := newRig(t, 1, Options{}, figure4Positions()...)
	m := r.macs[0]
	f := m.NewFrame(packet.KindCTS, 2)
	f.PairDelay = 400 * time.Millisecond
	m.Piggyback(f)
	if len(f.Neighbors) != 1 || f.Neighbors[0].ID != 2 {
		t.Fatalf("Piggyback = %v, want single pair entry", f.Neighbors)
	}
	b := m.NewFrame(packet.KindHello, packet.Broadcast)
	m.Piggyback(b)
	if len(b.Neighbors) != 0 {
		t.Error("broadcast frames should not carry pair info")
	}
}

// TestClearAtNeighborsGuard exercises the §4.2 admission check in
// isolation: a planned transmission whose arrival at a negotiated
// party would land inside that party's receive window must be refused.
func TestClearAtNeighborsGuard(t *testing.T) {
	r := newRig(t, 1, Options{}, figure4Positions()...)
	m := r.macs[1]                          // node 2 = i
	r.eng.RunUntil(sim.At(8 * time.Second)) // hello phase done: delays known

	// Fabricate a confirmed exchange 3→1 in the near future.
	slots := m.Slots()
	now := r.eng.Now()
	curSlot := slots.SlotAt(now)
	tau31, ok := m.Table().Delay(3, now)
	if !ok {
		t.Fatal("hello phase did not populate the delay table")
	}
	cts := &packet.Frame{Kind: packet.KindCTS, Src: 1, Dst: 3, PairDelay: tau31, DataBits: 2048}
	m.Ledger().ObserveCTS(cts, curSlot+1, m.DataTx(2048))

	// Node 1 (the exchange receiver) will be receiving data during
	// [StartOf(curSlot+2)+τ31, +dataTx). A transmission by node 2
	// timed to arrive at node 1 inside that window must be refused.
	tau21, _ := m.Table().Delay(1, now)
	dataWindowStart := slots.StartOf(curSlot + 2).Add(tau31)
	sendT := dataWindowStart.Add(50 * time.Millisecond).Add(-tau21)
	if m.ClearAtNeighborsForTest(sendT, 20*time.Millisecond, 3) {
		t.Error("guard admitted a transmission into a negotiated receive window")
	}
	// The same transmission shifted well before the window is fine.
	early := dataWindowStart.Add(-500 * time.Millisecond).Add(-tau21)
	if !m.ClearAtNeighborsForTest(early, 20*time.Millisecond, 3) {
		t.Error("guard refused a clearly safe transmission")
	}
	// With the ablation knob the unsafe transmission is admitted.
	un, err := New(mac.Config{
		ID: 9, Engine: r.eng, Modem: m.Modem(), Slots: m.Slots(), BitRate: 12000,
	}, Options{DisableNeighborGuard: true})
	if err != nil {
		t.Fatal(err)
	}
	if !un.ClearAtNeighborsForTest(sendT, 20*time.Millisecond, 3) {
		t.Error("ablation knob did not disable the guard")
	}
}

// TestGuardRefusesUnknownDelays: if any negotiated party's delay is
// unknown, the paper requires certainty, so the transmission must be
// refused.
func TestGuardRefusesUnknownDelays(t *testing.T) {
	r := newRig(t, 1, Options{}, figure4Positions()...)
	m := r.macs[1]
	// No hello phase has run at t=0: table empty; ledger names node 3.
	cts := &packet.Frame{Kind: packet.KindCTS, Src: 1, Dst: 3, PairDelay: 400 * time.Millisecond, DataBits: 2048}
	m.Ledger().ObserveCTS(cts, 2, m.DataTx(2048))
	if m.ClearAtNeighborsForTest(sim.At(time.Second), 20*time.Millisecond, 99) {
		t.Error("guard admitted a transmission with unknown neighbor delays")
	}
}
