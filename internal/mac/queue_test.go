package mac

import (
	"testing"
	"testing/quick"
)

func TestQueueFIFO(t *testing.T) {
	var q Queue
	for i := uint32(1); i <= 3; i++ {
		q.Push(AppPacket{Seq: i, Dst: 9})
	}
	if q.Len() != 3 || q.Peak() != 3 {
		t.Fatalf("Len=%d Peak=%d", q.Len(), q.Peak())
	}
	if p, ok := q.Peek(); !ok || p.Seq != 1 {
		t.Fatalf("Peek = %+v, %v", p, ok)
	}
	for i := uint32(1); i <= 3; i++ {
		p, ok := q.Pop()
		if !ok || p.Seq != i {
			t.Fatalf("Pop %d = %+v, %v", i, p, ok)
		}
	}
	if _, ok := q.Pop(); ok {
		t.Error("Pop from empty succeeded")
	}
	if _, ok := q.Peek(); ok {
		t.Error("Peek from empty succeeded")
	}
}

func TestQueueBoundedDropsTail(t *testing.T) {
	q := Queue{MaxLen: 2}
	if !q.Push(AppPacket{Seq: 1}) || !q.Push(AppPacket{Seq: 2}) {
		t.Fatal("pushes below bound failed")
	}
	if q.Push(AppPacket{Seq: 3}) {
		t.Fatal("push above bound succeeded")
	}
	if q.Dropped != 1 {
		t.Errorf("Dropped = %d", q.Dropped)
	}
	if p, _ := q.Peek(); p.Seq != 1 {
		t.Error("head changed by overflow")
	}
}

func TestQueuePushFront(t *testing.T) {
	var q Queue
	q.Push(AppPacket{Seq: 2})
	q.PushFront(AppPacket{Seq: 1})
	if p, _ := q.Pop(); p.Seq != 1 {
		t.Error("PushFront did not take the head")
	}
}

func TestQueueFirstForAndRemoveAt(t *testing.T) {
	var q Queue
	q.Push(AppPacket{Seq: 1, Dst: 5})
	q.Push(AppPacket{Seq: 2, Dst: 7})
	q.Push(AppPacket{Seq: 3, Dst: 7})
	if i := q.FirstFor(7); i != 1 {
		t.Fatalf("FirstFor(7) = %d", i)
	}
	if i := q.FirstFor(42); i != -1 {
		t.Fatalf("FirstFor(42) = %d", i)
	}
	p, ok := q.RemoveAt(1)
	if !ok || p.Seq != 2 {
		t.Fatalf("RemoveAt = %+v, %v", p, ok)
	}
	if q.Len() != 2 {
		t.Fatalf("Len = %d after removal", q.Len())
	}
	if _, ok := q.RemoveAt(5); ok {
		t.Error("RemoveAt out of range succeeded")
	}
	if _, ok := q.RemoveAt(-1); ok {
		t.Error("RemoveAt(-1) succeeded")
	}
}

// Property: any interleaving of pushes and pops preserves FIFO order of
// surviving elements.
func TestQueueOrderProperty(t *testing.T) {
	f := func(ops []uint8) bool {
		var q Queue
		var model []uint32
		next := uint32(1)
		for _, op := range ops {
			if op%3 == 0 && len(model) > 0 {
				p, ok := q.Pop()
				if !ok || p.Seq != model[0] {
					return false
				}
				model = model[1:]
			} else {
				q.Push(AppPacket{Seq: next})
				model = append(model, next)
				next++
			}
		}
		if q.Len() != len(model) {
			return false
		}
		for _, want := range model {
			p, ok := q.Pop()
			if !ok || p.Seq != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCountersAddAndLatency(t *testing.T) {
	a := Counters{Generated: 1, DeliveredPackets: 2, LatencySum: 10}
	b := Counters{Generated: 3, DeliveredPackets: 3, LatencySum: 20}
	sum := a.Add(b)
	if sum.Generated != 4 || sum.DeliveredPackets != 5 || sum.LatencySum != 30 {
		t.Errorf("Add = %+v", sum)
	}
	if sum.MeanLatency() != 6 {
		t.Errorf("MeanLatency = %v", sum.MeanLatency())
	}
	if (Counters{}).MeanLatency() != 0 {
		t.Error("MeanLatency of empty counters not 0")
	}
}
