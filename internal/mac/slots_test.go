package mac

import (
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/sim"
)

func paperSlots() SlotConfig {
	// Table 2: ω = 64 bits / 12 kbps ≈ 5.333 ms, τmax = 1.5 km / 1.5 km/s = 1 s.
	omegaBits := 64.0
	return SlotConfig{
		Omega:  time.Duration(omegaBits / 12000 * float64(time.Second)),
		TauMax: time.Second,
	}
}

func TestSlotLen(t *testing.T) {
	s := paperSlots()
	want := s.Omega + time.Second
	if s.Len() != want {
		t.Errorf("Len = %v, want %v", s.Len(), want)
	}
}

func TestSlotValidate(t *testing.T) {
	if err := paperSlots().Validate(); err != nil {
		t.Errorf("paper slots invalid: %v", err)
	}
	if err := (SlotConfig{Omega: time.Millisecond}).Validate(); err == nil {
		t.Error("zero τmax accepted")
	}
	if err := (SlotConfig{TauMax: time.Second}).Validate(); err == nil {
		t.Error("zero ω accepted")
	}
}

func TestSlotAtAndStartOfInverse(t *testing.T) {
	s := paperSlots()
	for slot := int64(0); slot < 100; slot += 7 {
		if got := s.SlotAt(s.StartOf(slot)); got != slot {
			t.Fatalf("SlotAt(StartOf(%d)) = %d", slot, got)
		}
		// Just before the next boundary still maps to this slot.
		justBefore := s.StartOf(slot + 1).Add(-time.Nanosecond)
		if got := s.SlotAt(justBefore); got != slot {
			t.Fatalf("SlotAt(end-ε of %d) = %d", slot, got)
		}
	}
}

func TestDataSlotsEquation5(t *testing.T) {
	s := paperSlots()
	// 2048-bit data + 64-bit header at 12 kbps = 176 ms; with τ = 333 ms
	// it fits one slot.
	dataTx := time.Duration((2048 + 64) * float64(time.Second) / 12000)
	if got := s.DataSlots(dataTx, 333*time.Millisecond); got != 1 {
		t.Errorf("DataSlots(176ms, 333ms) = %d, want 1", got)
	}
	// A data transmission spanning more than a slot needs 2.
	if got := s.DataSlots(900*time.Millisecond, 500*time.Millisecond); got != 2 {
		t.Errorf("DataSlots(900ms, 500ms) = %d, want 2", got)
	}
	// Degenerate inputs still reserve one slot.
	if got := s.DataSlots(0, 0); got != 1 {
		t.Errorf("DataSlots(0,0) = %d, want 1", got)
	}
	// Exactly one slot's worth occupies exactly one slot.
	if got := s.DataSlots(s.Len()-time.Second, time.Second); got != 1 {
		t.Errorf("DataSlots(exactly |ts|) = %d, want 1", got)
	}
}

func TestAckSlot(t *testing.T) {
	s := paperSlots()
	dataTx := 176 * time.Millisecond
	if got := s.AckSlot(7, dataTx, 333*time.Millisecond); got != 8 {
		t.Errorf("AckSlot = %d, want 8", got)
	}
	if got := s.AckSlot(7, 3*time.Second, time.Second); got != 7+4 {
		t.Errorf("AckSlot long data = %d, want 11", got)
	}
}

// Property: Eq (5) slot count always covers the transmission: the Ack
// slot start is never before data arrival completes.
func TestAckSlotCoversDataProperty(t *testing.T) {
	s := paperSlots()
	f := func(txMS, tauMS uint16, dataSlot uint8) bool {
		dataTx := time.Duration(txMS%5000) * time.Millisecond
		tau := time.Duration(tauMS%1000) * time.Millisecond
		ds := int64(dataSlot)
		ack := s.AckSlot(ds, dataTx, tau)
		dataArrivalEnd := s.StartOf(ds).Add(tau + dataTx)
		return !s.StartOf(ack).Before(dataArrivalEnd)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestStartOfMonotone(t *testing.T) {
	s := paperSlots()
	var prev sim.Time
	for slot := int64(0); slot < 1000; slot++ {
		st := s.StartOf(slot)
		if slot > 0 && st <= prev {
			t.Fatalf("StartOf not strictly increasing at %d", slot)
		}
		prev = st
	}
}
