package mac

import (
	"fmt"
	"time"

	"ewmac/internal/sim"
)

// SlotConfig fixes the slotted-channel geometry shared by all nodes.
// Per the paper (§3.1): |ts| = ω + τmax, where τmax is the propagation
// delay across the maximum communication range and ω the transmission
// time of one control packet. Every primary handshake frame is sent at
// a slot boundary; extra-communication frames are not.
type SlotConfig struct {
	// Omega is the baseline control-packet transmission time ω (the
	// 64-bit frame of Table 2). The slot length derives from this, so
	// all protocols share the same slot geometry.
	Omega time.Duration
	// TauMax is the worst-case one-hop propagation delay τmax.
	TauMax time.Duration
	// Pad is the extra on-air time of this protocol's control frames
	// beyond Omega (piggybacked neighbor state). It does not change the
	// slot length — spilling past ω is part of the protocol's overhead
	// — but every schedule prediction must account for it, or nodes
	// would plan extra transmissions into the tail of their peers'
	// control receptions.
	Pad time.Duration
}

// Validate reports a non-physical configuration.
func (s SlotConfig) Validate() error {
	if s.Omega <= 0 || s.TauMax <= 0 {
		return fmt.Errorf("mac: slot config %+v must have positive ω and τmax", s)
	}
	return nil
}

// Len returns the slot duration |ts| = ω + τmax.
func (s SlotConfig) Len() time.Duration { return s.Omega + s.TauMax }

// CtrlDur returns the worst-case on-air time of this protocol's
// control frames (ω plus piggyback padding).
func (s SlotConfig) CtrlDur() time.Duration { return s.Omega + s.Pad }

// SlotAt returns the index of the slot containing instant t.
func (s SlotConfig) SlotAt(t sim.Time) int64 {
	return int64(t.Duration() / s.Len())
}

// StartOf returns the instant slot begins.
func (s SlotConfig) StartOf(slot int64) sim.Time {
	return sim.At(time.Duration(slot) * s.Len())
}

// DataSlots implements Equation (5)'s slot count: the number of slots a
// data transmission plus its propagation occupies,
// ⌈(TD + τ) / |ts|⌉, with a minimum of one slot.
func (s SlotConfig) DataSlots(dataTx, tau time.Duration) int64 {
	total := dataTx + tau
	n := int64((total + s.Len() - 1) / s.Len())
	if n < 1 {
		n = 1
	}
	return n
}

// AckSlot implements Equation (5): the slot in which the receiver sends
// its Ack, given the slot the data transmission started in, the data
// transmission time, and the pairwise propagation delay:
// ts(Ack) = ts(Data) + ⌈(TD + τ) / |ts|⌉.
func (s SlotConfig) AckSlot(dataSlot int64, dataTx, tau time.Duration) int64 {
	return dataSlot + s.DataSlots(dataTx, tau)
}
