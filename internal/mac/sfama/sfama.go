// Package sfama implements Slotted FAMA (Molins & Stojanovic, OCEANS
// 2006), the conservative baseline of the paper's evaluation. Time is
// divided into slots of length τmax + ω; every RTS, CTS, Data, and Ack
// is sent at a slot boundary; any node that overhears a negotiation
// frame not addressed to it defers for the full predicted duration of
// that exchange. Each transmission therefore reserves the worst-case
// propagation delay, which is exactly why its bandwidth utilization is
// poor — the property EW-MAC exploits.
package sfama

import (
	"ewmac/internal/mac"
	"ewmac/internal/packet"
)

// MAC is the Slotted FAMA protocol.
type MAC struct {
	*mac.Base
}

var _ mac.Protocol = (*MAC)(nil)

// New builds an S-FAMA node over the shared base engine.
func New(cfg mac.Config) (*MAC, error) {
	cfg.LenientGrant = false
	base, err := mac.NewBase(cfg)
	if err != nil {
		return nil, err
	}
	m := &MAC{Base: base}
	base.SetHooks(m)
	return m, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "S-FAMA" }

// PickWinner implements mac.Hooks: the original S-FAMA replies to the
// first successfully received RTS; later ones in the same slot lose.
func (m *MAC) PickWinner(cands []*packet.Frame) *packet.Frame {
	if len(cands) == 0 {
		return nil
	}
	return cands[0]
}

// Piggyback implements mac.Hooks: S-FAMA carries no neighbor state —
// it is the zero-overhead baseline of Figure 10.
func (m *MAC) Piggyback(*packet.Frame) {}

// OnSlotStart implements mac.Hooks.
func (m *MAC) OnSlotStart(int64) {}

// OnContentionLost implements mac.Hooks: S-FAMA simply backs off.
func (m *MAC) OnContentionLost(*packet.Frame) {}

// OnNegotiated implements mac.Hooks.
func (m *MAC) OnNegotiated(*packet.Frame) {}

// OnOverheard implements mac.Hooks: the defer behaviour is already
// handled by the base ledger.
func (m *MAC) OnOverheard(*packet.Frame) {}

// OnExtraFrame implements mac.Hooks: S-FAMA has no extra-communication
// path; a stray extra frame is ignored.
func (m *MAC) OnExtraFrame(*packet.Frame) {}

// OnRestart implements mac.Hooks: S-FAMA keeps no protocol-private
// exchange state beyond the base.
func (m *MAC) OnRestart() {}
