package sfama

import (
	"testing"
	"time"

	"ewmac/internal/acoustic"
	"ewmac/internal/channel"
	"ewmac/internal/energy"
	"ewmac/internal/mac"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
	"ewmac/internal/topology"
	"ewmac/internal/vec"
)

type rig struct {
	eng  *sim.Engine
	ch   *channel.Channel
	macs []*MAC
}

func newRig(t *testing.T, seed int64, positions ...vec.V3) *rig {
	t.Helper()
	eng := sim.NewEngine(seed)
	model := acoustic.DefaultModel()
	nodes := make([]*topology.Node, len(positions))
	for i, p := range positions {
		nodes[i] = &topology.Node{ID: packet.NodeID(i + 1), Pos: p}
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	slots := mac.SlotConfig{
		Omega:  packet.Duration(packet.ControlBits, model.BitRate()),
		TauMax: model.MaxDelay(),
	}
	r := &rig{eng: eng, ch: ch}
	for i := range positions {
		modem, err := phy.NewModem(phy.Config{
			ID:     packet.NodeID(i + 1),
			Engine: eng,
			Model:  model,
			Medium: ch,
			Energy: energy.DefaultProfile(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(modem); err != nil {
			t.Fatal(err)
		}
		m, err := New(mac.Config{
			ID:          packet.NodeID(i + 1),
			Engine:      eng,
			Modem:       modem,
			Slots:       slots,
			BitRate:     model.BitRate(),
			EnableHello: true,
			HelloWindow: 5 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		modem.SetListener(m)
		r.macs = append(r.macs, m)
		m.Start()
	}
	return r
}

func (r *rig) enqueueAt(at time.Duration, from int, dst packet.NodeID, bits int) {
	m := r.macs[from-1]
	r.eng.MustScheduleAt(sim.At(at), sim.PriorityApp, func() {
		m.Enqueue(mac.AppPacket{Dst: dst, Bits: bits})
	})
}

func TestBasicHandshakeDelivers(t *testing.T) {
	r := newRig(t, 1,
		vec.V3{Z: 100},
		vec.V3{X: 800, Z: 300},
	)
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.eng.RunUntil(sim.At(30 * time.Second))

	rx := r.macs[0].Counters()
	tx := r.macs[1].Counters()
	if rx.DeliveredPackets != 1 || rx.DeliveredBits != 2048 {
		t.Fatalf("receiver counters %+v", rx)
	}
	if tx.AckedPackets != 1 {
		t.Fatalf("sender not acknowledged: %+v", tx)
	}
	if tx.RTSSent != 1 || rx.CTSSent != 1 {
		t.Errorf("handshake used %d RTS / %d CTS, want 1/1", tx.RTSSent, rx.CTSSent)
	}
	if r.macs[1].QueueLen() != 0 {
		t.Error("packet still queued after ack")
	}
	if rx.LatencySum <= 0 {
		t.Error("no latency recorded")
	}
}

func TestHandshakeSlotAlignment(t *testing.T) {
	// Every primary frame must leave at a slot boundary.
	r := newRig(t, 1,
		vec.V3{Z: 100},
		vec.V3{X: 800, Z: 300},
	)
	slots := r.macs[0].Slots()
	bad := 0
	r.ch.SetTrace(func(_, _ packet.NodeID, f *packet.Frame, _ time.Duration, _ float64) {
		switch f.Kind {
		case packet.KindRTS, packet.KindCTS, packet.KindData, packet.KindAck:
			at := sim.At(f.Timestamp)
			if slots.StartOf(slots.SlotAt(at)) != at {
				bad++
				t.Errorf("%v sent off-slot at %v", f, f.Timestamp)
			}
		}
	})
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.eng.RunUntil(sim.At(30 * time.Second))
	if bad == 0 {
		t.Log("all primary frames slot-aligned")
	}
}

func TestEquation5MultiSlotData(t *testing.T) {
	// A 4096-bit payload at a ~1.45 km distance: TD + τ exceeds one
	// slot, so per Equation (5) the Ack comes two slots after the
	// data, not one.
	r := newRig(t, 1,
		vec.V3{Z: 100},
		vec.V3{X: 1430, Z: 300},
	)
	slots := r.macs[0].Slots()
	var dataSlot, ackSlot int64 = -1, -1
	r.ch.SetTrace(func(_, _ packet.NodeID, f *packet.Frame, _ time.Duration, _ float64) {
		switch f.Kind {
		case packet.KindData:
			dataSlot = slots.SlotAt(sim.At(f.Timestamp))
		case packet.KindAck:
			ackSlot = slots.SlotAt(sim.At(f.Timestamp))
		}
	})
	r.enqueueAt(9*time.Second, 2, 1, 4096)
	r.eng.RunUntil(sim.At(40 * time.Second))
	if dataSlot < 0 || ackSlot < 0 {
		t.Fatal("handshake did not complete")
	}
	if got := ackSlot - dataSlot; got != 2 {
		t.Errorf("Ack %d slots after Data, want 2 (Equation (5))", got)
	}
	if r.macs[1].Counters().AckedPackets != 1 {
		t.Error("multi-slot exchange not acknowledged")
	}
}

func TestOverhearerDefersDuringExchange(t *testing.T) {
	// Node 3 overhears the 2→1 negotiation and must not transmit its
	// RTS until the exchange (through the Ack slot) is over.
	r := newRig(t, 1,
		vec.V3{Z: 100},
		vec.V3{X: 800, Z: 300},
		vec.V3{X: 400, Y: 500, Z: 400},
	)
	slots := r.macs[0].Slots()
	var ctsSlot, thirdRTSSlot int64 = -1, -1
	var exchange *mac.Exchange
	r.ch.SetTrace(func(src, dst packet.NodeID, f *packet.Frame, _ time.Duration, _ float64) {
		if f.Kind == packet.KindCTS && src == 1 && f.Dst == 2 && exchange == nil {
			ctsSlot = slots.SlotAt(sim.At(f.Timestamp))
			exchange = &mac.Exchange{
				Sender: 2, Receiver: 1, RTSSlot: ctsSlot - 1,
				PairDelay: f.PairDelay,
				DataTx:    packet.Duration(packet.DataHeaderBits+f.DataBits, 12000),
				Confirmed: true,
			}
		}
		if f.Kind == packet.KindRTS && src == 3 && thirdRTSSlot < 0 {
			thirdRTSSlot = slots.SlotAt(sim.At(f.Timestamp))
		}
	})
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	// Node 3 wants to talk mid-exchange.
	r.enqueueAt(10500*time.Millisecond, 3, 1, 2048)
	r.eng.RunUntil(sim.At(60 * time.Second))
	if ctsSlot < 0 || thirdRTSSlot < 0 {
		t.Fatal("expected both the exchange and the deferred RTS")
	}
	if exchange != nil {
		end := exchange.EndSlot(slots)
		if thirdRTSSlot < end {
			t.Errorf("overhearer transmitted in slot %d, inside the exchange (ends %d)", thirdRTSSlot, end)
		}
	}
	// Both packets are eventually delivered.
	if got := r.macs[0].Counters().DeliveredPackets; got != 2 {
		t.Errorf("delivered %d, want 2", got)
	}
}

func TestContentionFailureBacksOffAndRetries(t *testing.T) {
	// Two senders RTS the same receiver in the same slot; S-FAMA's
	// receiver defers on the overheard RTS, so both fail and retry
	// later. Eventually both deliver.
	r := newRig(t, 3,
		vec.V3{Z: 100},
		vec.V3{X: 800, Z: 300},
		vec.V3{X: 0, Y: 800, Z: 400},
	)
	r.enqueueAt(9*time.Second, 2, 1, 2048)
	r.enqueueAt(9*time.Second, 3, 1, 2048)
	r.eng.RunUntil(sim.At(240 * time.Second))
	got := r.macs[0].Counters().DeliveredPackets
	if got != 2 {
		t.Fatalf("delivered %d, want 2 after retries", got)
	}
	fails := r.macs[1].Counters().ContentionFailures + r.macs[2].Counters().ContentionFailures
	if fails == 0 {
		t.Error("no contention failures recorded in a colliding scenario")
	}
}

func TestSinkNeverContends(t *testing.T) {
	eng := sim.NewEngine(1)
	model := acoustic.DefaultModel()
	nodes := []*topology.Node{
		{ID: 1, Pos: vec.V3{Z: 0}, Sink: true},
		{ID: 2, Pos: vec.V3{X: 500, Z: 200}},
	}
	region := vec.Box{Min: vec.V3{X: -1e4, Y: -1e4, Z: 0}, Max: vec.V3{X: 1e4, Y: 1e4, Z: 1e4}}
	net, err := topology.NewNetwork(region, model, nodes)
	if err != nil {
		t.Fatal(err)
	}
	ch, err := channel.New(eng, net)
	if err != nil {
		t.Fatal(err)
	}
	slots := mac.SlotConfig{Omega: packet.Duration(packet.ControlBits, model.BitRate()), TauMax: model.MaxDelay()}
	var macs []*MAC
	for i, n := range nodes {
		modem, err := phy.NewModem(phy.Config{ID: n.ID, Engine: eng, Model: model, Medium: ch, Energy: energy.DefaultProfile()})
		if err != nil {
			t.Fatal(err)
		}
		if err := ch.Register(modem); err != nil {
			t.Fatal(err)
		}
		m, err := New(mac.Config{
			ID: n.ID, Engine: eng, Modem: modem, Slots: slots,
			BitRate: model.BitRate(), IsSink: i == 0,
		})
		if err != nil {
			t.Fatal(err)
		}
		modem.SetListener(m)
		macs = append(macs, m)
		m.Start()
	}
	// Even with a queued packet, the sink must not send RTS.
	macs[0].Enqueue(mac.AppPacket{Dst: 2, Bits: 1024})
	macs[1].Enqueue(mac.AppPacket{Dst: 1, Bits: 1024})
	eng.RunUntil(sim.At(30 * time.Second))
	if macs[0].Counters().RTSSent != 0 {
		t.Error("sink transmitted an RTS")
	}
	if macs[0].Counters().DeliveredPackets != 1 {
		t.Error("sink failed to receive")
	}
}

func TestPickWinnerFirstArrival(t *testing.T) {
	r := newRig(t, 1, vec.V3{Z: 100})
	m := r.macs[0]
	a := &packet.Frame{Kind: packet.KindRTS, Src: 2, Dst: 1, RP: 0.1}
	b := &packet.Frame{Kind: packet.KindRTS, Src: 3, Dst: 1, RP: 0.9}
	if w := m.PickWinner([]*packet.Frame{a, b}); w != a {
		t.Error("S-FAMA should answer the first RTS, not the highest priority")
	}
	if m.PickWinner(nil) != nil {
		t.Error("empty candidates should yield nil")
	}
}

func TestNoPiggyback(t *testing.T) {
	r := newRig(t, 1, vec.V3{Z: 100})
	f := r.macs[0].NewFrame(packet.KindCTS, 2)
	f.PairDelay = time.Second
	r.macs[0].Piggyback(f)
	if len(f.Neighbors) != 0 {
		t.Error("S-FAMA control frames must carry no neighbor state")
	}
	if f.Bits() != packet.ControlBits {
		t.Errorf("control frame is %d bits, want %d", f.Bits(), packet.ControlBits)
	}
}
