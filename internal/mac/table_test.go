package mac

import (
	"testing"
	"time"

	"ewmac/internal/packet"
	"ewmac/internal/sim"
)

func TestTableObserveDerivesDelay(t *testing.T) {
	tab := NewNeighborTable(0)
	// Frame sent at t=10s, tx took 5 ms, arrival completed at 10.505 s:
	// delay = 500 ms.
	f := &packet.Frame{Kind: packet.KindRTS, Src: 4, Dst: 9, Timestamp: 10 * time.Second}
	tab.Observe(f, sim.At(10*time.Second+505*time.Millisecond), 5*time.Millisecond)
	d, ok := tab.Delay(4, sim.At(11*time.Second))
	if !ok || d != 500*time.Millisecond {
		t.Fatalf("Delay = %v, %v; want 500ms", d, ok)
	}
}

func TestTableNegativeDelayClamped(t *testing.T) {
	tab := NewNeighborTable(0)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 4, Dst: 9, Timestamp: 20 * time.Second}
	tab.Observe(f, sim.At(10*time.Second), time.Millisecond)
	d, ok := tab.Delay(4, sim.At(11*time.Second))
	if !ok || d != 0 {
		t.Fatalf("bogus timestamp should clamp to 0, got %v, %v", d, ok)
	}
}

func TestTableTTL(t *testing.T) {
	tab := NewNeighborTable(10 * time.Second)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 4, Dst: 9, Timestamp: 0}
	tab.Observe(f, sim.At(time.Second), time.Millisecond)
	if _, ok := tab.Delay(4, sim.At(5*time.Second)); !ok {
		t.Error("fresh entry expired")
	}
	if _, ok := tab.Delay(4, sim.At(12*time.Second)); ok {
		t.Error("stale entry survived TTL")
	}
	// Re-observing refreshes.
	f2 := &packet.Frame{Kind: packet.KindCTS, Src: 4, Dst: 9, Timestamp: 14 * time.Second}
	tab.Observe(f2, sim.At(14*time.Second+200*time.Millisecond), 0)
	if d, ok := tab.Delay(4, sim.At(20*time.Second)); !ok || d != 200*time.Millisecond {
		t.Errorf("refresh failed: %v, %v", d, ok)
	}
}

func TestObservePairDoesNotOverrideMeasurement(t *testing.T) {
	tab := NewNeighborTable(0)
	f := &packet.Frame{Kind: packet.KindRTS, Src: 4, Dst: 9, Timestamp: 0}
	tab.Observe(f, sim.At(300*time.Millisecond), 0)
	tab.ObservePair(4, 999*time.Millisecond, sim.At(time.Second))
	if d, _ := tab.Delay(4, sim.At(time.Second)); d != 300*time.Millisecond {
		t.Errorf("piggybacked info overwrote direct measurement: %v", d)
	}
	tab.ObservePair(7, 400*time.Millisecond, sim.At(time.Second))
	if d, ok := tab.Delay(7, sim.At(time.Second)); !ok || d != 400*time.Millisecond {
		t.Errorf("pair info not stored for unknown node: %v, %v", d, ok)
	}
	tab.ObservePair(packet.Nobody, time.Second, sim.At(time.Second))
	tab.ObservePair(packet.Broadcast, time.Second, sim.At(time.Second))
	if tab.Len() != 2 {
		t.Errorf("Len = %d after reserved-ID inserts, want 2", tab.Len())
	}
}

func TestKnownSortedAndSnapshot(t *testing.T) {
	tab := NewNeighborTable(0)
	for _, id := range []packet.NodeID{9, 3, 7} {
		f := &packet.Frame{Kind: packet.KindHello, Src: id, Dst: packet.Broadcast, Timestamp: 0}
		tab.Observe(f, sim.At(time.Duration(id)*time.Millisecond), 0)
	}
	ids := tab.Known(sim.At(time.Second))
	if len(ids) != 3 || ids[0] != 3 || ids[1] != 7 || ids[2] != 9 {
		t.Fatalf("Known = %v", ids)
	}
	snap := tab.Snapshot(sim.At(time.Second), 2)
	if len(snap) != 2 || snap[0].ID != 3 || snap[1].ID != 7 {
		t.Fatalf("Snapshot = %v", snap)
	}
	if full := tab.Snapshot(sim.At(time.Second), -1); len(full) != 3 {
		t.Fatalf("unbounded Snapshot = %v", full)
	}
}
