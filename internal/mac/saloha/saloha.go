// Package saloha implements slotted ALOHA with acknowledgements — an
// extension baseline beyond the paper's evaluation set. It skips the
// RTS/CTS negotiation entirely: a backlogged node transmits its data
// packet at a slot boundary and waits one round trip for the Ack,
// backing off binary-exponentially on silence.
//
// It exists for two reasons. First, as the classic lower anchor for
// handshake protocols: without reservations, every overlapping data
// packet is lost whole, so ALOHA collapses far earlier than S-FAMA as
// load grows. Second, as a demonstration that the framework's pieces
// (slot math, queues, modem, counters) compose into protocols that do
// not share the four-way-handshake engine at all.
package saloha

import (
	"fmt"
	"time"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// MAC is the slotted-ALOHA protocol. Unlike the paper's four
// protocols it is not built on mac.Base: it runs its own minimal slot
// loop.
type MAC struct {
	cfg   mac.Config
	rng   *sim.RNG
	queue mac.Queue

	waitingAck  bool
	ackDeadline int64
	sentSeq     uint32
	sentOrigin  packet.NodeID
	// xidSeq allocates exchange-lineage IDs; sentXID is the lineage of
	// the data transmission currently awaiting its Ack.
	xidSeq      uint64
	sentXID     uint64
	backoffLeft int
	cw          int
	attempts    int
	seq         uint32
	seen        map[uint64]struct{}
	// Liveness state, mirroring mac.Base: consecutive ack timeouts per
	// peer, the resulting verdicts, and the slot the current ack wait
	// started at (watchdog input).
	peerFails map[packet.NodeID]int
	peerState map[packet.NodeID]mac.PeerState
	waitSlot  int64
	// Overload-protection state, mirroring mac.Base: the hysteresis
	// admission gate and the per-node retry token bucket.
	gate     mac.AdmissionGate
	bucket   mac.RetryBucket
	counters mac.Counters
	started  bool
	nextSlot int64
}

var _ mac.Protocol = (*MAC)(nil)

// New builds a slotted-ALOHA node.
func New(cfg mac.Config) (*MAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CWMin <= 0 {
		cfg.CWMin = 2
	}
	if cfg.CWMax < cfg.CWMin {
		cfg.CWMax = 128
	}
	if cfg.Recovery.Enabled {
		cfg.Recovery = cfg.Recovery.WithDefaults()
	}
	cfg.Overload = cfg.Overload.WithDefaults()
	m := &MAC{
		cfg:       cfg,
		rng:       cfg.Engine.RNG(fmt.Sprintf("saloha/%d", cfg.ID)),
		cw:        cfg.CWMin,
		seen:      make(map[uint64]struct{}),
		peerFails: make(map[packet.NodeID]int),
		peerState: make(map[packet.NodeID]mac.PeerState),
		gate:      mac.NewAdmissionGate(cfg),
		bucket:    mac.NewRetryBucket(cfg),
	}
	// The queue comes from the shared constructor so drop-policy and
	// bound wiring cannot drift from mac.Base.
	m.queue = mac.NewQueue(cfg,
		func() time.Duration { return cfg.Engine.Now().Duration() },
		m.dropPacket, m.queueEvent)
	return m, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "S-ALOHA" }

// Counters implements mac.Protocol.
func (m *MAC) Counters() mac.Counters { return m.counters }

// QueueLen implements mac.Protocol.
func (m *MAC) QueueLen() int { return m.queue.Len() }

// Enqueue implements mac.Protocol.
func (m *MAC) Enqueue(p mac.AppPacket) {
	if p.Origin == packet.Nobody {
		p.Origin = m.cfg.ID
	}
	if p.Seq == 0 {
		m.seq++
		p.Seq = m.seq
	}
	// Every offered packet counts as generated, whether it queues or is
	// refused with a typed drop below (mirrors mac.Base).
	m.counters.Generated++
	if m.cfg.Recovery.Enabled && m.peerState[p.Dst] == mac.PeerDead {
		m.dropPacket(p, obs.DropDeadPeer)
		return
	}
	if ttl := m.cfg.Overload.PacketTTL; ttl > 0 && p.Deadline == 0 {
		p.Deadline = p.GeneratedAt + ttl
	}
	if m.gate.Enabled() && !(m.cfg.Overload.Priority && p.High) {
		closed, changed := m.gate.Update(m.queue.Len())
		if changed {
			if closed {
				m.emitOverload(obs.OverloadShedBegin)
			} else {
				m.emitOverload(obs.OverloadShedEnd)
			}
		}
		if closed {
			m.dropPacket(p, obs.DropShed)
			return
		}
	}
	if !m.queue.Push(p) {
		m.dropPacket(p, obs.DropQueueFull)
	}
}

// Backpressure reports whether the admission gate is currently closed,
// re-evaluated against live occupancy (mirrors mac.Base).
func (m *MAC) Backpressure() bool {
	if !m.gate.Enabled() {
		return false
	}
	closed, changed := m.gate.Update(m.queue.Len())
	if changed {
		if closed {
			m.emitOverload(obs.OverloadShedBegin)
		} else {
			m.emitOverload(obs.OverloadShedEnd)
		}
	}
	return closed
}

// emitOverload records one overload-protection lifecycle step.
func (m *MAC) emitOverload(action string) {
	if m.cfg.Recorder != nil {
		obs.Overload{Node: m.cfg.ID, Action: action, Len: m.queue.Len()}.Emit(m.recNow())
	}
}

// queueEvent observes transmit-queue occupancy changes (the Queue's
// OnEvent hook), mirroring mac.Base.
func (m *MAC) queueEvent(pushed bool, p mac.AppPacket) {
	r := m.cfg.Recorder
	if r == nil {
		return
	}
	now := m.cfg.Engine.Now()
	ev := obs.QueueDepth{Node: m.cfg.ID, Len: m.queue.Len(), Op: obs.QueuePush}
	if !pushed {
		ev.Op = obs.QueuePop
		ev.Sojourn = now.Duration() - p.GeneratedAt
	}
	ev.Emit(r, now)
}

// Start implements mac.Protocol.
func (m *MAC) Start() {
	if m.started {
		return
	}
	m.started = true
	now := m.cfg.Engine.Now()
	m.nextSlot = m.cfg.Slots.SlotAt(now)
	if m.cfg.Slots.StartOf(m.nextSlot) != now {
		m.nextSlot++
	}
	m.scheduleSlot()
}

func (m *MAC) scheduleSlot() {
	slot := m.nextSlot
	m.nextSlot++
	at := m.cfg.Slots.StartOf(slot)
	if m.cfg.Clock != nil {
		// Fire the boundary where the local clock believes it is; a
		// clock corrected backwards degrades to firing immediately.
		at = m.cfg.Clock.TrueTime(at.Duration())
		if now := m.cfg.Engine.Now(); at.Before(now) {
			at = now
		}
	}
	m.cfg.Engine.MustScheduleAt(at, sim.PriorityMAC, func() {
		m.onSlot(slot)
		m.scheduleSlot()
	})
}

// localNow is the node's local clock reading (engine time when no
// drifting clock is injected).
func (m *MAC) localNow() sim.Time {
	now := m.cfg.Engine.Now()
	if m.cfg.Clock == nil {
		return now
	}
	return sim.At(m.cfg.Clock.Local(now))
}

// Restart cold-starts the node after a crash/recovery cycle: in-flight
// ack waits and backoff state are forgotten; the queue, dedupe set and
// counters survive.
func (m *MAC) Restart() {
	m.setWaiting(false, m.cfg.Slots.SlotAt(m.cfg.Engine.Now()))
	m.queue.UnlockHead()
	m.backoffLeft = 0
	m.cw = m.cfg.CWMin
	m.attempts = 0
	// Liveness history is soft state too: forgotten on a cold start.
	m.peerFails = make(map[packet.NodeID]int)
	m.peerState = make(map[packet.NodeID]mac.PeerState)
}

// PeerState returns the liveness verdict for peer.
func (m *MAC) PeerState(peer packet.NodeID) mac.PeerState {
	return m.peerState[peer]
}

// Stranded counts queued packets whose next hop is currently dead.
func (m *MAC) Stranded() int {
	if !m.cfg.Recovery.Enabled {
		return 0
	}
	n := 0
	for _, p := range m.queue.Items() {
		if m.peerState[p.Dst] == mac.PeerDead {
			n++
		}
	}
	return n
}

// dropPacket accounts one abandoned packet under the given typed
// reason, mirroring mac.Base. It doubles as the Queue's OnDrop hook,
// so policy evictions land here too.
func (m *MAC) dropPacket(p mac.AppPacket, reason string) {
	m.counters.CountDrop(reason)
	if m.cfg.Recorder != nil {
		obs.PacketDrop{
			Node: m.cfg.ID, Peer: p.Dst, Reason: reason,
			Origin: p.Origin, Seq: p.Seq,
		}.Emit(m.recNow())
	}
}

// noteFailure records one ack timeout toward peer, walking it through
// suspect and dead; returns true when this failure killed the peer
// (its queued traffic was purged).
func (m *MAC) noteFailure(peer packet.NodeID) bool {
	rc := &m.cfg.Recovery
	if !rc.Enabled || peer == packet.Nobody || peer == packet.Broadcast {
		return false
	}
	n := m.peerFails[peer] + 1
	m.peerFails[peer] = n
	st := m.peerState[peer]
	if st == mac.PeerAlive && n >= rc.SuspectAfter {
		st = mac.PeerSuspect
		m.peerState[peer] = st
		m.counters.SuspectMarks++
		if m.cfg.Recorder != nil {
			obs.Recovery{
				Node: m.cfg.ID, Peer: peer, Action: obs.RecoverySuspect,
				Detail: fmt.Sprintf("%d consecutive ack timeouts", n),
			}.Emit(m.recNow())
		}
	}
	if st != mac.PeerDead && n >= rc.DeadAfter {
		m.peerState[peer] = mac.PeerDead
		m.counters.DeadMarks++
		if m.cfg.Recorder != nil {
			obs.Recovery{
				Node: m.cfg.ID, Peer: peer, Action: obs.RecoveryDead,
				Detail: fmt.Sprintf("%d consecutive ack timeouts", n),
			}.Emit(m.recNow())
		}
		for i := 0; i < m.queue.Len(); {
			p := m.queue.Items()[i]
			if p.Dst != peer {
				i++
				continue
			}
			m.queue.RemoveAt(i)
			m.dropPacket(p, obs.DropDeadPeer)
		}
		return true
	}
	return false
}

// noteAlive clears the failure history for peer on any decoded frame
// from it, resurrecting a suspect/dead peer.
func (m *MAC) noteAlive(peer packet.NodeID) {
	if !m.cfg.Recovery.Enabled {
		return
	}
	st := m.peerState[peer]
	if st == mac.PeerAlive {
		if m.peerFails[peer] != 0 {
			delete(m.peerFails, peer)
		}
		return
	}
	delete(m.peerFails, peer)
	delete(m.peerState, peer)
	if st == mac.PeerDead {
		m.counters.Resurrections++
		if m.cfg.Recorder != nil {
			obs.Recovery{
				Node: m.cfg.ID, Peer: peer, Action: obs.RecoveryResurrect,
				Detail: "frame overheard from dead peer",
			}.Emit(m.recNow())
		}
	}
}

// watchdogCheck force-resets a node wedged in its ack wait far past
// the deadline-derived bound (a no-op unless recovery is enabled; the
// normal timeout path should always fire first, so this is the
// backstop against scheduling pathologies under injected drift).
func (m *MAC) watchdogCheck(s int64) {
	if !m.cfg.Recovery.Enabled || !m.waitingAck {
		return
	}
	bound := m.cfg.Recovery.WatchdogFactor * (m.ackDeadline - m.waitSlot + 2)
	if s-m.waitSlot <= bound {
		return
	}
	m.counters.WatchdogResets++
	if m.cfg.Recorder != nil {
		obs.Recovery{
			Node: m.cfg.ID, Action: obs.RecoveryWatchdog,
			Detail: fmt.Sprintf("stuck in wait-ack for %d slots (bound %d)", s-m.waitSlot, bound),
		}.Emit(m.recNow())
	}
	m.Restart()
}

// recNow returns the recorder and current instant, shaped so emission
// sites read obs.X{...}.Emit(m.recNow()) and go through the pooled,
// non-boxing record path.
func (m *MAC) recNow() (obs.Recorder, sim.Time) {
	return m.cfg.Recorder, m.cfg.Engine.Now()
}

// setWaiting flips the single piece of protocol state S-ALOHA has,
// recording it as an idle/wait-ack transition.
func (m *MAC) setWaiting(w bool, slot int64) {
	if m.cfg.Recorder != nil && w != m.waitingAck {
		from, to := "idle", "wait-ack"
		if !w {
			from, to = to, from
		}
		obs.MACState{Node: m.cfg.ID, From: from, To: to, Slot: slot}.Emit(m.recNow())
	}
	m.waitingAck = w
}

func (m *MAC) onSlot(s int64) {
	m.watchdogCheck(s)
	if m.waitingAck {
		if s >= m.ackDeadline {
			m.setWaiting(false, s)
			m.counters.Retransmissions++
			m.emitTimeout(s)
			head, okHead := m.queue.Peek()
			if okHead {
				m.counters.RetransmittedBits += uint64(head.Bits)
			}
			m.attempts++
			if okHead && m.noteFailure(head.Dst) {
				// The timeout killed the peer; its queued traffic
				// (including the head) was purged with typed drops.
				m.attempts = 0
			} else if m.cfg.MaxRetries > 0 && m.attempts >= m.cfg.MaxRetries {
				if p, ok := m.queue.Pop(); ok {
					m.dropPacket(p, obs.DropRetryExhausted)
				}
				m.attempts = 0
			}
			m.backoffLeft = 1 + m.rng.Intn(m.cw)
			if m.cw < m.cfg.CWMax {
				m.cw *= 2
				if m.cw > m.cfg.CWMax {
					m.cw = m.cfg.CWMax
				}
			}
			// The round is over: release the in-flight pin so shedding
			// policies may touch the head again.
			m.queue.UnlockHead()
		}
		return
	}
	if m.cfg.IsSink {
		return
	}
	head, ok := m.queue.Peek()
	if !ok {
		return
	}
	if m.cfg.Recovery.Enabled && m.peerState[head.Dst] == mac.PeerDead {
		// Never transmit toward a corpse: abandon the head with a typed
		// reason instead of retrying into a void.
		m.queue.Pop()
		m.dropPacket(head, obs.DropDeadPeer)
		return
	}
	if m.attempts > 0 &&
		(m.cfg.Overload.Priority || m.cfg.Overload.Policy == mac.DropDeadline) &&
		(head.Origin != m.sentOrigin || head.Seq != m.sentSeq) {
		// The backlog was reshuffled between failed rounds: the failure
		// history belongs to the old head, not this packet.
		m.attempts = 0
	}
	if m.cfg.Modem.Transmitting() || m.cfg.Modem.Receiving() {
		return
	}
	if m.backoffLeft > 0 {
		m.backoffLeft--
		return
	}
	if m.attempts > 0 && !m.bucket.Allow(s) {
		// A retransmission with an empty retry budget: defer to a later
		// slot instead of joining a fleet-wide retry storm. First
		// attempts are never gated.
		m.counters.RetryDeferrals++
		m.emitOverload(obs.OverloadRetryDefer)
		return
	}
	// Each transmission attempt is its own exchange: a retransmission
	// after a lost Ack gets a fresh lineage, like a fresh RTS round in
	// the handshake protocols.
	m.xidSeq++
	f := &packet.Frame{
		Kind:        packet.KindData,
		Src:         m.cfg.ID,
		Dst:         head.Dst,
		Seq:         head.Seq,
		Origin:      head.Origin,
		GeneratedAt: head.GeneratedAt,
		DataBits:    head.Bits,
		Timestamp:   m.localNow().Duration(),
		XID:         uint64(m.cfg.ID)<<32 | m.xidSeq,
	}
	if err := m.cfg.Modem.Transmit(f); err != nil {
		return
	}
	m.setWaiting(true, s)
	// The head is in flight until the Ack or the timeout: pin it
	// against every shedding scan.
	m.queue.LockHead()
	m.waitSlot = s
	m.sentSeq = head.Seq
	m.sentOrigin = head.Origin
	m.sentXID = f.XID
	// The data may span several slots (Equation (5)); the Ack comes one
	// slot after it fully arrives, worst case τmax away.
	dataTx := packet.Duration(packet.DataHeaderBits+head.Bits, m.cfg.BitRate)
	m.ackDeadline = m.cfg.Slots.AckSlot(s, dataTx, m.cfg.Slots.TauMax) + 2
}

// OnFrameReceived implements phy.Listener.
func (m *MAC) OnFrameReceived(f *packet.Frame) {
	// Any decoded frame proves the peer transmits: resurrect it if the
	// liveness layer had written it off.
	m.noteAlive(f.Src)
	switch f.Kind {
	case packet.KindData:
		if f.Dst != m.cfg.ID {
			return
		}
		key := uint64(f.Origin)<<32 | uint64(f.Seq)
		if _, dup := m.seen[key]; dup {
			m.counters.DuplicatesRx++
		} else {
			m.seen[key] = struct{}{}
			m.counters.DeliveredPackets++
			m.counters.DeliveredBits += uint64(f.DataBits)
			latency := m.cfg.Engine.Now().Duration() - f.GeneratedAt
			m.counters.LatencySum += latency
			if m.cfg.Recorder != nil {
				obs.Delivery{
					Node: m.cfg.ID, Origin: f.Origin, Seq: f.Seq,
					Bits: f.DataBits, Latency: latency, XID: f.XID,
				}.Emit(m.recNow())
			}
		}
		ack := &packet.Frame{
			Kind: packet.KindAck, Src: m.cfg.ID, Dst: f.Src, Seq: f.Seq,
			Timestamp: m.localNow().Duration(), XID: f.XID,
		}
		// The Ack goes out at the next slot boundary to keep the
		// channel slot-aligned.
		at := m.cfg.Slots.StartOf(m.cfg.Slots.SlotAt(m.cfg.Engine.Now()) + 1)
		if now := m.cfg.Engine.Now(); at.Before(now) {
			at = now
		}
		m.cfg.Engine.MustScheduleAt(at, sim.PriorityMAC, func() {
			ack.Timestamp = m.localNow().Duration()
			_ = m.cfg.Modem.Transmit(ack)
		})
	case packet.KindAck:
		if f.Dst != m.cfg.ID || !m.waitingAck || f.Seq != m.sentSeq {
			return
		}
		m.setWaiting(false, m.cfg.Slots.SlotAt(m.cfg.Engine.Now()))
		m.queue.Pop()
		m.counters.AckedPackets++
		m.cw = m.cfg.CWMin
	default:
		// ALOHA ignores every negotiation frame.
	}
}

// emitTimeout records an unanswered data transmission (ALOHA has no
// RTS round; the ack wait is its whole contention).
func (m *MAC) emitTimeout(slot int64) {
	if m.cfg.Recorder != nil {
		if head, ok := m.queue.Peek(); ok {
			obs.Contention{
				Node: m.cfg.ID, Peer: head.Dst,
				Outcome: obs.ContentionTimeout, Slot: slot, XID: m.sentXID,
			}.Emit(m.recNow())
		}
	}
}

// OnFrameLost implements phy.Listener.
func (m *MAC) OnFrameLost(*packet.Frame, phy.LossReason) {}

// OnTxDone implements phy.Listener.
func (m *MAC) OnTxDone(*packet.Frame) {}
