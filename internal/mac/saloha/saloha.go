// Package saloha implements slotted ALOHA with acknowledgements — an
// extension baseline beyond the paper's evaluation set. It skips the
// RTS/CTS negotiation entirely: a backlogged node transmits its data
// packet at a slot boundary and waits one round trip for the Ack,
// backing off binary-exponentially on silence.
//
// It exists for two reasons. First, as the classic lower anchor for
// handshake protocols: without reservations, every overlapping data
// packet is lost whole, so ALOHA collapses far earlier than S-FAMA as
// load grows. Second, as a demonstration that the framework's pieces
// (slot math, queues, modem, counters) compose into protocols that do
// not share the four-way-handshake engine at all.
package saloha

import (
	"fmt"

	"ewmac/internal/mac"
	"ewmac/internal/obs"
	"ewmac/internal/packet"
	"ewmac/internal/phy"
	"ewmac/internal/sim"
)

// MAC is the slotted-ALOHA protocol. Unlike the paper's four
// protocols it is not built on mac.Base: it runs its own minimal slot
// loop.
type MAC struct {
	cfg   mac.Config
	rng   *sim.RNG
	queue mac.Queue

	waitingAck  bool
	ackDeadline int64
	sentSeq     uint32
	// xidSeq allocates exchange-lineage IDs; sentXID is the lineage of
	// the data transmission currently awaiting its Ack.
	xidSeq      uint64
	sentXID     uint64
	backoffLeft int
	cw          int
	attempts    int
	seq         uint32
	seen        map[uint64]struct{}
	counters    mac.Counters
	started     bool
	nextSlot    int64
}

var _ mac.Protocol = (*MAC)(nil)

// New builds a slotted-ALOHA node.
func New(cfg mac.Config) (*MAC, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.CWMin <= 0 {
		cfg.CWMin = 2
	}
	if cfg.CWMax < cfg.CWMin {
		cfg.CWMax = 128
	}
	return &MAC{
		cfg:   cfg,
		rng:   cfg.Engine.RNG(fmt.Sprintf("saloha/%d", cfg.ID)),
		queue: mac.Queue{MaxLen: cfg.QueueMax},
		cw:    cfg.CWMin,
		seen:  make(map[uint64]struct{}),
	}, nil
}

// Name implements mac.Protocol.
func (m *MAC) Name() string { return "S-ALOHA" }

// Counters implements mac.Protocol.
func (m *MAC) Counters() mac.Counters { return m.counters }

// QueueLen implements mac.Protocol.
func (m *MAC) QueueLen() int { return m.queue.Len() }

// Enqueue implements mac.Protocol.
func (m *MAC) Enqueue(p mac.AppPacket) {
	if p.Origin == packet.Nobody {
		p.Origin = m.cfg.ID
	}
	if p.Seq == 0 {
		m.seq++
		p.Seq = m.seq
	}
	if m.queue.Push(p) {
		m.counters.Generated++
	}
}

// Start implements mac.Protocol.
func (m *MAC) Start() {
	if m.started {
		return
	}
	m.started = true
	now := m.cfg.Engine.Now()
	m.nextSlot = m.cfg.Slots.SlotAt(now)
	if m.cfg.Slots.StartOf(m.nextSlot) != now {
		m.nextSlot++
	}
	m.scheduleSlot()
}

func (m *MAC) scheduleSlot() {
	slot := m.nextSlot
	m.nextSlot++
	at := m.cfg.Slots.StartOf(slot)
	if m.cfg.Clock != nil {
		// Fire the boundary where the local clock believes it is; a
		// clock corrected backwards degrades to firing immediately.
		at = m.cfg.Clock.TrueTime(at.Duration())
		if now := m.cfg.Engine.Now(); at.Before(now) {
			at = now
		}
	}
	m.cfg.Engine.MustScheduleAt(at, sim.PriorityMAC, func() {
		m.onSlot(slot)
		m.scheduleSlot()
	})
}

// localNow is the node's local clock reading (engine time when no
// drifting clock is injected).
func (m *MAC) localNow() sim.Time {
	now := m.cfg.Engine.Now()
	if m.cfg.Clock == nil {
		return now
	}
	return sim.At(m.cfg.Clock.Local(now))
}

// Restart cold-starts the node after a crash/recovery cycle: in-flight
// ack waits and backoff state are forgotten; the queue, dedupe set and
// counters survive.
func (m *MAC) Restart() {
	m.setWaiting(false, m.cfg.Slots.SlotAt(m.cfg.Engine.Now()))
	m.backoffLeft = 0
	m.cw = m.cfg.CWMin
	m.attempts = 0
}

// emit records one observability event when a recorder is attached.
func (m *MAC) emit(e obs.Event) {
	if r := m.cfg.Recorder; r != nil {
		r.Record(m.cfg.Engine.Now(), e)
	}
}

// setWaiting flips the single piece of protocol state S-ALOHA has,
// recording it as an idle/wait-ack transition.
func (m *MAC) setWaiting(w bool, slot int64) {
	if m.cfg.Recorder != nil && w != m.waitingAck {
		from, to := "idle", "wait-ack"
		if !w {
			from, to = to, from
		}
		m.emit(obs.MACState{Node: m.cfg.ID, From: from, To: to, Slot: slot})
	}
	m.waitingAck = w
}

func (m *MAC) onSlot(s int64) {
	if m.waitingAck {
		if s >= m.ackDeadline {
			m.setWaiting(false, s)
			m.counters.Retransmissions++
			m.emitTimeout(s)
			if head, ok := m.queue.Peek(); ok {
				m.counters.RetransmittedBits += uint64(head.Bits)
			}
			m.attempts++
			if m.cfg.MaxRetries > 0 && m.attempts >= m.cfg.MaxRetries {
				m.queue.Pop()
				m.counters.Dropped++
				m.attempts = 0
			}
			m.backoffLeft = 1 + m.rng.Intn(m.cw)
			if m.cw < m.cfg.CWMax {
				m.cw *= 2
				if m.cw > m.cfg.CWMax {
					m.cw = m.cfg.CWMax
				}
			}
		}
		return
	}
	if m.cfg.IsSink {
		return
	}
	head, ok := m.queue.Peek()
	if !ok {
		return
	}
	if m.cfg.Modem.Transmitting() || m.cfg.Modem.Receiving() {
		return
	}
	if m.backoffLeft > 0 {
		m.backoffLeft--
		return
	}
	// Each transmission attempt is its own exchange: a retransmission
	// after a lost Ack gets a fresh lineage, like a fresh RTS round in
	// the handshake protocols.
	m.xidSeq++
	f := &packet.Frame{
		Kind:        packet.KindData,
		Src:         m.cfg.ID,
		Dst:         head.Dst,
		Seq:         head.Seq,
		Origin:      head.Origin,
		GeneratedAt: head.GeneratedAt,
		DataBits:    head.Bits,
		Timestamp:   m.localNow().Duration(),
		XID:         uint64(m.cfg.ID)<<32 | m.xidSeq,
	}
	if err := m.cfg.Modem.Transmit(f); err != nil {
		return
	}
	m.setWaiting(true, s)
	m.sentSeq = head.Seq
	m.sentXID = f.XID
	// The data may span several slots (Equation (5)); the Ack comes one
	// slot after it fully arrives, worst case τmax away.
	dataTx := packet.Duration(packet.DataHeaderBits+head.Bits, m.cfg.BitRate)
	m.ackDeadline = m.cfg.Slots.AckSlot(s, dataTx, m.cfg.Slots.TauMax) + 2
}

// OnFrameReceived implements phy.Listener.
func (m *MAC) OnFrameReceived(f *packet.Frame) {
	switch f.Kind {
	case packet.KindData:
		if f.Dst != m.cfg.ID {
			return
		}
		key := uint64(f.Origin)<<32 | uint64(f.Seq)
		if _, dup := m.seen[key]; dup {
			m.counters.DuplicatesRx++
		} else {
			m.seen[key] = struct{}{}
			m.counters.DeliveredPackets++
			m.counters.DeliveredBits += uint64(f.DataBits)
			latency := m.cfg.Engine.Now().Duration() - f.GeneratedAt
			m.counters.LatencySum += latency
			if m.cfg.Recorder != nil {
				m.emit(obs.Delivery{
					Node: m.cfg.ID, Origin: f.Origin, Seq: f.Seq,
					Bits: f.DataBits, Latency: latency, XID: f.XID,
				})
			}
		}
		ack := &packet.Frame{
			Kind: packet.KindAck, Src: m.cfg.ID, Dst: f.Src, Seq: f.Seq,
			Timestamp: m.localNow().Duration(), XID: f.XID,
		}
		// The Ack goes out at the next slot boundary to keep the
		// channel slot-aligned.
		at := m.cfg.Slots.StartOf(m.cfg.Slots.SlotAt(m.cfg.Engine.Now()) + 1)
		if now := m.cfg.Engine.Now(); at.Before(now) {
			at = now
		}
		m.cfg.Engine.MustScheduleAt(at, sim.PriorityMAC, func() {
			ack.Timestamp = m.localNow().Duration()
			_ = m.cfg.Modem.Transmit(ack)
		})
	case packet.KindAck:
		if f.Dst != m.cfg.ID || !m.waitingAck || f.Seq != m.sentSeq {
			return
		}
		m.setWaiting(false, m.cfg.Slots.SlotAt(m.cfg.Engine.Now()))
		m.queue.Pop()
		m.counters.AckedPackets++
		m.cw = m.cfg.CWMin
	default:
		// ALOHA ignores every negotiation frame.
	}
}

// emitTimeout records an unanswered data transmission (ALOHA has no
// RTS round; the ack wait is its whole contention).
func (m *MAC) emitTimeout(slot int64) {
	if m.cfg.Recorder != nil {
		if head, ok := m.queue.Peek(); ok {
			m.emit(obs.Contention{
				Node: m.cfg.ID, Peer: head.Dst,
				Outcome: obs.ContentionTimeout, Slot: slot, XID: m.sentXID,
			})
		}
	}
}

// OnFrameLost implements phy.Listener.
func (m *MAC) OnFrameLost(*packet.Frame, phy.LossReason) {}

// OnTxDone implements phy.Listener.
func (m *MAC) OnTxDone(*packet.Frame) {}
