package saloha_test

import (
	"testing"
	"time"

	"ewmac/internal/experiment"
)

func TestALOHADeliversAtLightLoad(t *testing.T) {
	cfg := experiment.Default(experiment.ProtocolSALOHA)
	cfg.SimTime = 150 * time.Second
	cfg.OfferedLoadKbps = 0.1
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Summary
	if s.MAC.DeliveredPackets == 0 {
		t.Fatal("ALOHA delivered nothing at trivial load")
	}
	if s.DeliveryRatio < 0.5 {
		t.Errorf("delivery ratio %.2f at 0.1 kbps, want most packets through", s.DeliveryRatio)
	}
}

func TestALOHAOutperformsHandshakesAtShortPackets(t *testing.T) {
	// A classic long-propagation-delay result (the paper's own ref [6],
	// Chitre, Motani & Shahabudeen: "Throughput of Networks with Large
	// Propagation Delays"): when a data packet occupies a small fraction
	// of a τmax-guarded slot, RTS/CTS reservations cost more than the
	// collisions they prevent, and plain slotted ALOHA wins. Our
	// simulator reproduces that phenomenon — which is precisely the
	// inefficiency EW-MAC attacks from the opposite direction, by
	// keeping the handshake and refilling its waiting windows.
	load := 0.8
	thr := map[experiment.Protocol]float64{}
	for _, p := range []experiment.Protocol{experiment.ProtocolSALOHA, experiment.ProtocolSFAMA} {
		cfg := experiment.Default(p)
		cfg.SimTime = 240 * time.Second
		cfg.OfferedLoadKbps = load
		sum, err := experiment.RunMean(cfg, []int64{1, 2})
		if err != nil {
			t.Fatal(err)
		}
		thr[p] = sum.ThroughputKbps
	}
	t.Logf("at %.1f kbps: S-ALOHA %.4f vs S-FAMA %.4f", load, thr[experiment.ProtocolSALOHA], thr[experiment.ProtocolSFAMA])
	if thr[experiment.ProtocolSALOHA] <= thr[experiment.ProtocolSFAMA] {
		t.Errorf("expected the ref-[6] phenomenon (ALOHA %v above S-FAMA %v for short packets)",
			thr[experiment.ProtocolSALOHA], thr[experiment.ProtocolSFAMA])
	}
}

func TestALOHARetransmitsOnSilence(t *testing.T) {
	cfg := experiment.Default(experiment.ProtocolSALOHA)
	cfg.SimTime = 150 * time.Second
	cfg.OfferedLoadKbps = 0.8 // collisions guaranteed
	res, err := experiment.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Summary.MAC.Retransmissions == 0 {
		t.Error("saturated ALOHA never retransmitted")
	}
}
