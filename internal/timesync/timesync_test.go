package timesync

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"ewmac/internal/sim"
)

func TestClockDrift(t *testing.T) {
	c := Clock{Offset: 50 * time.Millisecond, SkewPPM: 20}
	at := sim.At(1000 * time.Second)
	got := c.Local(at)
	// 20 ppm over 1000 s = 20 ms, plus the 50 ms offset.
	want := 1000*time.Second + 50*time.Millisecond + 20*time.Millisecond
	if diff := got - want; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Local = %v, want %v", got, want)
	}
	perfect := Clock{}
	if perfect.Local(at) != 1000*time.Second {
		t.Error("zero clock is not the identity")
	}
}

func TestEstimatorRecoversSyntheticClock(t *testing.T) {
	truth := Clock{Offset: -120 * time.Millisecond, SkewPPM: 40}
	var e Estimator
	// Beacons every 10 s for 5 minutes, delay 400 ms.
	delay := 400 * time.Millisecond
	for ts := 10 * time.Second; ts <= 300*time.Second; ts += 10 * time.Second {
		refSend := ts
		arrivalGlobal := sim.At(ts + delay)
		localArrival := truth.Local(arrivalGlobal)
		e.AddBeacon(localArrival, refSend, delay)
	}
	offset, rate, err := e.Fit()
	if err != nil {
		t.Fatal(err)
	}
	// local = offset + global(1+s) → global = (local - offset)/(1+s):
	// fitted rate ≈ 1/(1+40e-6); fitted offset ≈ +120 ms·rate.
	wantRate := 1 / (1 + 40e-6)
	if math.Abs(rate-wantRate) > 1e-9 {
		t.Errorf("rate = %.12f, want %.12f", rate, wantRate)
	}
	if math.Abs(offset-0.120*wantRate) > 1e-6 {
		t.Errorf("offset = %v s, want ≈0.12", offset)
	}
	// Correction should map local readings back to reference time.
	local := truth.Local(sim.At(123 * time.Second))
	corrected, err := e.Correct(local)
	if err != nil {
		t.Fatal(err)
	}
	if diff := corrected - 123*time.Second; diff < -time.Microsecond || diff > time.Microsecond {
		t.Errorf("Correct error %v, want < 1µs", diff)
	}
	rms, err := e.ResidualRMS()
	if err != nil {
		t.Fatal(err)
	}
	if rms > time.Microsecond {
		t.Errorf("residual %v on noiseless data", rms)
	}
}

func TestEstimatorWithNoisyDelays(t *testing.T) {
	truth := Clock{Offset: 30 * time.Millisecond, SkewPPM: -60}
	rng := rand.New(rand.NewSource(1))
	var e Estimator
	for ts := 5 * time.Second; ts <= 600*time.Second; ts += 5 * time.Second {
		delay := 400 * time.Millisecond
		noise := time.Duration(rng.NormFloat64() * float64(2*time.Millisecond))
		localArrival := truth.Local(sim.At(ts + delay + noise))
		e.AddBeacon(localArrival, ts, delay) // estimator sees the nominal delay
	}
	local := truth.Local(sim.At(300 * time.Second))
	corrected, err := e.Correct(local)
	if err != nil {
		t.Fatal(err)
	}
	if diff := (corrected - 300*time.Second).Abs(); diff > 2*time.Millisecond {
		t.Errorf("correction error %v with 2 ms delay noise", diff)
	}
	rms, err := e.ResidualRMS()
	if err != nil {
		t.Fatal(err)
	}
	if rms <= 0 || rms > 10*time.Millisecond {
		t.Errorf("residual RMS %v implausible", rms)
	}
}

func TestEstimatorErrors(t *testing.T) {
	var e Estimator
	if _, _, err := e.Fit(); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("Fit on empty = %v, want ErrTooFewSamples", err)
	}
	e.AddBeacon(time.Second, time.Second, 0)
	if _, _, err := e.Fit(); !errors.Is(err, ErrTooFewSamples) {
		t.Errorf("Fit on one sample = %v, want ErrTooFewSamples", err)
	}
	// Two identical local instants are degenerate.
	e.AddBeacon(time.Second, 2*time.Second, 0)
	if _, _, err := e.Fit(); err == nil {
		t.Error("degenerate fit accepted")
	}
	if _, err := e.Correct(time.Second); err == nil {
		t.Error("Correct on degenerate estimator accepted")
	}
}

func TestEstimatorSlidingWindow(t *testing.T) {
	e := Estimator{MaxSamples: 5}
	for i := 0; i < 20; i++ {
		e.AddBeacon(time.Duration(i)*time.Second, time.Duration(i)*time.Second, 0)
	}
	if e.Len() != 5 {
		t.Errorf("Len = %d, want 5", e.Len())
	}
	// Shrinking the bound takes effect on the next sample.
	e.MaxSamples = 3
	e.AddBeacon(20*time.Second, 20*time.Second, 0)
	if e.Len() != 3 {
		t.Errorf("Len = %d after shrinking the window, want 3", e.Len())
	}
}

// TestEstimatorWindowTracksClockStep is why the window exists: when
// the clock's phase steps (a reboot, a discipline glitch), old samples
// describe a clock that no longer exists. A windowed estimator slides
// them out and re-converges on the new clock; an unbounded one stays
// biased by the dead history.
func TestEstimatorWindowTracksClockStep(t *testing.T) {
	before := Clock{Offset: -80 * time.Millisecond, SkewPPM: 20}
	after := Clock{Offset: 200 * time.Millisecond, SkewPPM: 20}
	windowed := Estimator{MaxSamples: 10}
	var unbounded Estimator
	delay := 300 * time.Millisecond
	for ts := 10 * time.Second; ts <= 600*time.Second; ts += 10 * time.Second {
		c := before
		if ts > 300*time.Second {
			c = after
		}
		la := c.Local(sim.At(ts + delay))
		windowed.AddBeacon(la, ts, delay)
		unbounded.AddBeacon(la, ts, delay)
	}
	if windowed.Len() != 10 {
		t.Fatalf("window Len = %d, want 10", windowed.Len())
	}
	probe := sim.At(590 * time.Second)
	local := after.Local(probe)
	wCorr, err := windowed.Correct(local)
	if err != nil {
		t.Fatal(err)
	}
	uCorr, err := unbounded.Correct(local)
	if err != nil {
		t.Fatal(err)
	}
	wErr := (wCorr - probe.Duration()).Abs()
	uErr := (uCorr - probe.Duration()).Abs()
	if wErr > time.Millisecond {
		t.Errorf("windowed correction error %v after the step, want <1ms", wErr)
	}
	if uErr < 10*wErr+10*time.Millisecond {
		t.Errorf("unbounded estimator error %v unexpectedly small vs windowed %v — step no longer discriminates", uErr, wErr)
	}
}

// Property: for any physical clock (bounded offset and skew) and
// beacon schedule, the estimator's correction error stays below a
// microsecond on noiseless samples.
func TestEstimatorRecoveryProperty(t *testing.T) {
	f := func(offMS int16, skewRaw int8, seed int64) bool {
		truth := Clock{
			Offset:  time.Duration(offMS) * time.Millisecond,
			SkewPPM: float64(skewRaw), // ±127 ppm
		}
		rng := rand.New(rand.NewSource(seed))
		var e Estimator
		for i := 0; i < 20; i++ {
			ts := time.Duration(10+rng.Intn(590)) * time.Second
			delay := time.Duration(rng.Intn(900)+100) * time.Millisecond
			e.AddBeacon(truth.Local(sim.At(ts+delay)), ts, delay)
		}
		probe := sim.At(time.Duration(rng.Intn(600)) * time.Second)
		corrected, err := e.Correct(truth.Local(probe))
		if err != nil {
			// Degenerate draws (repeated instants) are acceptable.
			return true
		}
		return (corrected - probe.Duration()).Abs() < time.Microsecond
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
