// Package timesync implements the clock-synchronization substrate the
// paper assumes exists ("we assume that the sensors in the water are
// synchronized", §3.1, citing linear-regression schemes [20–22]).
//
// It provides a drifting-clock model and a beacon-based linear
// estimator in the style of those references: a reference node
// broadcasts timestamped beacons; each sensor pairs the beacon's
// reference time (corrected for the known propagation delay) with its
// own local reception time and fits offset and skew by least squares.
// The residual error quantifies how well the slotted MAC's
// synchronization assumption holds for a given drift magnitude.
package timesync

import (
	"errors"
	"fmt"
	"math"
	"time"

	"ewmac/internal/sim"
)

// Clock is a drifting local clock: local(t) = Offset + t·(1 + Skew).
type Clock struct {
	// Offset is the initial phase error.
	Offset time.Duration
	// SkewPPM is the frequency error in parts per million (a cheap
	// crystal is ±20–100 ppm).
	SkewPPM float64
}

// Local converts true simulation time to this clock's reading.
func (c Clock) Local(global sim.Time) time.Duration {
	g := global.Duration()
	return c.Offset + g + time.Duration(float64(g)*c.SkewPPM/1e6)
}

// ErrTooFewSamples is returned by Fit before two beacons are recorded.
var ErrTooFewSamples = errors.New("timesync: need at least two samples")

type pairSample struct {
	local float64 // local reception time, seconds
	ref   float64 // reference time at reception, seconds
}

// Estimator fits local-clock offset and skew against a reference from
// beacon samples.
type Estimator struct {
	samples []pairSample
	// MaxSamples bounds memory; old samples slide out (0 = unbounded).
	MaxSamples int
}

// AddBeacon records one beacon: localArrival is the local clock at
// reception; refSend the reference timestamp in the beacon; delay the
// (measured) propagation delay, so the reference time at the reception
// instant is refSend + delay.
func (e *Estimator) AddBeacon(localArrival, refSend, delay time.Duration) {
	e.samples = append(e.samples, pairSample{
		local: localArrival.Seconds(),
		ref:   (refSend + delay).Seconds(),
	})
	if e.MaxSamples > 0 && len(e.samples) > e.MaxSamples {
		e.samples = e.samples[len(e.samples)-e.MaxSamples:]
	}
}

// Len reports recorded samples.
func (e *Estimator) Len() int { return len(e.samples) }

// Fit returns the least-squares line ref ≈ a + b·local. b-1 is the
// estimated skew; a the offset at local zero.
func (e *Estimator) Fit() (offsetSec, rate float64, err error) {
	n := float64(len(e.samples))
	if n < 2 {
		return 0, 0, ErrTooFewSamples
	}
	var sx, sy, sxx, sxy float64
	for _, s := range e.samples {
		sx += s.local
		sy += s.ref
		sxx += s.local * s.local
		sxy += s.local * s.ref
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0, 0, fmt.Errorf("timesync: degenerate samples (identical local times)")
	}
	rate = (n*sxy - sx*sy) / den
	offsetSec = (sy - rate*sx) / n
	return offsetSec, rate, nil
}

// Correct maps a local clock reading to estimated reference time using
// the current fit.
func (e *Estimator) Correct(local time.Duration) (time.Duration, error) {
	a, b, err := e.Fit()
	if err != nil {
		return 0, err
	}
	sec := a + b*local.Seconds()
	return time.Duration(sec * float64(time.Second)), nil
}

// ResidualRMS reports the root-mean-square residual of the fit — the
// synchronization error the MAC would see.
func (e *Estimator) ResidualRMS() (time.Duration, error) {
	a, b, err := e.Fit()
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, s := range e.samples {
		r := s.ref - (a + b*s.local)
		ss += r * r
	}
	rms := ss / float64(len(e.samples))
	return time.Duration(math.Sqrt(rms) * float64(time.Second)), nil
}
