// Package runner is the supervision layer between the CLIs and the
// experiment/figures engines: it makes long multi-point runs
// survivable. A sweep is a grid of independent (sweep, protocol, x)
// points; the runner executes them through a worker pool with
//
//   - panic isolation — a panicking point is quarantined with its
//     stack instead of killing the process, and the remaining points
//     keep running;
//   - run budgets — each point executes under a sim.Budget (wall
//     deadline, event cap, livelock watchdog), so a pathological
//     parameter corner aborts with sim.ErrBudgetExceeded rather than
//     spinning forever;
//   - bounded retry — budget-aborted points are retried with an
//     exponentially loosened budget and wall-clock backoff;
//   - checkpoint/resume — finished points are journaled to a
//     crash-safe manifest (fsync'd JSONL), and a re-run with the same
//     configuration serves them from the journal. By the simulator's
//     determinism guarantees a resumed sweep's final tables are
//     bit-identical to an uninterrupted run's.
package runner

import (
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"ewmac/internal/experiment"
	"ewmac/internal/metrics"
	"ewmac/internal/sim"
)

// Key identifies one sweep point.
type Key struct {
	// Sweep names the grid (a figure ID, or "uansim" for single runs).
	Sweep string `json:"sweep"`
	// Protocol is the MAC under test.
	Protocol string `json:"protocol"`
	// X is the sweep variable's value (0 for single runs).
	X float64 `json:"x"`
}

func (k Key) String() string {
	return fmt.Sprintf("%s/%s/x=%g", k.Sweep, k.Protocol, k.X)
}

// Point statuses.
const (
	// StatusDone: the point completed and Summary is valid.
	StatusDone = "done"
	// StatusFailed: the point was quarantined (panic, exhausted
	// budget retries, or a non-retriable error).
	StatusFailed = "failed"
)

// Record is one supervised point's outcome — exactly what the
// manifest journals.
type Record struct {
	Key
	Status string `json:"status"`
	// Summary is the point's averaged metrics (nil when failed).
	Summary *metrics.Summary `json:"summary,omitempty"`
	// Error and Stack describe a failure; Stack is set for panics.
	Error string `json:"error,omitempty"`
	Stack string `json:"stack,omitempty"`
	// Panicked marks a quarantine caused by a recovered panic.
	Panicked bool `json:"panicked,omitempty"`
	// Attempts / Retries / BudgetAborts trace the supervision: total
	// executions, re-executions after transient aborts, and attempts
	// ended by the run budget.
	Attempts     int `json:"attempts,omitempty"`
	Retries      int `json:"retries,omitempty"`
	BudgetAborts int `json:"budget_aborts,omitempty"`
	// Resumed reports the record was served from the manifest rather
	// than executed in this process (never journaled: it is a property
	// of the reading run, not of the result).
	Resumed bool `json:"-"`
}

// PointFunc executes one point under the given budget and returns its
// averaged summary. It is called on a pool goroutine; panics are
// recovered and quarantined by the supervisor.
type PointFunc func(k Key, budget sim.Budget) (metrics.Summary, error)

// Options configure supervision.
type Options struct {
	// Workers bounds concurrent points (0 = GOMAXPROCS, 1 = serial).
	Workers int
	// Manifest, when non-nil, journals every finished point and serves
	// already-done points without re-execution.
	Manifest *Manifest
	// Budget bounds each point's first attempt; retries loosen it
	// exponentially (×2 per attempt). A zero budget still arms the
	// livelock watchdog at sim.DefaultLivelockEvents — supervision
	// without a hang detector would supervise nothing.
	Budget sim.Budget
	// Retries is the maximum number of re-executions after a
	// budget-aborted attempt (panics and other errors never retry).
	Retries int
	// Backoff is the wall-clock pause before the first retry, doubling
	// per attempt (0 = immediate).
	Backoff time.Duration
	// OnEvent, when non-nil, receives one human-readable line per
	// supervision event (resume hit, retry, quarantine), serialized.
	OnEvent func(string)
	// OnPoint, when non-nil, receives sweep progress after each point
	// settles: how many of the sweep's points have finished (done of
	// total). Calls are serialized. Only Sweep invokes it; Supervise
	// runs a single point and has no grid to report on.
	OnPoint func(done, total int)
}

func (o *Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// budget returns the effective first-attempt budget: the configured
// one, with the livelock watchdog always armed.
func (o *Options) budget() sim.Budget {
	b := o.Budget
	if b.LivelockEvents == 0 {
		b.LivelockEvents = sim.DefaultLivelockEvents
	}
	return b
}

// Stats summarize one supervised sweep.
type Stats struct {
	// Points is the grid size; Completed counts done points (including
	// resumed ones), Quarantined the failed ones.
	Points      int
	Completed   int
	Quarantined int
	// Resumed counts points served from the manifest.
	Resumed int
	// Retries and BudgetAborts are summed over all points.
	Retries      int
	BudgetAborts int
}

// Supervise executes one point under the options' supervision policy
// and returns its record. The returned error reports journal I/O
// failures only — point failures are in the Record, because one bad
// point must not look like a broken run.
func Supervise(k Key, run PointFunc, opts Options) (Record, error) {
	if m := opts.Manifest; m != nil {
		if rec, ok := m.Lookup(k); ok && rec.Status == StatusDone {
			rec.Resumed = true
			opts.emit(fmt.Sprintf("%s: resumed from %s", k, m.Path()))
			return rec, nil
		}
	}

	rec := Record{Key: k}
	budget := opts.budget()
	for attempt := 0; ; attempt++ {
		rec.Attempts = attempt + 1
		sum, err := callPoint(run, k, budget.Scale(1<<uint(attempt)))
		if err == nil {
			rec.Status = StatusDone
			rec.Summary = &sum
			break
		}
		rec.Error = err.Error()

		var pe *panicError
		if errors.As(err, &pe) {
			rec.Status = StatusFailed
			rec.Panicked = true
			rec.Stack = pe.stack
			opts.emit(fmt.Sprintf("%s: QUARANTINED (panic): %v", k, pe.value))
			break
		}
		var xe *experiment.PanicError
		if errors.As(err, &xe) {
			rec.Status = StatusFailed
			rec.Panicked = true
			rec.Stack = xe.Stack
			opts.emit(fmt.Sprintf("%s: QUARANTINED (panic in run): %v", k, xe.Value))
			break
		}
		if errors.Is(err, sim.ErrBudgetExceeded) {
			rec.BudgetAborts++
			if attempt < opts.Retries {
				rec.Retries++
				opts.emit(fmt.Sprintf("%s: budget aborted (attempt %d), retrying with ×%d budget: %v",
					k, attempt+1, 2<<uint(attempt), err))
				if opts.Backoff > 0 {
					time.Sleep(opts.Backoff << uint(attempt))
				}
				continue
			}
		}
		rec.Status = StatusFailed
		opts.emit(fmt.Sprintf("%s: QUARANTINED after %d attempt(s): %v", k, rec.Attempts, err))
		break
	}

	if m := opts.Manifest; m != nil {
		if err := m.Append(rec); err != nil {
			return rec, fmt.Errorf("runner: journaling %s: %w", k, err)
		}
	}
	return rec, nil
}

// Sweep supervises every key through a bounded worker pool and returns
// the records in key order plus aggregate stats. The error reports
// journal failures (first one wins); per-point failures are quarantined
// records, not errors.
func Sweep(keys []Key, run PointFunc, opts Options) ([]Record, Stats, error) {
	recs := make([]Record, len(keys))
	errs := make([]error, len(keys))
	sem := make(chan struct{}, opts.workers())
	var (
		wg     sync.WaitGroup
		doneMu sync.Mutex
		done   int
	)
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k Key) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			recs[i], errs[i] = Supervise(k, run, opts)
			if opts.OnPoint != nil {
				doneMu.Lock()
				done++
				opts.OnPoint(done, len(keys))
				doneMu.Unlock()
			}
		}(i, k)
	}
	wg.Wait()

	var stats Stats
	stats.Points = len(recs)
	for _, r := range recs {
		switch r.Status {
		case StatusDone:
			stats.Completed++
		case StatusFailed:
			stats.Quarantined++
		}
		if r.Resumed {
			stats.Resumed++
		}
		stats.Retries += r.Retries
		stats.BudgetAborts += r.BudgetAborts
	}
	for _, err := range errs {
		if err != nil {
			return recs, stats, err
		}
	}
	return recs, stats, nil
}

// emit serializes OnEvent callbacks (points finish on pool goroutines).
var emitMu sync.Mutex

func (o *Options) emit(line string) {
	if o.OnEvent == nil {
		return
	}
	emitMu.Lock()
	defer emitMu.Unlock()
	o.OnEvent(line)
}

// panicError marks a panic recovered directly from a PointFunc (as
// opposed to one already converted by experiment.RunMean).
type panicError struct {
	value string
	stack string
}

func (e *panicError) Error() string { return "runner: point panicked: " + e.value }

// callPoint runs one attempt behind a recover boundary.
func callPoint(run PointFunc, k Key, b sim.Budget) (sum metrics.Summary, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &panicError{value: fmt.Sprint(p), stack: string(debug.Stack())}
		}
	}()
	return run(k, b)
}
