package runner

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"sync"

	"ewmac/internal/obs"
)

// ManifestVersion is bumped whenever the journal schema changes
// incompatibly; a version mismatch on resume is an error, never a
// silent misread.
const ManifestVersion = 1

// ErrManifestMismatch is returned when an existing manifest was
// written under a different configuration (fingerprint or version)
// than the resuming run — resuming it would splice incompatible
// results into one table.
var ErrManifestMismatch = errors.New("runner: manifest does not match this run's configuration")

// header is the first line of every manifest.
type header struct {
	Version     int    `json:"manifest_version"`
	Fingerprint string `json:"fingerprint"`
}

// Manifest is the crash-safe checkpoint journal of a supervised run:
// one header line identifying the configuration, then one Record per
// finished (sweep, protocol, x) point, each fsync'd before the point
// is reported done. Re-opening the same path with the same
// fingerprint resumes: recorded completions are served from the
// journal instead of being recomputed. Safe for concurrent use.
type Manifest struct {
	mu   sync.Mutex
	app  *obs.AppendJSONL
	done map[Key]Record
	path string
	// loaded counts records restored from disk at open.
	loaded int
}

// OpenManifest opens the checkpoint journal at path, creating it when
// absent and resuming it when present. fingerprint identifies the run
// configuration (seeds, durations, sweep set); an existing manifest
// with a different fingerprint is rejected with ErrManifestMismatch
// rather than silently mixed in. A torn final line — the signature of
// a killed writer — is discarded and overwritten.
func OpenManifest(path, fingerprint string) (*Manifest, error) {
	m := &Manifest{done: make(map[Key]Record), path: path}
	f, err := os.Open(path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		app, err := obs.CreateJSONL(path)
		if err != nil {
			return nil, err
		}
		if err := app.Append(header{Version: ManifestVersion, Fingerprint: fingerprint}); err != nil {
			app.Close()
			return nil, err
		}
		m.app = app
		return m, nil
	case err != nil:
		return nil, fmt.Errorf("runner: manifest %s: %w", path, err)
	}

	valid, err := m.load(f, fingerprint)
	f.Close()
	if err != nil {
		return nil, err
	}
	app, err := obs.OpenJSONLAt(path, valid)
	if err != nil {
		return nil, err
	}
	m.app = app
	return m, nil
}

// load scans the journal, fills the done map, and returns the byte
// offset just past the last intact line. Anything after that offset
// (at most one torn record) is dropped.
func (m *Manifest) load(f *os.File, fingerprint string) (valid int64, err error) {
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24)
	first := true
	for sc.Scan() {
		line := sc.Bytes()
		if first {
			var h header
			if json.Unmarshal(line, &h) != nil {
				break // torn header (killed mid-first-write): reseed below
			}
			first = false
			if h.Version != ManifestVersion || h.Fingerprint != fingerprint {
				return 0, fmt.Errorf("%w: %s (want fingerprint %q)", ErrManifestMismatch, m.path, fingerprint)
			}
			valid += int64(len(line)) + 1
			continue
		}
		var rec Record
		if json.Unmarshal(line, &rec) != nil {
			break // torn or corrupt line: drop it and everything after
		}
		m.done[rec.Key] = rec
		m.loaded++
		valid += int64(len(line)) + 1
	}
	if err := sc.Err(); err != nil && !errors.Is(err, io.EOF) {
		return 0, fmt.Errorf("runner: manifest %s: %w", m.path, err)
	}
	if first {
		// Empty or header-torn file (killed before the header landed):
		// re-seed it with a fresh header and resume from just past it.
		app, err := obs.CreateJSONL(m.path)
		if err != nil {
			return 0, err
		}
		h := header{Version: ManifestVersion, Fingerprint: fingerprint}
		if err := app.Append(h); err != nil {
			app.Close()
			return 0, err
		}
		if err := app.Close(); err != nil {
			return 0, err
		}
		b, _ := json.Marshal(h)
		return int64(len(b)) + 1, nil
	}
	return valid, nil
}

// Lookup returns the journaled record for k, if any. Only records with
// StatusDone short-circuit re-execution; failed records are returned
// too so callers can report prior quarantines, but Supervise re-runs
// them (a resumed run is a fresh chance).
func (m *Manifest) Lookup(k Key) (Record, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	rec, ok := m.done[k]
	return rec, ok
}

// Loaded reports how many records were restored from disk at open.
func (m *Manifest) Loaded() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.loaded
}

// Path returns the journal's file path.
func (m *Manifest) Path() string { return m.path }

// Append journals rec durably and indexes it for Lookup.
func (m *Manifest) Append(rec Record) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if err := m.app.Append(rec); err != nil {
		return err
	}
	m.done[rec.Key] = rec
	return nil
}

// Close closes the journal file.
func (m *Manifest) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.app.Close()
}
