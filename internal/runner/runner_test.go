package runner

import (
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"

	"ewmac/internal/experiment"
	"ewmac/internal/metrics"
	"ewmac/internal/sim"
)

func keysFor(sweep string, protocols []string, xs []float64) []Key {
	var keys []Key
	for _, p := range protocols {
		for _, x := range xs {
			keys = append(keys, Key{Sweep: sweep, Protocol: p, X: x})
		}
	}
	return keys
}

// TestSweepPanicQuarantine: one panicking point must be quarantined
// with its stack while every other point completes.
func TestSweepPanicQuarantine(t *testing.T) {
	keys := keysFor("fig", []string{"ewmac", "sfama"}, []float64{1, 2, 3})
	bad := Key{Sweep: "fig", Protocol: "sfama", X: 2}
	run := func(k Key, _ sim.Budget) (metrics.Summary, error) {
		if k == bad {
			panic("synthetic point failure")
		}
		return metrics.Summary{ThroughputKbps: k.X}, nil
	}
	recs, stats, err := Sweep(keys, run, Options{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Completed != 5 || stats.Quarantined != 1 {
		t.Fatalf("stats = %+v, want 5 completed / 1 quarantined", stats)
	}
	for i, r := range recs {
		if r.Key != keys[i] {
			t.Fatalf("record %d out of order: %v != %v", i, r.Key, keys[i])
		}
		if r.Key == bad {
			if r.Status != StatusFailed || !r.Panicked {
				t.Errorf("bad point record = %+v, want failed+panicked", r)
			}
			if !strings.Contains(r.Error, "synthetic point failure") {
				t.Errorf("quarantine error %q lacks panic value", r.Error)
			}
			if !strings.Contains(r.Stack, "runner") {
				t.Errorf("quarantine record has no stack: %q", r.Stack)
			}
			continue
		}
		if r.Status != StatusDone || r.Summary == nil || r.Summary.ThroughputKbps != r.X {
			t.Errorf("good point %v record = %+v", r.Key, r)
		}
	}
}

// TestSupervisePanicErrorFromExperiment: a panic already converted by
// experiment.RunMean (inside a per-seed goroutine) is classified as a
// quarantine with the original stack, not retried.
func TestSupervisePanicErrorFromExperiment(t *testing.T) {
	calls := 0
	run := func(Key, sim.Budget) (metrics.Summary, error) {
		calls++
		return metrics.Summary{}, fmt.Errorf("seed 3: %w",
			&experiment.PanicError{Value: "index out of range", Stack: "goroutine 7 [running]:\n..."})
	}
	rec, err := Supervise(Key{Sweep: "s", Protocol: "p"}, run, Options{Retries: 5})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("panicking point was called %d times, want 1 (no retry)", calls)
	}
	if rec.Status != StatusFailed || !rec.Panicked || !strings.Contains(rec.Stack, "goroutine 7") {
		t.Errorf("record = %+v, want failed+panicked with original stack", rec)
	}
}

// TestSuperviseRetryBudget: budget aborts retry with an exponentially
// loosened budget; success on a later attempt yields a done record
// carrying the retry trace.
func TestSuperviseRetryBudget(t *testing.T) {
	var budgets []sim.Budget
	run := func(_ Key, b sim.Budget) (metrics.Summary, error) {
		budgets = append(budgets, b)
		if len(budgets) < 3 {
			return metrics.Summary{}, &sim.BudgetError{Reason: sim.BudgetMaxEvents, Events: b.MaxEvents}
		}
		return metrics.Summary{ThroughputKbps: 7}, nil
	}
	rec, err := Supervise(Key{Sweep: "s", Protocol: "p"}, run,
		Options{Retries: 3, Budget: sim.Budget{MaxEvents: 100}})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone || rec.Attempts != 3 || rec.Retries != 2 || rec.BudgetAborts != 2 {
		t.Fatalf("record = %+v, want done after 3 attempts / 2 retries / 2 aborts", rec)
	}
	if len(budgets) != 3 || budgets[0].MaxEvents != 100 || budgets[1].MaxEvents != 200 || budgets[2].MaxEvents != 400 {
		t.Errorf("budgets = %+v, want MaxEvents 100, 200, 400", budgets)
	}
	for _, b := range budgets {
		if b.LivelockEvents != sim.DefaultLivelockEvents {
			t.Errorf("livelock watchdog not armed: %+v", b)
		}
	}
}

// TestSuperviseRetriesExhausted: a point that never fits its budget is
// quarantined after Retries+1 attempts, and plain errors never retry.
func TestSuperviseRetriesExhausted(t *testing.T) {
	calls := 0
	alwaysAbort := func(Key, sim.Budget) (metrics.Summary, error) {
		calls++
		return metrics.Summary{}, &sim.BudgetError{Reason: sim.BudgetDeadline}
	}
	rec, err := Supervise(Key{}, alwaysAbort, Options{Retries: 2})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 3 || rec.Status != StatusFailed || rec.BudgetAborts != 3 || rec.Retries != 2 {
		t.Errorf("exhausted record = %+v after %d calls, want failed 3/2/3", rec, calls)
	}

	calls = 0
	plainErr := func(Key, sim.Budget) (metrics.Summary, error) {
		calls++
		return metrics.Summary{}, errors.New("config rejected")
	}
	rec, err = Supervise(Key{}, plainErr, Options{Retries: 4})
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 || rec.Status != StatusFailed || rec.Retries != 0 {
		t.Errorf("plain-error record = %+v after %d calls, want failed with no retry", rec, calls)
	}
}

// TestSweepResumeSkips: a second sweep over the same manifest must not
// re-execute completed points, and its records must be byte-identical
// to the first run's.
func TestSweepResumeSkips(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "manifest.jsonl")
	keys := keysFor("fig9", []string{"ewmac", "sfama", "dots"}, []float64{10, 20, 30, 40})

	var calls atomic.Int64
	run := func(k Key, _ sim.Budget) (metrics.Summary, error) {
		calls.Add(1)
		return metrics.Summary{ThroughputKbps: k.X * 2, Nodes: int(k.X)}, nil
	}

	m1, err := OpenManifest(path, "cfg-v1")
	if err != nil {
		t.Fatal(err)
	}
	recs1, _, err := Sweep(keys, run, Options{Workers: 3, Manifest: m1})
	if err != nil {
		t.Fatal(err)
	}
	m1.Close()
	if got := calls.Load(); got != int64(len(keys)) {
		t.Fatalf("first sweep executed %d points, want %d", got, len(keys))
	}

	m2, err := OpenManifest(path, "cfg-v1")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	if m2.Loaded() != len(keys) {
		t.Fatalf("resume loaded %d records, want %d", m2.Loaded(), len(keys))
	}
	recs2, stats2, err := Sweep(keys, run, Options{Workers: 3, Manifest: m2})
	if err != nil {
		t.Fatal(err)
	}
	if got := calls.Load(); got != int64(len(keys)) {
		t.Fatalf("resumed sweep re-executed points: %d total calls", got)
	}
	if stats2.Resumed != len(keys) || stats2.Completed != len(keys) {
		t.Fatalf("resume stats = %+v", stats2)
	}
	for i := range recs1 {
		recs2[i].Resumed = false // reading-run property, not part of the result
		a, _ := json.Marshal(recs1[i])
		b, _ := json.Marshal(recs2[i])
		if string(a) != string(b) {
			t.Errorf("record %d differs after resume:\n  first:  %s\n  resume: %s", i, a, b)
		}
	}
}

// TestResumeRerunsFailedPoints: failed records do not short-circuit —
// a resumed run gets a fresh chance at them.
func TestResumeRerunsFailedPoints(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	k := Key{Sweep: "s", Protocol: "p", X: 1}

	m1, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	fail := func(Key, sim.Budget) (metrics.Summary, error) {
		return metrics.Summary{}, errors.New("transient infra issue")
	}
	if _, err := Supervise(k, fail, Options{Manifest: m1}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	m2, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	defer m2.Close()
	ok := func(Key, sim.Budget) (metrics.Summary, error) {
		return metrics.Summary{ThroughputKbps: 1}, nil
	}
	rec, err := Supervise(k, ok, Options{Manifest: m2})
	if err != nil {
		t.Fatal(err)
	}
	if rec.Status != StatusDone || rec.Resumed {
		t.Errorf("record = %+v, want freshly-executed done", rec)
	}
}

// TestManifestFingerprintMismatch: resuming under a different
// configuration is an error, not a silent splice.
func TestManifestFingerprintMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	m, err := OpenManifest(path, "fingerprint-a")
	if err != nil {
		t.Fatal(err)
	}
	m.Close()
	if _, err := OpenManifest(path, "fingerprint-b"); !errors.Is(err, ErrManifestMismatch) {
		t.Fatalf("mismatched resume returned %v, want ErrManifestMismatch", err)
	}
}

// TestManifestTornTail: a journal whose last line was torn by a kill
// resumes cleanly — intact records load, the torn one is dropped and
// its point re-executes, and the repaired journal parses line-by-line.
func TestManifestTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	m1, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	ok := func(k Key, _ sim.Budget) (metrics.Summary, error) {
		return metrics.Summary{ThroughputKbps: k.X}, nil
	}
	k1 := Key{Sweep: "s", Protocol: "p", X: 1}
	k2 := Key{Sweep: "s", Protocol: "p", X: 2}
	if _, err := Supervise(k1, ok, Options{Manifest: m1}); err != nil {
		t.Fatal(err)
	}
	m1.Close()

	f, _ := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0o644)
	f.WriteString(`{"sweep":"s","protocol":"p","x":2,"sta`)
	f.Close()

	m2, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	if m2.Loaded() != 1 {
		t.Fatalf("loaded %d records from torn journal, want 1", m2.Loaded())
	}
	if rec, ok2 := m2.Lookup(k1); !ok2 || rec.Status != StatusDone {
		t.Fatalf("intact record lost: %+v %v", rec, ok2)
	}
	calls := 0
	counted := func(k Key, b sim.Budget) (metrics.Summary, error) { calls++; return ok(k, b) }
	if _, err := Supervise(k2, counted, Options{Manifest: m2}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Errorf("torn point executed %d times, want 1 (torn record must not resume)", calls)
	}
	m2.Close()

	raw, _ := os.ReadFile(path)
	lines := strings.Split(strings.TrimSuffix(string(raw), "\n"), "\n")
	if len(lines) != 3 { // header + k1 + re-run k2
		t.Fatalf("repaired journal has %d lines: %q", len(lines), raw)
	}
	for i, line := range lines {
		var v map[string]any
		if err := json.Unmarshal([]byte(line), &v); err != nil {
			t.Errorf("line %d unparseable after repair: %q", i, line)
		}
	}
}

// TestManifestTornHeader: a file killed before the header landed is
// reseeded, not rejected.
func TestManifestTornHeader(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.jsonl")
	if err := os.WriteFile(path, []byte(`{"manifest_ver`), 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatal(err)
	}
	k := Key{Sweep: "s", Protocol: "p", X: 1}
	ok := func(Key, sim.Budget) (metrics.Summary, error) { return metrics.Summary{}, nil }
	if _, err := Supervise(k, ok, Options{Manifest: m}); err != nil {
		t.Fatal(err)
	}
	m.Close()

	m2, err := OpenManifest(path, "fp")
	if err != nil {
		t.Fatalf("reseeded manifest did not resume: %v", err)
	}
	defer m2.Close()
	if m2.Loaded() != 1 {
		t.Errorf("loaded %d records after reseed, want 1", m2.Loaded())
	}
}
