package ewmac_test

import (
	"strings"
	"testing"
	"time"

	"ewmac"
)

func quickConfig(p ewmac.Protocol) ewmac.Config {
	cfg := ewmac.DefaultConfig(p)
	cfg.SimTime = 90 * time.Second
	return cfg
}

func TestPublicAPIRun(t *testing.T) {
	for _, p := range ewmac.Protocols {
		res, err := ewmac.Run(quickConfig(p))
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if res.Summary.ThroughputKbps <= 0 {
			t.Errorf("%s: no throughput", p)
		}
		if res.Summary.Nodes != 64 {
			t.Errorf("%s: %d nodes, want 60+4", p, res.Summary.Nodes)
		}
	}
}

func TestPublicAPIDefaults(t *testing.T) {
	cfg := ewmac.DefaultConfig(ewmac.EWMAC)
	if cfg.Nodes != 60 || cfg.DataBits != 2048 || cfg.SimTime != 300*time.Second {
		t.Errorf("DefaultConfig diverged from Table 2: %+v", cfg)
	}
	if got := ewmac.EWMAC.DisplayName(); got != "EW-MAC" {
		t.Errorf("DisplayName = %q", got)
	}
	if len(ewmac.Protocols) != 4 {
		t.Errorf("Protocols = %v", ewmac.Protocols)
	}
}

func TestPublicAPIRunMeanAndRatios(t *testing.T) {
	base, err := ewmac.RunMean(quickConfig(ewmac.SFAMA), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	s, err := ewmac.RunMean(quickConfig(ewmac.EWMAC), []int64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if r := ewmac.OverheadRatio(s, base); r <= 1 {
		t.Errorf("EW-MAC overhead ratio %v, want > 1 (it pays for the exploit)", r)
	}
	if e := ewmac.EfficiencyIndex(base, base); e != 1 {
		t.Errorf("baseline efficiency index = %v, want 1", e)
	}
}

func TestTable2Rendering(t *testing.T) {
	out := ewmac.Table2()
	if !strings.Contains(out, "Simulation parameters") {
		t.Errorf("Table2 output unexpected:\n%s", out)
	}
}

func TestDeterministicPublicRuns(t *testing.T) {
	a, err := ewmac.Run(quickConfig(ewmac.EWMAC))
	if err != nil {
		t.Fatal(err)
	}
	b, err := ewmac.Run(quickConfig(ewmac.EWMAC))
	if err != nil {
		t.Fatal(err)
	}
	if a.Summary.MAC != b.Summary.MAC {
		t.Error("identical configs produced different results")
	}
}
